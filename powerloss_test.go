package gcsteering

import (
	"bytes"
	"testing"
)

// crashTrace generates the shared write-heavy workload the crash tests
// replay (Fin1 is ~77% writes — plenty of stripe writes in flight at any
// mid-trace instant).
func crashTrace(t *testing.T, cfg Config, reqs int) Trace {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.GenerateWorkload("Fin1", reqs)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// crashSweepInstants are the power-cut instants (ms) the pinned sweeps
// use: spread across the trace so cuts land in different write mixes.
var crashSweepInstants = []float64{3, 7, 15, 31}

// TestPowerLossJournalOnSweep pins the tentpole guarantee: with the intent
// journal on, a power loss injected mid-stripe-write leaves zero
// inconsistent stripes after the mount-time resync, across a sweep of
// crash instants. Checksums stay on so any stripe the resync missed would
// surface as a post-crash checksum error.
func TestPowerLossJournalOnSweep(t *testing.T) {
	cfg := smallConfig(SchemeLGC)
	cfg.Checksums = true
	cfg.IntentJournal = true
	tr := crashTrace(t, cfg, 2000)
	sawDirty := false
	for _, at := range crashSweepInstants {
		c := cfg
		c.PowerLossAtMs = at
		res, err := ReplayWithPowerLoss(c, tr)
		if err != nil {
			t.Fatalf("crash at %vms: %v", at, err)
		}
		cr := res.Crash
		if !cr.Enabled || !cr.Journaled {
			t.Fatalf("crash at %vms: stats not marked enabled/journaled: %+v", at, cr)
		}
		if cr.DirtyStripes > 0 {
			sawDirty = true
		}
		// The journal's write-ahead invariant: every inconsistent stripe
		// was in the dirty list, so the scoped resync found every one.
		if cr.ResyncFound != int64(cr.InconsistentStripes) {
			t.Fatalf("crash at %vms: resync found %d of %d inconsistent stripes",
				at, cr.ResyncFound, cr.InconsistentStripes)
		}
		// The resync walked only the dirty list, not the whole array.
		if cr.ResyncStripesWalked != int64(cr.DirtyStripes) {
			t.Fatalf("crash at %vms: walked %d stripes, dirty list had %d",
				at, cr.ResyncStripesWalked, cr.DirtyStripes)
		}
		// Zero inconsistency visible after resync: serving was gated on the
		// walk, so no post-crash read can hit a torn page.
		if res.Integrity.ChecksumErrors != 0 {
			t.Fatalf("crash at %vms: %d post-resync checksum errors (torn stripe survived resync)",
				at, res.Integrity.ChecksumErrors)
		}
		if cr.ServedDuringResync {
			t.Fatalf("crash at %vms: journal-on run served during resync", at)
		}
	}
	if !sawDirty {
		t.Fatal("no crash instant in the sweep landed mid-stripe-write; sweep proves nothing")
	}
}

// TestPowerLossJournalOffSweep pins the converse: without the journal the
// remount has no scope information — only the full-array walk finds the
// (nonzero, somewhere in the sweep) inconsistent stripes, and the array
// serves while the walk runs.
func TestPowerLossJournalOffSweep(t *testing.T) {
	cfg := smallConfig(SchemeLGC)
	cfg.IntentJournal = false
	tr := crashTrace(t, cfg, 2000)
	lay := int64(0)
	sawInconsistent := false
	for _, at := range crashSweepInstants {
		c := cfg
		c.PowerLossAtMs = at
		res, err := ReplayWithPowerLoss(c, tr)
		if err != nil {
			t.Fatalf("crash at %vms: %v", at, err)
		}
		cr := res.Crash
		if cr.Journaled {
			t.Fatalf("crash at %vms: journal-off run marked journaled", at)
		}
		if !cr.ServedDuringResync {
			t.Fatalf("crash at %vms: journal-off run gated serving on the full walk", at)
		}
		if lay == 0 {
			lay = cr.ResyncStripesWalked
		}
		// The walk covers every stripe of the array — the full-scrub cost
		// the journal would have avoided — and still finds everything.
		if cr.ResyncStripesWalked != lay || cr.ResyncStripesWalked <= int64(cr.DirtyStripes) {
			t.Fatalf("crash at %vms: walked %d stripes (dirty %d, first sweep walked %d); want a full-array walk",
				at, cr.ResyncStripesWalked, cr.DirtyStripes, lay)
		}
		if cr.ResyncFound != int64(cr.InconsistentStripes) {
			t.Fatalf("crash at %vms: full walk found %d of %d inconsistent stripes",
				at, cr.ResyncFound, cr.InconsistentStripes)
		}
		if cr.InconsistentStripes > 0 {
			sawInconsistent = true
		}
	}
	if !sawInconsistent {
		t.Fatal("no crash instant left an inconsistent stripe; the write hole never opened")
	}
}

// TestPowerLossDeterministic pins reproducibility: the same crash config
// yields byte-identical traces and identical recovery accounting.
func TestPowerLossDeterministic(t *testing.T) {
	run := func() (CrashStats, string) {
		cfg := smallConfig(SchemeLGC)
		cfg.IntentJournal = true
		cfg.PowerLossAtMs = 9
		var buf bytes.Buffer
		cfg.Trace = NewTracer(&buf)
		tr := crashTrace(t, cfg, 1200)
		res, err := ReplayWithPowerLoss(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return res.Crash, buf.String()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 {
		t.Fatalf("crash stats diverged:\n%+v\n%+v", c1, c2)
	}
	if t1 != t2 {
		t.Fatal("crash-run traces diverged between identical runs")
	}
	if c1.TornPages == 0 && c1.DirtyStripes == 0 {
		t.Fatal("crash at 9ms interrupted nothing; determinism run proves nothing")
	}
}

// TestPowerLossKnobsInert pins the zero-cost guarantee: with PowerLossAtMs
// unset, the crash-consistency knobs change nothing — the trace is byte
// identical to a run without them, and ReplayWithPowerLoss falls through
// to the plain replay path.
func TestPowerLossKnobsInert(t *testing.T) {
	run := func(journal bool, resync float64) string {
		cfg := smallConfig(SchemeLGC)
		cfg.IntentJournal = journal
		cfg.ResyncMBps = resync
		var buf bytes.Buffer
		cfg.Trace = NewTracer(&buf)
		tr := crashTrace(t, cfg, 800)
		if _, err := ReplayWithPowerLoss(cfg, tr); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	base := run(false, 0)
	if withKnobs := run(true, 500); withKnobs != base {
		t.Fatal("IntentJournal/ResyncMBps changed the trace without a power loss")
	}
}

// TestPowerLossDuringRebuild pins the crash-during-rebuild path: a member
// fails before the cut, so the remounted array comes back degraded, the
// rebuild restarts from zero, and recovery still closes every torn stripe.
func TestPowerLossDuringRebuild(t *testing.T) {
	cfg := smallConfig(SchemeLGC)
	cfg.Checksums = true
	cfg.IntentJournal = true
	cfg.PowerLossAtMs = 12
	cfg.Fault = FaultPlan{
		Failures:      []DiskFault{{Disk: 1, AtMs: 4}},
		RepairDelayMs: 1,
		RebuildMBps:   50,
		RebuildTarget: RebuildToSpare,
	}
	tr := crashTrace(t, cfg, 2000)
	res, err := ReplayWithPowerLoss(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crash.Enabled {
		t.Fatal("crash stats missing")
	}
	// The pre-cut failure re-applies at the remount and the rebuild runs
	// again from nothing (its progress died with the power).
	if res.Fault.Failures != 1 || res.Fault.Rebuilds != 1 {
		t.Fatalf("post-crash fault stats = %+v, want the failure re-applied and one rebuild", res.Fault)
	}
	if res.Crash.ResyncFound != int64(res.Crash.InconsistentStripes) {
		t.Fatalf("resync found %d of %d inconsistent stripes",
			res.Crash.ResyncFound, res.Crash.InconsistentStripes)
	}
	if res.Integrity.ChecksumErrors != 0 {
		t.Fatalf("%d post-resync checksum errors", res.Integrity.ChecksumErrors)
	}
}
