package gcsteering

import (
	"strings"
	"testing"
)

func TestResultsStringFormats(t *testing.T) {
	r := &Results{Scheme: SchemeSteering, Staging: StagingReserved}
	r.Latency.Mean = 1500
	r.Latency.P99 = 9000
	r.GCEpisodes = 3
	r.RedirectRatio = 0.5
	s := r.String()
	for _, want := range []string{"GC-Steering/Reserved", "gc=3", "redirect=50.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	r2 := &Results{Scheme: SchemeLGC, RebuildDuration: Time(2e9)}
	if s := r2.String(); !strings.Contains(s, "rebuild=") || strings.Contains(s, "redirect") {
		t.Fatalf("LGC String() = %q", s)
	}
}

func TestGCDuty(t *testing.T) {
	r := &Results{GCWallTime: 50, Duration: 100}
	if got := r.GCDuty(5); got != 0.1 {
		t.Fatalf("GCDuty = %v", got)
	}
	if (&Results{}).GCDuty(5) != 0 {
		t.Fatal("empty duty must be 0")
	}
	if r.GCDuty(0) != 0 {
		t.Fatal("zero devices must be 0")
	}
}

func TestRAID6AndRAID1SystemsReplay(t *testing.T) {
	for _, tc := range []struct {
		level Level
		disks int
	}{
		{RAID6, 6},
		{RAID1, 2},
		{RAID0, 4},
	} {
		cfg := smallConfig(SchemeLGC)
		cfg.Level = tc.level
		cfg.Disks = tc.disks
		sys, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", tc.level, err)
		}
		tr, err := sys.GenerateWorkload("wdev_0", 1000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Replay(tr)
		if err != nil {
			t.Fatalf("%v: %v", tc.level, err)
		}
		if res.Latency.Count != 1000 {
			t.Fatalf("%v: %d responses", tc.level, res.Latency.Count)
		}
	}
}

func TestSteeringOnRAID6(t *testing.T) {
	cfg := smallConfig(SchemeSteering)
	cfg.Level = RAID6
	cfg.Disks = 6
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.GenerateWorkload("Fin1", 2000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count != 2000 {
		t.Fatalf("%d responses", res.Latency.Count)
	}
}

func TestCapacityMatchesGeometry(t *testing.T) {
	cfg := smallConfig(SchemeLGC)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity = stripes × unit × dataDisks × pageSize; must be positive,
	// page-aligned and smaller than raw capacity.
	c := sys.Capacity()
	raw := int64(cfg.Disks) * int64(cfg.Flash.Blocks*cfg.Flash.PagesPerBlock*cfg.Flash.PageSize)
	if c <= 0 || c >= raw {
		t.Fatalf("capacity %d vs raw %d", c, raw)
	}
	if c%int64(cfg.Flash.PageSize) != 0 {
		t.Fatal("capacity not page aligned")
	}
}

func TestAblationKnobsBuild(t *testing.T) {
	cfg := smallConfig(SchemeSteering)
	cfg.MigrateHotReads = false
	cfg.ReclaimMerge = false
	cfg.MigrateThreshold = 5
	cfg.ScanThresholdPages = 4
	cfg.ColdStreamStaging = true
	cfg.DisableGCAwareWrites = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.GenerateWorkload("hm_0", 800)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Replay(tr); err != nil {
		t.Fatal(err)
	}
}

func TestDedicatedStagingSystem(t *testing.T) {
	cfg := smallConfig(SchemeSteering)
	cfg.Staging = StagingDedicated
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.GenerateWorkload("prxy_0", 1500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Staging != StagingDedicated {
		t.Fatal("results do not carry the staging kind")
	}
}
