package gcsteering

import (
	"testing"
)

// faultConfig is smallConfig plus a fault plan.
func faultConfig(scheme Scheme, plan FaultPlan) Config {
	cfg := smallConfig(scheme)
	cfg.Fault = plan
	return cfg
}

func replayWithFaults(t *testing.T, cfg Config, wl string, reqs int) (*System, *Results) {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sys.GenerateWorkload(wl, reqs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ReplayWithFaults(tr)
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

func TestFaultPlanValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Fault.Failures = []DiskFault{{Disk: 99, AtMs: 1}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("failure of a non-existent disk accepted")
	}
	cfg = DefaultConfig()
	cfg.Fault.UREPerPageRead = 2
	if err := cfg.Validate(); err == nil {
		t.Fatal("URE probability above 1 accepted")
	}
	cfg = DefaultConfig()
	cfg.Fault.Slowdowns = []DiskSlowdown{{Disk: 0, Channel: -1, DurationMs: 0}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("zero-duration slowdown accepted")
	}
}

func TestReplayWithFaultsLifecycle(t *testing.T) {
	cfg := faultConfig(SchemeLGC, FaultPlan{
		Failures:      []DiskFault{{Disk: 2, AtMs: 100}},
		RepairDelayMs: 20,
		RebuildMBps:   100,
		RebuildTarget: RebuildToSpare,
	})
	sys, res := replayWithFaults(t, cfg, "Fin1", 1500)
	f := res.Fault
	if !f.Injected {
		t.Fatal("fault stats not marked Injected")
	}
	if f.Failures != 1 || f.ArrayFailures != 0 || f.Rebuilds != 1 {
		t.Fatalf("fault stats = %+v, want 1 absorbed failure and 1 rebuild", f)
	}
	if sys.arr.Degraded() {
		t.Fatal("array still degraded after automatic repair")
	}
	if f.WindowOfVulnerability <= 0 || f.RebuildTime <= 0 || f.RebuildTime > f.WindowOfVulnerability {
		t.Fatalf("WOV %v / rebuild %v inconsistent", f.WindowOfVulnerability, f.RebuildTime)
	}
	if f.DegradedLatency.Count == 0 {
		t.Fatal("no degraded-mode requests recorded despite a mid-trace failure")
	}
	if f.DegradedLatency.Count >= res.Latency.Count {
		t.Fatal("every request counted as degraded despite repair mid-trace")
	}
	if f.DataLossEvents != 0 {
		t.Fatalf("data loss %d reported without UREs or a second failure", f.DataLossEvents)
	}
}

func TestReplayWithFaultsSurfacesUREs(t *testing.T) {
	cfg := faultConfig(SchemeLGC, FaultPlan{UREPerPageRead: 2e-3})
	sys, res := replayWithFaults(t, cfg, "HPC_R", 1500)
	f := res.Fault
	if f.UREs == 0 {
		t.Fatal("no latent sector errors surfaced at a 2e-3/page rate")
	}
	// A healthy RAID5 repairs every URE from parity: the reads degrade but
	// nothing is lost.
	if f.URERepaired != f.UREs || f.DataLossEvents != 0 {
		t.Fatalf("UREs=%d repaired=%d loss=%d, want all repaired", f.UREs, f.URERepaired, f.DataLossEvents)
	}
	if sys.arr.Stats().DegradedReads == 0 {
		t.Fatal("URE repairs did not register as degraded reads")
	}
}

// TestDoubleFaultRAID6MidRebuild loses a second disk while the first
// rebuild is running: double parity absorbs both, reads keep being served,
// and the controller rebuilds the two disks back to back.
func TestDoubleFaultRAID6MidRebuild(t *testing.T) {
	cfg := faultConfig(SchemeLGC, FaultPlan{
		Failures: []DiskFault{
			{Disk: 1, AtMs: 100},
			{Disk: 4, AtMs: 220},
		},
		RepairDelayMs: 20,
		// Slow enough that the second failure lands mid-first-rebuild.
		RebuildMBps:   20,
		RebuildTarget: RebuildToSpare,
	})
	cfg.Level = RAID6
	cfg.Disks = 6
	sys, res := replayWithFaults(t, cfg, "Fin1", 1500)
	f := res.Fault
	if f.Failures != 2 || f.ArrayFailures != 0 {
		t.Fatalf("fault stats = %+v, want both failures absorbed", f)
	}
	if f.Rebuilds != 2 {
		t.Fatalf("rebuilds = %d, want 2 (queued one at a time)", f.Rebuilds)
	}
	if sys.arr.Degraded() {
		t.Fatal("RAID6 array still degraded after both repairs")
	}
	if f.DataLossEvents != 0 {
		t.Fatalf("RAID6 double fault reported %d data-loss events", f.DataLossEvents)
	}
	if res.Latency.Count == 0 || res.ReadLatency.Count == 0 {
		t.Fatal("no requests served through the double-fault window")
	}
}

// TestDoubleFaultRAID5ReportsDataLoss runs the same scenario on RAID5: the
// second loss exceeds single parity, so the run completes but the results
// carry an array failure (data loss) instead of a successful recovery.
func TestDoubleFaultRAID5ReportsDataLoss(t *testing.T) {
	cfg := faultConfig(SchemeLGC, FaultPlan{
		Failures: []DiskFault{
			{Disk: 1, AtMs: 100},
			{Disk: 4, AtMs: 220},
		},
		RepairDelayMs: 20,
		RebuildMBps:   2, // far too slow to finish before the second loss
		RebuildTarget: RebuildToSpare,
	})
	_, res := replayWithFaults(t, cfg, "Fin1", 1500)
	f := res.Fault
	if f.Failures != 1 || f.ArrayFailures != 1 {
		t.Fatalf("fault stats = %+v, want 1 absorbed + 1 array failure", f)
	}
	if f.DataLossEvents == 0 {
		t.Fatal("RAID5 double fault reported no data loss")
	}
	// The simulation records the array loss and keeps running (the verdict
	// is in the results); only the first failure is ever rebuilt.
	if f.Rebuilds > 1 {
		t.Fatalf("rebuilds = %d after an array failure", f.Rebuilds)
	}
	if res.Latency.Count == 0 {
		t.Fatal("run did not complete the trace after the array failure")
	}
}

func TestReplayWithFaultsDeterministic(t *testing.T) {
	run := func() *Results {
		cfg := faultConfig(SchemeSteering, FaultPlan{
			Failures:       []DiskFault{{Disk: 2, AtMs: 150}},
			Slowdowns:      []DiskSlowdown{{Disk: 0, Channel: -1, StartMs: 0, DurationMs: 400, ExtraPerOpUs: 30}},
			UREPerPageRead: 1e-4,
			RepairDelayMs:  20,
			RebuildMBps:    100,
			RebuildTarget:  RebuildToSpare,
		})
		cfg.Staging = StagingDedicated
		_, res := replayWithFaults(t, cfg, "prxy_0", 1500)
		return res
	}
	a, b := run(), run()
	if a.Latency != b.Latency || a.Fault != b.Fault {
		t.Fatalf("fixed-seed fault runs diverged:\n%+v\n%+v", a.Fault, b.Fault)
	}
	if a.Fault.WindowOfVulnerability <= 0 {
		t.Fatal("no vulnerability window measured")
	}
}

func TestSlowdownStretchesLatency(t *testing.T) {
	base := smallConfig(SchemeLGC)
	_, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	plain := func() *Results {
		sys, err := New(base)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sys.GenerateWorkload("HPC_R", 1000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Replay(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	slowed := func() *Results {
		cfg := base
		cfg.Fault = FaultPlan{Slowdowns: []DiskSlowdown{
			{Disk: 0, Channel: -1, StartMs: 0, DurationMs: 1e6, ExtraPerOpUs: 500},
		}}
		_, res := replayWithFaults(t, cfg, "HPC_R", 1000)
		return res
	}()
	if slowed.Latency.Mean <= plain.Latency.Mean {
		t.Fatalf("fail-slow member did not raise mean latency: %v vs %v",
			slowed.Latency.Mean, plain.Latency.Mean)
	}
}
