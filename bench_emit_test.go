// Machine-readable benchmark emitter. TestEmitBenchJSON re-measures the
// repo's headline performance numbers with testing.Benchmark and writes
// them to the file named by the GCS_BENCH_OUT environment variable:
//
//	GCS_BENCH_OUT=BENCH_6.json go test -run TestEmitBenchJSON -count=1 .
//
// Without the variable the test skips, so the ordinary suite never pays
// for it and never touches the working tree. The emitted document carries
// a schema version; bump benchSchemaVersion when its shape changes.
package gcsteering_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"gcsteering"
	"gcsteering/internal/harness"
	"gcsteering/internal/trace"
)

// benchSchemaVersion versions the BENCH_*.json document shape.
const benchSchemaVersion = 1

// benchDoc is the emitted document. Rates are wall-clock: a simulated
// nanosecond costs far less than a real one, so events/sec measures the
// engine, not the modeled hardware.
type benchDoc struct {
	Schema            int     `json:"schema"`
	GoVersion         string  `json:"go_version"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	ReplayRequests    int     `json:"replay_requests"`
	EventsPerSec      float64 `json:"events_per_sec"`
	SimulatedGBPerSec float64 `json:"simulated_gb_per_sec"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	Fig1GridWallMs    float64 `json:"fig1_grid_wall_ms"`
	ClusterGridWallMs float64 `json:"cluster_grid_wall_ms"`
}

// emitReplay builds a fresh system per iteration and replays one HPC_W
// synthesis end to end — the same unit of work as BenchmarkEndToEndReplay,
// instrumented for throughput instead of latency. Only Replay itself runs
// inside the timed window: system construction (prefill), workload
// synthesis, and trace statistics are setup, and timing them would dilute
// events/sec into a measurement of everything except the engine.
func emitReplay(t *testing.T, requests int) (eventsPerSec, gbPerSec float64, allocsPerOp int64) {
	var events uint64
	var bytes int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		events, bytes = 0, 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, err := gcsteering.New(gcsteering.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			tr, err := sys.GenerateWorkload("HPC_W", requests)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := sys.Replay(tr); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			events += sys.Events()
			bytes += trace.ComputeStats(tr).TotalBytes
			b.StartTimer()
		}
	})
	secs := r.T.Seconds()
	if secs <= 0 || r.N == 0 {
		t.Fatal("replay benchmark measured no time")
	}
	return float64(events) / secs, float64(bytes) / 1e9 / secs, r.AllocsPerOp()
}

// emitGridWallMs times one full run of an experiment at the given request
// budget and returns milliseconds per run.
func emitGridWallMs(t *testing.T, o harness.Options, run func(harness.Options) error) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := run(o); err != nil {
				b.Fatal(err)
			}
		}
	})
	if r.N == 0 {
		t.Fatal("grid benchmark did not run")
	}
	return float64(r.NsPerOp()) / 1e6
}

func TestEmitBenchJSON(t *testing.T) {
	out := os.Getenv("GCS_BENCH_OUT")
	if out == "" {
		t.Skip("set GCS_BENCH_OUT=<path> to emit the benchmark document")
	}
	const requests = 3000
	doc := benchDoc{
		Schema:         benchSchemaVersion,
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		ReplayRequests: requests,
	}
	doc.EventsPerSec, doc.SimulatedGBPerSec, doc.AllocsPerOp = emitReplay(t, requests)

	o := benchOptions()
	doc.Fig1GridWallMs = emitGridWallMs(t, o, func(o harness.Options) error {
		_, err := harness.Fig1(o)
		return err
	})
	doc.ClusterGridWallMs = emitGridWallMs(t, o, func(o harness.Options) error {
		_, err := harness.Cluster(o)
		return err
	})

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
