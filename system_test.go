package gcsteering

import (
	"testing"

	"gcsteering/internal/core"
)

// Helpers bridging the white-box tests to internal/core types.
func corePageKey(disk, page int32) core.PageKey {
	return core.PageKey{Disk: disk, Page: page}
}

func coreStageLoc(dev, page int32) core.StageLoc {
	return core.StageLoc{Dev0: dev, Page0: page, Dev1: core.NoMirror}
}

// smallConfig shrinks the flash geometry so facade tests run fast.
func smallConfig(scheme Scheme) Config {
	cfg := DefaultConfig()
	cfg.Scheme = scheme
	cfg.Flash.Blocks = 128
	cfg.Flash.PagesPerBlock = 64
	cfg.Flash.OverProvision = 0.20
	cfg.GCLowWater = 4
	cfg.GCHighWater = 10
	return cfg
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Disks = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("1 disk accepted")
	}
	bad = cfg
	bad.StripeUnitKB = 3 // not a page multiple
	if err := bad.Validate(); err == nil {
		t.Fatal("non-page stripe unit accepted")
	}
	bad = cfg
	bad.ReservedFrac = 0.9
	if err := bad.Validate(); err == nil {
		t.Fatal("huge reservation accepted")
	}
	bad = cfg
	bad.Scheme = SchemeSteering
	bad.Staging = StagingReserved
	bad.ReservedFrac = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("reserved staging without reservation accepted")
	}
}

func TestSchemeAndStagingStrings(t *testing.T) {
	if SchemeLGC.String() != "LGC" || SchemeGGC.String() != "GGC" || SchemeSteering.String() != "GC-Steering" {
		t.Fatal("scheme names")
	}
	if StagingReserved.String() != "Reserved" || StagingDedicated.String() != "Dedicated" {
		t.Fatal("staging names")
	}
}

func TestProfilesExposed(t *testing.T) {
	if len(Profiles()) != 8 {
		t.Fatalf("%d profiles", len(Profiles()))
	}
	if _, ok := ProfileByName("HPC_W"); !ok {
		t.Fatal("HPC_W missing")
	}
}

func TestReplayAllSchemes(t *testing.T) {
	for _, scheme := range []Scheme{SchemeLGC, SchemeGGC, SchemeSteering} {
		sys, err := New(smallConfig(scheme))
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		tr, err := sys.GenerateWorkload("Fin1", 3000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Replay(tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency.Count != 3000 {
			t.Fatalf("%v: %d responses, want 3000", scheme, res.Latency.Count)
		}
		if res.Latency.Mean <= 0 {
			t.Fatalf("%v: zero mean latency", scheme)
		}
		if res.ReadLatency.Count+res.WriteLatency.Count != res.Latency.Count {
			t.Fatalf("%v: split latencies do not add up", scheme)
		}
		if scheme == SchemeSteering && res.Steering.RedirectedWrites == 0 && res.GCEpisodes > 0 {
			t.Fatalf("%v: GC happened but nothing was steered", scheme)
		}
		if res.String() == "" {
			t.Fatal("empty report")
		}
	}
}

func TestGenerateWorkloadUnknownProfile(t *testing.T) {
	sys, err := New(smallConfig(SchemeLGC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.GenerateWorkload("nope", 10); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestReplayRejectsEmptyAndInvalid(t *testing.T) {
	sys, err := New(smallConfig(SchemeLGC))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Replay(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	bad := Trace{{Timestamp: 5, Size: 4096}, {Timestamp: 1, Size: 4096}}
	if _, err := sys.Replay(bad); err == nil {
		t.Fatal("unordered trace accepted")
	}
}

func TestReplayDuringRebuildBothTargets(t *testing.T) {
	for _, tc := range []struct {
		scheme Scheme
		target RebuildTarget
	}{
		{SchemeLGC, RebuildToSpare},
		{SchemeSteering, RebuildToReserved},
		{SchemeSteering, RebuildToSpare},
	} {
		cfg := smallConfig(tc.scheme)
		if tc.scheme == SchemeSteering && tc.target == RebuildToSpare {
			cfg.Staging = StagingDedicated
		}
		sys, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sys.GenerateWorkload("hm_0", 2000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.ReplayDuringRebuild(tr, 2, 10, tc.target)
		if err != nil {
			t.Fatalf("%v/%v: %v", tc.scheme, tc.target, err)
		}
		// Only requests arriving during the reconstruction window are
		// measured (Fig. 11 semantics), so the count is bounded by, and
		// usually below, the trace length.
		if res.Latency.Count == 0 || res.Latency.Count > 2000 {
			t.Fatalf("%v/%v: %d responses", tc.scheme, tc.target, res.Latency.Count)
		}
		if res.RebuildDuration <= 0 {
			t.Fatalf("%v/%v: rebuild never completed", tc.scheme, tc.target)
		}
	}
}

func TestReplayDuringRebuildValidation(t *testing.T) {
	sys, err := New(smallConfig(SchemeLGC))
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := sys.GenerateWorkload("hm_0", 100)
	if _, err := sys.ReplayDuringRebuild(tr, 99, 10, RebuildToSpare); err == nil {
		t.Fatal("bad disk id accepted")
	}
	if _, err := sys.ReplayDuringRebuild(nil, 0, 10, RebuildToSpare); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() float64 {
		sys, err := New(smallConfig(SchemeSteering))
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sys.GenerateWorkload("mds_0", 2000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Replay(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
}

// TestReclaimFirstBeforeParallelRebuild exercises the paper's §III-D case
// ②: when the staging space serves as the replacement, previously
// redirected write data is reclaimed before reconstruction begins.
func TestReclaimFirstBeforeParallelRebuild(t *testing.T) {
	sys, err := New(smallConfig(SchemeSteering))
	if err != nil {
		t.Fatal(err)
	}
	// Seed the staging space with redirected write data: force GC on a
	// member and write through the array while it collects.
	sys.devs[1].ForceGC(sys.eng.Now())
	sys.measuring = true
	for p := 0; p < 8; p++ {
		sys.submit(sys.eng.Now(), Record{Offset: int64(p) * 4096, Size: 4096, Write: true})
	}
	sys.eng.RunFor(2_000_000) // 2ms: writes land, GC still in flight
	if sys.steer.DTable().WriteLen() == 0 {
		t.Skip("no writes were staged in this layout; nothing to exercise")
	}
	tr, err := sys.GenerateWorkload("wdev_0", 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.ReplayDuringRebuild(tr, 2, 20, RebuildToReserved)
	if err != nil {
		t.Fatal(err)
	}
	if res.RebuildDuration <= 0 {
		t.Fatal("rebuild never completed")
	}
	// After the run everything must be reclaimed (drain on completion).
	if got := sys.steer.DTable().WriteLen(); got != 0 {
		t.Fatalf("%d write entries left after rebuild + drain", got)
	}
}

// TestFailedHomeEntriesKeptDuringRebuild: write entries homed on the failed
// member must survive the rebuild-time drains (their home is gone) and
// still be served from staging.
func TestFailedHomeNotReclaimedWhileDown(t *testing.T) {
	sys, err := New(smallConfig(SchemeSteering))
	if err != nil {
		t.Fatal(err)
	}
	sys.steer.SetFailedHome(3)
	// Draining() must ignore entries homed on member 3.
	sys.steer.DTable().Put(
		corePageKey(3, 10),
		coreStageLoc(0, 99),
		true,
	)
	if sys.steer.Draining() {
		t.Fatal("entries on the failed home counted as reclaimable")
	}
	sys.steer.SetFailedHome(-1)
	if !sys.steer.Draining() {
		t.Fatal("entry not reclaimable after the member returned")
	}
}
