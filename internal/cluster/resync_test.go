package cluster

import (
	"reflect"
	"testing"
)

// resyncConfig is a timed crash landing inside the workload's dense
// opening burst, so writes are in flight on the array at the cut.
func resyncConfig(repl, journal bool, mbps float64) Config {
	return Config{
		Arrays:          4,
		Policy:          PolicyHash,
		Workers:         2,
		Base:            tinyBase(),
		Tenants:         tinyTenants(6, 150),
		ReplicateWrites: repl,
		ArrayFaults:     []ArrayFault{{Array: 1, AtMs: 100, DowntimeMs: 50}},
		ResyncMBps:      mbps,
		IntentJournal:   journal,
	}
}

// TestCrashResyncScopesToJournal pins the cluster half of the write-hole
// story: a timed-crash array with writes in flight at the cut must resync
// before serving again. The journal scopes the walk to the trailing
// open-intent window; without it the remount rereads every hosted byte,
// and the wider outage is visible in the failure record.
func TestCrashResyncScopesToJournal(t *testing.T) {
	on, err := Run(resyncConfig(true, true, 200))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(resyncConfig(true, false, 200))
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, on)
	conserve(t, off)

	fOn, fOff := on.Failures[0], off.Failures[0]
	if fOn.ResyncMs <= 0 || fOn.ResyncBytes <= 0 {
		t.Fatalf("journal-on crash measured no resync: %+v", fOn)
	}
	if fOff.ResyncMs <= 0 || fOff.ResyncBytes <= 0 {
		t.Fatalf("journal-off crash measured no resync: %+v", fOff)
	}
	// The journal's whole point: its dirty scope (a 10ms write window) is a
	// tiny fraction of the full hosted-bytes walk the unjournaled remount
	// owes, so it comes back to service far sooner.
	if fOn.ResyncBytes >= fOff.ResyncBytes {
		t.Fatalf("journal resync scope %dB >= full walk %dB", fOn.ResyncBytes, fOff.ResyncBytes)
	}
	if fOn.ResyncMs >= fOff.ResyncMs {
		t.Fatalf("journal resync %.1fms >= full walk %.1fms", fOn.ResyncMs, fOff.ResyncMs)
	}
	// The outage record includes the resync: the array did NOT serve at its
	// nominal power-on.
	if fOn.DowntimeMs <= 50 || fOff.DowntimeMs <= fOn.DowntimeMs {
		t.Fatalf("downtime not extended by resync: on=%.1fms off=%.1fms",
			fOn.DowntimeMs, fOff.DowntimeMs)
	}
}

// TestCrashResyncGatesServing pins the gate itself on an unreplicated
// fleet, where every request to the down array fails for the whole
// outage: the resync window extends the outage, so the full-walk remount
// fails strictly more arrivals than the journal-scoped one. PR 8's
// failback must not mask this — nothing serves from the array until its
// resync completes.
func TestCrashResyncGatesServing(t *testing.T) {
	on, err := Run(resyncConfig(false, true, 200))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(resyncConfig(false, false, 200))
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, on)
	conserve(t, off)
	if on.Failed == 0 {
		t.Fatal("crash during the opening burst failed no requests")
	}
	if off.Failed <= on.Failed {
		t.Fatalf("full-walk remount failed %d requests, journaled remount %d; resync gate not visible",
			off.Failed, on.Failed)
	}
	// The recovered array serves again once its resync completes.
	if on.PerArray[1].Requests == 0 || off.PerArray[1].Requests == 0 {
		t.Fatal("recovered array served nothing after resync")
	}
}

// TestResyncKnobsInertWhenOff pins the legacy guarantee: with ResyncMBps
// unset the crash-consistency knobs change nothing — recovery stays the
// magically-consistent instant flip, byte for byte.
func TestResyncKnobsInertWhenOff(t *testing.T) {
	base, err := Run(resyncConfig(true, false, 0))
	if err != nil {
		t.Fatal(err)
	}
	knobbed, err := Run(resyncConfig(true, true, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, knobbed) {
		t.Fatal("IntentJournal changed cluster results with the resync model off")
	}
	if base.Failures[0].ResyncMs != 0 || base.Failures[0].ResyncBytes != 0 {
		t.Fatalf("legacy run reported a resync: %+v", base.Failures[0])
	}
	if base.Failures[0].DowntimeMs != 50 {
		t.Fatalf("legacy downtime %.1fms, want the nominal 50", base.Failures[0].DowntimeMs)
	}
}
