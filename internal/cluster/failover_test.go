package cluster

import (
	"testing"
)

// conserve checks the fleet-level request conservation law: every admitted
// request either settled, was rejected by a shard queue, or failed to a
// whole-array crash.
func conserve(t *testing.T, r *ClusterResults) {
	t.Helper()
	if got := int64(r.Latency.Count) + r.Rejected + r.Failed; got != r.Requests {
		t.Fatalf("settled %d + rejected %d + failed %d != admitted %d",
			r.Latency.Count, r.Rejected, r.Failed, r.Requests)
	}
	var perTenant int64
	for _, tn := range r.Tenants {
		perTenant += tn.Requests
	}
	if perTenant != r.Requests {
		t.Fatalf("tenant totals %d != admitted %d", perTenant, r.Requests)
	}
}

func TestReplicationBarrierAndCounters(t *testing.T) {
	c := Config{
		Arrays:          4,
		Policy:          PolicyHash,
		Workers:         2,
		Base:            tinyBase(),
		Tenants:         tinyTenants(6, 150),
		ReplicateWrites: true,
		ReplicaLinkUs:   50,
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, r)
	if r.Replicated == 0 {
		t.Fatal("no writes replicated")
	}
	var replWrites int64
	for _, a := range r.PerArray {
		replWrites += a.ReplWrites
	}
	if replWrites != r.Replicated {
		t.Fatalf("replica legs %d != replicated writes %d", replWrites, r.Replicated)
	}
	if r.Failed != 0 || r.DataLossEvents != 0 {
		t.Fatalf("healthy fleet reported failed=%d dataloss=%d", r.Failed, r.DataLossEvents)
	}
	// No deadline: availability counts exactly the settled requests.
	if r.Available != int64(r.Latency.Count) {
		t.Fatalf("available %d != settled %d", r.Available, r.Latency.Count)
	}
	// The barrier must be visible: some replica leg trailed its primary.
	lagSeen := false
	for _, a := range r.PerArray {
		if a.ReplLagMaxUs > 0 {
			lagSeen = true
		}
	}
	if !lagSeen {
		t.Fatal("no replica lag measured despite a 50µs link")
	}
}

func TestFailoverRestoresRedundancy(t *testing.T) {
	c := Config{
		Arrays:          4,
		Policy:          PolicyHash,
		Workers:         2,
		Base:            tinyBase(),
		Tenants:         tinyTenants(6, 150),
		ReplicateWrites: true,
		ReplicaLinkUs:   20,
		// Crash inside the workload's dense opening burst, with a detection
		// gap wide enough to deterministically catch arrivals before the
		// Directory repin.
		FailoverDelayMs: 50,
		ArrayFaults:     []ArrayFault{{Array: 2, AtMs: 100}}, // permanent
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, r)
	if len(r.Failures) != 1 {
		t.Fatalf("failures: %v", r.Failures)
	}
	f := r.Failures[0]
	if !f.Permanent || f.Array != 2 {
		t.Fatalf("failure event: %+v", f)
	}
	if f.RepinnedVolumes == 0 {
		t.Fatal("failover repinned no volumes")
	}
	if f.SpareArray < 0 || f.SpareArray == 2 {
		t.Fatalf("spare array %d", f.SpareArray)
	}
	if f.RereplicatedBytes == 0 || f.RereplicationMs <= 0 {
		t.Fatalf("re-replication not measured: %+v", f)
	}
	if f.FailoverMs <= 0 {
		t.Fatalf("failover time not measured: %+v", f)
	}
	if r.Failed == 0 {
		t.Fatal("a permanent crash failed no requests (detection gap should)")
	}
	// The acceptance headline: replication on, one array lost, zero data loss.
	if r.DataLossEvents != 0 {
		t.Fatalf("data loss with replication on: %d events", r.DataLossEvents)
	}
}

func TestPermanentCrashWithoutReplicationLosesData(t *testing.T) {
	c := Config{
		Arrays:      4,
		Policy:      PolicyHash,
		Workers:     2,
		Base:        tinyBase(),
		Tenants:     tinyTenants(6, 150),
		ArrayFaults: []ArrayFault{{Array: 1, AtMs: 2000}},
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, r)
	if r.Failed == 0 {
		t.Fatal("crash failed no requests")
	}
	if r.DataLossEvents == 0 {
		t.Fatal("permanent crash without replication lost no reads")
	}
	if r.Failures[0].DataLossReads == 0 {
		t.Fatalf("failure event missed the lost reads: %+v", r.Failures[0])
	}
	// Without a second copy there is nothing to repin.
	if r.Failures[0].RepinnedVolumes != 0 {
		t.Fatalf("repinned %d volumes without replication", r.Failures[0].RepinnedVolumes)
	}
}

func TestTemporaryCrashRecoversWithoutLoss(t *testing.T) {
	c := Config{
		Arrays:          4,
		Policy:          PolicyHash,
		Workers:         2,
		Base:            tinyBase(),
		Tenants:         tinyTenants(6, 150),
		ReplicateWrites: true,
		ArrayFaults:     []ArrayFault{{Array: 1, AtMs: 2000, DowntimeMs: 500}},
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, r)
	if len(r.Failures) != 1 || r.Failures[0].Permanent {
		t.Fatalf("failures: %v", r.Failures)
	}
	if r.DataLossEvents != 0 {
		t.Fatalf("timed crash with replication lost data: %d", r.DataLossEvents)
	}
	// After recovery the array serves again: it must have taken requests
	// both before the crash and after coming back.
	if r.PerArray[1].Requests == 0 {
		t.Fatal("recovered array served nothing")
	}
}

// TestAvailabilityGapFromReplication pins the headline reliability claim:
// under the same permanent crash, replicated writes + failover keep a
// measurably larger fraction of requests answered. (No deadline here:
// availability is the settled fraction, isolating crash losses from the
// latency cost of the doubled write load.)
func TestAvailabilityGapFromReplication(t *testing.T) {
	mk := func(repl bool) Config {
		return Config{
			Arrays:          4,
			Policy:          PolicyHash,
			Workers:         2,
			Base:            tinyBase(),
			Tenants:         tinyTenants(6, 150),
			ReplicateWrites: repl,
			ArrayFaults:     []ArrayFault{{Array: 1, AtMs: 2000}},
		}
	}
	off, err := Run(mk(false))
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(mk(true))
	if err != nil {
		t.Fatal(err)
	}
	if off.Availability >= 1 {
		t.Fatalf("crash without replication lost no availability: %.4f", off.Availability)
	}
	if on.Availability <= off.Availability {
		t.Fatalf("replication availability %.4f <= unreplicated %.4f",
			on.Availability, off.Availability)
	}

	// And the deadline must actually gate: an absurdly tight deadline
	// drives availability down even on the replicated fleet.
	tight := mk(true)
	tight.DeadlineMs = 0.001
	rt, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Available >= int64(rt.Latency.Count) {
		t.Fatalf("1µs deadline gated nothing: available %d of %d settled",
			rt.Available, rt.Latency.Count)
	}
}

// TestDirectoryOverrideReplicaFollowsRing is the regression test for the
// Directory replica rule: a pinned volume's replica must come from the ring
// walk (excluding the pinned primary), not from the numeric neighbor
// (primary+1)%Arrays, which ignores the ring entirely.
func TestDirectoryOverrideReplicaFollowsRing(t *testing.T) {
	const key = "pinned/0"
	mismatchSeen := false
	for pin := 0; pin < 4; pin++ {
		c := Config{
			Arrays:    4,
			Policy:    PolicyHash,
			Base:      tinyBase(),
			Tenants:   []Tenant{{Name: "pinned", Profile: "hm_0", Requests: 10}},
			Directory: map[string]int{key: pin},
		}
		eff, err := c.resolve(nil)
		if err != nil {
			t.Fatal(err)
		}
		rt := newRouter(&c, eff, c.Base.Capacity())
		v := rt.volByKey(key)
		if v == nil {
			t.Fatal("volume not built")
		}
		if v.primary != pin {
			t.Fatalf("pin %d: primary %d", pin, v.primary)
		}
		want := rt.ringP.replicaExcluding(key, pin)
		if v.replica != want {
			t.Fatalf("pin %d: replica %d, ring walk wants %d", pin, v.replica, want)
		}
		if v.replica == v.primary {
			t.Fatalf("pin %d: replica co-located with primary", pin)
		}
		if v.replica != (pin+1)%4 {
			mismatchSeen = true
		}
	}
	if !mismatchSeen {
		t.Fatal("ring walk agreed with (primary+1)%Arrays for every pin; regression not exercised")
	}
}
