package cluster

import (
	"bytes"
	"reflect"
	"testing"
)

func TestChaosCompileDeterministic(t *testing.T) {
	p := ChaosPlan{Seed: 42, Crashes: 2, CrashDowntimeMs: 300, LinkSlowdowns: 2, GCStorms: 2}
	taken := make([]bool, 8)
	f1, l1, s1 := p.compile(8, 5, 5000, taken)
	f2, l2, s2 := p.compile(8, 5, 5000, make([]bool, 8))
	if !reflect.DeepEqual(f1, f2) || !reflect.DeepEqual(l1, l2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("identical plans compiled differently")
	}
	p2 := p
	p2.Seed = 43
	f3, _, _ := p2.compile(8, 5, 5000, make([]bool, 8))
	if reflect.DeepEqual(f1, f3) {
		t.Fatal("different seeds compiled identical crash schedules")
	}
	for _, f := range f1 {
		if f.AtMs < 5000*0.25 || f.AtMs > 5000*0.75 {
			t.Fatalf("crash at %.1fms outside the mid-horizon band", f.AtMs)
		}
	}
}

func TestChaosCompileRespectsTakenAndLeavesOneStanding(t *testing.T) {
	p := ChaosPlan{Seed: 7, Crashes: 3}
	taken := []bool{false, true, false, true}
	faults, _, _ := p.compile(4, 5, 1000, taken)
	// Only arrays 0 and 2 are free, and one must stay standing.
	if len(faults) != 1 {
		t.Fatalf("wanted 1 crash (2 free arrays, 1 must survive), got %d", len(faults))
	}
	if a := faults[0].Array; a != 0 && a != 2 {
		t.Fatalf("crashed a taken array: %d", a)
	}
}

func TestChaosValidate(t *testing.T) {
	base := tinyBase()
	good := Config{Arrays: 4, Base: base, Tenants: tinyTenants(1, 10)}
	for _, tc := range []struct {
		name string
		plan ChaosPlan
	}{
		{"crash whole fleet", ChaosPlan{Crashes: 4}},
		{"negative storms", ChaosPlan{GCStorms: -1}},
		{"storm width range", ChaosPlan{GCStorms: 1, StormArrays: 5}},
		{"negative duration", ChaosPlan{Crashes: 1, CrashDowntimeMs: -2}},
	} {
		c := good
		c.Chaos = tc.plan
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	c := good
	c.Chaos = ChaosPlan{Seed: 1, Crashes: 1, LinkSlowdowns: 1, GCStorms: 1}
	if err := c.Validate(); err != nil {
		t.Fatalf("valid chaos plan rejected: %v", err)
	}
}

// TestNoDataLossUnderAnySingleArrayCrash sweeps the permanent crash over
// every array: with replicated writes on, no single-array failure may ever
// produce a data-loss event.
func TestNoDataLossUnderAnySingleArrayCrash(t *testing.T) {
	for a := 0; a < 4; a++ {
		c := Config{
			Arrays:          4,
			Policy:          PolicyHash,
			Workers:         2,
			Base:            tinyBase(),
			Tenants:         tinyTenants(6, 120),
			ReplicateWrites: true,
			ArrayFaults:     []ArrayFault{{Array: a, AtMs: 2000}},
		}
		r, err := Run(c)
		if err != nil {
			t.Fatalf("array %d: %v", a, err)
		}
		conserve(t, r)
		if r.DataLossEvents != 0 {
			t.Fatalf("array %d permanent crash: %d data-loss events with replication on",
				a, r.DataLossEvents)
		}
	}
}

// TestChaosRunDeterministicAcrossWorkers is the chaos arm of the
// determinism contract: a full chaos run (crash + link slowdown + GC
// storm + replication + steering) must be byte-identical across worker
// counts.
func TestChaosRunDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) Config {
		return Config{
			Arrays:          4,
			Policy:          PolicySteering,
			Workers:         workers,
			Base:            tinyBase(),
			Tenants:         tinyTenants(4, 120),
			ReplicateWrites: true,
			ReplicaLinkUs:   40,
			DeadlineMs:      15,
			Chaos: ChaosPlan{
				Seed:            11,
				Crashes:         1,
				CrashDowntimeMs: 800,
				LinkSlowdowns:   1,
				GCStorms:        1,
			},
		}
	}
	var tr1, tr3 bytes.Buffer
	c1 := mk(1)
	c1.Trace = &tr1
	r1, err := Run(c1)
	if err != nil {
		t.Fatal(err)
	}
	c3 := mk(3)
	c3.Trace = &tr3
	r3, err := Run(c3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("chaos results differ across worker counts:\n1: %s\n3: %s", r1, r3)
	}
	if !bytes.Equal(tr1.Bytes(), tr3.Bytes()) {
		t.Fatal("chaos traces differ across worker counts")
	}
	if len(r1.Failures) != 1 {
		t.Fatalf("chaos compiled %d crashes, want 1", len(r1.Failures))
	}
	conserve(t, r1)
}
