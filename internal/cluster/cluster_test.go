package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"gcsteering"
)

// tinyBase shrinks the per-array geometry so fleet tests run in seconds.
func tinyBase() gcsteering.Config {
	cfg := gcsteering.DefaultConfig()
	cfg.Flash.Blocks = 128
	cfg.Flash.PagesPerBlock = 64
	cfg.Flash.OverProvision = 0.2
	cfg.GCLowWater = 4
	cfg.GCHighWater = 10
	return cfg
}

func tinyTenants(n, requests int) []Tenant {
	profiles := []string{"Fin1", "hm_0", "prxy_0", "HPC_R"}
	qos := []QoS{Gold, Silver, Bronze}
	out := make([]Tenant, n)
	for i := range out {
		out[i] = Tenant{
			Name:     "t" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Profile:  profiles[i%len(profiles)],
			QoS:      qos[i%len(qos)],
			Requests: requests,
			Volumes:  1 + i%2,
		}
	}
	return out
}

func TestRingLookup(t *testing.T) {
	r := newRing(8, 64)
	hits := make([]int, 8)
	for i := 0; i < 256; i++ {
		key := "vol/" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		p1, r1 := r.lookup(key)
		p2, r2 := r.lookup(key)
		if p1 != p2 || r1 != r2 {
			t.Fatalf("lookup(%q) unstable: (%d,%d) vs (%d,%d)", key, p1, r1, p2, r2)
		}
		if p1 == r1 {
			t.Fatalf("lookup(%q): replica equals primary %d", key, p1)
		}
		hits[p1]++
	}
	for a, n := range hits {
		if n == 0 {
			t.Fatalf("array %d received no keys: %v", a, hits)
		}
	}
}

func TestRingSingleArrayReplicaDegenerate(t *testing.T) {
	r := newRing(1, 16)
	p, rep := r.lookup("x")
	if p != 0 || rep != 0 {
		t.Fatalf("one-array ring: got (%d,%d)", p, rep)
	}
}

// TestRingEmptyLookupDoesNotPanic pins the degenerate-ring fix: a ring with
// no points (zero arrays or zero vnodes) used to index r.points[0] and
// panic. Config validation rejects such fleets, and lookup itself now
// degrades to array 0 as a backstop for direct callers.
func TestRingEmptyLookupDoesNotPanic(t *testing.T) {
	for _, r := range []*ring{newRing(0, 64), newRing(4, 0), newRing(0, 0)} {
		p, rep := r.lookup("tenant/vol")
		if p != 0 || rep != 0 {
			t.Fatalf("empty ring lookup: got (%d,%d), want (0,0)", p, rep)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := tinyBase()
	good := Config{Arrays: 2, Base: base, Tenants: tinyTenants(1, 10)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"one array", func(c *Config) { c.Arrays = 1 }},
		{"zero arrays", func(c *Config) { c.Arrays = 0 }},
		{"negative vnodes", func(c *Config) { c.VNodes = -1 }},
		{"no tenants", func(c *Config) { c.Tenants = nil }},
		{"bad profile", func(c *Config) { c.Tenants = []Tenant{{Name: "x", Profile: "nope", Requests: 1}} }},
		{"no requests", func(c *Config) { c.Tenants = []Tenant{{Name: "x", Profile: "Fin1"}} }},
		{"fault array range", func(c *Config) { c.FaultArrays = []int{9} }},
		{"directory range", func(c *Config) { c.Directory = map[string]int{"x/0": -1} }},
	} {
		c := good
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestRunHashPolicyConservation(t *testing.T) {
	c := Config{
		Arrays:  4,
		Policy:  PolicyHash,
		Workers: 2,
		Base:    tinyBase(),
		Tenants: tinyTenants(6, 150),
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, tn := range c.Tenants {
		want += int64(tn.Requests)
	}
	if r.Requests+r.Shed != want {
		t.Fatalf("admitted %d + shed %d != generated %d", r.Requests, r.Shed, want)
	}
	if r.Redirects != 0 {
		t.Fatalf("hash policy redirected %d requests", r.Redirects)
	}
	var perArray, perTenant int64
	for _, a := range r.PerArray {
		perArray += a.Requests
	}
	for _, tn := range r.Tenants {
		perTenant += tn.Requests
	}
	if perArray != r.Requests || perTenant != r.Requests {
		t.Fatalf("routing totals: arrays %d, tenants %d, admitted %d", perArray, perTenant, r.Requests)
	}
	if got := int64(r.Latency.Count) + r.Rejected; got != r.Requests {
		t.Fatalf("settled %d + rejected %d != admitted %d", r.Latency.Count, r.Rejected, r.Requests)
	}
	if !strings.Contains(r.String(), "policy=hash-only") {
		t.Fatalf("report: %s", r)
	}
}

func TestRunSteeringDivertsAroundRebuild(t *testing.T) {
	c := Config{
		Arrays:      4,
		Policy:      PolicySteering,
		Workers:     3,
		Base:        tinyBase(),
		Tenants:     tinyTenants(8, 150),
		FaultArrays: []int{0},
		Fault: gcsteering.FaultPlan{
			Failures:      []gcsteering.DiskFault{{Disk: 1, AtMs: 0.5}},
			RepairDelayMs: 1,
			RebuildMBps:   20,
		},
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerArray[0].BusyWindows == 0 {
		t.Fatal("faulted array recorded no busy windows")
	}
	if r.Redirects == 0 {
		t.Fatal("steering diverted nothing around the rebuild")
	}
	if r.PerArray[0].Diverted == 0 {
		t.Fatal("no reads diverted off the rebuilding array")
	}
	if r.WOV <= 0 {
		t.Fatal("no window of vulnerability measured")
	}
	var recv int64
	for _, a := range r.PerArray {
		recv += a.Received
	}
	if recv != r.Redirects {
		t.Fatalf("received %d != redirects %d", recv, r.Redirects)
	}
}

func TestAdmissionBudgets(t *testing.T) {
	base := tinyBase()
	tenants := []Tenant{
		{Name: "gold", Profile: "Fin1", QoS: Gold, Requests: 200, ArrivalScale: 4},
		{Name: "bronze", Profile: "Fin1", QoS: Bronze, Requests: 200, ArrivalScale: 4, BudgetPerWindow: 2},
	}
	c := Config{Arrays: 2, Policy: PolicyHash, Workers: 1, Base: base, Tenants: tenants}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tenants[0].Shed != 0 {
		t.Fatalf("gold tenant shed %d requests", r.Tenants[0].Shed)
	}
	if r.Tenants[1].Shed == 0 {
		t.Fatal("bronze tenant with a 2-per-window budget shed nothing")
	}
}

func TestDirectoryOverride(t *testing.T) {
	// Pin every volume of one tenant to array 3 and confirm all its
	// requests land there.
	tenants := []Tenant{{Name: "pinned", Profile: "hm_0", Requests: 100, Volumes: 2}}
	c := Config{
		Arrays:  4,
		Policy:  PolicyHash,
		Workers: 1,
		Base:    tinyBase(),
		Tenants: tenants,
		Directory: map[string]int{
			"pinned/0": 3,
			"pinned/1": 3,
		},
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.PerArray[3].Requests != r.Requests {
		t.Fatalf("pinned tenant split: array 3 got %d of %d", r.PerArray[3].Requests, r.Requests)
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	mk := func(workers int) Config {
		return Config{
			Arrays:      4,
			Policy:      PolicySteering,
			Workers:     workers,
			Base:        tinyBase(),
			Tenants:     tinyTenants(4, 120),
			FaultArrays: []int{1},
			Fault: gcsteering.FaultPlan{
				Failures:      []gcsteering.DiskFault{{Disk: 0, AtMs: 1}},
				RepairDelayMs: 1,
				RebuildMBps:   30,
			},
		}
	}
	var tr1, tr3 bytes.Buffer
	c1 := mk(1)
	c1.Trace = &tr1
	r1, err := Run(c1)
	if err != nil {
		t.Fatal(err)
	}
	c3 := mk(3)
	c3.Trace = &tr3
	r3, err := Run(c3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("results differ across worker counts:\n1: %s\n3: %s", r1, r3)
	}
	if !bytes.Equal(tr1.Bytes(), tr3.Bytes()) {
		t.Fatal("merged traces differ across worker counts")
	}
	if tr1.Len() == 0 {
		t.Fatal("no trace emitted")
	}
}
