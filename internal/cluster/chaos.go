// chaos.go compiles a seeded chaos plan — array crashes, replica-link
// slowdowns, correlated GC storms — into the explicit fault schedule the
// router executes. Compilation is a pure function of (plan, fleet shape,
// horizon): the generator is a local splitmix64 stream, so a chaos run is
// exactly as reproducible as a healthy one and the byte-identical
// determinism gates apply unchanged.
package cluster

import (
	"fmt"
	"math"

	"gcsteering"
)

// ChaosPlan seeds deterministic fleet-level adversity. The zero value
// injects nothing. All windows land inside [0, HorizonMs]; a zero horizon
// is resolved to the admitted workload's span at run time.
type ChaosPlan struct {
	// Seed drives every draw; identical plans compile identically.
	Seed int64
	// HorizonMs bounds the event window (0 = the workload's span).
	HorizonMs float64

	// Crashes is how many distinct arrays crash (arrays already carrying an
	// explicit ArrayFault are never chosen). CrashDowntimeMs > 0 makes the
	// crashes timed; 0 makes them permanent.
	Crashes         int
	CrashDowntimeMs float64

	// LinkSlowdowns degrade the replication link into randomly chosen
	// arrays: each window adds LinkExtraUs (0 = 200) to replica and mirror
	// legs for LinkSlowdownMs (0 = horizon/4).
	LinkSlowdowns  int
	LinkExtraUs    float64
	LinkSlowdownMs float64

	// GCStorms are correlated service-time spikes: each storm hits
	// StormArrays arrays (0 = max(2, Arrays/2)) at once with StormExtraUs
	// (0 = 150) per page op for StormMs (0 = horizon/5) — the unsynchronized
	//-GC worst case where several replicas degrade together.
	GCStorms     int
	StormArrays  int
	StormExtraUs float64
	StormMs      float64
}

// Enabled reports whether the plan injects anything.
func (p ChaosPlan) Enabled() bool {
	return p.Crashes > 0 || p.LinkSlowdowns > 0 || p.GCStorms > 0
}

// validate reports plan errors against the fleet size.
func (p ChaosPlan) validate(arrays int) error {
	if p.Crashes < 0 || p.LinkSlowdowns < 0 || p.GCStorms < 0 {
		return fmt.Errorf("cluster: chaos counts must be non-negative")
	}
	if p.Crashes >= arrays {
		return fmt.Errorf("cluster: chaos Crashes %d would down the whole %d-array fleet", p.Crashes, arrays)
	}
	if p.StormArrays < 0 || p.StormArrays > arrays {
		return fmt.Errorf("cluster: chaos StormArrays %d out of range [0,%d]", p.StormArrays, arrays)
	}
	for _, v := range []float64{p.HorizonMs, p.CrashDowntimeMs, p.LinkExtraUs,
		p.LinkSlowdownMs, p.StormExtraUs, p.StormMs} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cluster: chaos durations must be finite and non-negative")
		}
	}
	return nil
}

// chaosRand is a splitmix64 stream: tiny, allocation-free, and local to
// the plan, so chaos draws cannot perturb (or be perturbed by) any other
// seeded stream in the run.
type chaosRand struct{ s uint64 }

func (r *chaosRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *chaosRand) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// float returns a uniform draw in [0, 1).
func (r *chaosRand) float() float64 {
	return float64(r.next()>>11) / float64(uint64(1)<<53)
}

// pick selects k distinct entries from candidates with a partial
// Fisher-Yates shuffle, mutating candidates in place.
func (r *chaosRand) pick(candidates []int, k int) []int {
	if k > len(candidates) {
		k = len(candidates)
	}
	for i := 0; i < k; i++ {
		j := i + r.intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
	}
	return candidates[:k]
}

// compile lowers the plan to array faults, link slowdowns, and per-array
// intra-array slowdown storms. taken marks arrays that already carry an
// explicit fault and must not be crashed again; disks is the per-array
// member count a storm fans out over.
func (p ChaosPlan) compile(arrays, disks int, horizonMs float64, taken []bool) ([]ArrayFault, []LinkSlowdown, [][]gcsteering.DiskSlowdown) {
	rng := &chaosRand{s: uint64(p.Seed) ^ 0x6368616f732d7631}
	var faults []ArrayFault
	var links []LinkSlowdown
	storms := make([][]gcsteering.DiskSlowdown, arrays)

	if p.Crashes > 0 {
		var free []int
		for a := 0; a < arrays; a++ {
			if !taken[a] {
				free = append(free, a)
			}
		}
		n := p.Crashes
		if n >= len(free) {
			n = len(free) - 1 // always leave one untouched array standing
		}
		for _, a := range rng.pick(free, n) {
			faults = append(faults, ArrayFault{
				Array:      a,
				AtMs:       horizonMs * (0.25 + 0.5*rng.float()),
				DowntimeMs: p.CrashDowntimeMs,
			})
		}
	}

	extraUs := p.LinkExtraUs
	if extraUs == 0 {
		extraUs = 200
	}
	durMs := p.LinkSlowdownMs
	if durMs == 0 {
		durMs = horizonMs / 4
	}
	for i := 0; i < p.LinkSlowdowns; i++ {
		links = append(links, LinkSlowdown{
			Array:      rng.intn(arrays),
			StartMs:    horizonMs * (0.1 + 0.6*rng.float()),
			DurationMs: durMs,
			ExtraUs:    extraUs,
		})
	}

	stormExtraUs := p.StormExtraUs
	if stormExtraUs == 0 {
		stormExtraUs = 150
	}
	stormMs := p.StormMs
	if stormMs == 0 {
		stormMs = horizonMs / 5
	}
	width := p.StormArrays
	if width == 0 {
		width = arrays / 2
		if width < 2 {
			width = 2
		}
	}
	for i := 0; i < p.GCStorms; i++ {
		startMs := horizonMs * (0.1 + 0.6*rng.float())
		all := make([]int, arrays)
		for a := range all {
			all[a] = a
		}
		for _, a := range rng.pick(all, width) {
			for d := 0; d < disks; d++ {
				storms[a] = append(storms[a], gcsteering.DiskSlowdown{
					Disk: d, Channel: -1,
					StartMs: startMs, DurationMs: stormMs,
					ExtraPerOpUs: stormExtraUs,
				})
			}
		}
	}
	return faults, links, storms
}
