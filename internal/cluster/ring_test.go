package cluster

import (
	"fmt"
	"sort"
	"testing"

	"gcsteering"
	"gcsteering/internal/sim"
)

// TestFnv64AtMatchesSprintf pins the allocation-free fnv64At to the exact
// byte stream the old fmt.Sprintf form hashed. If the two ever diverge,
// every volume extent silently re-places, so this equivalence is what makes
// the hot-path rewrite a pure optimisation.
func TestFnv64AtMatchesSprintf(t *testing.T) {
	keys := []string{"", "t", "tenant-0/0", "tenant-12/7", "a/b/c", "@", "vol@9",
		"tenant-with-a-much-longer-key-than-usual/123456"}
	arrays := []int{0, 1, 2, 9, 10, 99, 100, 1234, 987654321}
	for _, k := range keys {
		for _, a := range arrays {
			want := fnv64(fmt.Sprintf("%s@%d", k, a))
			if got := fnv64At(k, a); got != want {
				t.Fatalf("fnv64At(%q, %d) = %#x, want %#x", k, a, got, want)
			}
		}
	}
}

// TestSearchGEMatchesSortSearch checks the closure-free ring search against
// sort.Search over every probe position of a dense ring, including the
// below-first and past-last boundaries.
func TestSearchGEMatchesSortSearch(t *testing.T) {
	r := newRing(5, 16)
	probes := []uint64{0, 1, ^uint64(0)}
	for _, p := range r.points {
		probes = append(probes, p.hash-1, p.hash, p.hash+1)
	}
	for _, h := range probes {
		want := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= h })
		if got := r.searchGE(h); got != want {
			t.Fatalf("searchGE(%#x) = %d, want %d", h, got, want)
		}
	}
	empty := &ring{}
	if got := empty.searchGE(42); got != 0 {
		t.Fatalf("searchGE on empty ring = %d, want 0", got)
	}
}

// TestBusyTimelineAt probes every interval edge of a merged timeline and
// checks the hand-rolled binary search against a linear scan.
func TestBusyTimelineAt(t *testing.T) {
	tl := newBusyTimeline([]gcsteering.BusyInterval{
		{Start: 10, End: 20},
		{Start: 15, End: 25}, // overlaps: merges with the first
		{Start: 40, End: 41},
		{Start: 100, End: 200},
	})
	linear := func(at sim.Time) bool {
		for i := range tl.starts {
			if tl.starts[i] <= at && at < tl.ends[i] {
				return true
			}
		}
		return false
	}
	for at := sim.Time(0); at <= 210; at++ {
		if got, want := tl.at(at), linear(at); got != want {
			t.Fatalf("at(%d) = %v, want %v", at, got, want)
		}
	}
	if (busyTimeline{}).at(5) {
		t.Fatal("empty timeline reported busy")
	}
}

// TestRouterPushOrdering inserts events out of order, with at-time ties,
// and from a partially processed queue, and checks push keeps events[next:]
// sorted by (at, seq) — the invariant the closure-free binary search must
// preserve exactly as the sort.Search form did.
func TestRouterPushOrdering(t *testing.T) {
	rt := &router{}
	times := []sim.Time{50, 10, 30, 10, 70, 30, 30, 5, 90, 10}
	for _, at := range times {
		rt.push(domainEvent{at: at})
	}
	assertSorted := func() {
		t.Helper()
		for i := rt.next + 1; i < len(rt.events); i++ {
			a, b := rt.events[i-1], rt.events[i]
			if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
				t.Fatalf("events out of order at %d: (%d,%d) before (%d,%d)",
					i, a.at, a.seq, b.at, b.seq)
			}
		}
	}
	assertSorted()
	// Ties must preserve insertion order (seq ascending).
	prev := -1
	for _, e := range rt.events {
		if e.at == 10 {
			if e.seq <= prev {
				t.Fatalf("tied events reordered: seq %d after %d", e.seq, prev)
			}
			prev = e.seq
		}
	}
	// Consume a prefix, then insert into the remaining future.
	rt.next = 4
	rt.push(domainEvent{at: 60})
	rt.push(domainEvent{at: 30}) // before some processed entries' times, still future-relative
	assertSorted()
}
