// failover.go is the cluster's failure-domain machinery: whole-array fault
// plans, synchronous write replication with a completion barrier, Directory
// failover (repinning a crashed array's volumes onto their replicas), paced
// background copy jobs (re-replication after a crash, live volume
// migration), and the offline router that sweeps the admitted request
// stream through all of it.
//
// The router is deliberately offline and single-threaded: cluster state
// (volume placement, array liveness, copy-job progress) advances through a
// time-ordered domain-event queue interleaved with the admitted arrivals,
// so every routing decision is a pure function of the configuration — the
// shard worker pool underneath never sees any of it, which is what keeps
// the byte-identical-across-workers determinism contract intact.
package cluster

import (
	"fmt"
	"sort"

	"gcsteering"
	"gcsteering/internal/obs"
	"gcsteering/internal/rebuild"
	"gcsteering/internal/sim"
	"gcsteering/internal/trace"
)

// ArrayFault schedules one whole-array crash: from AtMs the array accepts
// nothing (requests routed to it fail), and after the failover delay the
// Directory repins its volumes onto their replicas (ReplicateWrites only —
// without replication there is no second copy to pin to). DowntimeMs > 0
// recovers the array after that long; 0 means the crash is permanent and
// redundancy is restored onto a spare array instead.
type ArrayFault struct {
	Array      int
	AtMs       float64
	DowntimeMs float64
}

// permanent reports whether the array never comes back.
func (f ArrayFault) permanent() bool { return f.DowntimeMs <= 0 }

// LinkSlowdown degrades the replication link into one array: replica and
// mirror legs targeting Array pay ExtraUs on top of the base link latency
// while the window is open.
type LinkSlowdown struct {
	Array      int
	StartMs    float64
	DurationMs float64
	ExtraUs    float64
}

// Migration moves one volume to a new array at a scheduled instant: the
// copy job streams the volume's bytes at MigrateMBps while the old
// placement keeps serving (writes are mirrored to the destination), and
// when the copy drains the placement flips. Requests in flight at the
// cutover complete on the array they were routed to.
type Migration struct {
	// Tenant names the owning tenant; Volume is its volume index.
	Tenant string
	Volume int
	// To is the destination array; AtMs the copy start.
	To   int
	AtMs float64
}

// Leg roles: every admitted request lowers to one serving leg plus,
// depending on cluster state, replica/mirror legs; background copy jobs
// contribute read/write legs of their own (rid -1).
const (
	rolePrimary   = uint8(iota) // the serving read/write
	roleReplica                 // synchronous replica write (barrier member)
	roleMirror                  // copy-window mirror write (asynchronous)
	roleCopyRead                // background copy chunk read (source)
	roleCopyWrite               // background copy chunk write (destination)
)

// Copy-job kinds select what flips at cutover.
const (
	jobMigrate  = iota // volume migration: primary moves to job.to
	jobRerepl          // replica refresh / spare copy: redundancy restored
	jobFailback        // copy-back to a recovered home primary
)

// volState is one volume's live placement and redundancy state.
type volState struct {
	key    string
	tenant int
	bytes  int64
	// primary/replica are the current serving placement; homePrimary and
	// homeReplica the ring placement failover departs from and failback
	// restores.
	primary, replica         int
	homePrimary, homeReplica int
	// degraded marks a volume serving from its only live copy (after
	// failover, or while a spare copy is still streaming).
	degraded bool
	// dirtyBytes accumulates writes the replica missed (replica down, or
	// degraded with no mirror) — the backlog a re-replication job copies.
	dirtyBytes int64
	// job is the in-flight copy job, if any; a volume with a job never
	// takes steering diversions (its replica is not yet up to date).
	job *copyJob
}

// copyJob is one paced background copy stream (re-replication, failback,
// or migration), lowered to chunk read/write legs on the source and
// destination shards at rebuild.PaceInterval spacing.
type copyJob struct {
	id        int
	vol       *volState
	kind      int
	from, to  int
	start     sim.Time
	cutoverAt sim.Time
	bytes     int64
	// mirror routes the volume's writes to the destination while the copy
	// streams, so the copied image stays consistent (off for replica
	// refreshes, whose writes already replicate normally).
	mirror bool
	fault  int // FailureEvent index, -1
	mig    int // MigrationEvent index, -1
}

// Domain-event kinds, processed in (at, seq) order interleaved with the
// admitted arrivals.
const (
	evCrash = iota
	evFailover
	evRecover
	evMigrate
	evCutover
	// evResyncDone ends a recovering array's crash-consistency resync:
	// only then does the array serve again (Config.ResyncMBps).
	evResyncDone
)

// journalWindow is the open-intent horizon the cluster-level resync model
// assumes for a journaled array: a crash can leave dirty at most the
// stripes written in roughly this span, so the journal-on resync scope is
// the array's trailing write volume over it.
const journalWindow = 10 * sim.Millisecond

// winEntry is one write-volume sample in an array's trailing window.
type winEntry struct {
	t     sim.Time
	bytes int64
}

// domainEvent is one scheduled cluster-state transition.
type domainEvent struct {
	at    sim.Time
	seq   int // insertion order, the total-order tiebreak
	kind  int
	array int
	fault int // index into eff.faults / router.faults
	mig   int // index into Config.Migrations
	job   *copyJob
}

// legRef locates one of a request's legs after the per-array traces are
// sorted: (array, seq) indexes the shard measurement, role and linkNs
// reconstruct the client view.
type legRef struct {
	array, seq int
	role       uint8
	linkNs     int64
}

// reqRoute is the router's record of one admitted request, joined with the
// shard measurements by aggregate.
type reqRoute struct {
	tenant    int
	write     bool
	redirect  bool
	failed    bool // failed at the router: serving array down
	dataLoss  bool
	failArray int // array whose crash failed it, -1
	// altLive records whether a live, up-to-date second copy existed at
	// routing time — it decides whether an in-flight-at-crash read is a
	// data-loss event or only an availability hit.
	altLive bool
	legs    []legRef
}

// shardRec pairs a shard trace record with its routing metadata; the pair
// sorts as a unit when the per-array stream is time-ordered.
type shardRec struct {
	rec  trace.Record
	meta reqMeta
}

// effectivePlan is the resolved fault configuration: explicit faults plus
// everything the chaos plan compiled, and the per-array intra-array fault
// plans the shards replay under.
type effectivePlan struct {
	faults []ArrayFault
	links  []LinkSlowdown
	plans  []gcsteering.FaultPlan
}

// resolve merges the explicit fault configuration with the compiled chaos
// plan and validates the combination. admitted is only read for the chaos
// horizon default (the span of the workload).
func (c Config) resolve(admitted []placedReq) (effectivePlan, error) {
	e := effectivePlan{plans: make([]gcsteering.FaultPlan, c.Arrays)}
	for _, a := range c.FaultArrays {
		e.plans[a] = c.Fault
	}
	e.faults = append([]ArrayFault(nil), c.ArrayFaults...)
	e.links = append([]LinkSlowdown(nil), c.LinkFaults...)
	if c.Chaos.Enabled() {
		horizonMs := c.Chaos.HorizonMs
		if horizonMs <= 0 {
			var last sim.Time
			for _, pr := range admitted {
				if pr.rec.Timestamp > last {
					last = pr.rec.Timestamp
				}
			}
			horizonMs = float64(last) / float64(sim.Millisecond)
			if horizonMs < 1 {
				horizonMs = 1
			}
		}
		taken := make([]bool, c.Arrays)
		for _, f := range e.faults {
			taken[f.Array] = true
		}
		faults, links, storms := c.Chaos.compile(c.Arrays, c.Base.Disks, horizonMs, taken)
		e.faults = append(e.faults, faults...)
		e.links = append(e.links, links...)
		for a, ss := range storms {
			if len(ss) > 0 {
				// Copy-on-append: plans[a] may alias c.Fault.Slowdowns
				// shared across FaultArrays entries.
				merged := append([]gcsteering.DiskSlowdown(nil), e.plans[a].Slowdowns...)
				e.plans[a].Slowdowns = append(merged, ss...)
			}
		}
	}
	seen := make([]bool, c.Arrays)
	for _, f := range e.faults {
		if f.Array < 0 || f.Array >= c.Arrays {
			return e, fmt.Errorf("cluster: fault array %d out of range [0,%d)", f.Array, c.Arrays)
		}
		if seen[f.Array] {
			return e, fmt.Errorf("cluster: array %d has more than one whole-array fault", f.Array)
		}
		seen[f.Array] = true
	}
	return e, nil
}

// noCrash is the downAt/upAt sentinel for arrays without a fault.
const noCrash = sim.Time(-1)

// router sweeps the admitted stream through the cluster's failure-domain
// state machine and lowers it to per-array shard traces.
type router struct {
	c        *Config
	eff      effectivePlan
	capacity int64
	ringP    *ring
	busy     []busyTimeline // nil: no steering diversion this pass
	tr       *obs.Tracer
	legacy   bool // reproduce the PR-6 stale-signal diversion exactly

	vols []*volState

	down     []bool
	downAt   []sim.Time
	upAt     []sim.Time
	faultIdx []int // per array, -1

	events   []domainEvent // sorted by (at, seq) from next onward
	next     int
	eventSeq int

	recs       [][]shardRec
	routes     []reqRoute
	jobs       []*copyJob
	faults     []FailureEvent
	migs       []MigrationEvent
	diverted   []int64
	replicated int64
	linkNs     int64

	// Crash-consistency resync model (Config.ResyncMBps > 0): per-array
	// trailing write-volume windows feeding the journal-on resync scope,
	// and the scope captured at each crash.
	wWin        [][]winEntry
	resyncBytes []int64
}

// legacyRouting reports whether the PR-6 stale-signal diversion applies
// unchanged: no replication, no cluster-level faults, no migrations, no
// chaos — the regime all pre-existing steering behavior was pinned in.
func (c Config) legacyRouting() bool {
	return !c.ReplicateWrites && len(c.ArrayFaults) == 0 && len(c.Migrations) == 0 &&
		len(c.LinkFaults) == 0 && !c.Chaos.Enabled()
}

// newRouter builds the volume table (in tenant-then-volume order — never
// from a map) and schedules the initial domain events.
func newRouter(c *Config, eff effectivePlan, capacity int64) *router {
	rt := &router{
		c:        c,
		eff:      eff,
		capacity: capacity,
		ringP:    newRing(c.Arrays, c.vnodes()),
		legacy:   c.legacyRouting(),
		down:     make([]bool, c.Arrays),
		downAt:   make([]sim.Time, c.Arrays),
		upAt:     make([]sim.Time, c.Arrays),
		faultIdx: make([]int, c.Arrays),
		recs:     make([][]shardRec, c.Arrays),
		diverted: make([]int64, c.Arrays),
		linkNs:   int64(c.ReplicaLinkUs * float64(sim.Microsecond)),
	}
	if c.ResyncMBps > 0 {
		rt.wWin = make([][]winEntry, c.Arrays)
		rt.resyncBytes = make([]int64, c.Arrays)
	}
	for a := 0; a < c.Arrays; a++ {
		rt.downAt[a] = noCrash
		rt.upAt[a] = noCrash
		rt.faultIdx[a] = -1
	}
	for ti, t := range c.Tenants {
		volBytes := capacity / int64(t.volumes())
		for v := 0; v < t.volumes(); v++ {
			key := fmt.Sprintf("%s/%d", t.Name, v)
			primary, replica := rt.ringP.lookup(key)
			if a, ok := c.Directory[key]; ok {
				primary = a
				// The replica still comes from the ring walk (excluding the
				// pinned primary), not (primary+1)%Arrays: the numeric
				// neighbor ignores the ring and can co-locate the replica
				// with the pinned primary's failure neighbor.
				replica = rt.ringP.replicaExcluding(key, primary)
			}
			rt.vols = append(rt.vols, &volState{
				key: key, tenant: ti, bytes: volBytes,
				primary: primary, replica: replica,
				homePrimary: primary, homeReplica: replica,
			})
		}
	}
	for fi, f := range eff.faults {
		at := sim.Time(f.AtMs * float64(sim.Millisecond))
		rt.downAt[f.Array] = at
		rt.faultIdx[f.Array] = fi
		rt.faults = append(rt.faults, FailureEvent{
			Array:      f.Array,
			Permanent:  f.permanent(),
			DownAtMs:   f.AtMs,
			DowntimeMs: f.DowntimeMs,
			SpareArray: -1,
		})
		rt.push(domainEvent{at: at, kind: evCrash, array: f.Array, fault: fi, mig: -1})
		rt.push(domainEvent{at: at + c.failoverDelay(), kind: evFailover, array: f.Array, fault: fi, mig: -1})
		if !f.permanent() {
			up := at + sim.Time(f.DowntimeMs*float64(sim.Millisecond))
			rt.upAt[f.Array] = up
			rt.push(domainEvent{at: up, kind: evRecover, array: f.Array, fault: fi, mig: -1})
		}
	}
	for mi, m := range c.Migrations {
		rt.push(domainEvent{
			at:   sim.Time(m.AtMs * float64(sim.Millisecond)),
			kind: evMigrate, array: m.To, fault: -1, mig: mi,
		})
	}
	return rt
}

// push inserts ev keeping events[next:] sorted by (at, seq). Insertions
// always target the future, so the processed prefix never moves.
func (rt *router) push(ev domainEvent) {
	ev.seq = rt.eventSeq
	rt.eventSeq++
	// Closure-free binary search for the first future event ordered after
	// ev; push is reachable from event handlers on the routed request path
	// and sort.Search's func argument would escape on every insertion.
	lo, hi := rt.next, len(rt.events)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := rt.events[mid]
		after := e.at > ev.at || (e.at == ev.at && e.seq > ev.seq)
		if after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	rt.events = append(rt.events, domainEvent{})
	copy(rt.events[i+1:], rt.events[i:])
	rt.events[i] = ev
}

// advance processes every domain event scheduled at or before t.
func (rt *router) advance(t sim.Time) {
	for rt.next < len(rt.events) && rt.events[rt.next].at <= t {
		ev := rt.events[rt.next]
		rt.next++
		switch ev.kind {
		case evCrash:
			rt.crash(ev)
		case evFailover:
			rt.failover(ev)
		case evRecover:
			rt.recover(ev)
		case evMigrate:
			rt.migrate(ev)
		case evCutover:
			rt.cutover(ev)
		case evResyncDone:
			rt.resyncDone(ev)
		}
	}
}

func (rt *router) crash(ev domainEvent) {
	rt.down[ev.array] = true
	if rt.resyncBytes != nil && !rt.eff.faults[ev.fault].permanent() {
		// Capture the resync scope at the cut: a journaled array owes only
		// its open-intent backlog (trailing write volume); an unjournaled
		// one owes every byte it hosts — primaries and replica copies.
		if rt.c.IntentJournal {
			rt.resyncBytes[ev.array] = rt.windowBytes(ev.array, ev.at)
		} else {
			var hosted int64
			for _, v := range rt.vols {
				if v.primary == ev.array || v.replica == ev.array {
					hosted += v.bytes
				}
			}
			rt.resyncBytes[ev.array] = hosted
		}
	}
	if rt.tr.Enabled() {
		perm := int64(0)
		if rt.eff.faults[ev.fault].permanent() {
			perm = 1
		}
		rt.tr.Emit(ev.at, obs.Event{Kind: obs.KClusterArrayDown, Dev: int32(ev.array),
			Page: -1, Aux: perm})
	}
}

// noteWrite records a write leg landing on an array, feeding the
// trailing-window deque the journal-on resync scope is read from. Legs to
// a down array never land, so they owe no resync.
func (rt *router) noteWrite(a int, t sim.Time, bytes int64) {
	if rt.wWin == nil || rt.down[a] {
		return
	}
	w := append(rt.wWin[a], winEntry{t: t, bytes: bytes})
	cut := t - journalWindow
	i := 0
	for i < len(w) && w[i].t < cut {
		i++
	}
	rt.wWin[a] = w[i:]
}

// windowBytes sums the write volume that landed on the array within the
// trailing journal window ending at the cut — the open-intent backlog a
// journaled remount must resync. Replica legs arrive with link-delayed
// timestamps, so entries are filtered by time, not deque position.
func (rt *router) windowBytes(a int, at sim.Time) int64 {
	var sum int64
	for _, e := range rt.wWin[a] {
		if e.t >= at-journalWindow && e.t <= at {
			sum += e.bytes
		}
	}
	rt.wWin[a] = rt.wWin[a][:0]
	return sum
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// failover repins the crashed array's volumes onto their replicas. Without
// ReplicateWrites there is no up-to-date second copy, so nothing repins
// and the array's requests keep failing for the whole outage. A permanent
// crash additionally schedules re-replication onto a spare array for every
// volume that lost a copy.
func (rt *router) failover(ev domainEvent) {
	if !rt.down[ev.array] || !rt.c.ReplicateWrites {
		return // recovered before detection, or nothing to pin to
	}
	f := &rt.faults[ev.fault]
	perm := rt.eff.faults[ev.fault].permanent()
	repinned := 0
	for _, v := range rt.vols {
		switch {
		case v.primary == ev.array:
			if rt.down[v.replica] || v.replica == v.primary {
				continue // no live replica to serve from
			}
			v.primary = v.replica
			v.degraded = true
			repinned++
			if perm {
				spare := rt.ringP.replicaExcluding(v.key, v.primary, ev.array)
				rt.startJob(v, jobRerepl, v.primary, spare, v.bytes, true, ev.fault, -1, ev.at)
				if f.SpareArray < 0 {
					f.SpareArray = spare
				}
			}
		case v.replica == ev.array && !v.degraded:
			if perm {
				// The replica is gone for good: pick a replacement on the
				// next ring arc and stream the volume onto it. New writes
				// replicate to it immediately; the job carries the base
				// image, and diversion stays off until it drains.
				v.replica = rt.ringP.replicaExcluding(v.key, v.primary, ev.array)
				v.dirtyBytes = 0
				rt.startJob(v, jobRerepl, v.primary, v.replica, v.bytes, false, ev.fault, -1, ev.at)
			}
			// Timed crash: writes accumulate dirtyBytes until recovery.
		}
	}
	f.RepinnedVolumes = repinned
	f.FailoverMs = rt.c.failoverDelayMs()
	if rt.tr.Enabled() {
		rt.tr.Emit(ev.at, obs.Event{Kind: obs.KClusterFailover, Dev: int32(ev.array),
			Page: -1, Aux: int64(repinned), Aux2: int64(rt.c.failoverDelay())})
	}
}

// recover fires at a timed-crash array's nominal power-on. With the
// crash-consistency model on (Config.ResyncMBps) the array is NOT
// consistent yet: it stays down while the resync walks its scope, and
// only evResyncDone lets it serve. Without the model, recovery is
// immediate (the legacy magically-consistent behavior).
func (rt *router) recover(ev domainEvent) {
	if rt.resyncBytes != nil {
		bytes := rt.resyncBytes[ev.array]
		dur := sim.Time(float64(bytes) / (rt.c.ResyncMBps * 1e6) * float64(sim.Second))
		f := &rt.faults[ev.fault]
		f.ResyncBytes = bytes
		f.ResyncMs = float64(dur) / float64(sim.Millisecond)
		f.DowntimeMs += f.ResyncMs
		rt.push(domainEvent{at: ev.at + dur, kind: evResyncDone, array: ev.array, fault: ev.fault, mig: -1})
		return
	}
	rt.serveAgain(ev)
}

// resyncDone ends the remount resync: the array is consistent and serves.
func (rt *router) resyncDone(ev domainEvent) {
	if rt.tr.Enabled() {
		rt.tr.Emit(ev.at, obs.Event{Kind: obs.KResyncDone, Dev: int32(ev.array), Page: -1,
			Aux: rt.resyncBytes[ev.array], Aux2: int64(boolToInt(rt.c.IntentJournal))})
	}
	rt.serveAgain(ev)
}

// serveAgain brings a timed-crash array back: clean repinned volumes flip
// home instantly, dirty ones stream their backlog back first, and volumes
// whose replica was down refresh it.
func (rt *router) serveAgain(ev domainEvent) {
	rt.down[ev.array] = false
	if rt.tr.Enabled() {
		rt.tr.Emit(ev.at, obs.Event{Kind: obs.KClusterArrayUp, Dev: int32(ev.array), Page: -1})
	}
	if !rt.c.ReplicateWrites {
		return
	}
	for _, v := range rt.vols {
		switch {
		case v.degraded && v.homePrimary == ev.array && v.job == nil:
			if v.dirtyBytes == 0 {
				v.primary = v.homePrimary
				v.replica = v.homeReplica
				v.degraded = false
				if rt.tr.Enabled() {
					rt.tr.Emit(ev.at, obs.Event{Kind: obs.KClusterCutover,
						Dev: int32(v.homePrimary), Page: -1,
						Aux: int64(v.replica), Aux2: 1, Note: v.key})
				}
				continue
			}
			bytes := v.dirtyBytes
			v.dirtyBytes = 0
			rt.startJob(v, jobFailback, v.primary, v.homePrimary, bytes, true, ev.fault, -1, ev.at)
		case !v.degraded && v.replica == ev.array && v.dirtyBytes > 0 && v.job == nil:
			bytes := v.dirtyBytes
			v.dirtyBytes = 0
			rt.startJob(v, jobRerepl, v.primary, ev.array, bytes, false, ev.fault, -1, ev.at)
		}
	}
}

// migrate launches a live volume migration: the copy job streams the
// volume while the old placement serves, mirroring writes to the
// destination; cutover flips the placement when the copy drains.
//
// Episodic: runs once per configured migration event, never per request, so
// its allocations are outside the hot-path allocation budget.
//
//gcsvet:cold
func (rt *router) migrate(ev domainEvent) {
	m := rt.c.Migrations[ev.mig]
	v := rt.volByKey(fmt.Sprintf("%s/%d", m.Tenant, m.Volume))
	if v == nil || v.job != nil || v.primary == m.To || rt.down[v.primary] || rt.down[m.To] {
		return // already there, busy, or an endpoint is down: skip
	}
	rt.migs = append(rt.migs, MigrationEvent{
		Volume: v.key, From: v.primary, To: m.To,
		StartMs: float64(ev.at) / float64(sim.Millisecond),
	})
	rt.startJob(v, jobMigrate, v.primary, m.To, v.bytes, true, -1, len(rt.migs)-1, ev.at)
}

// cutover applies a drained copy job's placement flip.
func (rt *router) cutover(ev domainEvent) {
	job := ev.job
	v := job.vol
	if v.job != job {
		return
	}
	v.job = nil
	aux2 := int64(1)
	switch job.kind {
	case jobMigrate:
		old := v.primary
		v.primary = job.to
		if v.replica == job.to {
			v.replica = old
		}
		v.homePrimary, v.homeReplica = v.primary, v.replica
		if job.mig >= 0 {
			rt.migs[job.mig].CutoverMs = float64(ev.at) / float64(sim.Millisecond)
		}
		aux2 = 0
	case jobFailback:
		v.primary = v.homePrimary
		v.replica = v.homeReplica
		v.degraded = false
	case jobRerepl:
		v.replica = job.to
		v.degraded = false
	}
	if rt.tr.Enabled() {
		rt.tr.Emit(ev.at, obs.Event{Kind: obs.KClusterCutover, Dev: int32(job.to),
			Page: -1, Aux: int64(job.from), Aux2: aux2, Note: v.key})
	}
}

// volByKey finds a volume by key with a linear scan — migrations are rare
// scheduled events, so no lookup map is needed (and none can leak order).
func (rt *router) volByKey(key string) *volState {
	for _, v := range rt.vols {
		if v.key == key {
			return v
		}
	}
	return nil
}

// copyChunk sizes one paced transfer: 256 KiB chunks, coarsened so no job
// exceeds 96 chunks, page-aligned.
func copyChunk(bytes int64) int64 {
	chunk := int64(256 << 10)
	if n := (bytes + 95) / 96; n > chunk {
		chunk = n
	}
	if rem := chunk % 4096; rem != 0 {
		chunk += 4096 - rem
	}
	return chunk
}

// startJob creates a copy job, lowers it to paced chunk read/write legs on
// the source and destination shards, and schedules its cutover.
//
// Episodic: one job per fault/migration domain event; the job struct and its
// chunk legs are the work itself, not per-request overhead.
//
//gcsvet:cold
func (rt *router) startJob(v *volState, kind, from, to int, bytes int64, mirror bool, fault, mig int, now sim.Time) {
	if bytes < 4096 {
		bytes = 4096
	}
	mbps := rt.c.rereplicateMBps()
	if kind == jobMigrate {
		mbps = rt.c.migrateMBps()
	}
	chunk := copyChunk(bytes)
	chunks := (bytes + chunk - 1) / chunk
	interval := rebuild.PaceInterval(int(chunk), mbps)
	job := &copyJob{
		id: len(rt.jobs), vol: v, kind: kind, from: from, to: to,
		start: now, cutoverAt: now + sim.Time(chunks)*interval,
		bytes: bytes, mirror: mirror, fault: fault, mig: mig,
	}
	v.job = job
	rt.jobs = append(rt.jobs, job)
	if fault >= 0 {
		rt.faults[fault].RereplicatedBytes += bytes
	}
	if rt.tr.Enabled() {
		rt.tr.Emit(now, obs.Event{Kind: obs.KClusterCopyStart, Dev: int32(to),
			Page: -1, Aux: int64(from), Aux2: bytes, Note: v.key})
	}
	for k := int64(0); k < chunks; k++ {
		off := k * chunk
		size := chunk
		if off+size > bytes {
			size = bytes - off
		}
		if size < 4096 {
			size = 4096
		}
		at := now + sim.Time(k)*interval
		meta := reqMeta{rid: -1, job: int32(job.id), tenant: int32(v.tenant)}
		rrec := trace.Record{Timestamp: at, Size: int(size),
			Offset: arrayOffset(v.key, from, off%v.bytes, rt.capacity, v.bytes)}
		meta.role = roleCopyRead
		rt.recs[from] = append(rt.recs[from], shardRec{rec: rrec, meta: meta})
		wrec := trace.Record{Timestamp: at, Size: int(size), Write: true,
			Offset: arrayOffset(v.key, to, off%v.bytes, rt.capacity, v.bytes)}
		meta.role = roleCopyWrite
		rt.recs[to] = append(rt.recs[to], shardRec{rec: wrec, meta: meta})
	}
	rt.push(domainEvent{at: job.cutoverAt, kind: evCutover, fault: fault, mig: mig, job: job})
}

// linkDelayNs is the replication-link latency into array at instant t:
// the configured base plus any open LinkSlowdown windows.
func (rt *router) linkDelayNs(array int, t sim.Time) int64 {
	d := rt.linkNs
	for _, l := range rt.eff.links {
		if l.Array != array {
			continue
		}
		start := sim.Time(l.StartMs * float64(sim.Millisecond))
		end := start + sim.Time(l.DurationMs*float64(sim.Millisecond))
		if t >= start && t < end {
			d += int64(l.ExtraUs * float64(sim.Microsecond))
		}
	}
	return d
}

// route sweeps the admitted stream: per request it advances the domain
// clock, resolves the serving array (failing requests whose array is
// down), applies steering diversion, and emits the serving, replica, and
// mirror legs. Afterwards it drains the remaining domain events and
// time-sorts every per-array stream.
// route is a gcsvet hot-path root: the sweep body runs once per admitted
// request across the whole fleet, so hotalloc holds it and everything it
// reaches allocation-free (the routes/recs slabs are set up once per
// sweep and grow amortized).
//
//gcsvet:hot
func (rt *router) route(admitted []placedReq, busy []busyTimeline, tr *obs.Tracer) {
	rt.busy = busy
	rt.tr = tr
	rt.routes = make([]reqRoute, len(admitted))
	for i, pr := range admitted {
		t := pr.rec.Timestamp
		rt.advance(t)
		v := rt.vols[pr.vol]
		r := &rt.routes[i]
		r.tenant = pr.tenant
		r.write = pr.rec.Write
		r.failArray = -1

		if rt.down[v.primary] {
			rt.fail(i, pr, v, t)
			continue
		}
		target := v.primary
		if rt.divert(v, pr.rec, t) {
			target = v.replica
			r.redirect = true
			rt.diverted[v.primary]++
		}
		r.altLive = rt.c.ReplicateWrites && !v.degraded && v.replica != v.primary &&
			v.dirtyBytes == 0 && v.job == nil && !rt.down[v.replica]
		if tr.Enabled() {
			if r.redirect {
				tr.Emit(t, obs.Event{Kind: obs.KClusterRedirect, Dev: int32(target),
					Page: -1, Aux: int64(v.primary), Aux2: int64(len(rt.recs[target]))})
			} else {
				tr.Emit(t, obs.Event{Kind: obs.KClusterPlace, Dev: int32(target),
					Page: -1, Aux: int64(pr.tenant), Aux2: int64(len(rt.recs[target]))})
			}
		}
		rec := pr.rec
		rec.Offset = arrayOffset(v.key, target, pr.within, rt.capacity, v.bytes)
		rt.recs[target] = append(rt.recs[target], shardRec{rec: rec, meta: reqMeta{
			rid: int64(i), job: -1, tenant: int32(pr.tenant),
			write: pr.rec.Write, redirect: r.redirect, role: rolePrimary,
		}})

		if !pr.rec.Write {
			continue
		}
		size := int64(pr.rec.Size)
		rt.noteWrite(target, t, size)
		if rt.c.ReplicateWrites && !v.degraded && v.replica != v.primary {
			if rt.down[v.replica] {
				v.dirtyBytes += size
			} else {
				link := rt.linkDelayNs(v.replica, t)
				rrec := pr.rec
				rrec.Timestamp = t + sim.Time(link)
				rrec.Offset = arrayOffset(v.key, v.replica, pr.within, rt.capacity, v.bytes)
				rt.recs[v.replica] = append(rt.recs[v.replica], shardRec{rec: rrec, meta: reqMeta{
					rid: int64(i), job: -1, tenant: int32(pr.tenant),
					write: true, role: roleReplica, linkNs: link,
				}})
				rt.noteWrite(v.replica, rrec.Timestamp, size)
				rt.replicated++
				if tr.Enabled() {
					tr.Emit(t, obs.Event{Kind: obs.KClusterReplicate, Dev: int32(v.replica),
						Page: -1, Aux: int64(v.primary), Aux2: int64(i)})
				}
			}
		} else if v.degraded && v.job == nil {
			v.dirtyBytes += size
		}
		if v.job != nil && v.job.mirror && !rt.down[v.job.to] {
			link := rt.linkDelayNs(v.job.to, t)
			mrec := pr.rec
			mrec.Timestamp = t + sim.Time(link)
			mrec.Offset = arrayOffset(v.key, v.job.to, pr.within, rt.capacity, v.bytes)
			rt.recs[v.job.to] = append(rt.recs[v.job.to], shardRec{rec: mrec, meta: reqMeta{
				rid: int64(i), job: int32(v.job.id), tenant: int32(pr.tenant),
				write: true, role: roleMirror, linkNs: link,
			}})
		}
	}
	// Drain the remaining domain events (recoveries, cutovers past the last
	// arrival) so their trace events and state flips still happen.
	rt.advance(sim.Time(1) << 62)
	rt.finish()
}

// fail records a request whose serving array is down: an availability
// miss, and a data-loss event when no live copy of the data remains
// anywhere (permanent crash with no up-to-date replica).
func (rt *router) fail(i int, pr placedReq, v *volState, t sim.Time) {
	r := &rt.routes[i]
	r.failed = true
	r.failArray = v.primary
	fi := rt.faultIdx[v.primary]
	if fi >= 0 {
		rt.faults[fi].FailedRequests++
	}
	if rt.tr.Enabled() {
		rt.tr.Emit(t, obs.Event{Kind: obs.KClusterFailedReq, Dev: int32(v.primary),
			Page: -1, Aux: int64(pr.tenant), Aux2: int64(i)})
	}
	if pr.rec.Write {
		return
	}
	perm := fi >= 0 && rt.eff.faults[fi].permanent()
	altLive := rt.c.ReplicateWrites && v.replica != v.primary && !rt.down[v.replica]
	if perm && !altLive {
		r.dataLoss = true
		if fi >= 0 {
			rt.faults[fi].DataLossReads++
		}
		if rt.tr.Enabled() {
			rt.tr.Emit(t, obs.Event{Kind: obs.KClusterDataLoss, Dev: int32(v.primary),
				Page: -1, Aux: int64(pr.tenant), Aux2: int64(i)})
		}
	}
}

// divert decides steering diversion for one read. In legacy mode (the
// pre-failure-domain configuration space) it reproduces the PR-6 condition
// exactly; with replication on it additionally requires the replica to be
// live and provably up to date (not degraded, no dirty backlog, no copy
// job), because a diverted read must return current data, not a stale
// approximation.
func (rt *router) divert(v *volState, rec trace.Record, t sim.Time) bool {
	if rt.busy == nil || rec.Write || v.replica == v.primary {
		return false
	}
	if rt.legacy {
		return rt.busy[v.primary].at(t) && !rt.busy[v.replica].at(t)
	}
	if !rt.c.ReplicateWrites {
		return false
	}
	if v.degraded || v.dirtyBytes > 0 || v.job != nil || rt.down[v.replica] {
		return false
	}
	return rt.busy[v.primary].at(t) && !rt.busy[v.replica].at(t)
}

// finish time-sorts every per-array stream (replica and copy legs arrive
// out of admitted order) and resolves each request's legs against the
// post-sort sequence numbers the shards will report.
//
// Episodic: once-per-sweep teardown after routing completes.
//
//gcsvet:cold
func (rt *router) finish() {
	for a := range rt.recs {
		recs := rt.recs[a]
		sort.SliceStable(recs, func(i, j int) bool {
			return recs[i].rec.Timestamp < recs[j].rec.Timestamp
		})
		for seq, sr := range recs {
			if sr.meta.rid >= 0 {
				r := &rt.routes[sr.meta.rid]
				r.legs = append(r.legs, legRef{array: a, seq: seq,
					role: sr.meta.role, linkNs: sr.meta.linkNs})
			}
		}
	}
}

// traces lowers the sorted per-array streams to replayable shard traces.
func (rt *router) traces() []trace.Trace {
	trs := make([]trace.Trace, rt.c.Arrays)
	for a, recs := range rt.recs {
		if len(recs) == 0 {
			continue
		}
		tr := make(trace.Trace, len(recs))
		for i, sr := range recs {
			tr[i] = sr.rec
		}
		trs[a] = tr
	}
	return trs
}
