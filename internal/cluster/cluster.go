// Package cluster is the fleet-simulation layer: it composes many
// independent, deterministic array simulations (one gcsteering.System —
// one discrete-event engine — per array) behind a placement and routing
// tier, scaling the paper's intra-array GC-aware steering up to the
// between-array case. Tenant volumes land on arrays by consistent hashing
// (with a pluggable directory override), per-tenant synthetic workloads are
// layered on internal/workload, and the router diverts reads away from
// arrays reporting GC episodes, open health breakers, or in-flight
// rebuilds — the same busy signals the intra-array scheme steers on,
// surfaced through Results.Busy.
//
// Determinism contract: shards replay concurrently on a bounded worker
// pool, but every shard is a self-contained engine, per-shard measurements
// land in slots indexed by array, and all merging happens in array order
// after the pool drains — so aggregated results and traces are
// byte-identical across worker counts.
//
// The steering signal is deliberately stale: under PolicySteering the
// cluster replays twice. The first pass routes everything to its primary
// placement and collects per-array busy timelines; the second diverts
// reads whose primary is busy at their arrival instant to the volume's
// replica. A real router acts on telemetry from the recent past, not on
// the instantaneous device state its own routing will change; the
// two-pass scheme models exactly that separation (and keeps each pass
// deterministic).
package cluster

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"gcsteering"
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
	"gcsteering/internal/trace"
	"gcsteering/internal/workload"
)

// QoS is a tenant's service class, which selects its default admission
// budget (see Tenant.BudgetPerWindow).
type QoS int

const (
	// Gold tenants are never shed by the cluster admission tier.
	Gold QoS = iota
	// Silver tenants get a generous per-window budget.
	Silver
	// Bronze tenants are shed first under burst pressure.
	Bronze
)

// String names the class for reports.
func (q QoS) String() string {
	switch q {
	case Gold:
		return "gold"
	case Silver:
		return "silver"
	case Bronze:
		return "bronze"
	default:
		return fmt.Sprintf("QoS(%d)", int(q))
	}
}

// defaultBudget is the per-window admission budget implied by the class
// (0 = unlimited).
func (q QoS) defaultBudget() int {
	switch q {
	case Silver:
		return 64
	case Bronze:
		return 24
	default:
		return 0
	}
}

// Policy selects the cluster routing scheme.
type Policy int

const (
	// PolicyHash routes every request to its consistent-hash primary —
	// the placement-only baseline.
	PolicyHash Policy = iota
	// PolicySteering additionally diverts reads whose primary array is
	// busy (GC episode, open breaker, or rebuild in flight) to the
	// volume's replica, when the replica itself is not busy.
	PolicySteering
)

// String names the policy as in the cluster grid.
func (p Policy) String() string {
	if p == PolicySteering {
		return "gc-aware"
	}
	return "hash-only"
}

// Tenant describes one workload source sharing the fleet.
type Tenant struct {
	// Name identifies the tenant; volume keys are "<name>/<volume>".
	Name string
	// Profile is a Table-I workload profile name (workload.ByName).
	Profile string
	// QoS selects the default admission budget.
	QoS QoS
	// Requests caps this tenant's generated request count.
	Requests int
	// ArrivalScale multiplies the profile's mean IOPS (0 = 1).
	ArrivalScale float64
	// Volumes is how many volumes the tenant's address space splits into;
	// each volume is placed independently on the ring (0 = 1).
	Volumes int
	// BudgetPerWindow overrides the admission budget: requests admitted
	// per tenant per budget window. > 0 sets it, < 0 means unlimited,
	// 0 uses the QoS default.
	BudgetPerWindow int
}

// volumes returns the effective volume count.
func (t Tenant) volumes() int {
	if t.Volumes < 1 {
		return 1
	}
	return t.Volumes
}

// budget resolves the effective per-window budget (0 = unlimited).
func (t Tenant) budget() int {
	switch {
	case t.BudgetPerWindow > 0:
		return t.BudgetPerWindow
	case t.BudgetPerWindow < 0:
		return 0
	default:
		return t.QoS.defaultBudget()
	}
}

// Config describes one fleet simulation.
type Config struct {
	// Arrays is the fleet size: one independent System (engine) each.
	Arrays int
	// VNodes is the virtual nodes per array on the placement ring (0 = 64).
	VNodes int
	// Policy selects hash-only or GC-aware routing.
	Policy Policy
	// Workers bounds the shard worker pool (0 = GOMAXPROCS). The worker
	// count never changes results — only wall time.
	Workers int
	// Seed offsets every derived seed (shards, workloads).
	Seed int64
	// Base is the per-array configuration; each shard runs a copy with a
	// shard-specific seed. Base.Seed participates in seed derivation.
	Base gcsteering.Config
	// Tenants are the workload sources. At least one is required.
	Tenants []Tenant
	// Directory overrides ring placement for specific volume keys
	// ("tenant/vol" -> array index). It is consulted per lookup and never
	// iterated, so it cannot leak map order into results.
	Directory map[string]int
	// BudgetWindowMs is the admission window length (0 = 10 ms).
	BudgetWindowMs float64
	// FaultArrays lists arrays that replay under Fault (fault injection /
	// rebuild); the rest run healthy.
	FaultArrays []int
	// Fault is the fault plan applied to each array in FaultArrays.
	Fault gcsteering.FaultPlan

	// ReplicateWrites mirrors every write synchronously onto the volume's
	// ring replica: the request completes when both the primary and the
	// replica leg have (a completion barrier), which is what makes
	// replica-diverted reads return current data and whole-array failover
	// possible at all. Off, the replica is the stale-signal approximation
	// of PR 6 and arrays are single failure domains.
	ReplicateWrites bool
	// ReplicaLinkUs is the one-way inter-array link latency (µs) replica
	// and mirror legs pay each direction. 0 models a free link.
	ReplicaLinkUs float64
	// ArrayFaults schedules whole-array crashes (at most one per array).
	ArrayFaults []ArrayFault
	// FailoverDelayMs is the detection gap between a crash and the
	// Directory repinning its volumes onto replicas (0 = 2 ms). Requests
	// arriving in the gap fail.
	FailoverDelayMs float64
	// RereplicateMBps caps each background re-replication copy stream
	// (0 = 200), paced with the rebuild engine's interval model.
	RereplicateMBps float64
	// Migrations schedules live volume migrations (drain → copy → flip).
	Migrations []Migration
	// MigrateMBps caps migration copy streams (0 = RereplicateMBps).
	MigrateMBps float64
	// LinkFaults degrade the replication link into specific arrays.
	LinkFaults []LinkSlowdown
	// ResyncMBps models the crash-consistency resync a recovering array
	// must run before serving again: a timed-crash array stays down past
	// its nominal recovery instant for resyncBytes / ResyncMBps, where the
	// scope depends on IntentJournal. <= 0 disables the modeled resync —
	// the pre-crash-consistency behavior, in which a recovered array
	// returns magically consistent (kept for byte-identical legacy runs).
	ResyncMBps float64
	// IntentJournal scopes the modeled resync to the write backlog of the
	// journal's open-intent horizon before the crash (the dirty-stripe
	// list); off, the recovering array must walk every hosted byte — the
	// full-scrub window of vulnerability.
	IntentJournal bool
	// DeadlineMs is the availability deadline: a settled request counts as
	// available when its client latency is within this many milliseconds
	// (0 = any settled request counts). Failed and rejected requests are
	// never available.
	DeadlineMs float64
	// Chaos seeds deterministic fleet-level adversity (crashes, link
	// slowdowns, correlated GC storms) compiled into the plans above.
	Chaos ChaosPlan

	// Trace, when non-nil, receives the merged JSONL event stream: the
	// router's placement/redirect/shed events first, then each shard's
	// engine events in array order.
	Trace io.Writer
}

func (c Config) vnodes() int {
	if c.VNodes <= 0 {
		return 64
	}
	return c.VNodes
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) windowNs() int64 {
	ms := c.BudgetWindowMs
	if ms <= 0 {
		ms = 10
	}
	return int64(ms * float64(sim.Millisecond))
}

// failoverDelayMs resolves the crash-detection gap (default 2 ms).
func (c Config) failoverDelayMs() float64 {
	if c.FailoverDelayMs <= 0 {
		return 2
	}
	return c.FailoverDelayMs
}

func (c Config) failoverDelay() sim.Time {
	return sim.Time(c.failoverDelayMs() * float64(sim.Millisecond))
}

// rereplicateMBps resolves the re-replication bandwidth cap (default 200).
func (c Config) rereplicateMBps() float64 {
	if c.RereplicateMBps <= 0 {
		return 200
	}
	return c.RereplicateMBps
}

// migrateMBps resolves the migration bandwidth cap.
func (c Config) migrateMBps() float64 {
	if c.MigrateMBps <= 0 {
		return c.rereplicateMBps()
	}
	return c.MigrateMBps
}

// deadlineNs resolves the availability deadline (0 = none).
func (c Config) deadlineNs() int64 {
	if c.DeadlineMs <= 0 {
		return 0
	}
	return int64(c.DeadlineMs * float64(sim.Millisecond))
}

// Validate reports configuration errors before any shard is built.
func (c Config) Validate() error {
	if c.Arrays < 2 {
		return fmt.Errorf("cluster: Arrays %d too few (need >= 2 for replica placement)", c.Arrays)
	}
	if c.VNodes < 0 {
		// 0 means "use the default"; an explicit negative count would build
		// an empty placement ring whose lookups could never spread keys.
		return fmt.Errorf("cluster: VNodes %d negative (0 selects the default of 64)", c.VNodes)
	}
	if len(c.Tenants) == 0 {
		return fmt.Errorf("cluster: no tenants")
	}
	for i, t := range c.Tenants {
		if t.Name == "" {
			return fmt.Errorf("cluster: tenant %d has no name", i)
		}
		if _, ok := workload.ByName(t.Profile); !ok {
			return fmt.Errorf("cluster: tenant %q: unknown profile %q", t.Name, t.Profile)
		}
		if t.Requests <= 0 {
			return fmt.Errorf("cluster: tenant %q: Requests must be > 0", t.Name)
		}
	}
	for _, a := range c.FaultArrays {
		if a < 0 || a >= c.Arrays {
			return fmt.Errorf("cluster: FaultArrays entry %d out of range [0,%d)", a, c.Arrays)
		}
	}
	for k, a := range c.Directory {
		if a < 0 || a >= c.Arrays {
			return fmt.Errorf("cluster: Directory[%q] = %d out of range [0,%d)", k, a, c.Arrays)
		}
	}
	if c.ReplicaLinkUs < 0 || math.IsNaN(c.ReplicaLinkUs) || math.IsInf(c.ReplicaLinkUs, 0) {
		return fmt.Errorf("cluster: ReplicaLinkUs %v invalid", c.ReplicaLinkUs)
	}
	for _, v := range []float64{c.FailoverDelayMs, c.RereplicateMBps, c.MigrateMBps, c.DeadlineMs} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("cluster: failover/copy/deadline knobs must be finite and non-negative")
		}
	}
	seenFault := make([]bool, c.Arrays)
	for _, f := range c.ArrayFaults {
		if f.Array < 0 || f.Array >= c.Arrays {
			return fmt.Errorf("cluster: ArrayFaults entry %d out of range [0,%d)", f.Array, c.Arrays)
		}
		if f.AtMs < 0 || f.DowntimeMs < 0 {
			return fmt.Errorf("cluster: array %d fault times must be non-negative", f.Array)
		}
		if seenFault[f.Array] {
			return fmt.Errorf("cluster: array %d has more than one whole-array fault", f.Array)
		}
		seenFault[f.Array] = true
	}
	for _, l := range c.LinkFaults {
		if l.Array < 0 || l.Array >= c.Arrays {
			return fmt.Errorf("cluster: LinkFaults entry %d out of range [0,%d)", l.Array, c.Arrays)
		}
	}
	for _, m := range c.Migrations {
		ti := -1
		for i, t := range c.Tenants {
			if t.Name == m.Tenant {
				ti = i
				break
			}
		}
		if ti < 0 {
			return fmt.Errorf("cluster: migration names unknown tenant %q", m.Tenant)
		}
		if m.Volume < 0 || m.Volume >= c.Tenants[ti].volumes() {
			return fmt.Errorf("cluster: migration volume %s/%d out of range", m.Tenant, m.Volume)
		}
		if m.To < 0 || m.To >= c.Arrays {
			return fmt.Errorf("cluster: migration target %d out of range [0,%d)", m.To, c.Arrays)
		}
		if m.AtMs < 0 {
			return fmt.Errorf("cluster: migration %s/%d AtMs must be non-negative", m.Tenant, m.Volume)
		}
	}
	if err := c.Chaos.validate(c.Arrays); err != nil {
		return err
	}
	return c.Base.Validate()
}

// placedReq is one admitted request resolved to its volume.
type placedReq struct {
	rec    trace.Record // Offset still tenant-relative
	tenant int
	vol    int   // global volume index (tenant-major order)
	within int64 // offset inside the volume
}

// reqMeta rides alongside each shard-trace record so the measurements can
// be joined back to the admitted request (or background copy job) that
// produced the leg.
type reqMeta struct {
	rid      int64 // admitted request index; -1 for background copy legs
	job      int32 // copy job id; -1 outside copy windows
	tenant   int32
	write    bool
	redirect bool
	role     uint8
	linkNs   int64 // one-way link latency this leg paid to arrive
}

// shardStats holds one shard's per-sequence settled latencies, filled by
// the request observer inside the shard's own goroutine. All histogram
// work happens later, in the deterministic join pass — the slots are
// indexed by trace sequence, so the worker pool cannot reorder anything.
type shardStats struct {
	lat []int64 // -1 = rejected, -2 = never observed
}

// Run executes the fleet simulation and aggregates the results.
func Run(c Config) (*ClusterResults, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	capacity := c.Base.Capacity()
	var routerTracer *obs.Tracer
	var routerBuf bytes.Buffer
	if c.Trace != nil {
		routerTracer = obs.New(&routerBuf)
	}
	admitted, shedPerTenant, err := c.admit(capacity, routerTracer)
	if err != nil {
		return nil, err
	}
	eff, err := c.resolve(admitted)
	if err != nil {
		return nil, err
	}

	var busy []busyTimeline
	if c.Policy == PolicySteering {
		// Profile pass: routing without diversion, with busy recording. No
		// tracers — this pass only yields the steering signal.
		profileRt := newRouter(&c, eff, capacity)
		profileRt.route(admitted, nil, nil)
		profile, _, err := c.runShards(profileRt.traces(), eff.plans, nil)
		if err != nil {
			return nil, err
		}
		busy = make([]busyTimeline, c.Arrays)
		for a, r := range profile {
			if r != nil {
				busy[a] = newBusyTimeline(r.Busy)
			}
		}
	}

	// Routing pass (single-threaded): sweep the admitted stream through
	// the failure-domain state machine, diverting reads whose primary is
	// busy at arrival when the replica can serve them correctly.
	rt := newRouter(&c, eff, capacity)
	rt.route(admitted, busy, routerTracer)

	var bufs []*bytes.Buffer
	if c.Trace != nil {
		bufs = make([]*bytes.Buffer, c.Arrays)
		for i := range bufs {
			bufs[i] = &bytes.Buffer{}
		}
	}
	results, stats, err := c.runShards(rt.traces(), eff.plans, bufs)
	if err != nil {
		return nil, err
	}

	if c.Trace != nil {
		if err := routerTracer.Flush(); err != nil {
			return nil, err
		}
		if _, err := c.Trace.Write(routerBuf.Bytes()); err != nil {
			return nil, err
		}
		for _, b := range bufs {
			if _, err := c.Trace.Write(b.Bytes()); err != nil {
				return nil, err
			}
		}
	}

	return c.aggregate(admitted, shedPerTenant, rt, results, stats), nil
}

// admit synthesizes every tenant's trace, merges them into one
// time-ordered stream, resolves each request's volume, and applies the
// per-tenant admission budgets. Returns the admitted requests in arrival
// order and the per-tenant shed counts; sheds are traced on tr. Placement
// is the router's job — it owns the live volume state.
func (c Config) admit(capacity int64, tr *obs.Tracer) ([]placedReq, []int64, error) {
	volBase := make([]int, len(c.Tenants))
	for ti := 1; ti < len(c.Tenants); ti++ {
		volBase[ti] = volBase[ti-1] + c.Tenants[ti-1].volumes()
	}
	var all []placedReq
	for ti, t := range c.Tenants {
		p, _ := workload.ByName(t.Profile)
		g, err := workload.NewGenerator(p, workload.Options{
			Capacity:     capacity,
			MaxRequests:  t.Requests,
			Seed:         c.Seed + c.Base.Seed + int64(ti+1)*7_368_787,
			ArrivalScale: t.ArrivalScale,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: tenant %q: %w", t.Name, err)
		}
		volBytes := capacity / int64(t.volumes())
		for {
			rec, ok := g.Next()
			if !ok {
				break
			}
			vol := rec.Offset / volBytes
			if vol >= int64(t.volumes()) {
				vol = int64(t.volumes()) - 1
			}
			all = append(all, placedReq{
				rec:    rec,
				tenant: ti,
				vol:    volBase[ti] + int(vol),
				within: rec.Offset - vol*volBytes,
			})
		}
	}
	// Merge into one arrival-ordered stream. SliceStable plus the tenant
	// tiebreak makes the order a pure function of the inputs.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].rec.Timestamp != all[j].rec.Timestamp {
			return all[i].rec.Timestamp < all[j].rec.Timestamp
		}
		return all[i].tenant < all[j].tenant
	})

	// Windowed admission: each tenant may admit budget() requests per
	// BudgetWindowMs window; the rest are shed before routing. The budget
	// is policy-independent so a hash-vs-steering comparison isolates the
	// routing decision.
	windowNs := c.windowNs()
	shed := make([]int64, len(c.Tenants))
	lastWin := make([]int64, len(c.Tenants))
	inWin := make([]int, len(c.Tenants))
	for i := range lastWin {
		lastWin[i] = -1
	}
	admitted := all[:0]
	for i, pr := range all {
		b := c.Tenants[pr.tenant].budget()
		if b > 0 {
			w := int64(pr.rec.Timestamp) / windowNs
			if w != lastWin[pr.tenant] {
				lastWin[pr.tenant] = w
				inWin[pr.tenant] = 0
			}
			if inWin[pr.tenant] >= b {
				shed[pr.tenant]++
				if tr.Enabled() {
					tr.Emit(pr.rec.Timestamp, obs.Event{Kind: obs.KClusterShed,
						Dev: -1, Page: -1, Aux: int64(pr.tenant), Aux2: int64(i)})
				}
				continue
			}
			inWin[pr.tenant]++
		}
		admitted = append(admitted, pr)
	}
	return admitted, shed, nil
}

// arrayOffset maps a within-volume offset to an array-local byte offset.
// Each (volume, array) pair gets its own page-aligned base derived by
// hashing, so a volume's primary and replica copies live at independent
// positions — colocated volumes on one array interleave rather than
// stack.
func arrayOffset(volKey string, array int, within, capacity, volBytes int64) int64 {
	room := capacity - volBytes
	var base int64
	if room > 0 {
		base = int64(fnv64At(volKey, array) % uint64(room))
		base -= base % 4096
	}
	off := base + within
	if off >= capacity {
		off = capacity - 4096
	}
	if off < 0 {
		off = 0
	}
	return off
}

// runShards replays every non-empty shard trace on the worker pool and
// returns per-array results and stats slices indexed by array. Each array
// replays under its resolved fault plan. All cross-shard merging is left
// to the caller; this function only guarantees slot isolation.
func (c Config) runShards(trs []trace.Trace, plans []gcsteering.FaultPlan, bufs []*bytes.Buffer) ([]*gcsteering.Results, []*shardStats, error) {
	results := make([]*gcsteering.Results, c.Arrays)
	stats := make([]*shardStats, c.Arrays)
	errs := make([]error, c.Arrays)

	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := c.workers()
	if workers > c.Arrays {
		workers = c.Arrays
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// Sanctioned concurrency (nodeterm allowlists internal/cluster):
		// each shard is a self-contained engine; results land in
		// per-array slots and merge in array order after the pool drains.
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx], stats[idx], errs[idx] = c.runShard(idx, trs[idx], plans[idx], bufs)
			}
		}()
	}
	for i := range trs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: array %d: %w", i, err)
		}
	}
	return results, stats, nil
}

// runShard builds and replays one array. Runs inside a pool worker; it
// touches only its own slot data.
func (c Config) runShard(idx int, tr trace.Trace, plan gcsteering.FaultPlan, bufs []*bytes.Buffer) (*gcsteering.Results, *shardStats, error) {
	if len(tr) == 0 {
		return nil, nil, nil // an array no volume landed on
	}
	cfg := c.Base
	cfg.Seed = c.Base.Seed + c.Seed + int64(idx+1)*1_000_003
	cfg.RecordBusy = true
	cfg.Trace = nil
	if bufs != nil {
		cfg.Trace = gcsteering.NewTracer(bufs[idx])
	}
	cfg.Fault = plan
	sys, err := gcsteering.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	st := &shardStats{lat: make([]int64, len(tr))}
	for i := range st.lat {
		st.lat[i] = -2
	}
	sys.ObserveRequests(func(seq int64, latNs int64, rejected bool) {
		if rejected {
			st.lat[seq] = -1
			return
		}
		st.lat[seq] = latNs
	})
	var r *gcsteering.Results
	if plan.Enabled() {
		r, err = sys.ReplayWithFaults(tr)
	} else {
		r, err = sys.Replay(tr)
	}
	if err != nil {
		return nil, nil, err
	}
	if err := cfg.Trace.Flush(); err != nil {
		return nil, nil, err
	}
	return r, st, nil
}

// busyTimeline is an array's merged busy windows, queryable by instant.
type busyTimeline struct {
	starts []sim.Time
	ends   []sim.Time
}

// newBusyTimeline merges possibly-overlapping intervals (any kind, any
// member device: one busy member makes the array report busy) into a
// sorted disjoint timeline.
func newBusyTimeline(in []gcsteering.BusyInterval) busyTimeline {
	if len(in) == 0 {
		return busyTimeline{}
	}
	iv := make([]gcsteering.BusyInterval, len(in))
	copy(iv, in)
	sort.Slice(iv, func(i, j int) bool {
		if iv[i].Start != iv[j].Start {
			return iv[i].Start < iv[j].Start
		}
		return iv[i].End < iv[j].End
	})
	var tl busyTimeline
	curS, curE := iv[0].Start, iv[0].End
	for _, w := range iv[1:] {
		if w.Start <= curE {
			if w.End > curE {
				curE = w.End
			}
			continue
		}
		tl.starts = append(tl.starts, curS)
		tl.ends = append(tl.ends, curE)
		curS, curE = w.Start, w.End
	}
	tl.starts = append(tl.starts, curS)
	tl.ends = append(tl.ends, curE)
	return tl
}

// at reports whether the array was busy at instant t. The binary search is
// hand-rolled rather than sort.Search because at sits on the per-request
// divert path and sort.Search's func argument escapes on every call.
func (tl busyTimeline) at(t sim.Time) bool {
	lo, hi := 0, len(tl.starts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tl.starts[mid] > t {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo > 0 && t < tl.ends[lo-1]
}
