package cluster

import (
	"fmt"
	"strings"

	"gcsteering"
	"gcsteering/internal/metrics"
	"gcsteering/internal/sim"
)

// TenantResults is one tenant's aggregated view of the run.
type TenantResults struct {
	Name string
	QoS  QoS
	// Requests counts admitted requests; Shed the admission-budget drops;
	// Rejected the shard-level queue-limit rejections; Redirects the reads
	// diverted to the replica copy; Failed the requests lost to whole-array
	// crashes (routed to a down array, or in flight when it went down).
	Requests  int64
	Shed      int64
	Rejected  int64
	Redirects int64
	Failed    int64
	// Latency summarizes the tenant's settled response times (ns);
	// ReadLatency the read subset — the side cluster steering acts on
	// (writes always go to the primary copy).
	Latency     gcsteering.LatencySummary
	ReadLatency gcsteering.LatencySummary
}

// ArrayResults is one array's aggregated view of the run.
type ArrayResults struct {
	// Requests counts requests served by this array (serving legs only);
	// Received the reads that landed here by redirection; Diverted the
	// reads steered away from this array to their replica; Failed the
	// requests this array's crash took down.
	Requests int64
	Received int64
	Diverted int64
	Failed   int64
	// ReplWrites counts synchronous replica-barrier writes landing here;
	// CopyWrites the background stream (mirror + copy-job) writes.
	ReplWrites int64
	CopyWrites int64
	// ReplLagMeanUs / ReplLagMaxUs summarize how far this array's replica
	// legs trailed their primary (client-visible barrier stretch, µs).
	ReplLagMeanUs float64
	ReplLagMaxUs  float64
	// GCEpisodes and BusyWindows describe why the router avoided the
	// array; WOV is its window-of-vulnerability time (fault runs).
	GCEpisodes  int64
	BusyWindows int
	WOV         gcsteering.Time
	// Latency summarizes the array's served response times (ns).
	Latency gcsteering.LatencySummary
}

// FailureEvent describes one whole-array crash and its recovery arc.
type FailureEvent struct {
	// Array is the crashed array; Permanent whether it never recovered.
	Array     int
	Permanent bool
	// DownAtMs is the crash instant; FailoverMs the detection gap before
	// the Directory repinned; DowntimeMs the outage length (0 = forever).
	DownAtMs   float64
	FailoverMs float64
	DowntimeMs float64
	// RepinnedVolumes counts volumes failed over onto their replicas;
	// SpareArray the re-replication target of a permanent crash (-1: none).
	RepinnedVolumes int
	SpareArray      int
	// FailedRequests counts requests this crash took down (routed to the
	// down array, or in flight at the instant it died); DataLossReads the
	// subset whose data had no surviving live copy.
	FailedRequests int64
	DataLossReads  int64
	// RereplicatedBytes and RereplicationMs describe the background copy
	// work that restored redundancy (longest job, start to drain).
	RereplicatedBytes int64
	RereplicationMs   float64
	// ResyncBytes and ResyncMs describe the remount consistency walk a
	// timed crash owes before serving again (Config.ResyncMBps runs): the
	// journal scopes it to the open-intent backlog, otherwise the array
	// rereads every hosted byte. Zero when the model is off.
	ResyncBytes int64
	ResyncMs    float64
}

// MigrationEvent describes one live volume migration.
type MigrationEvent struct {
	Volume   string
	From, To int
	// StartMs is the copy start; CutoverMs the placement flip; CopiedBytes
	// and CopyMs the background stream's volume and duration.
	StartMs     float64
	CutoverMs   float64
	CopiedBytes int64
	CopyMs      float64
}

// ClusterResults aggregates one fleet run.
type ClusterResults struct {
	Arrays int
	Policy Policy
	// Requests counts admitted requests; Shed/Rejected/Redirects/Failed the
	// cluster-wide totals of the per-tenant counters.
	Requests  int64
	Shed      int64
	Rejected  int64
	Redirects int64
	Failed    int64
	// Replicated counts synchronous replica writes issued; ReplicaDrops the
	// replica legs that did not settle (rejected at the replica, or in
	// flight when the replica array crashed) — each one is a window where
	// the copies diverged until a re-replication pass closed it.
	Replicated   int64
	ReplicaDrops int64
	// DataLossEvents counts reads whose data had no surviving live copy —
	// zero whenever ReplicateWrites is on and at most one array is lost.
	DataLossEvents int64
	// Available counts requests settled within the deadline; Availability
	// is Available/Requests. With no deadline every settled request counts.
	Available    int64
	Availability float64
	// WOV sums window-of-vulnerability time across arrays.
	WOV gcsteering.Time
	// Latency and ReadLatency summarize all settled requests fleet-wide,
	// measured at the client: a replicated write settles when its barrier
	// does (slowest of primary and replica + 2× link latency).
	Latency     gcsteering.LatencySummary
	ReadLatency gcsteering.LatencySummary
	// Tenants and PerArray are indexed by tenant / array order.
	Tenants  []TenantResults
	PerArray []ArrayResults
	// Failures and Migrations report the run's failure-domain events in
	// schedule order.
	Failures   []FailureEvent
	Migrations []MigrationEvent
}

// WorstTenantP99 returns the highest per-tenant P99 (ns) — the fleet's
// fairness headline: steering should pull the unluckiest tenant in, not
// just the mean.
func (r *ClusterResults) WorstTenantP99() int64 {
	var worst int64
	for _, t := range r.Tenants {
		if t.Latency.P99 > worst {
			worst = t.Latency.P99
		}
	}
	return worst
}

// WorstTenantReadP99 is the read-side analogue of WorstTenantP99 — the
// metric routing can actually move, since writes never divert.
func (r *ClusterResults) WorstTenantReadP99() int64 {
	var worst int64
	for _, t := range r.Tenants {
		if t.ReadLatency.P99 > worst {
			worst = t.ReadLatency.P99
		}
	}
	return worst
}

// String renders the deterministic report (slices in index order; no map
// iteration).
func (r *ClusterResults) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d arrays, policy=%s\n", r.Arrays, r.Policy)
	fmt.Fprintf(&b, "  requests=%d shed=%d rejected=%d redirects=%d wov=%.1fms\n",
		r.Requests, r.Shed, r.Rejected, r.Redirects, float64(r.WOV)/1e6)
	if r.Replicated > 0 || r.Failed > 0 || r.DataLossEvents > 0 {
		fmt.Fprintf(&b, "  replicated=%d drops=%d failed=%d dataloss=%d availability=%.4f\n",
			r.Replicated, r.ReplicaDrops, r.Failed, r.DataLossEvents, r.Availability)
	}
	fmt.Fprintf(&b, "  latency: %v\n", r.Latency)
	fmt.Fprintf(&b, "  reads:   %v\n", r.ReadLatency)
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  tenant %-12s %-6s req=%-6d shed=%-5d rej=%-4d redir=%-5d p50=%.1fµs p99=%.1fµs\n",
			t.Name, t.QoS, t.Requests, t.Shed, t.Rejected, t.Redirects,
			float64(t.Latency.P50)/1e3, float64(t.Latency.P99)/1e3)
	}
	for a, ar := range r.PerArray {
		fmt.Fprintf(&b, "  array %-2d req=%-6d recv=%-5d divert=%-5d gc=%-4d busy=%-4d p50=%.1fµs p99=%.1fµs\n",
			a, ar.Requests, ar.Received, ar.Diverted, ar.GCEpisodes, ar.BusyWindows,
			float64(ar.Latency.P50)/1e3, float64(ar.Latency.P99)/1e3)
	}
	for _, f := range r.Failures {
		kind := "timed"
		if f.Permanent {
			kind = "permanent"
		}
		fmt.Fprintf(&b, "  failure array=%d %s at=%.1fms failover=%.1fms repinned=%d spare=%d failed=%d loss=%d rerepl=%.1fMB/%.1fms",
			f.Array, kind, f.DownAtMs, f.FailoverMs, f.RepinnedVolumes, f.SpareArray,
			f.FailedRequests, f.DataLossReads,
			float64(f.RereplicatedBytes)/1e6, f.RereplicationMs)
		if f.ResyncMs > 0 {
			fmt.Fprintf(&b, " resync=%.1fMB/%.1fms", float64(f.ResyncBytes)/1e6, f.ResyncMs)
		}
		fmt.Fprintln(&b)
	}
	for _, m := range r.Migrations {
		fmt.Fprintf(&b, "  migration %s %d->%d start=%.1fms cutover=%.1fms copied=%.1fMB/%.1fms\n",
			m.Volume, m.From, m.To, m.StartMs, m.CutoverMs,
			float64(m.CopiedBytes)/1e6, m.CopyMs)
	}
	return b.String()
}

// aggregate joins the router's per-request leg records with the shards'
// per-sequence latencies, strictly in admitted order, then layers the
// per-array engine results on top. Everything runs after the worker pool
// has drained, so the merge order is a pure function of the inputs.
func (c Config) aggregate(admitted []placedReq, shed []int64, rt *router, results []*gcsteering.Results, stats []*shardStats) *ClusterResults {
	out := &ClusterResults{
		Arrays:     c.Arrays,
		Policy:     c.Policy,
		Requests:   int64(len(admitted)),
		Replicated: rt.replicated,
		Tenants:    make([]TenantResults, len(c.Tenants)),
		PerArray:   make([]ArrayResults, c.Arrays),
		Failures:   append([]FailureEvent(nil), rt.faults...),
		Migrations: append([]MigrationEvent(nil), rt.migs...),
	}
	for ti, t := range c.Tenants {
		out.Tenants[ti].Name = t.Name
		out.Tenants[ti].QoS = t.QoS
		out.Tenants[ti].Shed = shed[ti]
		out.Shed += shed[ti]
	}

	// latAt reads one leg's settled latency: >= 0 settled, -1 rejected,
	// -2 never observed (treated as rejected).
	latAt := func(l legRef) int64 {
		st := stats[l.array]
		if st == nil || l.seq >= len(st.lat) {
			return -2
		}
		return st.lat[l.seq]
	}
	// legStart reads a leg's submit instant from the sorted shard stream.
	legStart := func(l legRef) sim.Time {
		return rt.recs[l.array][l.seq].rec.Timestamp
	}
	// inFlightAtCrash reports whether the leg was open when its array went
	// down: submitted before the crash, settled (by the crash-blind shard
	// engine) after it.
	inFlightAtCrash := func(l legRef, lat int64) bool {
		downAt := rt.downAt[l.array]
		if downAt == noCrash || lat < 0 {
			return false
		}
		start := legStart(l)
		return start < downAt && start+sim.Time(lat) > downAt
	}

	deadline := c.deadlineNs()
	var lat, readLat metrics.Hist
	tenantLat := make([]metrics.Hist, len(c.Tenants))
	tenantRead := make([]metrics.Hist, len(c.Tenants))
	arrayLat := make([]metrics.Hist, c.Arrays)
	lagSum := make([]float64, c.Arrays)
	lagCount := make([]int64, c.Arrays)
	lagMax := make([]float64, c.Arrays)

	for i := range admitted {
		r := &rt.routes[i]
		tn := &out.Tenants[r.tenant]
		tn.Requests++
		if r.failed {
			// Routed while the serving array was down: counted (and traced)
			// by the router itself.
			tn.Failed++
			out.Failed++
			out.PerArray[r.failArray].Failed++
			if r.dataLoss {
				out.DataLossEvents++
			}
			continue
		}
		var serving legRef
		hasServing := false
		for _, l := range r.legs {
			if l.role == rolePrimary {
				serving = l
				hasServing = true
				break
			}
		}
		if !hasServing {
			continue // cannot happen: every non-failed request has a serving leg
		}
		out.PerArray[serving.array].Requests++
		if r.redirect {
			tn.Redirects++
			out.Redirects++
			out.PerArray[serving.array].Received++
		}
		servingLat := latAt(serving)
		if servingLat < 0 {
			tn.Rejected++
			out.Rejected++
			continue
		}
		if inFlightAtCrash(serving, servingLat) {
			// The array died with this request open: the client never saw a
			// completion, whatever the crash-blind shard engine measured.
			tn.Failed++
			out.Failed++
			out.PerArray[serving.array].Failed++
			if fi := rt.faultIdx[serving.array]; fi >= 0 {
				out.Failures[fi].FailedRequests++
				perm := rt.eff.faults[fi].permanent()
				if !r.write && perm && !r.altLive && !r.redirect {
					r.dataLoss = true
					out.Failures[fi].DataLossReads++
					out.DataLossEvents++
				}
			}
			continue
		}
		// Settled. A replicated write completes at its barrier: the slowest
		// of the serving leg and each replica leg's round trip (leg latency
		// plus the link both ways). A replica leg that did not settle drops
		// out of the barrier and is re-replicated later.
		final := servingLat
		for _, l := range r.legs {
			if l.role != roleReplica {
				continue
			}
			rlat := latAt(l)
			if rlat < 0 || inFlightAtCrash(l, rlat) {
				out.ReplicaDrops++
				continue
			}
			eff := rlat + 2*l.linkNs
			if eff > final {
				final = eff
			}
			if lag := float64(eff - servingLat); lag > 0 {
				lagSum[l.array] += lag
				lagCount[l.array]++
				if lag > lagMax[l.array] {
					lagMax[l.array] = lag
				}
			} else {
				lagCount[l.array]++
			}
		}
		lat.Observe(final)
		tenantLat[r.tenant].Observe(final)
		arrayLat[serving.array].Observe(servingLat)
		if !r.write {
			readLat.Observe(final)
			tenantRead[r.tenant].Observe(final)
		}
		if deadline == 0 || final <= deadline {
			out.Available++
		}
	}
	out.Availability = float64(out.Available) / float64(max64(1, out.Requests))

	// Background streams: count replica/mirror/copy legs per array, and
	// time each copy job's drain from its last settled chunk write.
	jobDone := make([]sim.Time, len(rt.jobs))
	for j, job := range rt.jobs {
		jobDone[j] = job.cutoverAt
	}
	for a := range rt.recs {
		st := stats[a]
		for seq, sr := range rt.recs[a] {
			switch sr.meta.role {
			case roleReplica:
				out.PerArray[a].ReplWrites++
			case roleMirror:
				out.PerArray[a].CopyWrites++
			case roleCopyWrite:
				out.PerArray[a].CopyWrites++
				if j := sr.meta.job; j >= 0 && st != nil && st.lat[seq] >= 0 {
					if done := sr.rec.Timestamp + sim.Time(st.lat[seq]); done > jobDone[j] {
						jobDone[j] = done
					}
				}
			}
		}
	}
	for j, job := range rt.jobs {
		durMs := float64(jobDone[j]-job.start) / float64(sim.Millisecond)
		if job.fault >= 0 && durMs > out.Failures[job.fault].RereplicationMs {
			out.Failures[job.fault].RereplicationMs = durMs
		}
		if job.mig >= 0 {
			out.Migrations[job.mig].CopiedBytes += job.bytes
			if durMs > out.Migrations[job.mig].CopyMs {
				out.Migrations[job.mig].CopyMs = durMs
			}
		}
	}
	for a := 0; a < c.Arrays; a++ {
		if lagCount[a] > 0 {
			out.PerArray[a].ReplLagMeanUs = lagSum[a] / float64(lagCount[a]) / 1e3
			out.PerArray[a].ReplLagMaxUs = lagMax[a] / 1e3
		}
		if r := results[a]; r != nil {
			out.PerArray[a].GCEpisodes = r.GCEpisodes
			out.PerArray[a].BusyWindows = len(r.Busy)
			out.PerArray[a].WOV = r.Fault.WindowOfVulnerability
			out.WOV += r.Fault.WindowOfVulnerability
		}
	}
	out.Latency = lat.Summarize()
	out.ReadLatency = readLat.Summarize()
	for ti := range c.Tenants {
		out.Tenants[ti].Latency = tenantLat[ti].Summarize()
		out.Tenants[ti].ReadLatency = tenantRead[ti].Summarize()
	}
	for a := 0; a < c.Arrays; a++ {
		out.PerArray[a].Latency = arrayLat[a].Summarize()
		out.PerArray[a].Diverted = rt.diverted[a]
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
