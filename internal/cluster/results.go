package cluster

import (
	"fmt"
	"strings"

	"gcsteering"
	"gcsteering/internal/metrics"
)

// TenantResults is one tenant's aggregated view of the run.
type TenantResults struct {
	Name string
	QoS  QoS
	// Requests counts admitted requests; Shed the admission-budget drops;
	// Rejected the shard-level queue-limit rejections; Redirects the reads
	// diverted to the replica copy.
	Requests  int64
	Shed      int64
	Rejected  int64
	Redirects int64
	// Latency summarizes the tenant's settled response times (ns);
	// ReadLatency the read subset — the side cluster steering acts on
	// (writes always go to the primary copy).
	Latency     gcsteering.LatencySummary
	ReadLatency gcsteering.LatencySummary
}

// ArrayResults is one array's aggregated view of the run.
type ArrayResults struct {
	// Requests counts requests routed to this array; Received the reads
	// that landed here by redirection; Diverted the reads steered away
	// from this array to their replica.
	Requests int64
	Received int64
	Diverted int64
	// GCEpisodes and BusyWindows describe why the router avoided the
	// array; WOV is its window-of-vulnerability time (fault runs).
	GCEpisodes  int64
	BusyWindows int
	WOV         gcsteering.Time
	// Latency summarizes the array's response times (ns).
	Latency gcsteering.LatencySummary
}

// ClusterResults aggregates one fleet run.
type ClusterResults struct {
	Arrays int
	Policy Policy
	// Requests counts admitted requests; Shed/Rejected/Redirects the
	// cluster-wide totals of the per-tenant counters.
	Requests  int64
	Shed      int64
	Rejected  int64
	Redirects int64
	// WOV sums window-of-vulnerability time across arrays.
	WOV gcsteering.Time
	// Latency and ReadLatency summarize all settled requests fleet-wide.
	Latency     gcsteering.LatencySummary
	ReadLatency gcsteering.LatencySummary
	// Tenants and PerArray are indexed by tenant / array order.
	Tenants  []TenantResults
	PerArray []ArrayResults
}

// WorstTenantP99 returns the highest per-tenant P99 (ns) — the fleet's
// fairness headline: steering should pull the unluckiest tenant in, not
// just the mean.
func (r *ClusterResults) WorstTenantP99() int64 {
	var worst int64
	for _, t := range r.Tenants {
		if t.Latency.P99 > worst {
			worst = t.Latency.P99
		}
	}
	return worst
}

// WorstTenantReadP99 is the read-side analogue of WorstTenantP99 — the
// metric routing can actually move, since writes never divert.
func (r *ClusterResults) WorstTenantReadP99() int64 {
	var worst int64
	for _, t := range r.Tenants {
		if t.ReadLatency.P99 > worst {
			worst = t.ReadLatency.P99
		}
	}
	return worst
}

// String renders the deterministic report (slices in index order; no map
// iteration).
func (r *ClusterResults) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d arrays, policy=%s\n", r.Arrays, r.Policy)
	fmt.Fprintf(&b, "  requests=%d shed=%d rejected=%d redirects=%d wov=%.1fms\n",
		r.Requests, r.Shed, r.Rejected, r.Redirects, float64(r.WOV)/1e6)
	fmt.Fprintf(&b, "  latency: %v\n", r.Latency)
	fmt.Fprintf(&b, "  reads:   %v\n", r.ReadLatency)
	for _, t := range r.Tenants {
		fmt.Fprintf(&b, "  tenant %-12s %-6s req=%-6d shed=%-5d rej=%-4d redir=%-5d p50=%.1fµs p99=%.1fµs\n",
			t.Name, t.QoS, t.Requests, t.Shed, t.Rejected, t.Redirects,
			float64(t.Latency.P50)/1e3, float64(t.Latency.P99)/1e3)
	}
	for a, ar := range r.PerArray {
		fmt.Fprintf(&b, "  array %-2d req=%-6d recv=%-5d divert=%-5d gc=%-4d busy=%-4d p50=%.1fµs p99=%.1fµs\n",
			a, ar.Requests, ar.Received, ar.Diverted, ar.GCEpisodes, ar.BusyWindows,
			float64(ar.Latency.P50)/1e3, float64(ar.Latency.P99)/1e3)
	}
	return b.String()
}

// aggregate merges the per-shard measurements — strictly in tenant and
// array index order — into the ClusterResults.
func (c Config) aggregate(requests int64, shed, diverted []int64, metas [][]reqMeta, results []*gcsteering.Results, stats []*shardStats) *ClusterResults {
	out := &ClusterResults{
		Arrays:   c.Arrays,
		Policy:   c.Policy,
		Requests: requests,
		Tenants:  make([]TenantResults, len(c.Tenants)),
		PerArray: make([]ArrayResults, c.Arrays),
	}
	for ti, t := range c.Tenants {
		out.Tenants[ti].Name = t.Name
		out.Tenants[ti].QoS = t.QoS
		out.Tenants[ti].Shed = shed[ti]
		out.Shed += shed[ti]
	}
	// Routing-side counters come from the metas (deterministic order).
	for a, meta := range metas {
		out.PerArray[a].Requests = int64(len(meta))
		for _, m := range meta {
			out.Tenants[m.tenant].Requests++
			if m.redirect {
				out.Tenants[m.tenant].Redirects++
				out.PerArray[a].Received++
				out.Redirects++
			}
		}
	}
	// Measurement-side: merge per-shard hists and counters in array order.
	var lat, readLat metrics.Hist
	tenantLat := make([]metrics.Hist, len(c.Tenants))
	tenantRead := make([]metrics.Hist, len(c.Tenants))
	for a := 0; a < c.Arrays; a++ {
		if st := stats[a]; st != nil {
			lat.Merge(&st.lat)
			readLat.Merge(&st.readLat)
			out.PerArray[a].Latency = st.lat.Summarize()
			for ti := range c.Tenants {
				tenantLat[ti].Merge(&st.tenantLat[ti])
				tenantRead[ti].Merge(&st.tenantRead[ti])
				out.Tenants[ti].Rejected += st.tenantRej[ti]
				out.Rejected += st.tenantRej[ti]
			}
		}
		if r := results[a]; r != nil {
			out.PerArray[a].GCEpisodes = r.GCEpisodes
			out.PerArray[a].BusyWindows = len(r.Busy)
			out.PerArray[a].WOV = r.Fault.WindowOfVulnerability
			out.WOV += r.Fault.WindowOfVulnerability
		}
	}
	out.Latency = lat.Summarize()
	out.ReadLatency = readLat.Summarize()
	for ti := range c.Tenants {
		out.Tenants[ti].Latency = tenantLat[ti].Summarize()
		out.Tenants[ti].ReadLatency = tenantRead[ti].Summarize()
	}
	for a, d := range diverted {
		out.PerArray[a].Diverted = d
	}
	return out
}
