package cluster

import "testing"

// FuzzRingPlacement checks the consistent-hashing stability property the
// Directory tier and failover spare selection both rely on: growing the
// fleet by one array may only move keys onto the new array — any key whose
// primary AND replica avoid the newcomer must keep its old placement
// exactly. (Shrinking is the same statement read backwards: the n-array
// ring is the n+1-array ring with the last array removed.)
func FuzzRingPlacement(f *testing.F) {
	f.Add(4, "tenant-a/0")
	f.Add(8, "pinned/1")
	f.Add(2, "")
	f.Add(16, "burst/1337")
	f.Fuzz(func(t *testing.T, arrays int, key string) {
		if arrays < 0 {
			arrays = -arrays
		}
		arrays = 2 + arrays%31 // 2..32 arrays before growth
		small := newRing(arrays, 64)
		grown := newRing(arrays+1, 64)

		p1, r1 := small.lookup(key)
		p2, r2 := grown.lookup(key)
		if p2 != arrays && r2 != arrays {
			if p2 != p1 || r2 != r1 {
				t.Fatalf("adding array %d moved %q: (%d,%d) -> (%d,%d)",
					arrays, key, p1, r1, p2, r2)
			}
		}
		if p2 == r2 {
			t.Fatalf("replica co-located with primary for %q on %d arrays", key, arrays+1)
		}
		// replicaExcluding must agree with lookup when only the primary is
		// excluded, and never return an excluded array.
		if got := small.replicaExcluding(key, p1); got != r1 {
			t.Fatalf("replicaExcluding(%q, %d) = %d, lookup replica %d", key, p1, got, r1)
		}
		if spare := small.replicaExcluding(key, p1, r1); arrays > 2 && (spare == p1 || spare == r1) {
			t.Fatalf("spare %d collides with placement (%d,%d)", spare, p1, r1)
		}
	})
}
