package cluster

import (
	"fmt"
	"sort"
)

// FNV-1a 64-bit constants. The hash is implemented inline rather than via
// hash/fnv so a ring lookup allocates nothing and the function stays usable
// from per-request paths.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnv64 hashes s with FNV-1a and finishes with a murmur3-style avalanche.
// Raw FNV-1a clusters badly on short, similar strings ("array-0#1" vs
// "array-0#2" differ in a handful of high bits), which would collapse the
// ring's virtual nodes into one arc; the finalizer spreads them uniformly.
func fnv64(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return fnvFinish(h)
}

// fnvFinish is the murmur3-style avalanche applied after the FNV-1a fold.
func fnvFinish(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// fnv64At hashes the byte sequence `s + "@" + decimal(n)` without building
// the intermediate string, producing output bit-identical to
// fnv64(fmt.Sprintf("%s@%d", s, n)) for n >= 0. The per-request placement
// path (arrayOffset) depends on that equivalence: switching hash inputs
// would silently re-place every volume extent, so TestFnv64AtMatchesSprintf
// pins the two forms together.
func fnv64At(s string, n int) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= uint64('@')
	h *= fnvPrime
	var buf [20]byte
	i := len(buf)
	if n == 0 {
		i--
		buf[i] = '0'
	}
	for v := n; v > 0; v /= 10 {
		i--
		buf[i] = byte('0' + v%10)
	}
	for ; i < len(buf); i++ {
		h ^= uint64(buf[i])
		h *= fnvPrime
	}
	return fnvFinish(h)
}

// searchGE returns the index of the first ring point with hash >= h, or
// len(points) if none. It is sort.Search specialised to the ring so the
// per-request lookup path stays closure-free (sort.Search's func argument
// escapes to the heap on every call).
func (r *ring) searchGE(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash >= h {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ringPoint is one virtual node on the hash ring.
type ringPoint struct {
	hash  uint64
	array int
}

// ring places volume keys onto arrays by consistent hashing: each array
// contributes vnodes virtual points, a key lands on the first point at or
// clockwise of its hash, and its replica is the next *distinct* array
// further clockwise. Virtual nodes smooth the load split; consistent
// hashing (rather than key mod N) keeps most placements stable when the
// fleet grows, which is what makes a directory override tier workable.
type ring struct {
	points []ringPoint
}

// newRing builds the ring for `arrays` arrays with `vnodes` virtual nodes
// each. Construction is deterministic: point hashes depend only on the
// array index and vnode index.
func newRing(arrays, vnodes int) *ring {
	pts := make([]ringPoint, 0, arrays*vnodes)
	for a := 0; a < arrays; a++ {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, ringPoint{fnv64(fmt.Sprintf("array-%d#%d", a, v)), a})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].array < pts[j].array
	})
	return &ring{points: pts}
}

// lookup returns the primary and replica array for a volume key. In a
// one-array ring replica equals primary (no distinct array exists). A
// degenerate ring with no points maps every key to array 0 — Config
// validation rejects such fleets before a ring is ever built, so the guard
// is a backstop against future direct callers, not a reachable state.
func (r *ring) lookup(key string) (primary, replica int) {
	if len(r.points) == 0 {
		return 0, 0
	}
	h := fnv64(key)
	i := r.searchGE(h)
	if i == len(r.points) {
		i = 0
	}
	primary = r.points[i].array
	replica = primary
	for k := 1; k <= len(r.points); k++ {
		if p := r.points[(i+k)%len(r.points)]; p.array != primary {
			replica = p.array
			break
		}
	}
	return primary, replica
}

// replicaExcluding walks the ring clockwise from the key's position and
// returns the first array not in avoid. It is the replica rule the
// Directory-override and spare-selection paths share: a pinned volume's
// replica is still the array the ring walk reaches first (so replica
// placement keeps the ring's failure independence instead of the pinned
// primary's numeric neighbor), and a crashed array's replacement replica is
// the next ring arc past both live copies. With every array avoided (or an
// empty ring) it degrades to the key's clockwise successor.
func (r *ring) replicaExcluding(key string, avoid ...int) int {
	if len(r.points) == 0 {
		return 0
	}
	h := fnv64(key)
	i := r.searchGE(h)
	if i == len(r.points) {
		i = 0
	}
	for k := 0; k <= len(r.points); k++ {
		a := r.points[(i+k)%len(r.points)].array
		excluded := false
		for _, x := range avoid {
			if a == x {
				excluded = true
				break
			}
		}
		if !excluded {
			return a
		}
	}
	return r.points[i].array
}
