package cluster

import (
	"testing"
)

func TestMigrationCutover(t *testing.T) {
	c := Config{
		Arrays:    4,
		Policy:    PolicyHash,
		Workers:   2,
		Base:      tinyBase(),
		Tenants:   []Tenant{{Name: "mig", Profile: "hm_0", Requests: 300}},
		Directory: map[string]int{"mig/0": 0},
		// The hm_0 workload spans ~580 ms; start the copy at 100 ms and pace
		// it so the cutover lands mid-workload (~85 MB at 400 MB/s ≈ 215 ms).
		Migrations:  []Migration{{Tenant: "mig", Volume: 0, To: 2, AtMs: 100}},
		MigrateMBps: 400,
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, r)
	if len(r.Migrations) != 1 {
		t.Fatalf("migrations: %v", r.Migrations)
	}
	m := r.Migrations[0]
	if m.Volume != "mig/0" || m.From != 0 || m.To != 2 {
		t.Fatalf("migration event: %+v", m)
	}
	if m.CutoverMs <= m.StartMs {
		t.Fatalf("cutover %.1fms not after start %.1fms", m.CutoverMs, m.StartMs)
	}
	if m.CopiedBytes == 0 || m.CopyMs <= 0 {
		t.Fatalf("copy not measured: %+v", m)
	}
	// In-flight correctness at cutover: nothing fails, nothing is lost —
	// requests routed before the flip complete on the old array, later ones
	// serve from the destination.
	if r.Failed != 0 || r.DataLossEvents != 0 {
		t.Fatalf("migration failed requests: failed=%d loss=%d", r.Failed, r.DataLossEvents)
	}
	if r.PerArray[0].Requests == 0 {
		t.Fatal("source array served nothing before the cutover")
	}
	if r.PerArray[2].Requests == 0 {
		t.Fatal("destination array served nothing after the cutover")
	}
	if r.PerArray[2].CopyWrites == 0 {
		t.Fatal("destination saw no copy/mirror writes")
	}
	if got := r.PerArray[0].Requests + r.PerArray[2].Requests + r.Failed; got != r.Requests {
		t.Fatalf("requests leaked to other arrays: %d + failed != %d", got, r.Requests)
	}
}

func TestMigrationSkippedWhenTargetDown(t *testing.T) {
	c := Config{
		Arrays:          4,
		Policy:          PolicyHash,
		Workers:         1,
		Base:            tinyBase(),
		Tenants:         []Tenant{{Name: "mig", Profile: "hm_0", Requests: 150}},
		Directory:       map[string]int{"mig/0": 0},
		ReplicateWrites: true,
		ArrayFaults:     []ArrayFault{{Array: 2, AtMs: 500}}, // permanent
		Migrations:      []Migration{{Tenant: "mig", Volume: 0, To: 2, AtMs: 1000}},
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Migrations) != 0 {
		t.Fatalf("migration onto a down array was not skipped: %v", r.Migrations)
	}
}

func TestMigrationValidation(t *testing.T) {
	base := tinyBase()
	good := Config{
		Arrays:  4,
		Base:    base,
		Tenants: []Tenant{{Name: "a", Profile: "Fin1", Requests: 10, Volumes: 2}},
	}
	for _, tc := range []struct {
		name string
		m    Migration
	}{
		{"unknown tenant", Migration{Tenant: "nope", Volume: 0, To: 1}},
		{"volume range", Migration{Tenant: "a", Volume: 2, To: 1}},
		{"target range", Migration{Tenant: "a", Volume: 0, To: 4}},
		{"negative time", Migration{Tenant: "a", Volume: 0, To: 1, AtMs: -1}},
	} {
		c := good
		c.Migrations = []Migration{tc.m}
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}
