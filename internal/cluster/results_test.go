package cluster

import (
	"math"
	"strings"
	"testing"
)

// TestAggregateZeroRequestArray pins the merge path for arrays no request
// ever reached: one volume pinned to one array leaves the rest of the
// fleet idle, and the aggregation must neither divide by zero nor drop
// tenant or array rows.
func TestAggregateZeroRequestArray(t *testing.T) {
	c := Config{
		Arrays:    4,
		Policy:    PolicyHash,
		Workers:   2,
		Base:      tinyBase(),
		Tenants:   []Tenant{{Name: "solo", Profile: "Fin1", Requests: 100}},
		Directory: map[string]int{"solo/0": 1},
	}
	r, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	conserve(t, r)
	if r.Requests == 0 {
		t.Fatal("no requests admitted")
	}
	if len(r.PerArray) != 4 {
		t.Fatalf("per-array rows: %d", len(r.PerArray))
	}
	if len(r.Tenants) != 1 || r.Tenants[0].Name != "solo" {
		t.Fatalf("tenant rows dropped: %+v", r.Tenants)
	}
	if r.Tenants[0].Requests != r.Requests {
		t.Fatalf("tenant requests %d != admitted %d", r.Tenants[0].Requests, r.Requests)
	}
	if math.IsNaN(r.Availability) || r.Availability < 0 || r.Availability > 1 {
		t.Fatalf("availability %v", r.Availability)
	}
	for a, ar := range r.PerArray {
		if a == 1 {
			if ar.Requests == 0 {
				t.Fatal("pinned array served nothing")
			}
			continue
		}
		if ar.Requests != 0 || ar.Latency.Count != 0 {
			t.Fatalf("idle array %d reported traffic: %+v", a, ar)
		}
	}
	// The report must still render every row.
	s := r.String()
	for _, want := range []string{"array 0", "array 3", "tenant solo"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}
