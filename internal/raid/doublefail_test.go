package raid

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func raid6StoreLayout() Layout {
	return Layout{Level: RAID6, Disks: 6, UnitPages: 16, DiskPages: 256}
}

func TestRAID6DoubleFailureDegradedReads(t *testing.T) {
	l := raid6StoreLayout()
	for a := 0; a < l.Disks; a++ {
		for b := a + 1; b < l.Disks; b++ {
			s := newStore(t, l)
			rng := rand.New(rand.NewSource(int64(a*10 + b)))
			shadow := fillRandom(t, s, rng)
			if err := s.FailDisk(a); err != nil {
				t.Fatal(err)
			}
			if err := s.FailDisk(b); err != nil {
				t.Fatal(err)
			}
			got, err := s.Read(0, l.LogicalPages())
			if err != nil {
				t.Fatalf("fail (%d,%d): %v", a, b, err)
			}
			if !bytes.Equal(got, shadow) {
				t.Fatalf("fail (%d,%d): double-degraded read mismatch", a, b)
			}
		}
	}
}

func TestRAID6DoubleFailureWritesAndReconstruct(t *testing.T) {
	l := raid6StoreLayout()
	for _, pair := range [][2]int{{0, 1}, {2, 5}, {1, 4}} {
		s := newStore(t, l)
		rng := rand.New(rand.NewSource(int64(77 + pair[0])))
		shadow := fillRandom(t, s, rng)
		s.FailDisk(pair[0])
		s.FailDisk(pair[1])
		// Writes while doubly degraded.
		for i := 0; i < 120; i++ {
			page := rng.Intn(l.LogicalPages())
			pages := 1 + rng.Intn(min(l.LogicalPages()-page, 2*l.UnitPages))
			buf := make([]byte, pages*testPageSize)
			rng.Read(buf)
			if err := s.Write(page, buf); err != nil {
				t.Fatalf("fail %v: %v", pair, err)
			}
			copy(shadow[page*testPageSize:], buf)
		}
		got, err := s.Read(0, l.LogicalPages())
		if err != nil || !bytes.Equal(got, shadow) {
			t.Fatalf("fail %v: doubly-degraded read after writes wrong (%v)", pair, err)
		}
		// Full two-disk reconstruction.
		if err := s.Reconstruct(); err != nil {
			t.Fatalf("fail %v: %v", pair, err)
		}
		if len(s.Failed()) != 0 {
			t.Fatalf("fail %v: still degraded after reconstruct", pair)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("fail %v: %v", pair, err)
		}
		got, err = s.Read(0, l.LogicalPages())
		if err != nil || !bytes.Equal(got, shadow) {
			t.Fatalf("fail %v: content changed by double reconstruction", pair)
		}
	}
}

func TestRAID5RejectsSecondFailure(t *testing.T) {
	s := newStore(t, layouts()[2])
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err == nil {
		t.Fatal("RAID5 accepted a second failure")
	}
	if err := s.FailDisk(0); err == nil {
		t.Fatal("duplicate failure accepted")
	}
}

func TestRAID6RejectsThirdFailure(t *testing.T) {
	s := newStore(t, raid6StoreLayout())
	s.FailDisk(0)
	s.FailDisk(1)
	if err := s.FailDisk(2); err == nil {
		t.Fatal("RAID6 accepted a third failure")
	}
}

func TestRAID1SurvivesAllButOne(t *testing.T) {
	l := Layout{Level: RAID1, Disks: 3, UnitPages: 16, DiskPages: 256}
	s := newStore(t, l)
	shadow := fillRandom(t, s, rand.New(rand.NewSource(21)))
	if err := s.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	if err := s.FailDisk(1); err == nil {
		t.Fatal("last mirror failure accepted")
	}
	got, err := s.Read(0, l.LogicalPages())
	if err != nil || !bytes.Equal(got, shadow) {
		t.Fatal("read via last surviving mirror wrong")
	}
	if err := s.Reconstruct(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckParity(); err != nil {
		t.Fatal(err)
	}
}

// Property: on RAID6, any two failures injected at random points of a
// random write sequence still yield exact reads and an exact two-disk
// reconstruction.
func TestQuickRAID6DoubleFaultRoundTrip(t *testing.T) {
	type spec struct {
		Seed             int64
		FailAt1, FailAt2 uint8
		DiskA, DiskB     uint8
	}
	l := raid6StoreLayout()
	f := func(sp spec) bool {
		s, err := NewStore(l, testPageSize)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(sp.Seed))
		shadow := make([]byte, l.LogicalPages()*testPageSize)
		rng.Read(shadow)
		if err := s.Write(0, shadow); err != nil {
			t.Fatal(err)
		}
		a := int(sp.DiskA) % l.Disks
		b := int(sp.DiskB) % l.Disks
		if a == b {
			b = (b + 1) % l.Disks
		}
		f1 := int(sp.FailAt1) % 50
		f2 := int(sp.FailAt2) % 50
		for i := 0; i < 50; i++ {
			if i == f1 {
				s.FailDisk(a)
			}
			if i == f2 {
				s.FailDisk(b)
			}
			page := rng.Intn(l.LogicalPages())
			pages := 1 + rng.Intn(min(l.LogicalPages()-page, 2*l.UnitPages))
			buf := make([]byte, pages*testPageSize)
			rng.Read(buf)
			if err := s.Write(page, buf); err != nil {
				t.Fatal(err)
			}
			copy(shadow[page*testPageSize:], buf)
		}
		got, err := s.Read(0, l.LogicalPages())
		if err != nil || !bytes.Equal(got, shadow) {
			return false
		}
		if err := s.Reconstruct(); err != nil {
			return false
		}
		got, err = s.Read(0, l.LogicalPages())
		return err == nil && bytes.Equal(got, shadow) && s.CheckParity() == nil
	}
	cfg := &quick.Config{
		MaxCount: 15,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(spec{
				Seed: r.Int63(), FailAt1: uint8(r.Intn(256)), FailAt2: uint8(r.Intn(256)),
				DiskA: uint8(r.Intn(256)), DiskB: uint8(r.Intn(256)),
			})
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
