package raid

import (
	"testing"

	"gcsteering/internal/sim"
)

// fakeDisk records sub-ops and completes each after a fixed latency.
type fakeDisk struct {
	eng      *sim.Engine
	pages    int
	readLat  sim.Time
	writeLat sim.Time
	inGC     bool

	reads  []SubOp // reconstructed from calls (Kind unknown -> OpDataRead)
	writes []SubOp
}

func (f *fakeDisk) Read(now sim.Time, page, pages int, done func(sim.Time)) error {
	f.reads = append(f.reads, SubOp{Page: page, Pages: pages})
	if done != nil {
		f.eng.At(now+f.readLat, done)
	}
	return nil
}

func (f *fakeDisk) Write(now sim.Time, page, pages int, done func(sim.Time)) error {
	f.writes = append(f.writes, SubOp{Page: page, Pages: pages})
	if done != nil {
		f.eng.At(now+f.writeLat, done)
	}
	return nil
}

func (f *fakeDisk) LogicalPages() int    { return f.pages }
func (f *fakeDisk) InGC(t sim.Time) bool { return f.inGC }

// mustMap is Layout.Map for test fixtures whose pages are in range.
func mustMap(l Layout, p int) Loc {
	loc, err := l.Map(p)
	if err != nil {
		panic(err)
	}
	return loc
}

func newFakeArray(t *testing.T, lay Layout) (*sim.Engine, *Array, []*fakeDisk) {
	t.Helper()
	eng := sim.NewEngine()
	fakes := make([]*fakeDisk, lay.Disks)
	disks := make([]Disk, lay.Disks)
	for i := range fakes {
		fakes[i] = &fakeDisk{eng: eng, pages: lay.DiskPages, readLat: 10, writeLat: 100}
		disks[i] = fakes[i]
	}
	a, err := NewArray(eng, lay, disks)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, fakes
}

func raid5Layout() Layout {
	return Layout{Level: RAID5, Disks: 5, UnitPages: 16, DiskPages: 256}
}

func TestNewArrayValidation(t *testing.T) {
	eng := sim.NewEngine()
	lay := raid5Layout()
	if _, err := NewArray(eng, lay, make([]Disk, 3)); err == nil {
		t.Fatal("wrong disk count accepted")
	}
	small := make([]Disk, 5)
	for i := range small {
		small[i] = &fakeDisk{eng: eng, pages: 8}
	}
	if _, err := NewArray(eng, lay, small); err == nil {
		t.Fatal("undersized disks accepted")
	}
}

func TestReadSingleUnitHitsOneDisk(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	var doneAt sim.Time
	a.Read(0, 0, 4, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt != 10 {
		t.Fatalf("read finished at %v, want 10", doneAt)
	}
	nReads := 0
	for _, f := range fakes {
		nReads += len(f.reads)
	}
	if nReads != 1 {
		t.Fatalf("read fanned out to %d sub-reads, want 1", nReads)
	}
}

func TestReadSpanningUnitsFansOut(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	lay := a.Layout()
	// Read two full units starting at unit boundary: two disks, parallel.
	var doneAt sim.Time
	a.Read(0, 0, 2*lay.UnitPages, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt != 10 {
		t.Fatalf("parallel read finished at %v, want 10", doneAt)
	}
	touched := 0
	for _, f := range fakes {
		if len(f.reads) > 0 {
			touched++
		}
	}
	if touched != 2 {
		t.Fatalf("touched %d disks, want 2", touched)
	}
}

func TestSmallWriteIsRMW(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	var doneAt sim.Time
	a.Write(0, 0, 1, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	// Phase 1: read old data + old parity (10). Phase 2: write new data +
	// new parity (100). Total 110.
	if doneAt != 110 {
		t.Fatalf("RMW finished at %v, want 110", doneAt)
	}
	st := a.Stats()
	if st.RMWStripes != 1 || st.FullStripes != 0 {
		t.Fatalf("stats: %+v", st)
	}
	var reads, writes int
	parityDisk := a.Layout().ParityDisk(0)
	for d, f := range fakes {
		reads += len(f.reads)
		writes += len(f.writes)
		if d == parityDisk && (len(f.reads) != 1 || len(f.writes) != 1) {
			t.Fatalf("parity disk saw reads=%d writes=%d", len(f.reads), len(f.writes))
		}
	}
	if reads != 2 || writes != 2 {
		t.Fatalf("reads=%d writes=%d, want 2/2", reads, writes)
	}
}

func TestFullStripeWriteSkipsReads(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	lay := a.Layout()
	full := lay.DataDisks() * lay.UnitPages
	var doneAt sim.Time
	a.Write(0, 0, full, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt != 100 {
		t.Fatalf("full-stripe write finished at %v, want 100 (no read phase)", doneAt)
	}
	if a.Stats().FullStripes != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
	for d, f := range fakes {
		if len(f.reads) != 0 {
			t.Fatalf("disk %d saw %d reads on a full-stripe write", d, len(f.reads))
		}
		if len(f.writes) != 1 {
			t.Fatalf("disk %d saw %d writes, want 1", d, len(f.writes))
		}
	}
}

func TestParityPagesMatchWrittenSpan(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	a.Write(0, 3, 5, nil) // pages 3..7 within unit 0 of stripe 0
	eng.Run()             // phase 2 (the parity write) runs after phase 1 completes
	pd := a.Layout().ParityDisk(0)
	if len(fakes[pd].writes) != 1 {
		t.Fatalf("parity writes = %d", len(fakes[pd].writes))
	}
	w := fakes[pd].writes[0]
	if w.Page != 3 || w.Pages != 5 {
		t.Fatalf("parity write at %d+%d, want 3+5", w.Page, w.Pages)
	}
}

func TestDegradedReadFansToSurvivors(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	lay := a.Layout()
	target := mustMap(lay, 0) // data unit 0 of stripe 0
	if err := a.FailDisk(target.Disk); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	a.Read(0, 0, 1, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt != 10 {
		t.Fatalf("degraded read finished at %v (parallel reconstruct)", doneAt)
	}
	// All surviving disks (3 data + parity) must be read.
	touched := 0
	for d, f := range fakes {
		if d == target.Disk {
			if len(f.reads) != 0 {
				t.Fatal("failed disk was read")
			}
			continue
		}
		if len(f.reads) != 1 {
			t.Fatalf("survivor %d read %d times, want 1", d, len(f.reads))
		}
		touched++
	}
	if touched != 4 {
		t.Fatalf("touched %d survivors, want 4", touched)
	}
	if a.Stats().DegradedReads != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
}

func TestDegradedWriteToFailedUnitUpdatesParityOnly(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	lay := a.Layout()
	target := mustMap(lay, 0)
	if err := a.FailDisk(target.Disk); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0, 1, nil)
	eng.Run()
	if a.Stats().ReconstructWr != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
	// Data write must be absent; parity write present.
	pd := lay.ParityDisk(0)
	if len(fakes[pd].writes) != 1 {
		t.Fatalf("parity disk writes = %d, want 1", len(fakes[pd].writes))
	}
	for d, f := range fakes {
		if d != pd && len(f.writes) != 0 {
			t.Fatalf("disk %d saw unexpected write", d)
		}
	}
	// Reconstruct-write reads all surviving data units.
	readCount := 0
	for d, f := range fakes {
		if d == target.Disk && len(f.reads) != 0 {
			t.Fatal("failed disk was read")
		}
		readCount += len(f.reads)
	}
	if readCount != 4 { // 3 surviving data units + parity
		t.Fatalf("phase-1 reads = %d, want 4", readCount)
	}
}

func TestDegradedParityDiskWriteSkipsParity(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	lay := a.Layout()
	pd := lay.ParityDisk(0)
	if err := a.FailDisk(pd); err != nil {
		t.Fatal(err)
	}
	a.Write(0, 0, 1, nil)
	eng.Run()
	// Normal RMW path minus the parity ops.
	target := mustMap(lay, 0)
	if len(fakes[target.Disk].writes) != 1 || len(fakes[target.Disk].reads) != 1 {
		t.Fatalf("data disk ops: r=%d w=%d", len(fakes[target.Disk].reads), len(fakes[target.Disk].writes))
	}
	if len(fakes[pd].reads)+len(fakes[pd].writes) != 0 {
		t.Fatal("failed parity disk was touched")
	}
}

func TestRAID6WriteUpdatesBothParities(t *testing.T) {
	lay := Layout{Level: RAID6, Disks: 6, UnitPages: 16, DiskPages: 256}
	eng, a, fakes := newFakeArray(t, lay)
	a.Write(0, 0, 1, nil)
	eng.Run()
	pd, qd := lay.ParityDisk(0), lay.QDisk(0)
	if len(fakes[pd].writes) != 1 || len(fakes[qd].writes) != 1 {
		t.Fatalf("P writes=%d Q writes=%d", len(fakes[pd].writes), len(fakes[qd].writes))
	}
	if len(fakes[pd].reads) != 1 || len(fakes[qd].reads) != 1 {
		t.Fatalf("P reads=%d Q reads=%d", len(fakes[pd].reads), len(fakes[qd].reads))
	}
}

func TestRAID1WriteMirrorsReadBalances(t *testing.T) {
	lay := Layout{Level: RAID1, Disks: 2, UnitPages: 16, DiskPages: 256}
	eng, a, fakes := newFakeArray(t, lay)
	a.Write(0, 0, 1, nil)
	eng.Run()
	if len(fakes[0].writes) != 1 || len(fakes[1].writes) != 1 {
		t.Fatal("RAID1 write did not mirror")
	}
	a.Read(eng.Now(), 0, 1, nil)
	a.Read(eng.Now(), 0, 1, nil)
	eng.Run()
	if len(fakes[0].reads) != 1 || len(fakes[1].reads) != 1 {
		t.Fatalf("RAID1 reads not balanced: %d/%d", len(fakes[0].reads), len(fakes[1].reads))
	}
}

func TestRAID0WriteDirect(t *testing.T) {
	lay := Layout{Level: RAID0, Disks: 4, UnitPages: 16, DiskPages: 256}
	eng, a, fakes := newFakeArray(t, lay)
	var doneAt sim.Time
	a.Write(0, 0, 1, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt != 100 {
		t.Fatalf("RAID0 write at %v, want 100 (no parity, no RMW)", doneAt)
	}
	total := 0
	for _, f := range fakes {
		total += len(f.writes) + len(f.reads)
	}
	if total != 1 {
		t.Fatalf("RAID0 single-page write produced %d sub-ops", total)
	}
}

func TestRouteHookClaimsOps(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	var claimed []SubOp
	a.Route = func(now sim.Time, op SubOp, done func(sim.Time)) bool {
		if op.Kind == OpDataWrite {
			claimed = append(claimed, op)
			eng.At(now+1, done)
			return true
		}
		return false
	}
	var doneAt sim.Time
	a.Write(0, 0, 1, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if len(claimed) != 1 {
		t.Fatalf("router claimed %d ops, want 1 (the data write)", len(claimed))
	}
	if a.Stats().RoutedSubOps != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
	// Data write went to the router; parity write still hit the disk.
	dataDisk := mustMap(a.Layout(), 0).Disk
	if len(fakes[dataDisk].writes) != 0 {
		t.Fatal("claimed op still reached the disk")
	}
	pd := a.Layout().ParityDisk(0)
	if len(fakes[pd].writes) != 1 {
		t.Fatal("parity write missing")
	}
	// RMW: phase1 = 10, then routed write (1) vs parity write (100) -> 110.
	if doneAt != 110 {
		t.Fatalf("doneAt = %v, want 110", doneAt)
	}
}

func TestSubOpsDuringGCCounted(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	fakes[mustMap(a.Layout(), 0).Disk].inGC = true
	a.Read(0, 0, 1, nil)
	eng.Run()
	if a.Stats().SubOpsDuringGC != 1 {
		t.Fatalf("SubOpsDuringGC = %d", a.Stats().SubOpsDuringGC)
	}
}

func TestFailRepairCycle(t *testing.T) {
	eng, a, _ := newFakeArray(t, raid5Layout())
	if err := a.FailDisk(9); err == nil {
		t.Fatal("bad disk id accepted")
	}
	if err := a.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	if !a.Degraded() || a.Failed() != 2 {
		t.Fatal("degraded state wrong")
	}
	if err := a.FailDisk(3); err == nil {
		t.Fatal("double failure accepted")
	}
	repl := &fakeDisk{eng: eng, pages: a.Layout().DiskPages}
	if err := a.RepairDisk(repl); err != nil {
		t.Fatal(err)
	}
	if a.Degraded() {
		t.Fatal("still degraded after repair")
	}
	if err := a.RepairDisk(nil); err == nil {
		t.Fatal("repair of healthy array accepted")
	}
}

func TestRAID0CannotDegrade(t *testing.T) {
	lay := Layout{Level: RAID0, Disks: 4, UnitPages: 16, DiskPages: 256}
	_, a, _ := newFakeArray(t, lay)
	if err := a.FailDisk(0); err == nil {
		t.Fatal("RAID0 FailDisk accepted")
	}
}

func TestWriteSpanningStripesCompletesOnce(t *testing.T) {
	eng, a, _ := newFakeArray(t, raid5Layout())
	lay := a.Layout()
	completions := 0
	span := lay.DataDisks()*lay.UnitPages + 5 // full stripe + spill into next
	a.Write(0, 0, span, func(sim.Time) { completions++ })
	eng.Run()
	if completions != 1 {
		t.Fatalf("done fired %d times", completions)
	}
	st := a.Stats()
	if st.FullStripes != 1 || st.RMWStripes != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRequestRangeErrors(t *testing.T) {
	_, a, _ := newFakeArray(t, raid5Layout())
	total := a.Layout().LogicalPages()
	for _, tc := range []struct{ page, pages int }{
		{total, 1}, {-1, 1}, {0, 0}, {total - 1, 2},
	} {
		if err := a.Read(0, tc.page, tc.pages, nil); err == nil {
			t.Errorf("Read(%d,%d) did not error", tc.page, tc.pages)
		}
		if err := a.Write(0, tc.page, tc.pages, nil); err == nil {
			t.Errorf("Write(%d,%d) did not error", tc.page, tc.pages)
		}
	}
}

// TestCancelMidRMWAbsorbsWritePhase pins the deadline-cancellation
// contract: a token cancelled between an RMW's read and write phases must
// absorb the pending write sub-ops — counted, no disk touched — while the
// enclosing barrier still settles so the request's completion fires exactly
// once and nothing leaks.
func TestCancelMidRMWAbsorbsWritePhase(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	tok := &Cancel{}
	completions := 0
	var doneAt sim.Time
	if err := a.WriteCancelable(0, 0, 1, tok, func(tm sim.Time) { completions++; doneAt = tm }); err != nil {
		t.Fatal(err)
	}
	// Phase 1 reads complete at t=10; cancel strictly before that so the
	// write phase finds the token dead.
	eng.At(5, func(sim.Time) { tok.Cancel() })
	eng.Run()
	if completions != 1 {
		t.Fatalf("done fired %d times, want exactly 1", completions)
	}
	if doneAt != 10 {
		t.Fatalf("absorbed write phase settled at %v, want 10 (the read-phase completion)", doneAt)
	}
	var writes int
	for _, f := range fakes {
		writes += len(f.writes)
	}
	if writes != 0 {
		t.Fatalf("%d writes reached disks after cancellation", writes)
	}
	st := a.Stats()
	if st.CanceledSubOps != 2 {
		t.Fatalf("CanceledSubOps = %d, want 2 (new data + new parity)", st.CanceledSubOps)
	}
	if st.StaleSubOps != 0 {
		t.Fatalf("cancellation miscounted as stale: %+v", st)
	}
}

// TestCancelBeforeIssueAbsorbsEverything covers the fan-out guard: a
// request whose token is already dead at issue time touches no disk at all,
// for both reads and writes, and still completes its callback.
func TestCancelBeforeIssueAbsorbsEverything(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	tok := &Cancel{}
	tok.Cancel()
	completions := 0
	if err := a.WriteCancelable(0, 0, 1, tok, func(sim.Time) { completions++ }); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadCancelable(0, 0, 4, tok, func(sim.Time) { completions++ }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if completions != 2 {
		t.Fatalf("completions = %d, want 2", completions)
	}
	for d, f := range fakes {
		if len(f.reads) != 0 || len(f.writes) != 0 {
			t.Fatalf("disk %d touched by a dead request: reads=%d writes=%d", d, len(f.reads), len(f.writes))
		}
	}
	if st := a.Stats(); st.CanceledSubOps == 0 {
		t.Fatalf("no canceled sub-ops counted: %+v", st)
	}
}

// TestNilCancelTokenIsInert pins the zero-cost path: passing a nil token
// must behave exactly like the plain Read/Write entry points.
func TestNilCancelTokenIsInert(t *testing.T) {
	eng, a, _ := newFakeArray(t, raid5Layout())
	var doneAt sim.Time
	if err := a.WriteCancelable(0, 0, 1, nil, func(tm sim.Time) { doneAt = tm }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt != 110 {
		t.Fatalf("RMW with nil token finished at %v, want 110", doneAt)
	}
	if st := a.Stats(); st.CanceledSubOps != 0 {
		t.Fatalf("nil token produced cancellations: %+v", st)
	}
}
