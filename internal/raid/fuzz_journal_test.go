package raid

import (
	"bytes"
	"sort"
	"testing"
)

// FuzzJournalReplay pins the write-hole closure invariant on the
// byte-accurate store: tear an arbitrary batch of in-flight stripe writes
// at an arbitrary persistence boundary (any prefix of the batch completed,
// the rest left with per-leg old/new/torn residue — exactly the states a
// replayed intent-log prefix describes), resync the stripes the journal
// held open, and the array must converge to consistent parity: CheckParity
// passes, untouched stripes keep their exact contents, and an erase-two
// reconstruction through the resynced stripes round-trips (the RAID6 codec
// verification).
func FuzzJournalReplay(f *testing.F) {
	f.Add(6, 2, 4, 1, []byte("\x10\x03\xaa\x1b\x40\x02\x55\xe4"))
	f.Add(4, 1, 2, 0, []byte{0x00, 0x01, 0xff, 0x6c})
	f.Add(8, 3, 7, 3, bytes.Repeat([]byte{0x9d, 0x35, 0x70, 0x0b, 0xc2}, 8))
	f.Fuzz(func(t *testing.T, disks, unitPages, stripes, prefix int, ops []byte) {
		disks = 4 + abs(disks)%5 // 4..8: RAID6 minimum and up
		unitPages = 1 + abs(unitPages)%3
		stripes = 2 + abs(stripes)%6
		const pageSize = 8
		lay := Layout{Level: RAID6, Disks: disks, UnitPages: unitPages, DiskPages: stripes * unitPages}
		s, err := NewStore(lay, pageSize)
		if err != nil {
			t.Fatal(err)
		}

		// Base fill: every logical page gets a deterministic pattern, and a
		// shadow image tracks what a durable array must hold.
		logical := lay.LogicalPages()
		shadow := make([]byte, logical*pageSize)
		for i := range shadow {
			shadow[i] = byte(i*13 + 5)
		}
		if err := s.Write(0, shadow); err != nil {
			t.Fatal(err)
		}

		// Decode the in-flight write batch: 4 fuzz bytes per write
		// (placement, length, payload fill, per-leg crash fate).
		type op struct {
			page, pages int
			fill, legs  byte
		}
		var batch []op
		for i := 0; i+4 <= len(ops) && len(batch) < 8; i += 4 {
			o := op{
				page:  int(ops[i]) % logical,
				pages: 1 + int(ops[i+1])%(2*unitPages),
				fill:  ops[i+2],
				legs:  ops[i+3],
			}
			if o.page+o.pages > logical {
				o.pages = logical - o.page
			}
			batch = append(batch, o)
		}
		if len(batch) == 0 {
			return
		}
		prefix = abs(prefix) % (len(batch) + 1)

		payload := func(o op) []byte {
			b := make([]byte, o.pages*pageSize)
			for i := range b {
				b[i] = o.fill ^ byte(i*7)
			}
			return b
		}

		// The completed prefix persists fully (its journal entries would
		// have been marked and cleared); the shadow follows.
		dirty := map[int]bool{}
		for _, o := range batch[:prefix] {
			b := payload(o)
			if err := s.Write(o.page, b); err != nil {
				t.Fatal(err)
			}
			copy(shadow[o.page*pageSize:], b)
		}
		// A cleared-late entry may still sit in the replayed log prefix:
		// resyncing the (consistent) stripes of the last completed write
		// must be harmless, so include them in the dirty set.
		if prefix > 0 {
			o := batch[prefix-1]
			for st := lay.StripeOf(o.page); st <= lay.StripeOf(o.page+o.pages-1); st++ {
				dirty[st] = true
			}
		}

		// The rest of the batch was in flight at the cut: each leg lands in
		// one of the three crash states, driven by the fuzz bytes.
		for _, o := range batch[prefix:] {
			legs := o.legs
			state := func(d int) int {
				v := int(legs>>(uint(d%4)*2)) & 3
				if v == 3 {
					return LegTorn
				}
				return v
			}
			touched, err := s.WriteTorn(o.page, payload(o), state)
			if err != nil {
				t.Fatal(err)
			}
			for _, st := range touched {
				dirty[st] = true
			}
		}

		// Mount-time recovery: resync exactly the journal's open stripes.
		order := make([]int, 0, len(dirty))
		for st := range dirty {
			order = append(order, st)
		}
		sort.Ints(order)
		for _, st := range order {
			if err := s.ResyncStripe(st); err != nil {
				t.Fatalf("resync stripe %d: %v", st, err)
			}
		}

		// Invariant 1: the whole array holds consistent parity again.
		if err := s.CheckParity(); err != nil {
			t.Fatalf("parity inconsistent after resync of %v: %v", order, err)
		}
		// Invariant 2: stripes the batch never touched kept their bytes.
		checkClean := func(stage string) {
			for p := 0; p < logical; p++ {
				if dirty[lay.StripeOf(p)] {
					continue
				}
				got, err := s.Read(p, 1)
				if err != nil {
					t.Fatalf("%s: read clean page %d: %v", stage, p, err)
				}
				if !bytes.Equal(got, shadow[p*pageSize:(p+1)*pageSize]) {
					t.Fatalf("%s: clean page %d diverged from shadow", stage, p)
				}
			}
		}
		checkClean("healthy")

		// Invariant 3: the resynced array survives the erasures the level
		// tolerates — fail two members, read everything (degraded reads must
		// reconstruct through every resynced stripe without checksum
		// errors), then rebuild and re-verify parity.
		d1 := int(ops[0]) % disks
		d2 := (d1 + 1 + int(ops[len(ops)-1])%(disks-1)) % disks
		if err := s.FailDisk(d1); err != nil {
			t.Fatal(err)
		}
		if err := s.FailDisk(d2); err != nil {
			t.Fatal(err)
		}
		checkClean("degraded")
		for p := 0; p < logical; p++ {
			if _, err := s.Read(p, 1); err != nil {
				t.Fatalf("degraded read of resynced page %d: %v", p, err)
			}
		}
		if err := s.Reconstruct(); err != nil {
			t.Fatalf("rebuild after erase-two: %v", err)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("parity inconsistent after rebuild: %v", err)
		}
	})
}
