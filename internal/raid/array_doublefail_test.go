package raid

import (
	"testing"

	"gcsteering/internal/sim"
)

func raid6FakeLayout() Layout {
	return Layout{Level: RAID6, Disks: 6, UnitPages: 16, DiskPages: 256}
}

func TestArrayRAID6SecondFailureAccepted(t *testing.T) {
	_, a, _ := newFakeArray(t, raid6FakeLayout())
	if err := a.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(4); err != nil {
		t.Fatal(err)
	}
	if got := a.FailedDisks(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("FailedDisks = %v", got)
	}
	if a.Failed() != 1 {
		t.Fatalf("Failed() = %d, want oldest (1)", a.Failed())
	}
	if err := a.FailDisk(2); err == nil {
		t.Fatal("third failure accepted")
	}
}

func TestArrayRAID5StillSingleFailure(t *testing.T) {
	_, a, _ := newFakeArray(t, raid5Layout())
	a.FailDisk(0)
	if err := a.FailDisk(1); err == nil {
		t.Fatal("RAID5 accepted a second failure")
	}
}

func TestArrayDoubleDegradedReadUsesBothParities(t *testing.T) {
	lay := raid6FakeLayout()
	eng, a, fakes := newFakeArray(t, lay)
	// Fail two disks that both hold data units of stripe 0.
	d0 := lay.DataDisk(0, 0)
	d1 := lay.DataDisk(0, 1)
	if err := a.FailDisk(d0); err != nil {
		t.Fatal(err)
	}
	if err := a.FailDisk(d1); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	a.Read(0, 0, 1, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt == 0 {
		t.Fatal("read never completed")
	}
	// Both parity disks must be read (two unknowns need two syndromes),
	// along with the surviving data units; the failed disks stay untouched.
	pd, qd := lay.ParityDisk(0), lay.QDisk(0)
	if len(fakes[pd].reads) != 1 || len(fakes[qd].reads) != 1 {
		t.Fatalf("parity reads P=%d Q=%d, want 1 each", len(fakes[pd].reads), len(fakes[qd].reads))
	}
	if len(fakes[d0].reads)+len(fakes[d1].reads) != 0 {
		t.Fatal("failed disks were read")
	}
	surv := 0
	for idx := 0; idx < lay.DataDisks(); idx++ {
		d := lay.DataDisk(0, idx)
		if d != d0 && d != d1 {
			surv += len(fakes[d].reads)
		}
	}
	if surv != lay.DataDisks()-2 {
		t.Fatalf("surviving data reads = %d, want %d", surv, lay.DataDisks()-2)
	}
}

func TestArrayDoubleDegradedWriteCompletes(t *testing.T) {
	lay := raid6FakeLayout()
	eng, a, fakes := newFakeArray(t, lay)
	d0 := lay.DataDisk(0, 0)
	d1 := lay.DataDisk(0, 1)
	a.FailDisk(d0)
	a.FailDisk(d1)
	completions := 0
	// Write to the unit on the first failed disk: only parity can record it.
	a.Write(0, 0, 1, func(sim.Time) { completions++ })
	eng.Run()
	if completions != 1 {
		t.Fatalf("done fired %d times", completions)
	}
	pd, qd := lay.ParityDisk(0), lay.QDisk(0)
	if len(fakes[pd].writes) != 1 || len(fakes[qd].writes) != 1 {
		t.Fatalf("parity writes P=%d Q=%d", len(fakes[pd].writes), len(fakes[qd].writes))
	}
	if len(fakes[d0].writes)+len(fakes[d1].writes) != 0 {
		t.Fatal("failed disks were written")
	}
	if a.Stats().ReconstructWr != 1 {
		t.Fatalf("stats: %+v", a.Stats())
	}
}

func TestArraySequentialRepairs(t *testing.T) {
	lay := raid6FakeLayout()
	eng, a, _ := newFakeArray(t, lay)
	a.FailDisk(3)
	a.FailDisk(0)
	repl1 := &fakeDisk{eng: eng, pages: lay.DiskPages}
	if err := a.RepairDisk(repl1); err != nil {
		t.Fatal(err)
	}
	if a.Failed() != 0 {
		t.Fatalf("after first repair Failed() = %d, want 0", a.Failed())
	}
	repl2 := &fakeDisk{eng: eng, pages: lay.DiskPages}
	if err := a.RepairDisk(repl2); err != nil {
		t.Fatal(err)
	}
	if a.Degraded() {
		t.Fatal("still degraded after both repairs")
	}
}

// TestFailureMidRMWAbsorbsStaleWrites injects a failure between the read
// and write phases of an in-flight read-modify-write: the planned write to
// the just-failed member must be absorbed (no panic, no device touch) and
// the request must still complete.
func TestFailureMidRMWAbsorbsStaleWrites(t *testing.T) {
	eng, a, fakes := newFakeArray(t, raid5Layout())
	// A partial-stripe write triggers RMW: reads at t=0 finish at t=10, the
	// write phase starts then. Fail the data disk of stripe 0 at t=5.
	var doneAt sim.Time
	a.Write(0, 0, 4, func(tm sim.Time) { doneAt = tm })
	eng.At(5, func(now sim.Time) {
		if err := a.FailDisk(a.lay.DataDisk(0, 0)); err != nil {
			t.Errorf("FailDisk: %v", err)
		}
	})
	eng.Run()
	if doneAt == 0 {
		t.Fatal("RMW never completed after mid-op failure")
	}
	if a.Stats().StaleSubOps == 0 {
		t.Fatal("no stale sub-op recorded for the failed member's write")
	}
	if n := len(fakes[a.lay.DataDisk(0, 0)].writes); n != 0 {
		t.Fatalf("failed disk received %d writes", n)
	}
}
