package raid

import "fmt"

// Level enumerates the supported RAID levels.
type Level int

const (
	RAID0 Level = iota
	RAID1
	RAID5
	RAID6
)

// String returns the conventional level name.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID1:
		return "RAID1"
	case RAID5:
		return "RAID5"
	case RAID6:
		return "RAID6"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Loc addresses one page on one member disk.
type Loc struct {
	Disk int
	Page int // logical page number within the disk
}

// Layout maps the array's logical page space onto member disks.
//
// RAID5 uses the left-symmetric layout (Linux MD's default): the parity
// unit of stripe s lives on disk (disks-1 - s%disks) and data units fill
// the following disks in rotating order. RAID6 rotates P and Q together,
// with Q immediately after P.
type Layout struct {
	Level     Level
	Disks     int // member disk count
	UnitPages int // stripe unit ("chunk") size in pages
	DiskPages int // usable pages per member disk
}

// Validate reports whether the layout is consistent.
func (l Layout) Validate() error {
	min := map[Level]int{RAID0: 2, RAID1: 2, RAID5: 3, RAID6: 4}
	m, ok := min[l.Level]
	if !ok {
		return fmt.Errorf("raid: unknown level %d", int(l.Level))
	}
	switch {
	case l.Disks < m:
		return fmt.Errorf("raid: %v needs >= %d disks, got %d", l.Level, m, l.Disks)
	case l.UnitPages <= 0:
		return fmt.Errorf("raid: UnitPages %d must be positive", l.UnitPages)
	case l.DiskPages <= 0:
		return fmt.Errorf("raid: DiskPages %d must be positive", l.DiskPages)
	case l.DiskPages%l.UnitPages != 0:
		return fmt.Errorf("raid: DiskPages %d not a multiple of UnitPages %d", l.DiskPages, l.UnitPages)
	}
	return nil
}

// DataDisks is the number of data-bearing units per stripe.
func (l Layout) DataDisks() int {
	switch l.Level {
	case RAID0:
		return l.Disks
	case RAID1:
		return 1
	case RAID5:
		return l.Disks - 1
	case RAID6:
		return l.Disks - 2
	default:
		panic("raid: unknown level")
	}
}

// Stripes is the number of stripes on the array.
func (l Layout) Stripes() int { return l.DiskPages / l.UnitPages }

// LogicalPages is the host-visible capacity of the array in pages.
func (l Layout) LogicalPages() int { return l.Stripes() * l.UnitPages * l.DataDisks() }

// StripeOf returns the stripe index containing logical array page p.
func (l Layout) StripeOf(p int) int {
	return p / (l.UnitPages * l.DataDisks())
}

// ParityDisk returns the disk holding P for stripe s, or -1 for levels
// without parity.
func (l Layout) ParityDisk(s int) int {
	switch l.Level {
	case RAID5, RAID6:
		return l.Disks - 1 - s%l.Disks
	default:
		return -1
	}
}

// QDisk returns the disk holding Q for stripe s (RAID6 only, else -1).
func (l Layout) QDisk(s int) int {
	if l.Level != RAID6 {
		return -1
	}
	return (l.ParityDisk(s) + 1) % l.Disks
}

// DataDisk returns the disk holding data unit idx (0-based) of stripe s.
func (l Layout) DataDisk(s, idx int) int {
	switch l.Level {
	case RAID0:
		return idx
	case RAID1:
		return 0 // primary copy; mirrors replicate it
	case RAID5:
		return (l.ParityDisk(s) + 1 + idx) % l.Disks
	case RAID6:
		return (l.QDisk(s) + 1 + idx) % l.Disks
	default:
		panic("raid: unknown level")
	}
}

// DataIndex inverts DataDisk: it returns the data unit index stored on
// disk d in stripe s, or -1 when d holds parity in that stripe.
func (l Layout) DataIndex(s, d int) int {
	switch l.Level {
	case RAID0:
		return d
	case RAID1:
		if d == 0 {
			return 0
		}
		return -1
	case RAID5:
		pd := l.ParityDisk(s)
		if d == pd {
			return -1
		}
		return (d - pd - 1 + l.Disks) % l.Disks
	case RAID6:
		if d == l.ParityDisk(s) || d == l.QDisk(s) {
			return -1
		}
		qd := l.QDisk(s)
		return (d - qd - 1 + l.Disks) % l.Disks
	default:
		panic("raid: unknown level")
	}
}

// UnitPage returns the first disk page of stripe s's units.
func (l Layout) UnitPage(s int) int { return s * l.UnitPages }

// Map translates logical array page p to its primary location. For RAID1
// the primary is disk 0; mirrors are handled by the array. The offset
// within the unit is preserved. An out-of-range page is a caller error,
// returned rather than panicking: Map sits on the public request path.
func (l Layout) Map(p int) (Loc, error) {
	if p < 0 || p >= l.LogicalPages() {
		return Loc{}, fmt.Errorf("raid: logical page %d outside array of %d pages", p, l.LogicalPages())
	}
	unit := p / l.UnitPages // global data-unit index
	off := p % l.UnitPages
	s := unit / l.DataDisks()
	idx := unit % l.DataDisks()
	return Loc{Disk: l.DataDisk(s, idx), Page: l.UnitPage(s) + off}, nil
}

// Extent is a contiguous page run on one disk, tagged with the stripe and
// data-unit index it belongs to.
type Extent struct {
	Disk    int
	Page    int // first disk page
	Pages   int
	Stripe  int
	DataIdx int // data-unit index within the stripe
}

// SplitExtent decomposes a logical extent [page, page+pages) into per-disk
// extents, each confined to a single stripe unit. Runs are emitted in
// logical order. Malformed extents — non-positive length or any page
// outside the array — are caller errors, returned rather than panicking:
// SplitExtent sits on the public request path.
func (l Layout) SplitExtent(page, pages int) ([]Extent, error) {
	return l.SplitExtentAppend(nil, page, pages)
}

// SplitExtentAppend is SplitExtent appending into dst, for hot-path callers
// that reuse a scratch buffer across requests instead of allocating one per
// call. On error dst is returned unchanged.
func (l Layout) SplitExtentAppend(dst []Extent, page, pages int) ([]Extent, error) {
	if pages <= 0 {
		return dst, fmt.Errorf("raid: extent [%d,%d) has non-positive length", page, page+pages)
	}
	if page < 0 || page+pages > l.LogicalPages() {
		return dst, fmt.Errorf("raid: extent [%d,%d) outside array of %d pages", page, page+pages, l.LogicalPages())
	}
	out := dst
	p := page
	remain := pages
	for remain > 0 {
		loc, _ := l.Map(p) // range validated above: Map cannot fail
		unitOff := p % l.UnitPages
		run := l.UnitPages - unitOff
		if run > remain {
			run = remain
		}
		s := l.StripeOf(p)
		idx := (p / l.UnitPages) % l.DataDisks()
		out = append(out, Extent{Disk: loc.Disk, Page: loc.Page, Pages: run, Stripe: s, DataIdx: idx})
		p += run
		remain -= run
	}
	return out, nil
}
