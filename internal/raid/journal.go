package raid

import (
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

// IntentLog is the array's write-ahead dirty-stripe intent journal — the
// mechanism that closes the RAID write hole. Every RAID5/6 stripe write
// marks its stripe dirty *before* the RMW/reconstruct-write fan-out and
// clears the mark at the stripe's completion barrier, so a power cut
// between the data leg and the parity leg leaves the stripe's mark in the
// persisted log: restart knows exactly which stripes may be torn and
// resyncs only those.
//
// The mark itself is modeled as durable at the instant it is taken (NVRAM
// or a metadata write piggybacked on the fan-out): what the simulation
// measures is the recovery-scope difference the journal buys, not the
// marginal cost of the mark write. A nil *IntentLog is the disabled
// journal: the write path pays one nil check and the traces stay
// byte-identical to a journal-free build.
type IntentLog struct {
	// Journaled marks full journal semantics: mark/clear events are traced
	// and the dirty list is handed to recovery. A log with Journaled false
	// still records intents — crash runs need the ground truth to place
	// torn pages — but recovery must pretend it does not exist (the
	// journal-off window-of-vulnerability mode).
	//gcsvet:inert
	Journaled bool

	open          []*intent // in mark order; completed entries removed
	marks, clears int64
}

// intentLeg is one phase-2 write leg registered under an intent.
type intentLeg struct {
	op   SubOp
	done bool
}

// intent is one in-flight stripe write's journal entry. Concurrent writes
// to the same stripe each hold their own entry (a refcounted mark), so the
// stripe stays dirty until the last one clears.
type intent struct {
	stripe int
	issued bool // phase 2 has begun: legs may be on the flash
	done   int  // completed legs
	legs   []intentLeg
}

// Marks and Clears report the cumulative journal activity.
func (l *IntentLog) Marks() int64  { return l.marks }
func (l *IntentLog) Clears() int64 { return l.clears }

// Open reports how many intents are currently open (dirty stripe entries).
func (l *IntentLog) Open() int { return len(l.open) }

// mark opens a journal entry for stripe st ahead of its write fan-out.
//
// gcsvet: the intent journal is an opt-in crash-consistency feature
// (reached only behind a.Intents != nil), so its per-write bookkeeping
// is fenced off from hotalloc with //gcsvet:cold — the default config's
// hot path never gets here, which is what the bench gate measures.
//
//gcsvet:cold
func (l *IntentLog) mark(st int) *intent {
	it := &intent{stripe: st}
	l.open = append(l.open, it)
	l.marks++
	return it
}

// register records the phase-2 legs the entry covers (copied: the sub-op
// slice returns to the array's free list once issued).
//
// gcsvet: opt-in journal bookkeeping, cold for the same reason as mark.
//
//gcsvet:cold
func (l *IntentLog) register(it *intent, phase2 []SubOp) {
	if cap(it.legs) < len(phase2) {
		it.legs = make([]intentLeg, 0, len(phase2))
	}
	it.legs = it.legs[:0]
	for _, op := range phase2 {
		it.legs = append(it.legs, intentLeg{op: op})
	}
}

// clear retires the entry at the stripe's completion barrier.
func (l *IntentLog) clear(it *intent) {
	for i, o := range l.open {
		if o == it {
			l.open = append(l.open[:i], l.open[i+1:]...)
			break
		}
	}
	l.clears++
}

// StripeIntent is one open journal entry harvested at a power cut.
type StripeIntent struct {
	Stripe int
	// Issued marks entries whose phase-2 legs had begun: the stripe may be
	// physically torn. An unissued entry (cut during the read phase) left
	// the old stripe intact.
	Issued bool
	// Legs and LegsDone count the registered write legs and how many had
	// completed by the cut.
	Legs, LegsDone int
	// Pending are the legs that had NOT completed: their extents hold old
	// data (not yet started) or garbage (torn mid-program).
	Pending []SubOp
}

// OpenIntents snapshots the journal's open entries — the dirty-stripe list
// a restart replays. Entries appear in mark order. Nil journal → nil.
func (a *Array) OpenIntents() []StripeIntent {
	if a.Intents == nil {
		return nil
	}
	out := make([]StripeIntent, 0, len(a.Intents.open))
	for _, it := range a.Intents.open {
		si := StripeIntent{Stripe: it.stripe, Issued: it.issued, Legs: len(it.legs), LegsDone: it.done}
		for _, leg := range it.legs {
			if !leg.done {
				si.Pending = append(si.Pending, leg.op)
			}
		}
		out = append(out, si)
	}
	return out
}

// journalClear wraps a stripe-write completion callback with the journal
// retire, emitting the clear event under full journal semantics.
//
// gcsvet: opt-in journal path (a.Intents != nil), cold for hotalloc.
//
//gcsvet:cold
func (a *Array) journalClear(it *intent, done func(now sim.Time)) func(now sim.Time) {
	return func(t sim.Time) {
		a.Intents.clear(it)
		if a.Intents.Journaled && a.Trace.Enabled() {
			a.Trace.Emit(t, obs.Event{Kind: obs.KJournalClear, Dev: -1, Page: -1,
				Aux: int64(it.stripe)})
		}
		if done != nil {
			done(t)
		}
	}
}

// issuePhase2Journal is issuePhase2 with per-leg completion tracking, used
// only when the intent journal is armed: each leg's callback flips its done
// flag so a power cut can tell persisted legs from pending ones.
//
// gcsvet: opt-in journal path (a.Intents != nil), cold for hotalloc.
//
//gcsvet:cold
func (a *Array) issuePhase2Journal(t sim.Time, phase2 []SubOp, tok *Cancel, done func(now sim.Time), it *intent) {
	it.issued = true
	if len(phase2) == 0 {
		a.putSubOps(phase2)
		if done != nil {
			a.eng.At(t, done)
		}
		return
	}
	cb := barrier(len(phase2), done)
	for li, op := range phase2 {
		leg := &it.legs[li]
		a.issue(t, op, tok, func(tt sim.Time) {
			leg.done = true
			it.done++
			cb(tt)
		})
	}
	a.putSubOps(phase2)
}
