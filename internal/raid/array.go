package raid

import (
	"errors"
	"fmt"

	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

// ErrOverloaded is returned by Read/Write when admission control refuses
// the request: the array already has QueueLimit requests in flight. The
// caller sheds the request instead of queueing it into an ever-deeper
// backlog.
var ErrOverloaded = errors.New("raid: array overloaded")

// Cancel is a request-scoped cancellation token. The facade arms one per
// request when deadlines are enabled; sub-ops not yet issued when the
// token fires (an RMW write phase, a retry) are absorbed instead of
// touching the disks. A nil *Cancel is the never-cancelled token.
type Cancel struct{ canceled bool }

// Cancel marks the token cancelled. Nil-safe.
func (c *Cancel) Cancel() {
	if c != nil {
		c.canceled = true
	}
}

// Canceled reports whether the token has been cancelled. Nil-safe.
func (c *Cancel) Canceled() bool { return c != nil && c.canceled }

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Disk is the device interface the timed array drives. *ssd.Device
// implements it; tests substitute fixed-latency fakes. Read and Write
// return an error only for malformed page ranges — the array validates
// requests at its own boundary, so member errors are invariant violations.
type Disk interface {
	Read(now sim.Time, page, pages int, done func(now sim.Time)) error
	Write(now sim.Time, page, pages int, done func(now sim.Time)) error
	LogicalPages() int
	InGC(now sim.Time) bool
}

// must panics on an I/O error from a member disk: every sub-op range is
// derived from layout math over requests validated at the public boundary,
// so an error here is an internal invariant violation, not bad input.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// OpKind labels a sub-operation so routing policies (the GC-Steering
// redirector) can tell user data traffic from parity maintenance and
// recovery traffic.
type OpKind int

const (
	// OpDataRead reads user data.
	OpDataRead OpKind = iota
	// OpDataWrite writes user data.
	OpDataWrite
	// OpOldDataRead is the read-old-data half of a read-modify-write.
	OpOldDataRead
	// OpParityRead reads parity (RMW phase 1 or degraded reconstruction).
	OpParityRead
	// OpParityWrite writes parity. The paper requires parity to be updated
	// in its correct position even while the data write is steered away, so
	// routers must never redirect this kind.
	OpParityWrite
)

// String returns a short label for the kind.
func (k OpKind) String() string {
	switch k {
	case OpDataRead:
		return "data-read"
	case OpDataWrite:
		return "data-write"
	case OpOldDataRead:
		return "old-data-read"
	case OpParityRead:
		return "parity-read"
	case OpParityWrite:
		return "parity-write"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// SubOp is one disk-level operation produced by splitting a user request.
type SubOp struct {
	Disk   int
	Page   int // first page on the member disk
	Pages  int
	Kind   OpKind
	Stripe int
}

// RouteFunc lets a policy claim a sub-op. Returning true means the policy
// services the op itself and will invoke done when it completes; returning
// false sends the op to the member disk as usual.
type RouteFunc func(now sim.Time, op SubOp, done func(now sim.Time)) bool

// Faulty is implemented by disks that can surface latent sector errors
// (unrecoverable read errors). *ssd.Device implements it when a fault hook
// is installed; the array consults it on every user data read and recovers
// through parity while redundancy lasts.
type Faulty interface {
	ReadError(now sim.Time, page, pages int) bool
}

// Verifier is implemented by disks whose reads can be checksum-verified
// end to end: VerifyError reports silent corruption that a plain read
// would deliver without complaint. *ssd.Device implements it when a
// scrub-capable fault hook is installed.
type Verifier interface {
	VerifyError(now sim.Time, page, pages int) bool
}

// SlowDisk is implemented by disks that know they are currently fail-slow
// (inside an injected slowdown window). Together with InGC it is the
// hedged-read trigger.
type SlowDisk interface {
	Slow(now sim.Time) bool
}

// TransientFaulty is implemented by disks whose read attempts can fail
// transiently. Unlike Faulty's persistent latent errors, each attempt
// draws independently, so the array's bounded-retry path — not its parity
// reconstruction path — absorbs these.
type TransientFaulty interface {
	TransientReadError(now sim.Time, page, pages int) bool
}

// Stats counts array-level activity.
type Stats struct {
	UserReads       int64
	UserWrites      int64
	SubOps          int64
	DegradedReads   int64 // reconstruct-reads for data on a failed or quarantined disk
	QuarantineReads int64 // the subset of HedgedReads raced because of an open breaker
	FullStripes     int64 // writes served as full-stripe (no RMW read phase)
	RMWStripes      int64 // writes served read-modify-write
	ReconstructWr   int64 // degraded reconstruct-writes
	GCAvoidWrites   int64 // reconstruct-writes chosen to dodge a collecting disk
	ParityPages     int64 // parity pages written
	RoutedSubOps    int64 // sub-ops claimed by the Route hook
	SubOpsDuringGC  int64 // sub-ops addressed to a disk while it was in GC
	UREs            int64 // user reads that hit an unrecoverable read error
	URERepaired     int64 // UREs served by reconstruction from the survivors
	DataLossEvents  int64 // UREs/corruptions with no redundancy left to recover from
	StaleSubOps     int64 // sub-ops absorbed because their disk failed mid-op
	ChecksumErrors  int64 // reads whose end-to-end checksum verification failed
	ChecksumFixed   int64 // checksum failures served by reconstruction instead
	HedgedReads     int64 // reads raced against a parity reconstruct-read
	HedgeReconWins  int64 // hedged reads where the reconstruction finished first

	Rejected         int64 // user requests refused by admission control
	TransientErrors  int64 // read sub-op attempts that failed transiently
	Retries          int64 // retry attempts scheduled after a transient error
	RetriesExhausted int64 // read sub-ops that gave up after MaxRetries
	CanceledSubOps   int64 // sub-ops absorbed because their request's deadline passed
}

// Array is the timed RAID engine: it fans user requests out to member
// disks with correct RAID5/6 read-modify-write and degraded-mode behaviour
// and reports completion on the simulation clock. It moves no actual bytes
// (Store is the byte-accurate reference); it models who does I/O and when.
type Array struct {
	eng    *sim.Engine
	lay    Layout
	disks  []Disk
	failed []int

	// Route, when non-nil, is consulted for every sub-op before it is
	// issued to a member disk. The GC-Steering redirector installs itself
	// here.
	Route RouteFunc

	// GCAwareWrites switches partial-stripe writes whose old-data read
	// would land on a collecting disk from read-modify-write to
	// reconstruct-write (read the stripe's other data units from healthy
	// disks and re-encode parity). Together with the redirector this keeps
	// user traffic off collecting disks entirely. Baseline schemes (LGC,
	// GGC) leave it false.
	GCAwareWrites bool

	// VerifyReads enables end-to-end checksum verification on every user
	// data read: silent corruption (Verifier.VerifyError) is detected and
	// served from redundancy instead of being delivered, counted in
	// ChecksumErrors/ChecksumFixed. Off, corrupted reads pass silently.
	//gcsvet:inert
	VerifyReads bool

	// HedgedReads races a parity reconstruct-read against direct reads
	// whose home disk is mid-GC or fail-slow and takes whichever leg
	// finishes first — the read-side dual of GC-aware write steering. Both
	// legs consume channel time (the loser is not cancelled), trading
	// extra load for GC-phase tail latency. RAID5/6 only.
	HedgedReads bool

	// Trace, when non-nil, receives the per-disk sub-op fan-out and the
	// degraded-read / unrecoverable-read-error events.
	Trace *obs.Tracer

	// MaxRetries bounds transparent retries of read sub-ops that fail
	// transiently (TransientFaulty). Zero disables retries: a transient
	// error is simply delivered as a completed (slow) read.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubling on each
	// subsequent attempt. Zero with MaxRetries > 0 retries immediately.
	RetryBackoff sim.Time
	// QueueLimit caps concurrently in-flight user requests; Read/Write
	// return ErrOverloaded beyond it. Zero means unlimited.
	QueueLimit int
	// Quarantined, when non-nil, reports members the health monitor has
	// quarantined; the array treats them like collecting disks when
	// choosing write strategies and hedging reads.
	Quarantined func(now sim.Time, d int) bool

	mirrorNext int // round-robin cursor for RAID1 read balancing
	inflight   int // user requests admitted but not yet completed
	stats      Stats

	// caps caches each member's optional capability interfaces (Faulty,
	// Verifier, SlowDisk, TransientFaulty) so the per-sub-op fault checks
	// are a nil test instead of a type assertion. Rebound whenever the
	// disk set changes (RepairDisk).
	caps []diskCaps

	// Scratch buffers reused across requests. The engine is single-threaded
	// and every buffer below is fully consumed before the request's public
	// entry point returns (the Route hook never re-enters the array), so a
	// request in steady state allocates no slices. Only writeStripe's
	// phase-2 op list outlives its call — a closure holds it until phase 1
	// completes — so it comes from the subopFree free list and is returned
	// once issued.
	extScratch    []Extent
	itemScratch   []SubOp
	hedgeScratch  []hedge
	groupScratch  []stripeGroup
	phase1Scratch []SubOp
	coverScratch  [][2]int
	subopFree     [][]SubOp

	// Intents, when non-nil, is the write-ahead dirty-stripe intent
	// journal: every RAID5/6 stripe write marks its stripe before the
	// fan-out and clears it at the stripe barrier, closing the RAID write
	// hole (see journal.go). Nil keeps the write path allocation-free and
	// the traces byte-identical to a journal-free build.
	Intents *IntentLog
}

// diskCaps is one member's cached optional capabilities; nil fields mean
// the disk does not implement the corresponding interface.
type diskCaps struct {
	faulty    Faulty
	verifier  Verifier
	slow      SlowDisk
	transient TransientFaulty
}

// bindCaps re-derives the capability cache from the current disk set.
func (a *Array) bindCaps() {
	if a.caps == nil {
		a.caps = make([]diskCaps, len(a.disks))
	}
	for i, d := range a.disks {
		c := diskCaps{}
		c.faulty, _ = d.(Faulty)
		c.verifier, _ = d.(Verifier)
		c.slow, _ = d.(SlowDisk)
		c.transient, _ = d.(TransientFaulty)
		a.caps[i] = c
	}
}

// getSubOps takes a slice from the free list (or makes one); putSubOps
// returns it once its ops are issued.
func (a *Array) getSubOps() []SubOp {
	if n := len(a.subopFree); n > 0 {
		s := a.subopFree[n-1]
		a.subopFree = a.subopFree[:n-1]
		return s[:0]
	}
	//lint:allow hotalloc free-list miss: allocates only while the pool warms up, steady state reuses
	return make([]SubOp, 0, 8)
}

func (a *Array) putSubOps(s []SubOp) { a.subopFree = append(a.subopFree, s) }

// cover returns the per-data-unit covered-range scratch, every entry reset
// to the "not covered" sentinel {-1,-1}.
func (a *Array) cover() [][2]int {
	n := a.lay.DataDisks()
	if len(a.coverScratch) < n {
		a.coverScratch = make([][2]int, n)
	}
	c := a.coverScratch[:n]
	for i := range c {
		c[i] = [2]int{-1, -1}
	}
	return c
}

// NewArray builds an array over the given member disks.
func NewArray(eng *sim.Engine, lay Layout, disks []Disk) (*Array, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if len(disks) != lay.Disks {
		return nil, fmt.Errorf("raid: layout wants %d disks, got %d", lay.Disks, len(disks))
	}
	for i, d := range disks {
		if d.LogicalPages() < lay.DiskPages {
			return nil, fmt.Errorf("raid: disk %d has %d pages, layout needs %d",
				i, d.LogicalPages(), lay.DiskPages)
		}
	}
	a := &Array{eng: eng, lay: lay, disks: disks}
	a.bindCaps()
	return a, nil
}

// Layout returns the array layout.
func (a *Array) Layout() Layout { return a.lay }

// Disks returns the member disks (index = disk id).
func (a *Array) Disks() []Disk { return a.disks }

// Stats returns a snapshot of the counters.
func (a *Array) Stats() Stats { return a.stats }

// Failed returns the oldest failed disk id or -1 (the disk the
// reconstruction engine should rebuild first).
func (a *Array) Failed() int {
	if len(a.failed) == 0 {
		return -1
	}
	return a.failed[0]
}

// FailedDisks returns all failed disk ids.
func (a *Array) FailedDisks() []int { return append([]int(nil), a.failed...) }

// Degraded reports whether any member disk is failed.
func (a *Array) Degraded() bool { return len(a.failed) > 0 }

// maxFailures is the layout's fault tolerance.
func (a *Array) maxFailures() int {
	switch a.lay.Level {
	case RAID6:
		return 2
	case RAID1:
		return a.lay.Disks - 1
	case RAID5:
		return 1
	default:
		return 0
	}
}

// FailDisk marks member d failed. Subsequent reads reconstruct from the
// survivors; writes use reconstruct-write. RAID6 tolerates a second
// failure (the paper's §III-D second-failure scenario).
func (a *Array) FailDisk(d int) error {
	if d < 0 || d >= a.lay.Disks {
		return fmt.Errorf("raid: no disk %d", d)
	}
	if !a.alive(d) {
		return fmt.Errorf("raid: disk %d already failed", d)
	}
	if len(a.failed) >= a.maxFailures() {
		return fmt.Errorf("raid: %v cannot survive %d failures", a.lay.Level, len(a.failed)+1)
	}
	a.failed = append(a.failed, d)
	return nil
}

// RepairDisk installs a replacement for the oldest failed slot (after the
// reconstruction engine has rebuilt its contents). Passing nil keeps the
// existing Disk object (used when the failed device was logically replaced
// in place).
func (a *Array) RepairDisk(replacement Disk) error {
	if len(a.failed) == 0 {
		return fmt.Errorf("raid: no failed disk to repair")
	}
	if replacement != nil {
		if replacement.LogicalPages() < a.lay.DiskPages {
			return fmt.Errorf("raid: replacement too small")
		}
		a.disks[a.failed[0]] = replacement
		a.bindCaps()
	}
	a.failed = a.failed[1:]
	return nil
}

func (a *Array) alive(d int) bool {
	for _, f := range a.failed {
		if f == d {
			return false
		}
	}
	return true
}

// Alive reports whether member d is currently healthy (not failed).
func (a *Array) Alive(d int) bool { return a.alive(d) }

// SpareRedundancy is how many additional member losses the array can absorb
// right now: the layout's fault tolerance minus the failures already
// sustained. Zero means the survivors are the last copy of the data — the
// window in which one more loss (or an unrecoverable read error during
// rebuild) is data loss.
func (a *Array) SpareRedundancy() int { return a.maxFailures() - len(a.failed) }

// issue routes one sub-op to the member disk (or the Route hook).
func (a *Array) issue(now sim.Time, op SubOp, tok *Cancel, done func(now sim.Time)) {
	if tok.Canceled() {
		// The request's deadline passed while this op waited on an earlier
		// phase (an RMW write phase behind its reads, a backed-off retry).
		// It is absorbed exactly like a stale sub-op: completed immediately
		// without touching the disk, so the enclosing barrier still settles.
		a.stats.CanceledSubOps++
		if done != nil {
			a.eng.At(now, done)
		}
		return
	}
	if !a.alive(op.Disk) {
		// The disk failed after this op's plan was made (a failure injected
		// between the read and write phases of an in-flight RMW). The write
		// to the failed member is simply skipped — its data is covered by
		// the stripe's parity and regenerated by the rebuild — and the op
		// completes without touching the dead device.
		a.stats.StaleSubOps++
		if done != nil {
			a.eng.At(now, done)
		}
		return
	}
	a.stats.SubOps++
	if a.disks[op.Disk].InGC(now) {
		a.stats.SubOpsDuringGC++
	}
	if a.Trace.Enabled() {
		a.Trace.Emit(now, obs.Event{Kind: obs.KSubOp, Dev: int32(op.Disk),
			Page: int64(op.Page), Pages: int32(op.Pages),
			Aux: int64(op.Kind), Aux2: int64(op.Stripe)})
	}
	if a.Route != nil && a.Route(now, op, done) {
		a.stats.RoutedSubOps++
		return
	}
	if op.Kind == OpDataWrite || op.Kind == OpParityWrite {
		must(a.disks[op.Disk].Write(now, op.Page, op.Pages, done))
	} else {
		a.issueRead(now, op, tok, done, 0)
	}
}

// issueRead sends one read sub-op to its member, retrying transient
// failures with exponential backoff up to MaxRetries. The failed attempt
// still occupies the channel — a real drive burns the bus time before
// reporting the timeout — so the retry is scheduled from the attempt's
// completion instant. With no transient fault (the common case) this is
// exactly the plain read issue: one disk call, no extra events.
func (a *Array) issueRead(now sim.Time, op SubOp, tok *Cancel, done func(now sim.Time), attempt int) {
	td := a.caps[op.Disk].transient
	if td == nil || !td.TransientReadError(now, op.Page, op.Pages) {
		must(a.disks[op.Disk].Read(now, op.Page, op.Pages, done))
		return
	}
	a.stats.TransientErrors++
	//lint:allow hotalloc retry closure exists only after an injected transient fault fired, an opt-in fault-model feature
	cb := func(t sim.Time) {
		if attempt >= a.MaxRetries || tok.Canceled() {
			// Out of budget (or the request no longer cares): deliver the
			// attempt as a completed, slow read. Persistent-error recovery
			// (the URE path) was already consulted before the fan-out.
			if attempt >= a.MaxRetries {
				a.stats.RetriesExhausted++
				if a.Trace.Enabled() {
					a.Trace.Emit(t, obs.Event{Kind: obs.KRetryExhausted, Dev: int32(op.Disk),
						Page: int64(op.Page), Pages: int32(op.Pages), Aux: int64(attempt + 1)})
				}
			}
			if done != nil {
				done(t)
			}
			return
		}
		backoff := a.RetryBackoff << attempt
		a.stats.Retries++
		if a.Trace.Enabled() {
			a.Trace.Emit(t, obs.Event{Kind: obs.KRetry, Dev: int32(op.Disk),
				Page: int64(op.Page), Pages: int32(op.Pages),
				Aux: int64(attempt + 1), Aux2: int64(backoff)})
		}
		//lint:allow hotalloc backoff re-issue closure, same opt-in transient-fault path as the retry closure above
		a.eng.At(t+backoff, func(t2 sim.Time) {
			if tok.Canceled() {
				a.stats.CanceledSubOps++
				if done != nil {
					done(t2)
				}
				return
			}
			if !a.alive(op.Disk) {
				a.stats.StaleSubOps++
				if done != nil {
					done(t2)
				}
				return
			}
			a.issueRead(t2, op, tok, done, attempt+1)
		})
	}
	// The failed attempt needs a completion event to drive the retry even
	// when the caller passed no done callback.
	must(a.disks[op.Disk].Read(now, op.Page, op.Pages, cb))
}

// barrier returns a completion callback that fires done after n calls,
// passing the latest completion time. With done == nil it returns nil.
func barrier(n int, done func(now sim.Time)) func(now sim.Time) {
	if done == nil {
		return nil
	}
	remain := n
	//lint:allow hotalloc sanctioned one-closure-per-request fan-in barrier (PR 7); the free-list and scratch design budgets exactly this
	return func(t sim.Time) {
		remain--
		if remain == 0 {
			done(t)
		}
	}
}

// readError consults the member's fault hook (if any) for a latent sector
// error on [page, page+pages).
func (a *Array) readError(now sim.Time, d, page, pages int) bool {
	f := a.caps[d].faulty
	return f != nil && f.ReadError(now, page, pages)
}

// verifyError consults the member's checksum verification (if any) for
// silent corruption on [page, page+pages). Only meaningful when
// VerifyReads is enabled.
func (a *Array) verifyError(now sim.Time, d, page, pages int) bool {
	v := a.caps[d].verifier
	return v != nil && v.VerifyError(now, page, pages)
}

// quarantined consults the health monitor's signal, if wired.
func (a *Array) quarantined(now sim.Time, d int) bool {
	return a.Quarantined != nil && a.Quarantined(now, d)
}

// busyDisk reports whether alive member d is collecting or quarantined —
// the per-disk busy signal the GC-aware write strategy weighs.
func (a *Array) busyDisk(now sim.Time, d int) bool {
	return a.alive(d) && (a.disks[d].InGC(now) || a.quarantined(now, d))
}

// hedgeReason reports why extent e's home disk deserves a hedged read:
// 1 when the disk is mid-GC, 2 when it is fail-slow, 3 when the health
// monitor has quarantined it, 0 for no hedge.
func (a *Array) hedgeReason(now sim.Time, e Extent) int64 {
	if a.lay.Level != RAID5 && a.lay.Level != RAID6 {
		return 0
	}
	if a.disks[e.Disk].InGC(now) {
		return 1
	}
	if sd := a.caps[e.Disk].slow; sd != nil && sd.Slow(now) {
		return 2
	}
	if a.quarantined(now, e.Disk) {
		return 3
	}
	return 0
}

// reconstructItems returns the sub-ops that regenerate extent e without
// reading it from disk e.Disk: the stripe's surviving data units plus
// enough parity at the same in-unit offsets. With one unit unavailable, P
// (or Q when P is also gone) suffices; with two (RAID6 double failure, or
// a URE in degraded mode), both P and Q are needed. ok is false when the
// surviving redundancy cannot cover the losses — reading e is data loss.
func (a *Array) reconstructItems(e Extent) (items []SubOp, ok bool) {
	return a.appendReconstruct(nil, e)
}

// appendReconstruct is reconstructItems appending into dst; when ok is
// false the caller must discard the appended ops (truncate back to the
// pre-call length).
func (a *Array) appendReconstruct(dst []SubOp, e Extent) (items []SubOp, ok bool) {
	items = dst
	unitOff := e.Page - a.lay.UnitPage(e.Stripe)
	missingData := 0
	for idx := 0; idx < a.lay.DataDisks(); idx++ {
		d := a.lay.DataDisk(e.Stripe, idx)
		if d == e.Disk {
			continue
		}
		if !a.alive(d) {
			missingData++
			continue
		}
		items = append(items, SubOp{Disk: d, Page: a.lay.UnitPage(e.Stripe) + unitOff, Pages: e.Pages, Kind: OpDataRead, Stripe: e.Stripe})
	}
	parityNeeded := 1 + missingData
	if pd := a.lay.ParityDisk(e.Stripe); pd >= 0 && a.alive(pd) && parityNeeded > 0 {
		items = append(items, SubOp{Disk: pd, Page: a.lay.UnitPage(e.Stripe) + unitOff, Pages: e.Pages, Kind: OpParityRead, Stripe: e.Stripe})
		parityNeeded--
	}
	if qd := a.lay.QDisk(e.Stripe); qd >= 0 && a.alive(qd) && parityNeeded > 0 {
		items = append(items, SubOp{Disk: qd, Page: a.lay.UnitPage(e.Stripe) + unitOff, Pages: e.Pages, Kind: OpParityRead, Stripe: e.Stripe})
		parityNeeded--
	}
	return items, parityNeeded <= 0
}

// hedge is one extent's read raced two ways: the direct sub-op against a
// parity reconstruction from the stripe's peers.
type hedge struct {
	direct SubOp
	recon  []SubOp
}

// admitCheck applies queue-depth admission control, claiming an in-flight
// slot for tracked requests. It returns ErrOverloaded when the array is
// full. Requests without a completion callback are not tracked — nothing
// would ever release their slot. The slot is returned by the callback
// releaseBarrier builds for the same request.
func (a *Array) admitCheck(tracked bool) error {
	if a.QueueLimit > 0 && a.inflight >= a.QueueLimit {
		a.stats.Rejected++
		return ErrOverloaded
	}
	if tracked {
		a.inflight++
	}
	return nil
}

// releaseBarrier is the request-level completion barrier: after n calls it
// returns the admission slot claimed by admitCheck and fires done. Folding
// the release into the barrier closure costs one allocation per request
// where a separate admit wrapper plus barrier used to cost two. With
// done == nil it returns nil (untracked request, no slot to return).
func (a *Array) releaseBarrier(n int, done func(now sim.Time)) func(now sim.Time) {
	if done == nil {
		return nil
	}
	remain := n
	//lint:allow hotalloc sanctioned request-completion barrier: one allocation per request, folded with the admission release (PR 7)
	return func(t sim.Time) {
		remain--
		if remain != 0 {
			return
		}
		a.inflight--
		done(t)
	}
}

// Inflight returns how many admitted user requests have not yet completed.
func (a *Array) Inflight() int { return a.inflight }

// UnderPressure reports whether the admission queue is at least 3/4 full —
// the signal for shedding background work (hot-read migration, scrub
// pacing) before user I/O has to be rejected. Always false without a
// QueueLimit.
func (a *Array) UnderPressure() bool {
	return a.QueueLimit > 0 && a.inflight*4 >= a.QueueLimit*3
}

// Read services a user read of pages logical pages starting at page. done,
// if non-nil, fires when the last byte is available. A malformed range is
// returned as an error; nothing is issued.
//
// Read is a gcsvet hot-path root: it runs once per request, and hotalloc
// holds it and everything it reaches allocation-free.
//
//gcsvet:hot
func (a *Array) Read(now sim.Time, page, pages int, done func(now sim.Time)) error {
	return a.ReadCancelable(now, page, pages, nil, done)
}

// ReadCancelable is Read with a cancellation token: sub-ops not yet issued
// when tok fires (backed-off retries) are absorbed. It returns
// ErrOverloaded when admission control refuses the request.
func (a *Array) ReadCancelable(now sim.Time, page, pages int, tok *Cancel, done func(now sim.Time)) error {
	exts, err := a.lay.SplitExtentAppend(a.extScratch[:0], page, pages)
	if err != nil {
		return err
	}
	a.extScratch = exts
	if err := a.admitCheck(done != nil); err != nil {
		return err
	}
	a.stats.UserReads++
	// Pre-count sub-ops so a single barrier covers the whole request. The
	// item and hedge lists are per-array scratch: both are fully issued
	// before this call returns.
	items := a.itemScratch[:0]
	hedges := a.hedgeScratch[:0]
	for _, e := range exts {
		switch {
		case a.lay.Level == RAID1:
			d := a.pickMirror(now)
			if a.readError(now, d, e.Page, e.Pages) {
				a.stats.UREs++
				alt, ok := a.pickMirrorWithout(now, d, e.Page, e.Pages)
				if a.Trace.Enabled() {
					a.Trace.Emit(now, obs.Event{Kind: obs.KURE, Dev: int32(d),
						Page: int64(e.Page), Pages: int32(e.Pages), Aux: boolInt(ok)})
				}
				if ok {
					a.stats.URERepaired++
					d = alt
				} else {
					a.stats.DataLossEvents++
				}
			} else if a.VerifyReads && a.verifyError(now, d, e.Page, e.Pages) {
				// Silent corruption on the chosen mirror: fall over to a
				// clean copy, exactly as the URE path does.
				a.stats.ChecksumErrors++
				alt, ok := a.pickMirrorWithout(now, d, e.Page, e.Pages)
				if a.Trace.Enabled() {
					a.Trace.Emit(now, obs.Event{Kind: obs.KChecksumError, Dev: int32(d),
						Page: int64(e.Page), Pages: int32(e.Pages), Aux: boolInt(ok)})
				}
				if ok {
					a.stats.ChecksumFixed++
					d = alt
				} else {
					a.stats.DataLossEvents++
				}
			}
			items = append(items, SubOp{Disk: d, Page: e.Page, Pages: e.Pages, Kind: OpDataRead, Stripe: e.Stripe})
		case a.alive(e.Disk):
			if a.readError(now, e.Disk, e.Page, e.Pages) {
				// Latent sector error: reconstruct the extent from the
				// stripe's peers when redundancy allows; otherwise record
				// data loss and let the read occupy the channel anyway (a
				// real drive burns the retry time before giving up).
				a.stats.UREs++
				mark := len(items)
				var ok bool
				items, ok = a.appendReconstruct(items, e)
				if a.Trace.Enabled() {
					a.Trace.Emit(now, obs.Event{Kind: obs.KURE, Dev: int32(e.Disk),
						Page: int64(e.Page), Pages: int32(e.Pages), Aux: boolInt(ok)})
				}
				if ok {
					a.stats.URERepaired++
					a.stats.DegradedReads++
					continue
				}
				items = items[:mark]
				a.stats.DataLossEvents++
			} else if a.VerifyReads && a.verifyError(now, e.Disk, e.Page, e.Pages) {
				// The read itself would succeed but deliver corrupt data:
				// the end-to-end checksum catches it, and the extent is
				// served from redundancy instead.
				a.stats.ChecksumErrors++
				mark := len(items)
				var ok bool
				items, ok = a.appendReconstruct(items, e)
				if a.Trace.Enabled() {
					a.Trace.Emit(now, obs.Event{Kind: obs.KChecksumError, Dev: int32(e.Disk),
						Page: int64(e.Page), Pages: int32(e.Pages), Aux: boolInt(ok)})
				}
				if ok {
					a.stats.ChecksumFixed++
					a.stats.DegradedReads++
					continue
				}
				items = items[:mark]
				a.stats.DataLossEvents++
			}
			if a.quarantined(now, e.Disk) {
				// An open breaker means the member is suspect, not gone: race
				// the direct read against a parity reconstruction from the
				// stripe's peers and settle on whichever finishes first. A
				// pure reconstruct-read would amplify every quarantined read
				// into N-2 data reads plus parity on the surviving members,
				// and under pressure that fan-in is often slower than even
				// the fail-slow member — the race takes the minimum. Parity
				// is updated in place even for steered writes, so the
				// reconstruction is always current. Falls through to a plain
				// direct read when the surviving redundancy cannot cover the
				// extent.
				if rec, ok := a.reconstructItems(e); ok && len(rec) > 0 {
					a.stats.HedgedReads++
					a.stats.QuarantineReads++
					if a.Trace.Enabled() {
						a.Trace.Emit(now, obs.Event{Kind: obs.KHedgedRead, Dev: int32(e.Disk),
							Page: int64(e.Page), Pages: int32(e.Pages), Aux: 3})
					}
					hedges = append(hedges, hedge{
						direct: SubOp{Disk: e.Disk, Page: e.Page, Pages: e.Pages, Kind: OpDataRead, Stripe: e.Stripe},
						recon:  rec,
					})
					continue
				}
			}
			if a.HedgedReads {
				if reason := a.hedgeReason(now, e); reason != 0 {
					if rec, ok := a.reconstructItems(e); ok && len(rec) > 0 {
						a.stats.HedgedReads++
						if a.Trace.Enabled() {
							a.Trace.Emit(now, obs.Event{Kind: obs.KHedgedRead, Dev: int32(e.Disk),
								Page: int64(e.Page), Pages: int32(e.Pages), Aux: reason})
						}
						hedges = append(hedges, hedge{
							direct: SubOp{Disk: e.Disk, Page: e.Page, Pages: e.Pages, Kind: OpDataRead, Stripe: e.Stripe},
							recon:  rec,
						})
						continue
					}
				}
			}
			items = append(items, SubOp{Disk: e.Disk, Page: e.Page, Pages: e.Pages, Kind: OpDataRead, Stripe: e.Stripe})
		default:
			// Degraded: the home disk is failed, so the extent exists only
			// through redundancy. FailDisk never admits more failures than
			// the layout tolerates, so reconstruction always succeeds here.
			a.stats.DegradedReads++
			if a.Trace.Enabled() {
				a.Trace.Emit(now, obs.Event{Kind: obs.KDegradedRead, Dev: int32(e.Disk),
					Page: int64(e.Page), Pages: int32(e.Pages)})
			}
			items, _ = a.appendReconstruct(items, e)
		}
	}
	cb := a.releaseBarrier(len(items)+len(hedges), done)
	for _, op := range items {
		a.issue(now, op, tok, cb)
	}
	for _, h := range hedges {
		a.issueHedge(now, h, tok, cb)
	}
	a.itemScratch, a.hedgeScratch = items[:0], hedges[:0]
	return nil
}

// issueHedge races h.direct against the parity reconstruction h.recon and
// reports completion when the first leg finishes. The losing leg is not
// cancelled — as on real hardware both requests are already queued and
// still consume channel time. The direct leg is issued first, so a tie
// deterministically resolves to it (the engine runs same-instant events in
// scheduling order).
func (a *Array) issueHedge(now sim.Time, h hedge, tok *Cancel, done func(now sim.Time)) {
	settled := false
	//lint:allow hotalloc hedge settle factory runs only when HedgedReads is enabled and a member is in GC
	settle := func(reconWon bool) func(t sim.Time) {
		//lint:allow hotalloc per-leg settle closure, same opt-in hedged-read path
		return func(t sim.Time) {
			if settled {
				return
			}
			settled = true
			if reconWon {
				a.stats.HedgeReconWins++
			}
			if a.Trace.Enabled() {
				a.Trace.Emit(t, obs.Event{Kind: obs.KHedgeWin, Dev: int32(h.direct.Disk),
					Page: int64(h.direct.Page), Pages: int32(h.direct.Pages),
					Aux: boolInt(reconWon), Aux2: int64(t - now)})
			}
			if done != nil {
				done(t)
			}
		}
	}
	a.issue(now, h.direct, tok, settle(false))
	reconDone := barrier(len(h.recon), settle(true))
	for _, op := range h.recon {
		a.issue(now, op, tok, reconDone)
	}
}

// pickMirrorWithout returns an alive mirror other than skip whose copy of
// [page, page+pages) reads cleanly, for RAID1 URE and corruption recovery.
// With VerifyReads enabled a silently-corrupt copy is rejected too.
func (a *Array) pickMirrorWithout(now sim.Time, skip, page, pages int) (int, bool) {
	for d := 0; d < a.lay.Disks; d++ {
		if d == skip || !a.alive(d) {
			continue
		}
		if a.readError(now, d, page, pages) {
			continue
		}
		if a.VerifyReads && a.verifyError(now, d, page, pages) {
			continue
		}
		return d, true
	}
	return -1, false
}

// pickMirror returns the next alive mirror for RAID1 read balancing,
// preferring members the health monitor has not quarantined (with every
// mirror quarantined, any alive one serves).
func (a *Array) pickMirror(now sim.Time) int {
	for i := 0; i < a.lay.Disks; i++ {
		d := (a.mirrorNext + i) % a.lay.Disks
		if a.alive(d) && !a.quarantined(now, d) {
			a.mirrorNext = (d + 1) % a.lay.Disks
			return d
		}
	}
	for i := 0; i < a.lay.Disks; i++ {
		d := (a.mirrorNext + i) % a.lay.Disks
		if a.alive(d) {
			a.mirrorNext = (d + 1) % a.lay.Disks
			return d
		}
	}
	panic("raid: no surviving mirror")
}

// stripeGroup is the portion of a write touching one stripe. exts is a
// subslice of the request's extent list, valid only until the enclosing
// WriteCancelable returns (writeStripe consumes it synchronously).
type stripeGroup struct {
	stripe int
	exts   []Extent
}

// Write services a user write. RAID5/6 stripes touched in full are written
// without a read phase; partial stripes use two-phase read-modify-write
// (or reconstruct-write when degraded), with phase 2 starting only after
// every phase-1 read has completed — matching the dependency structure of
// a real RAID controller.
//
// Write is a gcsvet hot-path root: it runs once per request, and hotalloc
// holds it and everything it reaches allocation-free.
//
//gcsvet:hot
func (a *Array) Write(now sim.Time, page, pages int, done func(now sim.Time)) error {
	return a.WriteCancelable(now, page, pages, nil, done)
}

// WriteCancelable is Write with a cancellation token: sub-ops not yet
// issued when tok fires (the RMW write phase behind its reads) are
// absorbed the way stale sub-ops are. It returns ErrOverloaded when
// admission control refuses the request.
func (a *Array) WriteCancelable(now sim.Time, page, pages int, tok *Cancel, done func(now sim.Time)) error {
	exts, err := a.lay.SplitExtentAppend(a.extScratch[:0], page, pages)
	if err != nil {
		return err
	}
	a.extScratch = exts
	if err := a.admitCheck(done != nil); err != nil {
		return err
	}
	a.stats.UserWrites++

	switch a.lay.Level {
	case RAID0:
		cb := a.releaseBarrier(len(exts), done)
		for _, e := range exts {
			a.issue(now, SubOp{Disk: e.Disk, Page: e.Page, Pages: e.Pages, Kind: OpDataWrite, Stripe: e.Stripe}, tok, cb)
		}
		return nil
	case RAID1:
		alive := 0
		for d := 0; d < a.lay.Disks; d++ {
			if a.alive(d) {
				alive++
			}
		}
		cb := a.releaseBarrier(len(exts)*alive, done)
		for _, e := range exts {
			for d := 0; d < a.lay.Disks; d++ {
				if a.alive(d) {
					a.issue(now, SubOp{Disk: d, Page: e.Page, Pages: e.Pages, Kind: OpDataWrite, Stripe: e.Stripe}, tok, cb)
				}
			}
		}
		return nil
	}

	// RAID5/6: group extents by stripe. Equal-stripe extents are adjacent
	// in SplitExtent's logical-order output, so each group is a subslice of
	// exts — no per-group allocation.
	groups := a.groupScratch[:0]
	start := 0
	for i := 1; i <= len(exts); i++ {
		if i == len(exts) || exts[i].Stripe != exts[start].Stripe {
			groups = append(groups, stripeGroup{stripe: exts[start].Stripe, exts: exts[start:i]})
			start = i
		}
	}
	cb := a.releaseBarrier(len(groups), done)
	for _, g := range groups {
		a.writeStripe(now, g, tok, cb)
	}
	a.groupScratch = groups[:0]
	return nil
}

// writeStripe performs the write of one stripe's worth of extents.
func (a *Array) writeStripe(now sim.Time, g stripeGroup, tok *Cancel, done func(now sim.Time)) {
	lay := a.lay
	st := g.stripe
	base := lay.UnitPage(st)

	// Write-ahead intent: the stripe is marked dirty before any leg is
	// issued, so a power cut at any later instant finds the mark in the
	// journal. The write legs are registered once the phase-2 list exists.
	var it *intent
	if a.Intents != nil {
		it = a.Intents.mark(st)
		done = a.journalClear(it, done)
	}

	// Union of touched in-unit offsets (contiguous for a contiguous write).
	lo, hi := lay.UnitPages, 0
	covered := 0
	for _, e := range g.exts {
		off := e.Page - base
		if off < lo {
			lo = off
		}
		if off+e.Pages > hi {
			hi = off + e.Pages
		}
		covered += e.Pages
	}
	parityPages := hi - lo
	fullStripe := covered == lay.DataDisks()*lay.UnitPages

	pd := lay.ParityDisk(st)
	qd := lay.QDisk(st)

	// Does any failed disk hold one of this stripe's data units?
	failedData := false
	for _, f := range a.failed {
		if lay.DataIndex(st, f) >= 0 {
			failedData = true
			break
		}
	}

	// Phase 2 (writes) shared by every path below. The list may be retained
	// by the phase-1 barrier until the reads complete, so it comes from the
	// free list rather than the per-call scratch.
	phase2 := a.getSubOps()
	for _, e := range g.exts {
		if a.alive(e.Disk) {
			phase2 = append(phase2, SubOp{Disk: e.Disk, Page: e.Page, Pages: e.Pages, Kind: OpDataWrite, Stripe: st})
		}
		// A write whose unit lives on the failed disk exists only through
		// parity — no data sub-op.
	}
	if pd >= 0 && a.alive(pd) {
		phase2 = append(phase2, SubOp{Disk: pd, Page: base + lo, Pages: parityPages, Kind: OpParityWrite, Stripe: st})
		a.stats.ParityPages += int64(parityPages)
	}
	if qd >= 0 && a.alive(qd) {
		phase2 = append(phase2, SubOp{Disk: qd, Page: base + lo, Pages: parityPages, Kind: OpParityWrite, Stripe: st})
		a.stats.ParityPages += int64(parityPages)
	}

	// Phase 1 (reads): per-array scratch, fully issued before this call
	// returns.
	phase1 := a.phase1Scratch[:0]
	switch {
	case fullStripe:
		a.stats.FullStripes++
		// No reads needed: parity is computed from the new data alone.
	case failedData:
		// Reconstruct-write: the failed unit's old contents are needed for
		// parity, so read every surviving data unit in full over [lo,hi).
		a.stats.ReconstructWr++
		for idx := 0; idx < lay.DataDisks(); idx++ {
			d := lay.DataDisk(st, idx)
			if !a.alive(d) {
				continue
			}
			phase1 = append(phase1, SubOp{Disk: d, Page: base + lo, Pages: parityPages, Kind: OpOldDataRead, Stripe: st})
		}
		if pd >= 0 && a.alive(pd) {
			phase1 = append(phase1, SubOp{Disk: pd, Page: base + lo, Pages: parityPages, Kind: OpParityRead, Stripe: st})
		}
		if qd >= 0 && a.alive(qd) {
			phase1 = append(phase1, SubOp{Disk: qd, Page: base + lo, Pages: parityPages, Kind: OpParityRead, Stripe: st})
		}
	case a.gcAvoidWanted(now, g):
		// GC-aware reconstruct-write: the old-data read of classic RMW
		// would queue behind garbage collection, so parity is re-encoded
		// from the stripe's other data units instead — every read lands on
		// a healthy disk. Units partially covered by the write still need
		// their uncovered sub-ranges read.
		a.stats.GCAvoidWrites++
		covered := a.cover()
		for _, e := range g.exts {
			covered[e.DataIdx] = [2]int{e.Page - base, e.Page - base + e.Pages}
		}
		for idx := 0; idx < lay.DataDisks(); idx++ {
			d := lay.DataDisk(st, idx)
			if !a.alive(d) {
				continue
			}
			c := covered[idx]
			if c[0] < 0 {
				phase1 = append(phase1, SubOp{Disk: d, Page: base + lo, Pages: parityPages, Kind: OpOldDataRead, Stripe: st})
				continue
			}
			if c[0] > lo {
				phase1 = append(phase1, SubOp{Disk: d, Page: base + lo, Pages: c[0] - lo, Kind: OpOldDataRead, Stripe: st})
			}
			if c[1] < hi {
				phase1 = append(phase1, SubOp{Disk: d, Page: base + c[1], Pages: hi - c[1], Kind: OpOldDataRead, Stripe: st})
			}
		}
	default:
		// Classic RMW: old data of the written extents + old parity.
		a.stats.RMWStripes++
		for _, e := range g.exts {
			phase1 = append(phase1, SubOp{Disk: e.Disk, Page: e.Page, Pages: e.Pages, Kind: OpOldDataRead, Stripe: st})
		}
		if pd >= 0 && a.alive(pd) {
			phase1 = append(phase1, SubOp{Disk: pd, Page: base + lo, Pages: parityPages, Kind: OpParityRead, Stripe: st})
		}
		if qd >= 0 && a.alive(qd) {
			phase1 = append(phase1, SubOp{Disk: qd, Page: base + lo, Pages: parityPages, Kind: OpParityRead, Stripe: st})
		}
	}

	if it != nil {
		a.Intents.register(it, phase2)
		if a.Intents.Journaled && a.Trace.Enabled() {
			a.Trace.Emit(now, obs.Event{Kind: obs.KJournalMark, Dev: -1, Page: -1,
				Aux: int64(st), Aux2: int64(len(phase2))})
		}
		if len(phase1) == 0 {
			a.issuePhase2Journal(now, phase2, tok, done, it)
			return
		}
		//lint:allow hotalloc phase-2 kick closure on the opt-in journal path (a.Intents != nil)
		cb := barrier(len(phase1), func(t sim.Time) { a.issuePhase2Journal(t, phase2, tok, done, it) })
		for _, op := range phase1 {
			a.issue(now, op, tok, cb)
		}
		a.phase1Scratch = phase1[:0]
		return
	}

	if len(phase1) == 0 {
		// No read phase (full-stripe write, or nothing readable): the write
		// phase starts now, with no deferred closure needed.
		a.issuePhase2(now, phase2, tok, done)
		return
	}
	//lint:allow hotalloc sanctioned phase-2 kick: one deferred closure per partial-stripe write (PR 7)
	cb := barrier(len(phase1), func(t sim.Time) { a.issuePhase2(t, phase2, tok, done) })
	for _, op := range phase1 {
		a.issue(now, op, tok, cb)
	}
	a.phase1Scratch = phase1[:0]
}

// issuePhase2 issues the write phase of one stripe write and returns the
// sub-op list to the free list. With an empty list — every target (data
// and parity) is on the failed disk — the write completes trivially (data
// is lost only if redundancy is already gone, which FailDisk prevents).
func (a *Array) issuePhase2(t sim.Time, phase2 []SubOp, tok *Cancel, done func(now sim.Time)) {
	if len(phase2) == 0 {
		a.putSubOps(phase2)
		if done != nil {
			a.eng.At(t, done)
		}
		return
	}
	cb := barrier(len(phase2), done)
	for _, op := range phase2 {
		a.issue(t, op, tok, cb)
	}
	a.putSubOps(phase2)
}

// gcAvoidWanted reports whether a partial-stripe write should use the
// GC-aware reconstruct-write path. It compares how many phase-1 read pages
// each strategy would send to currently-busy disks — collecting or
// health-quarantined — and switches to reconstruct-write only when that
// strictly reduces the exposure.
func (a *Array) gcAvoidWanted(now sim.Time, g stripeGroup) bool {
	if !a.GCAwareWrites {
		return false
	}
	if a.lay.Level != RAID5 && a.lay.Level != RAID6 {
		return false
	}
	lay := a.lay
	st := g.stripe
	base := lay.UnitPage(st)

	lo, hi := lay.UnitPages, 0
	covered := a.cover()
	for _, e := range g.exts {
		off := e.Page - base
		if off < lo {
			lo = off
		}
		if off+e.Pages > hi {
			hi = off + e.Pages
		}
		covered[e.DataIdx] = [2]int{off, off + e.Pages}
	}

	// RMW phase 1: old data of written units + parity reads.
	rmw := 0
	for _, e := range g.exts {
		if a.busyDisk(now, e.Disk) {
			rmw += e.Pages
		}
	}
	if pd := lay.ParityDisk(st); pd >= 0 && a.busyDisk(now, pd) {
		rmw += hi - lo
	}
	if qd := lay.QDisk(st); qd >= 0 && a.busyDisk(now, qd) {
		rmw += hi - lo
	}

	// Reconstruct-write phase 1: the other units (and written units'
	// uncovered sub-ranges), no parity reads.
	recon := 0
	for idx := 0; idx < lay.DataDisks(); idx++ {
		d := lay.DataDisk(st, idx)
		if !a.busyDisk(now, d) {
			continue
		}
		if c := covered[idx]; c[0] >= 0 {
			recon += (c[0] - lo) + (hi - c[1])
		} else {
			recon += hi - lo
		}
	}
	return recon < rmw
}
