package raid

import (
	"bytes"
	"fmt"
	"hash/crc32"
)

// crcTab is the Castagnoli polynomial used for the store's per-page
// end-to-end checksums (the same choice as btrfs and iSCSI).
var crcTab = crc32.MakeTable(crc32.Castagnoli)

// Store is a byte-accurate, untimed RAID array: it really stores data
// across per-disk buffers using the Layout's placement and the parity
// codecs. It exists to prove the layout and codec math end to end — every
// degraded read and every reconstruction consults only surviving disks —
// and doubles as the reference model for the simulator's addressing.
//
// Every page carries a CRC32-C maintained on write and verified on read:
// silent corruption (Corrupt, or any stray write) is detected and repaired
// in place from redundancy, never silently returned.
type Store struct {
	lay      Layout
	pageSize int
	disks    [][]byte
	sums     [][]uint32 // per-disk per-page CRC32-C of page contents
	failed   []int      // failed disk ids (RAID6 tolerates two)

	readRepairs int64 // pages repaired in place by checksum-verifying reads
}

// NewStore creates a zero-filled store.
func NewStore(lay Layout, pageSize int) (*Store, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("raid: page size %d must be positive", pageSize)
	}
	s := &Store{lay: lay, pageSize: pageSize}
	s.disks = make([][]byte, lay.Disks)
	s.sums = make([][]uint32, lay.Disks)
	zeroSum := crc32.Checksum(make([]byte, pageSize), crcTab)
	for d := range s.disks {
		s.disks[d] = make([]byte, lay.DiskPages*pageSize)
		s.sums[d] = make([]uint32, lay.DiskPages)
		for p := range s.sums[d] {
			s.sums[d][p] = zeroSum
		}
	}
	return s, nil
}

// pageSum computes the current checksum of disk d's page p contents.
func (s *Store) pageSum(d, p int) uint32 {
	return crc32.Checksum(s.disks[d][p*s.pageSize:(p+1)*s.pageSize], crcTab)
}

// setSums re-records the stored checksums of pages [p, p+n) on disk d.
func (s *Store) setSums(d, p, n int) {
	for i := p; i < p+n; i++ {
		s.sums[d][i] = s.pageSum(d, i)
	}
}

// ReadRepairs reports how many pages checksum-verifying reads have
// repaired in place so far.
func (s *Store) ReadRepairs() int64 { return s.readRepairs }

// Corrupt flips bytes of disk d's page p without updating the stored
// checksum — injected silent corruption for exercising detection and
// repair. It fails on a failed disk or an out-of-range page.
func (s *Store) Corrupt(d, p int) error {
	if d < 0 || d >= s.lay.Disks || p < 0 || p >= s.lay.DiskPages {
		return fmt.Errorf("raid: corrupt target disk %d page %d out of range", d, p)
	}
	if !s.alive(d) {
		return fmt.Errorf("raid: disk %d already failed", d)
	}
	s.disks[d][p*s.pageSize] ^= 0xFF
	return nil
}

// Layout returns the store's layout.
func (s *Store) Layout() Layout { return s.lay }

// Failed returns the failed disk ids (empty when healthy).
func (s *Store) Failed() []int { return append([]int(nil), s.failed...) }

// maxFailures is the fault tolerance of the layout.
func (s *Store) maxFailures() int {
	switch s.lay.Level {
	case RAID6:
		return 2
	case RAID1:
		return s.lay.Disks - 1
	case RAID5:
		return 1
	default:
		return 0
	}
}

// FailDisk simulates the total loss of disk d (controller failure, per the
// Samsung report cited in §II-B): its contents become unreadable. RAID6
// tolerates a second failure (§III-D's second-failure scenario); RAID1
// tolerates the loss of all but one mirror.
func (s *Store) FailDisk(d int) error {
	if d < 0 || d >= s.lay.Disks {
		return fmt.Errorf("raid: no disk %d", d)
	}
	if !s.alive(d) {
		return fmt.Errorf("raid: disk %d already failed", d)
	}
	if len(s.failed) >= s.maxFailures() {
		return fmt.Errorf("raid: %v cannot survive %d failures", s.lay.Level, len(s.failed)+1)
	}
	s.failed = append(s.failed, d)
	for i := range s.disks[d] {
		s.disks[d][i] = 0xDE // poison so accidental reads are caught
	}
	return nil
}

func (s *Store) alive(d int) bool {
	for _, f := range s.failed {
		if f == d {
			return false
		}
	}
	return true
}

// unit returns the byte slice of stripe st's unit on disk d.
func (s *Store) unit(d, st int) []byte {
	off := st * s.lay.UnitPages * s.pageSize
	return s.disks[d][off : off+s.lay.UnitPages*s.pageSize]
}

// dataUnits materializes all data units of stripe st, reconstructing any
// units lost to failed disks from parity and survivors (up to two for
// RAID6). The returned slices alias disk storage for surviving units;
// reconstructed units are fresh buffers.
func (s *Store) dataUnits(st int) ([][]byte, error) {
	nd := s.lay.DataDisks()
	units := make([][]byte, nd)
	var missing []int
	for idx := 0; idx < nd; idx++ {
		d := s.lay.DataDisk(st, idx)
		if s.alive(d) {
			units[idx] = s.unit(d, st)
		} else {
			missing = append(missing, idx)
		}
	}
	switch len(missing) {
	case 0:
		return units, nil
	case 1:
		out := make([]byte, s.lay.UnitPages*s.pageSize)
		if err := s.reconstructDataUnit(st, missing[0], units, out); err != nil {
			return nil, err
		}
		units[missing[0]] = out
		return units, nil
	case 2:
		if s.lay.Level != RAID6 {
			return nil, fmt.Errorf("raid: %v stripe %d lost two data units", s.lay.Level, st)
		}
		pd, qd := s.lay.ParityDisk(st), s.lay.QDisk(st)
		if !s.alive(pd) || !s.alive(qd) {
			return nil, fmt.Errorf("raid: stripe %d lost two data units and a parity", st)
		}
		surv := make(map[int][]byte)
		for i, u := range units {
			if u != nil {
				surv[i] = u
			}
		}
		n := s.lay.UnitPages * s.pageSize
		outA := make([]byte, n)
		outB := make([]byte, n)
		ReconstructTwoData(surv, s.unit(pd, st), s.unit(qd, st), missing[0], missing[1], outA, outB)
		units[missing[0]] = outA
		units[missing[1]] = outB
		return units, nil
	default:
		return nil, fmt.Errorf("raid: stripe %d lost %d data units", st, len(missing))
	}
}

// reconstructDataUnit recovers data unit missing of stripe st into out,
// using P when available, else Q (RAID6). units holds the surviving data
// units (nil at the missing index).
func (s *Store) reconstructDataUnit(st, missing int, units [][]byte, out []byte) error {
	switch s.lay.Level {
	case RAID1:
		for d := 0; d < s.lay.Disks; d++ {
			if s.alive(d) {
				copy(out, s.unit(d, st))
				return nil
			}
		}
		return fmt.Errorf("raid: no surviving mirror")
	case RAID5, RAID6:
		pd := s.lay.ParityDisk(st)
		if s.alive(pd) {
			var surv [][]byte
			for i, u := range units {
				if i != missing && u != nil {
					surv = append(surv, u)
				}
			}
			ReconstructDataP(surv, s.unit(pd, st), out)
			return nil
		}
		if s.lay.Level == RAID6 {
			qd := s.lay.QDisk(st)
			if !s.alive(qd) {
				return fmt.Errorf("raid: stripe %d lost both parities and a data unit", st)
			}
			survMap := make(map[int][]byte)
			for i, u := range units {
				if i != missing && u != nil {
					survMap[i] = u
				}
			}
			ReconstructDataQ(survMap, s.unit(qd, st), missing, out)
			return nil
		}
		return fmt.Errorf("raid: stripe %d unrecoverable", st)
	default:
		return fmt.Errorf("raid: %v cannot reconstruct", s.lay.Level)
	}
}

// writeParity recomputes and stores P (and Q) for stripe st from the full
// data unit set. Parity on the failed disk is skipped.
func (s *Store) writeParity(st int, units [][]byte) {
	switch s.lay.Level {
	case RAID5:
		if pd := s.lay.ParityDisk(st); s.alive(pd) {
			EncodeP(units, s.unit(pd, st))
		}
	case RAID6:
		if pd := s.lay.ParityDisk(st); s.alive(pd) {
			EncodeP(units, s.unit(pd, st))
		}
		if qd := s.lay.QDisk(st); s.alive(qd) {
			EncodeQ(units, s.unit(qd, st))
		}
	}
}

// Write stores data (len must be a multiple of the page size) at logical
// array page `page`. Degraded writes use reconstruct-write: the lost unit's
// old contents are recovered from survivors before parity is recomputed, so
// redundancy stays correct without ever reading the failed disk.
func (s *Store) Write(page int, data []byte) error {
	if len(data) == 0 || len(data)%s.pageSize != 0 {
		return fmt.Errorf("raid: write length %d not a positive page multiple", len(data))
	}
	pages := len(data) / s.pageSize
	if page < 0 || page+pages > s.lay.LogicalPages() {
		return fmt.Errorf("raid: write [%d,%d) outside array", page, page+pages)
	}
	exts, err := s.lay.SplitExtent(page, pages)
	if err != nil {
		return err
	}
	off := 0
	switch s.lay.Level {
	case RAID0:
		for _, e := range exts {
			n := e.Pages * s.pageSize
			if s.alive(e.Disk) {
				copy(s.disks[e.Disk][e.Page*s.pageSize:], data[off:off+n])
				s.setSums(e.Disk, e.Page, e.Pages)
			}
			off += n
		}
	case RAID1:
		for _, e := range exts {
			n := e.Pages * s.pageSize
			for d := 0; d < s.lay.Disks; d++ {
				if s.alive(d) {
					copy(s.disks[d][e.Page*s.pageSize:], data[off:off+n])
					s.setSums(d, e.Page, e.Pages)
				}
			}
			off += n
		}
	case RAID5, RAID6:
		// Group extents by stripe, materialize full data units (recovering
		// any lost unit first), overlay the new bytes, then write back data
		// and freshly encoded parity.
		i := 0
		for i < len(exts) {
			j := i
			for j < len(exts) && exts[j].Stripe == exts[i].Stripe {
				j++
			}
			st := exts[i].Stripe
			units, err := s.dataUnits(st)
			if err != nil {
				return err
			}
			for _, e := range exts[i:j] {
				n := e.Pages * s.pageSize
				uOff := (e.Page - s.lay.UnitPage(st)) * s.pageSize
				copy(units[e.DataIdx][uOff:uOff+n], data[off:off+n])
				off += n
				if s.alive(e.Disk) {
					s.setSums(e.Disk, e.Page, e.Pages)
				}
			}
			// Persist data units that live on surviving disks. The unit
			// slices alias disk storage for surviving disks, so the overlay
			// already stored them; only parity needs encoding.
			s.writeParity(st, units)
			if pd := s.lay.ParityDisk(st); pd >= 0 && s.alive(pd) {
				s.setSums(pd, s.lay.UnitPage(st), s.lay.UnitPages)
			}
			if qd := s.lay.QDisk(st); qd >= 0 && s.alive(qd) {
				s.setSums(qd, s.lay.UnitPage(st), s.lay.UnitPages)
			}
			i = j
		}
	}
	return nil
}

// Read returns pages logical pages starting at page, reconstructing any
// portion lost to a failed disk (except on RAID0, which has no redundancy).
// Every page read is checksum-verified: detected corruption is repaired in
// place from redundancy, or reported as an error when none remains — never
// silently returned.
func (s *Store) Read(page, pages int) ([]byte, error) {
	if pages <= 0 || page < 0 || page+pages > s.lay.LogicalPages() {
		return nil, fmt.Errorf("raid: read [%d,%d) invalid", page, page+pages)
	}
	exts, err := s.lay.SplitExtent(page, pages)
	if err != nil {
		return nil, err
	}
	out := make([]byte, pages*s.pageSize)
	off := 0
	for _, e := range exts {
		n := e.Pages * s.pageSize
		if s.alive(e.Disk) {
			for pp := e.Page; pp < e.Page+e.Pages; pp++ {
				if s.pageSum(e.Disk, pp) == s.sums[e.Disk][pp] {
					continue
				}
				if !s.repairPage(e.Disk, pp) {
					return nil, fmt.Errorf("raid: unrecoverable corruption on disk %d page %d", e.Disk, pp)
				}
				s.readRepairs++
			}
			copy(out[off:], s.disks[e.Disk][e.Page*s.pageSize:e.Page*s.pageSize+n])
		} else {
			switch s.lay.Level {
			case RAID0:
				return nil, fmt.Errorf("raid: RAID0 data on failed disk %d is lost", e.Disk)
			default:
				units, err := s.dataUnits(e.Stripe)
				if err != nil {
					return nil, err
				}
				uOff := (e.Page - s.lay.UnitPage(e.Stripe)) * s.pageSize
				copy(out[off:off+n], units[e.DataIdx][uOff:])
			}
		}
		off += n
	}
	return out, nil
}

// reconstructExcluding rebuilds data unit idx of stripe st without reading
// it — from the stripe's other data units and parity — even when the
// source disk is alive but holds corrupt data. Failed disks count against
// the same redundancy budget: an error means the stripe cannot cover idx
// on top of its existing losses.
func (s *Store) reconstructExcluding(st, idx int) ([]byte, error) {
	nd := s.lay.DataDisks()
	units := make([][]byte, nd)
	var missing []int
	for i := 0; i < nd; i++ {
		d := s.lay.DataDisk(st, i)
		if i == idx || !s.alive(d) {
			missing = append(missing, i)
			continue
		}
		units[i] = s.unit(d, st)
	}
	n := s.lay.UnitPages * s.pageSize
	out := make([]byte, n)
	switch len(missing) {
	case 1:
		if err := s.reconstructDataUnit(st, idx, units, out); err != nil {
			return nil, err
		}
		return out, nil
	case 2:
		if s.lay.Level != RAID6 {
			return nil, fmt.Errorf("raid: %v stripe %d cannot cover unit %d on top of a failure", s.lay.Level, st, idx)
		}
		pd, qd := s.lay.ParityDisk(st), s.lay.QDisk(st)
		if !s.alive(pd) || !s.alive(qd) {
			return nil, fmt.Errorf("raid: stripe %d lacks both parities to cover unit %d", st, idx)
		}
		surv := make(map[int][]byte)
		for i, u := range units {
			if u != nil {
				surv[i] = u
			}
		}
		outB := make([]byte, n)
		ReconstructTwoData(surv, s.unit(pd, st), s.unit(qd, st), missing[0], missing[1], out, outB)
		if missing[0] == idx {
			return out, nil
		}
		return outB, nil
	default:
		return nil, fmt.Errorf("raid: stripe %d lost %d data units", st, len(missing))
	}
}

// repairPage rewrites disk d's page p from redundancy and re-records its
// checksum, reporting whether the repair was possible. The page may hold a
// data unit, P, or Q; RAID0 pages are unrepairable.
func (s *Store) repairPage(d, p int) bool {
	st := p / s.lay.UnitPages
	ps := s.pageSize
	dst := s.disks[d][p*ps : (p+1)*ps]
	uOff := (p - s.lay.UnitPage(st)) * ps
	switch {
	case s.lay.Level == RAID0:
		return false
	case s.lay.Level == RAID1:
		for m := 0; m < s.lay.Disks; m++ {
			// Copy from a mirror whose own page still matches its checksum.
			if m == d || !s.alive(m) || s.pageSum(m, p) != s.sums[m][p] {
				continue
			}
			copy(dst, s.disks[m][p*ps:(p+1)*ps])
			s.setSums(d, p, 1)
			return true
		}
		return false
	case d == s.lay.ParityDisk(st) || (s.lay.Level == RAID6 && d == s.lay.QDisk(st)):
		units, err := s.dataUnits(st)
		if err != nil {
			return false
		}
		buf := make([]byte, s.lay.UnitPages*ps)
		if d == s.lay.ParityDisk(st) {
			EncodeP(units, buf)
		} else {
			EncodeQ(units, buf)
		}
		copy(dst, buf[uOff:uOff+ps])
		s.setSums(d, p, 1)
		return true
	default:
		idx := s.lay.DataIndex(st, d)
		if idx < 0 {
			return false
		}
		unit, err := s.reconstructExcluding(st, idx)
		if err != nil {
			return false
		}
		copy(dst, unit[uOff:uOff+ps])
		s.setSums(d, p, 1)
		return true
	}
}

// ScrubPass walks every page of every alive disk, verifies its checksum,
// and repairs mismatches in place from redundancy — the byte-accurate
// model of one patrol scrub pass. It reports how many pages were repaired
// and how many were detected but unrepairable (redundancy exhausted).
func (s *Store) ScrubPass() (repaired, unrecoverable int) {
	for d := 0; d < s.lay.Disks; d++ {
		if !s.alive(d) {
			continue
		}
		for p := 0; p < s.lay.DiskPages; p++ {
			if s.pageSum(d, p) == s.sums[d][p] {
				continue
			}
			if s.repairPage(d, p) {
				repaired++
			} else {
				unrecoverable++
			}
		}
	}
	return repaired, unrecoverable
}

// Reconstruct rebuilds every failed disk's full contents (data and parity
// units) from the survivors onto replacements, returning the array to the
// healthy state. With two failures (RAID6) the disks are rebuilt one at a
// time, mirroring §III-D's second-failure procedure.
func (s *Store) Reconstruct() error {
	if len(s.failed) == 0 {
		return fmt.Errorf("raid: no failed disk")
	}
	if s.lay.Level == RAID0 {
		return fmt.Errorf("raid: RAID0 cannot reconstruct")
	}
	for len(s.failed) > 0 {
		if err := s.reconstructOne(s.failed[0]); err != nil {
			return err
		}
		s.failed = s.failed[1:]
	}
	return nil
}

// reconstructOne rebuilds disk d while it is still marked failed.
func (s *Store) reconstructOne(d int) error {
	repl := make([]byte, s.lay.DiskPages*s.pageSize)
	for st := 0; st < s.lay.Stripes(); st++ {
		dst := repl[st*s.lay.UnitPages*s.pageSize : (st+1)*s.lay.UnitPages*s.pageSize]
		switch {
		case s.lay.Level == RAID1:
			src := -1
			for m := 0; m < s.lay.Disks; m++ {
				if s.alive(m) {
					src = m
					break
				}
			}
			if src < 0 {
				return fmt.Errorf("raid: no surviving mirror")
			}
			copy(dst, s.unit(src, st))
		case d == s.lay.ParityDisk(st):
			units, err := s.dataUnits(st)
			if err != nil {
				return err
			}
			EncodeP(units, dst)
		case s.lay.Level == RAID6 && d == s.lay.QDisk(st):
			units, err := s.dataUnits(st)
			if err != nil {
				return err
			}
			EncodeQ(units, dst)
		default:
			idx := s.lay.DataIndex(st, d)
			if idx < 0 {
				return fmt.Errorf("raid: disk %d has no role in stripe %d", d, st)
			}
			units, err := s.dataUnits(st)
			if err != nil {
				return err
			}
			copy(dst, units[idx])
		}
	}
	s.disks[d] = repl
	s.setSums(d, 0, s.lay.DiskPages)
	return nil
}

// CheckParity verifies every stripe's parity on a healthy array.
func (s *Store) CheckParity() error {
	if len(s.failed) > 0 {
		return fmt.Errorf("raid: cannot check parity while degraded")
	}
	if s.lay.Level == RAID0 || s.lay.Level == RAID1 {
		return s.checkMirrors()
	}
	n := s.lay.UnitPages * s.pageSize
	p := make([]byte, n)
	q := make([]byte, n)
	for st := 0; st < s.lay.Stripes(); st++ {
		units, err := s.dataUnits(st)
		if err != nil {
			return err
		}
		EncodeP(units, p)
		if !bytes.Equal(p, s.unit(s.lay.ParityDisk(st), st)) {
			return fmt.Errorf("raid: stripe %d P mismatch", st)
		}
		if s.lay.Level == RAID6 {
			EncodeQ(units, q)
			if !bytes.Equal(q, s.unit(s.lay.QDisk(st), st)) {
				return fmt.Errorf("raid: stripe %d Q mismatch", st)
			}
		}
	}
	return nil
}

func (s *Store) checkMirrors() error {
	if s.lay.Level != RAID1 {
		return nil
	}
	for d := 1; d < s.lay.Disks; d++ {
		if !bytes.Equal(s.disks[0], s.disks[d]) {
			return fmt.Errorf("raid: mirror %d diverges from primary", d)
		}
	}
	return nil
}
