package raid

import (
	"bytes"
	"testing"
)

// FuzzRAID6Codec round-trips the GF(2^8) P+Q codec: build k data chunks
// from fuzz bytes, encode parity, erase any two members (two data chunks,
// one data chunk plus P, a single data chunk, or both parities), and
// assert reconstruction recovers the original bytes exactly.
func FuzzRAID6Codec(f *testing.F) {
	f.Add(4, 0, 1, []byte("stripe unit payload: the quick brown fox"))
	f.Add(2, 1, 0, []byte{0x00, 0xff, 0x11, 0xd0})
	f.Add(15, 3, 11, bytes.Repeat([]byte{0xa5, 0x5a, 0x00}, 40))
	f.Fuzz(func(t *testing.T, k, a, b int, payload []byte) {
		// Normalize to a usable geometry: 2..16 data members (Linux MD's
		// practical RAID6 width), chunk length >= 1.
		k = 2 + abs(k)%15
		n := len(payload)/k + 1
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, n)
			lo := i * n
			if lo < len(payload) {
				copy(data[i], payload[lo:])
			}
		}
		a, b = abs(a)%k, abs(b)%k
		if a == b {
			b = (a + 1) % k
		}
		if a > b {
			a, b = b, a
		}
		p := make([]byte, n)
		q := make([]byte, n)
		EncodePQ(data, p, q)

		// Double data erasure: recover chunks a and b from P, Q and the rest.
		surv := make(map[int][]byte)
		for i := range data {
			if i != a && i != b {
				surv[i] = data[i]
			}
		}
		outA := make([]byte, n)
		outB := make([]byte, n)
		ReconstructTwoData(surv, p, q, a, b, outA, outB)
		if !bytes.Equal(outA, data[a]) || !bytes.Equal(outB, data[b]) {
			t.Fatalf("double-erasure round-trip failed: k=%d a=%d b=%d", k, a, b)
		}

		// Data chunk a plus P erased: recover a from Q alone.
		surv = make(map[int][]byte)
		for i := range data {
			if i != a {
				surv[i] = data[i]
			}
		}
		out := make([]byte, n)
		ReconstructDataQ(surv, q, a, out)
		if !bytes.Equal(out, data[a]) {
			t.Fatalf("Q-only round-trip failed: k=%d a=%d", k, a)
		}

		// Single data erasure: the RAID5 path over P.
		others := make([][]byte, 0, k-1)
		for i := range data {
			if i != b {
				others = append(others, data[i])
			}
		}
		ReconstructDataP(others, p, out)
		if !bytes.Equal(out, data[b]) {
			t.Fatalf("P round-trip failed: k=%d b=%d", k, b)
		}

		// Both parities lost: re-encoding from intact data must reproduce
		// them (the codec is a function, not a state machine).
		p2 := make([]byte, n)
		q2 := make([]byte, n)
		EncodePQ(data, p2, q2)
		if !bytes.Equal(p, p2) || !bytes.Equal(q, q2) {
			t.Fatalf("parity re-encode diverged: k=%d", k)
		}

		// An incremental RMW update of one chunk must agree with a full
		// re-encode (the array's small-write path depends on this).
		upd := make([]byte, n)
		for i := range upd {
			upd[i] = data[a][i] ^ byte(i*31+7)
		}
		UpdateP(p2, data[a], upd)
		UpdateQ(q2, data[a], upd, a)
		old := data[a]
		data[a] = upd
		EncodePQ(data, p, q)
		data[a] = old
		if !bytes.Equal(p, p2) || !bytes.Equal(q, q2) {
			t.Fatalf("incremental parity update diverged from re-encode: k=%d a=%d", k, a)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // math.MinInt
			return 0
		}
		return -x
	}
	return x
}
