package raid

// Parity codecs operate on the chunks of one stripe: data[i] is the i-th
// data chunk, all chunks the same length. They implement the math of RAID5
// (single parity P = xor of the data) and RAID6 (P plus the Reed-Solomon
// syndrome Q = Σ g^i · data[i] over GF(2^8)), identical to Linux MD.

// EncodeP computes the XOR parity of the data chunks into p.
func EncodeP(data [][]byte, p []byte) {
	clear(p)
	for _, d := range data {
		xorSlice(p, d)
	}
}

// EncodeQ computes the RAID6 Q syndrome of the data chunks into q.
func EncodeQ(data [][]byte, q []byte) {
	clear(q)
	for i, d := range data {
		mulSlice(q, d, gfPow(i))
	}
}

// EncodePQ computes both parities in one pass.
func EncodePQ(data [][]byte, p, q []byte) {
	EncodeP(data, p)
	EncodeQ(data, q)
}

// UpdateP applies the RAID5 read-modify-write parity delta: given the old
// and new contents of one data chunk, it updates p in place. This is the
// "concurrently updates the corresponding parity to its correct position"
// operation GC-Steering performs when it redirects a write (§III-C).
func UpdateP(p, oldData, newData []byte) {
	xorSlice(p, oldData)
	xorSlice(p, newData)
}

// UpdateQ applies the RAID6 RMW delta for data chunk index idx.
func UpdateQ(q, oldData, newData []byte, idx int) {
	c := gfPow(idx)
	mulSlice(q, oldData, c)
	mulSlice(q, newData, c)
}

// ReconstructDataP recovers the single missing data chunk lost from a
// RAID5 stripe: missing = p ⊕ (xor of surviving data chunks). data must
// contain the surviving chunks (any order).
func ReconstructDataP(surviving [][]byte, p []byte, out []byte) {
	copy(out, p)
	for _, d := range surviving {
		xorSlice(out, d)
	}
}

// ReconstructDataQ recovers one missing data chunk (index missingIdx) using
// the Q syndrome when P is unavailable. surviving maps data index -> chunk
// for all present chunks.
func ReconstructDataQ(surviving map[int][]byte, q []byte, missingIdx int, out []byte) {
	copy(out, q)
	for i, d := range surviving {
		mulSlice(out, d, gfPow(i))
	}
	// out currently holds g^missingIdx * missing; divide it out.
	inv := gfInv(gfPow(missingIdx))
	for i := range out {
		out[i] = gfMul(out[i], inv)
	}
}

// ReconstructTwoData recovers two missing data chunks (indices a < b) of a
// RAID6 stripe from P, Q and the surviving data chunks.
//
// With Pxor = P ⊕ Σ surviving and Qxor = Q ⊕ Σ g^i·surviving:
//
//	Da ⊕ Db            = Pxor
//	g^a·Da ⊕ g^b·Db    = Qxor
//
// so Da = (Qxor ⊕ g^b·Pxor) / (g^a ⊕ g^b) and Db = Pxor ⊕ Da.
func ReconstructTwoData(surviving map[int][]byte, p, q []byte, a, b int, outA, outB []byte) {
	if a == b {
		panic("raid: ReconstructTwoData with identical indices")
	}
	n := len(p)
	pxor := make([]byte, n)
	qxor := make([]byte, n)
	copy(pxor, p)
	copy(qxor, q)
	for i, d := range surviving {
		xorSlice(pxor, d)
		mulSlice(qxor, d, gfPow(i))
	}
	ga, gb := gfPow(a), gfPow(b)
	denom := gfInv(ga ^ gb)
	for i := 0; i < n; i++ {
		da := gfMul(qxor[i]^gfMul(gb, pxor[i]), denom)
		outA[i] = da
		outB[i] = pxor[i] ^ da
	}
}
