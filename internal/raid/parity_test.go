package raid

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func randChunks(rng *rand.Rand, n, size int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, size)
		rng.Read(out[i])
	}
	return out
}

func TestEncodePIsXor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randChunks(rng, 4, 64)
	p := make([]byte, 64)
	EncodeP(data, p)
	for i := 0; i < 64; i++ {
		want := data[0][i] ^ data[1][i] ^ data[2][i] ^ data[3][i]
		if p[i] != want {
			t.Fatalf("P[%d] = %d, want %d", i, p[i], want)
		}
	}
}

func TestUpdatePMatchesReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randChunks(rng, 5, 128)
	p := make([]byte, 128)
	EncodeP(data, p)
	// Overwrite chunk 2 and apply the RMW delta.
	oldData := append([]byte(nil), data[2]...)
	rng.Read(data[2])
	UpdateP(p, oldData, data[2])
	want := make([]byte, 128)
	EncodeP(data, want)
	if !bytes.Equal(p, want) {
		t.Fatal("UpdateP diverges from full re-encode")
	}
}

func TestUpdateQMatchesReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := randChunks(rng, 5, 128)
	q := make([]byte, 128)
	EncodeQ(data, q)
	oldData := append([]byte(nil), data[3]...)
	rng.Read(data[3])
	UpdateQ(q, oldData, data[3], 3)
	want := make([]byte, 128)
	EncodeQ(data, want)
	if !bytes.Equal(q, want) {
		t.Fatal("UpdateQ diverges from full re-encode")
	}
}

func TestReconstructDataP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randChunks(rng, 6, 256)
	p := make([]byte, 256)
	EncodeP(data, p)
	for missing := 0; missing < 6; missing++ {
		var surv [][]byte
		for i, d := range data {
			if i != missing {
				surv = append(surv, d)
			}
		}
		out := make([]byte, 256)
		ReconstructDataP(surv, p, out)
		if !bytes.Equal(out, data[missing]) {
			t.Fatalf("P-reconstruction of chunk %d wrong", missing)
		}
	}
}

func TestReconstructDataQ(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randChunks(rng, 6, 256)
	q := make([]byte, 256)
	EncodeQ(data, q)
	for missing := 0; missing < 6; missing++ {
		surv := make(map[int][]byte)
		for i, d := range data {
			if i != missing {
				surv[i] = d
			}
		}
		out := make([]byte, 256)
		ReconstructDataQ(surv, q, missing, out)
		if !bytes.Equal(out, data[missing]) {
			t.Fatalf("Q-reconstruction of chunk %d wrong", missing)
		}
	}
}

func TestReconstructTwoData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 6
	data := randChunks(rng, n, 512)
	p := make([]byte, 512)
	q := make([]byte, 512)
	EncodePQ(data, p, q)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			surv := make(map[int][]byte)
			for i, d := range data {
				if i != a && i != b {
					surv[i] = d
				}
			}
			outA := make([]byte, 512)
			outB := make([]byte, 512)
			ReconstructTwoData(surv, p, q, a, b, outA, outB)
			if !bytes.Equal(outA, data[a]) || !bytes.Equal(outB, data[b]) {
				t.Fatalf("double reconstruction of (%d,%d) wrong", a, b)
			}
		}
	}
}

func TestReconstructTwoDataSameIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("identical indices did not panic")
		}
	}()
	ReconstructTwoData(nil, []byte{0}, []byte{0}, 2, 2, []byte{0}, []byte{0})
}

// Property: encode → corrupt any two data chunks → reconstruct recovers
// exactly, for random chunk counts and contents.
func TestQuickRAID6RoundTrip(t *testing.T) {
	type spec struct {
		Seed   int64
		Chunks uint8
		A, B   uint8
	}
	f := func(sp spec) bool {
		n := int(sp.Chunks%14) + 2 // 2..15 data chunks
		a := int(sp.A) % n
		b := int(sp.B) % n
		if a == b {
			b = (b + 1) % n
		}
		if a > b {
			a, b = b, a
		}
		rng := rand.New(rand.NewSource(sp.Seed))
		data := randChunks(rng, n, 64)
		p := make([]byte, 64)
		q := make([]byte, 64)
		EncodePQ(data, p, q)
		surv := make(map[int][]byte)
		for i, d := range data {
			if i != a && i != b {
				surv[i] = d
			}
		}
		outA := make([]byte, 64)
		outB := make([]byte, 64)
		ReconstructTwoData(surv, p, q, a, b, outA, outB)
		return bytes.Equal(outA, data[a]) && bytes.Equal(outB, data[b])
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(spec{
				Seed: r.Int63(), Chunks: uint8(r.Intn(256)),
				A: uint8(r.Intn(256)), B: uint8(r.Intn(256)),
			})
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodePQ(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	data := randChunks(rng, 4, 64*1024)
	p := make([]byte, 64*1024)
	q := make([]byte, 64*1024)
	b.SetBytes(4 * 64 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EncodePQ(data, p, q)
	}
}
