package raid

import (
	"math/rand"
	"testing"
)

func TestGFTablesConsistent(t *testing.T) {
	// exp and log must be inverse on nonzero elements.
	for x := 1; x < 256; x++ {
		if int(gfExp[gfLog[x]]) != x {
			t.Fatalf("exp(log(%d)) = %d", x, gfExp[gfLog[x]])
		}
	}
	// The generator must cycle with period 255.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		if seen[gfExp[i]] {
			t.Fatalf("generator cycle shorter than 255 at %d", i)
		}
		seen[gfExp[i]] = true
	}
}

func TestGFMulProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatalf("mul not commutative: %d %d", a, b)
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatalf("mul not associative: %d %d %d", a, b, c)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("mul not distributive over xor: %d %d %d", a, b, c)
		}
		if gfMul(a, 1) != a || gfMul(a, 0) != 0 {
			t.Fatalf("identity/zero broken for %d", a)
		}
	}
}

func TestGFMulMatchesCarrylessReference(t *testing.T) {
	// Slow bit-by-bit reference multiply modulo the field polynomial.
	ref := func(a, b byte) byte {
		var p int
		x, y := int(a), int(b)
		for y > 0 {
			if y&1 != 0 {
				p ^= x
			}
			x <<= 1
			if x&0x100 != 0 {
				x ^= gfPoly
			}
			y >>= 1
		}
		return byte(p)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b += 7 {
			if gfMul(byte(a), byte(b)) != ref(byte(a), byte(b)) {
				t.Fatalf("gfMul(%d,%d) = %d, ref %d", a, b, gfMul(byte(a), byte(b)), ref(byte(a), byte(b)))
			}
		}
	}
}

func TestGFDivInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := gfInv(byte(a))
		if gfMul(byte(a), inv) != 1 {
			t.Fatalf("a * inv(a) != 1 for %d", a)
		}
		for b := 1; b < 256; b += 11 {
			q := gfDiv(byte(a), byte(b))
			if gfMul(q, byte(b)) != byte(a) {
				t.Fatalf("div broken: %d/%d", a, b)
			}
		}
	}
	if gfDiv(0, 5) != 0 {
		t.Fatal("0/x must be 0")
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	gfDiv(3, 0)
}

func TestGFPow(t *testing.T) {
	if gfPow(0) != 1 {
		t.Fatalf("g^0 = %d", gfPow(0))
	}
	if gfPow(1) != 2 {
		t.Fatalf("g^1 = %d", gfPow(1))
	}
	if gfPow(255) != 1 {
		t.Fatalf("g^255 = %d, want 1 (Fermat)", gfPow(255))
	}
	if gfPow(-1) != gfPow(254) {
		t.Fatal("negative exponent not normalized")
	}
}

func TestMulSliceAndXorSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := make([]byte, 5)
	mulSlice(dst, src, 1) // c=1 degenerates to xor
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("mulSlice c=1 mismatch at %d", i)
		}
	}
	mulSlice(dst, src, 0) // c=0 is a no-op
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("mulSlice c=0 modified dst")
		}
	}
	dst2 := make([]byte, 5)
	mulSlice(dst2, src, 7)
	for i := range src {
		if dst2[i] != gfMul(src[i], 7) {
			t.Fatalf("mulSlice c=7 mismatch at %d", i)
		}
	}
	xorSlice(dst2, dst2)
	for _, v := range dst2 {
		if v != 0 {
			t.Fatal("x^x != 0")
		}
	}
}

func BenchmarkGFMulSlice(b *testing.B) {
	src := make([]byte, 64*1024)
	dst := make([]byte, 64*1024)
	rng := rand.New(rand.NewSource(1))
	rng.Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulSlice(dst, src, 0x1d)
	}
}
