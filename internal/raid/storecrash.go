package raid

import "fmt"

// Leg persistence states of a power-interrupted stripe write: each
// affected disk's program either never started, completed, or tore
// mid-flight leaving checksum-failing garbage.
const (
	LegOld  = iota // program never started: old contents survive
	LegNew         // program completed: new contents persisted
	LegTorn        // program interrupted: CRC-failing garbage persisted
)

// WriteTorn applies a write that a power cut interrupted mid-fan-out:
// state(disk) decides each affected leg's fate (LegOld/LegNew/LegTorn).
// Parity legs are covered too — the parity disk of each touched stripe is
// consulted like any other leg, which is exactly the write hole: data and
// parity can persist independently. It returns the touched stripes in
// ascending order — the entries an intent journal would hold open for this
// write. Parity-carrying levels only.
func (s *Store) WriteTorn(page int, data []byte, state func(disk int) int) ([]int, error) {
	if s.lay.Level != RAID5 && s.lay.Level != RAID6 {
		return nil, fmt.Errorf("raid: %v has no write hole to tear", s.lay.Level)
	}
	if len(data) == 0 || len(data)%s.pageSize != 0 {
		return nil, fmt.Errorf("raid: torn write length %d not a positive page multiple", len(data))
	}
	pages := len(data) / s.pageSize
	if page < 0 || page+pages > s.lay.LogicalPages() {
		return nil, fmt.Errorf("raid: torn write [%d,%d) outside array", page, page+pages)
	}
	exts, err := s.lay.SplitExtent(page, pages)
	if err != nil {
		return nil, err
	}
	var stripes []int
	off, i := 0, 0
	for i < len(exts) {
		j := i
		for j < len(exts) && exts[j].Stripe == exts[i].Stripe {
			j++
		}
		st := exts[i].Stripe
		stripes = append(stripes, st)
		units, err := s.dataUnits(st)
		if err != nil {
			return nil, err
		}
		// Build the would-be post-write stripe in scratch buffers (units
		// alias disk storage for surviving disks, so overlaying in place
		// would persist prematurely).
		n := s.lay.UnitPages * s.pageSize
		next := make([][]byte, len(units))
		for u := range units {
			next[u] = append(make([]byte, 0, n), units[u]...)
		}
		for _, e := range exts[i:j] {
			nb := e.Pages * s.pageSize
			uOff := (e.Page - s.lay.UnitPage(st)) * s.pageSize
			copy(next[e.DataIdx][uOff:uOff+nb], data[off:off+nb])
			off += nb
		}
		// Each data leg persists, keeps its old bytes, or tears.
		for _, e := range exts[i:j] {
			if !s.alive(e.Disk) {
				continue
			}
			nb := e.Pages * s.pageSize
			uOff := (e.Page - s.lay.UnitPage(st)) * s.pageSize
			dst := s.disks[e.Disk][e.Page*s.pageSize : e.Page*s.pageSize+nb]
			switch state(e.Disk) {
			case LegNew:
				copy(dst, next[e.DataIdx][uOff:uOff+nb])
				s.setSums(e.Disk, e.Page, e.Pages)
			case LegTorn:
				tear(dst)
			}
		}
		// Parity legs: encode what full persistence would have stored, then
		// apply the same fate choice.
		s.tornParity(st, next, state)
		i = j
	}
	return stripes, nil
}

// tornParity persists, skips, or tears stripe st's parity units, given the
// fully-overlaid data units the interrupted write was encoding.
func (s *Store) tornParity(st int, units [][]byte, state func(disk int) int) {
	n := s.lay.UnitPages * s.pageSize
	buf := make([]byte, n)
	apply := func(d int, encode func([][]byte, []byte)) {
		if d < 0 || !s.alive(d) {
			return
		}
		dst := s.unit(d, st)
		switch state(d) {
		case LegNew:
			encode(units, buf)
			copy(dst, buf)
			s.setSums(d, s.lay.UnitPage(st), s.lay.UnitPages)
		case LegTorn:
			tear(dst)
		}
	}
	apply(s.lay.ParityDisk(st), EncodeP)
	if s.lay.Level == RAID6 {
		apply(s.lay.QDisk(st), EncodeQ)
	}
}

// tear overwrites buf with garbage WITHOUT updating stored checksums — the
// persisted residue of a program the power cut interrupted. The pattern is
// deterministic so fuzz failures replay exactly.
func tear(buf []byte) {
	for i := range buf {
		buf[i] = byte(i)*167 + 0xC7
	}
}

// ResyncStripe restores stripe st to internal consistency after an
// interrupted write, the byte-accurate model of the mount-time resync:
// checksum-failing data pages are zeroed (their contents are indeterminate
// — the write hole the intent journal bounds to marked stripes), and
// parity is recomputed from the resulting data units. It is idempotent and
// harmless on a consistent stripe, and afterwards the stripe reconstructs
// correctly through any erasure the level tolerates.
func (s *Store) ResyncStripe(st int) error {
	if s.lay.Level != RAID5 && s.lay.Level != RAID6 {
		return fmt.Errorf("raid: %v has no parity to resync", s.lay.Level)
	}
	if st < 0 || st >= s.lay.Stripes() {
		return fmt.Errorf("raid: no stripe %d", st)
	}
	base := s.lay.UnitPage(st)
	for idx := 0; idx < s.lay.DataDisks(); idx++ {
		d := s.lay.DataDisk(st, idx)
		if !s.alive(d) {
			continue
		}
		for p := base; p < base+s.lay.UnitPages; p++ {
			if s.pageSum(d, p) == s.sums[d][p] {
				continue
			}
			zero(s.disks[d][p*s.pageSize : (p+1)*s.pageSize])
			s.setSums(d, p, 1)
		}
	}
	units, err := s.dataUnits(st)
	if err != nil {
		return err
	}
	s.writeParity(st, units)
	if pd := s.lay.ParityDisk(st); pd >= 0 && s.alive(pd) {
		s.setSums(pd, base, s.lay.UnitPages)
	}
	if qd := s.lay.QDisk(st); qd >= 0 && s.alive(qd) {
		s.setSums(qd, base, s.lay.UnitPages)
	}
	return nil
}

func zero(buf []byte) {
	for i := range buf {
		buf[i] = 0
	}
}
