package raid

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const testPageSize = 64 // small pages keep the byte model fast

func newStore(t *testing.T, l Layout) *Store {
	t.Helper()
	s, err := NewStore(l, testPageSize)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func fillRandom(t *testing.T, s *Store, rng *rand.Rand) []byte {
	t.Helper()
	shadow := make([]byte, s.Layout().LogicalPages()*testPageSize)
	rng.Read(shadow)
	if err := s.Write(0, shadow); err != nil {
		t.Fatal(err)
	}
	return shadow
}

func TestStoreWriteReadRoundTrip(t *testing.T) {
	for _, l := range layouts() {
		s := newStore(t, l)
		rng := rand.New(rand.NewSource(10))
		shadow := fillRandom(t, s, rng)
		got, err := s.Read(0, l.LogicalPages())
		if err != nil {
			t.Fatalf("%v: %v", l.Level, err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("%v: full read mismatch", l.Level)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("%v: %v", l.Level, err)
		}
	}
}

func TestStoreRandomOverwrites(t *testing.T) {
	for _, l := range layouts() {
		s := newStore(t, l)
		rng := rand.New(rand.NewSource(11))
		shadow := fillRandom(t, s, rng)
		for i := 0; i < 200; i++ {
			page := rng.Intn(l.LogicalPages())
			pages := 1 + rng.Intn(min(l.LogicalPages()-page, 3*l.UnitPages))
			buf := make([]byte, pages*testPageSize)
			rng.Read(buf)
			if err := s.Write(page, buf); err != nil {
				t.Fatalf("%v: %v", l.Level, err)
			}
			copy(shadow[page*testPageSize:], buf)
		}
		got, err := s.Read(0, l.LogicalPages())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("%v: mismatch after overwrites", l.Level)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("%v: %v", l.Level, err)
		}
	}
}

func TestDegradedReadsRecoverData(t *testing.T) {
	for _, l := range layouts() {
		if l.Level == RAID0 {
			continue
		}
		for fail := 0; fail < l.Disks; fail++ {
			s := newStore(t, l)
			rng := rand.New(rand.NewSource(int64(12 + fail)))
			shadow := fillRandom(t, s, rng)
			if err := s.FailDisk(fail); err != nil {
				t.Fatal(err)
			}
			got, err := s.Read(0, l.LogicalPages())
			if err != nil {
				t.Fatalf("%v fail=%d: %v", l.Level, fail, err)
			}
			if !bytes.Equal(got, shadow) {
				t.Fatalf("%v fail=%d: degraded read mismatch", l.Level, fail)
			}
		}
	}
}

func TestRAID0CannotFail(t *testing.T) {
	l := layouts()[0]
	s := newStore(t, l)
	fillRandom(t, s, rand.New(rand.NewSource(13)))
	// RAID0 has zero fault tolerance, so the store refuses the failure
	// outright rather than silently losing data.
	if err := s.FailDisk(1); err == nil {
		t.Fatal("RAID0 FailDisk should be rejected")
	}
	if err := s.Reconstruct(); err == nil {
		t.Fatal("RAID0 reconstruct should fail")
	}
}

func TestDegradedWritesThenReconstruct(t *testing.T) {
	for _, l := range layouts() {
		if l.Level == RAID0 {
			continue
		}
		for fail := 0; fail < l.Disks; fail++ {
			s := newStore(t, l)
			rng := rand.New(rand.NewSource(int64(100 + fail)))
			shadow := fillRandom(t, s, rng)
			if err := s.FailDisk(fail); err != nil {
				t.Fatal(err)
			}
			// Degraded writes, including writes whose data unit lives on the
			// failed disk (their content survives only via parity).
			for i := 0; i < 100; i++ {
				page := rng.Intn(l.LogicalPages())
				pages := 1 + rng.Intn(min(l.LogicalPages()-page, 2*l.UnitPages))
				buf := make([]byte, pages*testPageSize)
				rng.Read(buf)
				if err := s.Write(page, buf); err != nil {
					t.Fatalf("%v fail=%d: %v", l.Level, fail, err)
				}
				copy(shadow[page*testPageSize:], buf)
			}
			// Degraded reads see the new data.
			got, err := s.Read(0, l.LogicalPages())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow) {
				t.Fatalf("%v fail=%d: degraded read after degraded writes mismatch", l.Level, fail)
			}
			// Reconstruction restores full redundancy and content.
			if err := s.Reconstruct(); err != nil {
				t.Fatalf("%v fail=%d: %v", l.Level, fail, err)
			}
			if err := s.CheckParity(); err != nil {
				t.Fatalf("%v fail=%d after rebuild: %v", l.Level, fail, err)
			}
			got, err = s.Read(0, l.LogicalPages())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, shadow) {
				t.Fatalf("%v fail=%d: content changed by reconstruction", l.Level, fail)
			}
		}
	}
}

func TestDoubleFailureRejected(t *testing.T) {
	s := newStore(t, layouts()[2])
	s.FailDisk(0)
	if err := s.FailDisk(1); err == nil {
		t.Fatal("second failure accepted")
	}
}

func TestReconstructWithoutFailure(t *testing.T) {
	s := newStore(t, layouts()[2])
	if err := s.Reconstruct(); err == nil {
		t.Fatal("Reconstruct on healthy array should error")
	}
}

func TestWriteValidation(t *testing.T) {
	s := newStore(t, layouts()[2])
	if err := s.Write(0, make([]byte, testPageSize-1)); err == nil {
		t.Fatal("non-page-multiple write accepted")
	}
	if err := s.Write(-1, make([]byte, testPageSize)); err == nil {
		t.Fatal("negative page accepted")
	}
	if err := s.Write(s.Layout().LogicalPages(), make([]byte, testPageSize)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := s.Read(0, 0); err == nil {
		t.Fatal("zero-length read accepted")
	}
}

// Property: for random layouts and op sequences with a failure injected at
// a random point, reads always equal the shadow and reconstruction restores
// parity. This is the master correctness property of the RAID substrate.
func TestQuickStoreFaultRoundTrip(t *testing.T) {
	type spec struct {
		Seed    int64
		Variant uint8
		FailAt  uint8
		Disk    uint8
	}
	ls := layouts()
	f := func(sp spec) bool {
		l := ls[int(sp.Variant)%len(ls)]
		if l.Level == RAID0 {
			l = ls[2]
		}
		s, err := NewStore(l, testPageSize)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(sp.Seed))
		shadow := make([]byte, l.LogicalPages()*testPageSize)
		rng.Read(shadow)
		if err := s.Write(0, shadow); err != nil {
			t.Fatal(err)
		}
		failAt := int(sp.FailAt) % 60
		failDisk := int(sp.Disk) % l.Disks
		for i := 0; i < 60; i++ {
			if i == failAt {
				if err := s.FailDisk(failDisk); err != nil {
					t.Fatal(err)
				}
			}
			page := rng.Intn(l.LogicalPages())
			pages := 1 + rng.Intn(min(l.LogicalPages()-page, 2*l.UnitPages))
			buf := make([]byte, pages*testPageSize)
			rng.Read(buf)
			if err := s.Write(page, buf); err != nil {
				t.Fatal(err)
			}
			copy(shadow[page*testPageSize:], buf)
		}
		got, err := s.Read(0, l.LogicalPages())
		if err != nil || !bytes.Equal(got, shadow) {
			return false
		}
		if err := s.Reconstruct(); err != nil {
			return false
		}
		if err := s.CheckParity(); err != nil {
			return false
		}
		got, err = s.Read(0, l.LogicalPages())
		return err == nil && bytes.Equal(got, shadow)
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(spec{
				Seed: r.Int63(), Variant: uint8(r.Intn(256)),
				FailAt: uint8(r.Intn(256)), Disk: uint8(r.Intn(256)),
			})
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestCorruptValidation(t *testing.T) {
	s := newStore(t, layouts()[2])
	if err := s.Corrupt(-1, 0); err == nil {
		t.Fatal("negative disk accepted")
	}
	if err := s.Corrupt(0, s.Layout().DiskPages); err == nil {
		t.Fatal("out-of-range page accepted")
	}
	if err := s.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(1, 0); err == nil {
		t.Fatal("corrupting a failed disk accepted")
	}
}

// TestReadDetectsAndRepairsCorruption: a checksum-verifying read of a
// silently corrupted data page returns the true contents and repairs the
// page in place from redundancy.
func TestReadDetectsAndRepairsCorruption(t *testing.T) {
	for _, l := range layouts() {
		if l.Level == RAID0 {
			continue
		}
		s := newStore(t, l)
		shadow := fillRandom(t, s, rand.New(rand.NewSource(40)))
		// Corrupt the first data page of stripe 1 on its data disk.
		d := l.DataDisk(1, 0)
		p := l.UnitPage(1)
		if err := s.Corrupt(d, p); err != nil {
			t.Fatal(err)
		}
		got, err := s.Read(0, l.LogicalPages())
		if err != nil {
			t.Fatalf("%v: %v", l.Level, err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("%v: corrupted read returned wrong bytes", l.Level)
		}
		if s.ReadRepairs() != 1 {
			t.Fatalf("%v: read repairs = %d, want 1", l.Level, s.ReadRepairs())
		}
		// The repair is persistent: a second read is clean.
		if _, err := s.Read(0, l.LogicalPages()); err != nil {
			t.Fatal(err)
		}
		if s.ReadRepairs() != 1 {
			t.Fatalf("%v: repair did not stick (%d repairs)", l.Level, s.ReadRepairs())
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("%v after repair: %v", l.Level, err)
		}
	}
}

// TestScrubPassRepairsDataAndParityCorruption: one patrol pass finds and
// fixes corruption wherever it lands — data units, P, and Q — restoring a
// byte-identical, parity-consistent array.
func TestScrubPassRepairsDataAndParityCorruption(t *testing.T) {
	for _, l := range layouts() {
		if l.Level == RAID0 {
			continue
		}
		s := newStore(t, l)
		shadow := fillRandom(t, s, rand.New(rand.NewSource(41)))
		want := 2
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(s.Corrupt(l.DataDisk(0, 0), 0))
		must(s.Corrupt(l.DataDisk(2, 0), l.UnitPage(2)+1))
		if pd := l.ParityDisk(3); pd >= 0 {
			must(s.Corrupt(pd, l.UnitPage(3)))
			want++
		}
		if qd := l.QDisk(3); qd >= 0 {
			must(s.Corrupt(qd, l.UnitPage(3)+2))
			want++
		}
		repaired, unrec := s.ScrubPass()
		if repaired != want || unrec != 0 {
			t.Fatalf("%v: scrub repaired %d (want %d), unrecoverable %d", l.Level, repaired, want, unrec)
		}
		if err := s.CheckParity(); err != nil {
			t.Fatalf("%v after scrub: %v", l.Level, err)
		}
		got, err := s.Read(0, l.LogicalPages())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, shadow) {
			t.Fatalf("%v: content changed by scrub repair", l.Level)
		}
		if s.ReadRepairs() != 0 {
			t.Fatalf("%v: read after scrub still repaired %d pages", l.Level, s.ReadRepairs())
		}
		// A second pass finds a clean array.
		if r, u := s.ScrubPass(); r != 0 || u != 0 {
			t.Fatalf("%v: second pass repaired %d / unrecoverable %d", l.Level, r, u)
		}
	}
}

// TestCorruptionBeyondRedundancyIsAnError: with one RAID5 member already
// failed, a corrupt page on a survivor has no redundancy left — reads must
// fail loudly and the scrub must count it unrecoverable, never fabricate
// data.
func TestCorruptionBeyondRedundancyIsAnError(t *testing.T) {
	l := layouts()[2] // RAID5
	s := newStore(t, l)
	fillRandom(t, s, rand.New(rand.NewSource(42)))
	if err := s.FailDisk(l.DataDisk(0, 1)); err != nil {
		t.Fatal(err)
	}
	d := l.DataDisk(0, 0)
	if err := s.Corrupt(d, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(0, l.UnitPages); err == nil {
		t.Fatal("unrecoverable corruption returned silently")
	}
	if _, unrec := s.ScrubPass(); unrec != 1 {
		t.Fatalf("scrub unrecoverable = %d, want 1", unrec)
	}
	// Reconstruction of the failed disk uses the corrupt survivor and so
	// cannot certify parity; RAID6 would have survived this (next test).
}

// TestRAID6SurvivesCorruptionDuringDegradedRead: RAID6's second parity
// covers a corrupt survivor page even with one member already failed.
func TestRAID6SurvivesCorruptionDuringDegradedRead(t *testing.T) {
	l := layouts()[4] // RAID6
	s := newStore(t, l)
	shadow := fillRandom(t, s, rand.New(rand.NewSource(43)))
	if err := s.FailDisk(l.DataDisk(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(l.DataDisk(0, 0), 0); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(0, l.LogicalPages())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("degraded RAID6 read with corruption returned wrong bytes")
	}
	if s.ReadRepairs() != 1 {
		t.Fatalf("read repairs = %d, want 1", s.ReadRepairs())
	}
}
