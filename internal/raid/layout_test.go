package raid

import "testing"

func layouts() []Layout {
	return []Layout{
		{Level: RAID0, Disks: 4, UnitPages: 16, DiskPages: 256},
		{Level: RAID1, Disks: 2, UnitPages: 16, DiskPages: 256},
		{Level: RAID5, Disks: 5, UnitPages: 16, DiskPages: 256},
		{Level: RAID5, Disks: 7, UnitPages: 16, DiskPages: 256},
		{Level: RAID6, Disks: 6, UnitPages: 16, DiskPages: 256},
	}
}

func TestLayoutValidate(t *testing.T) {
	for _, l := range layouts() {
		if err := l.Validate(); err != nil {
			t.Errorf("%+v: %v", l, err)
		}
	}
	bad := []Layout{
		{Level: RAID5, Disks: 2, UnitPages: 16, DiskPages: 256}, // too few disks
		{Level: RAID6, Disks: 3, UnitPages: 16, DiskPages: 256}, // too few disks
		{Level: RAID5, Disks: 5, UnitPages: 0, DiskPages: 256},  // bad unit
		{Level: RAID5, Disks: 5, UnitPages: 16, DiskPages: 250}, // not unit multiple
		{Level: Level(99), Disks: 5, UnitPages: 16, DiskPages: 256},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad layout %d accepted: %+v", i, l)
		}
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{RAID0: "RAID0", RAID1: "RAID1", RAID5: "RAID5", RAID6: "RAID6"} {
		if l.String() != want {
			t.Errorf("String() = %q", l.String())
		}
	}
}

func TestCapacities(t *testing.T) {
	l := Layout{Level: RAID5, Disks: 5, UnitPages: 16, DiskPages: 256}
	if l.DataDisks() != 4 {
		t.Fatalf("DataDisks = %d", l.DataDisks())
	}
	if l.Stripes() != 16 {
		t.Fatalf("Stripes = %d", l.Stripes())
	}
	if l.LogicalPages() != 16*16*4 {
		t.Fatalf("LogicalPages = %d", l.LogicalPages())
	}
}

func TestRAID5LeftSymmetricParityRotation(t *testing.T) {
	l := Layout{Level: RAID5, Disks: 5, UnitPages: 16, DiskPages: 16 * 10}
	// Left-symmetric: parity walks from the last disk downward.
	want := []int{4, 3, 2, 1, 0, 4, 3, 2, 1, 0}
	for s, w := range want {
		if got := l.ParityDisk(s); got != w {
			t.Errorf("ParityDisk(%d) = %d, want %d", s, got, w)
		}
	}
	// Data disk 0 of each stripe immediately follows parity.
	for s := 0; s < 10; s++ {
		if got := l.DataDisk(s, 0); got != (l.ParityDisk(s)+1)%5 {
			t.Errorf("DataDisk(%d,0) = %d", s, got)
		}
	}
}

func TestRAID6PQAdjacent(t *testing.T) {
	l := Layout{Level: RAID6, Disks: 6, UnitPages: 16, DiskPages: 16 * 12}
	for s := 0; s < 12; s++ {
		p, q := l.ParityDisk(s), l.QDisk(s)
		if q != (p+1)%6 {
			t.Errorf("stripe %d: Q=%d not adjacent to P=%d", s, q, p)
		}
		if p == q {
			t.Errorf("stripe %d: P == Q", s)
		}
	}
}

func TestDataIndexInvertsDataDisk(t *testing.T) {
	for _, l := range layouts() {
		for s := 0; s < l.Stripes(); s++ {
			for idx := 0; idx < l.DataDisks(); idx++ {
				d := l.DataDisk(s, idx)
				if got := l.DataIndex(s, d); got != idx {
					t.Fatalf("%v stripe %d: DataIndex(DataDisk(%d)) = %d", l.Level, s, idx, got)
				}
			}
			if l.Level == RAID5 || l.Level == RAID6 {
				if l.DataIndex(s, l.ParityDisk(s)) != -1 {
					t.Fatalf("%v: parity disk reported as data", l.Level)
				}
			}
			if l.Level == RAID6 {
				if l.DataIndex(s, l.QDisk(s)) != -1 {
					t.Fatal("RAID6: Q disk reported as data")
				}
			}
		}
	}
}

// Each stripe must place every unit (data + parity) on a distinct disk.
func TestStripeUnitsDistinctDisks(t *testing.T) {
	for _, l := range layouts() {
		if l.Level == RAID1 {
			continue
		}
		for s := 0; s < l.Stripes(); s++ {
			used := map[int]bool{}
			add := func(d int) {
				if d < 0 {
					return
				}
				if used[d] {
					t.Fatalf("%v stripe %d reuses disk %d", l.Level, s, d)
				}
				used[d] = true
			}
			add(l.ParityDisk(s))
			add(l.QDisk(s))
			for i := 0; i < l.DataDisks(); i++ {
				add(l.DataDisk(s, i))
			}
			if len(used) != l.Disks {
				t.Fatalf("%v stripe %d covers %d disks, want %d", l.Level, s, len(used), l.Disks)
			}
		}
	}
}

// Map must be a bijection from logical pages to (disk, page) data slots.
func TestMapBijective(t *testing.T) {
	for _, l := range layouts() {
		seen := make(map[Loc]int)
		for p := 0; p < l.LogicalPages(); p++ {
			loc, err := l.Map(p)
			if err != nil {
				t.Fatalf("%v: Map(%d): %v", l.Level, p, err)
			}
			if loc.Disk < 0 || loc.Disk >= l.Disks {
				t.Fatalf("%v: page %d maps to disk %d", l.Level, p, loc.Disk)
			}
			if loc.Page < 0 || loc.Page >= l.DiskPages {
				t.Fatalf("%v: page %d maps to disk page %d", l.Level, p, loc.Page)
			}
			if prev, dup := seen[loc]; dup {
				t.Fatalf("%v: pages %d and %d collide at %+v", l.Level, prev, p, loc)
			}
			seen[loc] = p
			// Mapped location must never land on a parity unit.
			s := l.StripeOf(p)
			if loc.Disk == l.ParityDisk(s) || (l.QDisk(s) >= 0 && loc.Disk == l.QDisk(s)) {
				t.Fatalf("%v: page %d mapped onto parity disk", l.Level, p)
			}
		}
	}
}

func TestMapOutOfRangeErrors(t *testing.T) {
	l := layouts()[2]
	for _, p := range []int{-1, l.LogicalPages()} {
		if _, err := l.Map(p); err == nil {
			t.Errorf("Map(%d) did not error", p)
		}
	}
}

func TestSplitExtentCoversExactly(t *testing.T) {
	for _, l := range layouts() {
		total := l.LogicalPages()
		for _, tc := range []struct{ page, pages int }{
			{0, 1}, {0, l.UnitPages}, {3, l.UnitPages}, {0, total},
			{l.UnitPages - 1, 2}, {7, 3 * l.UnitPages}, {total - 1, 1},
		} {
			if tc.page+tc.pages > total {
				continue
			}
			exts, err := l.SplitExtent(tc.page, tc.pages)
			if err != nil {
				t.Fatalf("%v: SplitExtent(%d, %d): %v", l.Level, tc.page, tc.pages, err)
			}
			sum := 0
			for i, e := range exts {
				sum += e.Pages
				if e.Pages <= 0 || e.Pages > l.UnitPages {
					t.Fatalf("%v: extent %d has %d pages", l.Level, i, e.Pages)
				}
				// First page of the extent must agree with Map.
				logical := tc.page + sumBefore(exts[:i])
				loc, _ := l.Map(logical)
				if loc.Disk != e.Disk || loc.Page != e.Page {
					t.Fatalf("%v: extent %d at %+v, Map says %+v", l.Level, i, e, loc)
				}
			}
			if sum != tc.pages {
				t.Fatalf("%v: extents cover %d pages, want %d", l.Level, sum, tc.pages)
			}
		}
	}
}

func sumBefore(exts []Extent) int {
	s := 0
	for _, e := range exts {
		s += e.Pages
	}
	return s
}

func TestSplitExtentBadRangesError(t *testing.T) {
	l := layouts()[0]
	for _, tc := range []struct{ page, pages int }{
		{0, 0}, {0, -1}, {-1, 1}, {l.LogicalPages(), 1}, {l.LogicalPages() - 1, 2},
	} {
		if _, err := l.SplitExtent(tc.page, tc.pages); err == nil {
			t.Errorf("SplitExtent(%d, %d) did not error", tc.page, tc.pages)
		}
	}
}
