// Package raid implements the RAID substrate the paper's prototype sits on:
// Galois-field arithmetic and parity codecs operating on real bytes, stripe
// layout address math for RAID0/1/5/6 (left-symmetric RAID5 as in Linux MD),
// a byte-accurate in-memory array used to prove codec/layout correctness,
// and the timed Array that models request fan-out, read-modify-write parity
// updates, degraded reads and disk replacement on the simulation clock.
package raid

// GF(2^8) arithmetic with the AES/Reed-Solomon field polynomial x^8 + x^4 +
// x^3 + x^2 + 1 (0x11d), the field Linux MD's RAID6 uses. Exp/log tables are
// built once at init.

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled so gfMul can skip a modulo
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b must be nonzero).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("raid: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a (a must be nonzero).
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow returns g^n where g = 2 is the field generator.
func gfPow(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return gfExp[n]
}

// mulSlice computes dst[i] ^= c * src[i] for all i.
func mulSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(dst, src)
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// xorSlice computes dst[i] ^= src[i] for all i.
func xorSlice(dst, src []byte) {
	for i, s := range src {
		dst[i] ^= s
	}
}
