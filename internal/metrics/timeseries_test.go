package metrics

import (
	"strings"
	"testing"
)

func TestTimeSeriesBucketing(t *testing.T) {
	s := NewTimeSeries(100)
	s.Observe(0, 10)
	s.Observe(50, 30)
	s.Observe(150, 100)
	s.Observe(950, 7)
	if s.Windows() != 10 {
		t.Fatalf("Windows = %d, want 10", s.Windows())
	}
	if s.Mean(0) != 20 {
		t.Fatalf("Mean(0) = %v", s.Mean(0))
	}
	if s.Count(1) != 1 || s.Mean(1) != 100 {
		t.Fatalf("window 1: count=%d mean=%v", s.Count(1), s.Mean(1))
	}
	if s.Max(1) != 100 {
		t.Fatalf("Max(1) = %d", s.Max(1))
	}
	if s.Count(5) != 0 || s.Mean(5) != 0 {
		t.Fatal("empty interior window must report zeros")
	}
	if s.Mean(-1) != 0 || s.Mean(99) != 0 || s.Max(99) != 0 || s.Count(99) != 0 {
		t.Fatal("out-of-range windows must report zeros")
	}
	if s.WindowNs() != 100 {
		t.Fatal("WindowNs")
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	s := NewTimeSeries(100)
	s.Observe(-5, 42)
	if s.Count(0) != 1 {
		t.Fatal("negative time not clamped to window 0")
	}
}

func TestTimeSeriesMeansSkipsEmpty(t *testing.T) {
	s := NewTimeSeries(10)
	s.Observe(0, 5)
	s.Observe(95, 15)
	means := s.Means()
	if len(means) != 2 || means[0] != 5 || means[1] != 15 {
		t.Fatalf("Means = %v", means)
	}
}

func TestVariabilityCV(t *testing.T) {
	flat := NewTimeSeries(10)
	for i := int64(0); i < 10; i++ {
		flat.Observe(i*10, 100)
	}
	if cv := flat.VariabilityCV(); cv != 0 {
		t.Fatalf("flat CV = %v", cv)
	}
	spiky := NewTimeSeries(10)
	for i := int64(0); i < 10; i++ {
		v := int64(10)
		if i%2 == 0 {
			v = 1000
		}
		spiky.Observe(i*10, v)
	}
	if cv := spiky.VariabilityCV(); cv < 0.5 {
		t.Fatalf("spiky CV = %v, want large", cv)
	}
	empty := NewTimeSeries(10)
	if empty.VariabilityCV() != 0 {
		t.Fatal("empty CV must be 0")
	}
	single := NewTimeSeries(10)
	single.Observe(0, 5)
	if single.VariabilityCV() != 0 {
		t.Fatal("single-window CV must be 0")
	}
}

func TestSparkline(t *testing.T) {
	s := NewTimeSeries(10)
	for i := int64(0); i < 8; i++ {
		s.Observe(i*10, i*10+1)
	}
	sp := s.Sparkline(0)
	if len([]rune(sp)) != 8 {
		t.Fatalf("sparkline %q has wrong length", sp)
	}
	if !strings.HasPrefix(sp, "▁") || !strings.HasSuffix(sp, "█") {
		t.Fatalf("sparkline %q not increasing", sp)
	}
	// Downsampling to a narrower width.
	narrow := s.Sparkline(4)
	if len([]rune(narrow)) != 4 {
		t.Fatalf("downsampled sparkline %q", narrow)
	}
	if NewTimeSeries(10).Sparkline(5) != "" {
		t.Fatal("empty series must render empty")
	}
}

func TestSparklineAllZeros(t *testing.T) {
	s := NewTimeSeries(10)
	s.Observe(0, 0)
	s.Observe(10, 0)
	if sp := s.Sparkline(0); sp != "▁▁" {
		t.Fatalf("all-zero sparkline %q", sp)
	}
}

func TestTimeSeriesString(t *testing.T) {
	s := NewTimeSeries(10)
	s.Observe(0, 1)
	if got := s.String(); !strings.Contains(got, "windows=1") {
		t.Fatalf("String() = %q", got)
	}
}

func TestNewTimeSeriesPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window accepted")
		}
	}()
	NewTimeSeries(0)
}
