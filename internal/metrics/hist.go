// Package metrics provides the statistics primitives used by the
// simulator: streaming means, log-bucketed latency histograms with
// percentile queries, and labelled counters.
//
// Everything here is allocation-light and safe to update once per simulated
// I/O; a single experiment records millions of samples.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// subBuckets is the number of linear sub-buckets per power-of-two range.
// 16 sub-buckets bounds the relative quantile error at ~6%.
const subBuckets = 16

// maxBuckets covers values up to ~2^40 ns (~18 minutes) which is far beyond
// any sane response time.
const maxBuckets = 41 * subBuckets

// Hist is a log-linear histogram of non-negative int64 samples (typically
// latencies in nanoseconds). The zero value is ready to use.
//
// The second moment is accumulated shifted around the first observed sample
// (sumD/sumD2 are sums of v-shift and (v-shift)²). The naive sumSq/n - mean²
// form loses all significance on ns-scale samples: a few million samples
// near 1e9 push Σv² to ~1e24, where float64 resolves only multiples of
// ~2e8 — the subtraction then silently clamps a genuine spread to zero.
// Shifting by a data-scale anchor keeps the accumulators near zero, so the
// variance survives with full precision.
type Hist struct {
	counts [maxBuckets]uint64
	n      uint64
	shift  float64 // anchor: the first observed sample
	sumD   float64 // Σ (v - shift)
	sumD2  float64 // Σ (v - shift)²
	min    int64
	max    int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v) // exact for tiny values
	}
	// Position of the highest set bit.
	exp := bits.Len64(uint64(v)) - 1
	// Linear interpolation within the power-of-two range.
	frac := (v - (1 << exp)) >> (exp - 4) // 0..15 given subBuckets == 16
	idx := (exp-3)*subBuckets + int(frac)
	if idx >= maxBuckets {
		idx = maxBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx, the inverse of
// bucketOf used when reporting percentiles.
func bucketLow(idx int) int64 {
	if idx < subBuckets {
		return int64(idx)
	}
	exp := idx/subBuckets + 3
	frac := idx % subBuckets
	return (1 << exp) + int64(frac)<<(exp-4)
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.n == 0 {
		h.min = v
		h.shift = float64(v)
	} else if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	h.n++
	d := float64(v) - h.shift
	h.sumD += d
	h.sumD2 += d * d
}

// Count returns the number of samples observed.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the arithmetic mean of all samples, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.shift + h.sumD/float64(h.n)
}

// Stddev returns the population standard deviation. The shifted form
// Σd² - (Σd)²/n around the first-sample anchor is numerically safe: both
// terms are O(n·spread²), not O(n·mean²), so near-equal large samples do
// not cancel.
func (h *Hist) Stddev() float64 {
	if h.n == 0 {
		return 0
	}
	n := float64(h.n)
	v := (h.sumD2 - h.sumD*h.sumD/n) / n
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observed sample, or 0 with no samples.
func (h *Hist) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample.
func (h *Hist) Max() int64 { return h.max }

// Sum returns the sum of all samples.
func (h *Hist) Sum() float64 { return h.shift*float64(h.n) + h.sumD }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) using
// the nearest-rank definition: the bucket holding the ceil(q*n)-th smallest
// sample. The exact min and max are returned at the extremes so tail
// reporting never understates the worst observation.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Nearest rank, 1-indexed. ceil without math: q*n is exceeded by at
	// most one whole sample, so P99 of exactly 100 samples is the 99th,
	// not the 100th.
	rank := uint64(q * float64(h.n))
	if float64(rank) < q*float64(h.n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			lo := bucketLow(i)
			if lo < h.min {
				lo = h.min
			}
			if lo > h.max {
				lo = h.max
			}
			return lo
		}
	}
	return h.max
}

// Merge adds all samples of other into h.
func (h *Hist) Merge(other *Hist) {
	if other.n == 0 {
		return
	}
	if h.n == 0 {
		// h is empty: adopt other's anchor so the rebase below is exact.
		h.shift = other.shift
		h.min = other.min
	} else if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	// Rebase other's shifted moments onto h's anchor: with k = delta between
	// anchors, Σ(v-s)  = Σ(v-s') + n·k  and  Σ(v-s)² = Σ(v-s')² + 2kΣ(v-s') + n·k².
	k := other.shift - h.shift
	no := float64(other.n)
	h.sumD += other.sumD + no*k
	h.sumD2 += other.sumD2 + 2*k*other.sumD + no*k*k
	h.n += other.n
}

// Reset clears the histogram to its zero state.
func (h *Hist) Reset() { *h = Hist{} }

// Summary is a fixed snapshot of the statistics most experiments report.
type Summary struct {
	Count  uint64
	Mean   float64
	Stddev float64
	Min    int64
	Max    int64
	P50    int64
	P90    int64
	P95    int64
	P99    int64
	P999   int64
}

// Summarize extracts a Summary snapshot.
func (h *Hist) Summarize() Summary {
	return Summary{
		Count:  h.n,
		Mean:   h.Mean(),
		Stddev: h.Stddev(),
		Min:    h.Min(),
		Max:    h.Max(),
		P50:    h.Quantile(0.50),
		P90:    h.Quantile(0.90),
		P95:    h.Quantile(0.95),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
	}
}

// String renders the summary with microsecond units, the natural scale for
// SSD latencies.
func (s Summary) String() string {
	us := func(v int64) string { return fmt.Sprintf("%.1fµs", float64(v)/1e3) }
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%s p95=%s p99=%s p99.9=%s max=%s",
		s.Count, s.Mean/1e3, us(s.P50), us(s.P95), us(s.P99), us(s.P999), us(s.Max))
}

// CounterSet is an ordered collection of named int64 counters.
type CounterSet struct {
	names  []string
	values map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{values: make(map[string]int64)}
}

// Add increments a named counter, registering it on first use.
func (c *CounterSet) Add(name string, delta int64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Get returns the value of a counter (0 if never incremented).
func (c *CounterSet) Get(name string) int64 { return c.values[name] }

// Names returns the registered counter names sorted alphabetically.
func (c *CounterSet) Names() []string {
	out := append([]string(nil), c.names...)
	sort.Strings(out)
	return out
}

// Merge adds all counters of other into c.
func (c *CounterSet) Merge(other *CounterSet) {
	for _, n := range other.Names() {
		c.Add(n, other.Get(n))
	}
}

// String renders "name=value" pairs sorted by name.
func (c *CounterSet) String() string {
	var b strings.Builder
	for i, n := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", n, c.values[n])
	}
	return b.String()
}
