package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Recorder is the simulator's windowed time-series collector: response-time
// samples bucketed into fixed wall-clock windows (mean/max always; P99 when
// quantile tracking is enabled) plus named gauges sampled on the same
// window grid (GC-active device count, staging free slots, engine queue
// depth). It is what the paper's Figure 1 timeline is derived from.
//
// The always-on footprint is deliberately small — one Welford accumulator
// and one int64 per active window. Per-window histograms (for windowed
// quantiles) cost ~5 KB per active window and are opt-in via quantiles.
type Recorder struct {
	windowNs  int64
	quantiles bool

	lat   *TimeSeries
	hists []*Hist // parallel to windows; nil until a sample lands

	gaugeNames []string
	gauges     map[string]*gaugeSeries
}

// gaugeSeries keeps the last sample per window for one named gauge.
type gaugeSeries struct {
	vals []float64
	set  []bool
}

func (g *gaugeSeries) observe(idx int, v float64) {
	for len(g.vals) <= idx {
		g.vals = append(g.vals, 0)
		g.set = append(g.set, false)
	}
	g.vals[idx] = v
	g.set[idx] = true
}

// NewRecorder creates a recorder with the given window length in
// nanoseconds (must be positive). With quantiles true, each active window
// additionally maintains a histogram so P99 can be reported per window.
func NewRecorder(windowNs int64, quantiles bool) *Recorder {
	return &Recorder{
		windowNs:  windowNs,
		quantiles: quantiles,
		lat:       NewTimeSeries(windowNs),
		gauges:    make(map[string]*gaugeSeries),
	}
}

// WindowNs returns the bucket width.
func (r *Recorder) WindowNs() int64 { return r.windowNs }

// Quantiles reports whether per-window quantile tracking is enabled.
func (r *Recorder) Quantiles() bool { return r.quantiles }

// Observe records a response-time sample observed at time t (both ns).
func (r *Recorder) Observe(t, value int64) {
	r.lat.Observe(t, value)
	if !r.quantiles {
		return
	}
	if t < 0 {
		t = 0
	}
	idx := int(t / r.windowNs)
	for len(r.hists) <= idx {
		r.hists = append(r.hists, nil)
	}
	if r.hists[idx] == nil {
		//lint:allow hotalloc one histogram per time window under opt-in quantile tracking, not per sample
		r.hists[idx] = &Hist{}
	}
	r.hists[idx].Observe(value)
}

// SetGauge records the latest value of a named gauge at time t. The value
// observed last within each window wins; windows with no observation stay
// empty. Gauges appear in CSV output in first-use order.
func (r *Recorder) SetGauge(name string, t int64, v float64) {
	r.GaugeHandle(name).Set(t, v)
}

// Gauge is a pre-resolved handle on one named gauge, for hot paths that
// sample the same gauge once per simulated I/O: it skips the name lookup
// SetGauge pays on every call.
type Gauge struct {
	windowNs int64
	g        *gaugeSeries
}

// GaugeHandle returns a reusable handle for the named gauge, registering it
// on first use.
func (r *Recorder) GaugeHandle(name string) Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &gaugeSeries{}
		r.gauges[name] = g
		r.gaugeNames = append(r.gaugeNames, name)
	}
	return Gauge{windowNs: r.windowNs, g: g}
}

// Set records the latest value of the gauge at time t (same semantics as
// Recorder.SetGauge).
func (g Gauge) Set(t int64, v float64) {
	if t < 0 {
		t = 0
	}
	g.g.observe(int(t/g.windowNs), v)
}

// Windows returns the number of latency windows (including empty interior
// ones).
func (r *Recorder) Windows() int { return r.lat.Windows() }

// Count returns the number of latency samples in window i.
func (r *Recorder) Count(i int) uint64 { return r.lat.Count(i) }

// Mean returns the mean response time of window i.
func (r *Recorder) Mean(i int) float64 { return r.lat.Mean(i) }

// Max returns the largest response time of window i.
func (r *Recorder) Max(i int) int64 { return r.lat.Max(i) }

// P99 returns the 99th-percentile response time of window i, or 0 when the
// window is empty or quantile tracking is disabled.
func (r *Recorder) P99(i int) int64 {
	if i < 0 || i >= len(r.hists) || r.hists[i] == nil {
		return 0
	}
	return r.hists[i].Quantile(0.99)
}

// Gauge returns the last value of the named gauge in window i and whether
// the window saw an observation.
func (r *Recorder) Gauge(name string, i int) (float64, bool) {
	g := r.gauges[name]
	if g == nil || i < 0 || i >= len(g.vals) || !g.set[i] {
		return 0, false
	}
	return g.vals[i], true
}

// GaugeNames returns the registered gauge names in first-use order.
func (r *Recorder) GaugeNames() []string {
	return append([]string(nil), r.gaugeNames...)
}

// Means returns the per-window mean response times of non-empty windows.
func (r *Recorder) Means() []float64 { return r.lat.Means() }

// VariabilityCV returns the coefficient of variation of per-window means —
// the paper's Figure 1 "performance variability" in one number.
func (r *Recorder) VariabilityCV() float64 { return r.lat.VariabilityCV() }

// Sparkline renders the per-window means as a compact ASCII profile.
func (r *Recorder) Sparkline(width int) string { return r.lat.Sparkline(width) }

// totalWindows is the row count CSV export covers: latency and gauge series
// may extend past each other, so take the union.
func (r *Recorder) totalWindows() int {
	n := r.lat.Windows()
	for _, g := range r.gauges {
		if len(g.vals) > n {
			n = len(g.vals)
		}
	}
	return n
}

// WriteCSV emits the series as CSV rows, one per window (empty interior
// windows included so the time axis stays uniform). label, when non-empty,
// is prepended as a "run" column — multi-run experiments (Fig. 1's three
// schemes) share one file this way. Set header to write the column header
// first. Columns:
//
//	[run,]window,start_ms,samples,mean_us,max_us[,p99_us][,<gauge>...]
//
// Gauge columns are blank for windows without an observation.
func (r *Recorder) WriteCSV(w io.Writer, label string, header bool) error {
	names := append([]string(nil), r.gaugeNames...)
	sort.Strings(names)
	if header {
		cols := []string{"window", "start_ms", "samples", "mean_us", "max_us"}
		if r.quantiles {
			cols = append(cols, "p99_us")
		}
		cols = append(cols, names...)
		if label != "" {
			cols = append([]string{"run"}, cols...)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	n := r.totalWindows()
	for i := 0; i < n; i++ {
		var b strings.Builder
		if label != "" {
			fmt.Fprintf(&b, "%s,", label)
		}
		fmt.Fprintf(&b, "%d,%.1f,%d,%.1f,%.1f",
			i, float64(int64(i)*r.windowNs)/1e6, r.Count(i), r.Mean(i)/1e3, float64(r.Max(i))/1e3)
		if r.quantiles {
			fmt.Fprintf(&b, ",%.1f", float64(r.P99(i))/1e3)
		}
		for _, name := range names {
			if v, ok := r.Gauge(name, i); ok {
				fmt.Fprintf(&b, ",%g", v)
			} else {
				b.WriteString(",")
			}
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
