package metrics

import (
	"fmt"
	"math"
	"strings"
)

// TimeSeries buckets samples into fixed wall-clock windows and reports a
// per-window summary. The simulator uses it to reproduce the paper's
// Figure 1 view: how response times oscillate as individual SSDs enter and
// leave garbage collection, and how coordination (GGC) or steering changes
// the oscillation.
type TimeSeries struct {
	window  int64 // ns per bucket
	buckets []Welford
	maxs    []int64
}

// NewTimeSeries creates a series with the given window length in
// nanoseconds (must be positive).
func NewTimeSeries(windowNs int64) *TimeSeries {
	if windowNs <= 0 {
		panic("metrics: non-positive window")
	}
	return &TimeSeries{window: windowNs}
}

// Observe records a sample value observed at time t (ns).
func (s *TimeSeries) Observe(t, value int64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / s.window)
	for len(s.buckets) <= idx {
		s.buckets = append(s.buckets, Welford{})
		s.maxs = append(s.maxs, 0)
	}
	s.buckets[idx].Observe(float64(value))
	if value > s.maxs[idx] {
		s.maxs[idx] = value
	}
}

// Windows returns the number of buckets (including empty interior ones).
func (s *TimeSeries) Windows() int { return len(s.buckets) }

// WindowNs returns the bucket width.
func (s *TimeSeries) WindowNs() int64 { return s.window }

// Mean returns the mean of window i (0 when the window saw no samples).
func (s *TimeSeries) Mean(i int) float64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return s.buckets[i].Mean()
}

// Count returns the number of samples in window i.
func (s *TimeSeries) Count(i int) uint64 {
	if i < 0 || i >= len(s.buckets) {
		return 0
	}
	return s.buckets[i].Count()
}

// Max returns the largest sample in window i.
func (s *TimeSeries) Max(i int) int64 {
	if i < 0 || i >= len(s.maxs) {
		return 0
	}
	return s.maxs[i]
}

// Means returns the per-window means for non-empty windows, in order.
func (s *TimeSeries) Means() []float64 {
	out := make([]float64, 0, len(s.buckets))
	for i := range s.buckets {
		if s.buckets[i].Count() > 0 {
			out = append(out, s.buckets[i].Mean())
		}
	}
	return out
}

// VariabilityCV returns the coefficient of variation (stddev/mean) of the
// per-window means — the paper's "serious performance variability" in one
// number. Zero when fewer than two windows have samples.
func (s *TimeSeries) VariabilityCV() float64 {
	means := s.Means()
	if len(means) < 2 {
		return 0
	}
	var sum float64
	for _, m := range means {
		sum += m
	}
	mean := sum / float64(len(means))
	if mean == 0 {
		return 0
	}
	var m2 float64
	for _, m := range means {
		m2 += (m - mean) * (m - mean)
	}
	return math.Sqrt(m2/float64(len(means))) / mean
}

// Sparkline renders the per-window means as a compact ASCII profile, the
// Figure 1 look: peaks are GC interference windows.
func (s *TimeSeries) Sparkline(width int) string {
	means := s.Means()
	if len(means) == 0 {
		return ""
	}
	if width > 0 && len(means) > width {
		// Downsample by averaging consecutive groups.
		group := (len(means) + width - 1) / width
		var out []float64
		for i := 0; i < len(means); i += group {
			end := i + group
			if end > len(means) {
				end = len(means)
			}
			var g float64
			for _, m := range means[i:end] {
				g += m
			}
			out = append(out, g/float64(end-i))
		}
		means = out
	}
	var max float64
	for _, m := range means {
		if m > max {
			max = m
		}
	}
	if max == 0 {
		return strings.Repeat("▁", len(means))
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, m := range means {
		idx := int(m / max * float64(len(ramp)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// String summarizes the series.
func (s *TimeSeries) String() string {
	return fmt.Sprintf("windows=%d cv=%.3f", len(s.Means()), s.VariabilityCV())
}
