package metrics

import (
	"strings"
	"testing"
)

const recWindow = int64(100e6) // 100 ms in ns

func TestRecorderWindowsAndMeans(t *testing.T) {
	r := NewRecorder(recWindow, false)
	r.Observe(0, 1000)
	r.Observe(recWindow-1, 3000)  // same window
	r.Observe(2*recWindow+5, 500) // window 2; window 1 left empty
	if got := r.Windows(); got != 3 {
		t.Fatalf("Windows() = %d, want 3", got)
	}
	if got := r.Count(0); got != 2 {
		t.Errorf("Count(0) = %d, want 2", got)
	}
	if got := r.Mean(0); got != 2000 {
		t.Errorf("Mean(0) = %g, want 2000", got)
	}
	if got := r.Max(0); got != 3000 {
		t.Errorf("Max(0) = %d, want 3000", got)
	}
	if got := r.Count(1); got != 0 {
		t.Errorf("Count(1) = %d, want 0 (empty interior window)", got)
	}
	if got := r.Mean(2); got != 500 {
		t.Errorf("Mean(2) = %g, want 500", got)
	}
}

func TestRecorderQuantilesOptIn(t *testing.T) {
	off := NewRecorder(recWindow, false)
	on := NewRecorder(recWindow, true)
	for i := 0; i < 99; i++ {
		off.Observe(10, 1)
		on.Observe(10, 1)
	}
	off.Observe(10, 15)
	on.Observe(10, 15)
	if got := off.P99(0); got != 0 {
		t.Errorf("disabled P99 = %d, want 0", got)
	}
	if got := on.P99(0); got != 1 {
		t.Errorf("P99 of 99x1 + 1x15 = %d, want 1 (nearest rank)", got)
	}
	if got := on.P99(5); got != 0 {
		t.Errorf("P99 of out-of-range window = %d, want 0", got)
	}
}

func TestRecorderGauges(t *testing.T) {
	r := NewRecorder(recWindow, false)
	r.SetGauge("gc_active", 10, 1)
	r.SetGauge("gc_active", recWindow/2, 3) // same window: last wins
	r.SetGauge("queue", 3*recWindow+1, 42)
	if v, ok := r.Gauge("gc_active", 0); !ok || v != 3 {
		t.Errorf("Gauge(gc_active, 0) = %g, %v; want 3, true", v, ok)
	}
	if _, ok := r.Gauge("gc_active", 1); ok {
		t.Error("Gauge(gc_active, 1) reports a value for an empty window")
	}
	if v, ok := r.Gauge("queue", 3); !ok || v != 42 {
		t.Errorf("Gauge(queue, 3) = %g, %v; want 42, true", v, ok)
	}
	names := r.GaugeNames()
	if len(names) != 2 || names[0] != "gc_active" || names[1] != "queue" {
		t.Errorf("GaugeNames() = %v, want [gc_active queue] (first-use order)", names)
	}
}

func TestRecorderWriteCSV(t *testing.T) {
	r := NewRecorder(recWindow, true)
	r.Observe(0, 2000)
	r.Observe(recWindow+1, 4000)
	r.SetGauge("gc_active", 5, 2)
	var b strings.Builder
	if err := r.WriteCSV(&b, "LGC", true); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2 windows:\n%s", len(lines), b.String())
	}
	if lines[0] != "run,window,start_ms,samples,mean_us,max_us,p99_us,gc_active" {
		t.Errorf("header = %q", lines[0])
	}
	row0 := strings.Split(lines[1], ",")
	if row0[0] != "LGC" || row0[1] != "0" || row0[3] != "1" {
		t.Errorf("row 0 = %q", lines[1])
	}
	if row0[7] != "2" {
		t.Errorf("row 0 gauge cell = %q, want 2", row0[7])
	}
	row1 := strings.Split(lines[2], ",")
	if row1[7] != "" {
		t.Errorf("row 1 gauge cell = %q, want blank (no observation)", row1[7])
	}

	// Appending a second labelled block without a header keeps one shared
	// header per file, the Fig. 1 multi-scheme layout.
	if err := r.WriteCSV(&b, "GGC", false); err != nil {
		t.Fatalf("WriteCSV(no header): %v", err)
	}
	all := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(all) != 5 {
		t.Fatalf("after second block: %d lines, want 5", len(all))
	}
	if !strings.HasPrefix(all[3], "GGC,0,") {
		t.Errorf("second block first row = %q", all[3])
	}
}

func TestRecorderUnlabelledCSVOmitsRunColumn(t *testing.T) {
	r := NewRecorder(recWindow, false)
	r.Observe(0, 1000)
	var b strings.Builder
	if err := r.WriteCSV(&b, "", true); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if lines[0] != "window,start_ms,samples,mean_us,max_us" {
		t.Errorf("header = %q", lines[0])
	}
}
