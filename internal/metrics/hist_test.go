package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile must be 0")
	}
}

func TestHistSingleSample(t *testing.T) {
	var h Hist
	h.Observe(12345)
	if h.Count() != 1 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 12345 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 12345 || h.Max() != 12345 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 12345 {
			t.Errorf("Quantile(%v) = %d, want 12345", q, got)
		}
	}
}

func TestHistNegativeClampsToZero(t *testing.T) {
	var h Hist
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample not clamped: min=%d max=%d", h.Min(), h.Max())
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// bucketLow(bucketOf(v)) must never exceed v, and the bucket's relative
	// width must stay under ~7%.
	for _, v := range []int64{0, 1, 15, 16, 17, 100, 1000, 4096, 50_000, 1_000_000, 3_000_000_000} {
		idx := bucketOf(v)
		lo := bucketLow(idx)
		if lo > v {
			t.Errorf("bucketLow(bucketOf(%d)) = %d > value", v, lo)
		}
		if v >= subBuckets {
			if rel := float64(v-lo) / float64(v); rel > 0.07 {
				t.Errorf("value %d: bucket floor %d relative error %.3f", v, lo, rel)
			}
		}
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 37 {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestQuantileAccuracyUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Hist
	var all []int64
	for i := 0; i < 100000; i++ {
		v := int64(rng.Intn(1_000_000))
		h.Observe(v)
		all = append(all, v)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := all[int(q*float64(len(all)))]
		got := h.Quantile(q)
		rel := math.Abs(float64(got-exact)) / float64(exact)
		if rel > 0.08 {
			t.Errorf("q=%v: got %d exact %d rel err %.3f", q, got, exact, rel)
		}
	}
}

// TestQuantileNearestRank pins the nearest-rank definition (the bucket of
// the ceil(q*n)-th smallest sample) with values < subBuckets, where the
// histogram is exact. The off-by-one this guards against: P99 of exactly
// 100 samples must be the 99th smallest, not the 100th — 99 fast samples
// and one outlier have a P99 equal to the fast value, not the outlier.
func TestQuantileNearestRank(t *testing.T) {
	cases := []struct {
		name string
		vals []int64
		q    float64
		want int64
	}{
		{"p99 of 99 fast + 1 outlier is fast", nil, 0.99, 1},
		{"median of odd count rounds up", []int64{1, 2, 3}, 0.5, 2},
		{"median of even count is lower middle", []int64{1, 2, 3, 4}, 0.5, 2},
		{"q just above a rank boundary advances", []int64{1, 2, 3, 4}, 0.76, 4},
		{"q exactly on a rank boundary does not", []int64{1, 2, 3, 4}, 0.75, 3},
		{"p90 of ten samples is the 9th", []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 0.9, 8},
	}
	cases[0].vals = append(make([]int64, 0, 100), 15)
	for i := 0; i < 99; i++ {
		cases[0].vals = append(cases[0].vals, 1)
	}
	for _, tc := range cases {
		var h Hist
		for _, v := range tc.vals {
			h.Observe(v)
		}
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestQuantileExtremesAreExact(t *testing.T) {
	var h Hist
	h.Observe(3)
	h.Observe(1_000_000)
	h.Observe(500)
	if h.Quantile(0) != 3 {
		t.Errorf("Quantile(0) = %d, want exact min 3", h.Quantile(0))
	}
	if h.Quantile(1) != 1_000_000 {
		t.Errorf("Quantile(1) = %d, want exact max", h.Quantile(1))
	}
}

func TestHistMeanStddev(t *testing.T) {
	var h Hist
	for _, v := range []int64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if h.Mean() != 5 {
		t.Fatalf("Mean = %v, want 5", h.Mean())
	}
	if math.Abs(h.Stddev()-2) > 1e-9 {
		t.Fatalf("Stddev = %v, want 2", h.Stddev())
	}
}

// TestHistStddevLargeNearEqualSamples pins the catastrophic-cancellation
// fix: millions of ns-scale samples a hair apart. The old sumSq/n - mean²
// form pushes Σv² to ~4e24, where float64 resolves only multiples of ~5e8 —
// the subtraction then clamped a genuine stddev of 1000 to 0. The shifted
// accumulation recovers it to full precision.
func TestHistStddevLargeNearEqualSamples(t *testing.T) {
	var h Hist
	const n = 2_000_000
	const base = int64(1_500_000_000) // 1.5 s in ns
	for i := 0; i < n; i++ {
		// Alternate base±1000: mean = base, population stddev = 1000 exactly.
		if i%2 == 0 {
			h.Observe(base - 1000)
		} else {
			h.Observe(base + 1000)
		}
	}
	if got := h.Mean(); math.Abs(got-float64(base)) > 1e-3 {
		t.Fatalf("Mean = %v, want %d", got, base)
	}
	if got := h.Stddev(); math.Abs(got-1000) > 1e-3 {
		t.Fatalf("Stddev = %v, want 1000 (catastrophic cancellation?)", got)
	}
}

// TestHistMergeStddevLargeSamples checks that Merge preserves the shifted
// second moment across histograms anchored at different shifts.
func TestHistMergeStddevLargeSamples(t *testing.T) {
	var a, b, whole Hist
	const base = int64(2_000_000_000)
	for i := 0; i < 1_000_000; i++ {
		lo, hi := base-500, base+500
		whole.Observe(lo)
		whole.Observe(hi)
		a.Observe(lo) // a anchors at base-500
		b.Observe(hi) // b anchors at base+500
	}
	a.Merge(&b)
	if got, want := a.Stddev(), whole.Stddev(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("merged Stddev = %v, want %v", got, want)
	}
	if math.Abs(a.Stddev()-500) > 1e-3 {
		t.Fatalf("merged Stddev = %v, want 500", a.Stddev())
	}
	if math.Abs(a.Sum()-whole.Sum()) > 1 {
		t.Fatalf("merged Sum = %v, want %v", a.Sum(), whole.Sum())
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, whole Hist
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		v := int64(rng.Intn(100000))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d, want %d", a.Count(), whole.Count())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatalf("merged min/max %d/%d, want %d/%d", a.Min(), a.Max(), whole.Min(), whole.Max())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-6 {
		t.Fatalf("merged mean %v, want %v", a.Mean(), whole.Mean())
	}
	if a.Quantile(0.9) != whole.Quantile(0.9) {
		t.Fatalf("merged p90 %d, want %d", a.Quantile(0.9), whole.Quantile(0.9))
	}
}

func TestHistMergeEmpty(t *testing.T) {
	var a, b Hist
	a.Observe(10)
	a.Merge(&b) // merging empty is a no-op
	if a.Count() != 1 {
		t.Fatal("merge of empty changed count")
	}
	b.Merge(&a)
	if b.Count() != 1 || b.Min() != 10 {
		t.Fatal("merge into empty lost state")
	}
}

func TestHistReset(t *testing.T) {
	var h Hist
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestSummaryString(t *testing.T) {
	var h Hist
	h.Observe(1000)
	s := h.Summarize().String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "mean=1.0µs") {
		t.Fatalf("Summary string %q missing fields", s)
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Hist
		for _, v := range vals {
			h.Observe(int64(v))
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev || cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Add("reads", 3)
	c.Add("writes", 1)
	c.Add("reads", 2)
	if c.Get("reads") != 5 || c.Get("writes") != 1 {
		t.Fatalf("counters wrong: %v", c)
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter must be 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Fatalf("Names() = %v", names)
	}
	d := NewCounterSet()
	d.Add("reads", 10)
	d.Add("erases", 7)
	c.Merge(d)
	if c.Get("reads") != 15 || c.Get("erases") != 7 {
		t.Fatalf("after merge: %v", c)
	}
	if s := c.String(); !strings.Contains(s, "reads=15") {
		t.Fatalf("String() = %q", s)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(v)
	}
	if w.Count() != 8 || w.Mean() != 5 {
		t.Fatalf("mean = %v, n = %d", w.Mean(), w.Count())
	}
	if math.Abs(w.Stddev()-2) > 1e-12 {
		t.Fatalf("stddev = %v, want 2", w.Stddev())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole, a, b Welford
	for i := 0; i < 5000; i++ {
		v := rng.NormFloat64()*10 + 100
		whole.Observe(v)
		if i < 1700 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("count %d != %d", a.Count(), whole.Count())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("mean %v != %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-6 {
		t.Fatalf("variance %v != %v", a.Variance(), whole.Variance())
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(&b)
	if a.Count() != 0 {
		t.Fatal("merging two empties must stay empty")
	}
	b.Observe(5)
	a.Merge(&b)
	if a.Count() != 1 || a.Mean() != 5 {
		t.Fatal("merge into empty lost data")
	}
}

func BenchmarkHistObserve(b *testing.B) {
	var h Hist
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i%1000) * 997)
	}
}

func BenchmarkHistQuantile(b *testing.B) {
	var h Hist
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		h.Observe(int64(rng.Intn(10_000_000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
