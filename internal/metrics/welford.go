package metrics

import "math"

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. It is used where only the first two
// moments are needed and a histogram would be wasteful (for example
// per-device queue depths sampled every event).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Observe records one sample.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another accumulator into w (Chan et al. parallel variant).
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
}
