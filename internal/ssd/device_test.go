package ssd

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gcsteering/internal/flash"
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

func testConfig() Config {
	return Config{
		Geometry: flash.Geometry{
			PageSize:      4096,
			PagesPerBlock: 32,
			Blocks:        64,
			Channels:      4,
			OverProvision: 0.20,
		},
		Latency:     DefaultLatency(),
		GCLowWater:  2,
		GCHighWater: 6,
	}
}

func newDevice(t *testing.T) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	d, err := New(0, eng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return eng, d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := testConfig()
	c.GCHighWater = c.GCLowWater // high must exceed low
	if err := c.Validate(); err == nil {
		t.Fatal("equal watermarks accepted")
	}
	c = testConfig()
	c.Latency.PageRead = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero read latency accepted")
	}
}

func TestSinglePageReadLatency(t *testing.T) {
	eng, d := newDevice(t)
	var doneAt sim.Time
	d.Read(0, 0, 1, func(now sim.Time) { doneAt = now })
	eng.Run()
	want := DefaultLatency().PageRead + DefaultLatency().BusTransfer
	if doneAt != want {
		t.Fatalf("read finished at %v, want %v", doneAt, want)
	}
}

func TestSinglePageWriteLatency(t *testing.T) {
	eng, d := newDevice(t)
	var doneAt sim.Time
	d.Write(0, 0, 1, func(now sim.Time) { doneAt = now })
	eng.Run()
	want := DefaultLatency().PageProgram + DefaultLatency().BusTransfer
	if doneAt != want {
		t.Fatalf("write finished at %v, want %v", doneAt, want)
	}
}

func TestParallelChannelsOverlap(t *testing.T) {
	eng, d := newDevice(t)
	// A multi-page write stripes across channels, so 4 pages on a 4-channel
	// device take one program, not four.
	var doneAt sim.Time
	d.Write(0, 0, 4, func(now sim.Time) { doneAt = now })
	eng.Run()
	perPage := DefaultLatency().PageProgram + DefaultLatency().BusTransfer
	if doneAt != perPage {
		t.Fatalf("4-page striped write finished at %v, want %v (parallel)", doneAt, perPage)
	}
}

func TestQueueingOnSameChannel(t *testing.T) {
	eng, d := newDevice(t)
	// Two reads of the same (unmapped) page land on the same channel and
	// must serialize.
	var first, second sim.Time
	d.Read(0, 0, 1, func(now sim.Time) { first = now })
	d.Read(0, 0, 1, func(now sim.Time) { second = now })
	eng.Run()
	perPage := DefaultLatency().PageRead + DefaultLatency().BusTransfer
	if first != perPage || second != 2*perPage {
		t.Fatalf("reads finished at %v and %v, want %v and %v", first, second, perPage, 2*perPage)
	}
}

func TestRangeErrors(t *testing.T) {
	_, d := newDevice(t)
	for _, tc := range []struct{ lpn, pages int }{
		{-1, 1}, {0, 0}, {0, -1}, {d.LogicalPages(), 1}, {d.LogicalPages() - 1, 2},
	} {
		if err := d.Read(0, tc.lpn, tc.pages, nil); err == nil {
			t.Errorf("Read(%d,%d) did not error", tc.lpn, tc.pages)
		}
		if err := d.Write(0, tc.lpn, tc.pages, nil); err == nil {
			t.Errorf("Write(%d,%d) did not error", tc.lpn, tc.pages)
		}
		if err := d.Trim(tc.lpn, tc.pages); err == nil {
			t.Errorf("Trim(%d,%d) did not error", tc.lpn, tc.pages)
		}
	}
}

func TestPrefillReachesSteadyState(t *testing.T) {
	_, d := newDevice(t)
	d.Prefill(rand.New(rand.NewSource(1)), 0.5, d.LogicalPages())
	if d.FreeBlocks() > d.Config().GCHighWater {
		t.Fatalf("FreeBlocks = %d after prefill, want <= high watermark %d",
			d.FreeBlocks(), d.Config().GCHighWater)
	}
	if d.Stats() != (Stats{}) {
		t.Fatalf("prefill leaked into stats: %+v", d.Stats())
	}
	if d.Erases() == 0 {
		t.Fatal("prefill with 50% overwrite should have forced untimed GC")
	}
}

// driveToGC writes random pages until a GC episode begins, returning the
// trigger time.
func driveToGC(t *testing.T, eng *sim.Engine, d *Device, rng *rand.Rand) sim.Time {
	t.Helper()
	lp := d.LogicalPages()
	step := 100 * sim.Microsecond
	for i := 0; i < 200000; i++ {
		now := eng.Now()
		d.Write(now, rng.Intn(lp), 1, nil)
		if d.InGC(now) {
			return now
		}
		eng.RunFor(step)
	}
	t.Fatal("never reached GC")
	return 0
}

func TestGCBlocksUserIO(t *testing.T) {
	eng, d := newDevice(t)
	d.Prefill(rand.New(rand.NewSource(2)), 0.5, d.LogicalPages())
	rng := rand.New(rand.NewSource(3))
	now := driveToGC(t, eng, d, rng)
	if !d.InGC(now) {
		t.Fatal("expected device in GC")
	}
	gcEnd := d.GCEndsAt()
	if gcEnd <= now {
		t.Fatalf("GC end %v not after trigger %v", gcEnd, now)
	}
	// A read issued during the episode should finish far later than the
	// raw page-read time: it queues behind GC channel work.
	var doneAt sim.Time
	d.Read(now, 0, 1, func(t sim.Time) { doneAt = t })
	eng.Run()
	raw := DefaultLatency().PageRead + DefaultLatency().BusTransfer
	if doneAt-now <= raw {
		t.Fatalf("read during GC finished in %v, expected queueing behind GC (> %v)",
			doneAt-now, raw)
	}
	if d.Stats().GCEpisodes == 0 {
		t.Fatal("GC episode not counted")
	}
}

func TestGCHooksFire(t *testing.T) {
	eng, d := newDevice(t)
	d.Prefill(rand.New(rand.NewSource(4)), 0.5, d.LogicalPages())
	var starts, ends int
	var startAt, endAt sim.Time
	d.OnGCStart = func(now sim.Time, dev *Device) {
		starts++
		startAt = now
		if dev != d {
			t.Error("hook passed wrong device")
		}
	}
	d.OnGCEnd = func(now sim.Time, dev *Device) { ends++; endAt = now }
	rng := rand.New(rand.NewSource(5))
	driveToGC(t, eng, d, rng)
	eng.Run()
	if starts == 0 || ends == 0 {
		t.Fatalf("hooks: starts=%d ends=%d", starts, ends)
	}
	if endAt <= startAt {
		t.Fatalf("GC end %v not after start %v", endAt, startAt)
	}
}

func TestForceGCWorksAndIsIdempotentDuringEpisode(t *testing.T) {
	eng, d := newDevice(t)
	d.Prefill(rand.New(rand.NewSource(6)), 0.5, d.LogicalPages())
	now := eng.Now()
	if d.InGC(now) {
		t.Fatal("precondition: not in GC")
	}
	d.ForceGC(now)
	if !d.InGC(now) {
		t.Fatal("ForceGC did not start an episode (prefill guarantees garbage)")
	}
	episodes := d.Stats().GCEpisodes
	d.ForceGC(now) // second call during the episode must be a no-op
	if d.Stats().GCEpisodes != episodes {
		t.Fatal("ForceGC started a second overlapping episode")
	}
	if d.Stats().ForcedGCs != 1 {
		t.Fatalf("ForcedGCs = %d, want 1", d.Stats().ForcedGCs)
	}
	eng.Run()
}

// TestMidEpisodeWriteExtendsEpisode is the regression test for the
// GC-accounting fix: a write arriving during a running episode that drains
// the free pool again must EXTEND the episode (GCExtensions) rather than
// start a new one — GCEpisodes must not grow, OnGCStart must not re-fire
// (under GGC a re-fire launches a redundant global forced round), and the
// episode-end hook must fire exactly once, at the final extended end.
func TestMidEpisodeWriteExtendsEpisode(t *testing.T) {
	eng, d := newDevice(t)
	d.Prefill(rand.New(rand.NewSource(9)), 0.5, d.LogicalPages())
	var buf bytes.Buffer
	d.Trace = obs.New(&buf)
	var starts, ends int
	var endAt sim.Time
	d.OnGCStart = func(now sim.Time, dev *Device) { starts++ }
	d.OnGCEnd = func(now sim.Time, dev *Device) { ends++; endAt = now }
	rng := rand.New(rand.NewSource(10))
	now := driveToGC(t, eng, d, rng)
	if got := d.Stats().GCEpisodes; got != 1 {
		t.Fatalf("GCEpisodes = %d after first trigger, want 1", got)
	}
	endBefore := d.GCEndsAt()
	// Keep writing at the same instant: the episode is still running, so
	// draining the free pool again must fold new work into it.
	lp := d.LogicalPages()
	for i := 0; i < 100000 && d.Stats().GCExtensions == 0; i++ {
		d.Write(now, rng.Intn(lp), 1, nil)
	}
	if d.Stats().GCExtensions == 0 {
		t.Fatal("mid-episode writes never extended the episode")
	}
	if got := d.Stats().GCEpisodes; got != 1 {
		t.Fatalf("GCEpisodes = %d after extension, want 1 (extension restarted the episode)", got)
	}
	if starts != 1 {
		t.Fatalf("OnGCStart fired %d times, want 1 (re-fire would launch a redundant GGC round)", starts)
	}
	if got := d.GCEndsAt(); got < endBefore {
		t.Fatalf("episode end moved backwards: %v -> %v", endBefore, got)
	}
	eng.Run()
	if ends != 1 {
		t.Fatalf("OnGCEnd fired %d times, want exactly 1", ends)
	}
	if endAt != d.GCEndsAt() {
		t.Fatalf("OnGCEnd fired at %v, want final episode end %v", endAt, d.GCEndsAt())
	}
	if err := d.Trace.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ev":"gc-extend"`) {
		t.Error("trace missing gc-extend event")
	}
	if strings.Count(out, `"ev":"gc-start"`) != 1 {
		t.Errorf("trace gc-start count = %d, want 1", strings.Count(out, `"ev":"gc-start"`))
	}
	if strings.Count(out, `"ev":"gc-end"`) != 1 {
		t.Errorf("trace gc-end count = %d, want 1", strings.Count(out, `"ev":"gc-end"`))
	}
}

func TestForceGCOnCleanDeviceIsNoop(t *testing.T) {
	eng, d := newDevice(t)
	// No data at all: nothing collectible.
	d.ForceGC(eng.Now())
	if d.InGC(eng.Now()) || d.Stats().GCEpisodes != 0 {
		t.Fatal("ForceGC on a clean device should do nothing")
	}
}

func TestGCRestoresFreeBlocks(t *testing.T) {
	eng, d := newDevice(t)
	d.Prefill(rand.New(rand.NewSource(7)), 0.5, d.LogicalPages())
	rng := rand.New(rand.NewSource(8))
	driveToGC(t, eng, d, rng)
	// Logical GC applies instantly, so free blocks are restored at trigger.
	if d.FreeBlocks() < d.Config().GCHighWater {
		t.Fatalf("FreeBlocks = %d right after trigger, want >= %d",
			d.FreeBlocks(), d.Config().GCHighWater)
	}
}

func TestBacklogReporting(t *testing.T) {
	eng, d := newDevice(t)
	d.Write(0, 0, 1, func(sim.Time) {})
	if d.MaxBacklog(0) == 0 {
		t.Fatal("expected nonzero backlog right after submit")
	}
	eng.Run() // the completion event advances the clock past the backlog
	if d.MaxBacklog(eng.Now()) != 0 {
		t.Fatal("backlog should drain to zero")
	}
}

func TestStatsAccumulate(t *testing.T) {
	eng, d := newDevice(t)
	d.Read(0, 0, 3, nil)
	d.Write(0, 10, 2, nil)
	eng.Run()
	s := d.Stats()
	if s.ReadOps != 1 || s.PagesRead != 3 || s.WriteOps != 1 || s.PagesWritten != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BusyTime == 0 {
		t.Fatal("BusyTime not accounted")
	}
}

func BenchmarkDeviceRandomWrite(b *testing.B) {
	eng := sim.NewEngine()
	d, err := New(0, eng, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	d.Prefill(rand.New(rand.NewSource(1)), 0.5, d.LogicalPages())
	rng := rand.New(rand.NewSource(2))
	lp := d.LogicalPages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(eng.Now(), rng.Intn(lp), 1, nil)
		eng.RunFor(50 * sim.Microsecond)
	}
	b.StopTimer()
	eng.Run()
	b.ReportMetric(float64(d.Stats().GCEpisodes), "gc-episodes")
}
