// Package ssd provides the timed model of one flash SSD: it turns the
// logical decisions of the FTL (internal/flash) into occupancy of parallel
// flash channels on the simulation clock, including the garbage-collection
// episodes whose interference with user I/O is the subject of the paper.
//
// The queueing model is deliberately simple and deterministic: each channel
// is a FIFO server with a next-free timestamp. An operation submitted at
// time t on channel c starts at max(t, nextFree[c]) and holds the channel
// for its service time. Garbage collection injects its page moves and block
// erases into the same queues, so user requests that arrive while a device
// is collecting wait behind the GC work — exactly the contention
// GC-Steering removes by steering requests elsewhere.
package ssd

import (
	"fmt"
	"math/rand"

	"gcsteering/internal/flash"
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

// LatencyModel holds the flash timing parameters. Defaults follow the
// paper's §I: an erase is an order of magnitude slower than a program,
// which is an order of magnitude slower than a read.
type LatencyModel struct {
	PageRead    sim.Time // flash array read of one page
	PageProgram sim.Time // program of one page
	BlockErase  sim.Time // erase of one block
	BusTransfer sim.Time // channel bus transfer of one page
}

// DefaultLatency returns the default flash timing.
func DefaultLatency() LatencyModel {
	return LatencyModel{
		PageRead:    50 * sim.Microsecond,
		PageProgram: 500 * sim.Microsecond,
		BlockErase:  3 * sim.Millisecond,
		BusTransfer: 10 * sim.Microsecond,
	}
}

// Config configures one device.
type Config struct {
	Geometry flash.Geometry
	Latency  LatencyModel
	// GCLowWater triggers garbage collection when free blocks drop to or
	// below it. GCHighWater is the free-block target an episode restores.
	// Small (high-low) gaps give frequent short GC pauses; large gaps give
	// rare long pauses.
	GCLowWater  int
	GCHighWater int
	// ForcedGCVictims is the minimum number of blocks a ForceGC episode
	// collects even when free space is plentiful (GGC forces devices to
	// collect "no matter how much free space is available in them").
	// Defaults to 2 when zero.
	ForcedGCVictims int
	// GCOverhead is the fixed cost of entering a GC episode (FTL metadata
	// scans, internal pipeline drain) charged to every channel at episode
	// start, independent of how much data the episode moves. It is what
	// makes frequent forced invocations expensive.
	GCOverhead sim.Time
}

// DefaultConfig returns a device configuration with DefaultGeometry,
// DefaultLatency, and watermarks sized to the channel count (one spare
// block per channel low, three per channel high).
func DefaultConfig() Config {
	g := flash.DefaultGeometry()
	return Config{
		Geometry:    g,
		Latency:     DefaultLatency(),
		GCLowWater:  g.Channels,
		GCHighWater: 2 * g.Channels,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	if c.GCLowWater <= 0 || c.GCHighWater <= c.GCLowWater {
		return fmt.Errorf("ssd: watermarks low=%d high=%d invalid", c.GCLowWater, c.GCHighWater)
	}
	if c.Latency.PageRead <= 0 || c.Latency.PageProgram <= 0 || c.Latency.BlockErase <= 0 {
		return fmt.Errorf("ssd: latencies must be positive: %+v", c.Latency)
	}
	return nil
}

// Stats aggregates a device's cumulative activity.
type Stats struct {
	ReadOps      int64
	WriteOps     int64
	PagesRead    int64
	PagesWritten int64
	// GCEpisodes counts distinct collection episodes (a contiguous in-GC
	// window). GCExtensions counts additional collection work folded into
	// an episode already running — writes arriving mid-episode can drain
	// the free pool below the low watermark again; that extends the window
	// rather than starting (and re-announcing) a new episode.
	GCEpisodes   int64
	GCExtensions int64
	GCPagesMoved int64
	Erases       int64
	ForcedGCs    int64
	BusyTime     sim.Time // total channel occupancy (sum over channels)
	GCBusyTime   sim.Time // channel occupancy consumed by GC work
	GCWallTime   sim.Time // wall-clock time the device spent in the GC state
}

// FaultHook lets a fault-injection layer perturb the device op path.
// internal/fault implements it; a nil hook means the device is healthy.
type FaultHook interface {
	// OpDelay returns extra service time charged to the channel occupancy
	// of one page op at now. It models fail-slow devices and transient
	// per-channel latency spikes; zero means no perturbation.
	OpDelay(now sim.Time, channel int, write bool) sim.Time
	// ReadError reports whether a host read of [lpn, lpn+pages) surfaces a
	// latent sector error (unrecoverable read error) at now.
	ReadError(now sim.Time, lpn, pages int) bool
}

// ScrubHook is the optional FaultHook extension carrying persistent media
// state: latent sector errors and silent corruption that stay put until an
// explicit repair rewrites the range from redundancy. The patrol scrubber
// and the checksum-verifying read path probe these; a hook that does not
// implement it simply has no persistent defects.
type ScrubHook interface {
	// LatentError reports whether [lpn, lpn+pages) holds a persistent
	// latent sector error. Unlike FaultHook.ReadError it must not consume
	// RNG state: probing is free of side effects.
	LatentError(lpn, pages int) bool
	// VerifyError reports whether checksum verification of [lpn, lpn+pages)
	// would fail — the range holds silently corrupted data.
	VerifyError(now sim.Time, lpn, pages int) bool
	// Repair clears persistent defects in [lpn, lpn+pages) and reports how
	// many latent and corrupt pages were cleared.
	Repair(lpn, pages int) (latent, corrupt int)
}

// SlowHook is the optional FaultHook extension exposing whether the device
// is currently inside a fail-slow window — the array's signal (alongside
// InGC) for hedging reads with a parity reconstruction.
type SlowHook interface {
	SlowAt(now sim.Time) bool
}

// TransientHook is the optional FaultHook extension for transient read
// errors: each attempt draws independently, so — unlike the persistent
// latent errors behind ReadError's URE path — a bounded retry of the same
// extent succeeds with high probability.
type TransientHook interface {
	TransientReadError(now sim.Time, lpn, pages int) bool
}

// Device is one simulated SSD attached to a simulation engine.
type Device struct {
	// ID identifies the device inside an array; used only for reporting.
	ID int

	cfg  Config
	eng  *sim.Engine
	ftl  *flash.FTL
	free []sim.Time // per-channel next-free instant

	gcEndAt sim.Time // device is "in GC" while Now < gcEndAt
	stats   Stats

	// OnGCStart and OnGCEnd, when non-nil, are invoked as GC episodes begin
	// and finish. The GGC policy and the GC-Steering redirector both hook
	// these. OnGCEnd fires via the event queue at the episode's end time.
	OnGCStart func(now sim.Time, d *Device)
	OnGCEnd   func(now sim.Time, d *Device)

	// OnOp, when non-nil, observes every host read and write as it is
	// issued. latency is the op's projected completion latency (channel
	// queueing included — what the client will experience); service is the
	// op's own channel time (page access, bus transfer, and any injected
	// fault delay, queueing excluded) — the unconfounded device-health
	// signal, since a backlog from bursty load inflates latency on a
	// perfectly healthy member. The call is synchronous with the issue and
	// schedules nothing, so an observer such as the health monitor costs no
	// engine events. GC-internal page moves are not reported.
	OnOp func(now sim.Time, d *Device, write bool, pages int, latency, service sim.Time)

	// Fault, when non-nil, perturbs the user op path (extra latency) and
	// decides latent sector errors. GC-internal page moves are not
	// perturbed: a slow or error-prone device hurts exactly the traffic the
	// array can observe.
	Fault FaultHook

	// Trace, when non-nil, receives GC lifecycle events (start, extend,
	// end). A nil tracer costs one nil check per episode.
	Trace *obs.Tracer

	// TrackPrograms records the channel-occupancy window of every host page
	// program so a power-loss cut can identify pages whose program was
	// interrupted mid-flight (a torn page persists garbage that fails its
	// CRC32-C on read). Off it costs one branch per written page; crash
	// runs enable it before replay.
	TrackPrograms bool
	programs      []programWindow
}

// programWindow is one tracked host page program: the logical page and the
// channel-occupancy interval during which a power cut tears it.
type programWindow struct {
	lpn        int
	start, end sim.Time
}

// New creates a device bound to engine eng.
func New(id int, eng *sim.Engine, cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ftl, err := flash.NewFTL(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	return &Device{
		ID:   id,
		cfg:  cfg,
		eng:  eng,
		ftl:  ftl,
		free: make([]sim.Time, cfg.Geometry.Channels),
	}, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// LogicalPages is the host-visible page count.
func (d *Device) LogicalPages() int { return d.cfg.Geometry.LogicalPages() }

// PageSize is the page size in bytes.
func (d *Device) PageSize() int { return d.cfg.Geometry.PageSize }

// Stats returns a snapshot of the cumulative statistics. Erase and GC page
// counts come from the FTL so they include prefill-time collections only if
// timed GC ran (prefill uses untimed logical collection and is excluded).
func (d *Device) Stats() Stats {
	s := d.stats
	return s
}

// WriteAmplification reports the FTL's cumulative write amplification.
func (d *Device) WriteAmplification() float64 { return d.ftl.WriteAmplification() }

// InGC reports whether a garbage-collection episode is in progress at now.
func (d *Device) InGC(now sim.Time) bool { return now < d.gcEndAt }

// GCEndsAt returns the end instant of the current episode (zero if idle).
func (d *Device) GCEndsAt() sim.Time { return d.gcEndAt }

// occupy reserves channel c for duration dur starting no earlier than now,
// returning the completion instant.
func (d *Device) occupy(now sim.Time, c int, dur sim.Time) sim.Time {
	start := now
	if d.free[c] > start {
		start = d.free[c]
	}
	end := start + dur
	d.free[c] = end
	d.stats.BusyTime += dur
	return end
}

// channelFor maps a logical page with no physical mapping to a channel so
// reads of never-written pages still cost one read.
func (d *Device) channelFor(lpn int) int {
	return lpn % d.cfg.Geometry.Channels
}

// faultDelay returns the fault hook's extra service time for one page op.
func (d *Device) faultDelay(now sim.Time, channel int, write bool) sim.Time {
	if d.Fault == nil {
		return 0
	}
	return d.Fault.OpDelay(now, channel, write)
}

// ReadError reports whether reading [lpn, lpn+pages) suffers an
// unrecoverable read error at now. It implements the RAID engine's Faulty
// interface; without a fault hook the device never errors.
func (d *Device) ReadError(now sim.Time, lpn, pages int) bool {
	return d.Fault != nil && d.Fault.ReadError(now, lpn, pages)
}

// VerifyError reports whether checksum verification of [lpn, lpn+pages)
// would fail at now — silent corruption a plain read cannot see. It
// implements the RAID engine's Verifier interface; false without a
// scrub-capable fault hook.
func (d *Device) VerifyError(now sim.Time, lpn, pages int) bool {
	h, ok := d.Fault.(ScrubHook)
	return ok && h.VerifyError(now, lpn, pages)
}

// LatentError reports, without consuming RNG state, whether [lpn,
// lpn+pages) holds a persistent latent sector error.
func (d *Device) LatentError(lpn, pages int) bool {
	h, ok := d.Fault.(ScrubHook)
	return ok && h.LatentError(lpn, pages)
}

// RepairPages clears persistent defects in [lpn, lpn+pages) — the media
// effect of rewriting the range from redundancy — and reports how many
// latent and corrupt pages were cleared.
func (d *Device) RepairPages(lpn, pages int) (latent, corrupt int) {
	if h, ok := d.Fault.(ScrubHook); ok {
		return h.Repair(lpn, pages)
	}
	return 0, 0
}

// Slow reports whether the device is inside a fail-slow window at now. It
// implements the RAID engine's SlowDisk interface; false without a
// slowdown-aware fault hook.
func (d *Device) Slow(now sim.Time) bool {
	h, ok := d.Fault.(SlowHook)
	return ok && h.SlowAt(now)
}

// TransientReadError reports whether this read attempt of [lpn, lpn+pages)
// fails transiently at now. Each call is an independent draw — retrying the
// same extent may succeed. It implements the RAID engine's TransientFaulty
// interface; false without a transient-aware fault hook.
func (d *Device) TransientReadError(now sim.Time, lpn, pages int) bool {
	h, ok := d.Fault.(TransientHook)
	return ok && h.TransientReadError(now, lpn, pages)
}

// Read services a read of pages logical pages starting at lpn. done, if
// non-nil, fires when the last page is delivered.
func (d *Device) Read(now sim.Time, lpn, pages int, done func(now sim.Time)) error {
	if err := d.checkRange(lpn, pages); err != nil {
		return err
	}
	d.stats.ReadOps++
	d.stats.PagesRead += int64(pages)
	finish := now
	var service sim.Time
	for i := 0; i < pages; i++ {
		ppn := d.ftl.Lookup(lpn + i)
		var c int
		if ppn >= 0 {
			c = d.cfg.Geometry.PageChannel(ppn)
		} else {
			c = d.channelFor(lpn + i)
		}
		dur := d.cfg.Latency.PageRead + d.cfg.Latency.BusTransfer + d.faultDelay(now, c, false)
		service += dur
		end := d.occupy(now, c, dur)
		if end > finish {
			finish = end
		}
	}
	if done != nil {
		d.eng.At(finish, done)
	}
	if d.OnOp != nil {
		d.OnOp(now, d, false, pages, finish-now, service)
	}
	return nil
}

// Write services a write of pages logical pages starting at lpn. done, if
// non-nil, fires when the last page is durable. Writes may trigger a
// garbage-collection episode whose channel time lands after this request's
// own programs.
func (d *Device) Write(now sim.Time, lpn, pages int, done func(now sim.Time)) error {
	if err := d.checkRange(lpn, pages); err != nil {
		return err
	}
	d.stats.WriteOps++
	d.stats.PagesWritten += int64(pages)
	finish := now
	var service sim.Time
	for i := 0; i < pages; i++ {
		ppn := d.ftl.Write(lpn + i)
		c := d.cfg.Geometry.PageChannel(ppn)
		dur := d.cfg.Latency.PageProgram + d.cfg.Latency.BusTransfer + d.faultDelay(now, c, true)
		service += dur
		end := d.occupy(now, c, dur)
		if d.TrackPrograms {
			d.trackProgram(now, lpn+i, end-dur, end)
		}
		if end > finish {
			finish = end
		}
	}
	if done != nil {
		d.eng.At(finish, done)
	}
	if d.OnOp != nil {
		d.OnOp(now, d, true, pages, finish-now, service)
	}
	if d.ftl.NeedGC(d.cfg.GCLowWater) {
		d.startGC(now, d.cfg.GCHighWater, 0, false)
	}
	return nil
}

// SetColdBoundary marks LPNs at or above boundary as cold-stream data
// (the staging region); the FTL keeps them in separate active blocks so
// long-lived staging copies do not pollute hot user-data blocks.
func (d *Device) SetColdBoundary(boundary int) { d.ftl.SetColdBoundary(boundary) }

// Trim drops mappings without consuming channel time (a metadata op).
func (d *Device) Trim(lpn, pages int) error {
	if err := d.checkRange(lpn, pages); err != nil {
		return err
	}
	for i := 0; i < pages; i++ {
		d.ftl.Trim(lpn + i)
	}
	return nil
}

// ForceGC starts a garbage-collection episode even when free space is above
// the low watermark. The GGC policy invokes it on every device of an array
// whenever any one device begins collecting. It is a no-op when an episode
// is already running or when no block has any invalid page.
func (d *Device) ForceGC(now sim.Time) {
	if d.InGC(now) {
		return
	}
	min := d.cfg.ForcedGCVictims
	if min <= 0 {
		min = 2
	}
	// A forced episode collects a fixed amount of garbage and stops: it
	// does not refill the free pool to the high watermark, so the device's
	// own natural GC schedule is unchanged. Under GC-frequent workloads
	// every device's natural trigger launches a global round, which is what
	// makes GGC's total GC count balloon (the paper's Fig. 7b).
	d.startGC(now, 0, min, true)
}

// startGC plans a collection episode and charges its time to the channels.
// It may be called while an episode is already running (writes arriving
// during a long episode can drain the free pool below the low watermark
// again); the new work then merely extends the in-GC window: it is counted
// as a GCExtension rather than a fresh GCEpisode, and OnGCStart is NOT
// re-fired — under GGC a re-fire would launch a redundant global forced
// round for what is physically the same episode.
//
// gcsvet: GC planning is episodic — its bookkeeping amortizes over the
// whole episode and the plan arena is reused (PR 7), so it is a cold
// boundary for hotalloc rather than part of the per-request budget. The
// bench gate still measures its real cost.
//
//gcsvet:cold
func (d *Device) startGC(now sim.Time, targetFree, minVictims int, forced bool) {
	plan := d.ftl.CollectUntil(targetFree, minVictims)
	if plan.Empty() {
		return
	}
	extend := d.InGC(now)
	lat := d.cfg.Latency
	busyBefore := d.stats.BusyTime
	endAll := now
	if d.cfg.GCOverhead > 0 {
		for c := 0; c < d.cfg.Geometry.Channels; c++ {
			if end := d.occupy(now, c, d.cfg.GCOverhead); end > endAll {
				endAll = end
			}
		}
	}
	for _, v := range plan.Victims {
		var victimEnd sim.Time
		for _, m := range plan.VictimMoves(v) {
			rEnd := d.occupy(now, d.cfg.Geometry.PageChannel(m.From), lat.PageRead+lat.BusTransfer)
			wEnd := d.occupy(now, d.cfg.Geometry.PageChannel(m.To), lat.PageProgram+lat.BusTransfer)
			if rEnd > victimEnd {
				victimEnd = rEnd
			}
			if wEnd > victimEnd {
				victimEnd = wEnd
			}
		}
		eEnd := d.occupy(now, v.Channel, lat.BlockErase)
		if eEnd > victimEnd {
			victimEnd = eEnd
		}
		if victimEnd > endAll {
			endAll = victimEnd
		}
	}
	d.stats.GCBusyTime += d.stats.BusyTime - busyBefore
	if wallStart := d.gcEndAt; endAll > wallStart {
		if wallStart < now {
			wallStart = now
		}
		d.stats.GCWallTime += endAll - wallStart
	}
	prevEnd := d.gcEndAt
	advanced := endAll > prevEnd
	if advanced {
		d.gcEndAt = endAll
	}
	d.stats.GCPagesMoved += int64(plan.PagesMoved)
	d.stats.Erases += int64(plan.Erases)
	if extend {
		// Same physical episode, more work: count it as an extension and do
		// NOT re-fire OnGCStart — under GGC that hook fans out a global
		// forced round, and re-firing it mid-episode would launch a
		// redundant one.
		d.stats.GCExtensions++
		if d.Trace.Enabled() {
			d.Trace.Emit(now, obs.Event{Kind: obs.KGCExtend, Dev: int32(d.ID),
				Page: -1, Pages: int32(plan.PagesMoved),
				Aux: int64(endAll), Aux2: boolInt(forced)})
		}
	} else {
		d.stats.GCEpisodes++
		if forced {
			d.stats.ForcedGCs++
		}
		if d.Trace.Enabled() {
			d.Trace.Emit(now, obs.Event{Kind: obs.KGCStart, Dev: int32(d.ID),
				Page: -1, Pages: int32(plan.PagesMoved),
				Aux: int64(endAll), Aux2: boolInt(forced)})
		}
		if d.OnGCStart != nil {
			d.OnGCStart(now, d)
		}
	}
	if advanced && (d.OnGCEnd != nil || d.Trace.Enabled()) {
		end := endAll
		d.eng.At(end, func(t sim.Time) {
			// Extensions move gcEndAt forward after this event is scheduled;
			// the guard suppresses the stale end notification so only the
			// event matching the episode's final end time fires the hook.
			if d.gcEndAt != end {
				return
			}
			if d.Trace.Enabled() {
				d.Trace.Emit(t, obs.Event{Kind: obs.KGCEnd, Dev: int32(d.ID), Page: -1})
			}
			if d.OnGCEnd != nil {
				d.OnGCEnd(t, d)
			}
		})
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// checkRange rejects malformed page ranges. Callers at the public API
// boundary return the error to the host; internal callers whose ranges are
// valid by construction treat it as an invariant violation.
func (d *Device) checkRange(lpn, pages int) error {
	if pages < 0 || lpn < 0 || lpn+pages > d.LogicalPages() {
		return fmt.Errorf("ssd: page range [%d,%d) outside device of %d pages",
			lpn, lpn+pages, d.LogicalPages())
	}
	if pages == 0 {
		return fmt.Errorf("ssd: zero-page request at lpn %d", lpn)
	}
	return nil
}

// Prefill performs the paper's "simulation warm-up": it writes the first
// usedPages logical pages once (so reads of live data hit mapped pages)
// and then randomly overwrites overwriteFrac of that span so block
// validity is uneven and steady-state garbage collection has genuine
// victims. Pages above usedPages (for example a reserved staging region)
// stay unmapped — they carry no host data yet. Passing usedPages <= 0
// leaves the device completely fresh. All of this is logical only — it
// consumes no simulated time and is excluded from the device statistics.
func (d *Device) Prefill(rng *rand.Rand, overwriteFrac float64, usedPages int) {
	if usedPages > d.LogicalPages() {
		usedPages = d.LogicalPages()
	}
	for lpn := 0; lpn < usedPages; lpn++ {
		d.ftl.Write(lpn)
	}
	n := int(overwriteFrac * float64(usedPages))
	for i := 0; i < n; i++ {
		d.ftl.Write(rng.Intn(usedPages))
		if d.ftl.NeedGC(d.cfg.GCLowWater) {
			d.ftl.CollectUntil(d.cfg.GCHighWater, 0)
		}
	}
	// Forget warm-up activity so experiments start from zero counters.
	d.stats = Stats{}
}

// FreeBlocks exposes the FTL free-block count (used by tests and by the
// harness to verify steady-state warm-up).
func (d *Device) FreeBlocks() int { return d.ftl.FreeBlocks() }

// Erases exposes the FTL cumulative erase count including warm-up.
func (d *Device) Erases() int64 { return d.ftl.Erases() }

// ChannelBacklog returns how far in the future channel c is booked.
func (d *Device) ChannelBacklog(now sim.Time, c int) sim.Time {
	if d.free[c] <= now {
		return 0
	}
	return d.free[c] - now
}

// MaxBacklog returns the largest channel backlog at now.
func (d *Device) MaxBacklog(now sim.Time) sim.Time {
	var m sim.Time
	for c := range d.free {
		if b := d.ChannelBacklog(now, c); b > m {
			m = b
		}
	}
	return m
}

// trackProgram appends one program window, pruning finished windows when
// the log doubles so the slice stays proportional to in-flight work.
func (d *Device) trackProgram(now sim.Time, lpn int, start, end sim.Time) {
	if len(d.programs) >= 64 && len(d.programs) == cap(d.programs) {
		live := d.programs[:0]
		for _, w := range d.programs {
			if w.end > now {
				live = append(live, w)
			}
		}
		d.programs = live
	}
	d.programs = append(d.programs, programWindow{lpn: lpn, start: start, end: end})
}

// TornPrograms returns the logical pages whose program window straddles the
// instant at — the pages a power cut at that instant tears. Requires
// TrackPrograms; the result is in program-issue order.
func (d *Device) TornPrograms(at sim.Time) []int {
	var torn []int
	for _, w := range d.programs {
		if w.start <= at && at < w.end {
			torn = append(torn, w.lpn)
		}
	}
	return torn
}

// Wear returns the maximum and mean per-block erase counts, the endurance
// view of GC activity (each block tolerates a limited number of erases).
func (d *Device) Wear() (max int, mean float64) {
	blocks := d.cfg.Geometry.Blocks
	total := 0
	for b := 0; b < blocks; b++ {
		ec := d.ftl.BlockEraseCount(b)
		total += ec
		if ec > max {
			max = ec
		}
	}
	return max, float64(total) / float64(blocks)
}
