package ssd

import (
	"math/rand"
	"testing"

	"gcsteering/internal/sim"
)

func TestGCOverheadChargedToAllChannels(t *testing.T) {
	run := func(overhead sim.Time) sim.Time {
		eng := sim.NewEngine()
		cfg := testConfig()
		cfg.GCOverhead = overhead
		d, err := New(0, eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.Prefill(rand.New(rand.NewSource(3)), 0.5, d.LogicalPages())
		d.ForceGC(0)
		if !d.InGC(0) {
			t.Fatal("forced GC did not start")
		}
		end := d.GCEndsAt()
		eng.Run()
		return end
	}
	base := run(0)
	withOverhead := run(10 * sim.Millisecond)
	if withOverhead < base+10*sim.Millisecond {
		t.Fatalf("episode end %v with overhead vs %v without; overhead not charged", withOverhead, base)
	}
}

func TestGCOverheadDelaysUserIO(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	cfg.GCOverhead = 20 * sim.Millisecond
	d, err := New(0, eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Prefill(rand.New(rand.NewSource(4)), 0.5, d.LogicalPages())
	d.ForceGC(0)
	var doneAt sim.Time
	d.Read(0, 0, 1, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt < 20*sim.Millisecond {
		t.Fatalf("read finished at %v; expected to queue behind the 20ms overhead", doneAt)
	}
}

func TestGCWallAndBusyTimeAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d, err := New(0, eng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.Prefill(rand.New(rand.NewSource(5)), 0.5, d.LogicalPages())
	d.ForceGC(0)
	gcEnd := d.GCEndsAt()
	eng.Run()
	s := d.Stats()
	if s.GCWallTime != gcEnd {
		t.Fatalf("GCWallTime %v, want %v (episode started at 0)", s.GCWallTime, gcEnd)
	}
	if s.GCBusyTime <= 0 || s.GCBusyTime > s.BusyTime {
		t.Fatalf("GCBusyTime %v outside (0, BusyTime=%v]", s.GCBusyTime, s.BusyTime)
	}
}

func TestSetColdBoundaryDelegates(t *testing.T) {
	eng := sim.NewEngine()
	d, err := New(0, eng, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	d.SetColdBoundary(d.LogicalPages() / 2) // must not panic
	d.Write(0, 0, 1, nil)
	d.Write(0, d.LogicalPages()/2, 1, nil)
	eng.Run()
	if d.Stats().PagesWritten != 2 {
		t.Fatal("writes across the boundary failed")
	}
}

func TestPrefillPartialRange(t *testing.T) {
	_, d := newDevice(t)
	used := d.LogicalPages() / 2
	d.Prefill(rand.New(rand.NewSource(6)), 0.3, used)
	// Pages beyond `used` must stay unmapped: free blocks stay plentiful.
	if d.FreeBlocks() < d.Config().GCHighWater {
		t.Fatalf("partial prefill consumed too much: %d free blocks", d.FreeBlocks())
	}
	d.Prefill(rand.New(rand.NewSource(7)), 0, 0) // no-op prefill allowed
}

func TestPrefillClampsOversizedRange(t *testing.T) {
	_, d := newDevice(t)
	d.Prefill(rand.New(rand.NewSource(8)), 0, d.LogicalPages()*2) // clamped, no panic
	if d.FreeBlocks() == 0 {
		t.Fatal("prefill exhausted the device")
	}
}
