// Package sched implements the GC-coordination policies the paper compares
// against: LGC (local, uncoordinated garbage collection — each SSD collects
// on its own schedule) and GGC (globally coordinated garbage collection,
// Kim et al.'s Harmonia: when any SSD starts collecting, every SSD in the
// array is forced to collect at the same time).
//
// It also provides the Hub, a fan-out for device GC start/end events and
// per-op observations: ssd.Device exposes single OnGCStart/OnGCEnd/OnOp
// hooks, and a policy, the GC-Steering redirector, and the health monitor
// all need them.
package sched

import (
	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
)

// Hub multiplexes the GC hooks of a set of devices to any number of
// subscribers. Install it before handing the devices to other components,
// then subscribe instead of setting the device hooks directly.
type Hub struct {
	devs    []*ssd.Device
	onStart []func(now sim.Time, d *ssd.Device)
	onEnd   []func(now sim.Time, d *ssd.Device)
	onOp    []func(now sim.Time, d *ssd.Device, write bool, pages int, latency, service sim.Time)
}

// NewHub installs itself on every device's GC and per-op hooks.
func NewHub(devs []*ssd.Device) *Hub {
	h := &Hub{devs: devs}
	for _, d := range devs {
		d.OnGCStart = h.fanStart
		d.OnGCEnd = h.fanEnd
		d.OnOp = h.fanOp
	}
	return h
}

func (h *Hub) fanStart(now sim.Time, d *ssd.Device) {
	for _, fn := range h.onStart {
		fn(now, d)
	}
}

func (h *Hub) fanEnd(now sim.Time, d *ssd.Device) {
	for _, fn := range h.onEnd {
		fn(now, d)
	}
}

// SubscribeStart registers fn for GC-start events.
func (h *Hub) SubscribeStart(fn func(now sim.Time, d *ssd.Device)) {
	h.onStart = append(h.onStart, fn)
}

// SubscribeEnd registers fn for GC-end events.
func (h *Hub) SubscribeEnd(fn func(now sim.Time, d *ssd.Device)) {
	h.onEnd = append(h.onEnd, fn)
}

func (h *Hub) fanOp(now sim.Time, d *ssd.Device, write bool, pages int, latency, service sim.Time) {
	for _, fn := range h.onOp {
		fn(now, d, write, pages, latency, service)
	}
}

// SubscribeOp registers fn for per-op observations (every host read and
// write a device services, with its projected completion latency and its
// queueing-free service time — see ssd.Device.OnOp). The fan-out is
// synchronous with the op issue, so subscribers cost no engine events.
func (h *Hub) SubscribeOp(fn func(now sim.Time, d *ssd.Device, write bool, pages int, latency, service sim.Time)) {
	h.onOp = append(h.onOp, fn)
}

// Devices returns the devices the hub watches.
func (h *Hub) Devices() []*ssd.Device { return h.devs }

// AnyInGC reports whether any device is collecting at now.
func (h *Hub) AnyInGC(now sim.Time) bool {
	for _, d := range h.devs {
		if d.InGC(now) {
			return true
		}
	}
	return false
}

// Policy is a GC-coordination scheme.
type Policy interface {
	// Name returns the scheme name as used in the paper ("LGC", "GGC").
	Name() string
	// Attach wires the policy to the array's devices via the hub.
	Attach(h *Hub)
}

// LGC is the default, uncoordinated policy: every device garbage-collects
// independently when its own free space runs low. It needs no coordination
// logic; the type exists so experiments can treat all schemes uniformly.
type LGC struct{}

// Name implements Policy.
func (LGC) Name() string { return "LGC" }

// Attach implements Policy (no coordination).
func (LGC) Attach(*Hub) {}

// GGC forces every device to start a GC episode whenever any one device
// does. The devices collect in parallel, giving the array a long fully-
// clean period afterwards, at the cost of (a) the array being unavailable
// during the coordinated episode and (b) more total collections, because
// devices are forced to collect before their free space requires it —
// both effects the paper reports (§II-A, Fig. 7b).
type GGC struct {
	// Triggered counts how many coordinated rounds were initiated.
	Triggered int64
}

// Name implements Policy.
func (g *GGC) Name() string { return "GGC" }

// Attach implements Policy.
func (g *GGC) Attach(h *Hub) {
	h.SubscribeStart(func(now sim.Time, src *ssd.Device) {
		g.Triggered++
		for _, other := range h.Devices() {
			if other != src {
				// ForceGC is a no-op on devices already collecting, so the
				// cascade of start events terminates.
				other.ForceGC(now)
			}
		}
	})
}
