package sched

import (
	"math/rand"
	"testing"

	"gcsteering/internal/flash"
	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
)

func smallConfig() ssd.Config {
	return ssd.Config{
		Geometry: flash.Geometry{
			PageSize:      4096,
			PagesPerBlock: 32,
			Blocks:        64,
			Channels:      4,
			OverProvision: 0.20,
		},
		Latency:     ssd.DefaultLatency(),
		GCLowWater:  2,
		GCHighWater: 6,
	}
}

func makeDevices(t *testing.T, eng *sim.Engine, n int) []*ssd.Device {
	t.Helper()
	devs := make([]*ssd.Device, n)
	for i := range devs {
		d, err := ssd.New(i, eng, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		d.Prefill(rand.New(rand.NewSource(int64(i))), 0.5, d.LogicalPages())
		devs[i] = d
	}
	return devs
}

// writeUntilGC hammers one device with random writes until it enters GC.
func writeUntilGC(t *testing.T, eng *sim.Engine, d *ssd.Device) sim.Time {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100000; i++ {
		now := eng.Now()
		d.Write(now, rng.Intn(d.LogicalPages()), 1, nil)
		if d.InGC(now) {
			return now
		}
		eng.RunFor(100 * sim.Microsecond)
	}
	t.Fatal("device never entered GC")
	return 0
}

func TestHubFansOutToAllSubscribers(t *testing.T) {
	eng := sim.NewEngine()
	devs := makeDevices(t, eng, 2)
	h := NewHub(devs)
	var starts1, starts2, ends int
	h.SubscribeStart(func(sim.Time, *ssd.Device) { starts1++ })
	h.SubscribeStart(func(sim.Time, *ssd.Device) { starts2++ })
	h.SubscribeEnd(func(sim.Time, *ssd.Device) { ends++ })
	writeUntilGC(t, eng, devs[0])
	eng.Run()
	if starts1 == 0 || starts1 != starts2 {
		t.Fatalf("start fan-out: %d vs %d", starts1, starts2)
	}
	if ends == 0 {
		t.Fatal("end events not delivered")
	}
}

func TestAnyInGC(t *testing.T) {
	eng := sim.NewEngine()
	devs := makeDevices(t, eng, 2)
	h := NewHub(devs)
	if h.AnyInGC(eng.Now()) {
		t.Fatal("fresh devices reported in GC")
	}
	now := writeUntilGC(t, eng, devs[0])
	if !h.AnyInGC(now) {
		t.Fatal("AnyInGC false while a device collects")
	}
}

func TestLGCLeavesDevicesUncoordinated(t *testing.T) {
	eng := sim.NewEngine()
	devs := makeDevices(t, eng, 3)
	h := NewHub(devs)
	LGC{}.Attach(h)
	now := writeUntilGC(t, eng, devs[0])
	// Other devices must NOT be collecting.
	for _, d := range devs[1:] {
		if d.InGC(now) {
			t.Fatal("LGC coordinated a GC")
		}
	}
	if (LGC{}).Name() != "LGC" {
		t.Fatal("name")
	}
}

func TestGGCForcesAllDevices(t *testing.T) {
	eng := sim.NewEngine()
	devs := makeDevices(t, eng, 3)
	h := NewHub(devs)
	g := &GGC{}
	g.Attach(h)
	now := writeUntilGC(t, eng, devs[0])
	for i, d := range devs {
		if !d.InGC(now) {
			t.Fatalf("device %d not collecting under GGC", i)
		}
	}
	if g.Triggered == 0 {
		t.Fatal("GGC.Triggered not counted")
	}
	forcedTotal := int64(0)
	for _, d := range devs[1:] {
		forcedTotal += d.Stats().ForcedGCs
	}
	if forcedTotal < 2 {
		t.Fatalf("forced GCs = %d, want >= 2", forcedTotal)
	}
	eng.Run() // terminates: the cascade is bounded
	if g.Name() != "GGC" {
		t.Fatal("name")
	}
}

// GGC must record more GC activity than LGC under the same write load —
// Fig. 7b's shape: every round forces an episode on every device.
func TestGGCGCCountExceedsLGC(t *testing.T) {
	run := func(coordinated bool) int64 {
		eng := sim.NewEngine()
		devs := makeDevices(t, eng, 3)
		h := NewHub(devs)
		if coordinated {
			(&GGC{}).Attach(h)
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40000; i++ {
			// Skewed per-device load: the realistic condition under which
			// GGC's forcing costs extra collections (a uniformly loaded,
			// saturated array synchronizes naturally and shows no gap).
			var d *ssd.Device
			switch u := rng.Float64(); {
			case u < 0.6:
				d = devs[0]
			case u < 0.9:
				d = devs[1]
			default:
				d = devs[2]
			}
			d.Write(eng.Now(), rng.Intn(d.LogicalPages()), 1, nil)
			eng.RunFor(200 * sim.Microsecond)
		}
		eng.Run()
		var episodes int64
		for _, d := range devs {
			episodes += d.Stats().GCEpisodes
		}
		return episodes
	}
	lgc := run(false)
	ggc := run(true)
	if lgc == 0 {
		t.Fatal("LGC run saw no GC; test is vacuous")
	}
	if ggc <= lgc {
		t.Fatalf("GGC episodes %d <= LGC episodes %d; coordination forces extra collections", ggc, lgc)
	}
}
