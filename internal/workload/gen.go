package workload

import (
	"fmt"
	"math/rand"

	"gcsteering/internal/sim"
	"gcsteering/internal/trace"
)

const sector = 512

// Options controls trace synthesis.
type Options struct {
	// Capacity is the byte size of the target volume (the RAID array's
	// logical capacity). Generated offsets stay inside it.
	Capacity int64
	// Scale multiplies the profile's Table I request count (use e.g. 0.01
	// for quick runs). Values <= 0 default to 1.
	Scale float64
	// MaxRequests caps the emitted request count after scaling (0 = no cap).
	MaxRequests int
	// Seed makes generation deterministic.
	Seed int64
	// ArrivalScale multiplies the profile's MeanIOPS (>1 compresses the
	// trace in time, <1 stretches it). Values <= 0 default to 1. The
	// cluster layer uses it to give tenants sharing a profile distinct
	// load levels.
	ArrivalScale float64
}

// scatter is a large prime used to spread Zipf ranks across the address
// space so hot pages land on every member disk instead of clustering in
// the first stripes.
const scatter = 2654435761

// Generator synthesizes a trace for one profile. Create with NewGenerator;
// repeated Next calls stream records without materializing the whole trace.
type Generator struct {
	p   Profile
	opt Options
	rng *rand.Rand

	// region boundaries in sectors
	riEnd   int64
	wiEnd   int64
	sectors int64

	riZipf  *rand.Zipf
	wiZipf  *rand.Zipf
	mixZipf *rand.Zipf

	now       sim.Time
	burstLeft int
	emitted   int
	total     int
}

// NewGenerator validates the profile/options pair and prepares a stream.
func NewGenerator(p Profile, opt Options) (*Generator, error) {
	if p.Requests <= 0 || p.ReadRatio < 0 || p.ReadRatio > 1 {
		return nil, fmt.Errorf("workload: profile %q invalid: %+v", p.Name, p)
	}
	if p.MeanIOPS <= 0 || p.BurstFactor < 1 || p.BurstLen <= 0 {
		return nil, fmt.Errorf("workload: profile %q arrival params invalid", p.Name)
	}
	if p.RIFrac < 0 || p.WIFrac < 0 || p.RIFrac+p.WIFrac > 1 {
		return nil, fmt.Errorf("workload: profile %q region fractions invalid", p.Name)
	}
	if opt.Capacity < 1<<20 {
		return nil, fmt.Errorf("workload: capacity %d too small", opt.Capacity)
	}
	scale := opt.Scale
	if scale <= 0 {
		scale = 1
	}
	total := int(float64(p.Requests) * scale)
	if total < 1 {
		total = 1
	}
	if opt.MaxRequests > 0 && total > opt.MaxRequests {
		total = opt.MaxRequests
	}
	if opt.ArrivalScale > 0 {
		p.MeanIOPS *= opt.ArrivalScale
	}
	g := &Generator{
		p:   p,
		opt: opt,
		//lint:allow nodeterm workload stream: seeded from Options.Seed, the generator's one entropy input
		rng:     rand.New(rand.NewSource(opt.Seed)),
		sectors: opt.Capacity / sector,
		total:   total,
	}
	g.riEnd = int64(float64(g.sectors) * p.RIFrac)
	g.wiEnd = g.riEnd + int64(float64(g.sectors)*p.WIFrac)
	zs := p.ZipfS
	if zs <= 1 {
		zs = 1.01
	}
	riPages := uint64(g.riEnd/8) + 1 // 4 KiB pages in the RI region
	wiPages := uint64((g.wiEnd-g.riEnd)/8) + 1
	mixPages := uint64((g.sectors-g.wiEnd)/8) + 1
	g.riZipf = rand.NewZipf(g.rng, zs, 1, riPages-1)
	g.wiZipf = rand.NewZipf(g.rng, zs, 1, wiPages-1)
	// The mixed region is deliberately more concentrated: MIX pages exist
	// because reads and writes interleave on the *same* pages (Fig. 2), and
	// that requires collisions.
	g.mixZipf = rand.NewZipf(g.rng, zs+0.3, 1, mixPages-1)
	return g, nil
}

// Total returns how many records the stream will produce.
func (g *Generator) Total() int { return g.total }

// Next returns the next record, or false when the stream is exhausted.
func (g *Generator) Next() (trace.Record, bool) {
	if g.emitted >= g.total {
		return trace.Record{}, false
	}
	g.emitted++
	g.advanceClock()
	write := g.rng.Float64() >= g.p.ReadRatio
	size := g.drawSize()
	off := g.drawOffset(write, size)
	return trace.Record{Timestamp: g.now, Offset: off, Size: size, Write: write}, true
}

// Generate materializes the whole trace.
func Generate(p Profile, opt Options) (trace.Trace, error) {
	g, err := NewGenerator(p, opt)
	if err != nil {
		return nil, err
	}
	out := make(trace.Trace, 0, g.Total())
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, nil
}

// advanceClock implements the bursty on/off arrival process: requests
// arrive in bursts of ~BurstLen at BurstFactor times the mean rate,
// separated by idle gaps that restore the long-run MeanIOPS.
func (g *Generator) advanceClock() {
	if g.burstLeft == 0 {
		// Start a new burst after an idle gap (skipped for the first one).
		if g.emitted > 1 {
			burstSpan := float64(g.p.BurstLen) / g.p.MeanIOPS
			gap := burstSpan * (1 - 1/g.p.BurstFactor)
			g.now += sim.Time(g.rng.ExpFloat64() * gap * float64(sim.Second))
		}
		g.burstLeft = 1 + g.rng.Intn(2*g.p.BurstLen) // mean ≈ BurstLen
	}
	g.burstLeft--
	iat := 1 / (g.p.MeanIOPS * g.p.BurstFactor)
	g.now += sim.Time(g.rng.ExpFloat64() * iat * float64(sim.Second))
}

// drawSize returns a request size in bytes: fixed for the HPC profiles,
// geometric over sectors (mean = AvgReqKB) for enterprise profiles.
func (g *Generator) drawSize() int {
	if g.p.FixedSize {
		return int(g.p.AvgReqKB * 1024)
	}
	meanSectors := g.p.AvgReqKB * 1024 / sector
	if meanSectors < 1 {
		meanSectors = 1
	}
	// Geometric with mean meanSectors: success probability 1/mean.
	p := 1 / meanSectors
	n := 1
	for g.rng.Float64() >= p && n < 4096 {
		n++
	}
	return n * sector
}

// drawOffset picks the target region and address following the Figure 2
// model: reads concentrate on Zipf-popular pages of the RI region, writes
// on the WI region, with small mixed and cross shares.
func (g *Generator) drawOffset(write bool, size int) int64 {
	sectors := int64(size+sector-1) / sector
	var off int64
	u := g.rng.Float64()
	if !write {
		switch {
		case u < g.p.ReadToRI: // hot read data
			off = g.zipfSector(g.riZipf, 0, g.riEnd)
		case u < g.p.ReadToRI+(1-g.p.ReadToRI)*0.75: // mixed pages
			off = g.zipfSector(g.mixZipf, g.wiEnd, g.sectors)
		default: // rare reads of write-intensive data
			off = g.uniformSector(g.riEnd, g.wiEnd)
		}
	} else {
		switch {
		case u < g.p.WriteToWI: // write-intensive data
			off = g.zipfSector(g.wiZipf, g.riEnd, g.wiEnd)
		case u < g.p.WriteToWI+(1-g.p.WriteToWI)*0.75: // mixed pages
			off = g.zipfSector(g.mixZipf, g.wiEnd, g.sectors)
		default:
			// Rare updates of read-intensive data. Uniform, not Zipf: the
			// paper's §II-C observes that hot read blocks are not frequently
			// updated, so cross-writes land on the RI region's cold tail.
			off = g.uniformSector(0, g.riEnd)
		}
	}
	if off+sectors > g.sectors {
		off = g.sectors - sectors
	}
	if off < 0 {
		off = 0
	}
	return off * sector
}

// zipfSector maps a Zipf rank to a page-aligned sector inside [lo, hi),
// scattering ranks across the region so hot pages cover all member disks.
func (g *Generator) zipfSector(z *rand.Zipf, lo, hi int64) int64 {
	pages := (hi - lo) / 8
	if pages <= 0 {
		return lo
	}
	rank := int64(z.Uint64())
	page := (rank * scatter) % pages
	if page < 0 {
		page += pages
	}
	return lo + page*8
}

// uniformSector picks a page-aligned sector uniformly in [lo, hi).
func (g *Generator) uniformSector(lo, hi int64) int64 {
	pages := (hi - lo) / 8
	if pages <= 0 {
		return lo
	}
	return lo + g.rng.Int63n(pages)*8
}
