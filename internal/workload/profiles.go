// Package workload synthesizes the paper's evaluation workloads. The real
// HPC, UMass Fin1 and MSR Cambridge traces are not redistributable, so each
// is modelled as a profile carrying the published Table I characteristics
// (read ratio, request count, average request size) plus an access-pattern
// model matched to §II-C / Figure 2: most pages are either read-intensive
// or write-intensive, hot read pages follow a Zipf popularity law and are
// rarely updated, and arrivals are bursty.
package workload

import "gcsteering/internal/sim"

// Profile describes one synthetic workload.
type Profile struct {
	// Name as used in the paper's tables.
	Name string
	// ReadRatio is the fraction of requests that are reads (Table I).
	ReadRatio float64
	// Requests is the Table I request count; runs scale it down with the
	// generator's Scale option.
	Requests int
	// AvgReqKB is the mean request size in KiB (Table I).
	AvgReqKB float64
	// FixedSize makes every request exactly AvgReqKB (the HPC-like
	// workloads issue uniform large requests; enterprise traces vary).
	FixedSize bool

	// MeanIOPS sets the long-run arrival rate; BurstFactor scales the rate
	// inside bursts (the paper replays "one-hour traces with bursty
	// periods"). BurstLen is the mean number of requests per burst.
	MeanIOPS    float64
	BurstFactor float64
	BurstLen    int

	// Page-type model (Figure 2). The address space splits into a
	// read-intensive region, a write-intensive region and a mixed region.
	// ReadToRI is the probability a read lands in the RI region; WriteToWI
	// likewise for writes. The remainder goes mostly to MIX with a small
	// cross-traffic share, yielding the >90%/>90% classification shape.
	ReadToRI  float64
	WriteToWI float64
	// RIFrac/WIFrac are the address-space fractions of the RI and WI
	// regions (the rest is MIX).
	RIFrac float64
	WIFrac float64
	// ZipfS is the Zipf skew of popularity inside the RI region; higher
	// values concentrate reads on fewer pages (hot data).
	ZipfS float64
}

// HPC returns the two HPC-like profiles of Table I. They are bursty,
// large-request (510.5 KB average), high-intensity workloads.
func HPC() []Profile {
	base := Profile{
		Requests:  500_000,
		AvgReqKB:  510.5,
		FixedSize: true,
		// At 510.5 KB per request, 15 IOPS is ≈ 7.7 MB/s of sustained array
		// traffic. That keeps the simulated device class comfortably below
		// saturation while the sheer write volume per request still makes
		// the HPC workloads the GC-heaviest of the evaluation, exactly the
		// paper's characterization.
		MeanIOPS:    10,
		BurstFactor: 2,
		BurstLen:    64,
		ReadToRI:    0.90,
		WriteToWI:   0.95,
		RIFrac:      0.40,
		WIFrac:      0.40,
		ZipfS:       1.1,
	}
	w := base
	w.Name = "HPC_W"
	w.ReadRatio = 0.201
	r := base
	r.Name = "HPC_R"
	r.ReadRatio = 0.799
	return []Profile{w, r}
}

// Enterprise returns the six enterprise profiles of Table I: the UMass
// financial OLTP trace (Fin1) and the five MSR Cambridge volumes.
func Enterprise() []Profile {
	mk := func(name string, readRatio float64, reqs int, avgKB float64, iops float64) Profile {
		return Profile{
			Name:        name,
			ReadRatio:   readRatio,
			Requests:    reqs,
			AvgReqKB:    avgKB,
			MeanIOPS:    iops,
			BurstFactor: 6,
			BurstLen:    64,
			ReadToRI:    0.90,
			WriteToWI:   0.955,
			RIFrac:      0.40,
			WIFrac:      0.40,
			ZipfS:       1.1,
		}
	}
	return []Profile{
		mk("Fin1", 0.328, 5_334_987, 11.9, 700),
		mk("hm_0", 0.355, 3_993_316, 8.3, 500),
		mk("mds_0", 0.119, 1_211_034, 7.2, 250),
		mk("prxy_0", 0.027, 12_518_968, 2.5, 1600),
		mk("rsrch_0", 0.093, 14_333_655, 8.7, 900),
		mk("wdev_0", 0.201, 1_143_261, 9.4, 320),
	}
}

// All returns all eight Table I profiles in the paper's order.
func All() []Profile { return append(HPC(), Enterprise()...) }

// ByName returns the named profile, or false.
func ByName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Names lists the profile names in the paper's order.
func Names() []string {
	ps := All()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// MeanInterarrival returns the long-run mean time between requests.
func (p Profile) MeanInterarrival() sim.Time {
	return sim.Time(float64(sim.Second) / p.MeanIOPS)
}
