package workload

import (
	"math"
	"testing"

	"gcsteering/internal/trace"
)

func opts() Options {
	return Options{Capacity: 4 << 30, Scale: 0.01, Seed: 42}
}

func TestProfilesCoverTableI(t *testing.T) {
	ps := All()
	if len(ps) != 8 {
		t.Fatalf("got %d profiles, want 8", len(ps))
	}
	want := map[string]struct {
		readRatio float64
		requests  int
		avgKB     float64
	}{
		"HPC_W":   {0.201, 500_000, 510.5},
		"HPC_R":   {0.799, 500_000, 510.5},
		"Fin1":    {0.328, 5_334_987, 11.9},
		"hm_0":    {0.355, 3_993_316, 8.3},
		"mds_0":   {0.119, 1_211_034, 7.2},
		"prxy_0":  {0.027, 12_518_968, 2.5},
		"rsrch_0": {0.093, 14_333_655, 8.7},
		"wdev_0":  {0.201, 1_143_261, 9.4},
	}
	for _, p := range ps {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if p.ReadRatio != w.readRatio || p.Requests != w.requests || p.AvgReqKB != w.avgKB {
			t.Errorf("%s: %+v does not match Table I %+v", p.Name, p, w)
		}
	}
	if len(Names()) != 8 {
		t.Fatal("Names() wrong length")
	}
	if _, ok := ByName("Fin1"); !ok {
		t.Fatal("ByName(Fin1) missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestGeneratorValidation(t *testing.T) {
	p := All()[0]
	if _, err := NewGenerator(p, Options{Capacity: 1}); err == nil {
		t.Fatal("tiny capacity accepted")
	}
	bad := p
	bad.Requests = 0
	if _, err := NewGenerator(bad, opts()); err == nil {
		t.Fatal("zero requests accepted")
	}
	bad = p
	bad.MeanIOPS = 0
	if _, err := NewGenerator(bad, opts()); err == nil {
		t.Fatal("zero IOPS accepted")
	}
	bad = p
	bad.RIFrac = 0.8
	bad.WIFrac = 0.8
	if _, err := NewGenerator(bad, opts()); err == nil {
		t.Fatal("overlapping regions accepted")
	}
}

func TestGeneratedTraceMatchesProfile(t *testing.T) {
	for _, p := range All() {
		o := opts()
		o.MaxRequests = 30000
		tr, err := Generate(p, o)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := trace.Validate(tr); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		s := trace.ComputeStats(tr)
		if math.Abs(s.ReadRatio-p.ReadRatio) > 0.02 {
			t.Errorf("%s: read ratio %.3f, want %.3f", p.Name, s.ReadRatio, p.ReadRatio)
		}
		if rel := math.Abs(s.AvgSizeKB-p.AvgReqKB) / p.AvgReqKB; rel > 0.10 {
			t.Errorf("%s: avg size %.1fKB, want %.1fKB (rel %.2f)", p.Name, s.AvgSizeKB, p.AvgReqKB, rel)
		}
		// Long-run arrival rate should be near MeanIOPS.
		iops := float64(s.Requests) / s.Duration.Seconds()
		if iops < p.MeanIOPS*0.5 || iops > p.MeanIOPS*2.0 {
			t.Errorf("%s: effective IOPS %.0f, want ≈%.0f", p.Name, iops, p.MeanIOPS)
		}
		// Every request must fit the volume.
		if s.MaxOffset > o.Capacity {
			t.Errorf("%s: request beyond capacity", p.Name)
		}
	}
}

func TestScaleAndCap(t *testing.T) {
	p := All()[0]
	o := opts()
	o.Scale = 0.001
	g, err := NewGenerator(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if g.Total() != 500 {
		t.Fatalf("Total = %d, want 500", g.Total())
	}
	o.MaxRequests = 100
	g, _ = NewGenerator(p, o)
	if g.Total() != 100 {
		t.Fatalf("capped Total = %d, want 100", g.Total())
	}
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("emitted %d, want 100", n)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	p := All()[2]
	o := opts()
	o.MaxRequests = 1000
	a, _ := Generate(p, o)
	b, _ := Generate(p, o)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	o.Seed = 43
	c, _ := Generate(p, o)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestFigure2Shape verifies the §II-C observation holds for the synthetic
// enterprise traces: ≈90% of reads hit read-intensive pages and ≈95% of
// writes hit write-intensive pages under the paper's 0.9 threshold.
func TestFigure2Shape(t *testing.T) {
	for _, p := range Enterprise() {
		o := opts()
		o.MaxRequests = 60000
		tr, err := Generate(p, o)
		if err != nil {
			t.Fatal(err)
		}
		c := trace.ClassifyPages(tr, 4096, 0.9)
		if got := c.ReadShare(trace.ClassRI); got < 0.80 {
			t.Errorf("%s: only %.1f%% of reads on RI pages (paper avg 89.8%%)", p.Name, got*100)
		}
		if got := c.WriteShare(trace.ClassWI); got < 0.85 {
			t.Errorf("%s: only %.1f%% of writes on WI pages (paper avg 95.5%%)", p.Name, got*100)
		}
	}
}

// Hot read pages must be spread across the address space (so they land on
// all member disks), not clustered at the front.
func TestHotPagesScattered(t *testing.T) {
	p := Enterprise()[0]
	o := opts()
	o.MaxRequests = 20000
	tr, _ := Generate(p, o)
	var quarters [4]int
	for _, r := range tr {
		if !r.Write {
			quarters[int(4*r.Offset/o.Capacity)]++
		}
	}
	// RI region is the first 40% of the space, so the first two quarters
	// should both see substantial read traffic.
	if quarters[0] == 0 || quarters[1] == 0 {
		t.Fatalf("reads clustered: %v", quarters)
	}
}

func TestBurstyArrivals(t *testing.T) {
	p := All()[0]
	o := opts()
	o.MaxRequests = 20000
	tr, _ := Generate(p, o)
	// Compute the coefficient of variation of interarrival times; a bursty
	// process is far more variable than Poisson (CV=1).
	var gaps []float64
	for i := 1; i < len(tr); i++ {
		gaps = append(gaps, float64(tr[i].Timestamp-tr[i-1].Timestamp))
	}
	var mean, m2 float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	for _, g := range gaps {
		m2 += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(m2/float64(len(gaps))) / mean
	if cv < 1.2 {
		t.Fatalf("interarrival CV %.2f; arrivals not bursty", cv)
	}
}

func TestMeanInterarrival(t *testing.T) {
	p := Profile{MeanIOPS: 1000}
	if got := p.MeanInterarrival(); got.Seconds() != 0.001 {
		t.Fatalf("MeanInterarrival = %v", got)
	}
}

func BenchmarkGenerate(b *testing.B) {
	p := Enterprise()[0]
	o := opts()
	o.MaxRequests = 100000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i)
		if _, err := Generate(p, o); err != nil {
			b.Fatal(err)
		}
	}
}
