package core

import (
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

// The Reclaimer drains redirected write data back to its home location
// once the home disk finishes garbage collection (§III-C). The drain is
// deliberately serial — one merged run at a time — so reclaim traffic
// trickles into the home disk instead of re-creating the contention the
// steering just avoided. Parity was already updated in place when the
// write was redirected, so write-back touches only the home data unit.

// OnDeviceGCEnd is the hook the facade wires to the sched.Hub's GC-end
// events: when disk finishes collecting, its redirected data drains back.
func (s *Steering) OnDeviceGCEnd(now sim.Time, disk int) {
	if s.rebuilding && !s.stagingPressure() {
		return // reclaim resumes after reconstruction completes (§III-D)
	}
	s.drain(now, disk)
}

// DrainAll starts a drain on every member disk (used when reconstruction
// completes and at the end of an experiment to flush the staging space).
func (s *Steering) DrainAll(now sim.Time) {
	for d := range s.devs {
		s.drain(now, d)
	}
}

// Draining reports whether any disk still has an active drain or pending
// reclaimable write entries (entries homed on a failed member are not
// reclaimable until it is rebuilt and do not count).
func (s *Steering) Draining() bool {
	for _, d := range s.draining {
		if d {
			return true
		}
	}
	if s.failedHome < 0 {
		return s.dt.WriteLen() > 0
	}
	pending := false
	s.dt.ForEach(func(k PageKey, e Entry) {
		if e.Write && int(k.Disk) != s.failedHome {
			pending = true
		}
	})
	return pending
}

func (s *Steering) drain(now sim.Time, disk int) {
	if s.draining[disk] {
		return
	}
	s.draining[disk] = true
	//lint:allow hotalloc one kick-off closure per drain start, bounded by GC episodes, not per request
	s.eng.Defer(func(t sim.Time) { s.drainNext(t, disk) })
}

// drainNext reclaims the next merged run for disk, then re-arms itself.
// It stops (and re-arms on the next GC-end event) when the disk re-enters
// collection or when no write entries remain.
//
// gcsvet: the reclaim pump runs deferred, one merged run per step, a
// bounded number of times per GC episode — off the per-request path, so
// it is a cold boundary for hotalloc.
//
//gcsvet:cold
func (s *Steering) drainNext(now sim.Time, disk int) {
	if disk == s.failedHome {
		// The home member is gone; its entries stay staged until rebuilt.
		s.draining[disk] = false
		return
	}
	if s.devs[disk].InGC(now) || s.unhealthy(now, disk) ||
		(s.rebuilding && !s.stagingPressure()) {
		// A quarantined home gets no write-back traffic either; the facade
		// kicks the drain again when the breaker closes (same hook as GC-end).
		s.draining[disk] = false
		return
	}
	run, ok := s.dt.FirstWriteRunFor(int32(disk), s.cfg.ReclaimMerge)
	if !ok {
		s.draining[disk] = false
		return
	}
	s.stats.ReclaimRuns++
	if s.Trace.Enabled() {
		s.Trace.Emit(now, obs.Event{Kind: obs.KReclaim,
			Dev: run.Disk, Page: int64(run.Page), Pages: run.Pages,
			Aux: int64(s.staging.FreeWriteSlots())})
	}

	// Snapshot the entries so concurrent redirects are detected.
	type snap struct {
		key PageKey
		gen uint32
		loc StageLoc
	}
	snaps := make([]snap, 0, run.Pages)
	for i := int32(0); i < run.Pages; i++ {
		key := PageKey{Disk: run.Disk, Page: run.Page + i}
		e, ok := s.dt.Get(key)
		if !ok || !e.Write {
			continue // raced with a delete; skip
		}
		snaps = append(snaps, snap{key, e.Gen, e.Loc})
	}
	if len(snaps) == 0 {
		s.eng.Defer(func(t sim.Time) { s.drainNext(t, disk) })
		return
	}

	finalize := func(t sim.Time) {
		for _, sn := range snaps {
			cur, ok := s.dt.Get(sn.key)
			if !ok || cur.Gen != sn.gen {
				// A newer redirect superseded this write-back; the entry
				// (and its newer staging copy) stays live.
				s.stats.ReclaimSkippedStale++
				continue
			}
			s.staging.Free(sn.loc)
			s.dt.Delete(sn.key)
			s.stats.ReclaimedPages++
		}
		s.drainNext(t, disk)
	}

	// Read every staged page, then write the whole run home in one I/O.
	remain := len(snaps)
	onRead := func(t sim.Time) {
		remain--
		if remain == 0 {
			must(s.devs[disk].Write(t, int(run.Page), int(run.Pages), finalize))
		}
	}
	for _, sn := range snaps {
		s.staging.Read(now, sn.loc, onRead)
	}
}
