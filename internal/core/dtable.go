// Package core implements GC-Steering, the paper's contribution: a
// controller-level scheme that steers popular read requests and all write
// requests away from SSDs that are busy garbage-collecting (or from a
// degraded array during reconstruction) into a staging space, and reclaims
// the redirected write data afterwards.
//
// The five functional components of the paper's Figure 3 map to this
// package as follows: the Popular Data Identifier is RLRU, the Staging
// Space Manager is the Staging implementations, the Request Redirector is
// Steering.route, the Reclaimer is reclaim.go, and the Administration
// Interface is the Config struct plus the public facade package.
package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
)

// PageKey addresses one page on one member disk of the array.
type PageKey struct {
	Disk int32
	Page int32
}

// less orders keys by (disk, page), the canonical order for turning a
// map-order D_Table visit into a deterministic slice.
func (k PageKey) less(o PageKey) bool {
	if k.Disk != o.Disk {
		return k.Disk < o.Disk
	}
	return k.Page < o.Page
}

// StageLoc is the staging-space location of one redirected page. Mirrored
// (RAID1-style) locations carry a second copy in Dev1/Page1; single-copy
// locations set Dev1 = -1. Devices are indexed in the staging space's own
// device list (the array members for reserved staging, the spare for
// dedicated staging).
type StageLoc struct {
	Dev0, Page0 int32
	Dev1, Page1 int32
}

// NoMirror is the Dev1 value of single-copy locations.
const NoMirror int32 = -1

// Mirrored reports whether the location holds two copies.
func (l StageLoc) Mirrored() bool { return l.Dev1 != NoMirror }

// Entry is one D_Table record: where a redirected page lives and whether
// it is redirected write data (Flag=true in the paper, meaning it must be
// reclaimed) or a migrated hot-read copy (Flag=false, droppable).
type Entry struct {
	Loc StageLoc
	// Write is the paper's Flag: true for redirected write data.
	Write bool
	// Gen increments on every update so the reclaimer can detect that an
	// entry changed while its write-back was in flight.
	Gen uint32
}

// DTable is the redirect log of GC-Steering (the paper's D_Table): a map
// from home location to staging location. The paper stores it in
// battery-backed NVRAM; Snapshot/Restore model the persistence path.
type DTable struct {
	m map[PageKey]Entry

	writeEntries int // entries with Write=true
}

// NewDTable returns an empty table.
func NewDTable() *DTable {
	return &DTable{m: make(map[PageKey]Entry)}
}

// Get returns the entry for k.
func (t *DTable) Get(k PageKey) (Entry, bool) {
	e, ok := t.m[k]
	return e, ok
}

// Put inserts or replaces the entry for k, bumping the generation.
func (t *DTable) Put(k PageKey, loc StageLoc, write bool) Entry {
	old, existed := t.m[k]
	e := Entry{Loc: loc, Write: write, Gen: old.Gen + 1}
	t.m[k] = e
	if existed && old.Write {
		t.writeEntries--
	}
	if write {
		t.writeEntries++
	}
	return e
}

// Delete removes the entry for k. Deleting an absent key is a no-op.
func (t *DTable) Delete(k PageKey) {
	if old, ok := t.m[k]; ok {
		if old.Write {
			t.writeEntries--
		}
		delete(t.m, k)
	}
}

// Len returns the number of live entries.
func (t *DTable) Len() int { return len(t.m) }

// ForEach visits every entry (iteration order is unspecified).
func (t *DTable) ForEach(fn func(PageKey, Entry)) {
	for k, e := range t.m {
		fn(k, e)
	}
}

// WriteLen returns the number of redirected-write entries awaiting reclaim.
func (t *DTable) WriteLen() int { return t.writeEntries }

// Run is a contiguous range of same-disk pages with live write entries,
// produced for the reclaimer. Merging contiguous pages lets the reclaim
// write-back hit the home disk with large sequential writes, the paper's
// "sequential data blocks ... merged into a large data block" optimization.
type Run struct {
	Disk  int32
	Page  int32 // first home page
	Pages int32
}

// WriteRunsFor returns the write entries homed on disk, merged into
// contiguous runs sorted by page. With merge=false every page is its own
// run (the ablation configuration).
func (t *DTable) WriteRunsFor(disk int32, merge bool) []Run {
	var pages []int32
	for k, e := range t.m {
		if k.Disk == disk && e.Write {
			pages = append(pages, k.Page)
		}
	}
	if len(pages) == 0 {
		return nil
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var runs []Run
	for _, p := range pages {
		if merge {
			if n := len(runs); n > 0 && runs[n-1].Page+runs[n-1].Pages == p {
				runs[n-1].Pages++
				continue
			}
		}
		runs = append(runs, Run{Disk: disk, Page: p, Pages: 1})
	}
	return runs
}

// FirstWriteRunFor returns the lowest-page run that WriteRunsFor would
// report for disk, without materializing or sorting the full run list —
// the reclaimer drains one run per step, so building every run each time
// is wasted work (and a per-step allocation). ok is false when the disk
// has no write entries.
func (t *DTable) FirstWriteRunFor(disk int32, merge bool) (Run, bool) {
	var min int32
	found := false
	for k, e := range t.m {
		if k.Disk != disk || !e.Write {
			continue
		}
		if !found || k.Page < min {
			min, found = k.Page, true
		}
	}
	if !found {
		return Run{}, false
	}
	run := Run{Disk: disk, Page: min, Pages: 1}
	if merge {
		for {
			e, ok := t.m[PageKey{Disk: disk, Page: run.Page + run.Pages}]
			if !ok || !e.Write {
				break
			}
			run.Pages++
		}
	}
	return run, true
}

// snapshotRecord is the gob wire form of one entry.
type snapshotRecord struct {
	Key   PageKey
	Entry Entry
}

// Snapshot serializes the table, modelling the paper's NVRAM persistence
// of D_Table across power failure.
func (t *DTable) Snapshot() ([]byte, error) {
	recs := make([]snapshotRecord, 0, len(t.m))
	for k, e := range t.m {
		recs = append(recs, snapshotRecord{k, e})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key.Disk != recs[j].Key.Disk {
			return recs[i].Key.Disk < recs[j].Key.Disk
		}
		return recs[i].Key.Page < recs[j].Key.Page
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(recs); err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore replaces the table contents from a snapshot.
func (t *DTable) Restore(data []byte) error {
	var recs []snapshotRecord
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&recs); err != nil {
		return fmt.Errorf("core: restore: %w", err)
	}
	t.m = make(map[PageKey]Entry, len(recs))
	t.writeEntries = 0
	for _, r := range recs {
		t.m[r.Key] = r.Entry
		if r.Entry.Write {
			t.writeEntries++
		}
	}
	return nil
}
