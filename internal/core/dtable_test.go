package core

import "testing"

func k(d, p int32) PageKey { return PageKey{Disk: d, Page: p} }

func TestDTableBasics(t *testing.T) {
	dt := NewDTable()
	if dt.Len() != 0 || dt.WriteLen() != 0 {
		t.Fatal("fresh table not empty")
	}
	if _, ok := dt.Get(k(0, 0)); ok {
		t.Fatal("phantom entry")
	}
	loc := StageLoc{Dev0: 1, Page0: 100, Dev1: NoMirror}
	e := dt.Put(k(0, 5), loc, true)
	if e.Gen != 1 {
		t.Fatalf("first Gen = %d", e.Gen)
	}
	got, ok := dt.Get(k(0, 5))
	if !ok || got.Loc != loc || !got.Write {
		t.Fatalf("Get = %+v ok=%v", got, ok)
	}
	if dt.Len() != 1 || dt.WriteLen() != 1 {
		t.Fatalf("Len=%d WriteLen=%d", dt.Len(), dt.WriteLen())
	}
}

func TestDTableGenBumpsOnReplace(t *testing.T) {
	dt := NewDTable()
	dt.Put(k(0, 5), StageLoc{Dev0: 1, Page0: 1, Dev1: NoMirror}, false)
	e := dt.Put(k(0, 5), StageLoc{Dev0: 2, Page0: 2, Dev1: NoMirror}, true)
	if e.Gen != 2 {
		t.Fatalf("Gen = %d after replace", e.Gen)
	}
	if dt.Len() != 1 || dt.WriteLen() != 1 {
		t.Fatalf("Len=%d WriteLen=%d", dt.Len(), dt.WriteLen())
	}
	// Flag transitions must keep WriteLen consistent.
	dt.Put(k(0, 5), StageLoc{Dev0: 3, Page0: 3, Dev1: NoMirror}, false)
	if dt.WriteLen() != 0 {
		t.Fatalf("WriteLen = %d after write->read transition", dt.WriteLen())
	}
}

func TestDTableDelete(t *testing.T) {
	dt := NewDTable()
	dt.Put(k(1, 2), StageLoc{Dev1: NoMirror}, true)
	dt.Delete(k(1, 2))
	if dt.Len() != 0 || dt.WriteLen() != 0 {
		t.Fatal("delete did not clear")
	}
	dt.Delete(k(1, 2)) // absent delete is a no-op
}

func TestWriteRunsMerging(t *testing.T) {
	dt := NewDTable()
	loc := StageLoc{Dev1: NoMirror}
	// Disk 0: pages 10,11,12 and 20. Disk 1: page 5. A read entry at 13
	// must not extend the run.
	for _, p := range []int32{12, 10, 11, 20} {
		dt.Put(k(0, p), loc, true)
	}
	dt.Put(k(0, 13), loc, false)
	dt.Put(k(1, 5), loc, true)

	runs := dt.WriteRunsFor(0, true)
	if len(runs) != 2 {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].Page != 10 || runs[0].Pages != 3 {
		t.Fatalf("first run %+v", runs[0])
	}
	if runs[1].Page != 20 || runs[1].Pages != 1 {
		t.Fatalf("second run %+v", runs[1])
	}

	unmerged := dt.WriteRunsFor(0, false)
	if len(unmerged) != 4 {
		t.Fatalf("unmerged runs = %+v", unmerged)
	}
	if got := dt.WriteRunsFor(2, true); got != nil {
		t.Fatalf("runs for untouched disk: %+v", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	dt := NewDTable()
	dt.Put(k(0, 1), StageLoc{Dev0: 1, Page0: 11, Dev1: 2, Page1: 22}, true)
	dt.Put(k(3, 4), StageLoc{Dev0: 0, Page0: 7, Dev1: NoMirror}, false)
	blob, err := dt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewDTable()
	if err := restored.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 2 || restored.WriteLen() != 1 {
		t.Fatalf("restored Len=%d WriteLen=%d", restored.Len(), restored.WriteLen())
	}
	e, ok := restored.Get(k(0, 1))
	if !ok || !e.Loc.Mirrored() || e.Loc.Page1 != 22 || !e.Write {
		t.Fatalf("restored entry %+v ok=%v", e, ok)
	}
	if err := restored.Restore([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestForEachVisitsAll(t *testing.T) {
	dt := NewDTable()
	dt.Put(k(0, 1), StageLoc{Dev1: NoMirror}, true)
	dt.Put(k(0, 2), StageLoc{Dev1: NoMirror}, false)
	n := 0
	dt.ForEach(func(PageKey, Entry) { n++ })
	if n != 2 {
		t.Fatalf("visited %d", n)
	}
}

func TestStageLocMirrored(t *testing.T) {
	if (StageLoc{Dev1: NoMirror}).Mirrored() {
		t.Fatal("single-copy loc reported mirrored")
	}
	if !(StageLoc{Dev1: 3}).Mirrored() {
		t.Fatal("mirrored loc not reported")
	}
}

func TestRLRU(t *testing.T) {
	r := NewRLRU(3)
	if r.Cap() != 3 {
		t.Fatal("cap")
	}
	if r.Touch(1) != 0 {
		t.Fatal("first touch reported prior hits")
	}
	if r.Touch(1) != 1 {
		t.Fatal("second touch should report one prior hit")
	}
	if r.Touch(1) != 2 {
		t.Fatal("third touch should report two prior hits")
	}
	r.Touch(2)
	r.Touch(3)
	r.Touch(4) // evicts 1 (2 is next-oldest after 1's promotion... order: 1 promoted, then 2,3,4 -> evict 1)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Contains(1) {
		t.Fatal("oldest entry not evicted")
	}
	if !r.Contains(4) || !r.Contains(3) || !r.Contains(2) {
		t.Fatal("recent entries missing")
	}
	r.Remove(3)
	if r.Contains(3) || r.Len() != 2 {
		t.Fatal("Remove failed")
	}
	r.Remove(3) // absent remove is a no-op
}

func TestRLRUEvictionOrder(t *testing.T) {
	r := NewRLRU(2)
	r.Touch(1)
	r.Touch(2)
	r.Touch(1) // promote 1; 2 becomes LRU
	r.Touch(3) // evicts 2
	if r.Contains(2) || !r.Contains(1) || !r.Contains(3) {
		t.Fatal("LRU order broken")
	}
}

func TestRLRUMinCapacity(t *testing.T) {
	r := NewRLRU(0)
	if r.Cap() != 1 {
		t.Fatalf("cap = %d, want clamped to 1", r.Cap())
	}
}
