package core

import (
	"math/rand"
	"testing"

	"gcsteering/internal/flash"
	"gcsteering/internal/raid"
	"gcsteering/internal/sched"
	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
)

// recDisk wraps an ssd.Device and logs per-page reads and writes so tests
// can assert exactly where traffic landed.
type recDisk struct {
	inner  *ssd.Device
	reads  map[int]int // page -> count
	writes map[int]int
}

func newRecDisk(d *ssd.Device) *recDisk {
	return &recDisk{inner: d, reads: map[int]int{}, writes: map[int]int{}}
}

func (r *recDisk) Read(now sim.Time, page, pages int, done func(sim.Time)) error {
	for i := 0; i < pages; i++ {
		r.reads[page+i]++
	}
	return r.inner.Read(now, page, pages, done)
}

func (r *recDisk) Write(now sim.Time, page, pages int, done func(sim.Time)) error {
	for i := 0; i < pages; i++ {
		r.writes[page+i]++
	}
	return r.inner.Write(now, page, pages, done)
}

func (r *recDisk) LogicalPages() int      { return r.inner.LogicalPages() }
func (r *recDisk) InGC(now sim.Time) bool { return r.inner.InGC(now) }

// rig assembles a 5-disk RAID5 with steering for integration tests.
type rig struct {
	eng  *sim.Engine
	devs []*ssd.Device
	recs []*recDisk
	arr  *raid.Array
	hub  *sched.Hub
	st   *Steering
	lay  raid.Layout
}

func devConfig() ssd.Config {
	return ssd.Config{
		Geometry: flash.Geometry{
			PageSize:      4096,
			PagesPerBlock: 32,
			Blocks:        64,
			Channels:      4,
			OverProvision: 0.20,
		},
		Latency:     ssd.DefaultLatency(),
		GCLowWater:  2,
		GCHighWater: 6,
	}
}

// newRig builds the fixture. stagingKind is "reserved" or "dedicated".
func newRig(t *testing.T, stagingKind string, cfg Config) *rig {
	t.Helper()
	eng := sim.NewEngine()
	const nDisks = 5
	r := &rig{eng: eng}
	disks := make([]raid.Disk, nDisks)
	for i := 0; i < nDisks; i++ {
		d, err := ssd.New(i, eng, devConfig())
		if err != nil {
			t.Fatal(err)
		}
		d.Prefill(rand.New(rand.NewSource(int64(i+1))), 0.5, d.LogicalPages())
		rec := newRecDisk(d)
		r.devs = append(r.devs, d)
		r.recs = append(r.recs, rec)
		disks[i] = rec
	}
	devPages := r.devs[0].LogicalPages() // 1632 with the test geometry
	var staging Staging
	var diskPages int
	switch stagingKind {
	case "reserved":
		diskPages = 1296 // leaves 336 reserved pages per member
		var err error
		staging, err = NewReservedStaging(disks, diskPages, devPages-diskPages, 0.5)
		if err != nil {
			t.Fatal(err)
		}
	case "dedicated":
		diskPages = 1632
		spare, err := ssd.New(nDisks, eng, devConfig())
		if err != nil {
			t.Fatal(err)
		}
		spare.Prefill(rand.New(rand.NewSource(99)), 0, 0)
		staging, err = NewDedicatedStaging(newRecDisk(spare), 0.5)
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown staging kind %q", stagingKind)
	}
	r.lay = raid.Layout{Level: raid.RAID5, Disks: nDisks, UnitPages: 16, DiskPages: diskPages}
	arr, err := raid.NewArray(eng, r.lay, disks)
	if err != nil {
		t.Fatal(err)
	}
	r.arr = arr
	st, err := New(eng, arr, staging, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.st = st
	r.hub = sched.NewHub(r.devs)
	r.hub.SubscribeEnd(func(now sim.Time, d *ssd.Device) { st.OnDeviceGCEnd(now, d.ID) })
	return r
}

// homeOf returns the home (disk, diskPage) of array page p.
func (r *rig) homeOf(p int) (int, int) {
	loc, err := r.lay.Map(p)
	if err != nil {
		panic(err)
	}
	return loc.Disk, loc.Page
}

func TestFastPathDeclinesHealthyOps(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	r.arr.Read(0, 0, 1, nil)
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	if got := r.arr.Stats().RoutedSubOps; got != 0 {
		t.Fatalf("healthy ops were claimed by the router: %d", got)
	}
	s := r.st.Stats()
	if s.DirectReads == 0 || s.DirectWrites == 0 {
		t.Fatalf("direct counters empty: %+v", s)
	}
	if s.RedirectedReads+s.RedirectedWrites != 0 {
		t.Fatalf("healthy traffic redirected: %+v", s)
	}
}

func TestWriteDuringGCIsRedirected(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	r.devs[homeDisk].ForceGC(r.eng.Now())
	if !r.devs[homeDisk].InGC(r.eng.Now()) {
		t.Fatal("precondition: home disk must be collecting")
	}
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	// Run only shortly: running to quiescence would also perform the
	// post-GC reclaim, which legitimately writes the page home.
	r.eng.RunFor(sim.Millisecond)

	if r.recs[homeDisk].writes[homePage] != 0 {
		t.Fatal("data write reached the collecting disk")
	}
	key := PageKey{Disk: int32(homeDisk), Page: int32(homePage)}
	e, ok := r.st.DTable().Get(key)
	if !ok || !e.Write {
		t.Fatalf("no write entry after steering: %+v ok=%v", e, ok)
	}
	if !e.Loc.Mirrored() {
		t.Fatal("reserved staging write not mirrored")
	}
	if e.Loc.Dev0 == int32(homeDisk) || e.Loc.Dev1 == int32(homeDisk) {
		t.Fatal("staging copy allocated on the collecting home disk")
	}
	// Parity must still be updated in its correct position.
	pd := r.lay.ParityDisk(0)
	if r.recs[pd].writes[homePage] == 0 {
		t.Fatal("parity write missing from the parity disk")
	}
	if r.st.Stats().RedirectedWrites != 1 {
		t.Fatalf("stats: %+v", r.st.Stats())
	}
}

func TestReadChecksDTableFirst(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	r.devs[homeDisk].ForceGC(r.eng.Now())
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.RunFor(sim.Millisecond)

	// Read while the entry is live: the home page must not be read even if
	// GC has ended by now — staging holds the newest version.
	before := r.recs[homeDisk].reads[homePage]
	r.arr.Read(r.eng.Now(), 0, 1, nil)
	r.eng.RunFor(sim.Millisecond)
	if r.recs[homeDisk].reads[homePage] != before {
		t.Fatal("read bypassed the staged copy")
	}
	if r.st.Stats().RedirectedReads == 0 {
		t.Fatalf("stats: %+v", r.st.Stats())
	}
}

func TestReclaimAfterGCEnds(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	r.devs[homeDisk].ForceGC(r.eng.Now())
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run() // drains everything: GC ends, reclaim fires

	dt := r.st.DTable()
	if dt.WriteLen() != 0 {
		t.Fatalf("%d write entries left after reclaim", dt.WriteLen())
	}
	if r.recs[homeDisk].writes[homePage] == 0 {
		t.Fatal("reclaim never wrote the page home")
	}
	s := r.st.Stats()
	if s.ReclaimedPages != 1 || s.ReclaimRuns == 0 {
		t.Fatalf("stats: %+v", s)
	}
	// Staging slots must be back in the pool.
	if r.st.Staging().FreeWriteSlots() == 0 {
		t.Fatal("staging write slots leaked")
	}
}

func TestReclaimMergesContiguousRuns(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	r.devs[homeDisk].ForceGC(r.eng.Now())
	// Steer 4 contiguous pages of the same unit.
	r.arr.Write(r.eng.Now(), 0, 4, nil)
	r.eng.Run()
	s := r.st.Stats()
	if s.RedirectedWrites != 4 {
		t.Fatalf("stats: %+v", s)
	}
	if s.ReclaimRuns != 1 {
		t.Fatalf("reclaim used %d runs for 4 contiguous pages, want 1 merged run", s.ReclaimRuns)
	}
	if r.recs[homeDisk].writes[homePage] == 0 || r.recs[homeDisk].writes[homePage+3] == 0 {
		t.Fatal("merged write-back did not cover the run")
	}
}

func TestHotReadMigrationAndGCDodge(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	// Three reads make the page popular (MigrateThreshold=2 prior hits);
	// the third migrates it.
	for i := 0; i < 3; i++ {
		r.arr.Read(r.eng.Now(), 0, 1, nil)
		r.eng.RunFor(sim.Millisecond)
	}
	key := PageKey{Disk: int32(homeDisk), Page: int32(homePage)}
	e, ok := r.st.DTable().Get(key)
	if !ok || e.Write {
		t.Fatalf("expected hot-read entry, got %+v ok=%v", e, ok)
	}
	if r.st.Stats().Migrations != 1 {
		t.Fatalf("stats: %+v", r.st.Stats())
	}
	// Now the home disk collects; the read dodges it via the staged copy.
	r.devs[homeDisk].ForceGC(r.eng.Now())
	before := r.recs[homeDisk].reads[homePage]
	r.arr.Read(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	if r.recs[homeDisk].reads[homePage] != before {
		t.Fatal("popular read hit the collecting disk")
	}
	if r.st.Stats().GCPagesRedirected == 0 {
		t.Fatalf("stats: %+v", r.st.Stats())
	}
}

func TestHealthyWriteInvalidatesHotCopy(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	for i := 0; i < 3; i++ {
		r.arr.Read(r.eng.Now(), 0, 1, nil)
		r.eng.RunFor(sim.Millisecond)
	}
	key := PageKey{Disk: int32(homeDisk), Page: int32(homePage)}
	if _, ok := r.st.DTable().Get(key); !ok {
		t.Fatal("precondition: hot copy missing")
	}
	freeBefore := r.st.Staging().FreeReadSlots()
	// Healthy write: must go direct and drop the stale copy.
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	if _, ok := r.st.DTable().Get(key); ok {
		t.Fatal("stale hot copy survived a write")
	}
	if r.recs[homeDisk].writes[homePage] == 0 {
		t.Fatal("healthy write did not reach the home disk")
	}
	if r.st.Staging().FreeReadSlots() != freeBefore+1 {
		t.Fatal("hot slot not freed")
	}
}

func TestRMWOldDataReadServedFromStaging(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	r.devs[homeDisk].ForceGC(r.eng.Now())
	r.arr.Write(r.eng.Now(), 0, 1, nil) // creates the staged entry
	r.eng.RunFor(sim.Millisecond)
	// Second write to the same page: RMW phase 1 wants old data, which now
	// lives in staging; the home page must not be read.
	before := r.recs[homeDisk].reads[homePage]
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	if r.recs[homeDisk].reads[homePage] != before {
		t.Fatal("RMW old-data read bypassed the staged copy")
	}
}

func TestRebuildingModeSteersEverythingAndSuspendsReclaim(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	r.st.SetRebuilding(r.eng.Now(), true)
	if !r.st.Rebuilding() {
		t.Fatal("mode not set")
	}
	homeDisk, homePage := r.homeOf(0)
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	if r.recs[homeDisk].writes[homePage] != 0 {
		t.Fatal("write reached the array during rebuild")
	}
	if r.st.DTable().WriteLen() != 1 {
		t.Fatal("write entry missing (or reclaimed despite rebuild mode)")
	}
	// Leaving rebuild mode drains the staging space.
	r.st.SetRebuilding(r.eng.Now(), false)
	r.eng.Run()
	if r.st.DTable().WriteLen() != 0 {
		t.Fatal("drain after rebuild did not reclaim")
	}
	if r.recs[homeDisk].writes[homePage] == 0 {
		t.Fatal("reclaimed page never reached home")
	}
}

func TestStagingExhaustionFallsBack(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, _ := r.homeOf(0)
	// Exhaust the write pools.
	for {
		if _, ok := r.st.Staging().AllocWrite(r.eng.Now(), homeDisk, false); !ok {
			break
		}
	}
	r.devs[homeDisk].ForceGC(r.eng.Now())
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	s := r.st.Stats()
	if s.WriteAllocFallbacks != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if r.st.DTable().WriteLen() != 0 {
		t.Fatal("fallback left a phantom entry")
	}
}

// TestRebuildHeadroomGateCountsSeparately is the regression test for the
// fallback-counter fix: when the rebuild-headroom gate is closed the
// allocator is never asked for a slot, so the skip must count as
// WriteAllocGated — not WriteAllocFallbacks, which earlier versions
// incremented even though no allocation was attempted, overstating
// allocator exhaustion during rebuilds.
func TestRebuildHeadroomGateCountsSeparately(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, _ := r.homeOf(0)
	// Drain the write pool below the 25% headroom threshold, but not to
	// exhaustion: the gate (not the allocator) must be what stops steering.
	cap := r.st.Staging().FreeWriteSlots()
	for r.st.Staging().FreeWriteSlots()*4 >= cap {
		if _, ok := r.st.Staging().AllocWrite(r.eng.Now(), homeDisk, false); !ok {
			t.Fatal("pool exhausted before reaching the headroom threshold")
		}
	}
	if r.st.Staging().FreeWriteSlots() == 0 {
		t.Fatal("precondition: pool must not be exhausted")
	}
	r.st.SetRebuilding(r.eng.Now(), true)
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	s := r.st.Stats()
	if s.WriteAllocGated != 1 {
		t.Fatalf("WriteAllocGated = %d, want 1 (stats: %+v)", s.WriteAllocGated, s)
	}
	if s.WriteAllocFallbacks != 0 {
		t.Fatalf("WriteAllocFallbacks = %d, want 0 — gate skips must not count as allocator exhaustion", s.WriteAllocFallbacks)
	}
}

func TestRedirectRatioUnderHotWorkload(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	rng := rand.New(rand.NewSource(5))
	hotPages := 64 // small hot set, read repeatedly
	total := r.lay.LogicalPages()
	for i := 0; i < 4000; i++ {
		now := r.eng.Now()
		if rng.Float64() < 0.4 {
			r.arr.Read(now, rng.Intn(hotPages), 1, nil)
		} else {
			r.arr.Write(now, hotPages+rng.Intn(total-hotPages), 1, nil)
		}
		r.eng.RunFor(600 * sim.Microsecond)
	}
	r.eng.Run()
	s := r.st.Stats()
	if s.GCPages == 0 {
		t.Skip("workload never hit a GC window; nothing to measure")
	}
	if ratio := r.st.RedirectRatio(); ratio < 0.5 {
		t.Fatalf("redirect ratio %.2f; expected the majority of GC-period pages to dodge (paper: 85.5%%)", ratio)
	}
}

func TestDedicatedStagingEndToEnd(t *testing.T) {
	r := newRig(t, "dedicated", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	r.devs[homeDisk].ForceGC(r.eng.Now())
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	if r.recs[homeDisk].writes[homePage] == 0 {
		// Reclaim must have written it home by now.
		t.Fatal("reclaim missing in dedicated configuration")
	}
	if r.st.DTable().WriteLen() != 0 {
		t.Fatal("entries left after reclaim")
	}
	s := r.st.Stats()
	if s.RedirectedWrites != 1 || s.ReclaimedPages != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestConfigValidation(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig()) // builds fine
	_ = r
	eng := sim.NewEngine()
	disks := make([]raid.Disk, 3)
	for i := range disks {
		d, err := ssd.New(i, eng, devConfig())
		if err != nil {
			t.Fatal(err)
		}
		disks[i] = d
	}
	lay := raid.Layout{Level: raid.RAID5, Disks: 3, UnitPages: 16, DiskPages: 1632}
	arr, err := raid.NewArray(eng, lay, disks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, arr, nil, Config{HotFrac: 2}); err == nil {
		t.Fatal("bad HotFrac accepted")
	}
}
