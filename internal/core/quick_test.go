package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// TestQuickSteeringInvariants drives random read/write traffic with random
// forced GC episodes through a steered array and checks the structural
// safety properties of the redirect machinery after every step and at
// quiescence:
//
//  1. No two live D_Table entries share a staging slot (no aliasing).
//  2. Reads of pages with live entries never touch the home page
//     (read-your-writes through the staging space).
//  3. After a full drain, no write entries remain and every staging write
//     slot is back in the pool (no slot leaks).
func TestQuickSteeringInvariants(t *testing.T) {
	type spec struct {
		Seed int64
		Ops  uint16
	}
	f := func(sp spec) bool {
		r := newRig(t, "reserved", DefaultConfig())
		rng := rand.New(rand.NewSource(sp.Seed))
		total := r.lay.LogicalPages()
		ops := int(sp.Ops%600) + 50
		writeSlots := r.st.Staging().FreeWriteSlots()
		readSlots := r.st.Staging().FreeReadSlots()
		for i := 0; i < ops; i++ {
			now := r.eng.Now()
			switch rng.Intn(10) {
			case 0:
				r.devs[rng.Intn(len(r.devs))].ForceGC(now)
			case 1, 2, 3:
				p := rng.Intn(total)
				n := 1 + rng.Intn(min(total-p, 24))
				r.arr.Read(now, p, n, nil)
			default:
				p := rng.Intn(total)
				n := 1 + rng.Intn(min(total-p, 24))
				r.arr.Write(now, p, n, nil)
			}
			r.eng.RunFor(sim.Time(rng.Intn(1500)) * sim.Microsecond)

			// Invariant 1: staging locations are alias-free.
			if !stagingAliasFree(r.st.DTable()) {
				t.Log("staging aliasing detected")
				return false
			}
		}
		// Invariant 2 on a sample of staged pages.
		checked := 0
		r.st.DTable().ForEach(func(k PageKey, e Entry) {
			if checked >= 5 {
				return
			}
			checked++
			before := r.recs[k.Disk].reads[int(k.Page)]
			// Issue a raw sub-op read through the router.
			arrayPage := arrayPageOf(r.lay, int(k.Disk), int(k.Page))
			if arrayPage < 0 {
				return // reserved-region page; not addressable via the array
			}
			r.arr.Read(r.eng.Now(), arrayPage, 1, nil)
			r.eng.RunFor(50 * sim.Millisecond)
			if r.recs[k.Disk].reads[int(k.Page)] != before {
				t.Logf("staged page (%d,%d) read from home", k.Disk, k.Page)
				checked = 1 << 20 // flag failure
			}
		})
		if checked >= 1<<20 {
			return false
		}
		// Invariant 3: drain everything.
		r.eng.Run()
		r.st.DrainAll(r.eng.Now())
		r.eng.Run()
		if r.st.DTable().WriteLen() != 0 {
			t.Logf("%d write entries left after drain", r.st.DTable().WriteLen())
			return false
		}
		if got := r.st.Staging().FreeWriteSlots(); got != writeSlots {
			t.Logf("write slots leaked: %d != %d", got, writeSlots)
			return false
		}
		// Read slots may legitimately be in use by hot copies; they must
		// never exceed the initial pool.
		if got := r.st.Staging().FreeReadSlots(); got > readSlots {
			t.Logf("read slot pool grew: %d > %d", got, readSlots)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 12,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(spec{Seed: r.Int63(), Ops: uint16(r.Intn(1 << 16))})
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// stagingAliasFree verifies no two entries reference the same staging slot.
func stagingAliasFree(dt *DTable) bool {
	type slot struct{ dev, page int32 }
	seen := make(map[slot]bool)
	ok := true
	dt.ForEach(func(_ PageKey, e Entry) {
		for _, s := range []slot{{e.Loc.Dev0, e.Loc.Page0}, {e.Loc.Dev1, e.Loc.Page1}} {
			if s.dev == NoMirror {
				continue
			}
			if seen[s] {
				ok = false
			}
			seen[s] = true
		}
	})
	return ok
}

// arrayPageOf inverts raid.Layout.Map for data pages, returning -1 for
// disk pages outside the array's data area (parity units or the reserved
// staging region).
func arrayPageOf(lay raid.Layout, disk, page int) int {
	if page < 0 || page >= lay.DiskPages {
		return -1
	}
	stripe := page / lay.UnitPages
	idx := lay.DataIndex(stripe, disk)
	if idx < 0 {
		return -1
	}
	return (stripe*lay.DataDisks()+idx)*lay.UnitPages + page%lay.UnitPages
}
