package core

import (
	"gcsteering/internal/raid"
	"testing"

	"gcsteering/internal/sim"
)

// stubDisk is a minimal raid.Disk for staging tests with controllable GC
// state and op logs.
type stubDisk struct {
	eng    *sim.Engine
	pages  int
	inGC   bool
	reads  []int
	writes []int
}

func (s *stubDisk) Read(now sim.Time, page, pages int, done func(sim.Time)) error {
	for i := 0; i < pages; i++ {
		s.reads = append(s.reads, page+i)
	}
	if done != nil {
		s.eng.At(now+10, done)
	}
	return nil
}

func (s *stubDisk) Write(now sim.Time, page, pages int, done func(sim.Time)) error {
	for i := 0; i < pages; i++ {
		s.writes = append(s.writes, page+i)
	}
	if done != nil {
		s.eng.At(now+100, done)
	}
	return nil
}

func (s *stubDisk) LogicalPages() int  { return s.pages }
func (s *stubDisk) InGC(sim.Time) bool { return s.inGC }

func TestSlotPool(t *testing.T) {
	p := newSlotPool(100, 3)
	if p.len() != 3 {
		t.Fatal("initial len")
	}
	a, ok := p.alloc()
	if !ok || a != 100 {
		t.Fatalf("first alloc = %d (low pages first)", a)
	}
	p.alloc()
	p.alloc()
	if _, ok := p.alloc(); ok {
		t.Fatal("alloc from empty pool succeeded")
	}
	p.put(a)
	if b, ok := p.alloc(); !ok || b != a {
		t.Fatal("put/alloc cycle broken")
	}
}

func TestDedicatedStaging(t *testing.T) {
	eng := sim.NewEngine()
	dev := &stubDisk{eng: eng, pages: 100}
	ds, err := NewDedicatedStaging(dev, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "Dedicated" {
		t.Fatal("name")
	}
	// 60% of the 100-page spare is usable as slots; 30% of that is reads.
	if ds.FreeReadSlots() != 18 || ds.FreeWriteSlots() != 42 {
		t.Fatalf("slots %d/%d", ds.FreeReadSlots(), ds.FreeWriteSlots())
	}
	rl, ok := ds.AllocRead(0, 0, false)
	if !ok || rl.Mirrored() || rl.Page0 >= 18 {
		t.Fatalf("read loc %+v", rl)
	}
	wl, ok := ds.AllocWrite(0, 0, false)
	if !ok || wl.Mirrored() || wl.Page0 < 18 {
		t.Fatalf("write loc %+v", wl)
	}
	var wrote, read bool
	ds.Write(0, wl, func(sim.Time) { wrote = true })
	ds.Read(0, rl, func(sim.Time) { read = true })
	eng.Run()
	if !wrote || !read {
		t.Fatal("callbacks missing")
	}
	if len(dev.writes) != 1 || dev.writes[0] != int(wl.Page0) {
		t.Fatalf("device writes %v", dev.writes)
	}
	ds.Free(rl)
	ds.Free(wl)
	if ds.FreeReadSlots() != 18 || ds.FreeWriteSlots() != 42 {
		t.Fatal("Free did not return slots to the right pools")
	}
	ds.SetUnavailable(0) // no-op, must not panic
}

func TestDedicatedStagingValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewDedicatedStaging(&stubDisk{eng: eng, pages: 100}, 1.5); err == nil {
		t.Fatal("bad readFrac accepted")
	}
	if _, err := NewDedicatedStaging(&stubDisk{eng: eng, pages: 1}, 0.5); err == nil {
		t.Fatal("tiny device accepted")
	}
}

func reservedFixture(t *testing.T, n int) (*sim.Engine, []*stubDisk, *ReservedStaging) {
	t.Helper()
	eng := sim.NewEngine()
	stubs := make([]*stubDisk, n)
	ifaces := make([]raid.Disk, n)
	for i := range stubs {
		stubs[i] = &stubDisk{eng: eng, pages: 200}
		ifaces[i] = stubs[i]
	}
	rs, err := NewReservedStaging(ifaces, 100, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return eng, stubs, rs
}

func TestReservedStagingAllocPrefersIdleAndExcludesHome(t *testing.T) {
	_, stubs, rs := reservedFixture(t, 4)
	if rs.Name() != "Reserved" {
		t.Fatal("name")
	}
	stubs[1].inGC = true
	// Exclude home disk 0; device 1 is collecting; expect copies on 2 and 3.
	loc, ok := rs.AllocWrite(0, 0, false)
	if !ok {
		t.Fatal("alloc failed")
	}
	if !loc.Mirrored() {
		t.Fatal("write loc not mirrored")
	}
	if loc.Dev0 == 0 || loc.Dev1 == 0 {
		t.Fatal("allocated on excluded home disk")
	}
	if loc.Dev0 == 1 || loc.Dev1 == 1 {
		t.Fatal("allocated on collecting disk despite idle candidates")
	}
	if loc.Dev0 == loc.Dev1 {
		t.Fatal("mirror copies on the same disk")
	}
	// 60% of the 100-page reservation is usable: reads in [100,130), writes
	// in [130,160).
	if loc.Page0 < 130 || loc.Page1 < 130 {
		t.Fatalf("write slots in read region: %+v", loc)
	}
	rl, ok := rs.AllocRead(0, 2, false)
	if !ok || rl.Mirrored() {
		t.Fatalf("read loc %+v", rl)
	}
	if rl.Page0 < 100 || rl.Page0 >= 130 {
		t.Fatalf("read slot outside read region: %+v", rl)
	}
}

func TestReservedStagingMirroredWriteWaitsForBoth(t *testing.T) {
	eng, stubs, rs := reservedFixture(t, 3)
	loc, ok := rs.AllocWrite(0, -1, false)
	if !ok {
		t.Fatal("alloc failed")
	}
	var doneAt sim.Time
	rs.Write(0, loc, func(tm sim.Time) { doneAt = tm })
	eng.Run()
	if doneAt != 100 {
		t.Fatalf("mirrored write done at %v, want 100 (both copies)", doneAt)
	}
	total := 0
	for _, s := range stubs {
		total += len(s.writes)
	}
	if total != 2 {
		t.Fatalf("wrote %d copies, want 2", total)
	}
}

func TestReservedStagingReadAvoidsCollectingCopy(t *testing.T) {
	eng, stubs, rs := reservedFixture(t, 3)
	loc, _ := rs.AllocWrite(0, -1, false)
	stubs[loc.Dev0].inGC = true
	rs.Read(0, loc, nil)
	eng.Run()
	if len(stubs[loc.Dev0].reads) != 0 {
		t.Fatal("read hit the collecting copy")
	}
	if len(stubs[loc.Dev1].reads) != 1 {
		t.Fatal("read missed the idle mirror")
	}
}

func TestReservedStagingUnavailableAndExhaustion(t *testing.T) {
	_, _, rs := reservedFixture(t, 3)
	rs.SetUnavailable(2)
	// With home=0 excluded and 2 unavailable only device 1 remains: a
	// mirrored alloc needs two distinct devices, so it must fail.
	if _, ok := rs.AllocWrite(0, 0, false); ok {
		t.Fatal("mirrored alloc succeeded with one candidate")
	}
	rs.SetUnavailable(-1)
	if _, ok := rs.AllocWrite(0, 0, false); !ok {
		t.Fatal("alloc failed after clearing unavailability")
	}
	// Exhaust the read pools entirely.
	n := 0
	for {
		if _, ok := rs.AllocRead(0, -1, false); !ok {
			break
		}
		n++
	}
	if n != rsReadCapacity(rs) {
		t.Fatalf("allocated %d read slots", n)
	}
}

// rsReadCapacity is the fixture's static read capacity: 3 devices × 30
// slots (60% of the 100-page reservation is usable, half of it for reads).
func rsReadCapacity(*ReservedStaging) int { return 3 * 30 }

func TestReservedStagingValidation(t *testing.T) {
	eng := sim.NewEngine()
	one := []raid.Disk{&stubDisk{eng: eng, pages: 200}}
	if _, err := NewReservedStaging(one, 100, 100, 0.5); err == nil {
		t.Fatal("single member accepted")
	}
	two := []raid.Disk{&stubDisk{eng: eng, pages: 150}, &stubDisk{eng: eng, pages: 150}}
	if _, err := NewReservedStaging(two, 100, 100, 0.5); err == nil {
		t.Fatal("undersized members accepted")
	}
}
