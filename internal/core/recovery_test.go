package core

import (
	"testing"

	"gcsteering/internal/sim"
)

// TestCrashRecoveryRoundTrip models the paper's §III-E power-failure story:
// the D_Table snapshot taken "in NVRAM" is restored into a fresh steering
// controller over the same array, after which staged pages are still served
// from the staging space and the staged slots are not reallocated.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	homeDisk, homePage := r.homeOf(0)
	r.devs[homeDisk].ForceGC(r.eng.Now())
	r.arr.Write(r.eng.Now(), 0, 1, nil)
	r.eng.RunFor(sim.Millisecond)
	key := PageKey{Disk: int32(homeDisk), Page: int32(homePage)}
	orig, ok := r.st.DTable().Get(key)
	if !ok {
		t.Fatal("precondition: staged entry missing")
	}
	blob, err := r.st.SnapshotDTable()
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": build a fresh controller over the same devices and array
	// (the flash contents survive a power failure; the controller state
	// does not).
	fresh, err := New(r.eng, r.arr, r.st.Staging(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The staging slot is still held by the old controller's accounting;
	// free it to model the fresh pools a restarted controller starts from,
	// then restore, which must re-reserve it.
	r.st.Staging().Free(orig.Loc)
	if err := fresh.RestoreDTable(blob); err != nil {
		t.Fatal(err)
	}
	got, ok := fresh.DTable().Get(key)
	if !ok || got.Loc != orig.Loc || !got.Write {
		t.Fatalf("restored entry %+v ok=%v, want %+v", got, ok, orig)
	}
	// The restored slots must be reserved: allocating until exhaustion must
	// never hand out the restored location.
	for {
		loc, ok := fresh.Staging().AllocWrite(r.eng.Now(), -1, false)
		if !ok {
			break
		}
		if loc.Dev0 == orig.Loc.Dev0 && loc.Page0 == orig.Loc.Page0 {
			t.Fatal("restored slot handed out again")
		}
		if loc.Mirrored() && loc.Dev1 == orig.Loc.Dev1 && loc.Page1 == orig.Loc.Page1 {
			t.Fatal("restored mirror slot handed out again")
		}
	}
	// Reads through the recovered controller still dodge the home page.
	before := r.recs[homeDisk].reads[homePage]
	r.arr.Read(r.eng.Now(), 0, 1, nil)
	r.eng.Run()
	if r.recs[homeDisk].reads[homePage] != before {
		t.Fatal("read after recovery bypassed the staged copy")
	}
}

func TestRestoreRejectsInconsistentSnapshot(t *testing.T) {
	r := newRig(t, "reserved", DefaultConfig())
	// Craft a snapshot naming a slot that is currently allocated elsewhere.
	loc, ok := r.st.Staging().AllocWrite(r.eng.Now(), -1, false)
	if !ok {
		t.Fatal("alloc failed")
	}
	dt := NewDTable()
	dt.Put(PageKey{Disk: 0, Page: 1}, loc, true)
	blob, err := dt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.st.RestoreDTable(blob); err == nil {
		t.Fatal("restore over an allocated slot accepted")
	}
	if err := r.st.RestoreDTable([]byte("garbage")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestReserveErrors(t *testing.T) {
	_, _, rs := reservedFixture(t, 3)
	loc, ok := rs.AllocWrite(0, -1, false)
	if !ok {
		t.Fatal("alloc failed")
	}
	if err := rs.Reserve(loc); err == nil {
		t.Fatal("reserving an allocated slot succeeded")
	}
	rs.Free(loc)
	if err := rs.Reserve(loc); err != nil {
		t.Fatalf("reserving a free slot failed: %v", err)
	}
}
