package core

import (
	"fmt"
	"sort"

	"gcsteering/internal/obs"
	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// must panics on an I/O error from a member device: steering and staging
// ranges are derived from validated geometry, so an error here is an
// internal invariant violation, not bad input.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Config tunes GC-Steering. The zero value is not useful; start from
// DefaultConfig.
type Config struct {
	// HotFrac bounds the popular-read working set per member disk as a
	// fraction of its data pages (the paper migrates "only up to 10% of
	// popular data blocks").
	HotFrac float64
	// MigrateHotReads enables proactive migration of popular read data to
	// the staging space (disable for the writes-only ablation).
	MigrateHotReads bool
	// ReclaimMerge merges contiguous redirected pages into one write-back
	// (the paper's merge-before-reclaim optimization; disable to ablate).
	ReclaimMerge bool
	// MigrateThreshold is how many recent re-reads a page needs before it
	// is considered popular enough to migrate (0 defaults to 2).
	MigrateThreshold int
	// ScanThresholdPages makes the popularity tracker scan-resistant: read
	// sub-ops larger than this bypass R_LRU entirely (a large sequential
	// scan is not "hot data" and would otherwise flush the LRU and trigger
	// bulk migrations; note sub-ops are capped at the stripe unit, so this
	// must sit below the unit size to catch full-unit scan sub-ops).
	// 0 defaults to 8 pages (32 KiB).
	ScanThresholdPages int
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		HotFrac:            0.10,
		MigrateHotReads:    true,
		ReclaimMerge:       true,
		MigrateThreshold:   2,
		ScanThresholdPages: 8,
	}
}

// Stats counts the redirector's activity, all in pages.
type Stats struct {
	RedirectedReads  int64 // read pages served by the staging space
	RedirectedWrites int64 // write pages absorbed by the staging space
	DirectReads      int64 // read pages sent to their home disk
	DirectWrites     int64 // write pages sent to their home disk

	// GCPages counts pages addressed to a disk that was collecting at the
	// time; GCPagesRedirected counts how many of those dodged the disk.
	// Their ratio is the paper's "85.5% of user I/O requests during the GC
	// period are redirected" metric.
	GCPages           int64
	GCPagesRedirected int64

	// QuarantinePages counts pages addressed to a health-quarantined disk;
	// QuarantinePagesRedirected those that dodged it — the same pair as
	// GCPages for the generalized busy signal.
	QuarantinePages           int64
	QuarantinePagesRedirected int64

	Migrations        int64 // hot-read pages copied to staging
	MigrationsSkipped int64 // hot pages not migrated (budget exhausted)
	MigrationsShed    int64 // hot pages not migrated (queue pressure)
	// WriteAllocFallbacks counts steered writes where the allocator was
	// actually asked for a slot and had none; WriteAllocGated counts writes
	// that skipped allocation entirely because the rebuild-headroom gate was
	// closed. The two are different signals — fallbacks mean the pool is
	// exhausted, gated skips mean the gate is doing its job — and folding
	// gated skips into WriteAllocFallbacks (as earlier versions did)
	// overstated allocator exhaustion during rebuilds.
	WriteAllocFallbacks int64
	WriteAllocGated     int64

	ReclaimRuns         int64 // write-back batches issued
	ReclaimedPages      int64 // pages drained back to their home disks
	ReclaimSkippedStale int64 // write-backs superseded by a newer redirect
}

// Steering is the GC-Steering controller. It installs itself as the
// array's sub-op router: data reads and writes addressed to a member disk
// that is garbage-collecting (or to a degraded array during
// reconstruction) are redirected to the staging space; parity traffic is
// never redirected, so the array's redundancy stays in place (§III-C).
type Steering struct {
	eng     *sim.Engine
	arr     *raid.Array
	devs    []raid.Disk
	staging Staging
	dt      *DTable
	hot     []*RLRU
	cfg     Config

	rebuilding bool
	failedHome int    // member whose home locations are gone (-1 = none)
	draining   []bool // per-disk: reclaim drain in progress
	writeCap   int    // staging write slots at construction
	stats      Stats

	// Trace, when non-nil, receives steering decisions: redirects,
	// migrations, allocator fallbacks/gated skips, and reclaim runs.
	Trace *obs.Tracer

	// Unhealthy, when non-nil, reports members the health monitor has
	// quarantined. The redirector treats them exactly like collecting
	// disks — reads of staged pages dodge them, writes are steered away —
	// and additionally migrates their hot read pages to staging, since a
	// quarantine (unlike a GC episode) can outlast the popularity of the
	// data stuck on the sick member.
	Unhealthy func(now sim.Time, disk int) bool

	// Pressure, when non-nil, reports queue pressure (admission control
	// nearly full); hot-read migrations are shed while it holds so
	// background copies do not compete with a saturated foreground.
	Pressure func() bool

	// Scratch buffers reused across route calls. The engine is
	// single-threaded and every buffer is consumed before route returns;
	// the reclaim drain defers through the event queue, so route never
	// re-enters itself.
	stagedScratch []StageLoc
	locScratch    []StageLoc
	runScratch    []pageRun
}

// pageRun is a contiguous page range forwarded to the home disk in one op.
type pageRun struct{ page, pages int }

// New wires a Steering controller onto the array. It replaces the array's
// Route hook.
func New(eng *sim.Engine, arr *raid.Array, staging Staging, cfg Config) (*Steering, error) {
	if cfg.HotFrac < 0 || cfg.HotFrac > 1 {
		return nil, fmt.Errorf("core: HotFrac %v outside [0,1]", cfg.HotFrac)
	}
	devs := arr.Disks()
	s := &Steering{
		eng:        eng,
		arr:        arr,
		devs:       devs,
		staging:    staging,
		dt:         NewDTable(),
		cfg:        cfg,
		failedHome: -1,
		draining:   make([]bool, len(devs)),
	}
	hotCap := int(cfg.HotFrac * float64(arr.Layout().DiskPages))
	if hotCap < 1 {
		hotCap = 1
	}
	for range devs {
		s.hot = append(s.hot, NewRLRU(hotCap))
	}
	arr.Route = s.route
	arr.GCAwareWrites = true
	s.writeCap = staging.FreeWriteSlots()
	return s, nil
}

// stagingPressure reports that the staging write pool is nearly exhausted.
// The paper defers reclaim until reconstruction completes, but a rebuild
// that spans the whole workload would otherwise overflow the staging space
// outright, so under pressure the reclaimer drains even while rebuilding
// (documented as a deviation in EXPERIMENTS.md).
func (s *Steering) stagingPressure() bool {
	return s.staging.FreeWriteSlots()*10 < s.writeCap
}

// DTable exposes the redirect log (tests, persistence, and the facade).
func (s *Steering) DTable() *DTable { return s.dt }

// Stats returns a snapshot of the counters.
func (s *Steering) Stats() Stats { return s.stats }

// Staging returns the staging space.
func (s *Steering) Staging() Staging { return s.staging }

// Rebuilding reports whether reconstruction mode is active.
func (s *Steering) Rebuilding() bool { return s.rebuilding }

// SetRebuilding switches reconstruction mode: while active, *all* data
// writes and D_Table-hit reads are steered to the staging space so the
// degraded array can dedicate itself to recovery (§III-D), and reclaim is
// suspended. Leaving reconstruction mode kicks a full drain.
func (s *Steering) SetRebuilding(now sim.Time, on bool) {
	s.rebuilding = on
	if !on {
		s.DrainAll(now)
	}
}

// SetFailedHome records that member disk's home locations are unreachable:
// the reclaimer will not try to write entries back to it (their staged
// copies keep shadowing the lost home until the member is rebuilt). Pass
// -1 to clear.
func (s *Steering) SetFailedHome(disk int) { s.failedHome = disk }

// DropStagedOn handles the loss of member dev as a staging target (§III-D:
// upon an SSD failure, its staged contents must be accounted for before
// reconstruction). Hot-read copies located on the failed member are simply
// dropped — the home copy is authoritative. Redirected-write entries keep
// their surviving mirror (the failed copy is forgotten); single-copy write
// entries on the failed member are dropped too, because the in-place parity
// update at redirect time makes the data reconstructible from the array.
func (s *Steering) DropStagedOn(dev int32) {
	type fix struct {
		key PageKey
		e   Entry
	}
	var drops []PageKey
	var remaps []fix
	s.dt.ForEach(func(k PageKey, e Entry) {
		onDev0 := e.Loc.Dev0 == dev
		onDev1 := e.Loc.Mirrored() && e.Loc.Dev1 == dev
		if !onDev0 && !onDev1 {
			return
		}
		if !e.Write || (!e.Loc.Mirrored() && onDev0) {
			drops = append(drops, k)
			return
		}
		// Mirrored write: keep the surviving copy as the only copy.
		loc := e.Loc
		if onDev0 {
			loc.Dev0, loc.Page0 = loc.Dev1, loc.Page1
		}
		loc.Dev1 = NoMirror
		remaps = append(remaps, fix{k, Entry{Loc: loc, Write: true}})
	})
	// ForEach visits the D_Table in map order; sort before applying so the
	// staging pool's free list fills in a run-independent order.
	sort.Slice(drops, func(i, j int) bool { return drops[i].less(drops[j]) })
	sort.Slice(remaps, func(i, j int) bool { return remaps[i].key.less(remaps[j].key) })
	for _, k := range drops {
		if e, ok := s.dt.Get(k); ok {
			s.freeSurviving(e.Loc, dev)
			s.dt.Delete(k)
		}
	}
	for _, f := range remaps {
		s.dt.Put(f.key, f.e.Loc, true)
	}
}

// freeSurviving returns to the pool only the copies of loc that are not on
// the failed device (the failed device's slots are gone with it).
func (s *Steering) freeSurviving(loc StageLoc, failed int32) {
	if loc.Dev0 != failed && loc.Dev0 != NoMirror {
		s.staging.Free(StageLoc{Dev0: loc.Dev0, Page0: loc.Page0, Dev1: NoMirror})
	}
	if loc.Mirrored() && loc.Dev1 != failed {
		s.staging.Free(StageLoc{Dev0: loc.Dev1, Page0: loc.Page1, Dev1: NoMirror})
	}
}

// SnapshotDTable serializes the redirect log, modelling the paper's
// battery-backed NVRAM persistence (§III-E): a power failure must not lose
// the mapping from home locations to staged data.
func (s *Steering) SnapshotDTable() ([]byte, error) { return s.dt.Snapshot() }

// RestoreDTable reloads a redirect log after a crash. Every restored
// entry's staging slots are re-reserved so the allocator cannot hand them
// out again; the restore fails (leaving an empty table) if any slot is
// inconsistent with the staging space.
func (s *Steering) RestoreDTable(data []byte) error {
	dt := NewDTable()
	if err := dt.Restore(data); err != nil {
		return err
	}
	var reserveErr error
	dt.ForEach(func(k PageKey, e Entry) {
		if reserveErr != nil {
			return
		}
		if err := s.staging.Reserve(e.Loc); err != nil {
			reserveErr = fmt.Errorf("entry (%d,%d): %w", k.Disk, k.Page, err)
		}
	})
	if reserveErr != nil {
		return reserveErr
	}
	s.dt = dt
	return nil
}

// unhealthy consults the health monitor's quarantine signal, if wired.
func (s *Steering) unhealthy(now sim.Time, disk int) bool {
	return s.Unhealthy != nil && s.Unhealthy(now, disk)
}

// RedirectRatio returns the fraction of GC-period pages that dodged a
// collecting disk (the paper's 85.5% metric). Zero when no GC was observed.
func (s *Steering) RedirectRatio() float64 {
	if s.stats.GCPages == 0 {
		return 0
	}
	return float64(s.stats.GCPagesRedirected) / float64(s.stats.GCPages)
}

// route is installed as raid.Array.Route. It runs once per sub-op on
// the steering request path and is a gcsvet hot-path root: hotalloc
// holds it and everything it reaches allocation-free.
//
//gcsvet:hot
func (s *Steering) route(now sim.Time, op raid.SubOp, done func(sim.Time)) bool {
	switch op.Kind {
	case raid.OpParityRead, raid.OpParityWrite:
		// Parity stays in its correct position so redirected data remains
		// recoverable (§III-C); never redirect it.
		return false
	case raid.OpDataWrite:
		return s.routeWrite(now, op, done)
	default: // OpDataRead, OpOldDataRead
		return s.routeRead(now, op, done)
	}
}

// barrier fires done after n completions (nil-safe).
func barrier(n int, done func(sim.Time)) func(sim.Time) {
	if done == nil {
		return nil
	}
	remain := n
	//lint:allow hotalloc sanctioned one-closure-per-request fan-in barrier, mirroring the raid-level barrier (PR 7)
	return func(t sim.Time) {
		remain--
		if remain == 0 {
			done(t)
		}
	}
}

// routeRead serves a read sub-op. Staged pages are always read from the
// staging space — D_Table is checked first so fetched data is always
// up to date (§III-C) — and the remainder goes to the home disk, which may
// be collecting (only popular data has a staged copy to dodge to).
func (s *Steering) routeRead(now sim.Time, op raid.SubOp, done func(sim.Time)) bool {
	disk := op.Disk
	inGC := s.devs[disk].InGC(now)
	quar := s.unhealthy(now, disk)

	staged := s.stagedScratch[:0]
	anyStaged := false
	for i := 0; i < op.Pages; i++ {
		if e, ok := s.dt.Get(PageKey{Disk: int32(disk), Page: int32(op.Page + i)}); ok {
			staged = append(staged, e.Loc)
			anyStaged = true
		} else {
			staged = append(staged, StageLoc{Dev0: NoMirror})
		}
	}
	if inGC {
		s.stats.GCPages += int64(op.Pages)
	}
	if quar {
		s.stats.QuarantinePages += int64(op.Pages)
	}
	if !anyStaged && !inGC && !quar {
		// Fast path: nothing staged, disk healthy. Track popularity and
		// maybe migrate, but let the array issue the op itself.
		s.stagedScratch = staged[:0]
		s.observeRead(now, op)
		return false
	}

	// Count completions: one per staged page + one per direct run.
	direct := s.runScratch[:0]
	nOps := 0
	for i := 0; i < op.Pages; i++ {
		if staged[i].Dev0 != NoMirror {
			nOps++
			continue
		}
		if n := len(direct); n > 0 && direct[n-1].page+direct[n-1].pages == op.Page+i {
			direct[n-1].pages++
		} else {
			direct = append(direct, pageRun{op.Page + i, 1})
		}
	}
	nOps += len(direct)
	cb := barrier(nOps, done)
	for i := 0; i < op.Pages; i++ {
		if staged[i].Dev0 == NoMirror {
			continue
		}
		s.stats.RedirectedReads++
		if inGC {
			s.stats.GCPagesRedirected++
		}
		if quar {
			s.stats.QuarantinePagesRedirected++
		}
		if s.Trace.Enabled() {
			s.Trace.Emit(now, obs.Event{Kind: obs.KRedirectRead,
				Dev: int32(disk), Page: int64(op.Page + i), Pages: 1,
				Aux: int64(staged[i].Dev0), Aux2: boolInt(inGC)})
		}
		s.staging.Read(now, staged[i], cb)
	}
	for _, r := range direct {
		s.stats.DirectReads += int64(r.pages)
		must(s.devs[disk].Read(now, r.page, r.pages, cb))
	}
	if quar && op.Kind == raid.OpDataRead && op.Pages <= s.scanThreshold() {
		// A quarantine, unlike a GC episode, can outlast the popularity of
		// the data stuck on the sick member: keep tracking the pages that
		// still had to be read directly so their hot ones escape to the
		// staging space. (GC-only busy reads intentionally skip this — GC
		// episodes end on their own, and tracking here would change the
		// established GC-path behaviour.)
		for _, r := range direct {
			for i := 0; i < r.pages; i++ {
				s.touchAndMigrate(now, disk, int32(r.page+i))
			}
		}
	}
	s.stagedScratch, s.runScratch = staged[:0], direct[:0]
	return true
}

// scanThreshold returns the effective scan-resistance cutoff in pages.
func (s *Steering) scanThreshold() int {
	if s.cfg.ScanThresholdPages > 0 {
		return s.cfg.ScanThresholdPages
	}
	return 8
}

// observeRead updates the popularity tracker and proactively migrates
// popular pages to the staging space. Migration piggybacks on the read the
// user already performed (the data is in controller memory), so only the
// staging write is charged, off the request's critical path.
func (s *Steering) observeRead(now sim.Time, op raid.SubOp) {
	s.stats.DirectReads += int64(op.Pages)
	if op.Kind != raid.OpDataRead {
		return // RMW old-data reads are not popularity signals
	}
	if op.Pages > s.scanThreshold() {
		return // scan resistance: large sequential reads are not hot data
	}
	for i := 0; i < op.Pages; i++ {
		s.touchAndMigrate(now, op.Disk, int32(op.Page+i))
	}
}

// touchAndMigrate records one read of (disk, page) in the popularity
// tracker and, once the page crosses the migrate threshold, copies it to
// the staging space — unless the admission controller reports queue
// pressure, in which case the copy is shed (the page stays tracked and
// gets another chance on its next read).
func (s *Steering) touchAndMigrate(now sim.Time, disk int, page int32) {
	threshold := s.cfg.MigrateThreshold
	if threshold <= 0 {
		threshold = 2
	}
	hits := s.hot[disk].Touch(page)
	if hits < threshold || !s.cfg.MigrateHotReads {
		return
	}
	key := PageKey{Disk: int32(disk), Page: page}
	if _, already := s.dt.Get(key); already {
		return
	}
	if s.Pressure != nil && s.Pressure() {
		s.stats.MigrationsShed++
		if s.Trace.Enabled() {
			s.Trace.Emit(now, obs.Event{Kind: obs.KShed,
				Dev: int32(disk), Page: int64(page), Pages: 1, Aux: 1})
		}
		return
	}
	loc, ok := s.staging.AllocRead(now, disk, true)
	if !ok {
		s.stats.MigrationsSkipped++
		return
	}
	s.dt.Put(key, loc, false)
	s.stats.Migrations++
	if s.Trace.Enabled() {
		s.Trace.Emit(now, obs.Event{Kind: obs.KMigrate,
			Dev: int32(disk), Page: int64(page), Pages: 1,
			Aux: int64(loc.Dev0)})
	}
	s.staging.Write(now, loc, nil)
}

// routeWrite serves a write sub-op. While the home disk is collecting (or
// the array is rebuilding) every page is redirected; otherwise only pages
// that already have a live D_Table entry are redirected (the staging copy
// must stay the newest version). The array updates parity in place either
// way — route never sees parity ops here.
func (s *Steering) routeWrite(now sim.Time, op raid.SubOp, done func(sim.Time)) bool {
	disk := op.Disk
	inGC := s.devs[disk].InGC(now)
	quar := s.unhealthy(now, disk)
	steerAll := inGC || quar || s.rebuilding
	if inGC {
		s.stats.GCPages += int64(op.Pages)
	}
	if quar {
		s.stats.QuarantinePages += int64(op.Pages)
	}

	if !steerAll {
		// Healthy disk: hot-read copies of written pages are dropped (the
		// new data makes them stale), and only pages with pending
		// redirected-write data must keep going to the staging space so the
		// staged copy stays the newest version.
		any := false
		for i := 0; i < op.Pages; i++ {
			key := PageKey{Disk: int32(disk), Page: int32(op.Page + i)}
			if e, ok := s.dt.Get(key); ok {
				if e.Write {
					any = true
				} else {
					s.staging.Free(e.Loc)
					s.dt.Delete(key)
				}
			}
		}
		if !any {
			s.stats.DirectWrites += int64(op.Pages)
			s.invalidateHot(disk, op)
			return false
		}
	}

	locs := s.locScratch[:0]
	direct := s.runScratch[:0]
	for i := 0; i < op.Pages; i++ {
		key := PageKey{Disk: int32(disk), Page: int32(op.Page + i)}
		e, exists := s.dt.Get(key)
		if exists && !e.Write && !steerAll {
			// Stale hot-read copy under a healthy write: invalidate and
			// write through.
			s.staging.Free(e.Loc)
			s.dt.Delete(key)
			exists = false
		}
		if steerAll || exists {
			// Outside reconstruction the redirect must land on idle
			// devices; steering onto a collecting device helps nothing, so
			// the write falls through to its home disk instead. During
			// reconstruction, keep allocation headroom: once the pool runs
			// low the remaining writes go to the degraded array directly
			// rather than grinding the staging devices at full occupancy.
			headroom := !s.rebuilding || s.staging.FreeWriteSlots()*4 >= s.writeCap
			attempted := headroom || exists
			var loc StageLoc
			ok := false
			if attempted {
				loc, ok = s.staging.AllocWrite(now, disk, !s.rebuilding)
			}
			if ok {
				if exists {
					s.staging.Free(e.Loc)
				}
				s.dt.Put(key, loc, true)
				locs = append(locs, loc)
				s.stats.RedirectedWrites++
				if inGC {
					s.stats.GCPagesRedirected++
				}
				if quar {
					s.stats.QuarantinePagesRedirected++
				}
				if s.Trace.Enabled() {
					s.Trace.Emit(now, obs.Event{Kind: obs.KRedirectWrite,
						Dev: int32(disk), Page: int64(op.Page + i), Pages: 1,
						Aux: int64(loc.Dev0), Aux2: boolInt(inGC)})
				}
				continue
			}
			// The page goes to the home disk instead: either the allocator
			// was asked and is exhausted (a fallback), or the rebuild
			// headroom gate skipped the allocator entirely (a gated skip).
			// Only genuine allocation attempts count as fallbacks.
			if attempted {
				s.stats.WriteAllocFallbacks++
			} else {
				s.stats.WriteAllocGated++
			}
			if s.Trace.Enabled() {
				kind := obs.KAllocFallback
				if !attempted {
					kind = obs.KAllocGated
				}
				s.Trace.Emit(now, obs.Event{Kind: kind,
					Dev: int32(disk), Page: int64(op.Page + i), Pages: 1,
					Aux: int64(s.staging.FreeWriteSlots())})
			}
			// Under rebuild-time pressure, kick the reclaimer so capacity
			// comes back, and drop any stale staged copy so it cannot
			// shadow the new data.
			if s.rebuilding && s.stagingPressure() {
				s.DrainAll(now)
			}
			if exists {
				s.staging.Free(e.Loc)
				s.dt.Delete(key)
			}
		}
		if n := len(direct); n > 0 && direct[n-1].page+direct[n-1].pages == op.Page+i {
			direct[n-1].pages++
		} else {
			direct = append(direct, pageRun{op.Page + i, 1})
		}
	}
	s.invalidateHot(disk, op)
	if len(locs) == 0 && len(direct) == 1 && direct[0].pages == op.Pages {
		// Everything fell back: let the array issue it.
		s.locScratch, s.runScratch = locs[:0], direct[:0]
		s.stats.DirectWrites += int64(op.Pages)
		return false
	}
	cb := barrier(len(locs)+len(direct), done)
	for _, loc := range locs {
		s.staging.Write(now, loc, cb)
	}
	for _, r := range direct {
		s.stats.DirectWrites += int64(r.pages)
		must(s.devs[disk].Write(now, r.page, r.pages, cb))
	}
	s.locScratch, s.runScratch = locs[:0], direct[:0]
	return true
}

// invalidateHot drops written pages from the popularity tracker: freshly
// written data is no longer "read-only hot".
func (s *Steering) invalidateHot(disk int, op raid.SubOp) {
	lru := s.hot[disk]
	for i := 0; i < op.Pages; i++ {
		lru.Remove(int32(op.Page + i))
	}
}
