package core

import (
	"fmt"

	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// Staging is the staging space of GC-Steering in one of the paper's two
// configurations (§III-A): a dedicated spare SSD, or the pre-reserved space
// of every SSD inside the array. Locations are allocated one page at a
// time; redirected write data gets redundancy (mirrored on reserved
// staging, parity-protected in the array for dedicated staging), migrated
// hot-read data gets a single droppable copy (RAID0-style).
type Staging interface {
	// Name returns "Dedicated" or "Reserved" as in Fig. 10.
	Name() string
	// AllocRead reserves a slot for one migrated hot-read page. exclude is
	// the page's home disk (reserved staging avoids it; a copy on the disk
	// whose GC we are dodging would be useless). With requireIdle the
	// allocation fails unless it can land on devices that are not
	// collecting — steering onto an equally-busy device would not dodge
	// anything. ok=false means no suitable slot exists.
	AllocRead(now sim.Time, exclude int, requireIdle bool) (StageLoc, bool)
	// AllocWrite reserves a slot (with redundancy) for one redirected
	// write page under the same rules.
	AllocWrite(now sim.Time, exclude int, requireIdle bool) (StageLoc, bool)
	// Read fetches one staged page, preferring a copy whose device is not
	// collecting.
	Read(now sim.Time, loc StageLoc, done func(now sim.Time))
	// Write stores one staged page (both copies when mirrored).
	Write(now sim.Time, loc StageLoc, done func(now sim.Time))
	// Free returns a location's slots to the pool.
	Free(loc StageLoc)
	// Reserve removes a specific location's slots from the pools; it is
	// the recovery path: after a crash, D_Table restored from NVRAM names
	// slots that must not be handed out again. Reserving an already-
	// allocated slot is an error.
	Reserve(loc StageLoc) error
	// SetUnavailable excludes a member device from future allocations
	// (reserved staging during reconstruction); pass -1 to clear.
	SetUnavailable(disk int)
	// FreeReadSlots and FreeWriteSlots report remaining capacity.
	FreeReadSlots() int
	FreeWriteSlots() int
}

// slotUsableFrac caps how much of a staging region is ever handed out as
// slots. The remainder is churn headroom: a staging region driven to 100%
// occupancy would pin its device at near-total FTL utilization, where every
// GC victim is almost entirely valid and write amplification explodes.
const slotUsableFrac = 0.6

// slotPool hands out single-page slots from a fixed range.
type slotPool struct {
	free []int32
}

func newSlotPool(base, n int) *slotPool {
	p := &slotPool{free: make([]int32, 0, n)}
	// Stack ordered so low pages are handed out first.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, int32(base+i))
	}
	return p
}

func (p *slotPool) alloc() (int32, bool) {
	n := len(p.free)
	if n == 0 {
		return 0, false
	}
	s := p.free[n-1]
	p.free = p.free[:n-1]
	return s, true
}

func (p *slotPool) put(s int32) { p.free = append(p.free, s) }

// take removes a specific slot from the pool, reporting whether it was
// free.
func (p *slotPool) take(s int32) bool {
	for i, v := range p.free {
		if v == s {
			p.free = append(p.free[:i], p.free[i+1:]...)
			return true
		}
	}
	return false
}

func (p *slotPool) len() int { return len(p.free) }

// DedicatedStaging implements the dedicated-spare-SSD configuration. The
// spare's pages split into a hot-read region and a write region. Redirected
// writes are stored once: their loss is tolerable because GC-Steering
// updates the array parity in place when it redirects a write, so the data
// is reconstructible from the array (§III-E).
type DedicatedStaging struct {
	dev     raid.Disk
	readEnd int32
	reads   *slotPool
	writes  *slotPool
}

// NewDedicatedStaging uses readFrac of the spare for hot-read copies and
// the rest for redirected writes.
func NewDedicatedStaging(dev raid.Disk, readFrac float64) (*DedicatedStaging, error) {
	if readFrac < 0 || readFrac > 1 {
		return nil, fmt.Errorf("core: readFrac %v outside [0,1]", readFrac)
	}
	total := dev.LogicalPages()
	if total < 2 {
		return nil, fmt.Errorf("core: dedicated staging device too small")
	}
	usable := int(slotUsableFrac * float64(total))
	readSlots := int(readFrac * float64(usable))
	return &DedicatedStaging{
		dev:     dev,
		readEnd: int32(readSlots),
		reads:   newSlotPool(0, readSlots),
		writes:  newSlotPool(readSlots, usable-readSlots),
	}, nil
}

// Name implements Staging.
func (d *DedicatedStaging) Name() string { return "Dedicated" }

// AllocRead implements Staging.
func (d *DedicatedStaging) AllocRead(now sim.Time, exclude int, requireIdle bool) (StageLoc, bool) {
	if requireIdle && d.dev.InGC(now) {
		return StageLoc{}, false
	}
	p, ok := d.reads.alloc()
	if !ok {
		return StageLoc{}, false
	}
	return StageLoc{Dev0: 0, Page0: p, Dev1: NoMirror}, true
}

// AllocWrite implements Staging.
func (d *DedicatedStaging) AllocWrite(now sim.Time, exclude int, requireIdle bool) (StageLoc, bool) {
	if requireIdle && d.dev.InGC(now) {
		return StageLoc{}, false
	}
	p, ok := d.writes.alloc()
	if !ok {
		return StageLoc{}, false
	}
	return StageLoc{Dev0: 0, Page0: p, Dev1: NoMirror}, true
}

// Read implements Staging.
func (d *DedicatedStaging) Read(now sim.Time, loc StageLoc, done func(sim.Time)) {
	must(d.dev.Read(now, int(loc.Page0), 1, done))
}

// Write implements Staging.
func (d *DedicatedStaging) Write(now sim.Time, loc StageLoc, done func(sim.Time)) {
	must(d.dev.Write(now, int(loc.Page0), 1, done))
}

// Free implements Staging.
func (d *DedicatedStaging) Free(loc StageLoc) {
	if loc.Page0 < d.readEnd {
		d.reads.put(loc.Page0)
	} else {
		d.writes.put(loc.Page0)
	}
}

// Reserve implements Staging.
func (d *DedicatedStaging) Reserve(loc StageLoc) error {
	pool := d.writes
	if loc.Page0 < d.readEnd {
		pool = d.reads
	}
	if !pool.take(loc.Page0) {
		return fmt.Errorf("core: slot %d not free", loc.Page0)
	}
	return nil
}

// SetUnavailable implements Staging (no-op: the spare is outside the array).
func (d *DedicatedStaging) SetUnavailable(int) {}

// FreeReadSlots implements Staging.
func (d *DedicatedStaging) FreeReadSlots() int { return d.reads.len() }

// FreeWriteSlots implements Staging.
func (d *DedicatedStaging) FreeWriteSlots() int { return d.writes.len() }

// ReservedStaging implements the paper's default configuration: a reserved
// page range at the top of every member SSD. Hot-read copies are stored
// once, interleaved across members (RAID0-style); redirected write data is
// mirrored on two distinct members (RAID1-style), so a single SSD failure
// loses nothing (§III-E).
type ReservedStaging struct {
	devs    []raid.Disk
	base    int32 // first reserved page on each member
	readEnd int32 // reserved pages below this offset hold hot-read copies
	reads   []*slotPool
	writes  []*slotPool

	rr          int // round-robin cursor
	unavailable int

	// pick's scratch, consumed by the caller before the next pick: idle
	// candidates first (with capacity for busy ones appended behind them),
	// busy candidates second.
	idleScratch []int
	busyScratch []int
}

// NewReservedStaging reserves reservedPages on each member starting at
// page base (the first page past the array's usable area), splitting each
// member's reservation with readFrac for hot-read copies.
func NewReservedStaging(devs []raid.Disk, base, reservedPages int, readFrac float64) (*ReservedStaging, error) {
	if len(devs) < 2 {
		return nil, fmt.Errorf("core: reserved staging needs >= 2 members for mirroring")
	}
	if readFrac < 0 || readFrac > 1 {
		return nil, fmt.Errorf("core: readFrac %v outside [0,1]", readFrac)
	}
	if reservedPages < 2 {
		return nil, fmt.Errorf("core: reservedPages %d too small", reservedPages)
	}
	for i, d := range devs {
		if d.LogicalPages() < base+reservedPages {
			return nil, fmt.Errorf("core: member %d has %d pages, reservation needs %d",
				i, d.LogicalPages(), base+reservedPages)
		}
	}
	usable := int(slotUsableFrac * float64(reservedPages))
	readSlots := int(readFrac * float64(usable))
	s := &ReservedStaging{
		devs:        devs,
		base:        int32(base),
		readEnd:     int32(base + readSlots),
		unavailable: -1,
		idleScratch: make([]int, 0, 2*len(devs)),
		busyScratch: make([]int, 0, len(devs)),
	}
	for range devs {
		s.reads = append(s.reads, newSlotPool(base, readSlots))
		s.writes = append(s.writes, newSlotPool(base+readSlots, usable-readSlots))
	}
	return s, nil
}

// Name implements Staging.
func (r *ReservedStaging) Name() string { return "Reserved" }

// pick selects up to want distinct member devices with a free slot in the
// given pools, skipping skip0 and the unavailable member, preferring
// members not currently collecting. With onlyIdle, collecting members are
// excluded entirely: redirecting onto a device that is itself collecting
// would trade one GC queue for another.
func (r *ReservedStaging) pick(now sim.Time, pools []*slotPool, skip0, want int, onlyIdle bool) []int {
	// idleScratch has capacity for every device twice, so appending busy
	// behind idle below never reallocates.
	idle, busy := r.idleScratch[:0], r.busyScratch[:0]
	n := len(r.devs)
	for i := 0; i < n; i++ {
		d := (r.rr + i) % n
		if d == skip0 || d == r.unavailable || pools[d].len() == 0 {
			continue
		}
		if r.devs[d].InGC(now) {
			if !onlyIdle {
				busy = append(busy, d)
			}
		} else {
			idle = append(idle, d)
		}
	}
	r.rr = (r.rr + 1) % n
	out := append(idle, busy...)
	if len(out) > want {
		out = out[:want]
	}
	return out
}

// AllocRead implements Staging.
func (r *ReservedStaging) AllocRead(now sim.Time, exclude int, requireIdle bool) (StageLoc, bool) {
	cands := r.pick(now, r.reads, exclude, 1, requireIdle)
	if len(cands) < 1 {
		return StageLoc{}, false
	}
	p, _ := r.reads[cands[0]].alloc()
	return StageLoc{Dev0: int32(cands[0]), Page0: p, Dev1: NoMirror}, true
}

// AllocWrite implements Staging.
func (r *ReservedStaging) AllocWrite(now sim.Time, exclude int, requireIdle bool) (StageLoc, bool) {
	cands := r.pick(now, r.writes, exclude, 2, requireIdle)
	if len(cands) < 2 {
		return StageLoc{}, false
	}
	p0, _ := r.writes[cands[0]].alloc()
	p1, _ := r.writes[cands[1]].alloc()
	return StageLoc{Dev0: int32(cands[0]), Page0: p0, Dev1: int32(cands[1]), Page1: p1}, true
}

// Read implements Staging: it reads the copy whose member is available and
// not busy collecting, if it has a choice.
func (r *ReservedStaging) Read(now sim.Time, loc StageLoc, done func(sim.Time)) {
	dev, page := loc.Dev0, loc.Page0
	if loc.Mirrored() {
		switch {
		case int(dev) == r.unavailable:
			dev, page = loc.Dev1, loc.Page1
		case int(loc.Dev1) != r.unavailable && r.devs[dev].InGC(now) && !r.devs[loc.Dev1].InGC(now):
			dev, page = loc.Dev1, loc.Page1
		}
	}
	must(r.devs[dev].Read(now, int(page), 1, done))
}

// Write implements Staging: mirrored locations complete when both copies
// are durable.
func (r *ReservedStaging) Write(now sim.Time, loc StageLoc, done func(sim.Time)) {
	if !loc.Mirrored() {
		must(r.devs[loc.Dev0].Write(now, int(loc.Page0), 1, done))
		return
	}
	remain := 2
	//lint:allow hotalloc one mirror barrier closure per mirrored staging write; the redundancy is the feature's budgeted cost
	cb := func(t sim.Time) {
		remain--
		if remain == 0 && done != nil {
			done(t)
		}
	}
	if done == nil {
		cb = nil
	}
	must(r.devs[loc.Dev0].Write(now, int(loc.Page0), 1, cb))
	must(r.devs[loc.Dev1].Write(now, int(loc.Page1), 1, cb))
}

// Free implements Staging.
func (r *ReservedStaging) Free(loc StageLoc) {
	r.freeSlot(loc.Dev0, loc.Page0)
	if loc.Mirrored() {
		r.freeSlot(loc.Dev1, loc.Page1)
	}
}

func (r *ReservedStaging) freeSlot(dev, page int32) {
	if page < r.readEnd {
		r.reads[dev].put(page)
	} else {
		r.writes[dev].put(page)
	}
}

// Reserve implements Staging.
func (r *ReservedStaging) Reserve(loc StageLoc) error {
	if err := r.reserveSlot(loc.Dev0, loc.Page0); err != nil {
		return err
	}
	if loc.Mirrored() {
		if err := r.reserveSlot(loc.Dev1, loc.Page1); err != nil {
			return err
		}
	}
	return nil
}

func (r *ReservedStaging) reserveSlot(dev, page int32) error {
	pool := r.writes[dev]
	if page < r.readEnd {
		pool = r.reads[dev]
	}
	if !pool.take(page) {
		return fmt.Errorf("core: slot (%d,%d) not free", dev, page)
	}
	return nil
}

// SetUnavailable implements Staging.
func (r *ReservedStaging) SetUnavailable(disk int) { r.unavailable = disk }

// FreeReadSlots implements Staging.
func (r *ReservedStaging) FreeReadSlots() int {
	n := 0
	for _, p := range r.reads {
		n += p.len()
	}
	return n
}

// FreeWriteSlots implements Staging.
func (r *ReservedStaging) FreeWriteSlots() int {
	n := 0
	for _, p := range r.writes {
		n += p.len()
	}
	return n
}
