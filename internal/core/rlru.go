package core

import "container/list"

// RLRU is the paper's R_LRU: a bounded LRU list per member SSD that tracks
// the most recently read pages. A page that is read again while still on
// the list is "popular" — the Popular Data Identifier's signal to migrate
// it to the staging space. The capacity bounds how much data can ever be
// considered hot; the paper caps migration at 10% of the data blocks.
type RLRU struct {
	cap int
	ll  *list.List // front = most recent
	pos map[int32]*list.Element
}

// rlruEntry is one tracked page with its recent-hit count.
type rlruEntry struct {
	page int32
	hits int
}

// NewRLRU creates a list bounded to capacity pages (min 1).
func NewRLRU(capacity int) *RLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &RLRU{cap: capacity, ll: list.New(), pos: make(map[int32]*list.Element)}
}

// Touch records a read of page and returns how many times it had been
// read recently before this access (0 = first sighting). The caller
// decides the popularity threshold for migration.
func (r *RLRU) Touch(page int32) int {
	if el, ok := r.pos[page]; ok {
		r.ll.MoveToFront(el)
		e := el.Value.(*rlruEntry)
		e.hits++
		return e.hits
	}
	r.pos[page] = r.ll.PushFront(&rlruEntry{page: page})
	if r.ll.Len() > r.cap {
		oldest := r.ll.Back()
		r.ll.Remove(oldest)
		delete(r.pos, oldest.Value.(*rlruEntry).page)
	}
	return 0
}

// Contains reports whether page is currently tracked, without promoting it.
func (r *RLRU) Contains(page int32) bool {
	_, ok := r.pos[page]
	return ok
}

// Remove drops page from the list (used when a write invalidates the
// hotness of a read page).
func (r *RLRU) Remove(page int32) {
	if el, ok := r.pos[page]; ok {
		r.ll.Remove(el)
		delete(r.pos, page)
	}
}

// Len returns the number of tracked pages.
func (r *RLRU) Len() int { return r.ll.Len() }

// Cap returns the capacity.
func (r *RLRU) Cap() int { return r.cap }
