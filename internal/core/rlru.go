package core

// RLRU is the paper's R_LRU: a bounded LRU list per member SSD that tracks
// the most recently read pages. A page that is read again while still on
// the list is "popular" — the Popular Data Identifier's signal to migrate
// it to the staging space. The capacity bounds how much data can ever be
// considered hot; the paper caps migration at 10% of the data blocks.
//
// The list is intrusive: entries live in a flat slab linked by index, and
// evicted slots are recycled through a free list, so steady-state Touch and
// Remove allocate nothing (container/list would allocate one Element per
// insertion — a measurable cost on the read hot path, where every read
// touches the list).
type RLRU struct {
	cap     int
	entries []rlruEntry // slab; list links are slab indices
	free    []int32     // recycled slots
	head    int32       // most recent, -1 when empty
	tail    int32       // least recent, -1 when empty
	n       int
	pos     map[int32]int32 // page -> slab index
}

// rlruEntry is one tracked page with its recent-hit count and list links.
type rlruEntry struct {
	page       int32
	hits       int32
	prev, next int32 // slab indices, -1 terminates
}

// NewRLRU creates a list bounded to capacity pages (min 1).
func NewRLRU(capacity int) *RLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &RLRU{cap: capacity, head: -1, tail: -1, pos: make(map[int32]int32)}
}

// unlink detaches slot i from the list without recycling it.
func (r *RLRU) unlink(i int32) {
	e := &r.entries[i]
	if e.prev >= 0 {
		r.entries[e.prev].next = e.next
	} else {
		r.head = e.next
	}
	if e.next >= 0 {
		r.entries[e.next].prev = e.prev
	} else {
		r.tail = e.prev
	}
}

// pushFront makes slot i the most recent entry.
func (r *RLRU) pushFront(i int32) {
	e := &r.entries[i]
	e.prev, e.next = -1, r.head
	if r.head >= 0 {
		r.entries[r.head].prev = i
	}
	r.head = i
	if r.tail < 0 {
		r.tail = i
	}
}

// alloc returns a slab slot, recycling freed ones before growing the slab.
func (r *RLRU) alloc() int32 {
	if k := len(r.free); k > 0 {
		i := r.free[k-1]
		r.free = r.free[:k-1]
		return i
	}
	r.entries = append(r.entries, rlruEntry{})
	return int32(len(r.entries) - 1)
}

// Touch records a read of page and returns how many times it had been
// read recently before this access (0 = first sighting). The caller
// decides the popularity threshold for migration.
func (r *RLRU) Touch(page int32) int {
	if i, ok := r.pos[page]; ok {
		if r.head != i {
			r.unlink(i)
			r.pushFront(i)
		}
		r.entries[i].hits++
		return int(r.entries[i].hits)
	}
	i := r.alloc()
	r.entries[i] = rlruEntry{page: page}
	r.pushFront(i)
	r.pos[page] = i
	r.n++
	if r.n > r.cap {
		oldest := r.tail
		r.unlink(oldest)
		delete(r.pos, r.entries[oldest].page)
		r.free = append(r.free, oldest)
		r.n--
	}
	return 0
}

// Contains reports whether page is currently tracked, without promoting it.
func (r *RLRU) Contains(page int32) bool {
	_, ok := r.pos[page]
	return ok
}

// Remove drops page from the list (used when a write invalidates the
// hotness of a read page).
func (r *RLRU) Remove(page int32) {
	if i, ok := r.pos[page]; ok {
		r.unlink(i)
		delete(r.pos, page)
		r.free = append(r.free, i)
		r.n--
	}
}

// Len returns the number of tracked pages.
func (r *RLRU) Len() int { return r.n }

// Cap returns the capacity.
func (r *RLRU) Cap() int { return r.cap }
