package core

import (
	"testing"

	"gcsteering/internal/sim"
)

// stagedEntries builds a rig with one hot-read entry and one mirrored write
// entry, returning their keys.
func stagedEntries(t *testing.T) (*rig, PageKey, PageKey) {
	t.Helper()
	r := newRig(t, "reserved", DefaultConfig())
	// Hot-read entry: read the page three times.
	for i := 0; i < 3; i++ {
		r.arr.Read(r.eng.Now(), 0, 1, nil)
		r.eng.RunFor(sim.Millisecond)
	}
	d0, p0 := r.homeOf(0)
	readKey := PageKey{Disk: int32(d0), Page: int32(p0)}
	if e, ok := r.st.DTable().Get(readKey); !ok || e.Write {
		t.Fatal("precondition: hot-read entry missing")
	}
	// Mirrored write entry: write another page while its home collects.
	page := r.lay.UnitPages * r.lay.DataDisks() * 3 // stripe 3, unit 0
	d1, p1 := r.homeOf(page)
	r.devs[d1].ForceGC(r.eng.Now())
	r.arr.Write(r.eng.Now(), page, 1, nil)
	r.eng.RunFor(sim.Millisecond)
	writeKey := PageKey{Disk: int32(d1), Page: int32(p1)}
	if e, ok := r.st.DTable().Get(writeKey); !ok || !e.Write || !e.Loc.Mirrored() {
		t.Fatal("precondition: mirrored write entry missing")
	}
	return r, readKey, writeKey
}

func TestDropStagedOnRemovesReadCopies(t *testing.T) {
	r, readKey, _ := stagedEntries(t)
	e, _ := r.st.DTable().Get(readKey)
	failed := e.Loc.Dev0
	r.st.DropStagedOn(failed)
	if _, ok := r.st.DTable().Get(readKey); ok {
		t.Fatal("hot-read copy on the failed member survived")
	}
}

func TestDropStagedOnKeepsSurvivingMirror(t *testing.T) {
	r, _, writeKey := stagedEntries(t)
	e, _ := r.st.DTable().Get(writeKey)
	failed := e.Loc.Dev0
	survivor, survivorPage := e.Loc.Dev1, e.Loc.Page1
	r.st.DropStagedOn(failed)
	got, ok := r.st.DTable().Get(writeKey)
	if !ok || !got.Write {
		t.Fatal("write entry lost with a surviving mirror")
	}
	if got.Loc.Mirrored() {
		t.Fatal("entry still claims a mirror on the failed member")
	}
	if got.Loc.Dev0 != survivor || got.Loc.Page0 != survivorPage {
		t.Fatalf("entry points at %+v, want the survivor (%d,%d)", got.Loc, survivor, survivorPage)
	}
}

func TestDropStagedOnUntouchedEntriesSurvive(t *testing.T) {
	r, readKey, writeKey := stagedEntries(t)
	re, _ := r.st.DTable().Get(readKey)
	we, _ := r.st.DTable().Get(writeKey)
	// Fail a member that hosts neither copy.
	hosts := map[int32]bool{re.Loc.Dev0: true, we.Loc.Dev0: true, we.Loc.Dev1: true}
	var other int32 = -1
	for d := int32(0); d < int32(len(r.devs)); d++ {
		if !hosts[d] {
			other = d
			break
		}
	}
	if other < 0 {
		t.Skip("all members host copies in this layout")
	}
	r.st.DropStagedOn(other)
	if _, ok := r.st.DTable().Get(readKey); !ok {
		t.Fatal("unrelated read entry dropped")
	}
	if _, ok := r.st.DTable().Get(writeKey); !ok {
		t.Fatal("unrelated write entry dropped")
	}
}

func TestReservedReadAvoidsUnavailableMember(t *testing.T) {
	r, _, writeKey := stagedEntries(t)
	e, _ := r.st.DTable().Get(writeKey)
	// Mark the primary copy's member unavailable; a staged read must use
	// the mirror.
	r.st.Staging().SetUnavailable(int(e.Loc.Dev0))
	before := r.recs[e.Loc.Dev0].reads[int(e.Loc.Page0)]
	r.st.Staging().Read(r.eng.Now(), e.Loc, nil)
	r.eng.Run()
	if r.recs[e.Loc.Dev0].reads[int(e.Loc.Page0)] != before {
		t.Fatal("staged read touched the unavailable member")
	}
	if r.recs[e.Loc.Dev1].reads[int(e.Loc.Page1)] == 0 {
		t.Fatal("mirror copy not read")
	}
	r.st.Staging().SetUnavailable(-1)
}
