package harness

import (
	"strings"
	"testing"

	"gcsteering/internal/cluster"
)

func TestClusterGridShapeAndHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet grid")
	}
	g, err := Cluster(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Workloads) != 3 || len(g.Variants) != 2 {
		t.Fatalf("grid shape %dx%d", len(g.Workloads), len(g.Variants))
	}
	for _, w := range g.Workloads {
		for _, v := range g.Variants {
			if g.Mean[Cell{w, v}] <= 0 {
				t.Fatalf("missing cell %s/%s", w, v)
			}
		}
	}
	// The routing decision is the only difference between the variants, so
	// the admission tier must shed identically.
	shed := g.Aux["shed"]
	for _, w := range g.Workloads {
		if shed[Cell{w, "hash-only"}] != shed[Cell{w, "gc-aware"}] {
			t.Fatalf("%s: shed differs across policies (%v vs %v) — admission is not policy-independent",
				w, shed[Cell{w, "hash-only"}], shed[Cell{w, "gc-aware"}])
		}
	}
	// GC-aware routing actually routes: redirects on every scenario, none
	// on the hash baseline.
	redir := g.Aux["redirects"]
	for _, w := range g.Workloads {
		if redir[Cell{w, "hash-only"}] != 0 {
			t.Fatalf("%s: hash-only redirected %.0f requests", w, redir[Cell{w, "hash-only"}])
		}
		if redir[Cell{w, "gc-aware"}] == 0 {
			t.Fatalf("%s: gc-aware diverted nothing", w)
		}
	}
	// The headline claim (acceptance criterion): GC/rebuild-aware routing
	// reduces tenant read tail latency vs the hash-only baseline — never
	// worse on any scenario, strictly better on at least one.
	p99 := g.Aux["worst tenant read p99 (µs)"]
	improved := 0
	for _, w := range g.Workloads {
		hash, aware := p99[Cell{w, "hash-only"}], p99[Cell{w, "gc-aware"}]
		if aware > hash {
			t.Fatalf("%s: gc-aware worst tenant read p99 %.1fµs above hash-only %.1fµs", w, aware, hash)
		}
		if aware < hash {
			improved++
		}
	}
	if improved == 0 {
		t.Fatalf("gc-aware never improved worst tenant read p99: %v", p99)
	}
	// And the mean moves too, on geometric mean across scenarios.
	if gm := g.GeoMeanNormalized("hash-only")["gc-aware"]; gm >= 1 {
		t.Fatalf("gc-aware geomean %.3f, want < 1 (beats hash-only)", gm)
	}
	out := g.Render("hash-only")
	for _, want := range []string{"Fleet simulation", "redirects", "wov (ms)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestClusterConfigUsesOptions(t *testing.T) {
	o := tinyOptions()
	o.Seed = 7
	sc := clusterScenarios()[0]
	c := clusterConfig(o, sc, cluster.PolicySteering)
	if c.Arrays != clusterArrays || len(c.Tenants) != clusterTenants {
		t.Fatalf("fleet shape %d arrays × %d tenants", c.Arrays, len(c.Tenants))
	}
	if c.Seed != 7 {
		t.Fatalf("seed offset not applied: %d", c.Seed)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	per := o.maxRequests() / clusterTenants
	for _, tn := range c.Tenants {
		if tn.Requests != per {
			t.Fatalf("tenant %s requests %d, want %d", tn.Name, tn.Requests, per)
		}
	}
}
