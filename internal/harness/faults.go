package harness

import (
	"gcsteering"
)

// Faults runs the reliability experiment grid: each cell fails one member
// mid-trace under an active fault plan (latent sector errors included) and
// measures the window of vulnerability, the rebuild time and the
// degraded-mode response times per GC scheme. Every scheme rebuilds onto a
// dedicated spare; GC-Steering runs its recovery configuration of §III-D
// case ① — dedicated staging that absorbs the redirected user I/O during
// reconstruction, relieving the survivors the rebuild is reading — the
// mechanism behind its shorter window of vulnerability.
func Faults(o Options) (*Grid, error) {
	type variant struct {
		name   string
		set    func(*gcsteering.Config)
		target gcsteering.RebuildTarget
	}
	variants := []variant{
		{"LGC", func(c *gcsteering.Config) { c.Scheme = gcsteering.SchemeLGC }, gcsteering.RebuildToSpare},
		{"GGC", func(c *gcsteering.Config) { c.Scheme = gcsteering.SchemeGGC }, gcsteering.RebuildToSpare},
		{"GC-Steering", func(c *gcsteering.Config) {
			c.Scheme = gcsteering.SchemeSteering
			c.Staging = gcsteering.StagingDedicated
		}, gcsteering.RebuildToSpare},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	g := newGrid("Reliability: failure at 10% of the trace, automatic rebuild, latent sector errors",
		fig8Workloads(), names)

	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, v := range variants {
			w, v := w, v
			cfg := o.base()
			// As in Fig. 11, the reserved space must hold a failed member's
			// contents for the parallel workflow; every scheme gets the same
			// reservation so the array geometry is identical across variants.
			cfg.ReservedFrac = 0.30
			v.set(&cfg)
			jobs = append(jobs, cellJob{
				cell: Cell{w, v.name},
				run: func() (any, error) {
					sys, err := gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					tr, err := sys.GenerateWorkload(w, o.maxRequests())
					if err != nil {
						return nil, err
					}
					// Fail disk 2 at 10% of the trace and size the rebuild
					// bandwidth cap so an uncontended rebuild spans roughly
					// half the remaining trace: the cap never binds alone,
					// so the measured rebuild time reflects each scheme's
					// device contention (GC stalls on the survivor reads).
					dur := tr[len(tr)-1].Timestamp.Seconds()
					failAtMs := dur * 1000 * 0.10
					diskBytes := float64(sys.Capacity()) / float64(cfg.Disks-1)
					bw := diskBytes / 1e6 / (dur * 0.45)
					plan := gcsteering.FaultPlan{
						Failures:       []gcsteering.DiskFault{{Disk: 2, AtMs: failAtMs}},
						UREPerPageRead: 5e-5,
						RepairDelayMs:  50,
						RebuildMBps:    bw,
						RebuildTarget:  v.target,
					}
					// The plan was not known when the system was built;
					// rebuild a system whose config carries it. The trace is
					// reused, so both builds must size capacity identically
					// (the plan does not affect geometry).
					cfg := cfg
					cfg.Fault = plan
					sys, err = gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					return sys.ReplayWithFaults(tr)
				},
				post: func(c Cell, payload any) {
					r := payload.(*gcsteering.Results)
					g.Mean[c] = r.Latency.Mean / 1e3
					g.addAux("window of vulnerability (s)", c, r.Fault.WindowOfVulnerability.Seconds())
					g.addAux("rebuild time (s)", c, r.Fault.RebuildTime.Seconds())
					g.addAux("degraded mean (µs)", c, r.Fault.DegradedLatency.Mean/1e3)
					g.addAux("degraded p99 (µs)", c, float64(r.Fault.DegradedLatency.P99)/1e3)
					g.addAux("UREs", c, float64(r.Fault.UREs))
					g.addAux("data loss events", c, float64(r.Fault.DataLossEvents))
				},
			})
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}
