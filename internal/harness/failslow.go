package harness

import (
	"gcsteering"
)

// FailSlow runs the fail-slow tolerance grid: every cell replays the same
// trace while one member is slowed by 8 ms per page op for most of the
// run (a fail-slow device, not a failed one — RAID redundancy never
// engages on its own; the magnitude matches the 10-100x firmware-stall
// slowdowns of the fail-slow literature) and a low rate of transient read
// errors exercises the bounded-retry path everywhere. The variants toggle the two
// fail-slow defenses against a common baseline:
//
//   - "quarantine" enables the per-device health monitor: the circuit
//     breaker opens on the slow member, steering redirects around it like
//     a collecting disk (and migrates its hot read pages to staging), and
//     half-open probes reinstate it once the slowdown window closes.
//   - "hedge" races parity reconstruct-reads against direct reads whose
//     home member is mid-GC, fail-slow, or quarantined.
//
// All variants run with retries enabled (MaxRetries 2) so the
// retries-with-backoff machinery is part of the determinism envelope the
// grid regression tests pin down.
func FailSlow(o Options) (*Grid, error) {
	type variant struct {
		name  string
		quar  bool
		hedge bool
	}
	variants := []variant{
		{"none", false, false},
		{"hedge", false, true},
		{"quarantine", true, false},
		{"quarantine+hedge", true, true},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	workloads := []string{"HPC_R", "Fin1", "hm_0"}
	g := newGrid("Fail-slow tolerance: one member +8 ms/op from 5% to 90% of the trace, transient read errors with bounded retries, health-quarantine and hedged reads",
		workloads, names)

	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, v := range variants {
			w, v := w, v
			cfg := o.base()
			cfg.HedgedReads = v.hedge
			cfg.Quarantine = v.quar
			cfg.MaxRetries = 2
			jobs = append(jobs, cellJob{
				cell: Cell{w, v.name},
				run: func() (any, error) {
					sys, err := gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					tr, err := sys.GenerateWorkload(w, o.maxRequests())
					if err != nil {
						return nil, err
					}
					// Slow disk 2 on all channels from 5% to 90% of the
					// trace: long enough that the quarantine pays for its
					// hysteresis many times over, with a healthy tail so the
					// reinstatement probes fire inside the measured run. The
					// +8 ms/op magnitude is a firmware-stall-class fail-slow
					// fault — severe enough that serving the member's reads
					// from its peers is clearly worth the reconstruct fan-in.
					dur := tr[len(tr)-1].Timestamp.Seconds()
					cfg := cfg
					cfg.Fault = gcsteering.FaultPlan{
						Slowdowns: []gcsteering.DiskSlowdown{{
							Disk:         2,
							Channel:      -1,
							StartMs:      dur * 1000 * 0.05,
							DurationMs:   dur * 1000 * 0.85,
							ExtraPerOpUs: 8000,
						}},
						TransientReadErrorRate: 1e-4,
					}
					// The slowdown window needs the trace duration; rebuild
					// the system with the plan set. The trace is reused —
					// the plan does not affect the array geometry.
					sys, err = gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					return sys.ReplayWithFaults(tr)
				},
				post: func(c Cell, payload any) {
					r := payload.(*gcsteering.Results)
					g.Mean[c] = r.Latency.Mean / 1e3
					g.addAux("read p99 (µs)", c, float64(r.ReadLatency.P99)/1e3)
					g.addAux("read mean (µs)", c, r.ReadLatency.Mean/1e3)
					g.addAux("quarantines", c, float64(r.Robust.Quarantines))
					g.addAux("reinstatements", c, float64(r.Robust.Reinstatements))
					g.addAux("quarantine time (ms)", c, float64(r.Robust.QuarantineTime)/1e6)
					g.addAux("transient errors", c, float64(r.Robust.TransientErrors))
					g.addAux("retries", c, float64(r.Robust.Retries))
					g.addAux("hedged reads", c, float64(r.Integrity.HedgedReads))
				},
			})
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}
