package harness

import "testing"

func TestChaosGridShapeAndReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet grid")
	}
	g, err := Chaos(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Workloads) != 3 || len(g.Variants) != 2 {
		t.Fatalf("grid shape %dx%d", len(g.Workloads), len(g.Variants))
	}
	for _, w := range g.Workloads {
		for _, v := range g.Variants {
			if g.Mean[Cell{w, v}] <= 0 {
				t.Fatalf("missing cell %s/%s", w, v)
			}
		}
	}
	avail := g.Aux["availability"]
	loss := g.Aux["data-loss reads"]
	repl := g.Aux["replicated writes"]
	for _, w := range g.Workloads {
		off, on := Cell{w, "no-repl"}, Cell{w, "replicated"}
		// The reliability acceptance criteria: replication never loses
		// data under a single-array crash and never lowers the fraction
		// of requests answered, while the unreplicated permanent crash
		// demonstrably loses reads.
		if loss[on] != 0 {
			t.Fatalf("%s: replicated fleet lost %v reads", w, loss[on])
		}
		if repl[off] != 0 {
			t.Fatalf("%s: no-repl cell replicated %v writes", w, repl[off])
		}
		if repl[on] == 0 {
			t.Fatalf("%s: replicated cell replicated nothing", w)
		}
		if avail[on] <= 0 || avail[on] > 1 || avail[off] <= 0 || avail[off] > 1 {
			t.Fatalf("%s: availability out of range: %v vs %v", w, avail[off], avail[on])
		}
	}
	if loss[Cell{"perm-crash", "no-repl"}] == 0 {
		t.Fatal("unreplicated permanent crash lost no reads")
	}
	// Failover and re-replication must be measured on the replicated
	// permanent crash.
	if g.Aux["failover (ms)"][Cell{"perm-crash", "replicated"}] <= 0 {
		t.Fatal("failover time not measured")
	}
	if g.Aux["re-replication (ms)"][Cell{"perm-crash", "replicated"}] <= 0 {
		t.Fatal("re-replication time not measured")
	}
}
