package harness

import (
	"fmt"

	"gcsteering/internal/cluster"
)

// chaosArrays/chaosTenants size the failure-domain grid: enough arrays
// that losing one leaves real capacity to fail over onto, small enough to
// regenerate in seconds.
const (
	chaosArrays  = 6
	chaosTenants = 12
)

// chaosScenario is one row of the failure-domain grid.
type chaosScenario struct {
	name   string
	faults []cluster.ArrayFault
	plan   cluster.ChaosPlan
	migs   []cluster.Migration
}

// chaosScenarios are the three adversity regimes:
//
//   - crash: the fleet's busiest array suffers a timed whole-array outage inside the
//     workload's dense opening burst, then recovers — the failover /
//     dirty-backlog / failback arc.
//   - perm-crash: the same array never comes back, so redundancy must be
//     restored onto a spare array picked off the ring (and without
//     replication the reads it held are simply gone).
//   - chaos-storm: the seeded chaos layer drives a timed crash, a replica
//     link slowdown, and a correlated GC storm at once — the correlated
//     worst case none of the single-fault rows exercise.
func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		{
			name:   "crash",
			faults: []cluster.ArrayFault{{Array: 4, AtMs: 80, DowntimeMs: 250}},
		},
		{
			name:   "perm-crash",
			faults: []cluster.ArrayFault{{Array: 4, AtMs: 80}},
		},
		{
			name: "chaos-storm",
			plan: cluster.ChaosPlan{
				Seed:            1719,
				Crashes:         1,
				CrashDowntimeMs: 200,
				LinkSlowdowns:   1,
				LinkExtraUs:     150,
				GCStorms:        1,
				StormExtraUs:    120,
			},
		},
	}
}

// chaosConfig assembles the fleet configuration for one cell.
func chaosConfig(o Options, sc chaosScenario, replicate bool) cluster.Config {
	perTenant := o.maxRequests() / chaosTenants
	if perTenant < 40 {
		perTenant = 40
	}
	profiles := []string{"Fin1", "hm_0", "HPC_W", "prxy_0"}
	qos := []cluster.QoS{cluster.Gold, cluster.Silver, cluster.Bronze}
	tenants := make([]cluster.Tenant, chaosTenants)
	for i := range tenants {
		tenants[i] = cluster.Tenant{
			Name:         fmt.Sprintf("t%02d", i),
			Profile:      profiles[i%len(profiles)],
			QoS:          qos[i%len(qos)],
			Requests:     perTenant,
			ArrivalScale: 1 + 0.25*float64(i%3),
			Volumes:      1 + i%2,
		}
	}
	return cluster.Config{
		Arrays:          chaosArrays,
		Policy:          cluster.PolicySteering,
		Workers:         o.workers(),
		Seed:            o.Seed,
		Base:            o.base(),
		Tenants:         tenants,
		ReplicateWrites: replicate,
		ReplicaLinkUs:   50,
		// No deadline — availability is the fraction of requests answered at
		// all, isolating crash losses from the latency cost of the doubled
		// write load — and a gentle re-replication cap so background copies
		// restore redundancy without flooding the spare array.
		RereplicateMBps: 50,
		ArrayFaults:     sc.faults,
		Migrations:      sc.migs,
		Chaos:           sc.plan,
	}
}

// Chaos runs the failure-domain grid: three adversity scenarios ×
// {no-repl, replicated} over a 6-array, 12-tenant fleet under GC-aware
// routing. The replicated column is the paper's reliability argument made
// quantitative: the same crashes, measurably higher availability, zero
// data loss.
func Chaos(o Options) (*Grid, error) {
	scenarios := chaosScenarios()
	variants := []string{"no-repl", "replicated"}
	workloads := make([]string, len(scenarios))
	for i, sc := range scenarios {
		workloads[i] = sc.name
	}
	g := newGrid(fmt.Sprintf("Failure domains: %d arrays × %d tenants, whole-array crashes and chaos, unreplicated vs synchronously replicated writes",
		chaosArrays, chaosTenants), workloads, variants)

	for _, sc := range scenarios {
		for vi, repl := range []bool{false, true} {
			r, err := cluster.Run(chaosConfig(o, sc, repl))
			if err != nil {
				return nil, fmt.Errorf("chaos %s/%s: %w", sc.name, variants[vi], err)
			}
			c := Cell{sc.name, variants[vi]}
			g.Mean[c] = r.Latency.Mean / 1e3
			g.addAux("availability", c, r.Availability)
			g.addAux("failed", c, float64(r.Failed))
			g.addAux("data-loss reads", c, float64(r.DataLossEvents))
			g.addAux("read p99 (µs)", c, float64(r.ReadLatency.P99)/1e3)
			g.addAux("replicated writes", c, float64(r.Replicated))
			g.addAux("replica drops", c, float64(r.ReplicaDrops))
			var failMs, rereplMs float64
			for _, f := range r.Failures {
				if f.FailoverMs > failMs {
					failMs = f.FailoverMs
				}
				if f.RereplicationMs > rereplMs {
					rereplMs = f.RereplicationMs
				}
			}
			g.addAux("failover (ms)", c, failMs)
			g.addAux("re-replication (ms)", c, rereplMs)
		}
	}
	return g, nil
}
