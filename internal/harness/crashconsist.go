package harness

import (
	"gcsteering"
)

// crashScenario is one row of the crash-consistency grid: a workload, the
// power-cut instant as a fraction of the request stream, and an optional
// fault plan so the cut can land mid-rebuild. The cut is anchored to an
// arrival (the cutFrac-th request's timestamp, nudged slightly later) so
// it lands inside a burst with stripe writes in flight — a wall-clock
// fraction would often fall into the traces' long quiet gaps.
type crashScenario struct {
	name     string
	workload string
	cutFrac  float64
	rebuild  bool
}

// crashScenarios are the three crash regimes:
//
//   - quiet: the cut lands early in a mixed workload, before garbage
//     collection ramps up — few stripe writes in flight.
//   - gc-storm: the cut lands deep inside a write-dominated trace with the
//     array's GC running hot, so the write pipeline (and the set of open
//     parity updates) is as busy as it gets.
//   - rebuild: a member fails first and the cut interrupts the
//     reconstruction — the remount comes back degraded, restarts the
//     rebuild from zero, and still owes the resync.
func crashScenarios() []crashScenario {
	return []crashScenario{
		{name: "quiet", workload: "hm_0", cutFrac: 0.20},
		{name: "gc-storm", workload: "HPC_W", cutFrac: 0.70},
		{name: "rebuild", workload: "Fin1", cutFrac: 0.25, rebuild: true},
	}
}

// CrashConsist runs the crash-consistency grid: three crash regimes ×
// {journal, no-journal} on the baseline LGC array (the steering staging
// region is volatile, so crash runs exercise the plain local-GC scheme).
// The journal column is the write-hole argument made quantitative: the
// same cuts, a resync scoped to the dirty stripes instead of the whole
// array, zero inconsistency left behind either way — but the unjournaled
// array serves during its full-array walk, the window the journal closes.
func CrashConsist(o Options) (*Grid, error) {
	scenarios := crashScenarios()
	variants := []string{"journal", "no-journal"}
	workloads := make([]string, len(scenarios))
	for i, sc := range scenarios {
		workloads[i] = sc.name
	}
	g := newGrid("Crash consistency: power loss mid-write, intent journal vs full-scrub remount",
		workloads, variants)

	var jobs []cellJob
	for _, sc := range scenarios {
		for _, journal := range []bool{true, false} {
			sc, journal := sc, journal
			variant := variants[1]
			if journal {
				variant = variants[0]
			}
			cfg := o.base()
			cfg.Scheme = gcsteering.SchemeLGC
			cfg.IntentJournal = journal
			if sc.rebuild {
				cfg.ReservedFrac = 0.30
			}
			jobs = append(jobs, cellJob{
				cell: Cell{sc.name, variant},
				run: func() (any, error) {
					sys, err := gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					tr, err := sys.GenerateWorkload(sc.workload, o.maxRequests())
					if err != nil {
						return nil, err
					}
					dur := tr[len(tr)-1].Timestamp.Seconds()
					cut := tr[int(float64(len(tr)-1)*sc.cutFrac)].Timestamp
					cfg := cfg
					cfg.PowerLossAtMs = cut.Seconds()*1000 + 0.2
					if sc.rebuild {
						// Fail a member at the 10%-request arrival (so it
						// precedes the cut) with the rebuild paced to span
						// roughly half the trace, so the cut interrupts it
						// mid-flight (the faults grid's sizing rule).
						failAt := tr[int(float64(len(tr)-1)*0.10)].Timestamp
						diskBytes := float64(sys.Capacity()) / float64(cfg.Disks-1)
						cfg.Fault = gcsteering.FaultPlan{
							Failures:      []gcsteering.DiskFault{{Disk: 2, AtMs: failAt.Seconds() * 1000}},
							RepairDelayMs: 5,
							RebuildMBps:   diskBytes / 1e6 / (dur * 0.45),
							RebuildTarget: gcsteering.RebuildToSpare,
						}
					}
					return gcsteering.ReplayWithPowerLoss(cfg, tr)
				},
				post: func(c Cell, payload any) {
					r := payload.(*gcsteering.Results)
					cr := r.Crash
					g.Mean[c] = r.Latency.Mean / 1e3
					g.addAux("inconsistent stripes", c, float64(cr.InconsistentStripes))
					g.addAux("resync found", c, float64(cr.ResyncFound))
					g.addAux("dirty stripes (journal scope)", c, float64(cr.DirtyStripes))
					g.addAux("torn pages", c, float64(cr.TornPages))
					g.addAux("resync stripes walked", c, float64(cr.ResyncStripesWalked))
					g.addAux("resync time (ms)", c, cr.ResyncDuration.Seconds()*1000)
					g.addAux("post-crash p99 (µs)", c, float64(r.Latency.P99)/1e3)
					g.addAux("in-flight lost", c, float64(cr.InFlightLost))
				},
			})
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}
