package harness

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gcsteering"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.maxRequests() != 8000 {
		t.Fatalf("maxRequests = %d", o.maxRequests())
	}
	if o.workers() < 1 {
		t.Fatalf("workers = %d", o.workers())
	}
	if o.repeats() != 1 {
		t.Fatalf("repeats = %d", o.repeats())
	}
	o = Options{MaxRequests: 42, Workers: 3, Repeats: 2}
	if o.maxRequests() != 42 || o.workers() != 3 || o.repeats() != 2 {
		t.Fatal("explicit options ignored")
	}
}

func TestBaseConfigValid(t *testing.T) {
	if err := BaseConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	o := Options{Seed: 5}
	if got := o.base().Seed; got != BaseConfig().Seed+5 {
		t.Fatalf("seed offset not applied: %d", got)
	}
	o.Base = func() gcsteering.Config {
		c := BaseConfig()
		c.Disks = 7
		return c
	}
	if o.base().Disks != 7 {
		t.Fatal("Base override ignored")
	}
}

func TestGridNormalizationAndRender(t *testing.T) {
	g := newGrid("t", []string{"w1", "w2"}, []string{"A", "B"})
	g.Mean[Cell{"w1", "A"}] = 10
	g.Mean[Cell{"w1", "B"}] = 5
	g.Mean[Cell{"w2", "A"}] = 20
	g.Mean[Cell{"w2", "B"}] = 40
	g.addAux("x", Cell{"w1", "A"}, 1)

	norm := g.Normalized("A")
	if norm[Cell{"w1", "B"}] != 0.5 || norm[Cell{"w2", "B"}] != 2 {
		t.Fatalf("normalized: %+v", norm)
	}
	gm := g.GeoMeanNormalized("A")
	if gm["A"] != 1 {
		t.Fatalf("geomean of base = %v", gm["A"])
	}
	if got := gm["B"]; got < 0.99 || got > 1.01 { // sqrt(0.5*2) == 1
		t.Fatalf("geomean B = %v", got)
	}
	out := g.Render("A")
	for _, want := range []string{"== t ==", "normalized to A", "w1", "B", "geometric mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunCellsParallelAndErrors(t *testing.T) {
	n := 20
	results := make([]int, 0, n)
	var jobs []cellJob
	for i := 0; i < n; i++ {
		i := i
		jobs = append(jobs, cellJob{
			cell: Cell{Workload: "w", Variant: "v"},
			run:  func() (any, error) { return i, nil },
			post: func(_ Cell, p any) { results = append(results, p.(int)) },
		})
	}
	if err := runCells(jobs, 4); err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("posted %d results", len(results))
	}
}

func TestRunCellsPropagatesError(t *testing.T) {
	jobs := []cellJob{{
		cell: Cell{"w", "v"},
		run:  func() (any, error) { return nil, errBoom{} },
		post: func(Cell, any) { t.Fatal("post called on error") },
	}}
	if err := runCells(jobs, 2); err == nil {
		t.Fatal("error swallowed")
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

func TestAvgResultsAveraging(t *testing.T) {
	a := &AvgResults{}
	r1 := &gcsteering.Results{}
	r1.Latency.Mean = 100
	r1.GCEpisodes = 10
	r2 := &gcsteering.Results{}
	r2.Latency.Mean = 300
	r2.GCEpisodes = 20
	a.add(r1)
	a.add(r2)
	if a.N != 2 || a.MeanNs != 200 || a.GCEpisodes != 15 {
		t.Fatalf("avg: %+v", a)
	}
	if a.Last != r2 {
		t.Fatal("Last not tracked")
	}
}

// tinyOptions shrinks everything so experiment tests run in seconds.
func tinyOptions() Options {
	return Options{
		MaxRequests: 1200,
		Workers:     4,
		Base: func() gcsteering.Config {
			cfg := BaseConfig()
			cfg.Flash.Blocks = 128
			cfg.Flash.PagesPerBlock = 64
			cfg.Flash.OverProvision = 0.2
			cfg.GCLowWater = 4
			cfg.GCHighWater = 10
			return cfg
		},
	}
}

func TestTable1RunsAndMatchesTargets(t *testing.T) {
	out, err := Table1(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"HPC_W", "Fin1", "prxy_0", "wdev_0"} {
		if !strings.Contains(out, w) {
			t.Fatalf("Table1 missing %s:\n%s", w, out)
		}
	}
}

func TestFig2Runs(t *testing.T) {
	out, err := Fig2(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reads→RI") || !strings.Contains(out, "average:") {
		t.Fatalf("Fig2 output malformed:\n%s", out)
	}
}

func TestFig7ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	o := tinyOptions()
	o.MaxRequests = 2500
	g, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Workloads) != 8 || len(g.Variants) != 3 {
		t.Fatalf("grid shape %dx%d", len(g.Workloads), len(g.Variants))
	}
	for _, w := range g.Workloads {
		for _, v := range g.Variants {
			if g.Mean[Cell{w, v}] <= 0 {
				t.Fatalf("missing cell %s/%s", w, v)
			}
		}
	}
	// Headline shape: GC-Steering's mean response time is below LGC's on
	// geometric mean across the eight workloads.
	gm := g.GeoMeanNormalized("LGC")
	if gm["GC-Steering"] >= 1 {
		t.Fatalf("GC-Steering geomean %.3f, want < 1 (beats LGC)", gm["GC-Steering"])
	}
	// Fig 7b shape: GGC performs far more GC episodes; steering roughly
	// matches LGC (it never changes when GC happens).
	counts := g.Aux["GC count (episodes)"]
	var lgc, ggc, steer float64
	for _, w := range g.Workloads {
		lgc += counts[Cell{w, "LGC"}]
		ggc += counts[Cell{w, "GGC"}]
		steer += counts[Cell{w, "GC-Steering"}]
	}
	if ggc < 1.5*lgc {
		t.Fatalf("GGC episodes %.0f vs LGC %.0f; expected a large inflation", ggc, lgc)
	}
	if steer > 1.5*lgc {
		t.Fatalf("steering episodes %.0f vs LGC %.0f; steering must not change GC counts much", steer, lgc)
	}
}

func TestFig8Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	g, err := Fig8(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Variants) != 2 {
		t.Fatal("variants")
	}
	for _, w := range g.Workloads {
		for _, v := range g.Variants {
			if g.Mean[Cell{w, v}] <= 0 {
				t.Fatalf("missing cell %s/%s", w, v)
			}
		}
	}
}

func TestFig9Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	g, err := Fig9(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Variants) != 3 {
		t.Fatal("variants")
	}
}

func TestFig10Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	g, err := Fig10(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"Reserved", "Dedicated"} {
		if g.Mean[Cell{"Fin1", v}] <= 0 {
			t.Fatalf("missing %s", v)
		}
	}
}

func TestFig11Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	o := tinyOptions()
	g, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	norm := g.Aux["normalized to normal state"]
	if len(norm) == 0 {
		t.Fatal("no normalized cells")
	}
	dur := g.Aux["rebuild duration (s)"]
	for c, v := range dur {
		if v <= 0 {
			t.Fatalf("cell %v: rebuild did not complete", c)
		}
	}
}

func TestFaultsGridRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	g, err := Faults(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Variants) != 3 {
		t.Fatalf("variants = %v", g.Variants)
	}
	wov := g.Aux["window of vulnerability (s)"]
	deg := g.Aux["degraded p99 (µs)"]
	for _, w := range g.Workloads {
		for _, v := range g.Variants {
			c := Cell{w, v}
			if wov[c] <= 0 {
				t.Fatalf("cell %v: no vulnerability window measured", c)
			}
			if deg[c] <= 0 {
				t.Fatalf("cell %v: no degraded p99 measured", c)
			}
		}
	}
	// The headline reliability claim: GC-Steering's staging absorbs user
	// I/O off the survivors during reconstruction, so its vulnerability
	// window is the shortest on aggregate.
	var lgc, ggc, steer float64
	for _, w := range g.Workloads {
		lgc += wov[Cell{w, "LGC"}]
		ggc += wov[Cell{w, "GGC"}]
		steer += wov[Cell{w, "GC-Steering"}]
	}
	if steer >= lgc || steer >= ggc {
		t.Fatalf("GC-Steering WOV %.2fs not shortest (LGC %.2fs, GGC %.2fs)", steer, lgc, ggc)
	}
}

func TestGridMarshalJSON(t *testing.T) {
	g := newGrid("t", []string{"w1"}, []string{"A", "B"})
	g.Mean[Cell{"w1", "A"}] = 10
	g.Mean[Cell{"w1", "B"}] = 5
	g.addAux("x", Cell{"w1", "A"}, 1.5)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Title     string                                   `json:"title"`
		Workloads []string                                 `json:"workloads"`
		Variants  []string                                 `json:"variants"`
		Metrics   map[string]map[string]map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != "t" || len(back.Workloads) != 1 || len(back.Variants) != 2 {
		t.Fatalf("round trip lost shape: %+v", back)
	}
	if back.Metrics["mean response time (µs)"]["w1"]["A"] != 10 {
		t.Fatalf("primary metric lost: %+v", back.Metrics)
	}
	if back.Metrics["x"]["w1"]["A"] != 1.5 {
		t.Fatalf("aux metric lost: %+v", back.Metrics)
	}
	if _, ok := back.Metrics["x"]["w1"]["B"]; ok {
		t.Fatal("unset cell serialized")
	}
}

func TestRAID6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	g, err := RAID6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if g.Mean[Cell{"Fin1", "GC-Steering"}] <= 0 {
		t.Fatal("RAID6 grid incomplete")
	}
}

func TestScrubGridSelfHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	o := tinyOptions()
	o.MaxRequests = 2500
	g, err := Scrub(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Workloads) != 3 || len(g.Variants) != 4 {
		t.Fatalf("grid shape %dx%d", len(g.Workloads), len(g.Variants))
	}
	for _, w := range g.Workloads {
		for _, v := range g.Variants {
			if g.Mean[Cell{w, v}] <= 0 {
				t.Fatalf("missing cell %s/%s", w, v)
			}
		}
	}
	// The headline reliability claim: with the identical seeded defect plan,
	// a patrol scrub pass before the failure strictly reduces the UREs the
	// rebuild then encounters on the survivors.
	ures := g.Aux["rebuild UREs"]
	fixed := g.Aux["scrub pages fixed"]
	for _, w := range g.Workloads {
		if ures[Cell{w, "baseline"}] <= 0 {
			t.Fatalf("%s: baseline rebuild saw no UREs; nothing to reduce", w)
		}
		if ures[Cell{w, "scrub"}] >= ures[Cell{w, "baseline"}] {
			t.Fatalf("%s: scrub UREs %.0f not below baseline %.0f",
				w, ures[Cell{w, "scrub"}], ures[Cell{w, "baseline"}])
		}
		if fixed[Cell{w, "scrub"}] <= 0 {
			t.Fatalf("%s: scrub repaired no pages", w)
		}
	}
	// The performance claim: hedged reads cut the GC-phase read tail on at
	// least one workload.
	p99 := g.Aux["gc-phase read p99 (µs)"]
	hedged := g.Aux["hedged reads"]
	improved := 0
	for _, w := range g.Workloads {
		if hedged[Cell{w, "hedge"}] <= 0 {
			t.Fatalf("%s: no reads hedged", w)
		}
		if p99[Cell{w, "hedge"}] < p99[Cell{w, "baseline"}] {
			improved++
		}
	}
	if improved == 0 {
		t.Fatalf("hedging never improved gc-phase read p99: %v", p99)
	}
}

func TestScrubGridDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	serial := tinyOptions()
	serial.MaxRequests = 1200
	serial.Workers = 1
	fanned := serial
	fanned.Workers = 4

	gs, err := Scrub(serial)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := Scrub(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs.Mean, gf.Mean) {
		t.Errorf("primary metric differs across worker counts:\nserial: %v\nfanned: %v", gs.Mean, gf.Mean)
	}
	if !reflect.DeepEqual(gs.Aux, gf.Aux) {
		t.Errorf("aux metrics differ across worker counts")
	}
}
