// Package harness defines and runs the paper's experiments: one function
// per table/figure of the evaluation section, a parallel grid runner that
// fans independent simulations out over a worker pool, and text renderers
// for the result tables.
//
// The harness is the only component that runs concurrently: each cell of
// an experiment grid is a self-contained deterministic simulation, so the
// grid maps perfectly onto a fan-out/fan-in worker pool.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"gcsteering"
)

// Options tunes an experiment run.
type Options struct {
	// MaxRequests caps the trace length per cell (0 = the harness default
	// of 8000; the paper's full request counts are impractical for a quick
	// regeneration — pass larger values for higher fidelity).
	MaxRequests int
	// Workers bounds the parallel simulations (0 = GOMAXPROCS).
	Workers int
	// Seed offsets all cell seeds for replication studies.
	Seed int64
	// Repeats averages each cell over this many seeds (0 = 1). The paper's
	// normalized bars are single measurements; averaging tames the
	// simulator's run-to-run variance.
	Repeats int
	// Base overrides the per-cell base configuration (nil = BaseConfig).
	Base func() gcsteering.Config
	// Trace, when non-nil, receives the structured event stream of the
	// sequential tracing-aware experiments (currently Fig1, which separates
	// its per-scheme runs with run-start events). Parallel grid experiments
	// ignore it: one tracer cannot be shared between concurrently running
	// engines. The caller flushes it.
	Trace *gcsteering.Tracer
	// SeriesOut, when non-nil, receives the windowed time series of
	// tracing-aware experiments as CSV (Fig1 writes one labelled block per
	// scheme and enables per-window quantiles for those runs).
	SeriesOut io.Writer
}

func (o Options) maxRequests() int {
	if o.MaxRequests <= 0 {
		return 8000
	}
	return o.MaxRequests
}

func (o Options) repeats() int {
	if o.Repeats <= 0 {
		return 1
	}
	return o.Repeats
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) base() gcsteering.Config {
	if o.Base != nil {
		cfg := o.Base()
		cfg.Seed += o.Seed
		return cfg
	}
	cfg := BaseConfig()
	cfg.Seed += o.Seed
	return cfg
}

// BaseConfig is the default experiment configuration: the paper's main
// setup (RAID5, 5 SSDs, 64 KB stripe unit) over a device geometry scaled
// for fast simulation.
func BaseConfig() gcsteering.Config {
	// The library defaults carry the calibrated geometry and scheme
	// behaviour; the harness uses them unchanged.
	return gcsteering.DefaultConfig()
}

// Cell addresses one measurement in an experiment grid.
type Cell struct {
	Workload string
	Variant  string
}

// Grid holds an experiment's measurements: workloads × variants, a primary
// metric (mean response time in µs) plus named auxiliary metrics.
type Grid struct {
	Title     string
	Workloads []string
	Variants  []string
	Mean      map[Cell]float64            // mean response time, µs
	Aux       map[string]map[Cell]float64 // e.g. "GC count"
}

func newGrid(title string, workloads, variants []string) *Grid {
	return &Grid{
		Title:     title,
		Workloads: workloads,
		Variants:  variants,
		Mean:      make(map[Cell]float64),
		Aux:       make(map[string]map[Cell]float64),
	}
}

func (g *Grid) addAux(metric string, c Cell, v float64) {
	m := g.Aux[metric]
	if m == nil {
		m = make(map[Cell]float64)
		g.Aux[metric] = m
	}
	m[c] = v
}

// Normalized returns the primary metric normalized per workload to the
// given base variant (the paper's figures normalize to LGC).
func (g *Grid) Normalized(base string) map[Cell]float64 {
	out := make(map[Cell]float64, len(g.Mean))
	for _, w := range g.Workloads {
		b := g.Mean[Cell{w, base}]
		for _, v := range g.Variants {
			c := Cell{w, v}
			if b > 0 {
				out[c] = g.Mean[c] / b
			}
		}
	}
	return out
}

// GeoMeanNormalized returns, per variant, the geometric mean across
// workloads of the metric normalized to base — the "on average X% lower"
// summary statistic the paper quotes.
func (g *Grid) GeoMeanNormalized(base string) map[string]float64 {
	norm := g.Normalized(base)
	out := make(map[string]float64, len(g.Variants))
	for _, v := range g.Variants {
		prod, n := 1.0, 0
		for _, w := range g.Workloads {
			if x := norm[Cell{w, v}]; x > 0 {
				prod *= x
				n++
			}
		}
		if n > 0 {
			out[v] = math.Pow(prod, 1/float64(n))
		}
	}
	return out
}

// Render prints the grid: raw µs, then normalized to base (if non-empty),
// then each auxiliary metric.
func (g *Grid) Render(base string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", g.Title)
	g.renderMetric(&b, "mean response time (µs)", g.Mean, "%.1f")
	if base != "" {
		norm := g.Normalized(base)
		g.renderMetric(&b, fmt.Sprintf("normalized to %s", base), norm, "%.3f")
		gm := g.GeoMeanNormalized(base)
		fmt.Fprintf(&b, "geometric mean vs %s:", base)
		for _, v := range g.Variants {
			fmt.Fprintf(&b, "  %s=%.3f", v, gm[v])
		}
		fmt.Fprintln(&b)
	}
	for _, name := range sortedKeys(g.Aux) {
		g.renderMetric(&b, name, g.Aux[name], "%.1f")
	}
	return b.String()
}

func (g *Grid) renderMetric(b *strings.Builder, name string, data map[Cell]float64, format string) {
	fmt.Fprintf(b, "-- %s --\n", name)
	tw := tabwriter.NewWriter(b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "workload")
	for _, v := range g.Variants {
		fmt.Fprintf(tw, "\t%s", v)
	}
	fmt.Fprintln(tw)
	for _, w := range g.Workloads {
		fmt.Fprintf(tw, "%s", w)
		for _, v := range g.Variants {
			fmt.Fprintf(tw, "\t"+format, data[Cell{w, v}])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// gridJSON is the wire form of a Grid: every metric as a table keyed by
// workload then variant, so consumers need no knowledge of the Cell type.
type gridJSON struct {
	Title     string                                   `json:"title"`
	Workloads []string                                 `json:"workloads"`
	Variants  []string                                 `json:"variants"`
	Metrics   map[string]map[string]map[string]float64 `json:"metrics"`
}

// MarshalJSON implements json.Marshaler: the primary metric appears under
// "mean response time (µs)" alongside the auxiliary metrics.
func (g *Grid) MarshalJSON() ([]byte, error) {
	out := gridJSON{
		Title:     g.Title,
		Workloads: g.Workloads,
		Variants:  g.Variants,
		Metrics:   make(map[string]map[string]map[string]float64, 1+len(g.Aux)),
	}
	add := func(name string, data map[Cell]float64) {
		t := make(map[string]map[string]float64, len(g.Workloads))
		for _, w := range g.Workloads {
			row := make(map[string]float64, len(g.Variants))
			for _, v := range g.Variants {
				if x, ok := data[Cell{w, v}]; ok {
					row[v] = x
				}
			}
			t[w] = row
		}
		out.Metrics[name] = t
	}
	add("mean response time (µs)", g.Mean)
	for name, data := range g.Aux {
		add(name, data)
	}
	return json.Marshal(out)
}

func sortedKeys(m map[string]map[Cell]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// cellJob is one simulation of a grid. run executes in a worker goroutine
// and returns an arbitrary payload; post records it into the grid and is
// always invoked from a single goroutine, so grids need no locking.
type cellJob struct {
	cell Cell
	run  func() (any, error)
	post func(c Cell, payload any)
}

// replayJob adapts the common case: `repeats` replays with shifted seeds
// whose averaged *gcsteering.Results feed the grid.
func replayJob(c Cell, repeats int, run func(seedShift int64) (*gcsteering.Results, error), post func(Cell, *AvgResults)) cellJob {
	return cellJob{
		cell: c,
		run: func() (any, error) {
			avg := &AvgResults{}
			for i := 0; i < repeats; i++ {
				r, err := run(int64(i) * 1000)
				if err != nil {
					return nil, err
				}
				avg.add(r)
			}
			return avg, nil
		},
		post: func(c Cell, payload any) { post(c, payload.(*AvgResults)) },
	}
}

// AvgResults accumulates per-seed results of one cell.
type AvgResults struct {
	N          int
	MeanNs     float64 // averaged mean response time (ns)
	P99Ns      float64
	GCEpisodes float64
	Erases     float64
	Redirect   float64
	Last       *gcsteering.Results
}

func (a *AvgResults) add(r *gcsteering.Results) {
	a.N++
	n := float64(a.N)
	a.MeanNs += (r.Latency.Mean - a.MeanNs) / n
	a.P99Ns += (float64(r.Latency.P99) - a.P99Ns) / n
	a.GCEpisodes += (float64(r.GCEpisodes) - a.GCEpisodes) / n
	a.Erases += (float64(r.Erases) - a.Erases) / n
	a.Redirect += (r.RedirectRatio - a.Redirect) / n
	a.Last = r
}

// runCells executes jobs on a worker pool and applies post-hooks in a
// single goroutine so the grid maps need no locking.
func runCells(jobs []cellJob, workers int) error {
	type outcome struct {
		idx int
		res any
		err error
	}
	jobCh := make(chan int)
	outCh := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				res, err := jobs[idx].run()
				outCh <- outcome{idx, res, err}
			}
		}()
	}
	go func() {
		for i := range jobs {
			jobCh <- i
		}
		close(jobCh)
		wg.Wait()
		close(outCh)
	}()
	var firstErr error
	for o := range outCh {
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cell %v: %w", jobs[o.idx].cell, o.err)
			}
			continue
		}
		jobs[o.idx].post(jobs[o.idx].cell, o.res)
	}
	return firstErr
}
