package harness

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"gcsteering"
	"gcsteering/internal/cluster"
)

// TestGridDeterministicAcrossWorkers pins the harness's core contract: each
// grid cell is a self-contained deterministic simulation, so the worker
// count is pure parallelism — the same Options must produce the identical
// Grid whether cells run serially or fanned out.
func TestGridDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	serial := tinyOptions()
	serial.MaxRequests = 400
	serial.Workers = 1
	fanned := serial
	fanned.Workers = runtime.GOMAXPROCS(0)

	gs, err := Fig7(serial)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := Fig7(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs.Mean, gf.Mean) {
		t.Errorf("primary metric differs across worker counts:\nserial: %v\nfanned: %v", gs.Mean, gf.Mean)
	}
	if !reflect.DeepEqual(gs.Aux, gf.Aux) {
		t.Errorf("aux metrics differ across worker counts")
	}
}

// TestFailSlowGridDeterministicAcrossWorkers pins the robustness machinery
// (health breakers, hedged quarantine reads, retries with backoff) inside
// the same determinism envelope as the base grids: the fail-slow grid must
// be identical whether its cells run serially or fanned out.
func TestFailSlowGridDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	serial := tinyOptions()
	serial.MaxRequests = 400
	serial.Workers = 1
	fanned := serial
	fanned.Workers = runtime.GOMAXPROCS(0)

	gs, err := FailSlow(serial)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := FailSlow(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs.Mean, gf.Mean) {
		t.Errorf("primary metric differs across worker counts:\nserial: %v\nfanned: %v", gs.Mean, gf.Mean)
	}
	if !reflect.DeepEqual(gs.Aux, gf.Aux) {
		t.Errorf("aux metrics differ across worker counts")
	}
}

// TestCrashConsistDeterministicAcrossWorkers pins the crash-consistency
// grid inside the determinism envelope: every cell replays the same trace
// through a power cut, remount, and resync, so the worker count must be
// pure parallelism — identical grids serial and fanned out.
func TestCrashConsistDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation grid")
	}
	serial := tinyOptions()
	serial.MaxRequests = 800
	serial.Workers = 1
	fanned := serial
	fanned.Workers = runtime.GOMAXPROCS(0)

	gs, err := CrashConsist(serial)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := CrashConsist(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs.Mean, gf.Mean) {
		t.Errorf("primary metric differs across worker counts:\nserial: %v\nfanned: %v", gs.Mean, gf.Mean)
	}
	if !reflect.DeepEqual(gs.Aux, gf.Aux) {
		t.Errorf("aux metrics differ across worker counts")
	}
}

// TestClusterDeterministicAcrossShardWorkers pins the fleet layer's
// determinism contract: shards replay on a bounded worker pool, but the
// pool size is pure parallelism — the same seed and configuration must
// produce byte-identical aggregated ClusterResults AND byte-identical
// merged traces with 1, 2, or 8 shard workers.
func TestClusterDeterministicAcrossShardWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation")
	}
	o := tinyOptions()
	o.MaxRequests = 1600
	sc := clusterScenarios()[2] // rebuild: exercises fault shards + steering
	run := func(workers int) (*cluster.ClusterResults, []byte) {
		c := clusterConfig(o, sc, cluster.PolicySteering)
		c.Workers = workers
		var buf bytes.Buffer
		c.Trace = &buf
		r, err := cluster.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}
	baseRes, baseTrace := run(1)
	if len(baseTrace) == 0 {
		t.Fatal("no trace emitted")
	}
	if !strings.HasPrefix(string(baseTrace), `{"t":`) {
		t.Fatalf("merged trace does not start with a JSON line: %.80s", baseTrace)
	}
	for _, workers := range []int{2, 8} {
		res, tr := run(workers)
		if !reflect.DeepEqual(baseRes, res) {
			t.Errorf("ClusterResults differ between 1 and %d workers:\n1: %s\n%d: %s",
				workers, baseRes, workers, res)
		}
		if !bytes.Equal(baseTrace, tr) {
			t.Errorf("merged traces differ between 1 and %d workers (%d vs %d bytes)",
				workers, len(baseTrace), len(tr))
		}
	}
}

// TestChaosDeterministicAcrossShardWorkers extends the fleet determinism
// contract to the failure-domain machinery: replication barriers, a chaos
// plan (crash + link slowdown + GC storm), failover, and re-replication
// all live in the offline router, so the shard worker count must still be
// pure parallelism — byte-identical results and traces at 1, 2, and 8
// workers.
func TestChaosDeterministicAcrossShardWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet simulation")
	}
	o := tinyOptions()
	o.MaxRequests = 1600
	sc := chaosScenarios()[2] // chaos-storm: crash + link slowdown + GC storm
	run := func(workers int) (*cluster.ClusterResults, []byte) {
		c := chaosConfig(o, sc, true)
		c.Workers = workers
		var buf bytes.Buffer
		c.Trace = &buf
		r, err := cluster.Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return r, buf.Bytes()
	}
	baseRes, baseTrace := run(1)
	if len(baseTrace) == 0 {
		t.Fatal("no trace emitted")
	}
	if len(baseRes.Failures) == 0 {
		t.Fatal("chaos scenario compiled no crash")
	}
	for _, workers := range []int{2, 8} {
		res, tr := run(workers)
		if !reflect.DeepEqual(baseRes, res) {
			t.Errorf("chaos ClusterResults differ between 1 and %d workers:\n1: %s\n%d: %s",
				workers, baseRes, workers, res)
		}
		if !bytes.Equal(baseTrace, tr) {
			t.Errorf("chaos traces differ between 1 and %d workers (%d vs %d bytes)",
				workers, len(baseTrace), len(tr))
		}
	}
}

// TestRobustZeroCostWhenHealthy asserts the robustness knobs' core promise:
// with no fault injected, enabling the health monitor, bounded retries, and
// admission control reproduces the baseline run byte-identically. The
// monitor observes synchronously and schedules engine events only when a
// breaker opens; the retry path draws nothing when no error fires; an
// unreached QueueLimit only counts in-flight requests — so a healthy array
// must not be able to tell the machinery is armed.
func TestRobustZeroCostWhenHealthy(t *testing.T) {
	run := func(armed bool) []byte {
		var buf bytes.Buffer
		cfg := tinyOptions().Base()
		cfg.Trace = gcsteering.NewTracer(&buf)
		if armed {
			cfg.Quarantine = true
			cfg.MaxRetries = 2
			cfg.RetryBackoffUs = 200
			cfg.QueueLimit = 4096
		}
		sys, err := gcsteering.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sys.GenerateWorkload("HPC_W", 400)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Replay(tr); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	base, armed := run(false), run(true)
	if len(base) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(base, armed) {
		t.Fatalf("robustness knobs changed a healthy run (%d vs %d trace bytes)", len(base), len(armed))
	}
}

// TestTraceDeterministic asserts the tracer's byte stream is a pure function
// of (Config, seed): two identically configured systems replaying the same
// workload emit identical JSONL.
func TestTraceDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		cfg := tinyOptions().Base()
		cfg.Trace = gcsteering.NewTracer(&buf)
		sys, err := gcsteering.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sys.GenerateWorkload("HPC_W", 400)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Replay(tr); err != nil {
			t.Fatal(err)
		}
		if err := cfg.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	if !strings.HasPrefix(string(a), `{"t":`) {
		t.Errorf("trace does not start with a JSON line: %.80s", a)
	}
}

func TestRebuildBandwidthMBps(t *testing.T) {
	const capacity = int64(1 << 30) // 1 GiB across the array
	if _, err := rebuildBandwidthMBps(capacity, 5, nil); err == nil {
		t.Error("empty trace must be an error, not a zero-duration division")
	}

	// A degenerate trace whose last arrival is at t=0 used to divide by
	// zero and request +Inf MB/s from the rebuilder.
	zero := gcsteering.Trace{{Timestamp: 0, Offset: 0, Size: 4096}}
	bw, err := rebuildBandwidthMBps(capacity, 5, zero)
	if err != nil {
		t.Fatalf("t=0 trace: %v", err)
	}
	if math.IsInf(bw, 0) || math.IsNaN(bw) || bw <= 0 {
		t.Fatalf("t=0 trace: bandwidth = %v, want finite positive", bw)
	}

	// A healthy trace: one member's share of the capacity spread over the
	// trace duration.
	tr := gcsteering.Trace{
		{Timestamp: 0, Offset: 0, Size: 4096},
		{Timestamp: 2_000_000_000, Offset: 4096, Size: 4096}, // 2 s
	}
	bw, err = rebuildBandwidthMBps(capacity, 5, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(capacity) / 4 / 1e6 / 2
	if math.Abs(bw-want) > 1e-9 {
		t.Fatalf("bandwidth = %v, want %v", bw, want)
	}
}
