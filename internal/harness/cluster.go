package harness

import (
	"fmt"

	"gcsteering"
	"gcsteering/internal/cluster"
)

// clusterArrays/clusterTenants size the fleet grid: large enough that
// consistent hashing produces genuinely uneven array load (the imbalance
// cluster steering exploits), small enough to regenerate in seconds.
const (
	clusterArrays  = 8
	clusterTenants = 16
)

// clusterScenario is one row of the fleet grid.
type clusterScenario struct {
	name     string
	profiles []string // tenant profiles, assigned round-robin
	scale    float64  // arrival scale applied to every tenant
	lgc      bool     // force uncoordinated intra-array GC (LGC)
	faults   []int    // arrays replaying under the fault plan
	plan     gcsteering.FaultPlan
}

// clusterScenarios are the three fleet regimes:
//
//   - steady-mix: balanced read/write tenants on healthy arrays — the
//     regime where routing should change little (a no-harm check).
//   - gc-heavy: write-heavy tenants at double arrival rate over LGC
//     arrays, so member GC episodes pepper the fleet and the router has
//     real windows to dodge.
//   - rebuild: two arrays lose a member early and reconstruct at low
//     bandwidth, serving degraded reads for most of the run — the
//     between-array analogue of the paper's Fig. 11.
func clusterScenarios() []clusterScenario {
	return []clusterScenario{
		{
			name:     "steady-mix",
			profiles: []string{"Fin1", "hm_0", "HPC_R", "prxy_0"},
			scale:    1,
		},
		{
			name:     "gc-heavy",
			profiles: []string{"HPC_W", "prxy_0", "Fin1"},
			scale:    2,
			lgc:      true,
		},
		{
			name:     "rebuild",
			profiles: []string{"HPC_R", "hm_0", "Fin1"},
			scale:    1,
			faults:   []int{0, 3},
			plan: gcsteering.FaultPlan{
				Failures:      []gcsteering.DiskFault{{Disk: 1, AtMs: 1}},
				RepairDelayMs: 1,
				RebuildMBps:   25,
			},
		},
	}
}

// clusterConfig assembles the fleet configuration for one cell.
func clusterConfig(o Options, sc clusterScenario, policy cluster.Policy) cluster.Config {
	base := o.base()
	if sc.lgc {
		base.Scheme = gcsteering.SchemeLGC
	}
	perTenant := o.maxRequests() / clusterTenants
	if perTenant < 40 {
		perTenant = 40
	}
	qos := []cluster.QoS{cluster.Gold, cluster.Silver, cluster.Bronze}
	tenants := make([]cluster.Tenant, clusterTenants)
	for i := range tenants {
		tenants[i] = cluster.Tenant{
			Name:         fmt.Sprintf("t%02d", i),
			Profile:      sc.profiles[i%len(sc.profiles)],
			QoS:          qos[i%len(qos)],
			Requests:     perTenant,
			ArrivalScale: sc.scale * (1 + 0.25*float64(i%3)),
			Volumes:      1 + i%2,
		}
	}
	return cluster.Config{
		Arrays:      clusterArrays,
		Policy:      policy,
		Workers:     o.workers(),
		Seed:        o.Seed,
		Base:        base,
		Tenants:     tenants,
		FaultArrays: sc.faults,
		Fault:       sc.plan,
	}
}

// Cluster runs the fleet-scale grid: three scenarios × {hash-only,
// gc-aware} routing over an 8-array, 16-tenant fleet. Cells run
// sequentially — each cell already fans its shards out over the worker
// pool, and sequential cells keep the grid deterministic trivially.
func Cluster(o Options) (*Grid, error) {
	scenarios := clusterScenarios()
	policies := []cluster.Policy{cluster.PolicyHash, cluster.PolicySteering}
	workloads := make([]string, len(scenarios))
	for i, sc := range scenarios {
		workloads[i] = sc.name
	}
	variants := make([]string, len(policies))
	for i, p := range policies {
		variants[i] = p.String()
	}
	g := newGrid(fmt.Sprintf("Fleet simulation: %d arrays × %d tenants, consistent-hash placement, hash-only vs GC/rebuild-aware routing",
		clusterArrays, clusterTenants), workloads, variants)

	for _, sc := range scenarios {
		for _, p := range policies {
			r, err := cluster.Run(clusterConfig(o, sc, p))
			if err != nil {
				return nil, fmt.Errorf("cluster %s/%s: %w", sc.name, p, err)
			}
			c := Cell{sc.name, p.String()}
			g.Mean[c] = r.Latency.Mean / 1e3
			g.addAux("cluster p99 (µs)", c, float64(r.Latency.P99)/1e3)
			g.addAux("read p99 (µs)", c, float64(r.ReadLatency.P99)/1e3)
			g.addAux("worst tenant p99 (µs)", c, float64(r.WorstTenantP99())/1e3)
			g.addAux("worst tenant read p99 (µs)", c, float64(r.WorstTenantReadP99())/1e3)
			g.addAux("redirects", c, float64(r.Redirects))
			g.addAux("shed", c, float64(r.Shed))
			g.addAux("rejected", c, float64(r.Rejected))
			g.addAux("wov (ms)", c, float64(r.WOV)/1e6)
		}
	}
	return g, nil
}
