package harness

import (
	"gcsteering"
)

// Scrub runs the self-healing experiment grid: every cell replays the same
// trace over an array seeded with persistent latent sector errors and
// silent corruption, fails one member mid-trace, and rebuilds it. The
// variants toggle the two self-healing mechanisms against a common
// baseline:
//
//   - "scrub" adds a patrol scrub pass before the failure, repairing the
//     seeded defects in place — the UREs the rebuild then encounters on the
//     survivors must strictly shrink (the §III-D exposure argument).
//   - "hedge" races parity reconstruct-reads against direct reads whose
//     member is mid-GC, attacking the GC-phase read tail.
//
// End-to-end checksums are on everywhere so silent corruption is detected
// (and counted) identically across variants; UREPerPageRead stays zero so
// every URE comes from the deterministic seeded defect sets and the
// scrub/no-scrub comparison is exact, not statistical.
func Scrub(o Options) (*Grid, error) {
	type variant struct {
		name  string
		scrub bool
		hedge bool
	}
	variants := []variant{
		{"baseline", false, false},
		{"scrub", true, false},
		{"hedge", false, true},
		{"scrub+hedge", true, true},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	workloads := []string{"HPC_R", "Fin1", "hm_0"}
	g := newGrid("Self-healing: seeded latent/corrupt pages, failure at 50% of the trace, patrol scrub and GC-hedged reads",
		workloads, names)

	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, v := range variants {
			w, v := w, v
			cfg := o.base()
			// LGC keeps the read path free of steering so the hedge columns
			// isolate the hedged-read mechanism; checksums verify every read.
			cfg.Scheme = gcsteering.SchemeLGC
			cfg.Checksums = true
			cfg.HedgedReads = v.hedge
			jobs = append(jobs, cellJob{
				cell: Cell{w, v.name},
				run: func() (any, error) {
					sys, err := gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					tr, err := sys.GenerateWorkload(w, o.maxRequests())
					if err != nil {
						return nil, err
					}
					// Fail disk 2 at 50% of the trace; size the scrub cap so
					// one full patrol pass (all stripes on all members) lands
					// inside the first ~40%, and the rebuild cap so the
					// reconstruction spans roughly 40% of the trace.
					dur := tr[len(tr)-1].Timestamp.Seconds()
					failAtMs := dur * 1000 * 0.50
					diskBytes := float64(sys.Capacity()) / float64(cfg.Disks-1)
					arrayBytes := diskBytes * float64(cfg.Disks)
					plan := gcsteering.FaultPlan{
						Failures:        []gcsteering.DiskFault{{Disk: 2, AtMs: failAtMs}},
						LatentPageRate:  3e-4,
						CorruptPageRate: 1e-4,
						RepairDelayMs:   50,
						RebuildMBps:     diskBytes / 1e6 / (dur * 0.40),
						RebuildTarget:   gcsteering.RebuildToSpare,
					}
					// The plan and scrub cap need the trace duration and the
					// capacity; rebuild the system with them set. The trace is
					// reused — neither knob affects the array geometry.
					cfg := cfg
					cfg.Fault = plan
					if v.scrub {
						cfg.ScrubMBps = arrayBytes / 1e6 / (dur * 0.35)
						cfg.ScrubPasses = 1
					}
					sys, err = gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					return sys.ReplayWithFaults(tr)
				},
				post: func(c Cell, payload any) {
					r := payload.(*gcsteering.Results)
					g.Mean[c] = r.Latency.Mean / 1e3
					g.addAux("rebuild UREs", c, float64(r.Fault.RebuildUREs))
					g.addAux("data loss events", c, float64(r.Fault.DataLossEvents))
					g.addAux("gc-phase read p99 (µs)", c, float64(r.Phases.GCRead.P99)/1e3)
					g.addAux("hedged reads", c, float64(r.Integrity.HedgedReads))
					g.addAux("hedge recon wins", c, float64(r.Integrity.HedgeReconWins))
					g.addAux("checksum errors detected", c, float64(r.Integrity.ChecksumErrors))
					g.addAux("scrub units repaired", c, float64(r.Scrub.UnitsRepaired))
					g.addAux("scrub pages fixed", c,
						float64(r.Scrub.LatentPagesRepaired+r.Scrub.CorruptPagesRepaired))
				},
			})
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}
