package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"gcsteering"
	"gcsteering/internal/trace"
	"gcsteering/internal/workload"
)

// schemes used across the figures, in the paper's order.
var schemeVariants = []struct {
	name string
	set  func(*gcsteering.Config)
}{
	{"LGC", func(c *gcsteering.Config) { c.Scheme = gcsteering.SchemeLGC }},
	{"GGC", func(c *gcsteering.Config) { c.Scheme = gcsteering.SchemeGGC }},
	{"GC-Steering", func(c *gcsteering.Config) {
		c.Scheme = gcsteering.SchemeSteering
		c.Staging = gcsteering.StagingReserved
	}},
}

// allWorkloads is the paper's Table I order.
func allWorkloads() []string { return workload.Names() }

// fig8Workloads is the five-workload subset the sensitivity figures use.
func fig8Workloads() []string {
	return []string{"HPC_W", "HPC_R", "Fin1", "hm_0", "prxy_0"}
}

// replayCell builds a system (with the given extra seed shift),
// synthesizes the workload sized to its capacity, and replays it.
func replayCell(cfg gcsteering.Config, wl string, maxReq int, seedShift int64) (*gcsteering.Results, error) {
	cfg.Seed += seedShift
	sys, err := gcsteering.New(cfg)
	if err != nil {
		return nil, err
	}
	tr, err := sys.GenerateWorkload(wl, maxReq)
	if err != nil {
		return nil, err
	}
	return sys.Replay(tr)
}

// Table1 regenerates the trace-characteristics table: for each profile it
// synthesizes the trace and reports the measured read ratio, request count
// and average request size next to the published targets.
func Table1(o Options) (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "== Table I: trace characteristics (synthetic vs published) ==")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trace\tread ratio\t(paper)\tnum of req\t(paper)\tavg size KB\t(paper)")
	for _, p := range workload.All() {
		tr, err := workload.Generate(p, workload.Options{
			Capacity:    4 << 30,
			MaxRequests: o.maxRequests(),
			Seed:        o.Seed + 7,
		})
		if err != nil {
			return "", err
		}
		s := trace.ComputeStats(tr)
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%d\t%d\t%.1f\t%.1f\n",
			p.Name, 100*s.ReadRatio, 100*p.ReadRatio, s.Requests, p.Requests, s.AvgSizeKB, p.AvgReqKB)
	}
	tw.Flush()
	fmt.Fprintln(&b, "(num of req column is capped by -requests; the published counts are the full traces)")
	return b.String(), nil
}

// Fig2 regenerates the page-type analysis: the share of reads landing on
// read-intensive pages and writes on write-intensive pages, per MSR trace.
func Fig2(o Options) (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "== Figure 2: read/write distribution over RI/WI/MIX pages ==")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trace\treads→RI\treads→MIX\treads→WI\twrites→WI\twrites→MIX\twrites→RI")
	var sumR, sumW float64
	n := 0
	for _, p := range workload.Enterprise() {
		tr, err := workload.Generate(p, workload.Options{
			Capacity:    4 << 30,
			MaxRequests: o.maxRequests(),
			Seed:        o.Seed + 7,
		})
		if err != nil {
			return "", err
		}
		c := trace.ClassifyPages(tr, 4096, 0.9)
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			p.Name,
			100*c.ReadShare(trace.ClassRI), 100*c.ReadShare(trace.ClassMIX), 100*c.ReadShare(trace.ClassWI),
			100*c.WriteShare(trace.ClassWI), 100*c.WriteShare(trace.ClassMIX), 100*c.WriteShare(trace.ClassRI))
		sumR += c.ReadShare(trace.ClassRI)
		sumW += c.WriteShare(trace.ClassWI)
		n++
	}
	tw.Flush()
	fmt.Fprintf(&b, "average: %.1f%% of reads on RI pages (paper: 89.8%%), %.1f%% of writes on WI pages (paper: 95.5%%)\n",
		100*sumR/float64(n), 100*sumW/float64(n))
	return b.String(), nil
}

// Fig7 regenerates the headline comparison: mean response time (7a) and GC
// counts (7b) for LGC, GGC and GC-Steering over all eight workloads,
// normalized to LGC.
func Fig7(o Options) (*Grid, error) {
	g := newGrid("Figure 7: LGC vs GGC vs GC-Steering (RAID5, 5 SSDs, 64KB unit)",
		allWorkloads(), variantNames())
	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, v := range schemeVariants {
			w, v := w, v
			cfg := o.base()
			v.set(&cfg)
			jobs = append(jobs, replayJob(Cell{w, v.name}, o.repeats(),
				func(shift int64) (*gcsteering.Results, error) { return replayCell(cfg, w, o.maxRequests(), shift) },
				func(c Cell, r *AvgResults) {
					g.Mean[c] = r.MeanNs / 1e3
					g.addAux("GC count (episodes)", c, r.GCEpisodes)
					g.addAux("p99 response time (µs)", c, r.P99Ns/1e3)
					if c.Variant == "GC-Steering" {
						g.addAux("redirect ratio (%)", c, 100*r.Redirect)
					}
				}))
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}

func variantNames() []string {
	out := make([]string, len(schemeVariants))
	for i, v := range schemeVariants {
		out[i] = v.name
	}
	return out
}

// Fig8 regenerates the number-of-SSDs sensitivity study: GC-Steering on
// RAID5 arrays of 5 and 7 SSDs. Both array sizes replay the identical
// trace (sized to the smaller array) so the comparison isolates the disk
// count.
func Fig8(o Options) (*Grid, error) {
	g := newGrid("Figure 8: impact of the number of SSDs (GC-Steering)",
		fig8Workloads(), []string{"5 SSDs", "7 SSDs"})
	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, disks := range []int{5, 7} {
			w, disks := w, disks
			cfg := o.base()
			cfg.Scheme = gcsteering.SchemeSteering
			cfg.Disks = disks
			jobs = append(jobs, replayJob(Cell{w, fmt.Sprintf("%d SSDs", disks)}, o.repeats(),
				func(shift int64) (*gcsteering.Results, error) {
					cfg := cfg
					cfg.Seed += shift
					small := cfg
					small.Disks = 5
					ref, err := gcsteering.New(small)
					if err != nil {
						return nil, err
					}
					tr, err := ref.GenerateWorkload(w, o.maxRequests())
					if err != nil {
						return nil, err
					}
					sys, err := gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					return sys.Replay(tr)
				},
				func(c Cell, r *AvgResults) { g.Mean[c] = r.MeanNs / 1e3 }))
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}

// Fig9 regenerates the stripe-unit-size sensitivity study: 4 KB, 64 KB and
// 128 KB units under GC-Steering.
func Fig9(o Options) (*Grid, error) {
	sizes := []int{4, 64, 128}
	variants := make([]string, len(sizes))
	for i, s := range sizes {
		variants[i] = fmt.Sprintf("%dKB", s)
	}
	g := newGrid("Figure 9: impact of the stripe unit size (GC-Steering)", fig8Workloads(), variants)
	var jobs []cellJob
	for _, w := range g.Workloads {
		for i, size := range sizes {
			w, size, variant := w, size, variants[i]
			cfg := o.base()
			cfg.Scheme = gcsteering.SchemeSteering
			cfg.StripeUnitKB = size
			jobs = append(jobs, replayJob(Cell{w, variant}, o.repeats(),
				func(shift int64) (*gcsteering.Results, error) { return replayCell(cfg, w, o.maxRequests(), shift) },
				func(c Cell, r *AvgResults) { g.Mean[c] = r.MeanNs / 1e3 }))
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}

// Fig10 regenerates the staging-space design-choice study: reserved space
// of each SSD vs a dedicated spare SSD.
func Fig10(o Options) (*Grid, error) {
	g := newGrid("Figure 10: impact of the staging space (GC-Steering)",
		fig8Workloads(), []string{"Reserved", "Dedicated"})
	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, staging := range []gcsteering.StagingKind{gcsteering.StagingReserved, gcsteering.StagingDedicated} {
			w, staging := w, staging
			cfg := o.base()
			cfg.Scheme = gcsteering.SchemeSteering
			cfg.Staging = staging
			jobs = append(jobs, replayJob(Cell{w, staging.String()}, o.repeats(),
				func(shift int64) (*gcsteering.Results, error) { return replayCell(cfg, w, o.maxRequests(), shift) },
				func(c Cell, r *AvgResults) { g.Mean[c] = r.MeanNs / 1e3 }))
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}

// Fig11 regenerates the reconstruction study: the mean user response time
// during RAID rebuild, normalized to the same scheme's response time with
// no rebuild under way. The paper's setup: 6 SSDs total, 5 servicing user
// I/O, the sixth acting as replacement (and as GC-Steering Dedicated's
// staging); rebuild bandwidth capped at 10 MB/s.
func Fig11(o Options) (*Grid, error) {
	type variant struct {
		name   string
		set    func(*gcsteering.Config)
		target gcsteering.RebuildTarget
	}
	variants := []variant{
		{"LGC", func(c *gcsteering.Config) { c.Scheme = gcsteering.SchemeLGC }, gcsteering.RebuildToSpare},
		{"GGC", func(c *gcsteering.Config) { c.Scheme = gcsteering.SchemeGGC }, gcsteering.RebuildToSpare},
		{"GC-Steering(Reserved)", func(c *gcsteering.Config) {
			c.Scheme = gcsteering.SchemeSteering
			c.Staging = gcsteering.StagingReserved
		}, gcsteering.RebuildToReserved},
		{"GC-Steering(Dedicated)", func(c *gcsteering.Config) {
			c.Scheme = gcsteering.SchemeSteering
			c.Staging = gcsteering.StagingDedicated
		}, gcsteering.RebuildToSpare},
	}
	names := make([]string, len(variants))
	for i, v := range variants {
		names[i] = v.name
	}
	g := newGrid("Figure 11: response time during RAID reconstruction, normalized to the no-rebuild state",
		fig8Workloads(), names)

	// Two runs per cell: normal and during-rebuild; the grid's primary
	// metric is the during-rebuild mean; the ratio goes in Aux.
	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, v := range variants {
			w, v := w, v
			cfg := o.base()
			// The reserved space must be able to hold a failed member's
			// contents for the parallel reconstruction workflow, so this
			// experiment provisions a larger reservation (for every scheme,
			// keeping the array geometry identical across variants).
			cfg.ReservedFrac = 0.30
			v.set(&cfg)
			jobs = append(jobs, cellJob{
				cell: Cell{w, v.name},
				run: func() (any, error) {
					normalSys, err := gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					tr, err := normalSys.GenerateWorkload(w, o.maxRequests())
					if err != nil {
						return nil, err
					}
					normal, err := normalSys.Replay(tr)
					if err != nil {
						return nil, err
					}
					rebSys, err := gcsteering.New(cfg)
					if err != nil {
						return nil, err
					}
					// The paper rebuilds a 120 GB SSD at 10 MB/s — several
					// hours, longer than the one-hour traces, so recovery is
					// under way for the entire replay. Scale the bandwidth
					// cap so the simulated rebuild likewise spans the trace.
					bw, err := rebuildBandwidthMBps(rebSys.Capacity(), cfg.Disks, tr)
					if err != nil {
						return nil, err
					}
					reb, err := rebSys.ReplayDuringRebuild(tr, 2, bw, v.target)
					if err != nil {
						return nil, err
					}
					return rebuildPair{normal: normal, rebuild: reb}, nil
				},
				post: func(c Cell, payload any) {
					pair := payload.(rebuildPair)
					g.Mean[c] = pair.rebuild.Latency.Mean / 1e3
					if pair.normal.Latency.Mean > 0 {
						g.addAux("normalized to normal state", c, pair.rebuild.Latency.Mean/pair.normal.Latency.Mean)
					}
					g.addAux("rebuild duration (s)", c, pair.rebuild.RebuildDuration.Seconds())
				},
			})
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}

// rebuildPair carries the two runs of one Fig. 11 cell.
type rebuildPair struct {
	normal  *gcsteering.Results
	rebuild *gcsteering.Results
}

// minRebuildTraceSeconds floors the trace duration used to scale the
// rebuild bandwidth, so degenerate traces (a single request, or every
// arrival stamped t=0) yield a finite — if very high — bandwidth cap
// instead of +Inf.
const minRebuildTraceSeconds = 1e-3

// rebuildBandwidthMBps computes the rebuild bandwidth cap (MB/s) that makes
// reconstructing one member of a disks-wide array with the given total
// logical capacity span the trace's duration. An empty trace has no
// duration to span and is an error.
func rebuildBandwidthMBps(capacityBytes int64, disks int, tr gcsteering.Trace) (float64, error) {
	if len(tr) == 0 {
		return 0, fmt.Errorf("rebuild bandwidth: empty trace has no duration to scale against")
	}
	dur := tr[len(tr)-1].Timestamp.Seconds()
	if dur < minRebuildTraceSeconds {
		dur = minRebuildTraceSeconds
	}
	diskBytes := float64(capacityBytes) / float64(disks-1)
	return diskBytes / 1e6 / dur, nil
}

// RAID6 exercises the paper's future-work direction: the same scheme
// comparison on a RAID6 array (6 SSDs, double parity).
func RAID6(o Options) (*Grid, error) {
	g := newGrid("Extension: LGC vs GGC vs GC-Steering on RAID6 (6 SSDs, 64KB unit)",
		[]string{"HPC_W", "Fin1", "prxy_0"}, variantNames())
	var jobs []cellJob
	for _, w := range g.Workloads {
		for _, v := range schemeVariants {
			w, v := w, v
			cfg := o.base()
			cfg.Level = gcsteering.RAID6
			cfg.Disks = 6
			v.set(&cfg)
			jobs = append(jobs, replayJob(Cell{w, v.name}, o.repeats(),
				func(shift int64) (*gcsteering.Results, error) { return replayCell(cfg, w, o.maxRequests(), shift) },
				func(c Cell, r *AvgResults) {
					g.Mean[c] = r.MeanNs / 1e3
					g.addAux("GC count (episodes)", c, r.GCEpisodes)
				}))
		}
	}
	if err := runCells(jobs, o.workers()); err != nil {
		return nil, err
	}
	return g, nil
}

// Fig1 reproduces the paper's Figure 1 motivation: the response-time
// timeline of an SSD-based RAID as members enter and leave garbage
// collection, for each scheme. The output is a per-scheme ASCII profile of
// 100 ms-window mean response times plus the coefficient of variation —
// LGC's staggered collections keep the array almost continuously degraded
// (the paper's "degraded performance state almost all the time"), GGC
// concentrates the degradation, and GC-Steering flattens it.
//
// Fig1 is the tracing-aware experiment: its three runs are sequential, so
// Options.Trace (separated by run-start events labelled "fig1/<scheme>")
// and Options.SeriesOut (one labelled CSV block per scheme, with per-window
// P99 enabled) are honoured here.
func Fig1(o Options) (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "== Figure 1: GC-induced performance variability (HPC_W timeline) ==")
	header := true
	for _, v := range schemeVariants {
		cfg := o.base()
		v.set(&cfg)
		cfg.Trace = o.Trace
		if o.SeriesOut != nil {
			cfg.WindowQuantiles = true
		}
		if cfg.Trace.Enabled() {
			cfg.Trace.RunStart(0, "fig1/"+v.name)
		}
		res, err := replayCell(cfg, "HPC_W", o.maxRequests(), 0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-12s cv=%.2f  mean=%8.1fµs  |%s|\n",
			v.name, res.VariabilityCV, res.Latency.Mean/1e3, res.Series.Sparkline(60))
		if o.SeriesOut != nil {
			if err := res.Series.WriteCSV(o.SeriesOut, v.name, header); err != nil {
				return "", err
			}
			header = false
		}
	}
	fmt.Fprintln(&b, "(each cell is the mean response time of one 100ms window; taller = slower)")
	return b.String(), nil
}

// Endurance quantifies the reliability angle of §II-A: total block erases
// and worst-block wear per scheme under a write-heavy workload. Erases are
// the budget flash endurance is spent from, so a scheme that forces extra
// collections (GGC) ages the array faster, while GC-Steering leaves the
// erase budget untouched.
func Endurance(o Options) (string, error) {
	var b strings.Builder
	fmt.Fprintln(&b, "== Endurance: erase activity per scheme (prxy_0, write-heavy) ==")
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\terases\tmax block erases\tmean block erases\twrite amp")
	for _, v := range schemeVariants {
		cfg := o.base()
		v.set(&cfg)
		res, err := replayCell(cfg, "prxy_0", o.maxRequests(), 0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%.2f\n",
			v.name, res.Erases, res.Wear.MaxErase, res.Wear.MeanErase, res.WriteAmp)
	}
	tw.Flush()
	return b.String(), nil
}
