// Package obs provides the simulator's structured event tracer: a single
// low-overhead sink that every layer of the stack (sim engine, SSD devices,
// RAID array, steering controller, fault injector, rebuild engine) emits
// scheduling decisions into as they happen.
//
// Design constraints, in order:
//
//  1. Zero cost when disabled. A nil *Tracer is the disabled tracer: every
//     Emit on it is a nil-check and a return, and emit sites guard any
//     extra field computation behind Enabled(). The replay hot path must
//     not regress when tracing is off.
//  2. Deterministic output. The tracer is driven by the single-threaded
//     simulation engine, so for a fixed Config and seed the emitted byte
//     stream is identical run to run (the determinism tests assert this).
//     One Tracer must not be shared between concurrently running engines.
//  3. Parseable without a schema registry. Events are newline-delimited
//     JSON objects with a small fixed key set; the per-kind meaning of the
//     generic fields is documented on Kind.
//
// The line format is:
//
//	{"t":<ns>,"ev":"<kind>","dev":<id>,"page":<p>,"pages":<n>,"aux":<a>,"aux2":<b>}
//
// plus an optional trailing `,"note":"<label>"` used by run separators.
// Encoding is hand-rolled with strconv so a steady emit stream allocates
// nothing after the buffer warms up.
package obs

import (
	"bufio"
	"io"
	"strconv"
	"unicode/utf8"

	"gcsteering/internal/sim"
)

// Kind labels one traced event. The generic Event fields carry per-kind
// payloads as documented on each constant.
type Kind uint8

const (
	// KRunStart separates runs in a multi-run trace file. note = run label.
	KRunStart Kind = iota
	// KGCStart is a fresh garbage-collection episode. dev = device,
	// pages = pages the plan moves, aux = planned episode end (ns),
	// aux2 = 1 when the episode was forced (GGC), 0 when natural.
	KGCStart
	// KGCExtend is new collection work added to a running episode (a write
	// drained the free pool again mid-episode). Fields as KGCStart.
	KGCExtend
	// KGCEnd is the end of an episode, after all extensions. dev = device.
	KGCEnd
	// KSubOp is one disk-level operation fanned out by the RAID engine.
	// dev = member disk, page/pages = extent, aux = raid.OpKind,
	// aux2 = stripe.
	KSubOp
	// KDegradedRead is a read served by reconstruction because its home
	// disk is failed or errored. dev = unreachable disk, page/pages =
	// extent.
	KDegradedRead
	// KURE is a latent sector error surfaced by a host read. dev = disk,
	// page/pages = extent, aux = 1 when repaired from redundancy, 0 when
	// the error was data loss.
	KURE
	// KRedirectRead is a read page served by the staging space. dev = home
	// disk, page = home page, aux = staging device, aux2 = 1 when the home
	// disk was collecting.
	KRedirectRead
	// KRedirectWrite is a write page absorbed by the staging space. Fields
	// as KRedirectRead.
	KRedirectWrite
	// KMigrate is a popular read page proactively copied to staging.
	// dev = home disk, page = home page, aux = staging device.
	KMigrate
	// KAllocFallback is a steered write that fell back to its home disk
	// because the staging allocator had no suitable slot. dev = home disk,
	// page = home page, aux = free write slots at the time.
	KAllocFallback
	// KAllocGated is a steered write that skipped allocation entirely
	// because the rebuild-headroom gate was closed. Fields as
	// KAllocFallback.
	KAllocGated
	// KReclaim is one reclaim write-back run. dev = home disk,
	// page/pages = merged run, aux = free write slots after scheduling.
	KReclaim
	// KDiskFail is a whole-device failure. dev = disk, aux = 1 when the
	// failure exceeded the layout's tolerance (array lost).
	KDiskFail
	// KDiskRepair marks a failed slot repaired after rebuild. dev = disk.
	KDiskRepair
	// KRebuildStart begins a reconstruction. dev = failed disk,
	// aux = total stripes to rebuild.
	KRebuildStart
	// KRebuildUnit is one rebuilt unit. dev = failed disk, page/pages =
	// unit extent, aux = units rebuilt so far, aux2 = total stripes.
	KRebuildUnit
	// KRebuildDone completes a reconstruction. dev = failed disk,
	// aux = rebuild duration (ns).
	KRebuildDone
	// KArrival is a user request entering the array. page/pages = logical
	// extent, aux = 1 for writes, aux2 = request sequence number.
	KArrival
	// KComplete is a user request finishing. aux = response time (ns),
	// aux2 = request sequence number.
	KComplete
	// KChecksumError is a read whose end-to-end checksum verification
	// failed (silent corruption detected). dev = corrupt member,
	// page/pages = disk extent, aux = 1 if served from redundancy.
	KChecksumError
	// KHedgedRead is a read raced against a parity reconstruction because
	// its home disk was busy. dev = home disk, page/pages = disk extent,
	// aux = 1 home mid-GC, 2 home fail-slow, 3 home quarantined.
	KHedgedRead
	// KHedgeWin settles a hedged read. dev = home disk, aux = 1 when the
	// reconstruction leg won, 0 when the direct read did, aux2 = elapsed
	// time (ns) from issue to first completion.
	KHedgeWin
	// KScrubStart begins one patrol scrub pass. aux = pass number (from
	// 0), aux2 = stripes to walk.
	KScrubStart
	// KScrubRepair is a stripe unit rewritten in place from redundancy.
	// dev = repaired member, page/pages = disk extent, aux = latent pages
	// cleared, aux2 = corrupt pages cleared.
	KScrubRepair
	// KScrubBusy is a scrub stripe deferred because a member is mid-GC.
	// dev = collecting member, aux = retry number, aux2 = backoff (ns).
	KScrubBusy
	// KScrubYield is a scrub stripe deferred to foreground load. dev = the
	// most backlogged member, aux2 = its channel backlog (ns).
	KScrubYield
	// KScrubDone completes one patrol pass. aux = units repaired so far,
	// aux2 = pass duration (ns).
	KScrubDone
	// KQuarantine is a device circuit breaker opening: the health monitor
	// judged the member fail-slow and steering now avoids it. dev = device,
	// aux = EWMA per-page latency (ns), aux2 = consecutive re-opens so far.
	KQuarantine
	// KHealthProbe is a half-open breaker judging one probe observation.
	// dev = device, aux = observed per-page latency (ns), aux2 = 1 when the
	// probe was clean (breaker closes), 0 when still slow (re-opens).
	KHealthProbe
	// KReinstate is a breaker closing after a clean probe. dev = device,
	// aux = total quarantined time this episode (ns).
	KReinstate
	// KDeadlineExceeded is a user request cancelled at its deadline before
	// completion. page/pages = logical extent, aux = deadline (ns),
	// aux2 = request sequence number.
	KDeadlineExceeded
	// KRetry is a transiently-failed read sub-op scheduled for another
	// attempt. dev = disk, page/pages = extent, aux = attempt number (from
	// 1), aux2 = backoff until the retry (ns).
	KRetry
	// KRetryExhausted is a read sub-op giving up after its retry budget.
	// dev = disk, page/pages = extent, aux = attempts made.
	KRetryExhausted
	// KReject is a user request refused by admission control. page/pages =
	// logical extent, aux = in-flight requests at the time, aux2 = request
	// sequence number.
	KReject
	// KShed is background work paused under queue pressure. dev = home disk
	// (-1 for scrub), aux = 1 hot-read migration skipped, 2 scrub stripe
	// deferred.
	KShed
	// KClusterPlace is a request routed to its primary array by the cluster
	// tier. dev = array index, aux = tenant index, aux2 = request sequence.
	KClusterPlace
	// KClusterRedirect is a read diverted from a busy primary to its
	// replica array. dev = replica array, aux = primary array, aux2 =
	// request sequence.
	KClusterRedirect
	// KClusterShed is a request dropped by a tenant's admission budget.
	// aux = tenant index, aux2 = request sequence.
	KClusterShed
	// KClusterReplicate is a write's synchronous replica leg enqueued on
	// the replica array. dev = replica array, aux = primary array,
	// aux2 = request sequence.
	KClusterReplicate
	// KClusterArrayDown is a whole-array crash at the routing tier.
	// dev = array, aux = 1 when the crash is permanent, 0 when timed.
	KClusterArrayDown
	// KClusterFailover is the Directory repinning a crashed array's
	// volumes to their replicas. dev = crashed array, aux = volumes
	// repinned, aux2 = detection delay (ns) since the crash.
	KClusterFailover
	// KClusterArrayUp is a crashed array recovering. dev = array.
	KClusterArrayUp
	// KClusterCopyStart begins a background copy job (volume migration or
	// re-replication). dev = destination array, aux = source array,
	// aux2 = bytes to copy. note = volume key.
	KClusterCopyStart
	// KClusterCutover flips a volume's placement after its copy job
	// drains. dev = destination array, aux = source array, aux2 = 0 for a
	// migration, 1 for re-replication. note = volume key.
	KClusterCutover
	// KClusterFailedReq is a request failed because its serving array is
	// down. dev = down array, aux = tenant index, aux2 = request sequence.
	KClusterFailedReq
	// KClusterDataLoss is a read with no live up-to-date copy — the
	// cluster lost data it had acknowledged. dev = down array,
	// aux = tenant index, aux2 = request sequence.
	KClusterDataLoss
	// KPowerLoss is a whole-array power cut: every in-flight program and
	// queued sub-op is lost. aux = dirty (journal-open) stripes at the cut,
	// aux2 = user requests in flight (lost, never acknowledged).
	KPowerLoss
	// KTornWrite is one page program interrupted mid-flight by a power
	// loss: the page persists garbage that fails its CRC32-C on read.
	// dev = device, page = device page, aux = stripe.
	KTornWrite
	// KJournalMark is a stripe marked dirty in the intent journal before
	// its write fan-out. aux = stripe, aux2 = phase-2 legs registered.
	KJournalMark
	// KJournalClear is a stripe's intent retired at its write barrier.
	// aux = stripe.
	KJournalClear
	// KResyncStripe is one stripe checked by the post-restart resync
	// walker. aux = stripe, aux2 = 1 when it was found inconsistent and
	// repaired, 0 when clean.
	KResyncStripe
	// KResyncDone completes the post-restart resync. aux = stripes
	// walked, aux2 = stripes found inconsistent.
	KResyncDone

	kindCount
)

var kindNames = [kindCount]string{
	KRunStart:      "run-start",
	KGCStart:       "gc-start",
	KGCExtend:      "gc-extend",
	KGCEnd:         "gc-end",
	KSubOp:         "subop",
	KDegradedRead:  "degraded-read",
	KURE:           "ure",
	KRedirectRead:  "redirect-read",
	KRedirectWrite: "redirect-write",
	KMigrate:       "migrate",
	KAllocFallback: "alloc-fallback",
	KAllocGated:    "alloc-gated",
	KReclaim:       "reclaim",
	KDiskFail:      "disk-fail",
	KDiskRepair:    "disk-repair",
	KRebuildStart:  "rebuild-start",
	KRebuildUnit:   "rebuild-unit",
	KRebuildDone:   "rebuild-done",
	KArrival:       "arrival",
	KComplete:      "complete",
	KChecksumError: "checksum-error",
	KHedgedRead:    "hedged-read",
	KHedgeWin:      "hedge-win",
	KScrubStart:    "scrub-start",
	KScrubRepair:   "scrub-repair",
	KScrubBusy:     "scrub-busy",
	KScrubYield:    "scrub-yield",
	KScrubDone:     "scrub-done",

	KQuarantine:       "quarantine",
	KHealthProbe:      "health-probe",
	KReinstate:        "reinstate",
	KDeadlineExceeded: "deadline-exceeded",
	KRetry:            "retry",
	KRetryExhausted:   "retry-exhausted",
	KReject:           "reject",
	KShed:             "shed",
	KClusterPlace:     "cluster-place",
	KClusterRedirect:  "cluster-redirect",
	KClusterShed:      "cluster-shed",
	KClusterReplicate: "cluster-replicate",
	KClusterArrayDown: "cluster-array-down",
	KClusterFailover:  "cluster-failover",
	KClusterArrayUp:   "cluster-array-up",
	KClusterCopyStart: "cluster-copy-start",
	KClusterCutover:   "cluster-cutover",
	KClusterFailedReq: "cluster-failed",
	KClusterDataLoss:  "cluster-data-loss",
	KPowerLoss:        "power-loss",
	KTornWrite:        "torn-write",
	KJournalMark:      "journal-mark",
	KJournalClear:     "journal-clear",
	KResyncStripe:     "resync-stripe",
	KResyncDone:       "resync-done",
}

// String returns the kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one traced occurrence. The zero value of every field is valid;
// use -1 for "no device"/"no page" so genuine zeros stay distinguishable.
type Event struct {
	Kind  Kind
	Dev   int32 // device/disk id, -1 when not applicable
	Page  int64 // first page of the extent, -1 when not applicable
	Pages int32 // extent length in pages, 0 when not applicable
	Aux   int64 // kind-specific, see Kind docs
	Aux2  int64 // kind-specific, see Kind docs
	Note  string
}

// Tracer serializes events to a writer as JSON lines. A nil *Tracer is the
// disabled tracer; all methods are nil-safe. Tracer is not safe for
// concurrent use: it belongs to exactly one simulation engine.
type Tracer struct {
	bw     *bufio.Writer
	buf    []byte
	events int64
	err    error
}

// New returns a tracer writing to w. Call Flush before reading the output.
func New(w io.Writer) *Tracer {
	return &Tracer{bw: bufio.NewWriterSize(w, 64<<10), buf: make([]byte, 0, 256)}
}

// Enabled reports whether emits reach a sink. Emit sites use it to skip
// computing event fields when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Events returns how many events have been emitted.
func (t *Tracer) Events() int64 {
	if t == nil {
		return 0
	}
	return t.events
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Emit appends one event. No-op on a nil tracer or after a write error.
func (t *Tracer) Emit(now sim.Time, e Event) {
	if t == nil || t.err != nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(now), 10)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","dev":`...)
	b = strconv.AppendInt(b, int64(e.Dev), 10)
	b = append(b, `,"page":`...)
	b = strconv.AppendInt(b, e.Page, 10)
	b = append(b, `,"pages":`...)
	b = strconv.AppendInt(b, int64(e.Pages), 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendInt(b, e.Aux, 10)
	b = append(b, `,"aux2":`...)
	b = strconv.AppendInt(b, e.Aux2, 10)
	if e.Note != "" {
		b = append(b, `,"note":`...)
		b = appendJSONString(b, e.Note)
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.bw.Write(b); err != nil {
		t.err = err
		return
	}
	t.events++
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a double-quoted JSON string. It exists
// because strconv.AppendQuote writes Go syntax (`\x00`, `\U0001f600`),
// which is not legal JSON: control bytes become \u00XX escapes and invalid
// UTF-8 sequences the Unicode replacement rune, exactly as encoding/json
// does, while the printable ASCII fast path stays a plain append.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c < utf8.RuneSelf {
			if c == '"' || c == '\\' {
				b = append(b, '\\')
			}
			b = append(b, c)
			i++
			continue
		}
		if c < 0x20 {
			switch c {
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = utf8.AppendRune(b, utf8.RuneError)
		} else {
			b = append(b, s[i:i+size]...)
		}
		i += size
	}
	return append(b, '"')
}

// RunStart emits a run separator with the given label.
func (t *Tracer) RunStart(now sim.Time, label string) {
	t.Emit(now, Event{Kind: KRunStart, Dev: -1, Page: -1, Note: label})
}

// Flush drains the internal buffer to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}
