package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"unicode/utf8"

	"gcsteering/internal/sim"
)

// jsonSanitize mirrors encoding/json's invalid-UTF-8 handling: each bad
// byte becomes its own replacement rune.
func jsonSanitize(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b.WriteRune(utf8.RuneError)
		} else {
			b.WriteString(s[i : i+size])
		}
		i += size
	}
	return b.String()
}

// tracedLine mirrors the documented wire format for decoding.
type tracedLine struct {
	T     int64  `json:"t"`
	Ev    string `json:"ev"`
	Dev   int32  `json:"dev"`
	Page  int64  `json:"page"`
	Pages int32  `json:"pages"`
	Aux   int64  `json:"aux"`
	Aux2  int64  `json:"aux2"`
	Note  string `json:"note"`
}

// FuzzObsJSONL drives arbitrary field values — most importantly arbitrary
// note strings, including control bytes and invalid UTF-8 — through the
// hand-rolled encoder and asserts every emitted line is valid JSON that
// round-trips the event.
func FuzzObsJSONL(f *testing.F) {
	f.Add(int64(0), int32(-1), int64(-1), int32(0), int64(0), int64(0), "run=GGC seed=42")
	f.Add(int64(123456789), int32(3), int64(1<<40), int32(64), int64(-7), int64(9), "quote\" backslash\\ newline\n")
	f.Add(int64(-1), int32(0), int64(0), int32(-2), int64(1)<<62, int64(-1)<<62, "nul\x00 ctl\x1f high\x80\xfe µs ✓")
	f.Fuzz(func(t *testing.T, now int64, dev int32, page int64, pages int32, aux, aux2 int64, note string) {
		var buf bytes.Buffer
		tr := New(&buf)
		tr.RunStart(sim.Time(now), note)
		tr.Emit(sim.Time(now), Event{Kind: KGCStart, Dev: dev, Page: page, Pages: pages, Aux: aux, Aux2: aux2, Note: note})
		tr.Emit(sim.Time(now), Event{Kind: Kind(250), Dev: dev, Note: note}) // out-of-range kind prints as "unknown"
		if err := tr.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
		if len(lines) != 3 || tr.Events() != 3 {
			t.Fatalf("got %d lines, %d events; want 3, 3", len(lines), tr.Events())
		}
		// encoding/json substitutes U+FFFD for every invalid byte (unlike
		// strings.ToValidUTF8, which collapses runs); the tracer must agree
		// so notes stay parseable and comparable.
		wantNote := jsonSanitize(note)
		for i, line := range lines {
			var got tracedLine
			if err := json.Unmarshal([]byte(line), &got); err != nil {
				t.Fatalf("line %d is not valid JSON: %v\n%q", i, err, line)
			}
			if got.T != now {
				t.Errorf("line %d: t = %d, want %d", i, got.T, now)
			}
			if note != "" && got.Note != wantNote {
				t.Errorf("line %d: note = %q, want %q", i, got.Note, wantNote)
			}
		}
		var ev tracedLine
		if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Ev != KGCStart.String() || ev.Dev != dev || ev.Page != page || ev.Pages != pages || ev.Aux != aux || ev.Aux2 != aux2 {
			t.Errorf("event line did not round-trip: %+v", ev)
		}
	})
}
