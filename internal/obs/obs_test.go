package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestEmitProducesParseableJSONLines(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf)
	tr.RunStart(0, "test/run")
	tr.Emit(1500, Event{Kind: KGCStart, Dev: 3, Page: -1, Pages: 42, Aux: 9000, Aux2: 1})
	tr.Emit(2500, Event{Kind: KComplete, Dev: -1, Page: -1, Aux: 1000, Aux2: 7})
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := tr.Events(); got != 3 {
		t.Fatalf("Events() = %d, want 3", got)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	type wire struct {
		T     int64  `json:"t"`
		Ev    string `json:"ev"`
		Dev   int32  `json:"dev"`
		Page  int64  `json:"page"`
		Pages int32  `json:"pages"`
		Aux   int64  `json:"aux"`
		Aux2  int64  `json:"aux2"`
		Note  string `json:"note"`
	}
	var evs []wire
	for i, ln := range lines {
		var w wire
		if err := json.Unmarshal([]byte(ln), &w); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, ln)
		}
		evs = append(evs, w)
	}
	if evs[0].Ev != "run-start" || evs[0].Note != "test/run" {
		t.Errorf("run separator = %+v, want ev=run-start note=test/run", evs[0])
	}
	want := wire{T: 1500, Ev: "gc-start", Dev: 3, Page: -1, Pages: 42, Aux: 9000, Aux2: 1}
	if evs[1] != want {
		t.Errorf("gc-start line = %+v, want %+v", evs[1], want)
	}
	if evs[2].Ev != "complete" || evs[2].Aux != 1000 || evs[2].Aux2 != 7 {
		t.Errorf("complete line = %+v", evs[2])
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports Enabled")
	}
	// Must not panic.
	tr.Emit(0, Event{Kind: KGCStart})
	tr.RunStart(0, "x")
	if err := tr.Flush(); err != nil {
		t.Errorf("nil Flush = %v", err)
	}
	if tr.Events() != 0 || tr.Err() != nil {
		t.Errorf("nil tracer has state: events=%d err=%v", tr.Events(), tr.Err())
	}
}

func TestEmitSteadyStateDoesNotAllocate(t *testing.T) {
	tr := New(&bytes.Buffer{})
	e := Event{Kind: KSubOp, Dev: 2, Page: 12345, Pages: 8, Aux: 1, Aux2: 99}
	tr.Emit(0, e) // warm the encode buffer
	allocs := testing.AllocsPerRun(100, func() {
		tr.Emit(424242, e)
	})
	// The 64 KB bufio writer flushes to the bytes.Buffer occasionally; that
	// growth is the buffer's, not the tracer's, and amortizes to < 1.
	if allocs >= 1 {
		t.Errorf("Emit allocates %.2f times per call, want 0", allocs)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Errorf("kind %d has no wire name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Errorf("out-of-range kind String() = %q", Kind(200).String())
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink full")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), nil
}

func TestWriteErrorIsStickyAndStopsCounting(t *testing.T) {
	// A 1-byte tracer buffer is not constructible, so force the failure
	// through Flush: the bufio layer only hits the sink when flushed or full.
	tr := New(&failWriter{n: 0})
	tr.Emit(0, Event{Kind: KArrival})
	before := tr.Events()
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush on failing sink returned nil")
	}
	tr.Emit(1, Event{Kind: KArrival})
	if tr.Events() != before {
		t.Errorf("events counted after write error: %d -> %d", before, tr.Events())
	}
	if tr.Err() == nil {
		t.Error("Err() nil after failed flush")
	}
}
