// Package health implements a deterministic per-device health monitor and
// circuit breaker. It generalizes the paper's GC-awareness to
// health-awareness: a member whose op latency stays far above its peers' —
// for any reason the array cannot see directly, such as an internal
// firmware stall or a degrading flash die — produces the same tail-latency
// contention as a member busy with GC, so an open breaker feeds the
// steering redirector exactly like a GC signal.
//
// The monitor is fed per-op observations from ssd.Device's OnOp hook (via
// sched.Hub), synchronously with each op issue. It keeps an EWMA of
// per-page op latency for every member and compares each member against
// the mean of the others: a device whose EWMA exceeds SlowFactor times its
// peers' (and an absolute floor, so a quiet array never trips) earns a
// strike; OpenAfter consecutive strikes open the breaker
// (closed → open). An open breaker schedules exactly one engine event — the
// half-open probe — so a healthy array runs with zero extra events and
// byte-identical traces whether the monitor is enabled or not.
//
// At the half-open instant the monitor issues a one-page probe read (with a
// nil completion, so the probe itself schedules nothing) and judges the
// resulting observation: a clean probe closes the breaker (reinstatement),
// a slow one re-opens it with doubled backoff, up to a cap. Observations
// taken while a device is mid-GC are ignored in the closed state — GC
// episodes are a known, already-steered-around condition, and letting them
// trip the breaker would quarantine healthy members — but a half-open
// probe always judges, so the breaker cannot get stuck.
package health

import (
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

// Config tunes the monitor. Zero values select the defaults.
type Config struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; larger reacts faster.
	// Default 0.3.
	Alpha float64
	// SlowFactor is how many times slower than the mean of its peers a
	// member's EWMA must be to earn a strike. Default 4.
	SlowFactor float64
	// OpenAfter is how many consecutive strikes open the breaker; the
	// hysteresis that keeps one slow op from quarantining a device.
	// Default 12.
	OpenAfter int
	// MinSamples is the per-device warm-up: no strikes until this many
	// observations have been folded into the EWMA. Default 32.
	MinSamples int
	// MinLatency is an absolute per-page latency floor for a strike, so a
	// lightly-loaded array with tiny absolute spreads never quarantines
	// anyone. Default 500µs.
	MinLatency sim.Time
	// ReinstateFactor is the closing threshold: a half-open probe only
	// reinstates the device when its per-page latency is within this
	// factor of the least-loaded peer's EWMA (or under MinLatency).
	// Keeping it well below SlowFactor gives the breaker hysteresis —
	// a symmetric threshold would flap the breaker, reinstating on a
	// relatively-clean-looking probe and re-striking as soon as real
	// traffic returns. Default 1.5.
	ReinstateFactor float64
	// Backoff is the open → half-open delay, doubling on every failed
	// probe up to MaxBackoff. Defaults 10ms and 160ms.
	Backoff    sim.Time
	MaxBackoff sim.Time
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.SlowFactor <= 0 {
		c.SlowFactor = 4
	}
	if c.OpenAfter <= 0 {
		c.OpenAfter = 12
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.MinLatency <= 0 {
		c.MinLatency = 500 * sim.Microsecond
	}
	if c.ReinstateFactor <= 0 {
		c.ReinstateFactor = 1.5
	}
	if c.Backoff <= 0 {
		c.Backoff = 10 * sim.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 160 * sim.Millisecond
	}
	return c
}

// Stats aggregates the monitor's cumulative activity.
type Stats struct {
	// Quarantines counts breaker openings (re-opens after a failed probe
	// included).
	Quarantines int64
	// Reinstatements counts breakers closed by a clean probe.
	Reinstatements int64
	// Probes counts half-open probe judgements; ProbeFailures those that
	// re-opened the breaker.
	Probes        int64
	ProbeFailures int64
	// QuarantineTime is total device-time spent quarantined (summed over
	// devices).
	QuarantineTime sim.Time
}

type breakerState uint8

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

type devState struct {
	ewma     float64 // per-page op latency estimate (ns)
	samples  int
	strikes  int
	state    breakerState
	openedAt sim.Time
	reopens  int // consecutive opens without a clean probe
	openSeq  int // invalidates stale half-open timers
}

// Monitor watches one array's members. It is driven synchronously by the
// single-threaded simulation engine; all state advances on simulated time.
type Monitor struct {
	eng   *sim.Engine
	cfg   Config
	devs  []devState
	open  int // devices currently open or half-open
	stats Stats

	// Trace, when non-nil, receives quarantine lifecycle events.
	Trace *obs.Tracer
	// Probe, when non-nil, issues a one-page probe op on dev; the resulting
	// Observe call is the half-open judgement. Without it the breaker waits
	// for natural traffic to judge.
	Probe func(now sim.Time, dev int)
	// OnChange, when non-nil, fires on every breaker transition between
	// quarantined (open/half-open) and closed.
	OnChange func(now sim.Time, dev int, quarantined bool)
}

// NewMonitor returns a monitor for n devices.
func NewMonitor(eng *sim.Engine, n int, cfg Config) *Monitor {
	return &Monitor{eng: eng, cfg: cfg.withDefaults(), devs: make([]devState, n)}
}

// Quarantined reports whether dev's breaker is open or half-open — the
// signal steering and hedging consume.
func (m *Monitor) Quarantined(dev int) bool {
	return dev >= 0 && dev < len(m.devs) && m.devs[dev].state != stClosed
}

// OpenCount returns how many devices are currently quarantined.
func (m *Monitor) OpenCount() int { return m.open }

// Stats returns a snapshot of the cumulative statistics. Call Finish first
// to close the books on still-open breakers.
func (m *Monitor) Stats() Stats { return m.stats }

// othersMean returns the mean EWMA of every warmed-up device except dev,
// or 0 when no peer has samples yet.
func (m *Monitor) othersMean(dev int) float64 {
	var sum float64
	n := 0
	for i := range m.devs {
		if i == dev || m.devs[i].samples == 0 {
			continue
		}
		sum += m.devs[i].ewma
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// othersMin returns the smallest EWMA among warmed-up devices other than
// dev, or 0 when no peer has samples yet.
func (m *Monitor) othersMin(dev int) float64 {
	best := 0.0
	for i := range m.devs {
		if i == dev || m.devs[i].samples == 0 {
			continue
		}
		if best == 0 || m.devs[i].ewma < best {
			best = m.devs[i].ewma
		}
	}
	return best
}

// slow reports whether a per-page latency (ns) is a strike against dev:
// far above the peers' mean and above the absolute floor.
func (m *Monitor) slow(dev int, perPage float64) bool {
	peers := m.othersMean(dev)
	return peers > 0 && perPage > m.cfg.SlowFactor*peers && perPage > float64(m.cfg.MinLatency)
}

// Observe folds one op observation into dev's health state. inGC marks
// observations taken while the device is mid-GC: those update nothing in
// the closed state (GC latency is a known condition, already steered
// around) but still judge a half-open probe so the breaker cannot stall.
// Latency should be the op's own service time, queueing excluded (the
// ssd.Device hook's service value): a burst backlog inflates completion
// latency on a perfectly healthy member, and feeding that in would let
// load skew open breakers. pages is the op size; the monitor normalizes
// to per-page latency so mixed op sizes compare.
func (m *Monitor) Observe(now sim.Time, dev int, pages int, latency sim.Time, inGC bool) {
	if dev < 0 || dev >= len(m.devs) || pages <= 0 {
		return
	}
	s := &m.devs[dev]
	perPage := float64(latency) / float64(pages)
	if s.state == stHalfOpen {
		m.judgeProbe(now, dev, perPage)
		return
	}
	if inGC {
		return
	}
	if s.samples == 0 {
		s.ewma = perPage
	} else {
		s.ewma += m.cfg.Alpha * (perPage - s.ewma)
	}
	s.samples++
	if s.state != stClosed {
		return
	}
	if s.samples <= m.cfg.MinSamples || !m.slow(dev, s.ewma) {
		s.strikes = 0
		return
	}
	s.strikes++
	if s.strikes >= m.cfg.OpenAfter {
		m.openBreaker(now, dev)
	}
}

// openBreaker transitions dev to open and schedules the half-open probe —
// the monitor's only engine event.
func (m *Monitor) openBreaker(now sim.Time, dev int) {
	s := &m.devs[dev]
	wasClosed := s.state == stClosed
	s.strikes = 0
	s.state = stOpen
	if wasClosed {
		s.openedAt = now
		m.open++
	}
	m.stats.Quarantines++
	if m.Trace.Enabled() {
		m.Trace.Emit(now, obs.Event{Kind: obs.KQuarantine, Dev: int32(dev),
			Page: -1, Aux: int64(s.ewma), Aux2: int64(s.reopens)})
	}
	backoff := m.cfg.Backoff << s.reopens
	if backoff > m.cfg.MaxBackoff || backoff <= 0 {
		backoff = m.cfg.MaxBackoff
	}
	s.reopens++
	s.openSeq++
	seq := s.openSeq
	if wasClosed && m.OnChange != nil {
		m.OnChange(now, dev, true)
	}
	m.eng.At(now+backoff, func(t sim.Time) { m.halfOpen(t, dev, seq) })
}

// halfOpen transitions dev to half-open and issues the probe op. The probe
// completes synchronously into Observe, which judges it.
func (m *Monitor) halfOpen(now sim.Time, dev int, seq int) {
	s := &m.devs[dev]
	if s.state != stOpen || s.openSeq != seq {
		return
	}
	s.state = stHalfOpen
	if m.Probe != nil {
		m.Probe(now, dev)
	}
}

// judgeProbe settles a half-open breaker on one observation: clean closes
// it, slow re-opens with doubled backoff.
func (m *Monitor) judgeProbe(now sim.Time, dev int, perPage float64) {
	s := &m.devs[dev]
	m.stats.Probes++
	// Judge against the least-loaded peer, not the mean: under a burst every
	// member's EWMA is inflated by queueing, and a mean-relative threshold
	// reinstates a still-slow device exactly when the array is busiest. The
	// minimum approximates the intrinsic device latency; the MinLatency
	// floor keeps a quiet array from holding a recovered device hostage.
	floor := float64(m.cfg.MinLatency)
	if peer := m.othersMin(dev); peer > 0 && m.cfg.ReinstateFactor*peer > floor {
		floor = m.cfg.ReinstateFactor * peer
	}
	clean := perPage <= floor
	if m.Trace.Enabled() {
		m.Trace.Emit(now, obs.Event{Kind: obs.KHealthProbe, Dev: int32(dev),
			Page: -1, Aux: int64(perPage), Aux2: boolInt(clean)})
	}
	if !clean {
		m.stats.ProbeFailures++
		m.openBreaker(now, dev)
		return
	}
	s.state = stClosed
	s.strikes = 0
	s.reopens = 0
	// Restart the EWMA from the clean probe: the quarantine-era estimate is
	// saturated with fail-slow samples and would immediately re-strike. The
	// warm-up is NOT restarted — the device is no stranger, and if the
	// reinstatement was wrong the breaker should re-open within OpenAfter
	// ops, not MinSamples+OpenAfter.
	s.ewma = perPage
	s.samples = m.cfg.MinSamples + 1
	m.open--
	held := now - s.openedAt
	m.stats.QuarantineTime += held
	m.stats.Reinstatements++
	if m.Trace.Enabled() {
		m.Trace.Emit(now, obs.Event{Kind: obs.KReinstate, Dev: int32(dev),
			Page: -1, Aux: int64(held)})
	}
	if m.OnChange != nil {
		m.OnChange(now, dev, false)
	}
}

// Reset force-closes dev's breaker without counting a reinstatement — for
// members that leave the array (whole-device failure supersedes fail-slow).
func (m *Monitor) Reset(now sim.Time, dev int) {
	if dev < 0 || dev >= len(m.devs) {
		return
	}
	s := &m.devs[dev]
	if s.state != stClosed {
		m.open--
		m.stats.QuarantineTime += now - s.openedAt
		if m.OnChange != nil {
			m.OnChange(now, dev, false)
		}
	}
	*s = devState{openSeq: s.openSeq + 1}
}

// Finish closes the books at the end of a run: still-open quarantine time
// is charged up to now. Idempotent.
func (m *Monitor) Finish(now sim.Time) {
	for i := range m.devs {
		s := &m.devs[i]
		if s.state != stClosed && now > s.openedAt {
			m.stats.QuarantineTime += now - s.openedAt
			s.openedAt = now
		}
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
