package health

import (
	"testing"

	"gcsteering/internal/sim"
)

// feed folds n identical observations for dev at 1ms intervals.
func feed(eng *sim.Engine, m *Monitor, dev, n int, perPage sim.Time) {
	for i := 0; i < n; i++ {
		m.Observe(eng.Now(), dev, 1, perPage, false)
		eng.RunFor(sim.Millisecond)
	}
}

// warm gives every device of m a healthy baseline.
func warm(eng *sim.Engine, m *Monitor, devs int, cfg Config) {
	for i := 0; i < cfg.MinSamples+1; i++ {
		for d := 0; d < devs; d++ {
			m.Observe(eng.Now(), d, 1, 100*sim.Microsecond, false)
		}
		eng.RunFor(sim.Millisecond)
	}
}

func testConfig() Config {
	return Config{Alpha: 0.5, SlowFactor: 3, OpenAfter: 4, MinSamples: 8,
		MinLatency: 200 * sim.Microsecond, Backoff: 10 * sim.Millisecond,
		MaxBackoff: 80 * sim.Millisecond}
}

func TestHealthyDevicesNeverQuarantine(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	m := NewMonitor(eng, 4, cfg)
	warm(eng, m, 4, cfg)
	feed(eng, m, 0, 500, 120*sim.Microsecond)
	if m.OpenCount() != 0 || m.Stats().Quarantines != 0 {
		t.Fatalf("healthy array quarantined: open=%d stats=%+v", m.OpenCount(), m.Stats())
	}
	if eng.Pending() != 0 {
		t.Fatalf("healthy monitor scheduled %d engine events; must schedule none", eng.Pending())
	}
}

func TestSlowDeviceOpensAfterHysteresis(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	m := NewMonitor(eng, 4, cfg)
	warm(eng, m, 4, cfg)
	opened := -1
	m.OnChange = func(now sim.Time, dev int, q bool) {
		if q {
			opened = dev
		}
	}
	// One slow op must not trip the breaker; a sustained run must.
	m.Observe(eng.Now(), 2, 1, 5*sim.Millisecond, false)
	if m.Quarantined(2) {
		t.Fatal("single slow op opened the breaker")
	}
	feed(eng, m, 2, 6, 5*sim.Millisecond)
	if !m.Quarantined(2) || opened != 2 {
		t.Fatalf("sustained slowness did not quarantine dev 2 (opened=%d)", opened)
	}
	if got := m.Stats().Quarantines; got != 1 {
		t.Fatalf("Quarantines = %d, want 1", got)
	}
	if m.OpenCount() != 1 {
		t.Fatalf("OpenCount = %d, want 1", m.OpenCount())
	}
}

func TestProbeReinstatesWhenClean(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	m := NewMonitor(eng, 4, cfg)
	probes := 0
	m.Probe = func(now sim.Time, dev int) {
		probes++
		// The device recovered: the probe observes a healthy latency.
		m.Observe(now, dev, 1, 110*sim.Microsecond, false)
	}
	warm(eng, m, 4, cfg)
	feed(eng, m, 1, 5, 5*sim.Millisecond)
	if !m.Quarantined(1) {
		t.Fatal("dev 1 not quarantined")
	}
	eng.Run() // fire the half-open timer
	if probes != 1 {
		t.Fatalf("probes = %d, want 1", probes)
	}
	if m.Quarantined(1) {
		t.Fatal("clean probe did not reinstate")
	}
	st := m.Stats()
	if st.Reinstatements != 1 || st.Probes != 1 || st.ProbeFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.QuarantineTime <= 0 {
		t.Fatalf("QuarantineTime = %v, want > 0", st.QuarantineTime)
	}
}

func TestFailedProbeReopensWithBackoff(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	m := NewMonitor(eng, 4, cfg)
	var opened sim.Time
	m.OnChange = func(now sim.Time, dev int, q bool) {
		if q {
			opened = now
		}
	}
	var probeTimes []sim.Time
	m.Probe = func(now sim.Time, dev int) {
		probeTimes = append(probeTimes, now)
		// First probe still sees the slowness; the second finds it gone.
		lat := 110 * sim.Microsecond
		if len(probeTimes) == 1 {
			lat = 5 * sim.Millisecond
		}
		m.Observe(now, dev, 1, lat, false)
	}
	warm(eng, m, 4, cfg)
	feed(eng, m, 3, 6, 5*sim.Millisecond)
	if !m.Quarantined(3) {
		t.Fatal("dev 3 not quarantined")
	}
	eng.Run() // first probe fails, the retry reinstates
	if len(probeTimes) != 2 {
		t.Fatalf("probes = %d, want a failed probe then a retry", len(probeTimes))
	}
	if m.Quarantined(3) {
		t.Fatal("recovered device never reinstated")
	}
	gap1 := probeTimes[0] - opened
	gap2 := probeTimes[1] - probeTimes[0]
	if gap2 != 2*gap1 {
		t.Fatalf("backoff did not double: first %v then %v", gap1, gap2)
	}
	if st := m.Stats(); st.ProbeFailures != 1 || st.Quarantines != 2 {
		t.Fatalf("stats = %+v, want exactly one re-open", st)
	}
}

func TestBackoffCapped(t *testing.T) {
	cfg := testConfig()
	eng := sim.NewEngine()
	m := NewMonitor(eng, 2, cfg)
	var probeTimes []sim.Time
	m.Probe = func(now sim.Time, dev int) {
		probeTimes = append(probeTimes, now)
		if len(probeTimes) >= 8 {
			m.Observe(now, dev, 1, 100*sim.Microsecond, false) // recover
			return
		}
		m.Observe(now, dev, 1, 50*sim.Millisecond, false)
	}
	warm(eng, m, 2, cfg)
	feed(eng, m, 0, 20, 50*sim.Millisecond)
	if !m.Quarantined(0) {
		t.Fatal("dev 0 not quarantined")
	}
	eng.Run()
	for i := 1; i < len(probeTimes); i++ {
		if gap := probeTimes[i] - probeTimes[i-1]; gap > cfg.MaxBackoff {
			t.Fatalf("probe gap %v exceeds MaxBackoff %v", gap, cfg.MaxBackoff)
		}
	}
}

func TestGCObservationsIgnoredWhenClosed(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	m := NewMonitor(eng, 4, cfg)
	warm(eng, m, 4, cfg)
	// Huge latencies observed mid-GC must not strike.
	for i := 0; i < 100; i++ {
		m.Observe(eng.Now(), 1, 1, 50*sim.Millisecond, true)
		eng.RunFor(sim.Millisecond)
	}
	if m.Quarantined(1) || m.Stats().Quarantines != 0 {
		t.Fatal("GC-period latency tripped the breaker")
	}
}

func TestResetClearsQuarantine(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	m := NewMonitor(eng, 4, cfg)
	warm(eng, m, 4, cfg)
	feed(eng, m, 2, 6, 5*sim.Millisecond)
	if !m.Quarantined(2) {
		t.Fatal("dev 2 not quarantined")
	}
	m.Reset(eng.Now(), 2)
	if m.Quarantined(2) || m.OpenCount() != 0 {
		t.Fatal("Reset left the breaker open")
	}
	if st := m.Stats(); st.Reinstatements != 0 {
		t.Fatalf("Reset counted a reinstatement: %+v", st)
	}
	eng.Run() // the stale half-open timer must be a no-op
	if m.Quarantined(2) {
		t.Fatal("stale half-open timer resurrected the breaker")
	}
}

func TestFinishChargesOpenTime(t *testing.T) {
	eng := sim.NewEngine()
	cfg := testConfig()
	m := NewMonitor(eng, 4, cfg)
	warm(eng, m, 4, cfg)
	feed(eng, m, 0, 6, 5*sim.Millisecond)
	if !m.Quarantined(0) {
		t.Fatal("dev 0 not quarantined")
	}
	eng.RunFor(5 * sim.Millisecond)
	before := m.Stats().QuarantineTime
	m.Finish(eng.Now())
	after := m.Stats().QuarantineTime
	if after <= before {
		t.Fatalf("Finish charged nothing: before %v after %v", before, after)
	}
	m.Finish(eng.Now())
	if m.Stats().QuarantineTime != after {
		t.Fatal("Finish is not idempotent")
	}
}
