package flash

import (
	"math/rand"
	"testing"
)

func testGeom() Geometry {
	return Geometry{
		PageSize:      4096,
		PagesPerBlock: 32,
		Blocks:        64,
		Channels:      4,
		OverProvision: 0.20,
	}
}

func mustFTL(t *testing.T, g Geometry) *FTL {
	t.Helper()
	f, err := NewFTL(g)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGeometryValidate(t *testing.T) {
	if err := DefaultGeometry().Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := []Geometry{
		{PageSize: 0, PagesPerBlock: 32, Blocks: 64, Channels: 4, OverProvision: 0.2},
		{PageSize: 4096, PagesPerBlock: 0, Blocks: 64, Channels: 4, OverProvision: 0.2},
		{PageSize: 4096, PagesPerBlock: 32, Blocks: 0, Channels: 4, OverProvision: 0.2},
		{PageSize: 4096, PagesPerBlock: 32, Blocks: 64, Channels: 0, OverProvision: 0.2},
		{PageSize: 4096, PagesPerBlock: 32, Blocks: 63, Channels: 4, OverProvision: 0.2},  // not divisible
		{PageSize: 4096, PagesPerBlock: 32, Blocks: 64, Channels: 4, OverProvision: 0},    // no spare
		{PageSize: 4096, PagesPerBlock: 32, Blocks: 64, Channels: 4, OverProvision: 0.6},  // absurd spare
		{PageSize: 4096, PagesPerBlock: 32, Blocks: 64, Channels: 32, OverProvision: 0.2}, // < 2 spare/chan
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: geometry %+v unexpectedly valid", i, g)
		}
	}
}

func TestGeometryDerivedSizes(t *testing.T) {
	g := testGeom()
	if g.PhysPages() != 64*32 {
		t.Fatalf("PhysPages = %d", g.PhysPages())
	}
	lp := g.LogicalPages()
	if lp%g.PagesPerBlock != 0 {
		t.Fatalf("LogicalPages %d not block aligned", lp)
	}
	if lp >= g.PhysPages() {
		t.Fatalf("LogicalPages %d >= PhysPages %d", lp, g.PhysPages())
	}
	if g.LogicalBytes() != int64(lp)*4096 {
		t.Fatalf("LogicalBytes = %d", g.LogicalBytes())
	}
	if g.PageChannel(33) != g.BlockChannel(1) {
		t.Fatal("PageChannel disagrees with BlockChannel")
	}
}

func TestFreshFTL(t *testing.T) {
	f := mustFTL(t, testGeom())
	if f.FreeBlocks() != 64 {
		t.Fatalf("FreeBlocks = %d, want 64", f.FreeBlocks())
	}
	if f.MappedPages() != 0 {
		t.Fatalf("MappedPages = %d", f.MappedPages())
	}
	if f.Lookup(0) != -1 {
		t.Fatal("fresh FTL has a mapping")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadBack(t *testing.T) {
	f := mustFTL(t, testGeom())
	p1 := f.Write(10)
	if got := f.Lookup(10); got != p1 {
		t.Fatalf("Lookup(10) = %d, want %d", got, p1)
	}
	p2 := f.Write(10) // overwrite relocates
	if p2 == p1 {
		t.Fatal("overwrite reused the same physical page")
	}
	if got := f.Lookup(10); got != p2 {
		t.Fatalf("Lookup after overwrite = %d, want %d", got, p2)
	}
	if f.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d, want 1", f.MappedPages())
	}
	if f.HostWrites() != 2 {
		t.Fatalf("HostWrites = %d, want 2", f.HostWrites())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWritesStripeAcrossChannels(t *testing.T) {
	g := testGeom()
	f := mustFTL(t, g)
	seen := make(map[int]bool)
	for lpn := 0; lpn < g.Channels; lpn++ {
		seen[g.PageChannel(f.Write(lpn))] = true
	}
	if len(seen) != g.Channels {
		t.Fatalf("first %d writes hit %d channels, want all %d", g.Channels, len(seen), g.Channels)
	}
}

func TestTrim(t *testing.T) {
	f := mustFTL(t, testGeom())
	f.Write(5)
	f.Trim(5)
	if f.Lookup(5) != -1 {
		t.Fatal("Trim left a mapping")
	}
	if f.MappedPages() != 0 {
		t.Fatalf("MappedPages = %d", f.MappedPages())
	}
	f.Trim(5) // trimming an unmapped page is a no-op
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLPNBoundsPanic(t *testing.T) {
	f := mustFTL(t, testGeom())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range lpn did not panic")
		}
	}()
	f.Write(f.Geometry().LogicalPages())
}

func fillSequential(f *FTL) {
	for lpn := 0; lpn < f.Geometry().LogicalPages(); lpn++ {
		f.Write(lpn)
	}
}

func TestFillToCapacity(t *testing.T) {
	f := mustFTL(t, testGeom())
	fillSequential(f)
	if f.MappedPages() != f.Geometry().LogicalPages() {
		t.Fatalf("MappedPages = %d, want %d", f.MappedPages(), f.Geometry().LogicalPages())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlocks() > f.Geometry().Blocks-f.Geometry().LogicalPages()/f.Geometry().PagesPerBlock {
		t.Fatalf("FreeBlocks = %d after full fill", f.FreeBlocks())
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	f := mustFTL(t, testGeom())
	fillSequential(f)
	rng := rand.New(rand.NewSource(1))
	// Random overwrites shrink free space until GC is needed, then GC must
	// restore the target.
	low, target := 2, 6
	episodes := 0
	for i := 0; i < 20000; i++ {
		f.Write(rng.Intn(f.Geometry().LogicalPages()))
		if f.NeedGC(low) {
			plan := f.CollectUntil(target, 0)
			episodes++
			if plan.Empty() {
				t.Fatal("GC needed but plan empty")
			}
			if f.FreeBlocks() < target {
				t.Fatalf("after GC FreeBlocks = %d, want >= %d", f.FreeBlocks(), target)
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("after GC episode %d: %v", episodes, err)
			}
		}
	}
	if episodes == 0 {
		t.Fatal("workload never triggered GC; test is vacuous")
	}
	if f.GCWrites() == 0 || f.Erases() == 0 {
		t.Fatalf("GC stats empty: gcWrites=%d erases=%d", f.GCWrites(), f.Erases())
	}
	if wa := f.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("write amplification %v, want > 1 under random overwrites", wa)
	}
}

func TestGCPreservesMappings(t *testing.T) {
	f := mustFTL(t, testGeom())
	fillSequential(f)
	rng := rand.New(rand.NewSource(2))
	// Track a shadow of which LPNs exist; all must remain readable with
	// consistent translations after GC.
	for i := 0; i < 5000; i++ {
		f.Write(rng.Intn(f.Geometry().LogicalPages()))
		if f.NeedGC(2) {
			f.CollectUntil(6, 0)
		}
	}
	for lpn := 0; lpn < f.Geometry().LogicalPages(); lpn++ {
		ppn := f.Lookup(lpn)
		if ppn < 0 {
			t.Fatalf("lpn %d lost its mapping", lpn)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCMovesReflectValidPages(t *testing.T) {
	f := mustFTL(t, testGeom())
	fillSequential(f)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		f.Write(rng.Intn(f.Geometry().LogicalPages()))
		if !f.NeedGC(2) {
			continue
		}
		beforeMoves, beforeErases := f.GCWrites(), f.Erases()
		plan := f.CollectUntil(6, 0)
		if int64(plan.PagesMoved) != f.GCWrites()-beforeMoves {
			t.Fatalf("plan.PagesMoved=%d, gcWrites delta=%d",
				plan.PagesMoved, f.GCWrites()-beforeMoves)
		}
		if int64(plan.Erases) != f.Erases()-beforeErases {
			t.Fatalf("plan.Erases=%d, erase delta=%d", plan.Erases, f.Erases()-beforeErases)
		}
		for _, v := range plan.Victims {
			if f.Geometry().BlockChannel(v.Block) != v.Channel {
				t.Fatalf("victim %d channel mismatch", v.Block)
			}
			// Note: an early victim may be reopened as a destination block by
			// a later victim in the same episode, so validPages may be > 0
			// again by the time the plan is returned; only the move sources
			// are a stable property.
			for _, m := range plan.VictimMoves(v) {
				if f.Geometry().PageBlock(m.From) != v.Block {
					t.Fatalf("move source %d not in victim block %d", m.From, v.Block)
				}
			}
		}
	}
}

func TestForcedGCCollectsEvenWhenNotNeeded(t *testing.T) {
	f := mustFTL(t, testGeom())
	fillSequential(f)
	// Overwrite a little so some blocks have invalid pages but free space is
	// still plentiful.
	for lpn := 0; lpn < 100; lpn++ {
		f.Write(lpn)
	}
	if f.NeedGC(2) {
		t.Fatal("precondition: GC should not be needed yet")
	}
	plan := f.CollectUntil(0, 1) // minVictims=1 forces a collection
	if plan.Erases < 1 {
		t.Fatal("forced GC did not erase any block")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestForcedGCNoGarbageIsNoop(t *testing.T) {
	f := mustFTL(t, testGeom())
	fillSequential(f) // sequential fill: every full block is 100% valid
	plan := f.CollectUntil(0, 1)
	if !plan.Empty() {
		t.Fatalf("GC collected %d victims with zero invalid pages", plan.Erases)
	}
}

func TestEraseCountsAdvance(t *testing.T) {
	f := mustFTL(t, testGeom())
	fillSequential(f)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 30000; i++ {
		f.Write(rng.Intn(f.Geometry().LogicalPages()))
		if f.NeedGC(2) {
			f.CollectUntil(6, 0)
		}
	}
	total := 0
	for b := 0; b < f.Geometry().Blocks; b++ {
		total += f.BlockEraseCount(b)
	}
	if int64(total) != f.Erases() {
		t.Fatalf("sum of per-block erase counts %d != Erases() %d", total, f.Erases())
	}
}

func BenchmarkFTLRandomOverwriteWithGC(b *testing.B) {
	g := DefaultGeometry()
	f, err := NewFTL(g)
	if err != nil {
		b.Fatal(err)
	}
	for lpn := 0; lpn < g.LogicalPages(); lpn++ {
		f.Write(lpn)
	}
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Write(rng.Intn(g.LogicalPages()))
		if f.NeedGC(8) {
			f.CollectUntil(16, 0)
		}
	}
	b.ReportMetric(f.WriteAmplification(), "write-amp")
}
