package flash

// Move records one valid-page copy performed by garbage collection: the
// page is read from From and programmed at To. Channels for timing purposes
// derive from the geometry (From and To may live on different channels when
// the victim's own channel is out of room).
type Move struct {
	From, To int
}

// VictimPlan describes the collection of a single erase block: all valid
// pages are moved out, then the block is erased. Its moves live in the
// owning Plan's flat arena at [MoveStart, MoveEnd) — one shared slice per
// episode instead of one allocation per victim.
type VictimPlan struct {
	Block              int
	Channel            int
	MoveStart, MoveEnd int // index range into Plan.Moves
}

// Plan is the outcome of one garbage-collection episode. The FTL state is
// already updated when a Plan is returned; the plan exists so the timed
// device model can charge the channel time the episode consumed.
type Plan struct {
	Victims    []VictimPlan
	Moves      []Move // flat arena; victims index into it via [MoveStart, MoveEnd)
	PagesMoved int
	Erases     int
}

// VictimMoves returns the moves belonging to victim v.
func (p *Plan) VictimMoves(v VictimPlan) []Move {
	return p.Moves[v.MoveStart:v.MoveEnd]
}

// Empty reports whether the episode did no work.
func (p Plan) Empty() bool { return len(p.Victims) == 0 }

// NeedGC reports whether free space has fallen to or below the low
// watermark (in blocks).
func (f *FTL) NeedGC(lowWater int) bool { return f.freeBlocks <= lowWater }

// CollectUntil runs a greedy garbage-collection episode: it repeatedly
// selects the fullest-of-invalid victim block, relocates its valid pages,
// and erases it, until the free-block count reaches targetFree and at least
// minVictims blocks have been collected. Blocks whose pages are all valid
// are never selected (collecting them frees nothing). The returned plan
// lists every page move and erase so the caller can model their latency.
//
// minVictims > 0 forces work even when free space is already above the
// target; the GGC policy uses this to make every device collect when any
// one device collects, reproducing the higher total GC counts the paper
// reports for GGC (Fig. 7b).
func (f *FTL) CollectUntil(targetFree, minVictims int) Plan {
	var plan Plan
	for f.freeBlocks < targetFree || len(plan.Victims) < minVictims {
		b := f.pickVictim()
		if b < 0 {
			break // nothing collectible
		}
		vp := f.collectBlock(b, &plan)
		plan.Victims = append(plan.Victims, vp)
		plan.PagesMoved += vp.MoveEnd - vp.MoveStart
		plan.Erases++
	}
	return plan
}

// pickVictim returns the full block with the most invalid pages, or -1 when
// no block has any invalid page. Ties break toward lower block numbers for
// determinism.
func (f *FTL) pickVictim() int {
	best, bestInvalid := -1, 0
	ppb := int32(f.geom.PagesPerBlock)
	for b := range f.blocks {
		if f.blocks[b].state != blockFull {
			continue
		}
		invalid := int(ppb - f.blocks[b].validPages)
		if invalid > bestInvalid {
			best, bestInvalid = b, invalid
		}
	}
	return best
}

// collectBlock relocates every valid page of block b and erases it,
// appending the moves to plan's flat arena. Destinations rotate across
// channels just like host writes do, so the relocation programs proceed in
// parallel instead of serializing behind the victim's own channel.
func (f *FTL) collectBlock(b int, plan *Plan) VictimPlan {
	vp := VictimPlan{Block: b, Channel: f.geom.BlockChannel(b), MoveStart: len(plan.Moves)}
	base := b * f.geom.PagesPerBlock
	for off := 0; off < f.geom.PagesPerBlock; off++ {
		from := base + off
		lpn := f.p2l[from]
		if lpn == unmapped {
			continue
		}
		preferred := f.nextChan
		f.nextChan = (f.nextChan + 1) % f.geom.Channels
		to := f.allocateForGC(f.streamOf(int(lpn)), preferred, b)
		// Relocate the mapping.
		f.p2l[from] = unmapped
		f.blocks[b].validPages--
		f.l2p[lpn] = int32(to)
		f.p2l[to] = lpn
		f.blocks[f.geom.PageBlock(to)].validPages++
		f.gcWrites++
		plan.Moves = append(plan.Moves, Move{From: from, To: to})
	}
	vp.MoveEnd = len(plan.Moves)
	// Erase.
	f.blocks[b].state = blockFree
	f.blocks[b].writePtr = 0
	f.blocks[b].eraseCount++
	f.erases++
	for st := 0; st < 2; st++ {
		if f.activeBlock[st][vp.Channel] == b {
			f.activeBlock[st][vp.Channel] = -1
		}
	}
	f.freeByChan[vp.Channel] = append(f.freeByChan[vp.Channel], b)
	f.freeBlocks++
	return vp
}

// allocateForGC allocates a destination page for a GC move, preferring the
// victim's own channel and spilling to other channels when it is full. The
// victim block itself is excluded as a destination (it is about to be
// erased).
func (f *FTL) allocateForGC(stream, preferred, victim int) int {
	if f.channelHasRoomExcluding(stream, preferred, victim) {
		return f.allocateExcluding(stream, preferred, victim)
	}
	for i := 1; i < f.geom.Channels; i++ {
		c := (preferred + i) % f.geom.Channels
		if f.channelHasRoomExcluding(stream, c, victim) {
			return f.allocateExcluding(stream, c, victim)
		}
	}
	panic("flash: no room anywhere for GC relocation; over-provisioning too small")
}

func (f *FTL) channelHasRoomExcluding(stream, c, victim int) bool {
	for _, b := range f.freeByChan[c] {
		if b != victim {
			return true
		}
	}
	ab := f.activeBlock[stream][c]
	return ab >= 0 && ab != victim && f.blocks[ab].writePtr < int32(f.geom.PagesPerBlock)
}

// allocateExcluding is allocate but will never open the excluded block as
// the active block.
func (f *FTL) allocateExcluding(stream, c, excluded int) int {
	ab := f.activeBlock[stream][c]
	if ab < 0 || ab == excluded || f.blocks[ab].writePtr >= int32(f.geom.PagesPerBlock) {
		if ab >= 0 && f.blocks[ab].writePtr >= int32(f.geom.PagesPerBlock) {
			f.blocks[ab].state = blockFull
		}
		idx := -1
		for i := len(f.freeByChan[c]) - 1; i >= 0; i-- {
			if f.freeByChan[c][i] != excluded {
				idx = i
				break
			}
		}
		if idx < 0 {
			panic("flash: allocateExcluding called with no eligible free block")
		}
		nb := f.freeByChan[c][idx]
		f.freeByChan[c] = append(f.freeByChan[c][:idx], f.freeByChan[c][idx+1:]...)
		f.freeBlocks--
		f.blocks[nb].state = blockActive
		f.blocks[nb].writePtr = 0
		f.activeBlock[stream][c] = nb
		ab = nb
	}
	ppn := ab*f.geom.PagesPerBlock + int(f.blocks[ab].writePtr)
	f.blocks[ab].writePtr++
	return ppn
}
