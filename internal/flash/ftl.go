package flash

import "fmt"

// Page and block sentinels.
const (
	unmapped = int32(-1)
)

type blockState uint8

const (
	blockFree blockState = iota
	blockActive
	blockFull
)

type blockMeta struct {
	state      blockState
	validPages int32
	writePtr   int32 // next page offset to program within the block
	eraseCount int32
}

// FTL is a page-mapped flash translation layer.
//
// Each channel owns an independent pool of blocks and an active block that
// absorbs programs. Host writes stripe across channels round-robin so that
// sequential logical writes exploit channel parallelism, the behaviour the
// paper's §II-B relies on ("the internal parallelism of flash-based SSDs").
type FTL struct {
	geom Geometry

	l2p []int32 // logical page -> physical page, or unmapped
	p2l []int32 // physical page -> logical page, or unmapped (free/invalid)

	blocks []blockMeta

	freeByChan [][]int // per-channel stacks of free block indices
	// activeBlock is indexed [stream][channel]: stream 0 carries ordinary
	// host data, stream 1 carries cold data (LPNs at or above coldStart —
	// the staging region). Separating the streams keeps long-lived staging
	// copies out of the blocks churned by hot user writes, the classic
	// multi-stream FTL optimization.
	activeBlock [2][]int
	coldStart   int // first LPN of the cold stream (LogicalPages = none)
	nextChan    int // round-robin cursor for host writes

	freeBlocks  int // total blocks in blockFree state
	mappedPages int // number of mapped logical pages

	// Cumulative statistics.
	hostWrites int64 // pages written by the host
	gcWrites   int64 // pages copied by garbage collection
	erases     int64 // blocks erased
}

// NewFTL creates an FTL with all blocks free and no mappings.
func NewFTL(g Geometry) (*FTL, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	f := &FTL{
		geom:       g,
		l2p:        make([]int32, g.LogicalPages()),
		p2l:        make([]int32, g.PhysPages()),
		blocks:     make([]blockMeta, g.Blocks),
		freeByChan: make([][]int, g.Channels),
		coldStart:  g.LogicalPages(),
	}
	for i := range f.l2p {
		f.l2p[i] = unmapped
	}
	for i := range f.p2l {
		f.p2l[i] = unmapped
	}
	for st := 0; st < 2; st++ {
		f.activeBlock[st] = make([]int, g.Channels)
		for c := 0; c < g.Channels; c++ {
			f.activeBlock[st][c] = -1
		}
	}
	// Populate free lists channel by channel, low block numbers first.
	for b := g.Blocks - 1; b >= 0; b-- {
		c := g.BlockChannel(b)
		f.freeByChan[c] = append(f.freeByChan[c], b)
	}
	f.freeBlocks = g.Blocks
	return f, nil
}

// Geometry returns the device geometry.
func (f *FTL) Geometry() Geometry { return f.geom }

// FreeBlocks returns the number of fully erased blocks.
func (f *FTL) FreeBlocks() int { return f.freeBlocks }

// MappedPages returns the number of logical pages with valid data.
func (f *FTL) MappedPages() int { return f.mappedPages }

// HostWrites returns the cumulative number of host page programs.
func (f *FTL) HostWrites() int64 { return f.hostWrites }

// GCWrites returns the cumulative number of GC page copies.
func (f *FTL) GCWrites() int64 { return f.gcWrites }

// Erases returns the cumulative number of block erases.
func (f *FTL) Erases() int64 { return f.erases }

// WriteAmplification returns (host+gc)/host page programs, or 1 when the
// host has not written yet.
func (f *FTL) WriteAmplification() float64 {
	if f.hostWrites == 0 {
		return 1
	}
	return float64(f.hostWrites+f.gcWrites) / float64(f.hostWrites)
}

// SetColdBoundary declares that LPNs at or above boundary belong to the
// cold stream (the staging region). Pass LogicalPages() to disable.
func (f *FTL) SetColdBoundary(boundary int) {
	if boundary < 0 || boundary > len(f.l2p) {
		panic(fmt.Sprintf("flash: cold boundary %d out of range", boundary))
	}
	f.coldStart = boundary
}

// streamOf returns the write stream for a logical page.
func (f *FTL) streamOf(lpn int) int {
	if lpn >= f.coldStart {
		return 1
	}
	return 0
}

// Lookup returns the physical page holding logical page lpn, or -1 when the
// page has never been written.
func (f *FTL) Lookup(lpn int) int {
	f.checkLPN(lpn)
	return int(f.l2p[lpn])
}

// Write maps logical page lpn to a freshly allocated physical page and
// invalidates the previous mapping. It returns the physical page programmed.
// The caller is responsible for triggering garbage collection when
// NeedGC reports true; Write itself never garbage-collects but will panic if
// the device is truly out of free pages (which indicates the caller ignored
// NeedGC far too long).
func (f *FTL) Write(lpn int) int {
	f.checkLPN(lpn)
	f.invalidate(lpn)
	stream := f.streamOf(lpn)
	ppn := f.allocate(stream, f.pickWriteChannel(stream))
	f.l2p[lpn] = int32(ppn)
	f.p2l[ppn] = int32(lpn)
	f.blocks[f.geom.PageBlock(ppn)].validPages++
	f.mappedPages++
	f.hostWrites++
	return ppn
}

// Trim drops the mapping for lpn, marking its physical page invalid.
func (f *FTL) Trim(lpn int) {
	f.checkLPN(lpn)
	f.invalidate(lpn)
}

func (f *FTL) checkLPN(lpn int) {
	if lpn < 0 || lpn >= len(f.l2p) {
		panic(fmt.Sprintf("flash: lpn %d out of range [0,%d)", lpn, len(f.l2p)))
	}
}

// invalidate clears any existing mapping for lpn.
func (f *FTL) invalidate(lpn int) {
	old := f.l2p[lpn]
	if old == unmapped {
		return
	}
	f.l2p[lpn] = unmapped
	f.p2l[old] = unmapped
	f.blocks[f.geom.PageBlock(int(old))].validPages--
	f.mappedPages--
}

// pickWriteChannel advances the round-robin cursor, skipping channels with
// no room at all (every block full and no free block). If every channel is
// exhausted it panics: GC must run before that point.
func (f *FTL) pickWriteChannel(stream int) int {
	for i := 0; i < f.geom.Channels; i++ {
		c := f.nextChan
		f.nextChan = (f.nextChan + 1) % f.geom.Channels
		if f.channelHasRoom(stream, c) {
			return c
		}
	}
	panic("flash: device out of space on every channel; GC was not run")
}

func (f *FTL) channelHasRoom(stream, c int) bool {
	if len(f.freeByChan[c]) > 0 {
		return true
	}
	ab := f.activeBlock[stream][c]
	return ab >= 0 && f.blocks[ab].writePtr < int32(f.geom.PagesPerBlock)
}

// allocate returns the next physical page on channel c in the given
// stream, opening a fresh active block when the current one fills.
func (f *FTL) allocate(stream, c int) int {
	ab := f.activeBlock[stream][c]
	if ab < 0 || f.blocks[ab].writePtr >= int32(f.geom.PagesPerBlock) {
		if ab >= 0 {
			f.blocks[ab].state = blockFull
		}
		n := len(f.freeByChan[c])
		if n == 0 {
			panic(fmt.Sprintf("flash: channel %d has no free blocks", c))
		}
		ab = f.freeByChan[c][n-1]
		f.freeByChan[c] = f.freeByChan[c][:n-1]
		f.freeBlocks--
		f.blocks[ab].state = blockActive
		f.blocks[ab].writePtr = 0
		f.activeBlock[stream][c] = ab
	}
	ppn := ab*f.geom.PagesPerBlock + int(f.blocks[ab].writePtr)
	f.blocks[ab].writePtr++
	return ppn
}

// BlockValidPages returns the number of valid pages in block b (test hook).
func (f *FTL) BlockValidPages(b int) int { return int(f.blocks[b].validPages) }

// BlockEraseCount returns how many times block b has been erased.
func (f *FTL) BlockEraseCount(b int) int { return int(f.blocks[b].eraseCount) }

// CheckInvariants verifies internal consistency. It is exercised by tests
// and by the property-based suite; production code never calls it.
func (f *FTL) CheckInvariants() error {
	mapped := 0
	for lpn, ppn := range f.l2p {
		if ppn == unmapped {
			continue
		}
		mapped++
		if f.p2l[ppn] != int32(lpn) {
			return fmt.Errorf("flash: l2p[%d]=%d but p2l[%d]=%d", lpn, ppn, ppn, f.p2l[ppn])
		}
	}
	if mapped != f.mappedPages {
		return fmt.Errorf("flash: mappedPages=%d but %d mappings exist", f.mappedPages, mapped)
	}
	validByBlock := make([]int32, f.geom.Blocks)
	for ppn, lpn := range f.p2l {
		if lpn == unmapped {
			continue
		}
		if f.l2p[lpn] != int32(ppn) {
			return fmt.Errorf("flash: p2l[%d]=%d but l2p[%d]=%d", ppn, lpn, lpn, f.l2p[lpn])
		}
		validByBlock[f.geom.PageBlock(ppn)]++
	}
	freeCount := 0
	for b := range f.blocks {
		if f.blocks[b].validPages != validByBlock[b] {
			return fmt.Errorf("flash: block %d validPages=%d, recount=%d",
				b, f.blocks[b].validPages, validByBlock[b])
		}
		if f.blocks[b].state == blockFree {
			freeCount++
			if validByBlock[b] != 0 {
				return fmt.Errorf("flash: free block %d has %d valid pages", b, validByBlock[b])
			}
		}
	}
	if freeCount != f.freeBlocks {
		return fmt.Errorf("flash: freeBlocks=%d, recount=%d", f.freeBlocks, freeCount)
	}
	for c, list := range f.freeByChan {
		for _, b := range list {
			if f.geom.BlockChannel(b) != c {
				return fmt.Errorf("flash: block %d on free list of channel %d", b, c)
			}
			if f.blocks[b].state != blockFree {
				return fmt.Errorf("flash: non-free block %d on free list", b)
			}
		}
	}
	return nil
}
