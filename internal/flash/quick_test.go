package flash

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// opScript is a randomized FTL operation sequence used for property tests.
type opScript struct {
	Seed int64
	N    uint16
}

// Generate implements quick.Generator.
func (opScript) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(opScript{Seed: r.Int63(), N: uint16(r.Intn(4000))})
}

// TestQuickInvariantsUnderRandomOps drives random write/trim/GC sequences
// and checks the full FTL invariant set after every GC episode and at the
// end. This is the core safety property: no operation sequence may ever
// corrupt the translation layer.
func TestQuickInvariantsUnderRandomOps(t *testing.T) {
	g := testGeom()
	f := func(s opScript) bool {
		ftl, err := NewFTL(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(s.Seed))
		lp := g.LogicalPages()
		for i := 0; i < int(s.N); i++ {
			switch rng.Intn(10) {
			case 0:
				ftl.Trim(rng.Intn(lp))
			default:
				ftl.Write(rng.Intn(lp))
			}
			if ftl.NeedGC(2) {
				ftl.CollectUntil(5, 0)
				if err := ftl.CheckInvariants(); err != nil {
					t.Logf("invariant violated mid-run: %v", err)
					return false
				}
			}
		}
		return ftl.CheckInvariants() == nil
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMappingsSurviveGC checks read-your-writes: after any op
// sequence, each LPN's translation must reflect the most recent operation
// on it (write → mapped, trim → unmapped).
func TestQuickMappingsSurviveGC(t *testing.T) {
	g := testGeom()
	f := func(s opScript) bool {
		ftl, err := NewFTL(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(s.Seed))
		lp := g.LogicalPages()
		shadow := make([]bool, lp) // true = mapped
		for i := 0; i < int(s.N); i++ {
			lpn := rng.Intn(lp)
			if rng.Intn(10) == 0 {
				ftl.Trim(lpn)
				shadow[lpn] = false
			} else {
				ftl.Write(lpn)
				shadow[lpn] = true
			}
			if ftl.NeedGC(2) {
				ftl.CollectUntil(5, 0)
			}
		}
		for lpn, mapped := range shadow {
			if mapped != (ftl.Lookup(lpn) >= 0) {
				t.Logf("lpn %d: shadow mapped=%v, ftl=%d", lpn, mapped, ftl.Lookup(lpn))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickNoPhysicalAliasing ensures two distinct LPNs never map to the
// same physical page.
func TestQuickNoPhysicalAliasing(t *testing.T) {
	g := testGeom()
	f := func(s opScript) bool {
		ftl, err := NewFTL(g)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(s.Seed))
		lp := g.LogicalPages()
		for i := 0; i < int(s.N); i++ {
			ftl.Write(rng.Intn(lp))
			if ftl.NeedGC(2) {
				ftl.CollectUntil(5, 0)
			}
		}
		seen := make(map[int]int)
		for lpn := 0; lpn < lp; lpn++ {
			ppn := ftl.Lookup(lpn)
			if ppn < 0 {
				continue
			}
			if prev, dup := seen[ppn]; dup {
				t.Logf("lpns %d and %d alias ppn %d", prev, lpn, ppn)
				return false
			}
			seen[ppn] = lpn
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
