package flash

import (
	"math/rand"
	"testing"
)

func TestColdBoundaryValidation(t *testing.T) {
	f := mustFTL(t, testGeom())
	f.SetColdBoundary(0)                           // everything cold: allowed
	f.SetColdBoundary(f.Geometry().LogicalPages()) // nothing cold: allowed
	for _, bad := range []int{-1, f.Geometry().LogicalPages() + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("boundary %d accepted", bad)
				}
			}()
			f.SetColdBoundary(bad)
		}()
	}
}

func TestStreamsUseSeparateActiveBlocks(t *testing.T) {
	g := testGeom()
	f := mustFTL(t, g)
	boundary := g.LogicalPages() / 2
	f.SetColdBoundary(boundary)
	hot := f.Write(0)
	cold := f.Write(boundary)
	if g.PageBlock(hot) == g.PageBlock(cold) {
		t.Fatalf("hot page %d and cold page %d share block %d", hot, cold, g.PageBlock(hot))
	}
	// Consecutive writes within one stream share active blocks as usual.
	hot2 := f.Write(1)
	if g.PageChannel(hot) == g.PageChannel(hot2) && g.PageBlock(hot) != g.PageBlock(hot2) {
		t.Fatalf("same-channel hot writes did not share the active block")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestColdPagesNeverMixWithHotBlocks(t *testing.T) {
	g := testGeom()
	f := mustFTL(t, g)
	boundary := g.LogicalPages() * 3 / 4
	f.SetColdBoundary(boundary)
	rng := rand.New(rand.NewSource(6))
	// Interleave hot and cold writes heavily, with GC.
	for i := 0; i < 20000; i++ {
		if rng.Intn(4) == 0 {
			f.Write(boundary + rng.Intn(g.LogicalPages()-boundary))
		} else {
			f.Write(rng.Intn(boundary))
		}
		if f.NeedGC(2) {
			f.CollectUntil(6, 0)
		}
	}
	// Every block must be pure: all-hot or all-cold among its valid pages.
	for b := 0; b < g.Blocks; b++ {
		hot, cold := 0, 0
		base := b * g.PagesPerBlock
		for off := 0; off < g.PagesPerBlock; off++ {
			lpn := f.p2l[base+off]
			if lpn == unmapped {
				continue
			}
			if int(lpn) >= boundary {
				cold++
			} else {
				hot++
			}
		}
		if hot > 0 && cold > 0 {
			t.Fatalf("block %d mixes %d hot and %d cold valid pages", b, hot, cold)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestColdStreamSurvivesGCRelocation(t *testing.T) {
	g := testGeom()
	f := mustFTL(t, g)
	boundary := g.LogicalPages() / 2
	f.SetColdBoundary(boundary)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 15000; i++ {
		f.Write(rng.Intn(g.LogicalPages()))
		if f.NeedGC(2) {
			f.CollectUntil(6, 0)
		}
	}
	// All cold mappings still resolve and live in cold-only blocks (the
	// purity check in the previous test covers mixing; here we verify GC
	// moves preserved every mapping).
	for lpn := boundary; lpn < g.LogicalPages(); lpn++ {
		if f.Lookup(lpn) < 0 && f.MappedPages() > 0 {
			continue // never written is fine
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
