// Package flash models the state machine of NAND flash management inside an
// SSD: page-mapped address translation, out-of-place writes, invalidation,
// and greedy garbage collection over a pool of erase blocks spread across
// parallel channels.
//
// The package is purely logical — it decides *which* physical pages move and
// *which* blocks are erased, but attaches no time to anything. The timed
// device model in internal/ssd turns the decisions into channel occupancy.
// Keeping the two concerns apart makes the FTL invariants directly testable.
package flash

import "fmt"

// Geometry describes the physical shape of one simulated SSD.
type Geometry struct {
	// PageSize is the flash page size in bytes (the unit of read/program).
	PageSize int
	// PagesPerBlock is the number of pages in one erase block.
	PagesPerBlock int
	// Blocks is the total number of physical erase blocks on the device.
	Blocks int
	// Channels is the number of independent flash channels. Blocks are
	// assigned to channels round-robin (block b lives on channel b%Channels),
	// so each channel owns Blocks/Channels blocks.
	Channels int
	// OverProvision is the fraction of raw capacity hidden from the host
	// (0.10 means 10% spare). It determines the logical page count.
	OverProvision float64
}

// DefaultGeometry mirrors a small enterprise SATA SSD scaled down for
// simulation speed: 4 KB pages, 1 MB blocks, 8 channels, 10% spare.
func DefaultGeometry() Geometry {
	return Geometry{
		PageSize:      4096,
		PagesPerBlock: 256,
		Blocks:        512,
		Channels:      8,
		OverProvision: 0.10,
	}
}

// Validate reports whether the geometry is internally consistent.
func (g Geometry) Validate() error {
	switch {
	case g.PageSize <= 0:
		return fmt.Errorf("flash: PageSize %d must be positive", g.PageSize)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("flash: PagesPerBlock %d must be positive", g.PagesPerBlock)
	case g.Blocks <= 0:
		return fmt.Errorf("flash: Blocks %d must be positive", g.Blocks)
	case g.Channels <= 0:
		return fmt.Errorf("flash: Channels %d must be positive", g.Channels)
	case g.Blocks%g.Channels != 0:
		return fmt.Errorf("flash: Blocks %d not divisible by Channels %d", g.Blocks, g.Channels)
	case g.OverProvision <= 0 || g.OverProvision >= 0.5:
		return fmt.Errorf("flash: OverProvision %v outside (0, 0.5)", g.OverProvision)
	}
	// GC needs room to breathe: at least two spare blocks per channel.
	if g.spareBlocks() < 2*g.Channels {
		return fmt.Errorf("flash: over-provisioning yields %d spare blocks, need >= %d",
			g.spareBlocks(), 2*g.Channels)
	}
	return nil
}

// PhysPages is the raw number of physical pages.
func (g Geometry) PhysPages() int { return g.Blocks * g.PagesPerBlock }

// spareBlocks is the number of blocks hidden by over-provisioning.
func (g Geometry) spareBlocks() int {
	return g.Blocks - g.LogicalPages()/g.PagesPerBlock
}

// LogicalPages is the number of pages exposed to the host.
func (g Geometry) LogicalPages() int {
	lp := int(float64(g.PhysPages()) * (1 - g.OverProvision))
	// Round down to a whole number of blocks so accounting stays simple.
	return lp - lp%g.PagesPerBlock
}

// LogicalBytes is the host-visible capacity in bytes.
func (g Geometry) LogicalBytes() int64 {
	return int64(g.LogicalPages()) * int64(g.PageSize)
}

// BlockChannel returns the channel owning physical block b.
func (g Geometry) BlockChannel(b int) int { return b % g.Channels }

// PageBlock returns the erase block containing physical page p.
func (g Geometry) PageBlock(p int) int { return p / g.PagesPerBlock }

// PageChannel returns the channel that services physical page p.
func (g Geometry) PageChannel(p int) int { return g.BlockChannel(g.PageBlock(p)) }
