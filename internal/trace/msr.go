package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gcsteering/internal/sim"
)

// MSR Cambridge trace format: one CSV line per request,
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp is a Windows FILETIME (100 ns ticks since 1601),
// Type is "Read" or "Write", Offset and Size are bytes, and ResponseTime is
// in 100 ns ticks (ignored on parse). Timestamps are rebased so the first
// record is at zero.

const filetimeTick = 100 * sim.Nanosecond

// ParseMSR reads an MSR-format CSV stream.
func ParseMSR(r io.Reader) (Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var base int64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) < 6 {
			return nil, fmt.Errorf("trace: msr line %d: %d fields, want >= 6", line, len(f))
		}
		ts, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d timestamp: %v", line, err)
		}
		var write bool
		switch strings.ToLower(f[3]) {
		case "write", "w":
			write = true
		case "read", "r":
			write = false
		default:
			return nil, fmt.Errorf("trace: msr line %d type %q", line, f[3])
		}
		off, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d offset: %v", line, err)
		}
		size, err := strconv.Atoi(f[5])
		if err != nil {
			return nil, fmt.Errorf("trace: msr line %d size: %v", line, err)
		}
		if len(t) == 0 {
			base = ts
		}
		t = append(t, Record{
			Timestamp: sim.Time(ts-base) * filetimeTick,
			Offset:    off,
			Size:      size,
			Write:     write,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: msr scan: %w", err)
	}
	SortByTime(t)
	return t, nil
}

// WriteMSR emits the trace in MSR CSV format with host "sim" disk 0.
func WriteMSR(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t {
		typ := "Read"
		if r.Write {
			typ = "Write"
		}
		ticks := int64(r.Timestamp / filetimeTick)
		if _, err := fmt.Fprintf(bw, "%d,sim,0,%s,%d,%d,0\n", ticks, typ, r.Offset, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
