package trace

// Page-access classification used by the paper's §II-C and Figure 2: a
// page is read-intensive (RI) when more than `threshold` of its accesses
// are reads, write-intensive (WI) when more than `threshold` are writes,
// and mixed (MIX) otherwise.

// PageClass labels one page's access pattern.
type PageClass int

const (
	// ClassRI marks read-intensive pages (> threshold reads).
	ClassRI PageClass = iota
	// ClassWI marks write-intensive pages (> threshold writes).
	ClassWI
	// ClassMIX marks pages with genuinely interleaved reads and writes.
	ClassMIX
)

// String names the class as in the paper.
func (c PageClass) String() string {
	switch c {
	case ClassRI:
		return "RI"
	case ClassWI:
		return "WI"
	default:
		return "MIX"
	}
}

// Classification is the Figure 2 summary: how pages divide into the three
// classes and where the read/write traffic lands.
type Classification struct {
	Pages map[PageClass]int // page counts by class

	Reads        int64 // total page-granularity read accesses
	Writes       int64 // total page-granularity write accesses
	ReadsByClass map[PageClass]int64
	WritesByClas map[PageClass]int64
}

// ReadShare returns the fraction of read accesses landing on pages of
// class c (Fig. 2a's bars).
func (c Classification) ReadShare(cl PageClass) float64 {
	if c.Reads == 0 {
		return 0
	}
	return float64(c.ReadsByClass[cl]) / float64(c.Reads)
}

// WriteShare returns the fraction of write accesses landing on pages of
// class c (Fig. 2b's bars).
func (c Classification) WriteShare(cl PageClass) float64 {
	if c.Writes == 0 {
		return 0
	}
	return float64(c.WritesByClas[cl]) / float64(c.Writes)
}

// ClassifyPages computes the Figure 2 classification of a trace at the
// given page size. threshold is the paper's 0.90: a page whose accesses are
// >90% reads is RI, >90% writes is WI, anything else MIX.
func ClassifyPages(t Trace, pageSize int, threshold float64) Classification {
	type counts struct{ r, w int32 }
	perPage := make(map[int64]*counts)
	touch := func(rec Record) {
		first := rec.Offset / int64(pageSize)
		last := (rec.Offset + int64(rec.Size) - 1) / int64(pageSize)
		for p := first; p <= last; p++ {
			c := perPage[p]
			if c == nil {
				c = &counts{}
				perPage[p] = c
			}
			if rec.Write {
				c.w++
			} else {
				c.r++
			}
		}
	}
	for _, rec := range t {
		touch(rec)
	}
	out := Classification{
		Pages:        make(map[PageClass]int),
		ReadsByClass: make(map[PageClass]int64),
		WritesByClas: make(map[PageClass]int64),
	}
	for _, c := range perPage {
		total := float64(c.r + c.w)
		var cl PageClass
		switch {
		case float64(c.r) > threshold*total:
			cl = ClassRI
		case float64(c.w) > threshold*total:
			cl = ClassWI
		default:
			cl = ClassMIX
		}
		out.Pages[cl]++
		out.Reads += int64(c.r)
		out.Writes += int64(c.w)
		out.ReadsByClass[cl] += int64(c.r)
		out.WritesByClas[cl] += int64(c.w)
	}
	return out
}
