package trace

import (
	"bytes"
	"strings"
	"testing"

	"gcsteering/internal/sim"
)

func sampleTrace() Trace {
	return Trace{
		{Timestamp: 0, Offset: 0, Size: 4096, Write: false},
		{Timestamp: sim.Millisecond, Offset: 8192, Size: 8192, Write: true},
		{Timestamp: 2 * sim.Millisecond, Offset: 4096, Size: 4096, Write: false},
		{Timestamp: 5 * sim.Millisecond, Offset: 1 << 20, Size: 16384, Write: true},
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(sampleTrace())
	if s.Requests != 4 || s.Reads != 2 || s.Writes != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.ReadRatio != 0.5 {
		t.Fatalf("ReadRatio = %v", s.ReadRatio)
	}
	wantAvg := float64(4096+8192+4096+16384) / 4 / 1024
	if s.AvgSizeKB != wantAvg {
		t.Fatalf("AvgSizeKB = %v, want %v", s.AvgSizeKB, wantAvg)
	}
	if s.Duration != 5*sim.Millisecond {
		t.Fatalf("Duration = %v", s.Duration)
	}
	if s.MaxOffset != 1<<20+16384 {
		t.Fatalf("MaxOffset = %d", s.MaxOffset)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(nil)
	if s.Requests != 0 || s.ReadRatio != 0 || s.AvgSizeKB != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(sampleTrace()); err != nil {
		t.Fatal(err)
	}
	bad := Trace{{Timestamp: 5}, {Timestamp: 3}}
	if err := Validate(bad); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
	bad = Trace{{Timestamp: 0, Offset: -1, Size: 1}}
	if err := Validate(bad); err == nil {
		t.Fatal("negative offset accepted")
	}
	bad = Trace{{Timestamp: 0, Offset: 0, Size: 0}}
	if err := Validate(bad); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestClampWrapsOffsets(t *testing.T) {
	tr := Trace{
		{Offset: 10 << 20, Size: 4096},
		{Offset: (1 << 20) - 1024, Size: 8192}, // straddles the capacity end
	}
	Clamp(tr, 1<<20)
	for i, r := range tr {
		if r.Offset < 0 || r.Offset+int64(r.Size) > 1<<20 {
			t.Fatalf("record %d not clamped: %+v", i, r)
		}
	}
}

func TestClampOversizeRequest(t *testing.T) {
	tr := Trace{{Offset: 0, Size: 1 << 21}}
	Clamp(tr, 1<<20)
	if tr[0].Size != 1<<20 {
		t.Fatalf("oversize request not truncated: %d", tr[0].Size)
	}
}

func TestPageView(t *testing.T) {
	r := Record{Offset: 4096, Size: 4096}
	p, n := r.PageView(4096)
	if p != 1 || n != 1 {
		t.Fatalf("PageView = %d,%d", p, n)
	}
	r = Record{Offset: 4095, Size: 2}
	p, n = r.PageView(4096)
	if p != 0 || n != 2 {
		t.Fatalf("straddling PageView = %d,%d", p, n)
	}
	r = Record{Offset: 0, Size: 1}
	p, n = r.PageView(4096)
	if p != 0 || n != 1 {
		t.Fatalf("tiny PageView = %d,%d", p, n)
	}
}

func TestMSRRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteMSR(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseMSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost records: %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Offset != orig[i].Offset || got[i].Size != orig[i].Size || got[i].Write != orig[i].Write {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], orig[i])
		}
		// FILETIME has 100ns resolution.
		if d := got[i].Timestamp - orig[i].Timestamp; d < -100 || d > 100 {
			t.Fatalf("record %d timestamp drift %v", i, d)
		}
	}
}

func TestParseMSRRealisticLine(t *testing.T) {
	in := "128166372003061629,hm,0,Read,383496192,32768,413\n" +
		"128166372016863437,hm,0,Write,2822144,4096,1128\n"
	tr, err := ParseMSR(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("parsed %d records", len(tr))
	}
	if tr[0].Timestamp != 0 {
		t.Fatalf("first timestamp not rebased: %v", tr[0].Timestamp)
	}
	if tr[0].Write || !tr[1].Write {
		t.Fatal("types wrong")
	}
	if tr[0].Offset != 383496192 || tr[0].Size != 32768 {
		t.Fatalf("fields wrong: %+v", tr[0])
	}
	// 13801808 ticks of 100ns = 1.3801808s
	if tr[1].Timestamp != sim.Time(13801808)*100 {
		t.Fatalf("second timestamp %v", tr[1].Timestamp)
	}
}

func TestParseMSRSkipsCommentsAndBlank(t *testing.T) {
	in := "# header\n\n1,h,0,Read,0,4096,0\n"
	tr, err := ParseMSR(strings.NewReader(in))
	if err != nil || len(tr) != 1 {
		t.Fatalf("tr=%v err=%v", tr, err)
	}
}

func TestParseMSRErrors(t *testing.T) {
	for _, in := range []string{
		"1,h,0\n",               // too few fields
		"x,h,0,Read,0,4096,0\n", // bad timestamp
		"1,h,0,Frob,0,4096,0\n", // bad type
		"1,h,0,Read,x,4096,0\n", // bad offset
		"1,h,0,Read,0,x,0\n",    // bad size
	} {
		if _, err := ParseMSR(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestSPCRoundTrip(t *testing.T) {
	orig := Trace{
		{Timestamp: 0, Offset: 0, Size: 4096, Write: false},
		{Timestamp: sim.Second / 2, Offset: 512 * 100, Size: 1024, Write: true},
	}
	var buf bytes.Buffer
	if err := WriteSPC(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSPC(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d", len(got))
	}
	for i := range orig {
		if got[i].Offset != orig[i].Offset || got[i].Size != orig[i].Size || got[i].Write != orig[i].Write {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], orig[i])
		}
	}
}

func TestParseSPCRealisticLine(t *testing.T) {
	in := "1,303567,3072,w,0.026214\n2,1204048,512,r,0.126147\n"
	tr, err := ParseSPC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 2 {
		t.Fatalf("parsed %d", len(tr))
	}
	if !tr[0].Write || tr[1].Write {
		t.Fatal("opcodes wrong")
	}
	// Distinct ASUs must not collide in offset space.
	if tr[0].Offset/(64<<30) == tr[1].Offset/(64<<30) {
		t.Fatal("ASU windows collide")
	}
}

func TestParseSPCErrors(t *testing.T) {
	for _, in := range []string{
		"1,2,3\n",         // too few fields
		"x,1,512,r,0.1\n", // bad asu
		"1,x,512,r,0.1\n", // bad lba
		"1,1,x,r,0.1\n",   // bad size
		"1,1,512,z,0.1\n", // bad opcode
		"1,1,512,r,x\n",   // bad timestamp
	} {
		if _, err := ParseSPC(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestClassifyPages(t *testing.T) {
	// Page 0: 10 reads (RI). Page 1: 10 writes (WI). Page 2: 5+5 (MIX).
	var tr Trace
	for i := 0; i < 10; i++ {
		tr = append(tr, Record{Offset: 0, Size: 4096, Write: false})
		tr = append(tr, Record{Offset: 4096, Size: 4096, Write: true})
	}
	for i := 0; i < 5; i++ {
		tr = append(tr, Record{Offset: 8192, Size: 4096, Write: false})
		tr = append(tr, Record{Offset: 8192, Size: 4096, Write: true})
	}
	c := ClassifyPages(tr, 4096, 0.9)
	if c.Pages[ClassRI] != 1 || c.Pages[ClassWI] != 1 || c.Pages[ClassMIX] != 1 {
		t.Fatalf("page classes: %+v", c.Pages)
	}
	if got := c.ReadShare(ClassRI); got != 10.0/15.0 {
		t.Fatalf("ReadShare(RI) = %v", got)
	}
	if got := c.WriteShare(ClassWI); got != 10.0/15.0 {
		t.Fatalf("WriteShare(WI) = %v", got)
	}
	if ClassRI.String() != "RI" || ClassWI.String() != "WI" || ClassMIX.String() != "MIX" {
		t.Fatal("class names wrong")
	}
}

func TestClassifyMultiPageRecord(t *testing.T) {
	tr := Trace{{Offset: 0, Size: 8192, Write: false}} // touches pages 0 and 1
	c := ClassifyPages(tr, 4096, 0.9)
	if c.Pages[ClassRI] != 2 || c.Reads != 2 {
		t.Fatalf("classification: %+v", c)
	}
}
