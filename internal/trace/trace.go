// Package trace defines the block-I/O trace model used throughout the
// repository and the parsers/writers for the two on-disk formats the paper
// evaluates with: MSR Cambridge CSV (the hm_0/mds_0/prxy_0/rsrch_0/wdev_0
// volumes) and the SPC-1 style format of the UMass Fin1 OLTP trace.
//
// The paper's actual trace files are not redistributable, so the workload
// package synthesizes equivalents matched to the published Table I
// characteristics; this package makes the repository equally able to replay
// the real files when a user supplies them.
package trace

import (
	"fmt"
	"sort"

	"gcsteering/internal/sim"
)

// Record is one I/O request.
type Record struct {
	// Timestamp is the arrival instant relative to trace start.
	Timestamp sim.Time
	// Offset is the byte offset of the request on the volume.
	Offset int64
	// Size is the request length in bytes.
	Size int
	// Write reports the direction (true = write, false = read).
	Write bool
}

// Trace is an ordered sequence of requests.
type Trace []Record

// Stats summarizes a trace with the columns of the paper's Table I plus
// duration and byte totals.
type Stats struct {
	Requests   int
	Reads      int
	Writes     int
	ReadRatio  float64 // fraction of requests that are reads
	AvgSizeKB  float64 // mean request size in KiB
	Duration   sim.Time
	TotalBytes int64
	MaxOffset  int64 // highest byte addressed (offset+size)
}

// ComputeStats scans the trace once.
func ComputeStats(t Trace) Stats {
	var s Stats
	s.Requests = len(t)
	for _, r := range t {
		if r.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		s.TotalBytes += int64(r.Size)
		if end := r.Offset + int64(r.Size); end > s.MaxOffset {
			s.MaxOffset = end
		}
		if r.Timestamp > s.Duration {
			s.Duration = r.Timestamp
		}
	}
	if s.Requests > 0 {
		s.ReadRatio = float64(s.Reads) / float64(s.Requests)
		s.AvgSizeKB = float64(s.TotalBytes) / float64(s.Requests) / 1024
	}
	return s
}

// Validate checks structural sanity: non-negative offsets/sizes and
// non-decreasing timestamps.
func Validate(t Trace) error {
	var prev sim.Time
	for i, r := range t {
		if r.Offset < 0 || r.Size <= 0 {
			return fmt.Errorf("trace: record %d has offset=%d size=%d", i, r.Offset, r.Size)
		}
		if r.Timestamp < prev {
			return fmt.Errorf("trace: record %d timestamp %v before predecessor %v", i, r.Timestamp, prev)
		}
		prev = r.Timestamp
	}
	return nil
}

// SortByTime stably orders records by timestamp (parsers use it because
// real trace files occasionally interleave slightly out of order).
func SortByTime(t Trace) {
	sort.SliceStable(t, func(i, j int) bool { return t[i].Timestamp < t[j].Timestamp })
}

// Clamp rewrites the trace in place so every request fits a volume of
// capacity bytes, wrapping offsets with modulo. Sizes larger than the
// capacity are truncated. Real traces address volumes far larger than the
// simulated array, so replays wrap them onto the simulated address space.
func Clamp(t Trace, capacity int64) {
	if capacity <= 0 {
		panic("trace: non-positive capacity")
	}
	for i := range t {
		r := &t[i]
		if int64(r.Size) > capacity {
			r.Size = int(capacity)
		}
		r.Offset %= capacity
		if r.Offset+int64(r.Size) > capacity {
			r.Offset = capacity - int64(r.Size)
		}
	}
}

// PageView converts a record to page granularity for a given page size:
// the first page index and the page count (covering the byte range).
func (r Record) PageView(pageSize int) (page, pages int) {
	first := r.Offset / int64(pageSize)
	last := (r.Offset + int64(r.Size) - 1) / int64(pageSize)
	return int(first), int(last-first) + 1
}
