package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gcsteering/internal/sim"
)

// SPC-1 style format used by the UMass Financial (Fin1) OLTP traces:
//
//	ASU,LBA,Size,Opcode,Timestamp
//
// where ASU is an application storage unit id, LBA is the block address in
// 512-byte sectors, Size is in bytes, Opcode is r/R/w/W, and Timestamp is
// fractional seconds since trace start.

const sectorSize = 512

// ParseSPC reads an SPC-1 style CSV stream. Requests from all ASUs are
// merged; the ASU id shifts the offset so distinct units do not collide
// (each ASU is given a 64 GiB window, larger than any Fin1 unit).
func ParseSPC(r io.Reader) (Trace, error) {
	const asuWindow = int64(64) << 30
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, ",")
		if len(f) < 5 {
			return nil, fmt.Errorf("trace: spc line %d: %d fields, want >= 5", line, len(f))
		}
		asu, err := strconv.Atoi(strings.TrimSpace(f[0]))
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d asu: %v", line, err)
		}
		lba, err := strconv.ParseInt(strings.TrimSpace(f[1]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d lba: %v", line, err)
		}
		size, err := strconv.Atoi(strings.TrimSpace(f[2]))
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d size: %v", line, err)
		}
		var write bool
		switch strings.TrimSpace(f[3]) {
		case "w", "W":
			write = true
		case "r", "R":
			write = false
		default:
			return nil, fmt.Errorf("trace: spc line %d opcode %q", line, f[3])
		}
		secs, err := strconv.ParseFloat(strings.TrimSpace(f[4]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: spc line %d timestamp: %v", line, err)
		}
		t = append(t, Record{
			Timestamp: sim.Time(secs * float64(sim.Second)),
			Offset:    int64(asu)*asuWindow + lba*sectorSize,
			Size:      size,
			Write:     write,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: spc scan: %w", err)
	}
	SortByTime(t)
	return t, nil
}

// WriteSPC emits the trace in SPC-1 style format under ASU 0.
func WriteSPC(w io.Writer, t Trace) error {
	bw := bufio.NewWriter(w)
	for _, r := range t {
		op := "r"
		if r.Write {
			op = "w"
		}
		if _, err := fmt.Fprintf(bw, "0,%d,%d,%s,%.6f\n",
			r.Offset/sectorSize, r.Size, op, r.Timestamp.Seconds()); err != nil {
			return err
		}
	}
	return bw.Flush()
}
