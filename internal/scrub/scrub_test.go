package scrub

import (
	"testing"

	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// scrubDisk is a Disk with a defect surface: latent and corrupt page sets
// that RepairPages clears, plus configurable GC and backlog signals.
type scrubDisk struct {
	eng      *sim.Engine
	pages    int
	readLat  sim.Time
	writeLat sim.Time

	gcUntil sim.Time // InGC while now < gcUntil
	backlog sim.Time // constant MaxBacklog

	latent  map[int]bool
	corrupt map[int]bool
	reads   int
	writes  int
}

func (f *scrubDisk) Read(now sim.Time, page, pages int, done func(sim.Time)) error {
	f.reads++
	if done != nil {
		f.eng.At(now+f.readLat, done)
	}
	return nil
}

func (f *scrubDisk) Write(now sim.Time, page, pages int, done func(sim.Time)) error {
	f.writes++
	if done != nil {
		f.eng.At(now+f.writeLat, done)
	}
	return nil
}

func (f *scrubDisk) LogicalPages() int              { return f.pages }
func (f *scrubDisk) InGC(t sim.Time) bool           { return t < f.gcUntil }
func (f *scrubDisk) MaxBacklog(t sim.Time) sim.Time { return f.backlog }

func (f *scrubDisk) hit(m map[int]bool, page, pages int) bool {
	for p := page; p < page+pages; p++ {
		if m[p] {
			return true
		}
	}
	return false
}

func (f *scrubDisk) LatentError(page, pages int) bool { return f.hit(f.latent, page, pages) }

func (f *scrubDisk) VerifyError(now sim.Time, page, pages int) bool {
	return f.hit(f.corrupt, page, pages)
}

func (f *scrubDisk) RepairPages(page, pages int) (latent, corrupt int) {
	for p := page; p < page+pages; p++ {
		if f.latent[p] {
			delete(f.latent, p)
			latent++
		}
		if f.corrupt[p] {
			delete(f.corrupt, p)
			corrupt++
		}
	}
	return latent, corrupt
}

func scrubLayout() raid.Layout {
	return raid.Layout{Level: raid.RAID5, Disks: 4, UnitPages: 8, DiskPages: 64}
}

func newScrubArray(t *testing.T, lay raid.Layout) (*sim.Engine, *raid.Array, []*scrubDisk) {
	t.Helper()
	eng := sim.NewEngine()
	fakes := make([]*scrubDisk, lay.Disks)
	disks := make([]raid.Disk, lay.Disks)
	for i := range fakes {
		fakes[i] = &scrubDisk{
			eng: eng, pages: lay.DiskPages, readLat: 10 * sim.Microsecond,
			writeLat: 100 * sim.Microsecond,
			latent:   map[int]bool{}, corrupt: map[int]bool{},
		}
		disks[i] = fakes[i]
	}
	arr, err := raid.NewArray(eng, lay, disks)
	if err != nil {
		t.Fatal(err)
	}
	return eng, arr, fakes
}

func runScrub(t *testing.T, eng *sim.Engine, arr *raid.Array, cfg Config) *Scrubber {
	t.Helper()
	sc, err := New(eng, arr, cfg, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sc.Start(eng.Now())
	eng.Run()
	if sc.Running() {
		t.Fatal("scrub still running after the event queue drained")
	}
	return sc
}

func TestNewValidation(t *testing.T) {
	eng, arr, _ := newScrubArray(t, scrubLayout())
	if _, err := New(eng, arr, Config{MBps: 0}, 4096); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := New(eng, arr, Config{MBps: -5}, 4096); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if _, err := New(eng, arr, Config{MBps: 100}, 0); err == nil {
		t.Fatal("zero page size accepted")
	}
}

func TestCleanPassReadsEverythingRepairsNothing(t *testing.T) {
	lay := scrubLayout()
	eng, arr, _ := newScrubArray(t, lay)
	done := false
	sc, err := New(eng, arr, Config{MBps: 100}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sc.OnComplete = func(sim.Time) { done = true }
	sc.Start(0)
	eng.Run()
	st := sc.Stats()
	if !done {
		t.Fatal("OnComplete never fired")
	}
	if want := int64(lay.Stripes()); st.Passes != 1 || st.StripesScanned != want {
		t.Fatalf("passes=%d scanned=%d, want 1 pass over %d stripes", st.Passes, st.StripesScanned, want)
	}
	if want := int64(lay.Stripes() * lay.UnitPages * lay.Disks); st.PagesRead != want {
		t.Fatalf("pages read = %d, want %d (every unit of every member)", st.PagesRead, want)
	}
	if st.UnitsRepaired != 0 || st.PagesWritten != 0 || st.UnrecoverableUnits != 0 {
		t.Fatalf("clean array produced repairs: %+v", st)
	}
	if st.FinishedAt <= st.StartedAt {
		t.Fatalf("finish %v not after start %v", st.FinishedAt, st.StartedAt)
	}
	if sc.Progress() != 1 {
		t.Fatalf("progress = %v, want 1", sc.Progress())
	}
}

func TestPacingEnforcesBandwidthCap(t *testing.T) {
	lay := scrubLayout()
	eng, arr, _ := newScrubArray(t, lay)
	// 4 KiB pages × 8 pages/unit × 4 members = 128 KiB per stripe; at
	// 64 MB/s that is 2 ms per stripe.
	sc := runScrub(t, eng, arr, Config{MBps: 64})
	perStripe := sim.Time(float64(8*4096*4) / (64e6) * float64(sim.Second))
	if min := sim.Time(lay.Stripes()-1) * perStripe; sc.Stats().FinishedAt < min {
		t.Fatalf("finished at %v, but the cap allows one stripe per %v (min %v)",
			sc.Stats().FinishedAt, perStripe, min)
	}
}

func TestRepairsClearDefectsInPlace(t *testing.T) {
	lay := scrubLayout()
	eng, arr, fakes := newScrubArray(t, lay)
	// Two latent pages on disk 1's unit of stripe 0, one corrupt page on
	// disk 3's unit of stripe 2 — each stripe has one bad member, within
	// RAID5's redundancy.
	fakes[1].latent[0] = true
	fakes[1].latent[3] = true
	fakes[3].corrupt[lay.UnitPage(2)+1] = true
	sc := runScrub(t, eng, arr, Config{MBps: 100})
	st := sc.Stats()
	if st.UnitsRepaired != 2 {
		t.Fatalf("units repaired = %d, want 2", st.UnitsRepaired)
	}
	if st.LatentPagesRepaired != 2 || st.CorruptPagesRepaired != 1 {
		t.Fatalf("repaired latent=%d corrupt=%d, want 2 and 1",
			st.LatentPagesRepaired, st.CorruptPagesRepaired)
	}
	if want := int64(2 * lay.UnitPages); st.PagesWritten != want {
		t.Fatalf("pages written = %d, want %d (whole units rewritten)", st.PagesWritten, want)
	}
	if len(fakes[1].latent) != 0 || len(fakes[3].corrupt) != 0 {
		t.Fatal("defects survived the repair")
	}
	if fakes[1].writes == 0 || fakes[3].writes == 0 {
		t.Fatal("repairs did not reach the media")
	}
}

func TestUnitsBeyondRedundancyAreLeftAlone(t *testing.T) {
	lay := scrubLayout()
	eng, arr, fakes := newScrubArray(t, lay)
	// Two bad members on the same RAID5 stripe exceed the single-parity
	// budget: both are counted unrecoverable and neither is rewritten.
	fakes[0].latent[0] = true
	fakes[2].latent[0] = true
	sc := runScrub(t, eng, arr, Config{MBps: 100})
	st := sc.Stats()
	if st.UnrecoverableUnits != 2 {
		t.Fatalf("unrecoverable units = %d, want 2", st.UnrecoverableUnits)
	}
	if st.UnitsRepaired != 0 || st.PagesWritten != 0 {
		t.Fatalf("over-budget stripe was rewritten: %+v", st)
	}
	if !fakes[0].latent[0] || !fakes[2].latent[0] {
		t.Fatal("unrecoverable defects were cleared")
	}
}

func TestGCBackoffDefersThenProceeds(t *testing.T) {
	lay := scrubLayout()
	eng, arr, fakes := newScrubArray(t, lay)
	// Member 2 is mid-GC for the whole run, so every stripe backs off
	// MaxGCRetries times and is then scrubbed anyway.
	fakes[2].gcUntil = sim.Time(1 << 62)
	sc := runScrub(t, eng, arr, Config{MBps: 100, GCBackoff: 100 * sim.Microsecond, MaxGCRetries: 2})
	st := sc.Stats()
	if want := int64(lay.Stripes() * 2); st.GCBackoffs != want {
		t.Fatalf("GC backoffs = %d, want %d (2 bounded retries per stripe)", st.GCBackoffs, want)
	}
	if want := int64(lay.Stripes()); st.StripesScanned != want {
		t.Fatalf("scanned %d stripes, want %d — backoff must not skip stripes", st.StripesScanned, want)
	}
}

func TestGCBackoffWaitsOutShortGC(t *testing.T) {
	eng, arr, fakes := newScrubArray(t, scrubLayout())
	// GC ends quickly: the first stripe defers at least once, then the rest
	// of the pass sees an idle array and no further backoffs accumulate
	// beyond the GC window.
	fakes[1].gcUntil = 300 * sim.Microsecond
	sc := runScrub(t, eng, arr, Config{MBps: 100, GCBackoff: 200 * sim.Microsecond, MaxGCRetries: 5})
	st := sc.Stats()
	if st.GCBackoffs == 0 {
		t.Fatal("no backoff despite a member mid-GC at start")
	}
	if st.GCBackoffs >= 5 {
		t.Fatalf("GC backoffs = %d; the retry should have found GC over", st.GCBackoffs)
	}
}

func TestYieldsToForegroundLoad(t *testing.T) {
	lay := scrubLayout()
	eng, arr, fakes := newScrubArray(t, lay)
	// Member 0 reports a permanent 10 ms backlog: every stripe yields the
	// bounded number of times, then proceeds.
	fakes[0].backlog = 10 * sim.Millisecond
	sc := runScrub(t, eng, arr, Config{
		MBps: 100, YieldBacklog: 2 * sim.Millisecond,
		YieldDelay: sim.Millisecond, MaxYields: 3,
	})
	st := sc.Stats()
	if want := int64(lay.Stripes() * 3); st.Yields != want {
		t.Fatalf("yields = %d, want %d (3 bounded yields per stripe)", st.Yields, want)
	}
	if want := int64(lay.Stripes()); st.StripesScanned != want {
		t.Fatalf("scanned %d stripes, want %d — yielding must not skip stripes", st.StripesScanned, want)
	}
}

func TestMultiplePasses(t *testing.T) {
	lay := scrubLayout()
	eng, arr, fakes := newScrubArray(t, lay)
	fakes[1].latent[0] = true
	sc := runScrub(t, eng, arr, Config{MBps: 100, Passes: 3})
	st := sc.Stats()
	if st.Passes != 3 {
		t.Fatalf("passes = %d, want 3", st.Passes)
	}
	if want := int64(3 * lay.Stripes()); st.StripesScanned != want {
		t.Fatalf("scanned %d stripes, want %d", st.StripesScanned, want)
	}
	// The defect is repaired on pass one; later passes find a clean array.
	if st.UnitsRepaired != 1 {
		t.Fatalf("units repaired = %d, want exactly 1 across all passes", st.UnitsRepaired)
	}
}

func TestStartIsIdempotentWhileRunning(t *testing.T) {
	eng, arr, _ := newScrubArray(t, scrubLayout())
	sc, err := New(eng, arr, Config{MBps: 100}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	sc.Start(0)
	sc.Start(0) // second Start must not double-schedule the walk
	eng.Run()
	lay := scrubLayout()
	if want := int64(lay.Stripes()); sc.Stats().StripesScanned != want {
		t.Fatalf("scanned %d stripes, want %d — double Start double-walked", sc.Stats().StripesScanned, want)
	}
}
