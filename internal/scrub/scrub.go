// Package scrub implements patrol scrubbing for the simulated array: a
// bandwidth-capped background walker (the pacing pattern of
// internal/rebuild) that reads every stripe unit on every surviving
// member, verifies it against the persistent defect state (latent sector
// errors and silent corruption from internal/fault), and repairs bad units
// in place from RAID redundancy — rewriting them and clearing the defect —
// before a rebuild can trip over them.
//
// The scrubber is a polite citizen of the array: a stripe whose members
// are mid-GC is retried with exponential backoff (bounded, then scrubbed
// anyway), and a stripe is deferred while foreground load has the channels
// backlogged (bounded yields per stripe). Passes are finite so a run
// always drains; everything is driven by the simulation engine, keeping
// scrubbed runs exactly as reproducible as unscrubbed ones.
package scrub

import (
	"fmt"

	"gcsteering/internal/obs"
	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// must panics on an I/O error from a member disk: scrub ranges come from
// the validated layout, so an error here is an internal invariant
// violation, not bad input.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// media is the per-disk defect surface the scrubber probes and repairs.
// *ssd.Device implements it (delegating to a scrub-capable fault hook); a
// disk that does not is treated as defect-free.
type media interface {
	LatentError(page, pages int) bool
	VerifyError(now sim.Time, page, pages int) bool
	RepairPages(page, pages int) (latent, corrupt int)
}

// backlogged is implemented by disks that can report their worst
// per-channel backlog — the scrubber's load signal for yielding.
type backlogged interface {
	MaxBacklog(now sim.Time) sim.Time
}

// Config tunes one scrubber. Only MBps is required; zero values elsewhere
// pick the defaults noted on each field.
type Config struct {
	// MBps caps the scrubber's array-wide read bandwidth: one stripe
	// (unit bytes × member count) is walked per pacing interval.
	MBps float64
	// Passes is the number of full-array patrol passes (<= 0 means 1).
	// Passes are finite so the event queue always drains.
	Passes int
	// GCBackoff is the first retry delay when a stripe's member is mid-GC;
	// it doubles per retry (default 500 µs).
	GCBackoff sim.Time
	// MaxGCRetries bounds GC backoffs per stripe before scrubbing anyway
	// (default 3).
	MaxGCRetries int
	// YieldBacklog is the per-channel backlog beyond which the scrubber
	// yields to foreground load (default 2 ms).
	YieldBacklog sim.Time
	// YieldDelay is how long one yield defers the stripe (default 2 ms).
	YieldDelay sim.Time
	// MaxYields bounds yields per stripe (default 4).
	MaxYields int
}

// withDefaults fills the zero-valued tunables.
func (c Config) withDefaults() Config {
	if c.Passes <= 0 {
		c.Passes = 1
	}
	if c.GCBackoff <= 0 {
		c.GCBackoff = 500 * sim.Microsecond
	}
	if c.MaxGCRetries <= 0 {
		c.MaxGCRetries = 3
	}
	if c.YieldBacklog <= 0 {
		c.YieldBacklog = 2 * sim.Millisecond
	}
	if c.YieldDelay <= 0 {
		c.YieldDelay = 2 * sim.Millisecond
	}
	if c.MaxYields <= 0 {
		c.MaxYields = 4
	}
	return c
}

// Stats describes a scrub run.
type Stats struct {
	Passes               int64 // completed patrol passes
	StripesScanned       int64
	UnitsRepaired        int64 // stripe units rewritten in place
	LatentPagesRepaired  int64 // persistent latent sector errors cleared
	CorruptPagesRepaired int64 // silently corrupted pages cleared
	UnrecoverableUnits   int64 // bad units beyond the surviving redundancy
	GCBackoffs           int64 // stripe retries because a member was mid-GC
	Yields               int64 // stripe deferrals to foreground load
	PressureSheds        int64 // stripe deferrals to admission-control pressure
	PagesRead            int64
	PagesWritten         int64
	StartedAt            sim.Time
	FinishedAt           sim.Time
}

// Scrubber drives the patrol scrub of one array.
type Scrubber struct {
	eng *sim.Engine
	arr *raid.Array
	cfg Config
	// interval is the pacing gap between stripe scans enforcing the
	// bandwidth cap.
	interval sim.Time

	stripes   int
	nextSt    int
	pass      int
	passStart sim.Time
	gcRetries int // backoffs spent on the current stripe
	yields    int // yields spent on the current stripe
	running   bool
	stats     Stats

	// OnComplete, when non-nil, fires once after the final pass finishes.
	OnComplete func(now sim.Time)

	// Pressure, when non-nil, reports that admission control is nearly full;
	// the scrubber defers stripes (by YieldDelay, unbounded) while it holds,
	// shedding background load before the array rejects user I/O. The
	// deferral always terminates: pressure clears as the foreground drains.
	Pressure func() bool

	// Trace, when non-nil, receives scrub lifecycle events (pass start,
	// per-unit repairs, busy/yield deferrals, pass done).
	Trace *obs.Tracer
}

// New prepares a scrubber for the array at the given bandwidth cap.
func New(eng *sim.Engine, arr *raid.Array, cfg Config, pageSize int) (*Scrubber, error) {
	if cfg.MBps <= 0 {
		return nil, fmt.Errorf("scrub: bandwidth %v must be positive", cfg.MBps)
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("scrub: page size %d must be positive", pageSize)
	}
	cfg = cfg.withDefaults()
	lay := arr.Layout()
	stripeBytes := float64(lay.UnitPages * pageSize * lay.Disks)
	interval := sim.Time(stripeBytes / (cfg.MBps * 1e6) * float64(sim.Second))
	return &Scrubber{
		eng:      eng,
		arr:      arr,
		cfg:      cfg,
		interval: interval,
		stripes:  lay.Stripes(),
	}, nil
}

// Stats returns a snapshot of the run statistics.
func (s *Scrubber) Stats() Stats { return s.stats }

// Running reports whether the scrub is in flight.
func (s *Scrubber) Running() bool { return s.running }

// Progress returns the fraction of the current pass completed.
func (s *Scrubber) Progress() float64 {
	if s.stripes == 0 {
		return 1
	}
	return float64(s.nextSt) / float64(s.stripes)
}

// Start begins the patrol scrub. Call once, before running the engine.
func (s *Scrubber) Start(now sim.Time) {
	if s.running {
		return
	}
	s.running = true
	s.stats.StartedAt = now
	s.passStart = now
	if s.stripes == 0 {
		s.finish(now)
		return
	}
	if s.Trace.Enabled() {
		s.Trace.Emit(now, obs.Event{Kind: obs.KScrubStart, Dev: -1, Page: -1,
			Aux: int64(s.pass), Aux2: int64(s.stripes)})
	}
	s.scrubStripe(now)
}

// finish closes the run.
func (s *Scrubber) finish(now sim.Time) {
	s.running = false
	s.stats.FinishedAt = now
	if s.OnComplete != nil {
		s.OnComplete(now)
	}
}

// badUnit probes (side-effect free) whether disk d's unit [base,
// base+pages) holds a persistent defect the scrubber should repair.
func badUnit(now sim.Time, d raid.Disk, base, pages int) bool {
	m, ok := d.(media)
	return ok && (m.LatentError(base, pages) || m.VerifyError(now, base, pages))
}

// scrubStripe walks one stripe: it reads the unit from every surviving
// member (paced by the bandwidth cap), and rewrites any unit whose defects
// the surviving redundancy can cover. Deferrals — GC backoff and load
// yield — happen before the stripe is charged.
func (s *Scrubber) scrubStripe(now sim.Time) {
	if s.nextSt >= s.stripes {
		// Pass complete.
		s.stats.Passes++
		s.pass++
		if s.Trace.Enabled() {
			s.Trace.Emit(now, obs.Event{Kind: obs.KScrubDone, Dev: -1, Page: -1,
				Aux: s.stats.UnitsRepaired, Aux2: int64(now - s.passStart)})
		}
		if s.pass >= s.cfg.Passes {
			s.finish(now)
			return
		}
		s.nextSt = 0
		s.passStart = now
		if s.Trace.Enabled() {
			s.Trace.Emit(now, obs.Event{Kind: obs.KScrubStart, Dev: -1, Page: -1,
				Aux: int64(s.pass), Aux2: int64(s.stripes)})
		}
	}
	lay := s.arr.Layout()
	st := s.nextSt
	base := lay.UnitPage(st)
	disks := s.arr.Disks()

	// Shed to admission-control pressure first: when the array is close to
	// rejecting user I/O, background reads are the load to drop.
	if s.Pressure != nil && s.Pressure() {
		s.stats.PressureSheds++
		if s.Trace.Enabled() {
			s.Trace.Emit(now, obs.Event{Kind: obs.KShed, Dev: -1,
				Page: int64(base), Aux: 2})
		}
		s.eng.At(now+s.cfg.YieldDelay, s.scrubStripe)
		return
	}

	// Retry-and-backoff while a member is collecting: scrub reads would
	// queue behind GC. Bounded — after MaxGCRetries the stripe is scrubbed
	// anyway so a GC-heavy phase cannot stall the patrol forever.
	if s.gcRetries < s.cfg.MaxGCRetries {
		for d := 0; d < lay.Disks; d++ {
			if s.arr.Alive(d) && disks[d].InGC(now) {
				backoff := s.cfg.GCBackoff << s.gcRetries
				s.gcRetries++
				s.stats.GCBackoffs++
				if s.Trace.Enabled() {
					s.Trace.Emit(now, obs.Event{Kind: obs.KScrubBusy, Dev: int32(d),
						Page: int64(base), Aux: int64(s.gcRetries), Aux2: int64(backoff)})
				}
				s.eng.At(now+backoff, s.scrubStripe)
				return
			}
		}
	}
	// Graceful yield under load: when a member's channels are backlogged
	// with foreground work, the stripe is deferred (bounded per stripe).
	if s.yields < s.cfg.MaxYields {
		worst, worstDev := sim.Time(0), -1
		for d := 0; d < lay.Disks; d++ {
			if !s.arr.Alive(d) {
				continue
			}
			if b, ok := disks[d].(backlogged); ok {
				if bl := b.MaxBacklog(now); bl > worst {
					worst, worstDev = bl, d
				}
			}
		}
		if worst > s.cfg.YieldBacklog {
			s.yields++
			s.stats.Yields++
			if s.Trace.Enabled() {
				s.Trace.Emit(now, obs.Event{Kind: obs.KScrubYield, Dev: int32(worstDev),
					Page: int64(base), Aux2: int64(worst)})
			}
			s.eng.At(now+s.cfg.YieldDelay, s.scrubStripe)
			return
		}
	}
	s.gcRetries, s.yields = 0, 0
	s.nextSt++
	s.stats.StripesScanned++

	var sources, bad []int
	for d := 0; d < lay.Disks; d++ {
		if !s.arr.Alive(d) {
			continue
		}
		sources = append(sources, d)
		if badUnit(now, disks[d], base, lay.UnitPages) {
			bad = append(bad, d)
		}
	}
	earliestNext := now + s.interval
	finish := func(t sim.Time) {
		next := t
		if earliestNext > next {
			next = earliestNext
		}
		s.eng.At(next, s.scrubStripe)
	}
	if len(sources) == 0 {
		finish(now)
		return
	}
	remain := len(sources)
	onRead := func(t sim.Time) {
		remain--
		if remain > 0 {
			return
		}
		s.repair(t, st, bad, finish)
	}
	for _, d := range sources {
		s.stats.PagesRead += int64(lay.UnitPages)
		must(disks[d].Read(now, base, lay.UnitPages, onRead))
	}
}

// repair rewrites the bad units of stripe st in place from redundancy —
// when the surviving redundancy can still cover them all — and clears the
// media defects. Beyond the redundancy budget the units are counted
// unrecoverable and left alone.
func (s *Scrubber) repair(now sim.Time, st int, bad []int, done func(sim.Time)) {
	if len(bad) == 0 {
		done(now)
		return
	}
	if len(bad) > s.arr.SpareRedundancy() {
		s.stats.UnrecoverableUnits += int64(len(bad))
		done(now)
		return
	}
	lay := s.arr.Layout()
	base := lay.UnitPage(st)
	disks := s.arr.Disks()
	remain := len(bad)
	cb := func(t sim.Time) {
		remain--
		if remain == 0 {
			done(t)
		}
	}
	for _, d := range bad {
		lat, cor := disks[d].(media).RepairPages(base, lay.UnitPages)
		s.stats.UnitsRepaired++
		s.stats.LatentPagesRepaired += int64(lat)
		s.stats.CorruptPagesRepaired += int64(cor)
		s.stats.PagesWritten += int64(lay.UnitPages)
		if s.Trace.Enabled() {
			s.Trace.Emit(now, obs.Event{Kind: obs.KScrubRepair, Dev: int32(d),
				Page: int64(base), Pages: int32(lay.UnitPages),
				Aux: int64(lat), Aux2: int64(cor)})
		}
		must(disks[d].Write(now, base, lay.UnitPages, cb))
	}
}
