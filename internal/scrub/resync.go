package scrub

import (
	"fmt"

	"gcsteering/internal/obs"
	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// Resyncer is the post-crash parity resync: the mount-time walker that
// re-establishes stripe consistency after a power loss. It reuses the
// scrubber's bandwidth pacing but differs in scope and verdict:
//
//   - With the intent journal on, it walks only the stripes the journal
//     held open at the cut — a bounded pass that finishes before the array
//     has to serve (or quickly after).
//   - With the journal off, it must walk every stripe (the full-scrub
//     window of vulnerability the journal closes).
//
// A stripe is inconsistent when the crash left its legs disagreeing:
// either a page program was torn mid-flight (the unit now fails its
// CRC32-C — VerifyError) or some legs persisted while others never
// started (detectable only by recomputing parity, which the caller models
// as ground-truth set membership). Repair rewrites the stripe's parity
// from the surviving data and clears the torn-page defects; unlike patrol
// scrub there is no redundancy budget to respect, because recomputing
// parity from data needs no redundancy at all.
type Resyncer struct {
	eng *sim.Engine
	arr *raid.Array
	// interval is the pacing gap between stripe walks (same bandwidth
	// model as the patrol scrubber).
	interval sim.Time

	stripes []int // walk order
	next    int
	running bool
	stats   ResyncStats

	// Inconsistent, when non-nil, reports the ground truth for stale-leg
	// stripes — writes the cut left half-applied without tearing any page,
	// invisible to per-unit CRC checks but caught by parity recompute.
	Inconsistent func(st int) bool

	// OnComplete, when non-nil, fires once when the walk finishes.
	OnComplete func(now sim.Time)

	// Trace, when non-nil, receives per-stripe resync progress events.
	Trace *obs.Tracer
}

// ResyncStats describes one resync run.
type ResyncStats struct {
	StripesWalked int64
	// Inconsistent counts stripes found torn or half-written and repaired.
	Inconsistent int64
	// TornUnitsRepaired counts member units whose CRC failed (torn page
	// programs) and were rewritten.
	TornUnitsRepaired int64
	PagesRead         int64
	PagesWritten      int64
	StartedAt         sim.Time
	FinishedAt        sim.Time
}

// NewResync prepares a resync walker over the given stripes (mount-time
// dirty list, or every stripe for the journal-off full walk). A nil or
// empty stripe list completes immediately on Start.
func NewResync(eng *sim.Engine, arr *raid.Array, mbps float64, pageSize int, stripes []int) (*Resyncer, error) {
	if mbps <= 0 {
		return nil, fmt.Errorf("resync: bandwidth %v must be positive", mbps)
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("resync: page size %d must be positive", pageSize)
	}
	lay := arr.Layout()
	stripeBytes := float64(lay.UnitPages * pageSize * lay.Disks)
	interval := sim.Time(stripeBytes / (mbps * 1e6) * float64(sim.Second))
	return &Resyncer{
		eng:      eng,
		arr:      arr,
		interval: interval,
		stripes:  stripes,
	}, nil
}

// Stats returns a snapshot of the run statistics.
func (r *Resyncer) Stats() ResyncStats { return r.stats }

// Running reports whether the resync is in flight.
func (r *Resyncer) Running() bool { return r.running }

// Start begins the walk. Call once, before running the engine.
func (r *Resyncer) Start(now sim.Time) {
	if r.running {
		return
	}
	r.running = true
	r.stats.StartedAt = now
	r.step(now)
}

func (r *Resyncer) finish(now sim.Time) {
	r.running = false
	r.stats.FinishedAt = now
	if r.Trace.Enabled() {
		r.Trace.Emit(now, obs.Event{Kind: obs.KResyncDone, Dev: -1, Page: -1,
			Aux: r.stats.StripesWalked, Aux2: r.stats.Inconsistent})
	}
	if r.OnComplete != nil {
		r.OnComplete(now)
	}
}

// step walks one stripe: read the unit from every surviving member (paced
// by the bandwidth cap), decide consistency, and rewrite parity if the
// crash left the stripe torn or half-written.
func (r *Resyncer) step(now sim.Time) {
	if r.next >= len(r.stripes) {
		r.finish(now)
		return
	}
	lay := r.arr.Layout()
	st := r.stripes[r.next]
	r.next++
	r.stats.StripesWalked++
	base := lay.UnitPage(st)
	disks := r.arr.Disks()

	// Torn members: units whose pages were mid-program at the cut now fail
	// their checksum. Probed before the reads (side-effect free), so the
	// repair can target exactly these units.
	var torn []int
	var sources []int
	for d := 0; d < lay.Disks; d++ {
		if !r.arr.Alive(d) {
			continue
		}
		sources = append(sources, d)
		if m, ok := disks[d].(media); ok && m.VerifyError(now, base, lay.UnitPages) {
			torn = append(torn, d)
		}
	}
	dirty := len(torn) > 0 || (r.Inconsistent != nil && r.Inconsistent(st))

	earliestNext := now + r.interval
	finish := func(t sim.Time) {
		next := t
		if earliestNext > next {
			next = earliestNext
		}
		r.eng.At(next, r.step)
	}
	if r.Trace.Enabled() {
		found := int64(0)
		if dirty {
			found = 1
		}
		r.Trace.Emit(now, obs.Event{Kind: obs.KResyncStripe, Dev: -1,
			Page: int64(base), Pages: int32(lay.UnitPages), Aux: int64(st), Aux2: found})
	}
	if len(sources) == 0 {
		finish(now)
		return
	}
	remain := len(sources)
	onRead := func(t sim.Time) {
		remain--
		if remain > 0 {
			return
		}
		if !dirty {
			finish(t)
			return
		}
		r.repair(t, st, torn, finish)
	}
	for _, d := range sources {
		r.stats.PagesRead += int64(lay.UnitPages)
		must(disks[d].Read(now, base, lay.UnitPages, onRead))
	}
}

// repair re-establishes the stripe: torn units are rewritten in place
// (clearing the CRC defects), and the parity units are recomputed from the
// data — the write-hole closure itself.
func (r *Resyncer) repair(now sim.Time, st int, torn []int, done func(sim.Time)) {
	r.stats.Inconsistent++
	lay := r.arr.Layout()
	base := lay.UnitPage(st)
	disks := r.arr.Disks()

	// Writes: every torn unit, plus the surviving parity units (always
	// rewritten — a half-applied write means parity no longer matches the
	// data even when every page has a valid CRC).
	targets := torn[:len(torn):len(torn)]
	pd, qd := lay.ParityDisk(st), lay.QDisk(st)
	for _, d := range []int{pd, qd} {
		if d < 0 || !r.arr.Alive(d) {
			continue
		}
		seen := false
		for _, t := range targets {
			if t == d {
				seen = true
				break
			}
		}
		if !seen {
			targets = append(targets, d)
		}
	}
	if len(targets) == 0 {
		done(now)
		return
	}
	remain := len(targets)
	cb := func(t sim.Time) {
		remain--
		if remain == 0 {
			done(t)
		}
	}
	for _, d := range targets {
		if m, ok := disks[d].(media); ok {
			m.RepairPages(base, lay.UnitPages)
		}
		r.stats.PagesWritten += int64(lay.UnitPages)
		must(disks[d].Write(now, base, lay.UnitPages, cb))
	}
	r.stats.TornUnitsRepaired += int64(len(torn))
}
