package rebuild

import (
	"testing"

	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// fakeDisk completes ops after fixed latencies and logs page traffic.
type fakeDisk struct {
	eng      *sim.Engine
	pages    int
	readLat  sim.Time
	writeLat sim.Time
	reads    int
	writes   int
	lastW    int
}

func (f *fakeDisk) Read(now sim.Time, page, pages int, done func(sim.Time)) error {
	f.reads += pages
	if done != nil {
		f.eng.At(now+f.readLat, done)
	}
	return nil
}

func (f *fakeDisk) Write(now sim.Time, page, pages int, done func(sim.Time)) error {
	f.writes += pages
	f.lastW = page
	if done != nil {
		f.eng.At(now+f.writeLat, done)
	}
	return nil
}

func (f *fakeDisk) LogicalPages() int  { return f.pages }
func (f *fakeDisk) InGC(sim.Time) bool { return false }

func fixture(t *testing.T) (*sim.Engine, *raid.Array, []*fakeDisk) {
	t.Helper()
	eng := sim.NewEngine()
	lay := raid.Layout{Level: raid.RAID5, Disks: 5, UnitPages: 16, DiskPages: 160}
	fakes := make([]*fakeDisk, 5)
	disks := make([]raid.Disk, 5)
	for i := range fakes {
		fakes[i] = &fakeDisk{eng: eng, pages: 220, readLat: 50 * sim.Microsecond, writeLat: 500 * sim.Microsecond}
		disks[i] = fakes[i]
	}
	arr, err := raid.NewArray(eng, lay, disks)
	if err != nil {
		t.Fatal(err)
	}
	return eng, arr, fakes
}

func TestNewRequiresDegradedArray(t *testing.T) {
	eng, arr, fakes := fixture(t)
	spare := &SpareSink{Disk: fakes[0]}
	if _, err := New(eng, arr, spare, 10, 4096); err == nil {
		t.Fatal("healthy array accepted")
	}
	arr.FailDisk(2)
	if _, err := New(eng, arr, spare, 0, 4096); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := New(eng, arr, spare, 10, 4096); err != nil {
		t.Fatal(err)
	}
}

func TestSpareRebuildCompletes(t *testing.T) {
	eng, arr, fakes := fixture(t)
	arr.FailDisk(2)
	spare := &fakeDisk{eng: eng, pages: 220, writeLat: 500 * sim.Microsecond}
	rb, err := New(eng, arr, &SpareSink{Disk: spare}, 10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	var completedAt sim.Time
	rb.OnComplete = func(now sim.Time) { completedAt = now }
	rb.Start(0)
	if !rb.Running() {
		t.Fatal("not running after Start")
	}
	eng.Run()
	if rb.Running() {
		t.Fatal("still running after drain")
	}
	if rb.Progress() != 1 {
		t.Fatalf("progress %v", rb.Progress())
	}
	lay := arr.Layout()
	if spare.writes != lay.DiskPages {
		t.Fatalf("spare got %d pages, want %d", spare.writes, lay.DiskPages)
	}
	// Every survivor is read in full; the failed disk is never touched.
	for d, f := range fakes {
		if d == 2 {
			if f.reads != 0 {
				t.Fatal("failed disk was read")
			}
			continue
		}
		if f.reads != lay.DiskPages {
			t.Fatalf("survivor %d read %d pages, want %d", d, f.reads, lay.DiskPages)
		}
	}
	st := rb.Stats()
	if st.UnitsRebuilt != int64(lay.Stripes()) {
		t.Fatalf("units rebuilt %d, want %d", st.UnitsRebuilt, lay.Stripes())
	}
	if completedAt == 0 || st.FinishedAt != completedAt {
		t.Fatal("completion accounting wrong")
	}
}

func TestBandwidthCapPacesRebuild(t *testing.T) {
	eng, arr, _ := fixture(t)
	arr.FailDisk(0)
	spare := &fakeDisk{eng: eng, pages: 220}
	rb, err := New(eng, arr, &SpareSink{Disk: spare}, 10, 4096) // 10 MB/s
	if err != nil {
		t.Fatal(err)
	}
	rb.Start(0)
	eng.Run()
	lay := arr.Layout()
	totalBytes := float64(lay.DiskPages * 4096)
	minDuration := sim.Time(totalBytes / 10e6 * float64(sim.Second))
	got := rb.Stats().FinishedAt - rb.Stats().StartedAt
	if got < minDuration*9/10 {
		t.Fatalf("rebuild took %v, cap demands >= %v", got, minDuration)
	}
	// And it should not be vastly slower than the cap when disks are fast.
	if got > minDuration*2 {
		t.Fatalf("rebuild took %v, expected near the cap %v", got, minDuration)
	}
}

func TestReservedSinkSpreadsAcrossSurvivors(t *testing.T) {
	eng, arr, fakes := fixture(t)
	arr.FailDisk(1)
	var survivors []raid.Disk
	var survFakes []*fakeDisk
	for d, f := range fakes {
		if d != 1 {
			survivors = append(survivors, f)
			survFakes = append(survFakes, f)
		}
	}
	sink, err := NewReservedSink(survivors, 160, 60)
	if err != nil {
		t.Fatal(err)
	}
	if sink.Name() != "Reserved" {
		t.Fatal("name")
	}
	rb, err := New(eng, arr, sink, 10, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rb.Start(0)
	eng.Run()
	// Rebuilt writes must hit every survivor's reserved region (>= 160),
	// roughly evenly. Note each survivor also served rebuild reads.
	lay := arr.Layout()
	wrote := 0
	for i, f := range survFakes {
		// reads hit the data region; writes only the reserved region
		if f.writes == 0 {
			t.Fatalf("survivor %d received no rebuilt units", i)
		}
		if f.lastW < 160 {
			t.Fatalf("survivor %d rebuilt write at %d, below reserved base", i, f.lastW)
		}
		wrote += f.writes
	}
	if wrote != lay.DiskPages {
		t.Fatalf("total rebuilt pages %d, want %d", wrote, lay.DiskPages)
	}
}

func TestReservedSinkValidation(t *testing.T) {
	if _, err := NewReservedSink(nil, 0, 10); err == nil {
		t.Fatal("empty survivors accepted")
	}
	eng := sim.NewEngine()
	d := &fakeDisk{eng: eng, pages: 100}
	if _, err := NewReservedSink([]raid.Disk{d}, 90, 20); err == nil {
		t.Fatal("insufficient reserved space accepted")
	}
}

func TestReservedSinkWrapsWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	d := &fakeDisk{eng: eng, pages: 100}
	sink, err := NewReservedSink([]raid.Disk{d}, 80, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ { // 4 × 8 pages > 20-page region
		sink.WriteUnit(0, 0, 8, nil)
	}
	if d.writes != 32 {
		t.Fatalf("writes %d", d.writes)
	}
	if d.lastW < 80 || d.lastW >= 100 {
		t.Fatalf("wrapped write at %d escaped the region", d.lastW)
	}
}

func TestStartIsIdempotent(t *testing.T) {
	eng, arr, _ := fixture(t)
	arr.FailDisk(3)
	spare := &fakeDisk{eng: eng, pages: 220}
	rb, _ := New(eng, arr, &SpareSink{Disk: spare}, 10, 4096)
	rb.Start(0)
	rb.Start(0) // second call must not double-drive
	eng.Run()
	if rb.Stats().UnitsRebuilt != int64(arr.Layout().Stripes()) {
		t.Fatalf("units %d", rb.Stats().UnitsRebuilt)
	}
}

// TestPaceInterval pins the shared background-copy pacing model: the gap
// between unit transfers must hold the stream exactly at the cap.
func TestPaceInterval(t *testing.T) {
	// 1 MB at 100 MB/s = 10 ms between transfers.
	if got, want := PaceInterval(1_000_000, 100), 10*sim.Millisecond; got != want {
		t.Fatalf("PaceInterval(1MB, 100MB/s) = %v, want %v", got, want)
	}
	// 256 KiB at 10 MB/s (the paper's MD cap) ≈ 26.2 ms.
	got := PaceInterval(256<<10, 10)
	want := sim.Time(float64(256<<10) / 10e6 * float64(sim.Second))
	if got != want {
		t.Fatalf("PaceInterval(256KiB, 10MB/s) = %v, want %v", got, want)
	}
}
