// Package rebuild implements RAID failure recovery for the simulator: the
// stripe-sequential reconstruction process of Linux MD (bandwidth-capped,
// favouring the rebuild as the paper observed), with the two replacement
// targets of the paper's §III-D — a newly added spare SSD, or the reserved
// space of the surviving members written in parallel (GC-Steering's
// parallel reconstruction workflow).
package rebuild

import (
	"fmt"

	"gcsteering/internal/obs"
	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
)

// PaceInterval returns the gap between unit-sized transfers that holds a
// background copy stream to a bandwidth cap: unitBytes at mbps MB/s. It is
// the pacing model of the stripe-sequential rebuild below, shared with the
// cluster layer's re-replication and volume-migration copy jobs so every
// bandwidth-capped background stream in the simulator paces identically.
func PaceInterval(unitBytes int, mbps float64) sim.Time {
	return sim.Time(float64(unitBytes) / (mbps * 1e6) * float64(sim.Second))
}

// must panics on an I/O error from a member disk: rebuild ranges are
// derived from the validated layout and checked sink geometry, so an error
// here is an internal invariant violation, not bad input.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// Sink receives the rebuilt units of the failed disk.
type Sink interface {
	// Name identifies the target ("Spare" or "Reserved").
	Name() string
	// WriteUnit stores pages rebuilt pages whose home is the failed disk's
	// range [page, page+pages).
	WriteUnit(now sim.Time, page, pages int, done func(now sim.Time))
}

// SpareSink writes rebuilt units to a dedicated replacement SSD at their
// home offsets — the traditional workflow, whose write bandwidth bottleneck
// on the single replacement the paper calls out (§II-B).
type SpareSink struct {
	Disk raid.Disk
}

// Name implements Sink.
func (s *SpareSink) Name() string { return "Spare" }

// WriteUnit implements Sink.
func (s *SpareSink) WriteUnit(now sim.Time, page, pages int, done func(sim.Time)) {
	must(s.Disk.Write(now, page, pages, done))
}

// ReservedSink spreads rebuilt units round-robin across the reserved space
// of the surviving members, so reconstruction writes proceed in parallel on
// every survivor instead of serializing on one replacement (§III-D's
// parallel reconstruction workflow).
type ReservedSink struct {
	survivors []raid.Disk
	base      int // first reserved page on each survivor
	cursor    []int
	capacity  int // reserved pages per survivor
	next      int
}

// NewReservedSink builds a sink over the survivors' reserved regions
// ([base, base+capacity) on each).
func NewReservedSink(survivors []raid.Disk, base, capacity int) (*ReservedSink, error) {
	if len(survivors) == 0 {
		return nil, fmt.Errorf("rebuild: no survivors")
	}
	for i, d := range survivors {
		if d.LogicalPages() < base+capacity {
			return nil, fmt.Errorf("rebuild: survivor %d lacks reserved space", i)
		}
	}
	return &ReservedSink{
		survivors: survivors,
		base:      base,
		cursor:    make([]int, len(survivors)),
		capacity:  capacity,
	}, nil
}

// Name implements Sink.
func (s *ReservedSink) Name() string { return "Reserved" }

// WriteUnit implements Sink.
func (s *ReservedSink) WriteUnit(now sim.Time, page, pages int, done func(sim.Time)) {
	// Pick the next survivor with room; wrap the cursor when the region
	// fills (older rebuilt data would be migrated off to a real spare in a
	// full system; for the simulation the region is sized to fit).
	for i := 0; i < len(s.survivors); i++ {
		d := s.next
		s.next = (s.next + 1) % len(s.survivors)
		if s.cursor[d]+pages <= s.capacity {
			off := s.base + s.cursor[d]
			s.cursor[d] += pages
			must(s.survivors[d].Write(now, off, pages, done))
			return
		}
	}
	// All regions full: wrap around (overwrite the oldest rebuilt data).
	d := s.next
	s.next = (s.next + 1) % len(s.survivors)
	s.cursor[d] = pages
	must(s.survivors[d].Write(now, s.base, pages, done))
}

// Stats describes a reconstruction run.
type Stats struct {
	UnitsRebuilt int64
	PagesRead    int64
	PagesWritten int64
	StartedAt    sim.Time
	FinishedAt   sim.Time
	// UREs counts survivor reads that hit an unrecoverable read error
	// during the rebuild; UREsRepaired the subset covered by spare
	// redundancy (RAID6 rebuilding one disk still has a parity to spare).
	// DataLossUnits counts units whose errors exceeded the remaining
	// redundancy — the survivors were the last copy, so the regenerated
	// unit is garbage (the paper's §III-D window-of-vulnerability risk).
	UREs          int64
	UREsRepaired  int64
	DataLossUnits int64
}

// Rebuilder drives the reconstruction of one failed disk.
type Rebuilder struct {
	eng  *sim.Engine
	arr  *raid.Array
	sink Sink
	// interval is the pacing gap between unit rebuilds enforcing the
	// bandwidth cap.
	interval sim.Time

	failed  int
	stripes int
	nextSt  int
	running bool
	stats   Stats

	// OnComplete, when non-nil, fires once after the last unit is written.
	OnComplete func(now sim.Time)

	// Trace, when non-nil, receives rebuild lifecycle events (start, one
	// event per rebuilt unit, done).
	Trace *obs.Tracer
}

// New prepares a rebuild of the array's failed disk into sink at the given
// bandwidth cap in MB/s (the paper's MD configuration caps at 10 MB/s and
// always runs at the cap).
func New(eng *sim.Engine, arr *raid.Array, sink Sink, bandwidthMBps float64, pageSize int) (*Rebuilder, error) {
	if !arr.Degraded() {
		return nil, fmt.Errorf("rebuild: array is not degraded")
	}
	if bandwidthMBps <= 0 {
		return nil, fmt.Errorf("rebuild: bandwidth %v must be positive", bandwidthMBps)
	}
	lay := arr.Layout()
	interval := PaceInterval(lay.UnitPages*pageSize, bandwidthMBps)
	return &Rebuilder{
		eng:      eng,
		arr:      arr,
		sink:     sink,
		interval: interval,
		failed:   arr.Failed(),
		stripes:  lay.Stripes(),
	}, nil
}

// Stats returns a snapshot of the run statistics.
func (r *Rebuilder) Stats() Stats { return r.stats }

// Progress returns the fraction of stripes rebuilt.
func (r *Rebuilder) Progress() float64 {
	if r.stripes == 0 {
		return 1
	}
	return float64(r.nextSt) / float64(r.stripes)
}

// Running reports whether the rebuild is in flight.
func (r *Rebuilder) Running() bool { return r.running }

// Start begins the stripe-sequential rebuild.
func (r *Rebuilder) Start(now sim.Time) {
	if r.running {
		return
	}
	r.running = true
	r.stats.StartedAt = now
	if r.Trace.Enabled() {
		r.Trace.Emit(now, obs.Event{Kind: obs.KRebuildStart, Dev: int32(r.failed),
			Page: -1, Aux: int64(r.stripes)})
	}
	r.rebuildUnit(now)
}

// rebuildUnit reconstructs the failed disk's unit of stripe r.nextSt: it
// reads the stripe's units from every survivor (directly — rebuild I/O is
// never steered), then writes the regenerated unit to the sink, then
// schedules the next unit no earlier than the pacing interval allows.
// Members that fail mid-rebuild (a second failure the layout tolerates)
// drop out of the survivor reads; latent sector errors on the survivors
// consume spare redundancy, and past the last redundant copy they turn the
// unit into a data-loss event.
func (r *Rebuilder) rebuildUnit(startAt sim.Time) {
	if r.nextSt >= r.stripes {
		r.running = false
		r.stats.FinishedAt = startAt
		if r.Trace.Enabled() {
			r.Trace.Emit(startAt, obs.Event{Kind: obs.KRebuildDone, Dev: int32(r.failed),
				Page: -1, Aux: int64(startAt - r.stats.StartedAt)})
		}
		if r.OnComplete != nil {
			r.OnComplete(startAt)
		}
		return
	}
	lay := r.arr.Layout()
	st := r.nextSt
	r.nextSt++
	base := lay.UnitPage(st)
	disks := r.arr.Disks()

	// Read the stripe's unit from every surviving member.
	var sources []int
	for d := 0; d < lay.Disks; d++ {
		if r.arr.Alive(d) {
			sources = append(sources, d)
		}
	}
	errs := 0
	for _, d := range sources {
		if f, ok := disks[d].(raid.Faulty); ok && f.ReadError(startAt, base, lay.UnitPages) {
			errs++
		}
	}
	if errs > 0 {
		r.stats.UREs += int64(errs)
		if errs <= r.arr.SpareRedundancy() {
			r.stats.UREsRepaired += int64(errs)
		} else {
			r.stats.DataLossUnits++
		}
	}
	remain := len(sources)
	earliestNext := startAt + r.interval
	onRead := func(t sim.Time) {
		remain--
		if remain > 0 {
			return
		}
		// All survivor reads done: write the regenerated unit.
		r.sink.WriteUnit(t, base, lay.UnitPages, func(wt sim.Time) {
			r.stats.UnitsRebuilt++
			r.stats.PagesWritten += int64(lay.UnitPages)
			if r.Trace.Enabled() {
				r.Trace.Emit(wt, obs.Event{Kind: obs.KRebuildUnit, Dev: int32(r.failed),
					Page: int64(base), Pages: int32(lay.UnitPages),
					Aux: r.stats.UnitsRebuilt, Aux2: int64(r.stripes)})
			}
			next := wt
			if earliestNext > next {
				next = earliestNext
			}
			r.eng.At(next, func(nt sim.Time) { r.rebuildUnit(nt) })
		})
	}
	for _, d := range sources {
		r.stats.PagesRead += int64(lay.UnitPages)
		must(disks[d].Read(startAt, base, lay.UnitPages, onRead))
	}
}
