package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the old container/heap implementation, kept here as the
// reference oracle: the concrete eventQueue must pop in exactly the order
// this produced, or the byte-identical determinism contract is broken.
type refHeap []event

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// TestEventQueueMatchesContainerHeap drives the 4-ary queue and the old
// container/heap oracle with identical random schedules — interleaved
// pushes and pops, heavy timestamp collisions to exercise the seq
// tie-break — and requires identical pop order throughout.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		var ref refHeap
		var seq uint64
		ops := 2000
		for i := 0; i < ops; i++ {
			if q.len() != ref.Len() {
				t.Fatalf("trial %d: length diverged: %d vs %d", trial, q.len(), ref.Len())
			}
			// Bias toward pushes so the queues grow, but drain sometimes.
			if q.len() > 0 && rng.Intn(3) == 0 {
				got := q.pop()
				want := heap.Pop(&ref).(event)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("trial %d op %d: pop (at=%d seq=%d), oracle (at=%d seq=%d)",
						trial, i, got.at, got.seq, want.at, want.seq)
				}
				continue
			}
			seq++
			// Few distinct timestamps => many (at) ties decided by seq.
			e := event{at: Time(rng.Intn(16)), seq: seq}
			q.push(e)
			heap.Push(&ref, e)
		}
		// Drain both completely.
		for q.len() > 0 {
			got := q.pop()
			want := heap.Pop(&ref).(event)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d drain: pop (at=%d seq=%d), oracle (at=%d seq=%d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: oracle still holds %d events", trial, ref.Len())
		}
	}
}

// TestEventQueuePeek checks peek mirrors the root without mutating.
func TestEventQueuePeek(t *testing.T) {
	var q eventQueue
	if _, ok := q.peek(); ok {
		t.Fatal("peek on empty queue reported an event")
	}
	q.push(event{at: 30, seq: 1})
	q.push(event{at: 10, seq: 2})
	q.push(event{at: 20, seq: 3})
	if at, ok := q.peek(); !ok || at != 10 {
		t.Fatalf("peek: got (%d,%v), want (10,true)", at, ok)
	}
	if q.len() != 3 {
		t.Fatalf("peek mutated the queue: len %d", q.len())
	}
}

// TestEventQueueSteadyStateZeroAlloc pins the point of the rewrite: once
// the backing slice has reached its high-water mark, push/pop cycles must
// not allocate. container/heap could never satisfy this — its interface
// Push boxes every event.
func TestEventQueueSteadyStateZeroAlloc(t *testing.T) {
	var q eventQueue
	fn := func(Time) {}
	var seq uint64
	// Reach a high-water mark so append never grows inside the measured run.
	for i := 0; i < 1024; i++ {
		seq++
		q.push(event{at: Time(i % 61), seq: seq, fn: fn})
	}
	for i := 0; i < 512; i++ {
		q.pop()
	}
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 16; i++ {
			seq++
			q.push(event{at: Time(int(seq) % 61), seq: seq, fn: fn})
		}
		for i := 0; i < 16; i++ {
			q.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %.1f times per run, want 0", allocs)
	}
}

// TestEventQueuePopReleasesClosure verifies pop zeroes the vacated slot so
// the backing array does not pin popped callbacks (and their captures).
func TestEventQueuePopReleasesClosure(t *testing.T) {
	var q eventQueue
	q.push(event{at: 1, seq: 1, fn: func(Time) {}})
	q.push(event{at: 2, seq: 2, fn: func(Time) {}})
	q.pop()
	// After one pop the slice has len 1; the slot beyond it must be zeroed.
	tail := q.ev[:2][1]
	if tail.fn != nil || tail.at != 0 || tail.seq != 0 {
		t.Fatalf("vacated slot not cleared: %+v", tail)
	}
}
