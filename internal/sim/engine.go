// Package sim provides a deterministic discrete-event simulation kernel.
//
// All storage components in this repository (flash devices, RAID arrays,
// the GC-Steering controller, the reconstruction engine) are driven by a
// single Engine. The engine owns a monotonic clock measured in integer
// nanoseconds and a priority queue of events. Events scheduled for the same
// instant fire in the order they were scheduled, which makes every
// simulation run exactly reproducible for a given seed and input trace.
//
// The engine is intentionally single-threaded: determinism matters more to
// a simulator than parallel speedup inside one run. Parallelism belongs one
// level up, in the experiment harness, which runs many independent engines
// concurrently.
package sim

import (
	"fmt"
)

// Time is a simulated instant in nanoseconds since the start of the run.
type Time int64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String renders a Time with an adaptive unit, for logs and tables.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: schedule order
	fn  func(now Time)
}

// Engine is a discrete-event simulation executive.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	events    eventQueue
	fired     uint64
	maxEvents uint64

	probe      func(now Time, pending int)
	probeEvery uint64
}

// NewEngine returns an engine with its clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to execute.
func (e *Engine) Pending() int { return e.events.len() }

// SetProbe installs an opt-in observability hook invoked every `every`
// fired events with the current clock and queue depth. The time-series
// recorder samples engine pressure through it. fn == nil (or every == 0)
// removes the probe; disabled runs pay only a nil check per step.
func (e *Engine) SetProbe(every uint64, fn func(now Time, pending int)) {
	if fn == nil || every == 0 {
		e.probe, e.probeEvery = nil, 0
		return
	}
	e.probe, e.probeEvery = fn, every
}

// SetMaxEvents installs an opt-in safety budget: once more than n events
// have fired, the next Step panics with a diagnostic instead of letting a
// mis-wired component that keeps rescheduling itself hang the run forever.
// n == 0 removes the budget (the default).
func (e *Engine) SetMaxEvents(n uint64) { e.maxEvents = n }

// At schedules fn to run at the absolute instant at. Scheduling in the past
// (at < Now) panics: it always indicates a bug in a component's timing math,
// and silently clamping would hide it.
func (e *Engine) At(at Time, fn func(now Time)) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func(now Time)) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Defer schedules fn to run at the current instant, after all callbacks
// already queued for this instant. It is the simulation analogue of
// "process this on the next tick of the event loop".
func (e *Engine) Defer(fn func(now Time)) { e.At(e.now, fn) }

// Step executes the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	if e.events.len() == 0 {
		return false
	}
	if e.maxEvents > 0 && e.fired >= e.maxEvents {
		at, _ := e.events.peek()
		panic(fmt.Sprintf(
			"sim: event budget of %d exhausted at t=%v with %d events still pending (next at %v) — a component is likely rescheduling itself forever",
			e.maxEvents, e.now, e.events.len(), at))
	}
	ev := e.events.pop()
	e.now = ev.at
	e.fired++
	ev.fn(e.now)
	if e.probe != nil && e.fired%e.probeEvery == 0 {
		e.probe(e.now, e.events.len())
	}
	return true
}

// Run executes events until the queue is empty. It is the replay's
// innermost loop and a gcsvet hot-path root: everything it reaches is
// held allocation-free by the hotalloc analyzer.
//
//gcsvet:hot
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	for {
		at, ok := e.events.peek()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d nanoseconds of simulated time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }
