package sim

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		e.At(at, func(now Time) {
			if now != at {
				t.Errorf("callback at %v fired with now=%v", at, now)
			}
			got = append(got, now)
		})
	}
	e.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order: %v", order)
		}
	}
}

func TestAfterAndDefer(t *testing.T) {
	e := NewEngine()
	var trace []string
	e.At(50, func(now Time) {
		trace = append(trace, "a")
		e.Defer(func(Time) { trace = append(trace, "deferred") })
		e.After(10, func(now Time) {
			if now != 60 {
				t.Errorf("After(10) from t=50 fired at %v", now)
			}
			trace = append(trace, "b")
		})
	})
	e.At(50, func(Time) { trace = append(trace, "a2") })
	e.Run()
	want := []string{"a", "a2", "deferred", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestRunUntilAdvancesClockAndLeavesFutureEvents(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func(Time) { fired++ })
	e.At(20, func(Time) { fired++ })
	e.At(30, func(Time) { fired++ })
	e.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunFor(10)
	if fired != 3 || e.Now() != 30 {
		t.Fatalf("after RunFor(10): fired=%d now=%v", fired, e.Now())
	}
}

func TestRunUntilWithEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1234)
	if e.Now() != 1234 {
		t.Fatalf("Now() = %v, want 1234", e.Now())
	}
}

func TestStepReturnsFalseWhenDrained(t *testing.T) {
	e := NewEngine()
	e.At(1, func(Time) {})
	if !e.Step() {
		t.Fatal("Step() = false with a pending event")
	}
	if e.Step() {
		t.Fatal("Step() = true on an empty queue")
	}
}

func TestCascadedSchedulingFromCallbacks(t *testing.T) {
	e := NewEngine()
	depth := 0
	var grow func(now Time)
	grow = func(now Time) {
		depth++
		if depth < 100 {
			e.After(Microsecond, grow)
		}
	}
	e.At(0, grow)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*Microsecond {
		t.Fatalf("Now() = %v, want 99µs", e.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

// TestRandomScheduleOrdering drives the heap with a large randomized
// schedule and verifies the global ordering invariant: fire times are
// non-decreasing, and same-instant events preserve scheduling order.
func TestRandomScheduleOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := NewEngine()
	const n = 5000
	type stamp struct {
		at  Time
		seq int
	}
	var fired []stamp
	for i := 0; i < n; i++ {
		at := Time(rng.Intn(500)) // heavy collisions on purpose
		i := i
		e.At(at, func(now Time) { fired = append(fired, stamp{now, i}) })
	}
	e.Run()
	if len(fired) != n {
		t.Fatalf("fired %d events, want %d", len(fired), n)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool {
		if fired[i].at != fired[j].at {
			return fired[i].at < fired[j].at
		}
		return fired[i].seq < fired[j].seq
	}) {
		t.Fatal("events fired out of (time, schedule) order")
	}
}

func TestMaxEventsBudgetPanicsOnRunaway(t *testing.T) {
	e := NewEngine()
	e.SetMaxEvents(50)
	// A mis-wired component that reschedules itself forever.
	var loop func(now Time)
	loop = func(now Time) { e.After(Microsecond, loop) }
	e.At(0, loop)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("runaway schedule did not panic under SetMaxEvents")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "event budget") {
			t.Fatalf("panic message %v does not mention the event budget", r)
		}
		if e.Fired() != 50 {
			t.Fatalf("Fired() = %d, want exactly the budget of 50", e.Fired())
		}
	}()
	e.Run()
}

func TestMaxEventsBudgetAllowsBoundedRuns(t *testing.T) {
	e := NewEngine()
	e.SetMaxEvents(100)
	fired := 0
	for i := 0; i < 100; i++ {
		e.At(Time(i), func(Time) { fired++ })
	}
	e.Run() // exactly at the budget: must complete without panicking
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
	// Removing the budget lifts the cap.
	e.SetMaxEvents(0)
	e.At(e.Now(), func(Time) { fired++ })
	e.Run()
	if fired != 101 {
		t.Fatalf("fired = %d after lifting budget, want 101", fired)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{1500 * Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Errorf("Seconds() = %v, want 2", s)
	}
	if us := (3 * Microsecond).Micros(); us != 3.0 {
		t.Errorf("Micros() = %v, want 3", us)
	}
}

func TestProbeSamplesEveryNthEvent(t *testing.T) {
	e := NewEngine()
	type sample struct {
		at      Time
		pending int
	}
	var got []sample
	e.SetProbe(3, func(now Time, pending int) { got = append(got, sample{now, pending}) })
	for i := 0; i < 10; i++ {
		e.At(Time(i)*Microsecond, func(Time) {})
	}
	e.Run()
	// 10 events fire; the probe lands after events 3, 6 and 9 (1-indexed),
	// seeing the queue depth after each.
	want := []sample{{2 * Microsecond, 7}, {5 * Microsecond, 4}, {8 * Microsecond, 1}}
	if len(got) != len(want) {
		t.Fatalf("probe fired %d times, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestProbeClearedAndNilSafe(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.SetProbe(1, func(Time, int) { fired++ })
	e.SetProbe(0, nil) // clears
	e.At(0, func(Time) {})
	e.Run()
	if fired != 0 {
		t.Errorf("cleared probe fired %d times", fired)
	}
	// every == 0 with a non-nil fn must also disable, not divide by zero.
	e2 := NewEngine()
	e2.SetProbe(0, func(Time, int) { fired++ })
	e2.At(0, func(Time) {})
	e2.Run()
	if fired != 0 {
		t.Errorf("probe with every=0 fired %d times", fired)
	}
}

func BenchmarkEngineScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.At(Time(j%97), func(Time) {})
		}
		e.Run()
	}
}
