package sim

// eventQueue is a concrete 4-ary min-heap of events ordered by (at, seq).
//
// It replaces container/heap, whose interface-based Push/Pop box every
// event into an `any` — one heap allocation per scheduled event, which at
// millions of events per replay made the event queue the single largest
// allocation site in the simulator. A concrete heap moves event structs
// directly within one backing slice: pushing allocates only on amortized
// slice growth, and a queue that has reached its high-water mark allocates
// nothing at all in steady state.
//
// The heap is 4-ary rather than binary: the tree is half as deep, so a
// sift touches fewer cache lines, and the four-way sibling comparison is
// cheap on modern cores. Arity does not affect observable order — (at, seq)
// is a total order (seq is unique), so events pop in exactly the sequence
// container/heap produced, which is what keeps every byte-identical
// determinism guarantee intact across the swap.
type eventQueue struct {
	ev []event
}

// before reports whether a fires strictly before b: earlier timestamp, or
// same instant and scheduled earlier.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.ev) }

// peek returns the earliest pending timestamp without popping.
func (q *eventQueue) peek() (Time, bool) {
	if len(q.ev) == 0 {
		return 0, false
	}
	return q.ev[0].at, true
}

// push inserts e, maintaining the heap property.
func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	q.siftUp(len(q.ev) - 1)
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	ev := q.ev
	top := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	// Zero the vacated tail slot: it holds a closure pointer, and leaving
	// it in the backing array would keep the callback (and everything it
	// captures) alive until the slot is overwritten by a future push.
	ev[n] = event{}
	q.ev = ev[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

// siftUp restores the heap property from leaf i toward the root.
func (q *eventQueue) siftUp(i int) {
	ev := q.ev
	e := ev[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !before(&e, &ev[p]) {
			break
		}
		ev[i] = ev[p]
		i = p
	}
	ev[i] = e
}

// siftDown restores the heap property from node i toward the leaves.
func (q *eventQueue) siftDown(i int) {
	ev := q.ev
	n := len(ev)
	e := ev[i]
	for {
		first := i<<2 + 1 // leftmost child
		if first >= n {
			break
		}
		m := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if before(&ev[c], &ev[m]) {
				m = c
			}
		}
		if !before(&ev[m], &e) {
			break
		}
		ev[i] = ev[m]
		i = m
	}
	ev[i] = e
}
