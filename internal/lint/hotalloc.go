package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Hotalloc enforces the allocation-free hot path (PR 7's invariant,
// measured by the bench gate) statically: a function reachable from a
// //gcsvet:hot root through the CHA call graph may not contain
// heap-allocating constructs. The scratch-buffer idioms the hot path is
// built from are recognized as safe:
//
//   - append whose destination is a reslice (s[:0]), a struct field, an
//     index expression, a parameter, or a local derived from one of
//     those (exts := a.lay.Split(a.scratch[:0], ...))
//   - non-capturing function literals
//   - value composite literals of struct type (no escape)
//
// Failure paths are cold by construction: panic arguments, if-bodies
// that terminate in panic, and return statements whose error result is
// non-nil are not checked. Episodic or opt-in work reached from the hot
// path (GC planning, journal writes) is fenced off with //gcsvet:cold
// on the callee, which stops traversal.
func Hotalloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid heap-allocating constructs in functions reachable from //gcsvet:hot roots",
	}
	a.RunProgram = func(prog *Program) []Finding {
		var out []Finding
		for _, fn := range prog.hotReachable() {
			c := &hotChecker{p: fn.pkg, decl: fn.decl, name: a.Name}
			c.check()
			out = append(out, c.out...)
		}
		return out
	}
	return a
}

// hotChecker walks one hot-reachable function body.
type hotChecker struct {
	p    *Package
	decl *ast.FuncDecl
	name string
	cold []posRange // source ranges excluded as failure paths
	// fieldMakes are make calls whose result lands directly in a struct
	// field (a.scratch = make(...)): amortized growth of retained
	// storage, the sanctioned warm-up shape — not a per-request cost.
	fieldMakes map[*ast.CallExpr]bool
	out        []Finding
}

type posRange struct{ start, end token.Pos }

func (c *hotChecker) report(n ast.Node, format string, args ...any) {
	c.out = append(c.out, Finding{
		Pos:      c.p.Fset.Position(n.Pos()),
		Analyzer: c.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (c *hotChecker) reportFix(n ast.Node, fix *Fix, format string, args ...any) {
	c.report(n, format, args...)
	c.out[len(c.out)-1].Fix = fix
}

func (c *hotChecker) check() {
	c.markColdRegions()
	c.markFieldMakes()
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if c.inCold(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n, "composite literal escapes to the heap (&T{...}); reuse a preallocated object")
				}
			}
		case *ast.CompositeLit:
			if t := exprType(c.p, n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					c.report(n, "map literal allocates on the hot path")
				case *types.Slice:
					c.report(n, "slice literal allocates a backing array on the hot path; reuse a scratch buffer")
				}
			}
		case *ast.FuncLit:
			if caps := capturedVars(c.p, c.decl, n); len(caps) > 0 {
				c.report(n, "closure captures %s and allocates per call; hoist the state or sanction the site with //lint:allow", quoteList(caps))
			}
		case *ast.RangeStmt:
			if t := exprType(c.p, n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.report(n, "iterates a map on the hot path; map iteration is randomized and costs an iterator")
				}
			}
		}
		return true
	})
}

// markColdRegions records the failure-path subtrees the walk skips:
// panic arguments, if-bodies ending in panic, and non-nil error returns.
func (c *hotChecker) markColdRegions() {
	errType := types.Universe.Lookup("error").Type()
	returnsError := false
	if res := c.decl.Type.Results; res != nil && len(res.List) > 0 {
		last := res.List[len(res.List)-1]
		if t := exprType(c.p, last.Type); t != nil && types.Identical(t, errType) {
			returnsError = true
		}
	}
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, ok := c.p.Info.Uses[id].(*types.Builtin); ok {
					for _, arg := range n.Args {
						c.cold = append(c.cold, posRange{arg.Pos(), arg.End()})
					}
				}
			}
		case *ast.IfStmt:
			if blockEndsInPanic(c.p, n.Body) {
				c.cold = append(c.cold, posRange{n.Body.Pos(), n.Body.End()})
			}
		case *ast.ReturnStmt:
			if returnsError && len(n.Results) > 0 {
				last := n.Results[len(n.Results)-1]
				t := exprType(c.p, last)
				if t != nil && types.Identical(t, errType) && !isNilIdent(last) {
					c.cold = append(c.cold, posRange{n.Pos(), n.End()})
				}
			}
		}
		return true
	})
}

// markFieldMakes records make calls assigned directly to struct fields.
func (c *hotChecker) markFieldMakes() {
	c.fieldMakes = make(map[*ast.CallExpr]bool)
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if _, ok := lhs.(*ast.SelectorExpr); !ok {
				continue
			}
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
					if _, b := c.p.Info.Uses[id].(*types.Builtin); b {
						c.fieldMakes[call] = true
					}
				}
			}
		}
		return true
	})
}

func (c *hotChecker) inCold(pos token.Pos) bool {
	for _, r := range c.cold {
		if pos >= r.start && pos < r.end {
			return true
		}
	}
	return false
}

func blockEndsInPanic(p *Package, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}

func (c *hotChecker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if importedPackage(c.p, sel.X) == "fmt" {
			c.report(call, "calls fmt.%s on the hot path; fmt formats through interfaces and allocates", sel.Sel.Name)
			return
		}
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := c.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				c.checkAppend(call)
			case "make":
				if !c.fieldMakes[call] {
					c.report(call, "make allocates on the hot path; preallocate in a constructor and reuse")
				}
			case "new":
				c.report(call, "new(T) allocates on the hot path; reuse a preallocated object")
			}
			return
		}
	}
	// Explicit conversion of a concrete value to an interface type.
	if tv, ok := c.p.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if at := exprType(c.p, call.Args[0]); at != nil && !types.IsInterface(at) && !isNilIdent(call.Args[0]) {
				c.report(call, "converts %s to an interface on the hot path; boxing allocates", at)
			}
		}
	}
}

// checkAppend flags appends whose destination does not reuse backing
// storage the hot path already owns.
func (c *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if c.safeDst(dst, make(map[types.Object]bool)) {
		return
	}
	name := exprIdentName(dst)
	if name == "" {
		name = "destination"
	}
	fix := c.preallocFix(dst, call)
	c.reportFix(call, fix, "appends to %s, which does not reuse preallocated backing storage; grow a scratch buffer (s := b.scratch[:0]) instead", name)
}

// safeDst reports whether an append destination reuses existing backing
// storage: a reslice, field, index expression, call result, parameter,
// or a local that some assignment in the function derives from one of
// those. visited breaks x = append(x, ...) self-cycles.
func (c *hotChecker) safeDst(e ast.Expr, visited map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.CallExpr:
		if isAppendCall(e) {
			return len(e.Args) > 0 && c.safeDst(e.Args[0], visited)
		}
		return true // a callee handing out storage owns the decision
	case *ast.Ident:
		obj := c.p.Info.Uses[e]
		if obj == nil {
			obj = c.p.Info.Defs[e]
		}
		if obj == nil || visited[obj] {
			return false
		}
		visited[obj] = true
		if c.isParamOrRecv(obj) {
			return true
		}
		safe := false
		ast.Inspect(c.decl.Body, func(n ast.Node) bool {
			if safe {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || c.objOf(id) != obj {
						continue
					}
					rhs := n.Rhs[0]
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					if c.safeDst(rhs, visited) {
						safe = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if c.objOf(name) != obj || i >= len(n.Values) {
						continue
					}
					if c.safeDst(n.Values[i], visited) {
						safe = true
					}
				}
			}
			return true
		})
		return safe
	}
	return false
}

func (c *hotChecker) objOf(id *ast.Ident) types.Object {
	if o := c.p.Info.Defs[id]; o != nil {
		return o
	}
	return c.p.Info.Uses[id]
}

// isParamOrRecv reports whether obj is declared in the function's
// receiver or parameter list (appending into caller-provided storage is
// the caller's contract, as in appendReconstruct(dst []SubOp, ...)).
func (c *hotChecker) isParamOrRecv(obj types.Object) bool {
	pos := obj.Pos()
	if r := c.decl.Recv; r != nil && pos >= r.Pos() && pos < r.End() {
		return true
	}
	if p := c.decl.Type.Params; p != nil && pos >= p.Pos() && pos < p.End() {
		return true
	}
	return false
}

// preallocFix offers the mechanical rewrite for the common shape
//
//	var x []T          ->  x := make([]T, 0, len(y))
//	for ... range y { x = append(x, ...) }
//
// when the flagged destination is a local declared with a bare var
// statement and the append sits in a range loop over a measurable
// operand. Returns nil when the shape does not match.
func (c *hotChecker) preallocFix(dst ast.Expr, call *ast.CallExpr) *Fix {
	id, ok := dst.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.objOf(id)
	if obj == nil {
		return nil
	}
	var declStmt *ast.DeclStmt
	var spec *ast.ValueSpec
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, s := range gd.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 || len(vs.Names) != 1 {
				continue
			}
			if c.objOf(vs.Names[0]) == obj {
				declStmt, spec = ds, vs
			}
		}
		return true
	})
	if declStmt == nil {
		return nil
	}
	dt := exprType(c.p, spec.Names[0])
	if dt == nil {
		if obj := c.objOf(spec.Names[0]); obj != nil {
			dt = obj.Type()
		}
	}
	if dt == nil {
		return nil
	}
	if _, isSlice := dt.Underlying().(*types.Slice); !isSlice {
		return nil
	}
	// The append must sit in a range loop whose operand has a length.
	var rangeX ast.Expr
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if call.Pos() >= rng.Body.Pos() && call.End() <= rng.Body.End() {
			if t := exprType(c.p, rng.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Map:
					rangeX = rng.X
				}
			}
		}
		return true
	})
	if rangeX == nil {
		return nil
	}
	// len(rangeX) must already be evaluable at the var statement the fix
	// replaces: a local range operand declared after it rules the fix out.
	if id, ok := ast.Unparen(rangeX).(*ast.Ident); ok {
		if obj := c.objOf(id); obj == nil || (obj.Pos() > declStmt.Pos() && !c.isParamOrRecv(obj)) {
			return nil
		}
	}
	elem := spec.Type
	if arr, ok := elem.(*ast.ArrayType); ok && arr.Len == nil {
		elem = arr.Elt
	} else {
		return nil
	}
	return &Fix{
		Start: declStmt.Pos(),
		End:   declStmt.End(),
		Replacement: fmt.Sprintf("%s := make([]%s, 0, len(%s))",
			id.Name, printNode(c.p.Fset, elem), printNode(c.p.Fset, rangeX)),
	}
}

// capturedVars lists the enclosing-function variables a function literal
// closes over (a capturing closure allocates its context per call).
func capturedVars(p *Package, decl *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if pos := v.Pos(); pos >= decl.Pos() && pos < lit.Pos() && !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}

func quoteList(names []string) string {
	var b bytes.Buffer
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", n)
	}
	return b.String()
}

// printNode renders an AST node back to source text.
func printNode(fset *token.FileSet, n ast.Node) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, n); err != nil {
		return ""
	}
	return b.String()
}
