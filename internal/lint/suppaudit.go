package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Suppaudit keeps the allowlist honest: a //lint:allow directive that no
// longer suppresses any diagnostic is itself an error. Code churns —
// the flagged construct gets refactored away, an analyzer's rules
// sharpen — and a stale suppression is worse than none, because it
// documents a sanction that nothing needs and will silently swallow the
// next real finding at that line.
//
// It works by re-running every other analyzer over the program without
// suppression and checking each well-formed directive against the raw
// findings. Malformed directives are still reported by the driver.
func Suppaudit() *Analyzer {
	a := &Analyzer{
		Name: "suppaudit",
		Doc:  "flag //lint:allow directives that no longer suppress any diagnostic",
	}
	a.RunProgram = func(prog *Program) []Finding {
		var raw []Finding
		for _, other := range All() {
			if other.Name == a.Name {
				continue
			}
			raw = append(raw, runAnalyzer(other, prog)...)
		}
		// The interprocedural analyzers only produce findings when their
		// annotations are in the loaded program: running gcsvet on a
		// package subset that excludes every //gcsvet:hot root (or inert
		// field) would make all their allows look stale. Audit those
		// directives only when the annotations are present.
		auditable := map[string]bool{}
		for _, other := range All() {
			auditable[other.Name] = true
		}
		auditable["hotalloc"] = len(prog.hotReachable()) > 0
		auditable["inert"] = len(collectInertFields(prog)) > 0
		var out []Finding
		for _, p := range prog.Pkgs {
			dirs, _ := directives(p)
			files := make([]string, 0, len(dirs))
			for file := range dirs {
				files = append(files, file)
			}
			sort.Strings(files)
			for _, file := range files {
				for _, d := range dirs[file] {
					if !auditable[d.analyzer] || directiveUsed(file, d, raw) {
						continue
					}
					out = append(out, Finding{
						Pos:      token.Position{Filename: file, Line: d.line, Column: d.col},
						Analyzer: a.Name,
						Message:  fmt.Sprintf("stale //lint:allow %s: no %s diagnostic is suppressed here", d.analyzer, d.analyzer),
					})
				}
			}
		}
		return out
	}
	return a
}

// directiveUsed reports whether the directive suppresses at least one
// raw finding (same file and analyzer, on the directive's line or the
// line below — the mirror of suppressed()).
func directiveUsed(file string, d allowDirective, raw []Finding) bool {
	for _, f := range raw {
		if f.Analyzer == d.analyzer && f.Pos.Filename == file &&
			(f.Pos.Line == d.line || f.Pos.Line == d.line+1) {
			return true
		}
	}
	return false
}
