package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FixResult is one file rewritten by ApplyFixes: the original bytes, the
// fixed-and-formatted bytes, and how many distinct edits were applied.
// The caller decides whether to write Fixed back (gcsvet -fix) or render
// the Diff (gcsvet -fix -diff).
type FixResult struct {
	Path  string
	Orig  []byte
	Fixed []byte
	Edits int
}

// ApplyFixes materializes every finding's attached Fix against the files
// on disk and returns the rewritten contents, formatted with go/format.
// Nothing is written back. Identical edits from multiple findings (two
// leaks in one map range share one collect-then-sort rewrite) collapse to
// a single application; overlapping non-identical edits are an error, as
// mechanical fixes that disagree need a human.
func ApplyFixes(fset *token.FileSet, findings []Finding) ([]FixResult, error) {
	type edit struct {
		start, end  int
		replacement string
	}
	byFile := make(map[string][]edit)
	imports := make(map[string][]string)
	for _, f := range findings {
		fx := f.Fix
		if fx == nil {
			continue
		}
		start := fset.Position(fx.Start)
		end := fset.Position(fx.End)
		if start.Filename == "" || start.Filename != end.Filename || end.Offset < start.Offset {
			return nil, fmt.Errorf("lint: invalid fix range for %s", f.Pos)
		}
		byFile[start.Filename] = append(byFile[start.Filename], edit{start.Offset, end.Offset, fx.Replacement})
		imports[start.Filename] = append(imports[start.Filename], fx.NeedImport...)
	}
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	var out []FixResult
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		edits := byFile[path]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].start != edits[j].start {
				return edits[i].start < edits[j].start
			}
			return edits[i].end < edits[j].end
		})
		kept := edits[:0]
		for _, e := range edits {
			if len(kept) > 0 {
				prev := kept[len(kept)-1]
				if e == prev {
					continue // the same rewrite reported twice
				}
				if e.start < prev.end {
					return nil, fmt.Errorf("lint: conflicting fixes in %s around offset %d", path, e.start)
				}
			}
			if e.end > len(src) {
				return nil, fmt.Errorf("lint: fix range past end of %s", path)
			}
			kept = append(kept, e)
		}
		fixed := append([]byte(nil), src...)
		for i := len(kept) - 1; i >= 0; i-- {
			e := kept[i]
			fixed = append(fixed[:e.start], append([]byte(e.replacement), fixed[e.end:]...)...)
		}
		fixed, err = insertImports(fixed, imports[path])
		if err != nil {
			return nil, fmt.Errorf("lint: fixing %s: %v", path, err)
		}
		formatted, err := format.Source(fixed)
		if err != nil {
			return nil, fmt.Errorf("lint: fixed %s does not parse: %v", path, err)
		}
		out = append(out, FixResult{Path: path, Orig: src, Fixed: formatted, Edits: len(kept)})
	}
	return out, nil
}

// insertImports adds any missing import paths to the file source. The
// result is re-formatted by the caller, so placement only needs to be
// syntactically valid: an existing parenthesized block gains lines before
// its closing paren, and a file without one gains standalone import
// statements after the last existing import (or the package clause).
func insertImports(src []byte, paths []string) ([]byte, error) {
	if len(paths) == 0 {
		return src, nil
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixed.go", src, parser.ImportsOnly)
	if err != nil {
		return nil, err
	}
	have := make(map[string]bool)
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil {
			have[p] = true
		}
	}
	missing := make([]string, 0, len(paths))
	seen := make(map[string]bool)
	for _, p := range paths {
		if !have[p] && !seen[p] {
			missing = append(missing, p)
			seen[p] = true
		}
	}
	if len(missing) == 0 {
		return src, nil
	}
	sort.Strings(missing)

	var at int
	var text string
	block := false
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			at = fset.Position(gd.Rparen).Offset
			block = true
		} else {
			at = fset.Position(gd.End()).Offset
		}
	}
	if block {
		var sb strings.Builder
		for _, p := range missing {
			fmt.Fprintf(&sb, "\t%q\n", p)
		}
		text = sb.String()
	} else {
		if at == 0 {
			at = fset.Position(f.Name.End()).Offset
		}
		var sb strings.Builder
		for _, p := range missing {
			fmt.Fprintf(&sb, "\nimport %q", p)
		}
		text = sb.String()
	}
	out := append([]byte(nil), src[:at]...)
	out = append(out, []byte(text)...)
	out = append(out, src[at:]...)
	return out, nil
}

// Diff renders a compact unified diff between the original and fixed
// contents: common prefix and suffix lines are elided into one hunk
// header. Enough for a human (or a CI log) to see exactly what -fix
// would change.
func (r FixResult) Diff() string {
	a := splitLines(string(r.Orig))
	b := splitLines(string(r.Fixed))
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	s := 0
	for s < len(a)-p && s < len(b)-p && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	amid, bmid := a[p:len(a)-s], b[p:len(b)-s]
	if len(amid) == 0 && len(bmid) == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", r.Path, r.Path)
	fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", p+1, len(amid), p+1, len(bmid))
	for _, l := range amid {
		sb.WriteString("-" + strings.TrimSuffix(l, "\n"))
		sb.WriteString("\n")
	}
	for _, l := range bmid {
		sb.WriteString("+" + strings.TrimSuffix(l, "\n"))
		sb.WriteString("\n")
	}
	return sb.String()
}

func splitLines(s string) []string {
	lines := strings.SplitAfter(s, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	return lines
}
