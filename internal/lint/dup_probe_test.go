package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestDupProbe(t *testing.T) {
	src := `package x
func f() {
	m := map[string]int{}
	var s []string
	g := func() {
		for k := range m {
			s = append(s, k)
		}
	}
	g()
	sortStrings(s)
}
func sortStrings(s []string) {}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "probe.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := CheckSource(fset, "probe", ".", []*ast.File{file}, nil)
	if err != nil {
		t.Fatal(err)
	}
	findings := Maporder().Run(pkg)
	for _, f := range findings {
		t.Logf("finding: %s", f)
	}
	t.Logf("total findings: %d", len(findings))
}
