// Package bad exercises suppaudit: an allow that suppresses a live
// diagnostic is honest, one that suppresses nothing is itself an error.
package bad

import "math/rand"

// seeded genuinely violates nodeterm, so its allow is in use.
func seeded() int {
	//lint:allow nodeterm fixture: deliberate global randomness to keep this allow live
	return rand.Int()
}

// clean violates nothing; its allow is stale.
func clean() int {
	//lint:allow nodeterm fixture: nothing here needs this // want "stale //lint:allow nodeterm: no nodeterm diagnostic is suppressed here"
	return 1
}

// hotRoot makes the program carry a //gcsvet:hot annotation, so hotalloc
// allows are auditable (suppaudit skips them when no roots are loaded).
//
//gcsvet:hot
func hotRoot() int {
	return add(1, 2)
}

func add(a, b int) int {
	//lint:allow hotalloc fixture: stale, nothing allocates here // want "stale //lint:allow hotalloc: no hotalloc diagnostic is suppressed here"
	return a + b
}
