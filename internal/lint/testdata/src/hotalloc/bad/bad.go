// Package bad exercises hotalloc: heap-allocating constructs in functions
// reachable from a //gcsvet:hot root are flagged, while the sanctioned
// scratch shapes, failure paths, and //gcsvet:cold boundaries stay silent.
package bad

import "fmt"

type buffers struct {
	scratch []int
}

type step interface{ Step(int) int }

type stepImpl struct{}

// Step is reached from the root through interface dispatch (CHA resolves
// the step interface to every module implementer).
func (stepImpl) Step(n int) int {
	p := new(int) // want "new.T. allocates on the hot path"
	*p = n
	return *p
}

type node struct{ v int }

// Route is the hot root; everything it reaches transitively is checked.
//
//gcsvet:hot
func (b *buffers) Route(vals []int, m map[int]int, s step) {
	b.direct(vals)
	_ = s.Step(1)
	b.scratchOK(vals)
	b.grow(len(vals))
	if err := b.validate(len(vals)); err != nil {
		return
	}
	b.must(len(vals) >= 0)
	_ = b.box(1)
	_ = b.scan(m)
	b.nocapture()
	_ = b.closures(2)
	b.plan()
	_ = setup()
}

func (b *buffers) direct(vals []int) {
	var out []int
	for _, v := range vals {
		out = append(out, v) // want "appends to out, which does not reuse preallocated backing storage"
	}
	_ = out
	_ = fmt.Sprint(len(vals)) // want "calls fmt.Sprint on the hot path"
}

// scratchOK grows a caller-owned buffer: reslice destinations are safe.
func (b *buffers) scratchOK(vals []int) {
	out := b.scratch[:0]
	for _, v := range vals {
		out = append(out, v)
	}
	b.scratch = out
}

// grow is the amortized warm-up shape: make assigned directly to a struct
// field is retained storage, not a per-request cost.
func (b *buffers) grow(n int) {
	if cap(b.scratch) < n {
		b.scratch = make([]int, 0, n)
	}
}

// validate allocates only on its failure path: a return whose error
// result is non-nil is cold by construction.
func (b *buffers) validate(n int) error {
	if n < 0 {
		return fmt.Errorf("negative length %d", n)
	}
	return nil
}

// must allocates only inside a panic argument and a panic-terminated if
// body, both cold.
func (b *buffers) must(ok bool) {
	if !ok {
		panic(fmt.Sprintf("broken invariant"))
	}
}

func (b *buffers) box(v int) *node {
	return &node{v: v} // want "composite literal escapes to the heap"
}

func (b *buffers) scan(m map[int]int) int {
	s := 0
	for _, v := range m { // want "iterates a map on the hot path"
		s += v
	}
	return s
}

var sink func() int

// nocapture stores a capture-free literal: no context allocation.
func (b *buffers) nocapture() {
	sink = func() int { return 0 }
}

func (b *buffers) closures(n int) func() int {
	return func() int { return n } // want "closure captures .n. and allocates per call"
}

// plan is episodic GC-style work fenced off the hot path; its allocations
// are deliberate and unchecked.
//
//gcsvet:cold
func (b *buffers) plan() map[string]int {
	return map[string]int{"victims": 1}
}

// setup is never hot-reachable by name only — it is called from Route, so
// it IS checked; keep it allocation-free to prove reachability pruning is
// about cold fences, not call depth.
func setup() int {
	return 42
}
