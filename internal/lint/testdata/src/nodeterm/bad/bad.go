// Package bad plants one violation of every nodeterm rule; the fixture
// harness checks each is reported at its `want` line.
package bad

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()          // want "time.Now reads the host clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
	return time.Since(start)     // want "time.Since reads the host clock"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global source"
}

func seededRand() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want "rand.New creates a new randomness stream"
}

func opaqueRand(src rand.Source) *rand.Rand {
	return rand.New(src) // want "rand.New without an inline rand.NewSource"
}

func sanctionedRand() *rand.Rand {
	//lint:allow nodeterm fixture: sanctioned seeding site
	return rand.New(rand.NewSource(2))
}

func concurrency(ch chan int) {
	go func() { ch <- 1 }() // want "go statement outside the harness worker pool"
	select {                // want "select statement outside the harness worker pool"
	case <-ch:
	default:
	}
}
