// Package allowedharness is loaded under the internal/harness import path:
// its worker pool may start goroutines, but wall-clock time stays banned.
package allowedharness

import "time"

func pool(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

func clock() time.Time {
	return time.Now() // want "time.Now reads the host clock"
}
