// Package allowedcmd is loaded under a cmd/ import path, where wall-clock
// reads, goroutines, and select are all sanctioned (CLI front-ends print
// progress for humans and never feed wall time into a simulation).
package allowedcmd

import "time"

func progress(done chan struct{}) time.Time {
	go func() { close(done) }()
	select {
	case <-done:
	default:
	}
	return time.Now()
}
