// Package obs is a fixture mirror of the real tracer package (it is
// loaded under an internal/obs import path): exported *Tracer methods
// must open with the nil-receiver guard.
package obs

// Tracer is the fixture stand-in for the real tracer.
type Tracer struct {
	events int64
	err    error
}

// Guarded opens with the canonical nil guard.
func (t *Tracer) Guarded() {
	if t == nil || t.err != nil {
		return
	}
	t.events++
}

// Enabled's single-return shape counts as deciding the nil case.
func (t *Tracer) Enabled() bool { return t != nil }

// Delegating immediately hands off to another nil-safe receiver method.
func (t *Tracer) Delegating() { t.Guarded() }

// Unguarded touches state before considering nil: reported.
func (t *Tracer) Unguarded() { // want "exported .Tracer method Unguarded must begin with the nil-receiver guard"
	t.events++
}

// internal helpers are exempt: only the exported API is the contract.
func (t *Tracer) bump() { t.events++ }
