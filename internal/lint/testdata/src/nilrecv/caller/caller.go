// Package caller exercises the caller side of the nil-receiver contract
// against the real gcsteering/internal/obs tracer.
package caller

import (
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

func wrapped(tr *obs.Tracer, now sim.Time) {
	if tr != nil { // want "nil-checking a \*obs.Tracer defeats the nil-receiver pattern"
		tr.Emit(now, obs.Event{})
	}
}

func direct(tr *obs.Tracer, now sim.Time) {
	tr.Emit(now, obs.Event{})
}

func gated(tr *obs.Tracer, now sim.Time) {
	if tr.Enabled() {
		tr.Emit(now, obs.Event{Aux: expensive()})
	}
}

func sanctioned(tr *obs.Tracer) bool {
	//lint:allow nilrecv fixture: identity comparison sanctioned for this test
	return tr == nil
}

func expensive() int64 { return 42 }
