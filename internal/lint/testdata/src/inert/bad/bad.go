// Package bad exercises inert: optional //gcsvet:inert fields must be
// consumed behind their zero-value guard, plumbing copies are sanctioned,
// and obs emissions outside internal/obs need an Enabled() gate.
package bad

import (
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

type Config struct {
	// Journal arms the optional intent journal.
	//gcsvet:inert
	Journal bool
	// RateMBps caps an optional pacer; <= 0 disables it.
	//gcsvet:inert
	RateMBps float64
	// Name is not optional and may be read freely.
	Name string
}

type mirror struct {
	//gcsvet:inert
	Journal bool
}

type sinkKnobs struct {
	//gcsvet:inert
	Armed bool
}

type rawSink struct {
	armed bool
}

func use(float64) {}

func guarded(c Config) {
	if c.RateMBps > 0 {
		use(c.RateMBps)
	}
}

func taintedGuard(c Config) {
	rate := c.RateMBps * 2
	if rate > 0 {
		use(c.RateMBps)
	}
}

func unguarded(c Config) {
	use(c.RateMBps) // want "reads optional field fixtures/inert/bad.Config.RateMBps outside its zero-value guard"
}

func freeName(c Config) string {
	return c.Name
}

// rate is a method of the declaring type: owner methods read freely.
func (c Config) rate() float64 {
	return c.RateMBps
}

func sameNamePlumbing(c Config) mirror {
	return mirror{Journal: c.Journal}
}

func inertDestPlumbing(c Config) sinkKnobs {
	return sinkKnobs{Armed: c.Journal}
}

func consume(rawSink) {}

func rawDestLeak(c Config) {
	consume(rawSink{armed: c.Journal}) // want "reads optional field fixtures/inert/bad.Config.Journal outside its zero-value guard"
}

func emits(tr *obs.Tracer, now sim.Time) {
	tr.Emit(now, obs.Event{}) // want "Tracer.Emit outside an Enabled.. guard"
	if tr.Enabled() {
		tr.Emit(now, obs.Event{})
	}
	on := tr.Enabled()
	if on {
		tr.RunStart(now, "run")
	}
	tr.RunStart(now, "run") // want "Tracer.RunStart outside an Enabled.. guard"
}
