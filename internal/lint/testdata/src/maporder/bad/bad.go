// Package bad exercises every maporder rule: map iteration whose order
// escapes into a slice, the event heap, the trace, or Results.
package bad

import (
	"sort"

	"gcsteering"
	"gcsteering/internal/obs"
	"gcsteering/internal/sim"
)

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "appends to keys in map-iteration order without a later sort"
	}
	return keys
}

func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func schedules(eng *sim.Engine, m map[int]sim.Time) {
	for _, at := range m {
		eng.At(at, func(sim.Time) {}) // want "schedules a sim event .*Engine.At.* in map-iteration order"
	}
}

func emits(tr *obs.Tracer, m map[int32]int64) {
	for dev, aux := range m {
		tr.Emit(0, obs.Event{Dev: dev, Aux: aux}) // want "emits an obs event .*Tracer.Emit.* in map-iteration order"
	}
}

func accumulates(r *gcsteering.Results, m map[int]int64) {
	for _, n := range m {
		r.GCEpisodes += n // want "writes Results.GCEpisodes in map-iteration order"
	}
}

func sanctioned(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow maporder fixture: order genuinely irrelevant here
		keys = append(keys, k)
	}
	return keys
}

func sliceRangeIsFine(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
