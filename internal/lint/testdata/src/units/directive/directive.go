// Package directive plants a malformed suppression comment, which the
// suite reports instead of silently ignoring.
package directive

//lint:allow // want "malformed directive: want //lint:allow <analyzer> <reason>"
func noop() {}
