// Package bad exercises the units analyzer: identifiers with different
// measurement suffixes must not meet across additive or comparison
// operators, assignments, call arguments, or composite-literal fields.
package bad

type config struct {
	DeadlineUs float64
}

func add(latUs, spanPages float64) float64 {
	return latUs + spanPages // want "mixes latUs .Us. with spanPages .Pages."
}

func compare(waitUs, rateMBps float64) bool {
	return waitUs < rateMBps // want "mixes waitUs .Us. with rateMBps .MBps."
}

func assign(totalBytes float64) float64 {
	var budgetUs float64
	budgetUs = totalBytes // want "assigns totalBytes .Bytes. to budgetUs .Us."
	return budgetUs
}

func takePages(pages int) int { return pages }

func callArg(lenBytes int) int {
	return takePages(lenBytes) // want "passes lenBytes .Bytes. for parameter pages .Pages."
}

func literal(totBytes float64) config {
	return config{
		DeadlineUs: totBytes, // want "initializes DeadlineUs .Us. from totBytes .Bytes."
	}
}

func conversionsAreFine(sizePages, pageBytes int) int {
	return sizePages * pageBytes // multiplicative conversion: sanctioned
}

func sameUnitIsFine(aUs, bUs float64) float64 {
	return aUs + bUs
}

func sanctioned(spanUs, spanPages float64) float64 {
	//lint:allow units fixture: dimensionless comparison sanctioned for this test
	return spanUs + spanPages
}
