package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type `name` defined in a package whose import path is pathSuffix or ends
// with "/"+pathSuffix. Matching by path string keeps the check stable
// across independently type-checked packages, where the same declaration
// loaded from export data and from source are distinct objects.
func isNamedType(t types.Type, pathSuffix, name string) bool {
	n, ok := deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pathSuffix || strings.HasSuffix(p, "/"+pathSuffix)
}

// importedPackage resolves a selector base like `rand` in `rand.Intn` to
// the import path of the package it names, or "" when the expression is
// not a package qualifier.
func importedPackage(p *Package, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// exprType returns the static type of e, or nil when unknown.
func exprType(p *Package, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// methodCallOn matches a call of the form recv.Sel(...) where recv's type
// (possibly a pointer) is the named type in the given package-path suffix,
// and returns the method name.
func methodCallOn(p *Package, call *ast.CallExpr, pathSuffix, typeName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	t := exprType(p, sel.X)
	if t == nil || !isNamedType(t, pathSuffix, typeName) {
		return "", false
	}
	return sel.Sel.Name, true
}
