package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Module     *struct{ Path string }
}

// goList runs `go list -deps -export -json` for the patterns in dir. The
// -export flag makes the go tool populate each package's compiled export
// data (via the build cache), which is what lets the type checker resolve
// imports without loading their source.
func goList(dir string, patterns ...string) ([]listPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportData maps every package reachable from the patterns (including the
// patterns themselves and the standard library they pull in) to its export
// data file. The map backs the type checker's importer.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// NewImporter returns a types.Importer resolving import paths through the
// export data files in exports. One importer should be shared across all
// CheckSource calls of a run so common dependencies are loaded once.
func NewImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// CheckSource type-checks one package from its parsed files, resolving
// imports through imp. Type errors are returned, not panicked: a package
// that does not compile is a caller problem, and gcsvet reports it as such.
func CheckSource(fset *token.FileSet, path, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ParseDir parses every listed file of a package directory with comments
// (comments carry the suppression directives, so they are not optional).
func ParseDir(fset *token.FileSet, dir string, goFiles []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// Load discovers the packages matching the patterns (go list syntax,
// e.g. "./..."), parses their non-test sources, and type-checks them
// against export data. Packages outside the main module (standard library,
// dependencies) are resolved for typing but not returned for analysis.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		files, err := ParseDir(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg, err := CheckSource(fset, p.ImportPath, p.Dir, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
