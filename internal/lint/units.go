package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unitSuffixes are the measurement suffixes the codebase's naming
// convention attaches to identifiers: microseconds, bandwidth, page
// counts, byte counts. Checked case-sensitively so e.g. "status" or
// "bonus" never reads as a Us quantity.
var unitSuffixes = []string{"MBps", "Pages", "Bytes", "Us"}

// unitOf returns the unit suffix an identifier name carries, or "".
// Bare lowercase parameter names like `pages` or `bytes` count too.
func unitOf(name string) string {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s) {
			return s
		}
		if name == strings.ToLower(s) {
			return s
		}
	}
	return ""
}

// mixableOps are the binary operators across which two differently-
// suffixed quantities are always a bug. Multiplication and division are
// deliberately exempt: they are how legitimate unit conversions are
// written (pages * pageSizeBytes, bytes / periodUs).
var mixableOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

// Units forbids mixing identifiers of different unit suffixes in additive
// and comparison operators, in assignments, in call arguments against the
// callee's parameter names, and in composite-literal fields.
func Units() *Analyzer {
	a := &Analyzer{
		Name: "units",
		Doc:  "identifiers suffixed Us/MBps/Pages/Bytes must not mix across suffixes",
	}
	a.Run = func(p *Package) []Finding {
		var out []Finding
		report := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{
				Pos:      p.Fset.Position(n.Pos()),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if !mixableOps[n.Op] {
						return true
					}
					ux, uy := unitOf(exprIdentName(n.X)), unitOf(exprIdentName(n.Y))
					if ux != "" && uy != "" && ux != uy {
						report(n, "mixes %s (%s) with %s (%s) across %q", exprIdentName(n.X), ux, exprIdentName(n.Y), uy, n.Op.String())
					}
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i := range n.Lhs {
						ul, ur := unitOf(exprIdentName(n.Lhs[i])), unitOf(exprIdentName(n.Rhs[i]))
						if ul != "" && ur != "" && ul != ur {
							report(n, "assigns %s (%s) to %s (%s)", exprIdentName(n.Rhs[i]), ur, exprIdentName(n.Lhs[i]), ul)
						}
					}
				case *ast.KeyValueExpr:
					uk, uv := unitOf(exprIdentName(n.Key)), unitOf(exprIdentName(n.Value))
					if uk != "" && uv != "" && uk != uv {
						report(n, "initializes %s (%s) from %s (%s)", exprIdentName(n.Key), uk, exprIdentName(n.Value), uv)
					}
				case *ast.CallExpr:
					checkCallUnits(p, n, report)
				}
				return true
			})
		}
		return out
	}
	return a
}

// checkCallUnits compares each argument's unit suffix against the name of
// the parameter it binds to. Variadic tails bind to the final parameter.
func checkCallUnits(p *Package, call *ast.CallExpr, report func(ast.Node, string, ...any)) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if pi >= np {
			if !sig.Variadic() {
				return
			}
			pi = np - 1
		}
		pu := unitOf(sig.Params().At(pi).Name())
		au := unitOf(exprIdentName(arg))
		if pu != "" && au != "" && pu != au {
			report(arg, "passes %s (%s) for parameter %s (%s)", exprIdentName(arg), au, sig.Params().At(pi).Name(), pu)
		}
	}
}
