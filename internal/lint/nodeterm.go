package lint

import (
	"fmt"
	"go/ast"
	"strconv"
	"strings"
)

// wallClockFuncs are the time-package functions that read or wait on the
// host's clock. Any of them inside simulation code breaks run-to-run
// reproducibility, because simulated time must come only from sim.Engine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowWallClock reports whether a package may touch the host clock: only
// the CLI front-ends under cmd/, which print progress for humans and never
// feed wall time back into a simulation.
func allowWallClock(path string) bool {
	return strings.Contains(path, "/cmd/")
}

// allowConcurrency reports whether a package may start goroutines or use
// select: the cmd/ front-ends, the experiment harness, and the cluster
// layer — the worker pools that run independent engines in parallel and
// merge in deterministic order. Inside a single engine, concurrency would
// make event interleaving scheduler-dependent. (The cluster shard pool
// documents the sanction in a plain comment at its one go statement; a
// //lint:allow there would be redundant with this allowlist and is what
// suppaudit exists to catch.)
func allowConcurrency(path string) bool {
	return strings.Contains(path, "/cmd/") ||
		strings.HasSuffix(path, "internal/harness") ||
		strings.HasSuffix(path, "internal/cluster")
}

// Nodeterm forbids the nondeterminism escape hatches: wall-clock time,
// the process-global math/rand source, unseeded RNG construction, select
// statements, and goroutines outside the sanctioned packages. Sanctioned
// seeded-RNG construction sites carry a //lint:allow nodeterm directive so
// every new randomness stream in the tree is a deliberate decision.
func Nodeterm() *Analyzer {
	a := &Analyzer{
		Name: "nodeterm",
		Doc:  "forbid wall-clock time, global/unseeded randomness, select, and goroutines outside the allowlist",
	}
	a.Run = func(p *Package) []Finding {
		var out []Finding
		report := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{
				Pos:      p.Fset.Position(n.Pos()),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		for _, file := range p.Files {
			for _, imp := range file.Imports {
				if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "math/rand/v2" {
					report(imp, "math/rand/v2 has no seedable global-free API surface we vet; use math/rand with rand.NewSource")
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					if !allowConcurrency(p.Path) {
						report(n, "go statement outside the harness worker pool or cmd/: a goroutine inside a simulation makes event order scheduler-dependent")
					}
				case *ast.SelectStmt:
					if !allowConcurrency(p.Path) {
						report(n, "select statement outside the harness worker pool or cmd/: channel readiness order is nondeterministic")
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					switch importedPackage(p, sel.X) {
					case "time":
						if wallClockFuncs[sel.Sel.Name] && !allowWallClock(p.Path) {
							report(n, "time.%s reads the host clock: simulated time must come from sim.Engine", sel.Sel.Name)
						}
					case "math/rand":
						switch sel.Sel.Name {
						case "New":
							if isNewSourceCall(p, n) {
								report(n, "rand.New creates a new randomness stream: derive the seed from Config.Seed and mark the sanctioned site //lint:allow nodeterm <reason>")
							} else {
								report(n, "rand.New without an inline rand.NewSource(seed): the stream's seed provenance is invisible here")
							}
						case "NewSource", "NewZipf":
							// NewSource is judged at its enclosing rand.New;
							// NewZipf consumes an already-seeded *rand.Rand.
						default:
							report(n, "rand.%s draws from the process-global source; use a seeded *rand.Rand", sel.Sel.Name)
						}
					}
				}
				return true
			})
		}
		return out
	}
	return a
}

// isNewSourceCall reports whether call's first argument is itself a
// rand.NewSource(...) call, i.e. the seed is visible at the call site.
func isNewSourceCall(p *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	inner, ok := call.Args[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := inner.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return importedPackage(p, sel.X) == "math/rand" && sel.Sel.Name == "NewSource"
}
