package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMaporderFixApplied drives the collect-then-sort rewrite end to end:
// the maporder fixture's key-only range gains a sorted-keys loop and the
// result formats cleanly.
func TestMaporderFixApplied(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/maporder/bad", "fixtures/maporder/bad")
	analyzers, _ := ByName("maporder")
	findings := Run([]*Package{pkg}, analyzers)
	var withFix []Finding
	for _, f := range findings {
		if f.Fix != nil {
			withFix = append(withFix, f)
		}
	}
	if len(withFix) == 0 {
		t.Fatal("no maporder finding carries a fix; unsortedAppend should")
	}
	results, err := ApplyFixes(pkg.Fset, withFix)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("ApplyFixes rewrote %d files, want 1", len(results))
	}
	fixed := string(results[0].Fixed)
	for _, want := range []string{
		"ks := make([]string, 0, len(m))",
		"sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })",
		"for _, k := range ks {",
	} {
		if !strings.Contains(fixed, want) {
			t.Errorf("fixed source missing %q", want)
		}
	}
	if d := results[0].Diff(); !strings.HasPrefix(d, "--- ") || !strings.Contains(d, "+\tsort.Slice(ks") {
		t.Errorf("diff does not show the rewrite:\n%s", d)
	}
}

// TestPreallocFixApplied checks hotalloc's preallocation hint: the bare
// var declaration becomes a capacity-sized make.
func TestPreallocFixApplied(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/hotalloc/bad", "fixtures/hotalloc/bad")
	analyzers, _ := ByName("hotalloc")
	findings := Run([]*Package{pkg}, analyzers)
	var withFix []Finding
	for _, f := range findings {
		if f.Fix != nil {
			withFix = append(withFix, f)
		}
	}
	if len(withFix) != 1 {
		t.Fatalf("got %d hotalloc findings with fixes, want 1 (direct's append)", len(withFix))
	}
	results, err := ApplyFixes(pkg.Fset, withFix)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !strings.Contains(string(results[0].Fixed), "out := make([]int, 0, len(vals))") {
		t.Fatalf("preallocation hint not applied:\n%s", results[0].Fixed)
	}
}

// TestApplyFixesImportsAndConflicts covers import insertion into a file
// without the needed import, duplicate-edit dedup, and the overlap error.
func TestApplyFixesImportsAndConflicts(t *testing.T) {
	src := "package p\n\nfunc f() int {\n\treturn 1\n}\n"
	dir := t.TempDir()
	path := filepath.Join(dir, "tmp.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the whole body of f with a sort call, requiring the import.
	body := f.Decls[0].(*ast.FuncDecl).Body
	fix := &Fix{
		Start:       body.Pos(),
		End:         body.End(),
		Replacement: "{\n\tsort.Strings(nil)\n\treturn 1\n}",
		NeedImport:  []string{"sort"},
	}
	findings := []Finding{
		{Analyzer: "maporder", Fix: fix},
		{Analyzer: "maporder", Fix: fix}, // the same rewrite twice: dedup
	}
	results, err := ApplyFixes(fset, findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Edits != 1 {
		t.Fatalf("got %d results, %d edits; want 1, 1", len(results), results[0].Edits)
	}
	fixed := string(results[0].Fixed)
	if !strings.Contains(fixed, "import \"sort\"") {
		t.Errorf("missing inserted import:\n%s", fixed)
	}
	if !strings.Contains(fixed, "sort.Strings(nil)") {
		t.Errorf("replacement not applied:\n%s", fixed)
	}

	// Overlapping, non-identical fixes must refuse to apply.
	conflict := []Finding{
		{Analyzer: "maporder", Fix: &Fix{Start: body.Pos(), End: body.End(), Replacement: "{}"}},
		{Analyzer: "maporder", Fix: &Fix{Start: body.Pos() + 1, End: body.End(), Replacement: "{ return 2 }"}},
	}
	if _, err := ApplyFixes(fset, conflict); err == nil {
		t.Fatal("overlapping fixes should error")
	}
}
