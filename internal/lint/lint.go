// Package lint is the simulator's custom static-analysis suite (the
// engine behind cmd/gcsvet). The Go compiler and the stock vet passes
// cannot see the invariants this repository's evaluation rests on —
// simulated time comes only from sim.Engine, randomness only from seeded
// *rand.Rand streams derived from Config.Seed, map iteration order never
// leaks into event schedules or emitted results, and *obs.Tracer stays a
// zero-cost nil receiver — so this package encodes them as analyzers built
// on nothing but go/parser and go/types (package graph discovered via
// `go list -json`; no dependencies outside the standard library).
//
// Each analyzer reports findings as `file:line: analyzer: message`. A
// finding can be suppressed at a sanctioned site with a directive comment
// on the offending line or the line directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allow without one is itself reported, so
// every suppression in the tree documents why the site is sanctioned.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a mechanical rewrite that resolves the
	// finding (applied by gcsvet -fix).
	Fix *Fix
}

// Fix is one textual rewrite: replace the source bytes spanning
// [Start, End) with Replacement. NeedImport lists package paths the
// replacement references, inserted into the file's imports if absent.
type Fix struct {
	Start, End  token.Pos
	Replacement string
	NeedImport  []string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named rule set. Intraprocedural analyzers set Run and
// are invoked once per package; interprocedural ones set RunProgram and
// are invoked once with the whole-module Program (call graph included).
// Exactly one of the two must be set.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(p *Package) []Finding
	RunProgram func(prog *Program) []Finding
}

// All returns the full gcsvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Nodeterm(), Maporder(), Nilrecv(), Units(), Hotalloc(), Inert(), Suppaudit()}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	line     int
	col      int
	analyzer string
	reason   string
}

const directivePrefix = "lint:allow"

// directives extracts the package's allow comments, reporting malformed
// ones (missing analyzer or reason) as findings so suppressions cannot
// silently rot.
func directives(p *Package) (map[string][]allowDirective, []Finding) {
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	out := make(map[string][]allowDirective)
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Slash)
				fields := strings.Fields(strings.TrimPrefix(text, directivePrefix))
				if len(fields) < 2 || !known[fields[0]] {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				out[pos.Filename] = append(out[pos.Filename], allowDirective{
					line:     pos.Line,
					col:      pos.Column,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out, bad
}

// suppressed reports whether an allow for the finding's analyzer sits on
// the finding's line or the line directly above it.
func suppressed(f Finding, dirs map[string][]allowDirective) bool {
	for _, d := range dirs[f.Pos.Filename] {
		if d.analyzer == f.Analyzer && (d.line == f.Pos.Line || d.line == f.Pos.Line-1) {
			return true
		}
	}
	return false
}

// runAnalyzer invokes one analyzer over the whole program, routing to
// its package-level or program-level entry point.
func runAnalyzer(a *Analyzer, prog *Program) []Finding {
	if a.RunProgram != nil {
		return a.RunProgram(prog)
	}
	var out []Finding
	for _, p := range prog.Pkgs {
		out = append(out, a.Run(p)...)
	}
	return out
}

// Run executes the analyzers over every package and returns the surviving
// findings sorted by position. Directive suppression is keyed by file, so
// program-level findings are matched against the directives of whichever
// package owns the flagged file.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	prog := NewProgram(pkgs)
	dirs := make(map[string][]allowDirective)
	var out []Finding
	for _, p := range pkgs {
		d, bad := directives(p)
		out = append(out, bad...)
		files := make([]string, 0, len(d))
		for file := range d {
			files = append(files, file)
		}
		sort.Strings(files)
		for _, file := range files {
			dirs[file] = append(dirs[file], d[file]...)
		}
	}
	for _, a := range analyzers {
		for _, f := range runAnalyzer(a, prog) {
			if !suppressed(f, dirs) {
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// exprIdentName extracts the name an expression is known by, for unit
// tagging and diagnostics: an identifier, the field of a selector, or the
// callee name of a call. Empty when the expression has no usable name.
func exprIdentName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return exprIdentName(e.Fun)
	case *ast.ParenExpr:
		return exprIdentName(e.X)
	}
	return ""
}
