package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the whole-program layer under the interprocedural
// analyzers (hotalloc, inert, suppaudit): a CHA-style call graph built
// from nothing but the go/types information the loader already produces.
//
// Function identity is a string key ("pkgpath.Func" or
// "pkgpath.Recv.Method") rather than a *types.Func pointer. Each package
// is type-checked from source while its dependencies are loaded from
// compiler export data, so the same declaration is represented by
// distinct objects in different packages; the key is what stays stable
// across those views.
//
// Edges cover direct calls and interface method calls. An interface
// call edge goes to every named type declared in the module that
// implements the interface (the class-hierarchy approximation). Calls
// through plain func values — event callbacks, hook fields — are NOT
// followed: the simulator's convention is that such callbacks are
// constructed on an annotated path, so their bodies are reached through
// the function literal that created them, not through the dynamic call.

// funcDirective marks the gcsvet traversal annotations on a FuncDecl.
const (
	hotDirective  = "gcsvet:hot"  // allocation-free hot-path root
	coldDirective = "gcsvet:cold" // traversal boundary: episodic/opt-in work
)

// progFunc is one function or method declared (with a body) in a module
// package.
type progFunc struct {
	key  string
	pkg  *Package
	decl *ast.FuncDecl
	hot  bool
	cold bool
}

// Program is the whole-module view handed to interprocedural analyzers:
// every analyzed package plus a lazily built call graph.
type Program struct {
	Pkgs []*Package

	built bool
	funcs map[string]*progFunc // declared module functions by key
	calls map[string][]string  // caller key -> callee keys
	// implCache memoizes interface-method resolution by a structural
	// interface signature, shared across call sites and packages.
	implCache map[string][]string
}

// NewProgram wraps a set of loaded packages. The call graph is built on
// first use so per-package analyzers pay nothing for it.
func NewProgram(pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs}
}

// funcKey derives the stable cross-package identity of fn.
func funcKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pathOf := func(p *types.Package) string {
		if p == nil {
			return "builtin"
		}
		return p.Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			obj := n.Origin().Obj()
			return pathOf(obj.Pkg()) + "." + obj.Name() + "." + fn.Name()
		}
		// Interface receivers never correspond to a module declaration;
		// CHA resolves their call sites to concrete methods instead.
		return "interface." + fn.Name()
	}
	return pathOf(fn.Pkg()) + "." + fn.Name()
}

// funcDirectives parses the gcsvet traversal annotations from a doc
// comment.
func funcDirectives(doc *ast.CommentGroup) (hot, cold bool) {
	if doc == nil {
		return
	}
	for _, c := range doc.List {
		switch strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) {
		case hotDirective:
			hot = true
		case coldDirective:
			cold = true
		}
	}
	return
}

// build populates the function registry and the call edges.
func (prog *Program) build() {
	if prog.built {
		return
	}
	prog.built = true
	prog.funcs = make(map[string]*progFunc)
	prog.calls = make(map[string][]string)
	prog.implCache = make(map[string][]string)
	for _, p := range prog.Pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				hot, cold := funcDirectives(decl.Doc)
				prog.funcs[funcKey(obj)] = &progFunc{
					key: funcKey(obj), pkg: p, decl: decl, hot: hot, cold: cold,
				}
			}
		}
	}
	// Edge lists are built in sorted caller order so the graph — and with
	// it every analyzer's traversal — is identical run to run.
	keys := make([]string, 0, len(prog.funcs))
	for k := range prog.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		caller := prog.funcs[k]
		ast.Inspect(caller.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range prog.callees(caller.pkg, call) {
				prog.calls[caller.key] = append(prog.calls[caller.key], callee)
			}
			return true
		})
	}
}

// callees resolves one call expression to the keys of the functions it
// may invoke. Dynamic calls through func values resolve to nothing.
func (prog *Program) callees(p *Package, call *ast.CallExpr) []string {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return []string{funcKey(fn)}
		}
	case *ast.SelectorExpr:
		sel := p.Info.Selections[fun]
		if sel == nil {
			// Package-qualified call (pkg.Func) or a type conversion.
			if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
				return []string{funcKey(fn)}
			}
			return nil
		}
		if sel.Kind() != types.MethodVal {
			return nil
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil
		}
		if iface, ok := deref(sel.Recv()).Underlying().(*types.Interface); ok {
			return prog.implementers(iface, fn.Name())
		}
		return []string{funcKey(fn)}
	}
	return nil
}

// implementers returns the keys of every method named name on a module
// type that satisfies iface — the CHA resolution of an interface call.
func (prog *Program) implementers(iface *types.Interface, name string) []string {
	cacheKey := iface.String() + "\x00" + name
	if out, ok := prog.implCache[cacheKey]; ok {
		return out
	}
	var out []string
	for _, p := range prog.Pkgs {
		scope := p.Pkg.Scope()
		for _, tn := range scope.Names() {
			obj, ok := scope.Lookup(tn).(*types.TypeName)
			if !ok || obj.IsAlias() {
				continue
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			recv := types.Type(named)
			if !types.Implements(recv, iface) {
				recv = types.NewPointer(named)
				if !types.Implements(recv, iface) {
					continue
				}
			}
			m, _, _ := types.LookupFieldOrMethod(recv, true, p.Pkg, name)
			if fn, ok := m.(*types.Func); ok {
				out = append(out, funcKey(fn))
			}
		}
	}
	sort.Strings(out)
	prog.implCache[cacheKey] = out
	return out
}

// hotReachable returns the module functions reachable from //gcsvet:hot
// roots without entering a //gcsvet:cold boundary, keyed and also listed
// in deterministic (sorted-key) order.
func (prog *Program) hotReachable() []*progFunc {
	prog.build()
	roots := make([]string, 0, len(prog.funcs))
	for key := range prog.funcs {
		roots = append(roots, key)
	}
	sort.Strings(roots)
	seen := make(map[string]bool)
	var queue []string
	for _, key := range roots {
		if fn := prog.funcs[key]; fn.hot && !fn.cold {
			seen[key] = true
			queue = append(queue, key)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, callee := range prog.calls[key] {
			if seen[callee] {
				continue
			}
			fn, ok := prog.funcs[callee]
			if !ok || fn.cold {
				continue // not a module function, or an annotated boundary
			}
			seen[callee] = true
			queue = append(queue, callee)
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*progFunc, 0, len(keys))
	for _, k := range keys {
		out = append(out, prog.funcs[k])
	}
	return out
}
