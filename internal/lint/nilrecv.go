package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// isObsPackage matches the tracer's home package (and its test fixtures,
// which mirror the path suffix).
func isObsPackage(path string) bool {
	return strings.HasSuffix(path, "internal/obs")
}

// Nilrecv enforces the tracer's zero-cost-when-disabled contract from both
// sides. Inside internal/obs, every exported *Tracer method must begin by
// deciding the nil-receiver case (a nil guard, a return built on a nil
// comparison, or delegation to another receiver method); anywhere else,
// comparing a *obs.Tracer against nil is flagged, because wrapping call
// sites in `if tr != nil` re-introduces per-site branching the nil-receiver
// pattern exists to centralize — and rots the moment tracing grows state.
func Nilrecv() *Analyzer {
	a := &Analyzer{
		Name: "nilrecv",
		Doc:  "exported *obs.Tracer methods must open with the nil-receiver guard; callers must not nil-check tracers",
	}
	a.Run = func(p *Package) []Finding {
		var out []Finding
		report := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{
				Pos:      p.Fset.Position(n.Pos()),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		if isObsPackage(p.Path) {
			checkTracerMethods(p, report)
			return out
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				bin, ok := n.(*ast.BinaryExpr)
				if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
					return true
				}
				var other ast.Expr
				switch {
				case isNilIdent(bin.X):
					other = bin.Y
				case isNilIdent(bin.Y):
					other = bin.X
				default:
					return true
				}
				if t := exprType(p, other); t != nil && isNamedType(t, "internal/obs", "Tracer") {
					report(bin, "nil-checking a *obs.Tracer defeats the nil-receiver pattern; call its methods directly (or gate on Enabled())")
				}
				return true
			})
		}
		return out
	}
	return a
}

// checkTracerMethods verifies the guard discipline on the Tracer's own
// exported methods.
func checkTracerMethods(p *Package, report func(ast.Node, string, ...any)) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recvType := fn.Recv.List[0].Type
			star, ok := recvType.(*ast.StarExpr)
			if !ok {
				continue
			}
			id, ok := star.X.(*ast.Ident)
			if !ok || id.Name != "Tracer" {
				continue
			}
			recvName := ""
			if names := fn.Recv.List[0].Names; len(names) == 1 {
				recvName = names[0].Name
			}
			if recvName == "" || recvName == "_" {
				report(fn, "exported *Tracer method %s has no named receiver, so it cannot guard the nil case", fn.Name.Name)
				continue
			}
			if len(fn.Body.List) == 0 || !opensWithNilGuard(fn.Body.List[0], recvName) {
				report(fn, "exported *Tracer method %s must begin with the nil-receiver guard (if %s == nil { return ... })", fn.Name.Name, recvName)
			}
		}
	}
}

// opensWithNilGuard accepts the three sanctioned first statements of a
// nil-safe method: an if whose condition nil-compares the receiver, a
// return computed from a receiver nil comparison (Enabled's shape), or a
// direct delegation to another method on the receiver.
func opensWithNilGuard(first ast.Stmt, recv string) bool {
	switch s := first.(type) {
	case *ast.IfStmt:
		return containsNilCompare(s.Cond, recv)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if containsNilCompare(r, recv) {
				return true
			}
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
					return true
				}
			}
		}
	}
	return false
}

// containsNilCompare looks for `recv == nil` or `recv != nil` anywhere in
// the expression (covering `t == nil || t.err != nil` compounds).
func containsNilCompare(e ast.Expr, recv string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		x, xok := bin.X.(*ast.Ident)
		y, yok := bin.Y.(*ast.Ident)
		if xok && x.Name == recv && isNilIdent(bin.Y) {
			found = true
		}
		if yok && y.Name == recv && isNilIdent(bin.X) {
			found = true
		}
		return !found
	})
	return found
}

// isNilIdent matches the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
