package lint

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureExports caches one `go list -export` run for every dependency the
// fixture packages import, shared across all fixture tests.
var fixtureExports struct {
	once sync.Once
	m    map[string]string
	err  error
}

func exportsForFixtures(t *testing.T) map[string]string {
	t.Helper()
	fixtureExports.once.Do(func() {
		fixtureExports.m, fixtureExports.err = ExportData(".",
			"fmt", "time", "math/rand", "sort",
			"gcsteering", "gcsteering/internal/obs", "gcsteering/internal/sim")
	})
	if fixtureExports.err != nil {
		t.Fatalf("loading fixture export data: %v", fixtureExports.err)
	}
	return fixtureExports.m
}

// loadFixture parses and type-checks one testdata package under the given
// import path (the path matters: the analyzers' allowlists key off it).
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	files, err := ParseDir(fset, dir, names)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	pkg, err := CheckSource(fset, importPath, dir, files, NewImporter(fset, exportsForFixtures(t)))
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// collectWants scans the fixture sources for `// want "regexp"` comments,
// keyed by file:line.
func collectWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				key := fmt.Sprintf("%s:%d", path, i+1)
				out[key] = append(out[key], m[1])
			}
		}
	}
	return out
}

// TestFixtures drives every analyzer over its testdata packages and checks
// the reported findings against the `want` annotations: every finding must
// be wanted at its exact file:line, and every want must fire.
func TestFixtures(t *testing.T) {
	tests := []struct {
		name     string
		analyzer string
		path     string // import path the fixture is loaded under
		dir      string
	}{
		{"nodeterm-violations", "nodeterm", "fixtures/nodeterm/bad", "testdata/src/nodeterm/bad"},
		{"nodeterm-cmd-allowlist", "nodeterm", "gcsteering/cmd/fixturecmd", "testdata/src/nodeterm/allowedcmd"},
		{"nodeterm-harness-allowlist", "nodeterm", "gcsteering/internal/harness", "testdata/src/nodeterm/allowedharness"},
		{"maporder-violations", "maporder", "fixtures/maporder/bad", "testdata/src/maporder/bad"},
		{"nilrecv-methods", "nilrecv", "fixtures/internal/obs", "testdata/src/nilrecv/obs"},
		{"nilrecv-callers", "nilrecv", "fixtures/caller", "testdata/src/nilrecv/caller"},
		{"units-violations", "units", "fixtures/units/bad", "testdata/src/units/bad"},
		{"units-malformed-directive", "units", "fixtures/units/directive", "testdata/src/units/directive"},
		{"hotalloc-reachability", "hotalloc", "fixtures/hotalloc/bad", "testdata/src/hotalloc/bad"},
		{"inert-guards", "inert", "fixtures/inert/bad", "testdata/src/inert/bad"},
		{"suppaudit-stale", "suppaudit", "fixtures/suppaudit/bad", "testdata/src/suppaudit/bad"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			analyzers, err := ByName(tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			pkg := loadFixture(t, tc.dir, tc.path)
			findings := Run([]*Package{pkg}, analyzers)
			wants := collectWants(t, tc.dir)
			matched := make(map[string][]bool, len(wants))
			for k, ws := range wants {
				matched[k] = make([]bool, len(ws))
			}
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
				ok := false
				for i, w := range wants[key] {
					if regexp.MustCompile(w).MatchString(f.Message) {
						matched[key][i] = true
						ok = true
					}
				}
				if !ok {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for k, ws := range wants {
				for i, w := range ws {
					if !matched[k][i] {
						t.Errorf("%s: want %q never reported", k, w)
					}
				}
			}
		})
	}
}

// TestRepoIsClean runs the full suite over the real repository, the same
// invocation CI uses: a gcsvet failure in CI must mean a genuine new
// violation, never fixture drift.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export over the whole module")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; pattern ./... should cover the module", len(pkgs))
	}
	for _, f := range Run(pkgs, All()) {
		t.Errorf("repo not gcsvet-clean: %s", f)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 7 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 7, nil", len(all), err)
	}
	two, err := ByName("units, nodeterm")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

func TestUnitOf(t *testing.T) {
	cases := map[string]string{
		"latUs":       "Us",
		"RebuildMBps": "MBps",
		"diskPages":   "Pages",
		"totalBytes":  "Bytes",
		"pages":       "Pages",
		"bytes":       "Bytes",
		"status":      "", // lowercase "us" tail must not read as a unit
		"bonus":       "",
		"pageSize":    "",
		"":            "",
	}
	for name, want := range cases {
		if got := unitOf(name); got != want {
			t.Errorf("unitOf(%q) = %q, want %q", name, got, want)
		}
	}
}
