package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// simScheduleMethods are the sim.Engine calls that enqueue events; doing
// so in map-iteration order randomizes the event heap's tie-breaking seq
// numbers and with them the whole run.
var simScheduleMethods = map[string]bool{"At": true, "After": true, "Defer": true}

// obsEmitMethods are the *obs.Tracer calls that write to the trace; the
// byte-identical-trace determinism tests fail if their order floats.
var obsEmitMethods = map[string]bool{"Emit": true, "RunStart": true}

// Maporder flags `range` over a map whose body lets the iteration order
// escape: appending to a slice that is never sorted, scheduling a sim
// event, emitting an obs event, or writing a Results field. Go randomizes
// map iteration per run, so any of these turns into nondeterministic
// output. The sanctioned shape is collect-keys-then-sort (the append is
// allowed when the slice is sorted later in the same function).
func Maporder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flag map iteration whose order leaks into slices, sim events, obs events, or Results",
	}
	a.Run = func(p *Package) []Finding {
		var out []Finding
		report := func(n ast.Node, format string, args ...any) {
			out = append(out, Finding{
				Pos:      p.Fset.Position(n.Pos()),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				ast.Inspect(body, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := exprType(p, rng.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					checkMapRangeBody(p, rng, body, report)
					return true
				})
				return true
			})
		}
		return out
	}
	return a
}

// checkMapRangeBody inspects one map-range body for order leaks. body is
// the innermost enclosing function body, used to look for a later sort of
// any slice the range appends to.
func checkMapRangeBody(p *Package, rng *ast.RangeStmt, body *ast.BlockStmt, report func(ast.Node, string, ...any)) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) {
					checkAppend(p, lhs, n, rng, body, report)
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok && isResultsField(p, sel) {
					report(n, "writes Results.%s in map-iteration order; iterate sorted keys instead", sel.Sel.Name)
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok && isResultsField(p, sel) {
				report(n, "writes Results.%s in map-iteration order; iterate sorted keys instead", sel.Sel.Name)
			}
		case *ast.CallExpr:
			if m, ok := methodCallOn(p, n, "internal/sim", "Engine"); ok && simScheduleMethods[m] {
				report(n, "schedules a sim event (Engine.%s) in map-iteration order; iterate sorted keys instead", m)
			}
			if m, ok := methodCallOn(p, n, "internal/obs", "Tracer"); ok && obsEmitMethods[m] {
				report(n, "emits an obs event (Tracer.%s) in map-iteration order; iterate sorted keys instead", m)
			}
		}
		return true
	})
}

// isAppendCall matches the builtin append.
func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isResultsField reports whether sel selects a field of the top-level
// Results type (the simulator's published per-run output).
func isResultsField(p *Package, sel *ast.SelectorExpr) bool {
	t := exprType(p, sel.X)
	return t != nil && isNamedType(t, "gcsteering", "Results")
}

// checkAppend handles `s = append(s, ...)` inside a map range: allowed
// only when s is a local identifier that some later statement of the
// enclosing function passes to a sort call (the collect-then-sort idiom).
func checkAppend(p *Package, lhs ast.Expr, at ast.Node, rng *ast.RangeStmt, body *ast.BlockStmt, report func(ast.Node, string, ...any)) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		report(at, "appends to %s in map-iteration order; collect keys and sort first", exprIdentName(lhs))
		return
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj != nil && sortedAfter(p, body, rng.End(), obj) {
		return
	}
	report(at, "appends to %s in map-iteration order without a later sort; collect keys and sort first", id.Name)
}

// sortedAfter reports whether, after pos, the function body calls into
// package sort or slices with obj as an argument (sort.Strings(keys),
// sort.Slice(keys, ...), slices.Sort(keys), ...).
func sortedAfter(p *Package, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := importedPackage(p, sel.X); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
