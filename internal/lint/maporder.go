package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// simScheduleMethods are the sim.Engine calls that enqueue events; doing
// so in map-iteration order randomizes the event heap's tie-breaking seq
// numbers and with them the whole run.
var simScheduleMethods = map[string]bool{"At": true, "After": true, "Defer": true}

// obsEmitMethods are the *obs.Tracer calls that write to the trace; the
// byte-identical-trace determinism tests fail if their order floats.
var obsEmitMethods = map[string]bool{"Emit": true, "RunStart": true}

// Maporder flags `range` over a map whose body lets the iteration order
// escape: appending to a slice that is never sorted, scheduling a sim
// event, emitting an obs event, or writing a Results field. Go randomizes
// map iteration per run, so any of these turns into nondeterministic
// output. The sanctioned shape is collect-keys-then-sort (the append is
// allowed when the slice is sorted later in the same function).
func Maporder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flag map iteration whose order leaks into slices, sim events, obs events, or Results",
	}
	a.Run = func(p *Package) []Finding {
		var out []Finding
		report := func(n ast.Node, fix *Fix, format string, args ...any) {
			out = append(out, Finding{
				Pos:      p.Fset.Position(n.Pos()),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
				Fix:      fix,
			})
		}
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				ast.Inspect(body, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := exprType(p, rng.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						return true
					}
					checkMapRangeBody(p, rng, body, report)
					return true
				})
				return true
			})
		}
		return out
	}
	return a
}

// checkMapRangeBody inspects one map-range body for order leaks. body is
// the innermost enclosing function body, used to look for a later sort of
// any slice the range appends to. Every leak in one range shares the same
// mechanical rewrite — iterate the keys sorted — so the collect-then-sort
// fix is computed once per range and attached to each finding (ApplyFixes
// collapses the duplicates).
func checkMapRangeBody(p *Package, rng *ast.RangeStmt, body *ast.BlockStmt, report func(ast.Node, *Fix, string, ...any)) {
	fix := maporderFix(p, rng, body)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) {
					checkAppend(p, lhs, n, rng, body, fix, report)
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok && isResultsField(p, sel) {
					report(n, fix, "writes Results.%s in map-iteration order; iterate sorted keys instead", sel.Sel.Name)
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok && isResultsField(p, sel) {
				report(n, fix, "writes Results.%s in map-iteration order; iterate sorted keys instead", sel.Sel.Name)
			}
		case *ast.CallExpr:
			if m, ok := methodCallOn(p, n, "internal/sim", "Engine"); ok && simScheduleMethods[m] {
				report(n, fix, "schedules a sim event (Engine.%s) in map-iteration order; iterate sorted keys instead", m)
			}
			if m, ok := methodCallOn(p, n, "internal/obs", "Tracer"); ok && obsEmitMethods[m] {
				report(n, fix, "emits an obs event (Tracer.%s) in map-iteration order; iterate sorted keys instead", m)
			}
		}
		return true
	})
}

// maporderFix builds the collect-then-sort rewrite for a key-only map
// range:
//
//	for k := range m { ... }
//
// becomes
//
//	ks := make([]K, 0, len(m))
//	for k := range m {
//		ks = append(ks, k)
//	}
//	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
//	for _, k := range ks { ... }
//
// Returns nil when the shape rules the mechanical rewrite out: a ranged
// value, a blank or absent key, a key type that is not an ordered basic
// type, a side-effecting range operand (evaluated twice in the rewrite),
// or no fresh name available for the key slice.
func maporderFix(p *Package, rng *ast.RangeStmt, body *ast.BlockStmt) *Fix {
	if rng.Value != nil || rng.Tok != token.DEFINE {
		return nil
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return nil
	}
	// The key ident of a `:=` range is a definition, not an expression:
	// its type lives in Defs rather than the Types map.
	var kt types.Type
	if obj := p.Info.Defs[key]; obj != nil {
		kt = obj.Type()
	}
	if kt == nil {
		return nil
	}
	basic, ok := kt.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 || kt.String() != basic.String() {
		return nil
	}
	switch ast.Unparen(rng.X).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return nil // the operand is evaluated twice in the rewrite
	}
	slice := freshName(p, body, key.Name+"s")
	if slice == "" {
		return nil
	}
	mapSrc := printNode(p.Fset, rng.X)
	bodySrc := printNode(p.Fset, rng.Body)
	repl := fmt.Sprintf(
		"%[1]s := make([]%[2]s, 0, len(%[3]s))\nfor %[4]s := range %[3]s {\n%[1]s = append(%[1]s, %[4]s)\n}\nsort.Slice(%[1]s, func(i, j int) bool { return %[1]s[i] < %[1]s[j] })\nfor _, %[4]s := range %[1]s %[5]s",
		slice, basic.String(), mapSrc, key.Name, bodySrc)
	return &Fix{
		Start:       rng.Pos(),
		End:         rng.End(),
		Replacement: repl,
		NeedImport:  []string{"sort"},
	}
}

// freshName returns base, or base with a numeric suffix, such that no
// identifier of that name appears anywhere in the function body; "" when
// ten candidates are all taken.
func freshName(p *Package, body *ast.BlockStmt, base string) string {
	used := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	if !used[base] {
		return base
	}
	for i := 2; i < 12; i++ {
		if cand := fmt.Sprintf("%s%d", base, i); !used[cand] {
			return cand
		}
	}
	return ""
}

// isAppendCall matches the builtin append.
func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isResultsField reports whether sel selects a field of the top-level
// Results type (the simulator's published per-run output).
func isResultsField(p *Package, sel *ast.SelectorExpr) bool {
	t := exprType(p, sel.X)
	return t != nil && isNamedType(t, "gcsteering", "Results")
}

// checkAppend handles `s = append(s, ...)` inside a map range: allowed
// only when s is a local identifier that some later statement of the
// enclosing function passes to a sort call (the collect-then-sort idiom).
func checkAppend(p *Package, lhs ast.Expr, at ast.Node, rng *ast.RangeStmt, body *ast.BlockStmt, fix *Fix, report func(ast.Node, *Fix, string, ...any)) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		report(at, fix, "appends to %s in map-iteration order; collect keys and sort first", exprIdentName(lhs))
		return
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	if obj != nil && sortedAfter(p, body, rng.End(), obj) {
		return
	}
	report(at, fix, "appends to %s in map-iteration order without a later sort; collect keys and sort first", id.Name)
}

// sortedAfter reports whether, after pos, the function body calls into
// package sort or slices with obj as an argument (sort.Strings(keys),
// sort.Slice(keys, ...), slices.Sort(keys), ...).
func sortedAfter(p *Package, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := importedPackage(p, sel.X); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.Info.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}
