package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 document shapes, reduced to the subset GitHub code scanning
// consumes for PR annotations: one run, the analyzer registry as rules,
// one result per finding with a physical location. Everything else in the
// (large) SARIF schema is optional and omitted.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a SARIF 2.1.0 document. File paths
// are made relative to root (the module directory) so the URIs match the
// repository layout GitHub annotates against. Findings from the "lint"
// pseudo-analyzer (malformed directives) are reported under that rule ID
// alongside the registered analyzers.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding, root string) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	seen := make(map[string]bool)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		seen[a.Name] = true
	}
	for _, f := range findings {
		if !seen[f.Analyzer] {
			rules = append(rules, sarifRule{ID: f.Analyzer,
				ShortDescription: sarifMessage{Text: "gcsvet diagnostic"}})
			seen[f.Analyzer] = true
		}
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
				Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
			}}},
		})
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "gcsvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
