package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Inert enforces the "inert at zero" contract for optional subsystems
// (PR 9's byte-identical-when-disabled guarantee) statically, from both
// directions:
//
//  1. A struct field annotated //gcsvet:inert is an optional-feature
//     knob whose zero value must disable the feature completely. Reading
//     such a field is only allowed in contexts that stay inert when the
//     value is zero: the guard condition itself, a comparison, the body
//     of an if whose condition tests the field (or a local derived from
//     it), plumbing copies (assignment to a local, to another inert
//     field, or to a same-named field), ranging over it (a zero slice
//     ranges zero times), len/cap, returns, and the declaring type's own
//     methods. Any other consumption — passing the raw value into the
//     machinery without its zero-value guard — is flagged.
//
//  2. Every obs emission outside internal/obs must sit under an
//     Enabled() guard, generalizing nilrecv across function bodies: the
//     nil-receiver tracer makes the call itself safe, but an ungated
//     Emit still pays argument evaluation on every run.
func Inert() *Analyzer {
	a := &Analyzer{
		Name: "inert",
		Doc:  "optional //gcsvet:inert fields must be consumed behind their zero-value guard; obs emissions must be Enabled()-gated",
	}
	a.RunProgram = func(prog *Program) []Finding {
		fields := collectInertFields(prog)
		var out []Finding
		for _, p := range prog.Pkgs {
			out = append(out, checkInertPackage(p, fields)...)
		}
		return out
	}
	return a
}

const inertDirective = "gcsvet:inert"

// collectInertFields scans every module struct declaration for fields
// annotated //gcsvet:inert and returns their keys (pkgpath.Type.Field).
func collectInertFields(prog *Program) map[string]bool {
	out := make(map[string]bool)
	for _, p := range prog.Pkgs {
		for _, file := range p.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, f := range st.Fields.List {
					if !hasInertDirective(f.Doc) && !hasInertDirective(f.Comment) {
						continue
					}
					for _, name := range f.Names {
						out[p.Pkg.Path()+"."+ts.Name.Name+"."+name.Name] = true
					}
				}
				return true
			})
		}
	}
	return out
}

func hasInertDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), inertDirective) {
			return true
		}
	}
	return false
}

// inertFieldKey resolves a selector expression to its field key when it
// reads a struct field, following any embedded path to the owning type.
func inertFieldKey(p *Package, sel *ast.SelectorExpr) string {
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	t := deref(s.Recv())
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		t = deref(st.Field(i).Type())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Origin().Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + sel.Sel.Name
}

// ownerKeyOf returns the pkgpath.Type prefix of a field key.
func ownerKeyOf(fieldKey string) string {
	i := strings.LastIndex(fieldKey, ".")
	if i < 0 {
		return fieldKey
	}
	return fieldKey[:i]
}

func checkInertPackage(p *Package, fields map[string]bool) []Finding {
	var out []Finding
	inObs := isObsPackage(p.Pkg.Path())
	for _, file := range p.Files {
		for _, d := range file.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			c := &inertChecker{p: p, decl: decl, fields: fields, inObs: inObs}
			c.collectTaint()
			c.walk()
			out = append(out, c.out...)
		}
	}
	return out
}

type inertChecker struct {
	p      *Package
	decl   *ast.FuncDecl
	fields map[string]bool
	inObs  bool
	// tainted marks locals derived from an inert field (deadline :=
	// cfg.DeadlineUs * ...): testing such a local guards the field.
	tainted map[types.Object]bool
	// enabledLocal marks locals assigned from a Tracer.Enabled() call.
	enabledLocal map[types.Object]bool
	out          []Finding
}

func (c *inertChecker) report(n ast.Node, format string, args ...any) {
	c.out = append(c.out, Finding{
		Pos:      c.p.Fset.Position(n.Pos()),
		Analyzer: "inert",
		Message:  fmt.Sprintf(format, args...),
	})
}

// collectTaint records locals whose initializer reads an inert field or
// an Enabled() result, in one pass before the context walk.
func (c *inertChecker) collectTaint() {
	c.tainted = make(map[types.Object]bool)
	c.enabledLocal = make(map[types.Object]bool)
	mark := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := c.p.Info.Defs[id]
		if obj == nil {
			obj = c.p.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		if c.exprReadsInert(rhs) {
			c.tainted[obj] = true
		}
		if exprCallsEnabled(c.p, rhs) {
			c.enabledLocal[obj] = true
		}
	}
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				mark(lhs, rhs)
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					mark(name, n.Values[i])
				}
			}
		}
		return true
	})
}

func (c *inertChecker) exprReadsInert(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && c.fields[inertFieldKey(c.p, sel)] {
			found = true
		}
		return !found
	})
	return found
}

func exprCallsEnabled(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if m, ok := methodCallOn(p, call, "internal/obs", "Tracer"); ok && m == "Enabled" {
				found = true
			}
		}
		return !found
	})
	return found
}

// receiverOwnerKey returns the pkgpath.Type key of the method receiver,
// or "" for plain functions. The declaring type's own methods (Validate,
// plan, ...) may read its inert fields freely.
func (c *inertChecker) receiverOwnerKey() string {
	if c.decl.Recv == nil || len(c.decl.Recv.List) == 0 {
		return ""
	}
	t := exprType(c.p, c.decl.Recv.List[0].Type)
	if t == nil {
		return ""
	}
	n, ok := deref(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

func (c *inertChecker) walk() {
	ownerExempt := c.receiverOwnerKey()
	var stack []ast.Node
	ast.Inspect(c.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.SelectorExpr:
			key := inertFieldKey(c.p, n)
			if !c.fields[key] || ownerKeyOf(key) == ownerExempt {
				return true
			}
			if c.isWriteTarget(n, stack) {
				return true
			}
			if !c.guardedUse(n, key, stack) {
				c.report(n, "reads optional field %s outside its zero-value guard; gate the consumption so the zero value stays inert", key)
			}
		case *ast.CallExpr:
			if c.inObs {
				return true
			}
			if m, ok := methodCallOn(c.p, n, "internal/obs", "Tracer"); ok && (m == "Emit" || m == "RunStart") {
				if !c.enabledGated(stack) {
					c.report(n, "Tracer.%s outside an Enabled() guard; argument evaluation runs even when tracing is off", m)
				}
			}
		}
		return true
	})
}

// isWriteTarget reports whether sel is being assigned to (configuring
// the field is construction, not consumption).
func (c *inertChecker) isWriteTarget(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	switch parent := parent.(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if lhs == ast.Expr(sel) {
				return true
			}
		}
	case *ast.IncDecStmt:
		return parent.X == ast.Expr(sel)
	}
	return false
}

// guardedUse walks the ancestor chain of an inert field read looking
// for a context that keeps the zero value inert.
func (c *inertChecker) guardedUse(sel *ast.SelectorExpr, key string, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		child := stack[i+1]
		switch parent := stack[i].(type) {
		case *ast.IfStmt:
			if parent.Cond == child {
				return true // the guard itself
			}
			if (parent.Body == child || parent.Else == child) && c.guardMentions(parent.Cond, key) {
				return true
			}
		case *ast.ForStmt:
			if parent.Cond == child {
				return true
			}
		case *ast.SwitchStmt:
			if parent.Tag == child {
				return true
			}
		case *ast.CaseClause:
			for _, e := range parent.List {
				if e == child {
					return true // compared, not consumed
				}
			}
		case *ast.BinaryExpr:
			switch parent.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ,
				token.LAND, token.LOR:
				return true
			}
		case *ast.UnaryExpr:
			if parent.Op == token.NOT {
				return true
			}
		case *ast.AssignStmt:
			if c.plumbingAssign(parent, child, sel) {
				return true
			}
		case *ast.ValueSpec:
			for _, v := range parent.Values {
				if v == child {
					return true // var x = cfg.F: a plumbing copy
				}
			}
		case *ast.KeyValueExpr:
			if parent.Value == child {
				if k, ok := parent.Key.(*ast.Ident); ok {
					if k.Name == sel.Sel.Name {
						return true // same-name composite-literal plumbing
					}
					// Differently-named plumbing still counts when the
					// destination field is itself inert: the knob's zero
					// value propagates into another knob with the same
					// contract (IntentLog{Journaled: cfg.IntentJournal}).
					if i > 0 {
						if lit, ok := stack[i-1].(*ast.CompositeLit); ok {
							if t := c.p.Info.TypeOf(lit); t != nil {
								if named, ok := deref(t).(*types.Named); ok && named.Obj().Pkg() != nil {
									if c.fields[named.Obj().Pkg().Path()+"."+named.Obj().Name()+"."+k.Name] {
										return true
									}
								}
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			return true // returning a copy; the caller owns the guard
		case *ast.RangeStmt:
			if parent.X == child {
				return true // a zero slice/map ranges zero times
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok {
				if _, b := c.p.Info.Uses[id].(*types.Builtin); b && (id.Name == "len" || id.Name == "cap") {
					return true
				}
			}
		}
	}
	return false
}

// plumbingAssign reports whether an assignment with the field read on
// its right-hand side is a sanctioned copy: into a local, into another
// inert field, or into a same-named field (a mirror knob).
func (c *inertChecker) plumbingAssign(as *ast.AssignStmt, child ast.Node, sel *ast.SelectorExpr) bool {
	idx := -1
	for i, r := range as.Rhs {
		if r == child {
			idx = i
		}
	}
	if idx < 0 {
		return false // the read is nested deeper; arithmetic into a local still matches via the taint pass
	}
	lhss := as.Lhs
	if len(as.Rhs) == len(as.Lhs) {
		lhss = as.Lhs[idx : idx+1]
	}
	for _, lhs := range lhss {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			return true // local copy; guards on it count via taint
		case *ast.SelectorExpr:
			if c.fields[inertFieldKey(c.p, lhs)] {
				return true // propagates into another inert knob
			}
			if lhs.Sel.Name == sel.Sel.Name {
				return true // same-named mirror field
			}
		}
	}
	return false
}

// guardMentions reports whether a condition tests the inert field
// itself, a local tainted by it, or a method of the field's owner type.
func (c *inertChecker) guardMentions(cond ast.Expr, key string) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if inertFieldKey(c.p, n) == key {
				found = true
			}
		case *ast.Ident:
			if obj := c.p.Info.Uses[n]; obj != nil && c.tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			// A predicate method of the owner type (cfg.HasChaos()).
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if t := exprType(c.p, sel.X); t != nil {
					if named, ok := deref(t).(*types.Named); ok && named.Obj().Pkg() != nil {
						if named.Obj().Pkg().Path()+"."+named.Obj().Name() == ownerKeyOf(key) {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// enabledGated reports whether the node at the top of the stack sits
// inside an if whose condition calls Tracer.Enabled (directly or via a
// local bool assigned from it).
func (c *inertChecker) enabledGated(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		parent, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		child := stack[i+1]
		if parent.Body != child && parent.Else != child {
			continue
		}
		if exprCallsEnabled(c.p, parent.Cond) {
			return true
		}
		gated := false
		ast.Inspect(parent.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.p.Info.Uses[id]; obj != nil && c.enabledLocal[obj] {
					gated = true
				}
			}
			return !gated
		})
		if gated {
			return true
		}
	}
	return false
}
