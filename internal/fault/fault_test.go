package fault

import (
	"math"
	"strings"
	"testing"

	"gcsteering/internal/raid"
	"gcsteering/internal/rebuild"
	"gcsteering/internal/sim"
)

// fakeDisk completes ops after fixed latencies; an optional error schedule
// makes reads of specific pages report UREs.
type fakeDisk struct {
	eng      *sim.Engine
	pages    int
	readLat  sim.Time
	writeLat sim.Time
	badPages map[int]bool
}

func (f *fakeDisk) Read(now sim.Time, page, pages int, done func(sim.Time)) error {
	if done != nil {
		f.eng.At(now+f.readLat, done)
	}
	return nil
}

func (f *fakeDisk) Write(now sim.Time, page, pages int, done func(sim.Time)) error {
	if done != nil {
		f.eng.At(now+f.writeLat, done)
	}
	return nil
}

func (f *fakeDisk) LogicalPages() int  { return f.pages }
func (f *fakeDisk) InGC(sim.Time) bool { return false }

func (f *fakeDisk) ReadError(now sim.Time, page, pages int) bool {
	for p := page; p < page+pages; p++ {
		if f.badPages[p] {
			return true
		}
	}
	return false
}

func fixture(t *testing.T, lay raid.Layout) (*sim.Engine, *raid.Array, []*fakeDisk) {
	t.Helper()
	eng := sim.NewEngine()
	fakes := make([]*fakeDisk, lay.Disks)
	disks := make([]raid.Disk, lay.Disks)
	for i := range fakes {
		fakes[i] = &fakeDisk{eng: eng, pages: lay.DiskPages, readLat: 10 * sim.Microsecond, writeLat: 100 * sim.Microsecond}
		disks[i] = fakes[i]
	}
	arr, err := raid.NewArray(eng, lay, disks)
	if err != nil {
		t.Fatal(err)
	}
	return eng, arr, fakes
}

func raid5Layout() raid.Layout {
	return raid.Layout{Level: raid.RAID5, Disks: 5, UnitPages: 4, DiskPages: 64}
}

func raid6Layout() raid.Layout {
	return raid.Layout{Level: raid.RAID6, Disks: 6, UnitPages: 4, DiskPages: 64}
}

// spareSinkFor wires every rebuild to a fresh fake spare.
func spareSinkFor(eng *sim.Engine, pages int) func(sim.Time, int) (rebuild.Sink, raid.Disk, error) {
	return func(now sim.Time, fail int) (rebuild.Sink, raid.Disk, error) {
		spare := &fakeDisk{eng: eng, pages: pages, readLat: 10 * sim.Microsecond, writeLat: 100 * sim.Microsecond}
		return &rebuild.SpareSink{Disk: spare}, spare, nil
	}
}

func TestPlanValidate(t *testing.T) {
	// One case per error branch of Validate, asserting the branch that
	// fired by its message — a later branch accepting what an earlier one
	// should have rejected is a bug this table catches.
	cases := []struct {
		name string
		plan Plan
		want string
	}{
		{"failure disk too high", Plan{Failures: []DiskFailure{{Disk: 9, At: 0}}}, "failure targets disk 9"},
		{"failure disk negative", Plan{Failures: []DiskFailure{{Disk: -1, At: 0}}}, "failure targets disk -1"},
		{"failure at negative time", Plan{Failures: []DiskFailure{{Disk: 0, At: -1}}}, "negative time"},
		{"slowdown disk too high", Plan{Slowdowns: []Slowdown{{Disk: 5, Duration: 1}}}, "slowdown targets disk 5"},
		{"slowdown disk negative", Plan{Slowdowns: []Slowdown{{Disk: -1, Duration: 1}}}, "slowdown targets disk -1"},
		{"slowdown channel below -1", Plan{Slowdowns: []Slowdown{{Disk: 0, Channel: -2, Duration: 1}}}, "use -1 for all"},
		{"slowdown channel too high", Plan{Slowdowns: []Slowdown{{Disk: 0, Channel: 8, Duration: 1}}}, "channel 8 of 8"},
		{"slowdown negative start", Plan{Slowdowns: []Slowdown{{Disk: 0, Start: -1, Duration: 1}}}, "invalid window/extra"},
		{"slowdown zero duration", Plan{Slowdowns: []Slowdown{{Disk: 0, Duration: 0}}}, "invalid window/extra"},
		{"slowdown negative extra", Plan{Slowdowns: []Slowdown{{Disk: 0, Duration: 1, Extra: -1}}}, "invalid window/extra"},
		{"URE rate at 1", Plan{UREPerPageRead: 1}, "UREPerPageRead 1 outside"},
		{"URE rate above 1", Plan{UREPerPageRead: 1.5}, "UREPerPageRead 1.5 outside"},
		{"URE rate negative", Plan{UREPerPageRead: -0.1}, "UREPerPageRead -0.1 outside"},
		{"URE rate NaN", Plan{UREPerPageRead: math.NaN()}, "UREPerPageRead NaN outside"},
		{"latent rate negative", Plan{LatentPageRate: -0.1}, "LatentPageRate -0.1 outside"},
		{"latent rate at 1", Plan{LatentPageRate: 1}, "LatentPageRate 1 outside"},
		{"latent rate NaN", Plan{LatentPageRate: math.NaN()}, "LatentPageRate NaN outside"},
		{"corrupt rate at 1", Plan{CorruptPageRate: 1}, "CorruptPageRate 1 outside"},
		{"corrupt rate negative", Plan{CorruptPageRate: -0.5}, "CorruptPageRate -0.5 outside"},
		{"corrupt rate NaN", Plan{CorruptPageRate: math.NaN()}, "CorruptPageRate NaN outside"},
		{"transient rate at 1", Plan{TransientReadErrorRate: 1}, "TransientReadErrorRate 1 outside"},
		{"transient rate negative", Plan{TransientReadErrorRate: -1e-6}, "TransientReadErrorRate -1e-06 outside"},
		{"transient rate NaN", Plan{TransientReadErrorRate: math.NaN()}, "TransientReadErrorRate NaN outside"},
		{"negative repair delay", Plan{RepairDelay: -1}, "negative RepairDelay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(5, 8)
			if err == nil {
				t.Fatalf("invalid plan %+v accepted", tc.plan)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the offending field (want substring %q)", err, tc.want)
			}
		})
	}
	good := Plan{
		Failures:               []DiskFailure{{Disk: 2, At: sim.Second}},
		Slowdowns:              []Slowdown{{Disk: 0, Channel: -1, Start: 0, Duration: sim.Second, Extra: sim.Microsecond}},
		UREPerPageRead:         1e-4,
		LatentPageRate:         1e-3,
		CorruptPageRate:        1e-3,
		TransientReadErrorRate: 1e-4,
		RepairDelay:            sim.Millisecond,
		RebuildMBps:            10,
	}
	if err := good.Validate(5, 8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	// channels <= 0 skips the per-channel range check.
	wide := Plan{Slowdowns: []Slowdown{{Disk: 0, Channel: 99, Start: 0, Duration: 1}}}
	if err := wide.Validate(5, 0); err != nil {
		t.Fatalf("channel check not skipped with unknown geometry: %v", err)
	}
	if good.Empty() {
		t.Fatal("non-empty plan reported Empty")
	}
	if !(Plan{}).Empty() {
		t.Fatal("zero plan not Empty")
	}
	if (Plan{TransientReadErrorRate: 1e-4}).Empty() {
		t.Fatal("transient-only plan reported Empty")
	}
}

func TestInjectorSlowdownWindows(t *testing.T) {
	p := Plan{Slowdowns: []Slowdown{
		{Disk: 1, Channel: -1, Start: 100, Duration: 50, Extra: 7},
		{Disk: 1, Channel: 3, Start: 120, Duration: 10, Extra: 5},
		{Disk: 0, Channel: -1, Start: 0, Duration: 1000, Extra: 99},
	}}
	inj := NewInjector(1, 8192, p)
	if d := inj.OpDelay(99, 0, false); d != 0 {
		t.Fatalf("delay before window = %v, want 0", d)
	}
	if d := inj.OpDelay(100, 0, true); d != 7 {
		t.Fatalf("delay in window = %v, want 7", d)
	}
	if d := inj.OpDelay(125, 3, false); d != 12 {
		t.Fatalf("overlapping windows on channel 3 = %v, want 12", d)
	}
	if d := inj.OpDelay(125, 2, false); d != 7 {
		t.Fatalf("channel filter leaked: delay = %v, want 7", d)
	}
	if d := inj.OpDelay(150, 0, false); d != 0 {
		t.Fatalf("delay after window = %v, want 0", d)
	}
}

func TestInjectorUREDeterminism(t *testing.T) {
	p := Plan{UREPerPageRead: 0.05, Seed: 42}
	a, b := NewInjector(3, 8192, p), NewInjector(3, 8192, p)
	hits := 0
	for i := 0; i < 1000; i++ {
		ra, rb := a.ReadError(0, i, 8), b.ReadError(0, i, 8)
		if ra != rb {
			t.Fatalf("draw %d diverged between identical injectors", i)
		}
		if ra {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("0.05/page over 8-page reads never errored in 1000 draws")
	}
	// Different devices draw different streams.
	other := NewInjector(4, 8192, p)
	same := true
	aa := NewInjector(3, 8192, p)
	for i := 0; i < 200 && same; i++ {
		if aa.ReadError(0, i, 8) != other.ReadError(0, i, 8) {
			same = false
		}
	}
	if same {
		t.Fatal("devices 3 and 4 drew identical URE streams")
	}
}

func TestInjectorZeroRateNeverErrors(t *testing.T) {
	inj := NewInjector(0, 8192, Plan{})
	for i := 0; i < 100; i++ {
		if inj.ReadError(0, i, 128) {
			t.Fatal("zero URE rate produced an error")
		}
	}
}

func TestControllerFailureRebuildRepairCycle(t *testing.T) {
	lay := raid5Layout()
	eng, arr, _ := fixture(t, lay)
	plan := Plan{
		Failures:    []DiskFailure{{Disk: 2, At: sim.Millisecond}},
		RepairDelay: sim.Millisecond,
		RebuildMBps: 1000,
	}
	c, err := NewController(eng, arr, nil, plan, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c.SinkFor = spareSinkFor(eng, lay.DiskPages)
	var failedAt, repairedAt sim.Time
	c.OnFail = func(now sim.Time, d int) { failedAt = now }
	c.OnRepair = func(now sim.Time, d int) { repairedAt = now }
	c.Start()
	eng.Run()
	c.Finish(eng.Now())
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Failures != 1 || st.ArrayFailures != 0 || st.Rebuilds != 1 {
		t.Fatalf("stats = %+v, want 1 failure, 1 rebuild", st)
	}
	if arr.Degraded() {
		t.Fatal("array still degraded after repair")
	}
	if failedAt != sim.Millisecond {
		t.Fatalf("failure at %v, want 1ms", failedAt)
	}
	if repairedAt <= failedAt+plan.RepairDelay {
		t.Fatalf("repair at %v not after failure+delay", repairedAt)
	}
	if st.WindowOfVulnerability != repairedAt-failedAt {
		t.Fatalf("WOV = %v, want %v", st.WindowOfVulnerability, repairedAt-failedAt)
	}
	if st.RebuildTime <= 0 || st.RebuildTime >= st.WindowOfVulnerability {
		t.Fatalf("rebuild time %v outside (0, WOV=%v)", st.RebuildTime, st.WindowOfVulnerability)
	}
}

func TestControllerRecordsArrayFailureBeyondTolerance(t *testing.T) {
	lay := raid5Layout()
	eng, arr, _ := fixture(t, lay)
	plan := Plan{Failures: []DiskFailure{
		{Disk: 1, At: sim.Millisecond},
		{Disk: 3, At: 2 * sim.Millisecond}, // RAID5 cannot absorb a second loss
	}}
	c, err := NewController(eng, arr, nil, plan, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Run()
	c.Finish(eng.Now())
	st := c.Stats()
	if st.Failures != 1 || st.ArrayFailures != 1 {
		t.Fatalf("stats = %+v, want 1 absorbed + 1 array failure", st)
	}
	if !arr.Degraded() {
		t.Fatal("array should remain degraded (no rebuild configured)")
	}
	if st.WindowOfVulnerability != eng.Now()-sim.Millisecond {
		t.Fatalf("WOV = %v, want open window to run end %v", st.WindowOfVulnerability, eng.Now()-sim.Millisecond)
	}
}

func TestControllerSecondFailureMidRebuildRAID6(t *testing.T) {
	lay := raid6Layout()
	eng, arr, _ := fixture(t, lay)
	plan := Plan{
		Failures: []DiskFailure{
			{Disk: 0, At: sim.Millisecond},
			{Disk: 4, At: 2 * sim.Millisecond},
		},
		RepairDelay: 0,
		// Slow enough that the second failure lands mid-rebuild: one unit
		// per interval, 16 stripes, ~unit at 100µs write latency.
		RebuildMBps: 1,
	}
	c, err := NewController(eng, arr, nil, plan, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c.SinkFor = spareSinkFor(eng, lay.DiskPages)
	c.Start()
	eng.Run()
	c.Finish(eng.Now())
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Failures != 2 || st.ArrayFailures != 0 {
		t.Fatalf("stats = %+v, want 2 absorbed failures", st)
	}
	if st.Rebuilds != 2 {
		t.Fatalf("rebuilds = %d, want 2 (queued one at a time)", st.Rebuilds)
	}
	if arr.Degraded() {
		t.Fatal("array still degraded after both repairs")
	}
	if st.WindowOfVulnerability <= 0 {
		t.Fatal("no window of vulnerability recorded")
	}
}

func TestControllerDuplicateFailureIgnored(t *testing.T) {
	lay := raid5Layout()
	eng, arr, _ := fixture(t, lay)
	plan := Plan{Failures: []DiskFailure{
		{Disk: 2, At: sim.Millisecond},
		{Disk: 2, At: 2 * sim.Millisecond},
	}}
	c, err := NewController(eng, arr, nil, plan, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	eng.Run()
	c.Finish(eng.Now())
	st := c.Stats()
	if st.Failures != 1 || st.ArrayFailures != 0 {
		t.Fatalf("stats = %+v, want the duplicate failure ignored", st)
	}
	if !arr.Degraded() || arr.Failed() != 2 {
		t.Fatalf("array state wrong after duplicate failure")
	}
}
