package fault

import (
	"fmt"

	"gcsteering/internal/obs"
	"gcsteering/internal/raid"
	"gcsteering/internal/rebuild"
	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
)

// Stats aggregates what the controller observed over one run.
type Stats struct {
	// Failures counts whole-device failures the layout absorbed;
	// ArrayFailures those beyond its fault tolerance (the RAID5 second
	// failure: the array is lost, which the run records instead of
	// silently reconstructing garbage).
	Failures      int64
	ArrayFailures int64
	// Rebuilds counts completed automatic reconstructions.
	Rebuilds int64
	// RebuildUREs / RebuildUREsRepaired / DataLossUnits fold in the
	// rebuilders' latent-error accounting (see rebuild.Stats).
	RebuildUREs         int64
	RebuildUREsRepaired int64
	DataLossUnits       int64
	// WindowOfVulnerability is the total simulated time the array spent
	// degraded — from each absorbed failure until the rebuild that
	// restored full redundancy (or the end of the run). It is the paper's
	// §III-D reliability metric: while the window is open, one more loss
	// is data loss.
	WindowOfVulnerability sim.Time
	// RebuildTime is the total wall-clock time rebuilds were running.
	RebuildTime sim.Time
}

// Controller executes a Plan against one assembled array: it installs the
// per-device injectors, schedules the failures, and drives automatic
// repair-and-rebuild through internal/rebuild.
type Controller struct {
	eng      *sim.Engine
	arr      *raid.Array
	plan     Plan
	injs     []*Injector
	pageSize int

	// SinkFor supplies, per failure, the rebuild sink and the replacement
	// disk RepairDisk installs once that rebuild completes (nil keeps the
	// failed slot's Disk object). Required when the plan enables automatic
	// rebuild; the facade wires staging-aware sinks here.
	SinkFor func(now sim.Time, failDisk int) (rebuild.Sink, raid.Disk, error)
	// OnFail / OnRebuildStart / OnRepair, when non-nil, observe the fault
	// lifecycle (the facade uses them to keep the steering controller's
	// failed-home and rebuilding state in sync).
	OnFail         func(now sim.Time, disk int)
	OnRebuildStart func(now sim.Time, disk int)
	OnRepair       func(now sim.Time, disk int)

	// Trace, when non-nil, receives disk-fail and disk-repair events. The
	// rebuilders the controller launches inherit it.
	Trace *obs.Tracer

	stats         Stats
	degradedSince sim.Time // -1 when fully redundant
	rebuilding    bool
	finished      bool
	err           error // first asynchronous error (surfaced by Err)
}

// NewController validates the plan and prepares a controller. devs are the
// array members in disk order; their fault hooks are installed immediately
// so warm traffic before Start is already subject to slowdowns and UREs.
func NewController(eng *sim.Engine, arr *raid.Array, devs []*ssd.Device, plan Plan, pageSize int) (*Controller, error) {
	channels := 0
	if len(devs) > 0 {
		channels = devs[0].Config().Geometry.Channels
	}
	if err := plan.Validate(arr.Layout().Disks, channels); err != nil {
		return nil, err
	}
	if pageSize <= 0 {
		return nil, fmt.Errorf("fault: page size %d", pageSize)
	}
	c := &Controller{
		eng:           eng,
		arr:           arr,
		plan:          plan,
		injs:          Install(devs, plan),
		pageSize:      pageSize,
		degradedSince: -1,
	}
	return c, nil
}

// Stats returns a snapshot of the controller's accounting.
func (c *Controller) Stats() Stats { return c.stats }

// Injectors exposes the per-device injectors the controller installed —
// the power-loss replay adds torn-page defects to them after a remount.
func (c *Controller) Injectors() []*Injector { return c.injs }

// Err returns the first error a scheduled fault event hit (a sink factory
// failure, say); nil on a clean run.
func (c *Controller) Err() error { return c.err }

// Start schedules the plan's failures on the engine. Call once, before
// running the engine.
func (c *Controller) Start() {
	for _, f := range c.plan.Failures {
		f := f
		c.eng.At(f.At, func(now sim.Time) { c.fail(now, f.Disk) })
	}
}

// fail injects one whole-device failure.
func (c *Controller) fail(now sim.Time, disk int) {
	if !c.arr.Alive(disk) {
		return // already failed (duplicate schedule)
	}
	if err := c.arr.FailDisk(disk); err != nil {
		// Beyond the layout's tolerance: the array is lost. Record it and
		// keep simulating — the run's results carry the verdict.
		c.stats.ArrayFailures++
		if c.Trace.Enabled() {
			c.Trace.Emit(now, obs.Event{Kind: obs.KDiskFail, Dev: int32(disk), Page: -1, Aux: 1})
		}
		return
	}
	c.stats.Failures++
	if c.Trace.Enabled() {
		c.Trace.Emit(now, obs.Event{Kind: obs.KDiskFail, Dev: int32(disk), Page: -1})
	}
	if disk < len(c.injs) {
		c.injs[disk].markFailed()
	}
	if c.degradedSince < 0 {
		c.degradedSince = now
	}
	if c.OnFail != nil {
		c.OnFail(now, disk)
	}
	c.maybeStartRebuild(now)
}

// maybeStartRebuild launches the next reconstruction after the hot-spare
// activation delay, one rebuild at a time (a second failure mid-rebuild
// queues behind the first, as md does).
func (c *Controller) maybeStartRebuild(now sim.Time) {
	if c.plan.RebuildMBps <= 0 || c.rebuilding || !c.arr.Degraded() {
		return
	}
	c.rebuilding = true
	c.eng.At(now+c.plan.RepairDelay, c.startRebuild)
}

func (c *Controller) startRebuild(now sim.Time) {
	disk := c.arr.Failed()
	if disk < 0 { // repaired by other means in the interim
		c.rebuilding = false
		return
	}
	if c.SinkFor == nil {
		c.fault("fault: plan enables rebuild but no SinkFor is wired")
		return
	}
	sink, replacement, err := c.SinkFor(now, disk)
	if err != nil {
		c.fault(fmt.Sprintf("fault: sink for disk %d: %v", disk, err))
		return
	}
	rb, err := rebuild.New(c.eng, c.arr, sink, c.plan.RebuildMBps, c.pageSize)
	if err != nil {
		c.fault(fmt.Sprintf("fault: rebuild of disk %d: %v", disk, err))
		return
	}
	rb.Trace = c.Trace
	start := now
	rb.OnComplete = func(end sim.Time) {
		rs := rb.Stats()
		c.stats.Rebuilds++
		c.stats.RebuildTime += end - start
		c.stats.RebuildUREs += rs.UREs
		c.stats.RebuildUREsRepaired += rs.UREsRepaired
		c.stats.DataLossUnits += rs.DataLossUnits
		if err := c.arr.RepairDisk(replacement); err != nil {
			c.fault(fmt.Sprintf("fault: repair of disk %d: %v", disk, err))
			return
		}
		if c.Trace.Enabled() {
			c.Trace.Emit(end, obs.Event{Kind: obs.KDiskRepair, Dev: int32(disk), Page: -1})
		}
		if c.OnRepair != nil {
			c.OnRepair(end, disk)
		}
		if !c.arr.Degraded() && c.degradedSince >= 0 {
			c.stats.WindowOfVulnerability += end - c.degradedSince
			c.degradedSince = -1
		}
		c.rebuilding = false
		// A failure that arrived mid-rebuild is still waiting.
		c.maybeStartRebuild(end)
	}
	if c.OnRebuildStart != nil {
		c.OnRebuildStart(now, disk)
	}
	rb.Start(now)
}

// fault records the first asynchronous error and stops rebuilding.
func (c *Controller) fault(msg string) {
	if c.err == nil {
		c.err = fmt.Errorf("%s", msg)
	}
	c.rebuilding = false
}

// Finish closes the books at the end of the run: a still-open degraded
// window extends the window of vulnerability to now. Call after the engine
// has drained.
func (c *Controller) Finish(now sim.Time) {
	if c.finished {
		return
	}
	c.finished = true
	if c.degradedSince >= 0 {
		c.stats.WindowOfVulnerability += now - c.degradedSince
		c.degradedSince = -1
	}
}
