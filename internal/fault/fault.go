// Package fault implements deterministic fault injection for the simulated
// SSD array: an event-scheduled plan of whole-device failures, latent
// sector errors (unrecoverable read errors) drawn from per-device RNGs,
// and transient per-channel latency spikes (externally-observed "GC
// storms" and fail-slow devices), plus a controller that executes the plan
// against a live array and triggers automatic repair-and-rebuild through
// internal/rebuild.
//
// Everything is driven by the simulation engine and seeded from the run's
// seed, so a fault-injected experiment is exactly as reproducible as a
// healthy one — the property that turns reliability claims (window of
// vulnerability, degraded-mode latency, rebuild time) into scheduled,
// repeatable measurements instead of ad-hoc test code.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
)

// DiskFailure schedules one whole-device failure.
type DiskFailure struct {
	Disk int      // member index
	At   sim.Time // simulated instant of the failure
}

// Slowdown is a transient latency spike on one device: every page op on
// the affected channels pays Extra on top of its service time while
// [Start, Start+Duration) is in effect. A window spanning the whole run
// models a fail-slow device; a short window models an externally-observed
// GC storm or firmware hiccup.
type Slowdown struct {
	Disk     int
	Channel  int // -1 applies to every channel of the device
	Start    sim.Time
	Duration sim.Time
	Extra    sim.Time // extra service time per page op
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	// Failures are injected at their scheduled instants, in time order.
	// A failure the layout cannot absorb (beyond its fault tolerance) is
	// recorded as an array failure — data loss — instead of panicking the
	// simulation.
	Failures []DiskFailure
	// Slowdowns perturb the device op path while their windows are open.
	Slowdowns []Slowdown
	// UREPerPageRead is the probability that reading one page surfaces a
	// latent sector error. Real drives quote one unrecoverable error per
	// 1e14–1e16 bits read; simulation-scale experiments use much larger
	// values so the rare event actually occurs within a short trace.
	UREPerPageRead float64
	// LatentPageRate seeds this fraction of each device's pages as
	// persistent latent sector errors at run start: every read touching a
	// marked page surfaces an unrecoverable read error until the page is
	// explicitly repaired (the patrol scrubber's in-place rewrite). Unlike
	// the memoryless UREPerPageRead draws, these are the grown defects a
	// scrub pass can find and fix before a rebuild trips over them.
	LatentPageRate float64
	// CorruptPageRate seeds this fraction of each device's pages as
	// silently corrupted: the device returns bad data without an error.
	// Only end-to-end checksum verification (raid.Array.VerifyReads, the
	// scrubber) detects them; without it the corruption goes unnoticed.
	CorruptPageRate float64
	// TransientReadErrorRate is the per-page probability that one read
	// *attempt* fails transiently (a command timeout or a correctable blip
	// the drive's firmware resolves on the spot). Unlike UREPerPageRead,
	// each attempt draws independently — a bounded retry of the same extent
	// succeeds with high probability, so the array's retry path, not its
	// reconstruction path, absorbs these.
	TransientReadErrorRate float64
	// RepairDelay is the hot-spare activation lag between a failure and
	// the automatic rebuild start.
	RepairDelay sim.Time
	// RebuildMBps caps reconstruction bandwidth. Zero or negative disables
	// automatic rebuild: the array stays degraded.
	RebuildMBps float64
	// Seed derives the per-device RNG streams for URE draws and the
	// persistent latent/corrupt page sets.
	Seed int64
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return len(p.Failures) == 0 && len(p.Slowdowns) == 0 &&
		p.UREPerPageRead <= 0 && p.LatentPageRate <= 0 && p.CorruptPageRate <= 0 &&
		p.TransientReadErrorRate <= 0
}

// validRate reports whether r is a usable per-page probability. NaN fails
// both of the naive `< 0 || >= 1` comparisons, so it must be rejected
// explicitly.
func validRate(r float64) bool {
	return !math.IsNaN(r) && r >= 0 && r < 1
}

// Validate reports plan errors against an array of `disks` member disks,
// each with `channels` flash channels. channels <= 0 skips the per-channel
// range check (for callers that cannot know the device geometry).
func (p Plan) Validate(disks, channels int) error {
	for _, f := range p.Failures {
		if f.Disk < 0 || f.Disk >= disks {
			return fmt.Errorf("fault: failure targets disk %d of %d", f.Disk, disks)
		}
		if f.At < 0 {
			return fmt.Errorf("fault: failure of disk %d at negative time %v", f.Disk, f.At)
		}
	}
	for _, s := range p.Slowdowns {
		if s.Disk < 0 || s.Disk >= disks {
			return fmt.Errorf("fault: slowdown targets disk %d of %d", s.Disk, disks)
		}
		if s.Channel < -1 {
			return fmt.Errorf("fault: slowdown on disk %d targets channel %d (use -1 for all)", s.Disk, s.Channel)
		}
		if channels > 0 && s.Channel >= channels {
			return fmt.Errorf("fault: slowdown on disk %d targets channel %d of %d", s.Disk, s.Channel, channels)
		}
		if s.Start < 0 || s.Duration <= 0 || s.Extra < 0 {
			return fmt.Errorf("fault: slowdown on disk %d has invalid window/extra", s.Disk)
		}
	}
	if !validRate(p.UREPerPageRead) {
		return fmt.Errorf("fault: UREPerPageRead %v outside [0, 1)", p.UREPerPageRead)
	}
	if !validRate(p.LatentPageRate) {
		return fmt.Errorf("fault: LatentPageRate %v outside [0, 1)", p.LatentPageRate)
	}
	if !validRate(p.CorruptPageRate) {
		return fmt.Errorf("fault: CorruptPageRate %v outside [0, 1)", p.CorruptPageRate)
	}
	if !validRate(p.TransientReadErrorRate) {
		return fmt.Errorf("fault: TransientReadErrorRate %v outside [0, 1)", p.TransientReadErrorRate)
	}
	if p.RepairDelay < 0 {
		return fmt.Errorf("fault: negative RepairDelay %v", p.RepairDelay)
	}
	return nil
}

// Injector implements ssd.FaultHook for one device: it applies the plan's
// slowdown windows, draws memoryless latent sector errors from a per-device
// RNG, and carries the persistent per-page defect sets seeded from
// LatentPageRate/CorruptPageRate. Persistent defects survive host rewrites
// (the defective physical region keeps resurfacing) until Repair clears
// them — the pessimistic model that isolates the patrol scrubber's effect.
type Injector struct {
	dev        int
	urePerPage float64
	rng        *rand.Rand
	transient  float64
	trng       *rand.Rand   // independent stream for transient-attempt draws
	slow       []Slowdown   // this device's windows only
	bad        map[int]bool // persistent latent sector errors, by page
	corrupt    map[int]bool // persistent silent corruption, by page
	failed     bool         // UREs stop mattering once the whole device is gone
}

// seedPages deterministically picks round(rate*pages) distinct pages from
// [0, pages) using an RNG stream independent of the URE draw stream.
func seedPages(seed, salt int64, dev, pages int, rate float64) map[int]bool {
	if rate <= 0 || pages <= 0 {
		return nil
	}
	n := int(rate*float64(pages) + 0.5)
	if n > pages {
		n = pages
	}
	if n <= 0 {
		return nil
	}
	//lint:allow nodeterm defect-placement stream: seeded from the plan seed, salted per device
	rng := rand.New(rand.NewSource(seed ^ (salt * int64(dev+1))))
	out := make(map[int]bool, n)
	for len(out) < n {
		out[rng.Intn(pages)] = true
	}
	return out
}

// NewInjector builds the hook for device dev from the plan; pages is the
// device's logical capacity, over which the persistent defect sets are
// seeded. The RNG streams are derived from the plan seed and the device
// index, so runs with the same plan draw identical error sequences
// regardless of how many devices exist or in what order they are asked.
func NewInjector(dev, pages int, p Plan) *Injector {
	inj := &Injector{
		dev:        dev,
		urePerPage: p.UREPerPageRead,
		//lint:allow nodeterm URE stream: plan-seeded, salted per device so device order is irrelevant
		rng:       rand.New(rand.NewSource(p.Seed ^ (0x5851F42D4C957F2D * int64(dev+1)))),
		transient: p.TransientReadErrorRate,
		//lint:allow nodeterm transient-attempt stream: independent of the URE stream by a second salt
		trng:    rand.New(rand.NewSource(p.Seed ^ (0x2545F4914F6CDD1D * int64(dev+1)))),
		bad:     seedPages(p.Seed, 0x1E3779B97F4A7C15, dev, pages, p.LatentPageRate),
		corrupt: seedPages(p.Seed, 0x61C8864680B583EB, dev, pages, p.CorruptPageRate),
	}
	for _, s := range p.Slowdowns {
		if s.Disk == dev {
			inj.slow = append(inj.slow, s)
		}
	}
	return inj
}

// hitRange reports whether any page of [lpn, lpn+pages) is in the set.
func hitRange(m map[int]bool, lpn, pages int) bool {
	if len(m) == 0 {
		return false
	}
	for p := lpn; p < lpn+pages; p++ {
		if m[p] {
			return true
		}
	}
	return false
}

// OpDelay implements ssd.FaultHook: the sum of all open slowdown windows
// covering this channel at now.
func (i *Injector) OpDelay(now sim.Time, channel int, write bool) sim.Time {
	var extra sim.Time
	for _, s := range i.slow {
		if (s.Channel < 0 || s.Channel == channel) && now >= s.Start && now < s.Start+s.Duration {
			extra += s.Extra
		}
	}
	return extra
}

// ReadError implements ssd.FaultHook. A persistent latent page in the range
// always errors — checked first, with no RNG draw, so the memoryless stream
// stays aligned whether or not defects are seeded. Otherwise a Bernoulli
// draw with success probability 1-(1-p)^pages, the chance that at least one
// of the pages hits a latent sector error.
func (i *Injector) ReadError(now sim.Time, lpn, pages int) bool {
	if i.failed {
		return false
	}
	if hitRange(i.bad, lpn, pages) {
		return true
	}
	if i.urePerPage <= 0 {
		return false
	}
	p := 1 - math.Pow(1-i.urePerPage, float64(pages))
	return i.rng.Float64() < p
}

// TransientReadError implements ssd.TransientHook. Each call is an
// independent Bernoulli draw with success probability 1-(1-p)^pages — the
// chance at least one page of the attempt hits a transient blip — from a
// stream separate from the URE stream, so enabling one rate never shifts
// the other's sequence. A zero rate draws nothing at all, keeping
// retry-enabled healthy runs byte-identical to the baseline.
func (i *Injector) TransientReadError(now sim.Time, lpn, pages int) bool {
	if i.failed || i.transient <= 0 {
		return false
	}
	p := 1 - math.Pow(1-i.transient, float64(pages))
	return i.trng.Float64() < p
}

// LatentError implements ssd.ScrubHook: whether [lpn, lpn+pages) holds a
// persistent latent sector error. Unlike ReadError it draws no RNG, so the
// scrubber can probe without perturbing the URE stream.
func (i *Injector) LatentError(lpn, pages int) bool {
	return !i.failed && hitRange(i.bad, lpn, pages)
}

// VerifyError implements ssd.ScrubHook: whether a checksum verification of
// [lpn, lpn+pages) would fail from silent corruption.
func (i *Injector) VerifyError(now sim.Time, lpn, pages int) bool {
	return !i.failed && hitRange(i.corrupt, lpn, pages)
}

// Repair implements ssd.ScrubHook: clears every persistent defect in
// [lpn, lpn+pages) — the effect of rewriting the range from redundancy —
// and reports how many latent and corrupt pages were cleared.
func (i *Injector) Repair(lpn, pages int) (latent, corrupt int) {
	for p := lpn; p < lpn+pages; p++ {
		if i.bad[p] {
			delete(i.bad, p)
			latent++
		}
		if i.corrupt[p] {
			delete(i.corrupt, p)
			corrupt++
		}
	}
	return latent, corrupt
}

// SlowAt implements ssd.SlowHook: whether any slowdown window on this
// device is open at now (the array's fail-slow signal for hedged reads).
func (i *Injector) SlowAt(now sim.Time) bool {
	for _, s := range i.slow {
		if now >= s.Start && now < s.Start+s.Duration {
			return true
		}
	}
	return false
}

// BadPages returns the number of persistent latent (and corrupt) pages
// still outstanding — what a complete scrub pass should drive to zero.
func (i *Injector) BadPages() (latent, corrupt int) {
	return len(i.bad), len(i.corrupt)
}

// Tear marks the given pages as torn: a power loss interrupted their
// program mid-flight, so the flash holds garbage that fails its CRC32-C on
// read. Torn pages join the persistent corrupt set — detected by checksum
// verification and the resync/scrub walkers, cleared by Repair.
func (i *Injector) Tear(pages []int) {
	if len(pages) == 0 {
		return
	}
	if i.corrupt == nil {
		i.corrupt = make(map[int]bool, len(pages))
	}
	for _, p := range pages {
		i.corrupt[p] = true
	}
}

// markFailed silences further URE draws (the array no longer reads the
// device, but defensive code paths may still probe it).
func (i *Injector) markFailed() { i.failed = true }

// Install attaches injectors built from the plan to every device and
// returns them indexed by device. Devices outside the slice (a dedicated
// spare, say) can be given their own injector with NewInjector.
func Install(devs []*ssd.Device, p Plan) []*Injector {
	out := make([]*Injector, len(devs))
	for i, d := range devs {
		out[i] = NewInjector(i, d.LogicalPages(), p)
		d.Fault = out[i]
	}
	return out
}
