// Package fault implements deterministic fault injection for the simulated
// SSD array: an event-scheduled plan of whole-device failures, latent
// sector errors (unrecoverable read errors) drawn from per-device RNGs,
// and transient per-channel latency spikes (externally-observed "GC
// storms" and fail-slow devices), plus a controller that executes the plan
// against a live array and triggers automatic repair-and-rebuild through
// internal/rebuild.
//
// Everything is driven by the simulation engine and seeded from the run's
// seed, so a fault-injected experiment is exactly as reproducible as a
// healthy one — the property that turns reliability claims (window of
// vulnerability, degraded-mode latency, rebuild time) into scheduled,
// repeatable measurements instead of ad-hoc test code.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
)

// DiskFailure schedules one whole-device failure.
type DiskFailure struct {
	Disk int      // member index
	At   sim.Time // simulated instant of the failure
}

// Slowdown is a transient latency spike on one device: every page op on
// the affected channels pays Extra on top of its service time while
// [Start, Start+Duration) is in effect. A window spanning the whole run
// models a fail-slow device; a short window models an externally-observed
// GC storm or firmware hiccup.
type Slowdown struct {
	Disk     int
	Channel  int // -1 applies to every channel of the device
	Start    sim.Time
	Duration sim.Time
	Extra    sim.Time // extra service time per page op
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	// Failures are injected at their scheduled instants, in time order.
	// A failure the layout cannot absorb (beyond its fault tolerance) is
	// recorded as an array failure — data loss — instead of panicking the
	// simulation.
	Failures []DiskFailure
	// Slowdowns perturb the device op path while their windows are open.
	Slowdowns []Slowdown
	// UREPerPageRead is the probability that reading one page surfaces a
	// latent sector error. Real drives quote one unrecoverable error per
	// 1e14–1e16 bits read; simulation-scale experiments use much larger
	// values so the rare event actually occurs within a short trace.
	UREPerPageRead float64
	// RepairDelay is the hot-spare activation lag between a failure and
	// the automatic rebuild start.
	RepairDelay sim.Time
	// RebuildMBps caps reconstruction bandwidth. Zero or negative disables
	// automatic rebuild: the array stays degraded.
	RebuildMBps float64
	// Seed derives the per-device RNG streams for URE draws.
	Seed int64
}

// Empty reports whether the plan injects nothing at all.
func (p Plan) Empty() bool {
	return len(p.Failures) == 0 && len(p.Slowdowns) == 0 && p.UREPerPageRead <= 0
}

// Validate reports plan errors against an array of n member disks.
func (p Plan) Validate(n int) error {
	for _, f := range p.Failures {
		if f.Disk < 0 || f.Disk >= n {
			return fmt.Errorf("fault: failure targets disk %d of %d", f.Disk, n)
		}
		if f.At < 0 {
			return fmt.Errorf("fault: failure of disk %d at negative time %v", f.Disk, f.At)
		}
	}
	for _, s := range p.Slowdowns {
		if s.Disk < 0 || s.Disk >= n {
			return fmt.Errorf("fault: slowdown targets disk %d of %d", s.Disk, n)
		}
		if s.Start < 0 || s.Duration <= 0 || s.Extra < 0 {
			return fmt.Errorf("fault: slowdown on disk %d has invalid window/extra", s.Disk)
		}
	}
	if p.UREPerPageRead < 0 || p.UREPerPageRead >= 1 {
		return fmt.Errorf("fault: UREPerPageRead %v outside [0, 1)", p.UREPerPageRead)
	}
	if p.RepairDelay < 0 {
		return fmt.Errorf("fault: negative RepairDelay %v", p.RepairDelay)
	}
	return nil
}

// Injector implements ssd.FaultHook for one device: it applies the plan's
// slowdown windows and draws latent sector errors from a per-device RNG.
type Injector struct {
	dev        int
	urePerPage float64
	rng        *rand.Rand
	slow       []Slowdown // this device's windows only
	failed     bool       // UREs stop mattering once the whole device is gone
}

// NewInjector builds the hook for device dev from the plan. The RNG stream
// is derived from the plan seed and the device index, so runs with the
// same plan draw identical error sequences regardless of how many devices
// exist or in what order they are asked.
func NewInjector(dev int, p Plan) *Injector {
	inj := &Injector{
		dev:        dev,
		urePerPage: p.UREPerPageRead,
		rng:        rand.New(rand.NewSource(p.Seed ^ (0x5851F42D4C957F2D * int64(dev+1)))),
	}
	for _, s := range p.Slowdowns {
		if s.Disk == dev {
			inj.slow = append(inj.slow, s)
		}
	}
	return inj
}

// OpDelay implements ssd.FaultHook: the sum of all open slowdown windows
// covering this channel at now.
func (i *Injector) OpDelay(now sim.Time, channel int, write bool) sim.Time {
	var extra sim.Time
	for _, s := range i.slow {
		if (s.Channel < 0 || s.Channel == channel) && now >= s.Start && now < s.Start+s.Duration {
			extra += s.Extra
		}
	}
	return extra
}

// ReadError implements ssd.FaultHook: a Bernoulli draw with success
// probability 1-(1-p)^pages, the chance that at least one of the pages
// hits a latent sector error.
func (i *Injector) ReadError(now sim.Time, lpn, pages int) bool {
	if i.urePerPage <= 0 || i.failed {
		return false
	}
	p := 1 - math.Pow(1-i.urePerPage, float64(pages))
	return i.rng.Float64() < p
}

// markFailed silences further URE draws (the array no longer reads the
// device, but defensive code paths may still probe it).
func (i *Injector) markFailed() { i.failed = true }

// Install attaches injectors built from the plan to every device and
// returns them indexed by device. Devices outside the slice (a dedicated
// spare, say) can be given their own injector with NewInjector.
func Install(devs []*ssd.Device, p Plan) []*Injector {
	out := make([]*Injector, len(devs))
	for i, d := range devs {
		out[i] = NewInjector(i, p)
		d.Fault = out[i]
	}
	return out
}
