// Package gcsteering is a discrete-event simulation library reproducing
// "GC-aware Request Steering with Improved Performance and Reliability for
// SSD-based RAIDs" (Wu et al., IPDPS 2018).
//
// It provides, end to end: a flash SSD simulator with page-mapped FTL and
// greedy garbage collection, a RAID0/1/5/6 engine with real parity codecs,
// the LGC and GGC baseline GC-coordination schemes, the GC-Steering scheme
// itself (D_Table, R_LRU, dedicated or reserved staging space, request
// redirection, reclaim), a failure-recovery engine with the paper's
// parallel reconstruction workflow, synthetic workload generators matched
// to the paper's Table I, and trace parsers for the MSR Cambridge and
// SPC-1 formats.
//
// Quick start:
//
//	cfg := gcsteering.DefaultConfig()
//	cfg.Scheme = gcsteering.SchemeSteering
//	sys, err := gcsteering.New(cfg)
//	tr, err := sys.GenerateWorkload("Fin1", 20000)
//	res, err := sys.Replay(tr)
//	fmt.Println(res.Latency)
package gcsteering

import (
	"fmt"
	"math"

	"gcsteering/internal/fault"
	"gcsteering/internal/flash"
	"gcsteering/internal/raid"
	"gcsteering/internal/sim"
	"gcsteering/internal/ssd"
)

// Scheme selects the GC-handling scheme under test.
type Scheme int

const (
	// SchemeLGC is the baseline: local, uncoordinated GC per SSD.
	SchemeLGC Scheme = iota
	// SchemeGGC is globally coordinated GC (Kim et al.'s Harmonia).
	SchemeGGC
	// SchemeSteering is the paper's GC-aware request steering.
	SchemeSteering
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case SchemeLGC:
		return "LGC"
	case SchemeGGC:
		return "GGC"
	case SchemeSteering:
		return "GC-Steering"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// StagingKind selects where GC-Steering stages redirected data (Fig. 10).
type StagingKind int

const (
	// StagingReserved uses the pre-reserved space of each SSD in the array
	// (the paper's default).
	StagingReserved StagingKind = iota
	// StagingDedicated uses a dedicated spare SSD.
	StagingDedicated
)

// String names the staging configuration as in Fig. 10.
func (k StagingKind) String() string {
	if k == StagingDedicated {
		return "Dedicated"
	}
	return "Reserved"
}

// Level re-exports the RAID levels.
type Level = raid.Level

// RAID levels supported by the array engine.
const (
	RAID0 = raid.RAID0
	RAID1 = raid.RAID1
	RAID5 = raid.RAID5
	RAID6 = raid.RAID6
)

// FlashGeometry re-exports the SSD geometry knobs.
type FlashGeometry = flash.Geometry

// LatencyModel re-exports the flash timing knobs.
type LatencyModel = ssd.LatencyModel

// Config describes one simulated storage system.
type Config struct {
	// Disks is the number of member SSDs in the array.
	Disks int
	// Level is the RAID level (the paper evaluates RAID5; RAID1/6 are the
	// future-work levels and also supported).
	Level Level
	// StripeUnitKB is the stripe unit ("chunk") size in KiB.
	StripeUnitKB int
	// Scheme selects LGC, GGC or GC-Steering.
	Scheme Scheme
	// Staging selects the staging configuration for SchemeSteering.
	Staging StagingKind
	// ReservedFrac is the fraction of each member SSD set aside as
	// reserved space. It is carved out for every scheme so all schemes see
	// an identical array geometry (the paper compares schemes on the same
	// number of SSDs).
	ReservedFrac float64
	// StagingReadFrac splits the staging capacity between hot-read copies
	// and redirected write data.
	StagingReadFrac float64
	// HotFrac caps the popular-read set per disk (paper: 10%).
	HotFrac float64
	// MigrateHotReads and ReclaimMerge toggle the corresponding
	// GC-Steering mechanisms (both on in the paper; ablation knobs here).
	MigrateHotReads bool
	ReclaimMerge    bool
	// MigrateThreshold is how many recent re-reads mark a page popular
	// enough to migrate (0 defaults to 2).
	MigrateThreshold int
	// ScanThresholdPages makes popularity tracking scan-resistant: reads
	// larger than this many pages per member disk are treated as scans and
	// never migrated (0 defaults to 8 — below the stripe unit, so full-unit
	// sub-ops of a large striped read are filtered).
	ScanThresholdPages int
	// ColdStreamStaging places the reserved staging region on a separate
	// FTL write stream (multi-stream style hot/cold separation). Off by
	// default; exposed for ablation studies.
	ColdStreamStaging bool
	// DisableGCAwareWrites turns off the controller's reconstruct-write
	// path for partial-stripe writes whose RMW reads would land on a
	// collecting disk (ablation knob; GC-Steering enables it).
	DisableGCAwareWrites bool

	// Checksums enables end-to-end page-checksum verification on the read
	// path: silent corruption (FaultPlan.CorruptPageRate) is detected and
	// served from RAID redundancy instead of being delivered. Off,
	// corrupted reads pass silently.
	//gcsvet:inert
	Checksums bool
	// HedgedReads races a parity reconstruct-read against direct reads
	// whose home disk is mid-GC or fail-slow and takes the winner — the
	// read-side dual of GC-aware write steering, cutting GC-phase read
	// tail latency at the cost of extra sub-ops. RAID5/6 only.
	//gcsvet:inert
	HedgedReads bool
	// ScrubMBps enables the patrol scrubber at this array-wide read
	// bandwidth cap (MB/s): a background walker verifies every stripe
	// against the seeded defects and repairs bad units in place from
	// redundancy. <= 0 disables scrubbing.
	//gcsvet:inert
	ScrubMBps float64
	// ScrubPasses is the number of full patrol passes per run (<= 0
	// defaults to 1; passes are finite so runs always terminate).
	ScrubPasses int

	// DeadlineUs cancels a user request that has not completed within this
	// many microseconds of simulated time: its queued sub-ops are absorbed
	// on arrival at the array, the request is counted in
	// Results.Robust.DeadlineExceeded, and its response time is recorded as
	// the deadline. <= 0 disables deadlines.
	//gcsvet:inert
	DeadlineUs float64
	// MaxRetries bounds re-issues of a read sub-op that hits a transient
	// read error (FaultPlan.TransientReadErrorRate). 0 gives up on the
	// first error (it is absorbed, not surfaced, mirroring drive-internal
	// retry exhaustion).
	//gcsvet:inert
	MaxRetries int
	// RetryBackoffUs is the base delay before the first retry; it doubles
	// per attempt. 0 with MaxRetries > 0 defaults to 200 µs.
	RetryBackoffUs float64
	// QueueLimit caps concurrently admitted user requests: beyond it the
	// array sheds background load first (hot-read migrations, scrub pacing)
	// and then rejects arrivals outright (Results.Robust.Rejected). <= 0
	// disables admission control.
	//gcsvet:inert
	QueueLimit int
	// RecordBusy makes the system log every background-occupancy window —
	// per-device GC episodes, open health breakers, and active rebuilds —
	// as Results.Busy intervals. The cluster routing tier consumes these as
	// its steering signal (route reads away from arrays that report busy
	// windows). Recording appends to an in-memory slice from hooks that are
	// already wired; it schedules no engine events, so an identically
	// seeded run is unchanged by enabling it.
	//gcsvet:inert
	RecordBusy bool

	// Quarantine enables the per-device health monitor: a circuit breaker
	// per member that opens on sustained fail-slow behaviour (EWMA op
	// latency far above the peers'), steers traffic away exactly like a GC
	// signal while open, and probes half-open with exponential backoff
	// until the device proves healthy again. With no fail-slow member the
	// monitor observes without scheduling anything, so enabling it on a
	// healthy run reproduces the baseline byte for byte.
	//gcsvet:inert
	Quarantine bool

	// Flash is the per-SSD geometry; Latency the flash op timing.
	Flash   FlashGeometry
	Latency LatencyModel
	// GCLowWater/GCHighWater are the free-block watermarks (in blocks)
	// that trigger and terminate a GC episode. ForcedGCVictims is the
	// minimum work a GGC-forced episode performs.
	GCLowWater      int
	GCHighWater     int
	ForcedGCVictims int
	// GCOverheadMs is the fixed per-invocation GC cost in milliseconds
	// charged to all channels at episode start.
	GCOverheadMs float64

	// PrefillOverwrite controls warm-up: after filling the device, this
	// fraction of its pages is overwritten so steady-state GC has victims.
	PrefillOverwrite float64
	// Seed makes the whole simulation deterministic.
	Seed int64

	// Trace, when non-nil, receives the run's structured event stream (GC
	// lifecycle, sub-op fan-out, steering decisions, fault/rebuild events,
	// request arrivals and completions) as JSON lines. Build one with
	// NewTracer and call its Flush method after the run. A nil tracer is
	// free: emit sites pay one nil check. A Tracer belongs to exactly one
	// System — never share it across concurrently replaying systems.
	Trace *Tracer
	// WindowQuantiles enables per-window quantile tracking (and engine
	// queue-depth sampling) in the results' time series, at the cost of one
	// histogram (~5 KB) per active 100 ms window. Off, the series still
	// carries per-window mean/max/count and the gauges.
	//gcsvet:inert
	WindowQuantiles bool

	// Fault configures deterministic fault injection, executed only by
	// System.ReplayWithFaults. The zero value injects nothing.
	Fault FaultPlan

	// PowerLossAtMs, when > 0, cuts the whole array's power at this instant
	// of simulated time: in-flight page programs tear (persisting garbage
	// that fails its CRC32-C), in-flight requests are lost, and the run
	// continues on a remounted array that must resync before (journal on)
	// or while (journal off) serving the rest of the trace. Executed only by
	// ReplayWithPowerLoss; <= 0 leaves every other entry point untouched so
	// default runs stay byte-identical.
	//gcsvet:inert
	PowerLossAtMs float64
	// IntentJournal arms the write-ahead dirty-stripe intent journal for
	// power-loss runs: stripes are marked dirty before the write fan-out and
	// cleared at the stripe barrier, so the post-crash resync walks only the
	// stripes that were actually open at the cut. Off, the remount must
	// full-scrub the array to find torn stripes — the window of
	// vulnerability the journal closes. Only consulted when PowerLossAtMs is
	// set.
	//gcsvet:inert
	IntentJournal bool
	// ResyncMBps caps the post-crash resync read bandwidth (MB/s). <= 0
	// defaults to 200 during power-loss runs and is ignored otherwise.
	//gcsvet:inert
	ResyncMBps float64
}

// DiskFault schedules one whole-device failure for fault-injected runs.
type DiskFault struct {
	// Disk is the member index to fail.
	Disk int
	// AtMs is the injection instant in milliseconds of simulated time.
	AtMs float64
}

// DiskSlowdown is a transient latency spike on one device: every page op
// on the affected channels pays ExtraPerOpUs on top of its service time
// while the window is open. A window spanning the run models a fail-slow
// device; a short one models an externally-observed GC storm.
type DiskSlowdown struct {
	Disk int
	// Channel restricts the spike to one flash channel; -1 hits them all.
	Channel    int
	StartMs    float64
	DurationMs float64
	// ExtraPerOpUs is the added service time per page op, in microseconds.
	ExtraPerOpUs float64
}

// FaultPlan configures deterministic fault injection for one run: device
// failures at scheduled instants, latent sector errors (unrecoverable read
// errors) at a per-page rate, latency spikes, and automatic
// repair-and-rebuild. All randomness derives from the run's Seed, so a
// fault-injected run is exactly as reproducible as a healthy one.
type FaultPlan struct {
	// Failures are whole-device losses. A failure the RAID level cannot
	// absorb is recorded as an array failure (data loss) in the results.
	Failures []DiskFault
	// Slowdowns perturb the device op path while their windows are open.
	Slowdowns []DiskSlowdown
	// UREPerPageRead is the probability that reading one page surfaces a
	// latent sector error. Use simulation-scale rates (1e-5 .. 1e-3); real
	// drives quote ~1 per 1e14-1e16 bits, far too rare for short traces.
	UREPerPageRead float64
	// LatentPageRate seeds this fraction of each device's pages as
	// persistent latent sector errors at run start: reads touching them
	// error until a patrol scrub repairs them in place. Unlike the
	// memoryless UREPerPageRead draws, these are the grown defects a scrub
	// can find and fix before a rebuild trips over them.
	LatentPageRate float64
	// CorruptPageRate seeds this fraction of each device's pages as
	// silently corrupted: reads return bad data without an error, caught
	// only by end-to-end checksums (Config.Checksums) or the scrubber.
	CorruptPageRate float64
	// TransientReadErrorRate is the per-page probability that one read
	// attempt fails transiently: unlike UREPerPageRead the error is not
	// sticky — a retry (Config.MaxRetries) draws independently and usually
	// succeeds. Exhausted retries are absorbed and counted, not surfaced.
	TransientReadErrorRate float64
	// RepairDelayMs is the hot-spare activation lag between a failure and
	// the automatic rebuild start.
	RepairDelayMs float64
	// RebuildMBps caps the automatic rebuild bandwidth; <= 0 disables the
	// rebuild and leaves the array degraded.
	RebuildMBps float64
	// RebuildTarget selects the reconstruction workflow: a dedicated spare
	// or the survivors' reserved space (GC-Steering's parallel workflow).
	RebuildTarget RebuildTarget
}

// Enabled reports whether the plan injects anything.
func (p FaultPlan) Enabled() bool {
	return len(p.Failures) > 0 || len(p.Slowdowns) > 0 || p.UREPerPageRead > 0 ||
		p.LatentPageRate > 0 || p.CorruptPageRate > 0 || p.TransientReadErrorRate > 0
}

// plan lowers the public spec (milliseconds, microseconds) to the internal
// fault schedule (engine nanoseconds), deriving the URE streams from seed.
func (p FaultPlan) plan(seed int64) fault.Plan {
	out := fault.Plan{
		UREPerPageRead:         p.UREPerPageRead,
		LatentPageRate:         p.LatentPageRate,
		CorruptPageRate:        p.CorruptPageRate,
		TransientReadErrorRate: p.TransientReadErrorRate,
		RepairDelay:            sim.Time(p.RepairDelayMs * float64(sim.Millisecond)),
		RebuildMBps:            p.RebuildMBps,
		Seed:                   seed,
	}
	for _, f := range p.Failures {
		out.Failures = append(out.Failures, fault.DiskFailure{
			Disk: f.Disk,
			At:   sim.Time(f.AtMs * float64(sim.Millisecond)),
		})
	}
	for _, s := range p.Slowdowns {
		out.Slowdowns = append(out.Slowdowns, fault.Slowdown{
			Disk:     s.Disk,
			Channel:  s.Channel,
			Start:    sim.Time(s.StartMs * float64(sim.Millisecond)),
			Duration: sim.Time(s.DurationMs * float64(sim.Millisecond)),
			Extra:    sim.Time(s.ExtraPerOpUs * float64(sim.Microsecond)),
		})
	}
	return out
}

// DefaultConfig mirrors the paper's main setup: RAID5 over 5 SSDs with a
// 64 KB stripe unit, GC-Steering with reserved staging.
func DefaultConfig() Config {
	g := flash.DefaultGeometry()
	// The calibrated simulation geometry: 128 MB of raw flash per member
	// (256 blocks × 128 pages × 4 KiB). Small devices keep full experiment
	// grids fast; all shape results in EXPERIMENTS.md were validated at
	// this size.
	g.Blocks = 256
	g.PagesPerBlock = 128
	return Config{
		Disks:           5,
		Level:           RAID5,
		StripeUnitKB:    64,
		Scheme:          SchemeSteering,
		Staging:         StagingReserved,
		ReservedFrac:    0.20,
		StagingReadFrac: 0.3,
		HotFrac:         0.10,
		MigrateHotReads: true,
		ReclaimMerge:    true,
		Flash:           g,
		Latency:         ssd.DefaultLatency(),
		// Long, infrequent GC episodes — the regime where uncoordinated GC
		// produces the pronounced tail latencies the paper measures.
		GCLowWater:  g.Channels,
		GCHighWater: 3 * g.Channels,
		// A GGC-forced episode collects a couple of blocks without refilling
		// the free pool, so every member's own trigger still launches a
		// global round (the mechanism behind GGC's inflated GC counts), and
		// each GC invocation pays a fixed entry cost.
		ForcedGCVictims:  2,
		GCOverheadMs:     4,
		PrefillOverwrite: 0.5,
		Seed:             1,
	}
}

// Validate reports configuration errors beyond what the subsystems check.
func (c Config) Validate() error {
	if c.Disks < 2 {
		return fmt.Errorf("gcsteering: Disks %d too few", c.Disks)
	}
	if c.StripeUnitKB <= 0 || (c.StripeUnitKB*1024)%c.Flash.PageSize != 0 {
		return fmt.Errorf("gcsteering: StripeUnitKB %d not a page multiple", c.StripeUnitKB)
	}
	if c.ReservedFrac < 0 || c.ReservedFrac > 0.5 {
		return fmt.Errorf("gcsteering: ReservedFrac %v outside [0, 0.5]", c.ReservedFrac)
	}
	if c.Scheme == SchemeSteering && c.Staging == StagingReserved && c.ReservedFrac == 0 {
		return fmt.Errorf("gcsteering: reserved staging needs ReservedFrac > 0")
	}
	if math.IsNaN(c.ScrubMBps) {
		return fmt.Errorf("gcsteering: ScrubMBps is NaN")
	}
	if math.IsNaN(c.DeadlineUs) || math.IsInf(c.DeadlineUs, 0) {
		return fmt.Errorf("gcsteering: DeadlineUs %v not finite", c.DeadlineUs)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("gcsteering: MaxRetries %d negative", c.MaxRetries)
	}
	if c.RetryBackoffUs < 0 || math.IsNaN(c.RetryBackoffUs) || math.IsInf(c.RetryBackoffUs, 0) {
		return fmt.Errorf("gcsteering: RetryBackoffUs %v invalid", c.RetryBackoffUs)
	}
	if c.HedgedReads && c.Level != RAID5 && c.Level != RAID6 {
		return fmt.Errorf("gcsteering: HedgedReads needs RAID5/6 parity (level %v)", c.Level)
	}
	if math.IsNaN(c.PowerLossAtMs) || math.IsInf(c.PowerLossAtMs, 0) {
		return fmt.Errorf("gcsteering: PowerLossAtMs %v not finite", c.PowerLossAtMs)
	}
	if math.IsNaN(c.ResyncMBps) || math.IsInf(c.ResyncMBps, 0) {
		return fmt.Errorf("gcsteering: ResyncMBps %v not finite", c.ResyncMBps)
	}
	if c.PowerLossAtMs > 0 && c.Level != RAID5 && c.Level != RAID6 {
		return fmt.Errorf("gcsteering: PowerLossAtMs needs RAID5/6 parity (level %v)", c.Level)
	}
	if err := c.Flash.Validate(); err != nil {
		return err
	}
	if err := c.Fault.plan(c.Seed).Validate(c.Disks, c.Flash.Channels); err != nil {
		return err
	}
	return nil
}

// Capacity returns the array's host-visible logical capacity in bytes
// without building the system (System.Capacity reports the same value).
// The cluster layer sizes tenant volumes from it before any shard exists.
func (c Config) Capacity() int64 {
	lay := raid.Layout{
		Level:     c.Level,
		Disks:     c.Disks,
		UnitPages: c.unitPages(),
		DiskPages: c.diskPages(),
	}
	return int64(lay.LogicalPages()) * int64(c.Flash.PageSize)
}

// unitPages is the stripe unit in pages.
func (c Config) unitPages() int { return c.StripeUnitKB * 1024 / c.Flash.PageSize }

// diskPages is the per-member usable (array) page count after the reserved
// carve-out, rounded down to whole stripe units.
func (c Config) diskPages() int {
	dev := c.Flash.LogicalPages()
	data := int(float64(dev) * (1 - c.ReservedFrac))
	return data - data%c.unitPages()
}
