// Quickstart: build a 5-SSD RAID5 with each of the three GC schemes, replay
// the same enterprise workload, and compare mean and tail response times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gcsteering"
)

func main() {
	const workload = "Fin1"
	const requests = 6000

	fmt.Printf("Replaying %d requests of the %s workload on RAID5 (5 SSDs, 64KB stripe unit)\n\n",
		requests, workload)
	fmt.Printf("%-14s %12s %12s %12s %10s\n", "scheme", "mean", "p95", "p99", "GC count")

	for _, scheme := range []gcsteering.Scheme{
		gcsteering.SchemeLGC,
		gcsteering.SchemeGGC,
		gcsteering.SchemeSteering,
	} {
		cfg := gcsteering.DefaultConfig()
		cfg.Scheme = scheme

		sys, err := gcsteering.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := sys.GenerateWorkload(workload, requests)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Replay(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.1fµs %10.1fµs %10.1fµs %10d\n",
			scheme,
			res.Latency.Mean/1e3,
			float64(res.Latency.P95)/1e3,
			float64(res.Latency.P99)/1e3,
			res.GCEpisodes)
		if scheme == gcsteering.SchemeSteering {
			fmt.Printf("%-14s %.1f%% of pages addressed to a collecting SSD dodged it\n",
				"", 100*res.RedirectRatio)
		}
	}
	fmt.Println("\nGC-Steering redirects popular reads and all writes away from SSDs that")
	fmt.Println("are garbage-collecting, which is where the mean and tail improvements come from.")
}
