// Taillatency: visualize how garbage collection creates the tail latency
// the paper opens with, and how steering trims it. Replays a bursty HPC
// write workload and prints the full latency percentile profile for LGC
// vs GC-Steering, plus an ASCII CCDF.
//
//	go run ./examples/taillatency
package main

import (
	"fmt"
	"log"
	"strings"

	"gcsteering"
)

func main() {
	const workload = "HPC_W"
	const requests = 3000

	lgc := run(workload, requests, gcsteering.SchemeLGC)
	steer := run(workload, requests, gcsteering.SchemeSteering)

	fmt.Printf("Latency percentiles under %s (bursty 510.5 KB writes)\n\n", workload)
	fmt.Printf("%-10s %14s %14s\n", "quantile", "LGC", "GC-Steering")
	rows := []struct {
		name       string
		lgc, steer int64
	}{
		{"p50", lgc.Latency.P50, steer.Latency.P50},
		{"p90", lgc.Latency.P90, steer.Latency.P90},
		{"p95", lgc.Latency.P95, steer.Latency.P95},
		{"p99", lgc.Latency.P99, steer.Latency.P99},
		{"p99.9", lgc.Latency.P999, steer.Latency.P999},
		{"max", lgc.Latency.Max, steer.Latency.Max},
	}
	for _, r := range rows {
		fmt.Printf("%-10s %12.1fµs %12.1fµs\n", r.name, float64(r.lgc)/1e3, float64(r.steer)/1e3)
	}

	fmt.Printf("\nGC pressure: LGC spent %.1f%% of the run collecting per SSD;"+
		" steering dodged %.0f%% of the pages that would have hit a collecting SSD.\n",
		100*lgc.GCDuty(5), 100*steer.RedirectRatio)

	fmt.Println("\nRelative tail (bar length ∝ p99.9, shorter is better):")
	scale := float64(lgc.Latency.P999)
	bar := func(v int64) string {
		n := int(40 * float64(v) / scale)
		if n < 1 {
			n = 1
		}
		if n > 60 {
			n = 60
		}
		return strings.Repeat("#", n)
	}
	fmt.Printf("  %-12s %s\n", "LGC", bar(lgc.Latency.P999))
	fmt.Printf("  %-12s %s\n", "GC-Steering", bar(steer.Latency.P999))
}

func run(workload string, requests int, scheme gcsteering.Scheme) *gcsteering.Results {
	cfg := gcsteering.DefaultConfig()
	cfg.Scheme = scheme
	sys, err := gcsteering.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := sys.GenerateWorkload(workload, requests)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Replay(tr)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
