// Rebuild: fail a member SSD under live load and compare user response
// times during RAID reconstruction across the paper's Figure 11 variants —
// the baselines rebuilding to a spare, and GC-Steering rebuilding either to
// the spare (Dedicated) or in parallel into the survivors' reserved space
// (Reserved). The failure and the automatic repair are driven by the fault
// plan (Config.Fault), the same machinery the reliability experiments use.
//
//	go run ./examples/rebuild
package main

import (
	"fmt"
	"log"

	"gcsteering"
)

func main() {
	const workload = "hm_0"
	const requests = 5000
	const failDisk = 2

	type variant struct {
		name   string
		scheme gcsteering.Scheme
		stag   gcsteering.StagingKind
		target gcsteering.RebuildTarget
	}
	variants := []variant{
		{"LGC + spare", gcsteering.SchemeLGC, gcsteering.StagingReserved, gcsteering.RebuildToSpare},
		{"GGC + spare", gcsteering.SchemeGGC, gcsteering.StagingReserved, gcsteering.RebuildToSpare},
		{"Steering/Reserved", gcsteering.SchemeSteering, gcsteering.StagingReserved, gcsteering.RebuildToReserved},
		{"Steering/Dedicated", gcsteering.SchemeSteering, gcsteering.StagingDedicated, gcsteering.RebuildToSpare},
	}

	fmt.Printf("Failing SSD %d and reconstructing under the %s workload\n\n", failDisk, workload)
	fmt.Printf("%-20s %14s %14s %10s %10s\n", "variant", "normal mean", "rebuild mean", "ratio", "rebuild")
	for _, v := range variants {
		cfg := gcsteering.DefaultConfig()
		cfg.Scheme = v.scheme
		cfg.Staging = v.stag
		cfg.ReservedFrac = 0.30 // enough reserved space to hold a member's share

		// Run 1: normal state (no failure) for the baseline mean.
		normalSys, err := gcsteering.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := normalSys.GenerateWorkload(workload, requests)
		if err != nil {
			log.Fatal(err)
		}
		normal, err := normalSys.Replay(tr)
		if err != nil {
			log.Fatal(err)
		}

		// Run 2: the same trace under a fault plan that fails the disk at
		// t=0 and paces the reconstruction to span the replay (the paper
		// rebuilds 120 GB at 10 MB/s — hours — so recovery is always under
		// way during the trace).
		dur := tr[len(tr)-1].Timestamp.Seconds()
		cfg.Fault = gcsteering.FaultPlan{
			Failures:      []gcsteering.DiskFault{{Disk: failDisk, AtMs: 0}},
			RebuildMBps:   float64(normalSys.Capacity()) / 4 / 1e6 / dur,
			RebuildTarget: v.target,
		}
		rebSys, err := gcsteering.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reb, err := rebSys.ReplayWithFaults(tr)
		if err != nil {
			log.Fatal(err)
		}

		// DegradedLatency covers exactly the requests submitted while the
		// reconstruction was under way — Fig. 11's measurement window.
		fmt.Printf("%-20s %12.1fµs %12.1fµs %9.2fx %9.1fs\n",
			v.name,
			normal.Latency.Mean/1e3,
			reb.Fault.DegradedLatency.Mean/1e3,
			reb.Fault.DegradedLatency.Mean/normal.Latency.Mean,
			reb.Fault.RebuildTime.Seconds())
	}
	fmt.Println("\nThe ratio column is Fig. 11's metric: response time during reconstruction")
	fmt.Println("normalized to the same scheme's no-rebuild state. Note the Reserved variant:")
	fmt.Println("at simulation scale, packing a member's contents into the survivors' reserved")
	fmt.Println("space drives their flash utilization (and GC) up — see EXPERIMENTS.md for why")
	fmt.Println("this deviates from the paper's testbed result.")
}
