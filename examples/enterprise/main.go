// Enterprise: sweep all six enterprise profiles of the paper's Table I
// (Fin1 plus the five MSR Cambridge volumes), comparing LGC with
// GC-Steering and reporting the redirect behaviour per workload — a small
// version of the paper's Figure 7a for the enterprise half of the table.
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"

	"gcsteering"
)

func main() {
	workloads := []string{"Fin1", "hm_0", "mds_0", "prxy_0", "rsrch_0", "wdev_0"}
	const requests = 5000

	fmt.Printf("%-9s %14s %14s %9s %10s %10s\n",
		"workload", "LGC mean", "steering mean", "vs LGC", "redirect", "staged pgs")
	for _, w := range workloads {
		lgc := run(w, requests, gcsteering.SchemeLGC)
		steer := run(w, requests, gcsteering.SchemeSteering)
		fmt.Printf("%-9s %12.1fµs %12.1fµs %8.2fx %9.1f%% %10d\n",
			w,
			lgc.Latency.Mean/1e3,
			steer.Latency.Mean/1e3,
			steer.Latency.Mean/lgc.Latency.Mean,
			100*steer.RedirectRatio,
			steer.Steering.RedirectedWrites+steer.Steering.Migrations)
	}
	fmt.Println("\nColumns: mean response times, the steering/LGC ratio (lower is better),")
	fmt.Println("the share of GC-period pages that dodged a collecting SSD, and how many")
	fmt.Println("pages passed through the staging space (redirected writes + hot-read copies).")
}

func run(workload string, requests int, scheme gcsteering.Scheme) *gcsteering.Results {
	cfg := gcsteering.DefaultConfig()
	cfg.Scheme = scheme
	sys, err := gcsteering.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := sys.GenerateWorkload(workload, requests)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Replay(tr)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
