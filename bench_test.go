// Benchmarks regenerating every table and figure of the paper's evaluation
// section, plus ablation benches for the design choices DESIGN.md calls
// out. Each BenchmarkTable*/BenchmarkFig* runs a scaled-down version of the
// corresponding experiment and reports the headline numbers as custom
// metrics (units chosen so "lower is better" where the paper's bars are
// normalized response times).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// For higher-fidelity numbers use cmd/gcsbench with -requests/-repeats.
package gcsteering_test

import (
	"testing"

	"gcsteering"
	"gcsteering/internal/harness"
	"gcsteering/internal/trace"
	"gcsteering/internal/workload"
)

// benchOptions are the scaled-down experiment options shared by the
// figure benches.
func benchOptions() harness.Options {
	return harness.Options{MaxRequests: 3000, Workers: 0}
}

// BenchmarkTable1TraceCharacteristics regenerates Table I: it synthesizes
// every profile and reports the worst relative error of the read ratio and
// mean request size against the published values.
func BenchmarkTable1TraceCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var worstRatio, worstSize float64
		for _, p := range workload.All() {
			tr, err := workload.Generate(p, workload.Options{
				Capacity:    4 << 30,
				MaxRequests: 20000,
				Seed:        int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			s := trace.ComputeStats(tr)
			if d := abs(s.ReadRatio - p.ReadRatio); d > worstRatio {
				worstRatio = d
			}
			if d := abs(s.AvgSizeKB-p.AvgReqKB) / p.AvgReqKB; d > worstSize {
				worstSize = d
			}
		}
		b.ReportMetric(worstRatio, "read-ratio-err")
		b.ReportMetric(worstSize, "avg-size-rel-err")
	}
}

// BenchmarkFig2PageTypes regenerates Figure 2: the share of reads on
// read-intensive pages and writes on write-intensive pages, averaged over
// the enterprise traces (paper: 89.8% and 95.5%).
func BenchmarkFig2PageTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sumR, sumW float64
		n := 0
		for _, p := range workload.Enterprise() {
			tr, err := workload.Generate(p, workload.Options{
				Capacity:    4 << 30,
				MaxRequests: 20000,
				Seed:        int64(i + 7),
			})
			if err != nil {
				b.Fatal(err)
			}
			c := trace.ClassifyPages(tr, 4096, 0.9)
			sumR += c.ReadShare(trace.ClassRI)
			sumW += c.WriteShare(trace.ClassWI)
			n++
		}
		b.ReportMetric(100*sumR/float64(n), "reads-on-RI-%")
		b.ReportMetric(100*sumW/float64(n), "writes-on-WI-%")
	}
}

// BenchmarkFig7aResponseTime regenerates Figure 7a: the geometric-mean
// response time of GGC and GC-Steering normalized to LGC across the eight
// workloads (paper: GC-Steering at roughly 0.37× LGC; here the shape —
// below 1 and below GGC — is the reproduction target).
func BenchmarkFig7aResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i)
		g, err := harness.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		gm := g.GeoMeanNormalized("LGC")
		b.ReportMetric(gm["GGC"], "GGC-vs-LGC")
		b.ReportMetric(gm["GC-Steering"], "steering-vs-LGC")
	}
}

// BenchmarkFig7bGCCounts regenerates Figure 7b: total GC episode counts
// normalized to LGC (paper: GGC much larger, GC-Steering unchanged).
func BenchmarkFig7bGCCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i)
		g, err := harness.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		counts := g.Aux["GC count (episodes)"]
		var lgc, ggc, steer float64
		for _, w := range g.Workloads {
			lgc += counts[harness.Cell{Workload: w, Variant: "LGC"}]
			ggc += counts[harness.Cell{Workload: w, Variant: "GGC"}]
			steer += counts[harness.Cell{Workload: w, Variant: "GC-Steering"}]
		}
		b.ReportMetric(ggc/lgc, "GGC-gc-vs-LGC")
		b.ReportMetric(steer/lgc, "steering-gc-vs-LGC")
	}
}

// BenchmarkFig8NumSSDs regenerates Figure 8: GC-Steering's mean response
// time on 7 SSDs normalized to 5 SSDs (paper: decreases with more SSDs).
func BenchmarkFig8NumSSDs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i)
		g, err := harness.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.GeoMeanNormalized("5 SSDs")["7 SSDs"], "7ssd-vs-5ssd")
	}
}

// BenchmarkFig9StripeUnit regenerates Figure 9: response time at 4 KB and
// 128 KB stripe units normalized to 64 KB (paper: no consistent pattern).
func BenchmarkFig9StripeUnit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i)
		g, err := harness.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		gm := g.GeoMeanNormalized("64KB")
		b.ReportMetric(gm["4KB"], "4KB-vs-64KB")
		b.ReportMetric(gm["128KB"], "128KB-vs-64KB")
	}
}

// BenchmarkFig10StagingSpace regenerates Figure 10: Dedicated staging
// normalized to Reserved (the paper measures Reserved ahead; see
// EXPERIMENTS.md for why the simulator's ordering differs).
func BenchmarkFig10StagingSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i)
		g, err := harness.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.GeoMeanNormalized("Reserved")["Dedicated"], "dedicated-vs-reserved")
	}
}

// BenchmarkFig11Reconstruction regenerates Figure 11: the mean user
// response time during RAID rebuild normalized to the no-rebuild state,
// per scheme (paper: LGC +45.6%, GGC +47.3%, Steering Reserved −55.7%,
// Dedicated −10.1%).
func BenchmarkFig11Reconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i)
		g, err := harness.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		norm := g.Aux["normalized to normal state"]
		report := func(variant, metric string) {
			sum, n := 0.0, 0
			for _, w := range g.Workloads {
				if v, ok := norm[harness.Cell{Workload: w, Variant: variant}]; ok {
					sum += v
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(sum/float64(n), metric)
			}
		}
		report("LGC", "LGC-rebuild-ratio")
		report("GGC", "GGC-rebuild-ratio")
		report("GC-Steering(Reserved)", "steer-res-ratio")
		report("GC-Steering(Dedicated)", "steer-ded-ratio")
	}
}

// BenchmarkRAID6Extension exercises the future-work RAID6 configuration.
func BenchmarkRAID6Extension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Seed = int64(i)
		g, err := harness.RAID6(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(g.GeoMeanNormalized("LGC")["GC-Steering"], "steering-vs-LGC-raid6")
	}
}

// --- Ablation benches -----------------------------------------------------

// ablationRun replays one workload under a steering config variant and
// returns the mean response time in µs.
func ablationRun(b *testing.B, wl string, seed int64, mutate func(*gcsteering.Config)) float64 {
	b.Helper()
	cfg := harness.BaseConfig()
	cfg.Scheme = gcsteering.SchemeSteering
	cfg.Seed += seed
	mutate(&cfg)
	sys, err := gcsteering.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sys.GenerateWorkload(wl, 3000)
	if err != nil {
		b.Fatal(err)
	}
	res, err := sys.Replay(tr)
	if err != nil {
		b.Fatal(err)
	}
	return res.Latency.Mean / 1e3
}

// BenchmarkAblationHotReadMigration compares steering with and without the
// proactive hot-read migration (paper §III-B's Popular Data Identifier).
func BenchmarkAblationHotReadMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablationRun(b, "Fin1", int64(i), func(c *gcsteering.Config) {})
		off := ablationRun(b, "Fin1", int64(i), func(c *gcsteering.Config) { c.MigrateHotReads = false })
		b.ReportMetric(off/on, "no-migration-vs-full")
	}
}

// BenchmarkAblationReclaimMerge compares merged vs page-at-a-time reclaim
// write-back (paper §III-C's merge optimization).
func BenchmarkAblationReclaimMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablationRun(b, "prxy_0", int64(i), func(c *gcsteering.Config) {})
		off := ablationRun(b, "prxy_0", int64(i), func(c *gcsteering.Config) { c.ReclaimMerge = false })
		b.ReportMetric(off/on, "no-merge-vs-merge")
	}
}

// BenchmarkAblationGCAwareWrites compares the controller's reconstruct-
// write GC avoidance against classic RMW-only behaviour.
func BenchmarkAblationGCAwareWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := ablationRun(b, "Fin1", int64(i), func(c *gcsteering.Config) {})
		off := ablationRun(b, "Fin1", int64(i), func(c *gcsteering.Config) { c.DisableGCAwareWrites = true })
		b.ReportMetric(off/on, "rmw-only-vs-gc-aware")
	}
}

// BenchmarkAblationHotFrac sweeps the migration cap (paper fixes 10%).
func BenchmarkAblationHotFrac(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := ablationRun(b, "hm_0", int64(i), func(c *gcsteering.Config) {})
		small := ablationRun(b, "hm_0", int64(i), func(c *gcsteering.Config) { c.HotFrac = 0.01 })
		big := ablationRun(b, "hm_0", int64(i), func(c *gcsteering.Config) { c.HotFrac = 0.5 })
		b.ReportMetric(small/base, "hot1%-vs-hot10%")
		b.ReportMetric(big/base, "hot50%-vs-hot10%")
	}
}

// BenchmarkAblationColdStream evaluates multi-stream separation of the
// staging region.
func BenchmarkAblationColdStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := ablationRun(b, "Fin1", int64(i), func(c *gcsteering.Config) {})
		on := ablationRun(b, "Fin1", int64(i), func(c *gcsteering.Config) { c.ColdStreamStaging = true })
		b.ReportMetric(on/off, "coldstream-vs-shared")
	}
}

// BenchmarkEndToEndReplay measures raw simulator throughput: simulated
// requests processed per wall-clock second for a full steering stack.
func BenchmarkEndToEndReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := harness.BaseConfig()
		cfg.Seed = int64(i + 1)
		sys, err := gcsteering.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := sys.GenerateWorkload("Fin1", 5000)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Replay(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
