package gcsteering

import (
	"bytes"
	"math"
	"testing"
)

// selfHealPlan seeds persistent defects and fails one member mid-trace, so
// a run measures both the scrubber's repairs and the rebuild's URE exposure.
func selfHealPlan() FaultPlan {
	return FaultPlan{
		Failures:        []DiskFault{{Disk: 2, AtMs: 400}},
		LatentPageRate:  2e-3,
		CorruptPageRate: 1e-3,
		RepairDelayMs:   10,
		RebuildMBps:     200,
		RebuildTarget:   RebuildToSpare,
	}
}

func TestMalformedConfigsErrorNotPanic(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Fault.UREPerPageRead = math.NaN() },
		func(c *Config) { c.Fault.LatentPageRate = math.NaN() },
		func(c *Config) { c.Fault.LatentPageRate = -0.5 },
		func(c *Config) { c.Fault.CorruptPageRate = 1.0 },
		func(c *Config) { c.Fault.Slowdowns = []DiskSlowdown{{Disk: 99, DurationMs: 1}} },
		func(c *Config) { c.Fault.Slowdowns = []DiskSlowdown{{Disk: 0, Channel: -2, DurationMs: 1}} },
		func(c *Config) {
			c.Fault.Slowdowns = []DiskSlowdown{{Disk: 0, Channel: c.Flash.Channels, DurationMs: 1}}
		},
		func(c *Config) { c.Fault.Slowdowns = []DiskSlowdown{{Disk: 0, StartMs: -1, DurationMs: 1}} },
		func(c *Config) { c.ScrubMBps = math.NaN() },
		func(c *Config) { c.Level = RAID0; c.HedgedReads = true },
	}
	for i, mutate := range cases {
		cfg := smallConfig(SchemeLGC)
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: malformed config accepted", i)
		}
	}
}

func TestScrubRepairsSeededDefects(t *testing.T) {
	cfg := faultConfig(SchemeLGC, FaultPlan{
		LatentPageRate:  2e-3,
		CorruptPageRate: 1e-3,
	})
	cfg.Checksums = true
	cfg.ScrubMBps = 50
	_, res := replayWithFaults(t, cfg, "Fin1", 2000)
	if !res.ScrubEnabled {
		t.Fatal("scrub did not run")
	}
	if res.Scrub.Passes != 1 {
		t.Fatalf("passes = %d, want 1", res.Scrub.Passes)
	}
	if res.Scrub.LatentPagesRepaired == 0 || res.Scrub.CorruptPagesRepaired == 0 {
		t.Fatalf("scrub repaired latent=%d corrupt=%d pages, want both > 0",
			res.Scrub.LatentPagesRepaired, res.Scrub.CorruptPagesRepaired)
	}
	if res.Scrub.StripesScanned == 0 || res.Scrub.PagesRead == 0 {
		t.Fatalf("scrub stats empty: %+v", res.Scrub)
	}
}

// TestScrubReducesRebuildUREs is the §III-D regression: a latent sector
// error repaired by the patrol scrub must no longer surface as a URE when a
// later rebuild reads the survivors.
func TestScrubReducesRebuildUREs(t *testing.T) {
	run := func(scrubMBps float64) *Results {
		cfg := faultConfig(SchemeLGC, selfHealPlan())
		cfg.Checksums = true
		cfg.ScrubMBps = scrubMBps
		_, res := replayWithFaults(t, cfg, "Fin1", 3000)
		return res
	}
	base := run(0)
	if base.Fault.Rebuilds != 1 {
		t.Fatalf("baseline rebuilds = %d, want 1", base.Fault.Rebuilds)
	}
	if base.Fault.RebuildUREs == 0 {
		t.Fatal("baseline rebuild saw no UREs; the regression has nothing to show")
	}
	// Bandwidth sized so the single patrol pass finishes well before the
	// failure at 400 ms.
	scrubbed := run(100)
	if scrubbed.Scrub.LatentPagesRepaired == 0 {
		t.Fatal("scrub repaired nothing")
	}
	if scrubbed.Fault.RebuildUREs >= base.Fault.RebuildUREs {
		t.Fatalf("rebuild UREs with scrub = %d, without = %d; want a strict reduction",
			scrubbed.Fault.RebuildUREs, base.Fault.RebuildUREs)
	}
}

// TestHedgedReadsEngageOnFailSlow pins the hedged-read mechanism: with one
// member fail-slow for the whole run, reads homed there race a parity
// reconstruction, and the reconstruction wins.
func TestHedgedReadsEngageOnFailSlow(t *testing.T) {
	plan := FaultPlan{Slowdowns: []DiskSlowdown{
		{Disk: 1, Channel: -1, StartMs: 0, DurationMs: 1e9, ExtraPerOpUs: 5000},
	}}
	run := func(hedge bool) *Results {
		cfg := faultConfig(SchemeLGC, plan)
		cfg.HedgedReads = hedge
		_, res := replayWithFaults(t, cfg, "HPC_R", 1500)
		return res
	}
	off := run(false)
	if off.Integrity.HedgedReads != 0 {
		t.Fatalf("hedging disabled but HedgedReads = %d", off.Integrity.HedgedReads)
	}
	on := run(true)
	if on.Integrity.HedgedReads == 0 {
		t.Fatal("no reads were hedged against the fail-slow member")
	}
	if on.Integrity.HedgeReconWins == 0 {
		t.Fatal("reconstruction never beat a 5 ms/op fail-slow direct read")
	}
	if on.Latency.Mean >= off.Latency.Mean {
		t.Fatalf("hedged mean %.0fns not below unhedged %.0fns under fail-slow",
			on.Latency.Mean, off.Latency.Mean)
	}
}

// TestSelfHealTraceDeterministic asserts the full self-healing stack —
// seeded defects, checksum verification, patrol scrub, hedged reads,
// failure and rebuild — emits a byte-identical event trace across runs.
func TestSelfHealTraceDeterministic(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		cfg := faultConfig(SchemeLGC, selfHealPlan())
		cfg.Checksums = true
		cfg.HedgedReads = true
		cfg.ScrubMBps = 100
		cfg.Trace = NewTracer(&buf)
		replayWithFaults(t, cfg, "Fin1", 1500)
		if err := cfg.Trace.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	for _, want := range []string{`"scrub-start"`, `"scrub-repair"`, `"scrub-done"`, `"hedged-read"`, `"hedge-win"`} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("trace lacks %s events", want)
		}
	}
}

// TestChecksumsDetectSilentCorruption: with verification on, corrupted reads
// are detected and served from redundancy instead of passing silently.
func TestChecksumsDetectSilentCorruption(t *testing.T) {
	plan := FaultPlan{CorruptPageRate: 5e-3}
	run := func(verify bool) *Results {
		cfg := faultConfig(SchemeLGC, plan)
		cfg.Checksums = verify
		_, res := replayWithFaults(t, cfg, "HPC_R", 2000)
		return res
	}
	off := run(false)
	if off.Integrity.ChecksumErrors != 0 {
		t.Fatalf("verification off but ChecksumErrors = %d", off.Integrity.ChecksumErrors)
	}
	on := run(true)
	if on.Integrity.ChecksumErrors == 0 {
		t.Fatal("seeded corruption never detected by checksummed reads")
	}
	if on.Integrity.ChecksumFixed != on.Integrity.ChecksumErrors {
		t.Fatalf("fixed %d of %d checksum errors; RAID5 redundancy should cover all",
			on.Integrity.ChecksumFixed, on.Integrity.ChecksumErrors)
	}
}
