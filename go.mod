module gcsteering

go 1.22
