package gcsteering

import (
	"fmt"
	"strings"
)

// Results aggregates everything one run measures.
type Results struct {
	// Scheme and Staging identify the configuration.
	Scheme  Scheme
	Staging StagingKind

	// Latency summarizes response times over all requests; ReadLatency
	// and WriteLatency split by direction. All values are nanoseconds.
	Latency      LatencySummary
	ReadLatency  LatencySummary
	WriteLatency LatencySummary

	// GCEpisodes and Erases sum device GC activity over the run;
	// GGCForced counts episodes forced by global coordination.
	GCEpisodes int64
	Erases     int64
	GGCForced  int64
	// ForcedEpisodes counts device GC episodes initiated by ForceGC.
	ForcedEpisodes int64
	// GCWallTime sums, over devices, the wall-clock time spent in the GC
	// state; Duration is the run's total simulated time. Their ratio
	// divided by the device count is the mean per-device GC duty cycle.
	GCWallTime Time
	Duration   Time
	// WriteAmp is the mean FTL write amplification across members.
	WriteAmp float64

	// Steering carries the redirector counters (zero for baselines);
	// RedirectRatio is the fraction of GC-period pages that dodged a
	// collecting disk.
	Steering      SteeringStats
	RedirectRatio float64

	// RebuildDuration is non-zero for ReplayDuringRebuild runs.
	RebuildDuration Time

	// VariabilityCV is the coefficient of variation of per-100 ms-window
	// mean response times — the paper's Figure 1 "performance variability"
	// as one number. Timeline is an ASCII profile of the same windows.
	VariabilityCV float64
	Timeline      string

	// Wear summarizes endurance: per-block erase counts across members.
	// GC schemes that erase more (GGC's forced collections) age the flash
	// faster — the reliability angle of §II-A.
	Wear WearStats
}

// WearStats aggregates per-block erase counts across all member SSDs.
type WearStats struct {
	MaxErase  int
	MeanErase float64
}

// results snapshots the system state into a Results.
func (s *System) results() *Results {
	r := &Results{
		Scheme:       s.cfg.Scheme,
		Staging:      s.cfg.Staging,
		Latency:      s.lat.Summarize(),
		ReadLatency:  s.readLat.Summarize(),
		WriteLatency: s.writeLat.Summarize(),
	}
	r.Duration = s.eng.Now()
	r.VariabilityCV = s.timeline.VariabilityCV()
	r.Timeline = s.timeline.Sparkline(60)
	var wa float64
	for _, d := range s.devs {
		st := d.Stats()
		r.GCEpisodes += st.GCEpisodes
		r.Erases += st.Erases
		r.ForcedEpisodes += st.ForcedGCs
		r.GCWallTime += st.GCWallTime
		wa += d.WriteAmplification()
		max, mean := d.Wear()
		if max > r.Wear.MaxErase {
			r.Wear.MaxErase = max
		}
		r.Wear.MeanErase += mean / float64(len(s.devs))
	}
	r.WriteAmp = wa / float64(len(s.devs))
	if s.ggc != nil {
		r.GGCForced = s.ggc.Triggered
	}
	if s.steer != nil {
		r.Steering = s.steer.Stats()
		r.RedirectRatio = s.steer.RedirectRatio()
	}
	return r
}

// GCDuty returns the mean per-device fraction of the run spent in GC.
func (r *Results) GCDuty(devices int) float64 {
	if r.Duration <= 0 || devices <= 0 {
		return 0
	}
	return float64(r.GCWallTime) / float64(r.Duration) / float64(devices)
}

// String renders a compact single-run report.
func (r *Results) String() string {
	var b strings.Builder
	name := r.Scheme.String()
	if r.Scheme == SchemeSteering {
		name += "/" + r.Staging.String()
	}
	fmt.Fprintf(&b, "%-22s mean=%9.1fµs p99=%9.1fµs gc=%d erases=%d wa=%.2f",
		name, r.Latency.Mean/1e3, float64(r.Latency.P99)/1e3, r.GCEpisodes, r.Erases, r.WriteAmp)
	if r.Scheme == SchemeSteering {
		fmt.Fprintf(&b, " redirect=%.1f%%", 100*r.RedirectRatio)
	}
	if r.RebuildDuration > 0 {
		fmt.Fprintf(&b, " rebuild=%v", r.RebuildDuration)
	}
	return b.String()
}
