package gcsteering

import (
	"fmt"
	"strings"
)

// Results aggregates everything one run measures.
type Results struct {
	// Scheme and Staging identify the configuration.
	Scheme  Scheme
	Staging StagingKind

	// Latency summarizes response times over all requests; ReadLatency
	// and WriteLatency split by direction. All values are nanoseconds.
	Latency      LatencySummary
	ReadLatency  LatencySummary
	WriteLatency LatencySummary

	// GCEpisodes and Erases sum device GC activity over the run;
	// GGCForced counts episodes forced by global coordination.
	GCEpisodes int64
	Erases     int64
	GGCForced  int64
	// GCExtensions sums collection work folded into already-running
	// episodes (mid-episode writes draining the free pool again) — these
	// extend an episode's window rather than starting a new one.
	GCExtensions int64
	// ForcedEpisodes counts device GC episodes initiated by ForceGC.
	ForcedEpisodes int64
	// GCWallTime sums, over devices, the wall-clock time spent in the GC
	// state; Duration is the run's total simulated time. Their ratio
	// divided by the device count is the mean per-device GC duty cycle.
	GCWallTime Time
	Duration   Time
	// WriteAmp is the mean FTL write amplification across members.
	WriteAmp float64

	// Steering carries the redirector counters (zero for baselines);
	// RedirectRatio is the fraction of GC-period pages that dodged a
	// collecting disk.
	Steering      SteeringStats
	RedirectRatio float64

	// RebuildDuration is non-zero for ReplayDuringRebuild runs.
	RebuildDuration Time

	// Fault carries the reliability measurements of a ReplayWithFaults run
	// (Injected is false for plain replays).
	Fault FaultStats

	// Integrity carries the end-to-end checksum and hedged-read counters
	// (all zero unless Config.Checksums / Config.HedgedReads enabled them).
	Integrity IntegrityStats

	// Robust carries the fail-slow tolerance counters: deadlines, retries,
	// admission control, and health quarantines (all zero unless the
	// corresponding Config knobs enabled them).
	Robust RobustStats

	// Scrub carries the patrol scrubber's counters for runs with
	// Config.ScrubMBps > 0; ScrubEnabled marks that the scrubber ran.
	Scrub        ScrubStats
	ScrubEnabled bool

	// VariabilityCV is the coefficient of variation of per-100 ms-window
	// mean response times — the paper's Figure 1 "performance variability"
	// as one number. Series holds the full windowed time series it is
	// derived from (per-window mean/max/count, optional P99, and the
	// gc_active / staging_free_write_slots gauges); render it with
	// Series.Sparkline or export it with Series.WriteCSV.
	VariabilityCV float64
	Series        *Recorder

	// Phases splits response times by the system state at arrival, the
	// per-phase breakdown behind the paper's Fig. 1 observation that the
	// latency spikes line up with GC windows.
	Phases PhaseLatencies

	// Busy lists the background-occupancy windows recorded when
	// Config.RecordBusy is set: per-device GC episodes, open health
	// breakers, and active rebuilds, each closed at the run end if still
	// open. The cluster routing tier reads these as its steering signal.
	// Intervals appear in the order they closed, which is deterministic.
	Busy []BusyInterval

	// Devices carries the per-member breakdown of the aggregate GC and
	// endurance counters above.
	Devices []DeviceResults

	// Wear summarizes endurance: per-block erase counts across members.
	// GC schemes that erase more (GGC's forced collections) age the flash
	// faster — the reliability angle of §II-A.
	Wear WearStats

	// Crash carries the power-loss and recovery accounting of a
	// ReplayWithPowerLoss run (Enabled is false for every other entry
	// point). For crash runs the top-level latency fields describe the
	// post-crash period; Crash.PreCrash holds the pre-cut summary.
	Crash CrashStats
}

// BusyKind classifies one background-occupancy window in Results.Busy.
type BusyKind uint8

const (
	// BusyGC is one member's garbage-collection episode.
	BusyGC BusyKind = iota
	// BusyBreaker is one member's open health circuit breaker.
	BusyBreaker
	// BusyRebuild is an active reconstruction (array-wide, Dev -1).
	BusyRebuild
)

// String names the busy kind for reports.
func (k BusyKind) String() string {
	switch k {
	case BusyGC:
		return "gc"
	case BusyBreaker:
		return "breaker"
	case BusyRebuild:
		return "rebuild"
	default:
		return "unknown"
	}
}

// BusyInterval is one span during which a member device (or, for rebuilds,
// the whole array) was occupied with background work that degrades
// foreground service. Recorded only when Config.RecordBusy is set.
type BusyInterval struct {
	Kind  BusyKind
	Dev   int // member device, -1 for array-wide windows
	Start Time
	End   Time
}

// PhaseLatencies splits response times by what the array was doing when the
// request arrived. The phases are exclusive: Degraded wins over GC.
type PhaseLatencies struct {
	// Quiet: full redundancy and no member collecting.
	Quiet LatencySummary
	// GC: at least one member was inside a GC episode.
	GC LatencySummary
	// GCRead restricts GC to reads — the tail the hedged reconstruct-reads
	// (Config.HedgedReads) attack.
	GCRead LatencySummary
	// Degraded: the array was missing at least one member.
	Degraded LatencySummary
}

// DeviceResults is the per-member view of one run.
type DeviceResults struct {
	ID           int
	GCEpisodes   int64
	GCExtensions int64
	ForcedGCs    int64
	Erases       int64
	GCWallTime   Time
	WriteAmp     float64
	MaxErase     int
	MeanErase    float64
}

// WearStats aggregates per-block erase counts across all member SSDs.
type WearStats struct {
	MaxErase  int
	MeanErase float64
}

// IntegrityStats aggregates the end-to-end data-integrity counters of one
// run: checksum verification failures on the read path and the hedged
// reconstruct-reads raced against GC-busy or fail-slow members.
type IntegrityStats struct {
	// ChecksumErrors counts reads whose end-to-end verification failed;
	// ChecksumFixed the subset served from redundancy instead (the rest
	// were unrecoverable and counted as data loss).
	ChecksumErrors int64
	ChecksumFixed  int64
	// HedgedReads counts reads raced against a parity reconstruct-read;
	// HedgeReconWins how often the reconstruction finished first.
	HedgedReads    int64
	HedgeReconWins int64
}

// RobustStats aggregates the fail-slow tolerance counters of one run: what
// the deadlines, retries, admission control, and health monitor
// (Config.DeadlineUs / MaxRetries / QueueLimit / Quarantine) did.
type RobustStats struct {
	// DeadlineExceeded counts user requests cancelled at their deadline;
	// CanceledSubOps the queued sub-ops the array absorbed for them.
	DeadlineExceeded int64
	CanceledSubOps   int64
	// Rejected counts user requests refused by admission control.
	Rejected int64
	// TransientErrors counts read attempts that failed transiently; Retries
	// the re-issues scheduled for them; RetriesExhausted the sub-ops that
	// gave up after the retry budget.
	TransientErrors  int64
	Retries          int64
	RetriesExhausted int64
	// Quarantines counts circuit-breaker openings (re-opens included);
	// Reinstatements closings after a clean probe; Probes half-open probe
	// reads issued; QuarantineTime the summed open time across devices.
	Quarantines    int64
	Reinstatements int64
	Probes         int64
	QuarantineTime Time
	// MigrationsShed and ScrubSheds count background work dropped under
	// admission-control queue pressure (hot-read migrations and deferred
	// scrub stripes respectively).
	MigrationsShed int64
	ScrubSheds     int64
}

// FaultStats aggregates the reliability measurements of one fault-injected
// run: what the fault plan did to the array and what it cost.
type FaultStats struct {
	// Injected marks results produced by ReplayWithFaults.
	Injected bool
	// Failures counts whole-device losses the RAID level absorbed;
	// ArrayFailures those beyond its tolerance (the array was lost).
	Failures      int64
	ArrayFailures int64
	// Rebuilds counts completed automatic reconstructions.
	Rebuilds int64
	// UREs counts latent sector errors surfaced by host and rebuild reads;
	// URERepaired the subset reconstructed from redundancy; DataLossEvents
	// everything unrecoverable (UREs past the last copy, rebuild units lost,
	// and array failures).
	UREs           int64
	URERepaired    int64
	DataLossEvents int64
	// RebuildUREs is the subset of UREs encountered by rebuild reads on the
	// survivors — the §III-D exposure a prior patrol scrub shrinks by
	// repairing latent defects before the rebuild trips over them.
	RebuildUREs int64
	// WindowOfVulnerability totals the simulated time the array ran without
	// full redundancy — the paper's §III-D reliability metric: while the
	// window is open, one more loss is data loss. RebuildTime is the part
	// spent actively reconstructing.
	WindowOfVulnerability Time
	RebuildTime           Time
	// DegradedLatency summarizes response times of requests submitted while
	// the array was degraded.
	DegradedLatency LatencySummary
}

// results snapshots the system state into a Results.
func (s *System) results() *Results {
	r := &Results{
		Scheme:       s.cfg.Scheme,
		Staging:      s.cfg.Staging,
		Latency:      s.lat.Summarize(),
		ReadLatency:  s.readLat.Summarize(),
		WriteLatency: s.writeLat.Summarize(),
	}
	r.Duration = s.eng.Now()
	if s.busy != nil {
		s.busy.finish(s.eng.Now())
		r.Busy = s.busy.intervals
	}
	r.VariabilityCV = s.rec.VariabilityCV()
	r.Series = s.rec
	r.Phases = PhaseLatencies{
		Quiet:    s.quietLat.Summarize(),
		GC:       s.gcLat.Summarize(),
		GCRead:   s.gcRdLat.Summarize(),
		Degraded: s.degLat.Summarize(),
	}
	var wa float64
	for _, d := range s.devs {
		st := d.Stats()
		r.GCEpisodes += st.GCEpisodes
		r.GCExtensions += st.GCExtensions
		r.Erases += st.Erases
		r.ForcedEpisodes += st.ForcedGCs
		r.GCWallTime += st.GCWallTime
		wa += d.WriteAmplification()
		max, mean := d.Wear()
		if max > r.Wear.MaxErase {
			r.Wear.MaxErase = max
		}
		r.Wear.MeanErase += mean / float64(len(s.devs))
		r.Devices = append(r.Devices, DeviceResults{
			ID:           d.ID,
			GCEpisodes:   st.GCEpisodes,
			GCExtensions: st.GCExtensions,
			ForcedGCs:    st.ForcedGCs,
			Erases:       st.Erases,
			GCWallTime:   st.GCWallTime,
			WriteAmp:     d.WriteAmplification(),
			MaxErase:     max,
			MeanErase:    mean,
		})
	}
	r.WriteAmp = wa / float64(len(s.devs))
	if s.ggc != nil {
		r.GGCForced = s.ggc.Triggered
	}
	if s.steer != nil {
		r.Steering = s.steer.Stats()
		r.RedirectRatio = s.steer.RedirectRatio()
	}
	as := s.arr.Stats()
	r.Robust = RobustStats{
		DeadlineExceeded: s.deadlineHits,
		CanceledSubOps:   as.CanceledSubOps,
		Rejected:         s.rejected,
		TransientErrors:  as.TransientErrors,
		Retries:          as.Retries,
		RetriesExhausted: as.RetriesExhausted,
		MigrationsShed:   r.Steering.MigrationsShed,
	}
	if s.health != nil {
		s.health.Finish(s.eng.Now()) // charge still-open breakers (idempotent)
		hs := s.health.Stats()
		r.Robust.Quarantines = hs.Quarantines
		r.Robust.Reinstatements = hs.Reinstatements
		r.Robust.Probes = hs.Probes
		r.Robust.QuarantineTime = hs.QuarantineTime
	}
	r.Integrity = IntegrityStats{
		ChecksumErrors: as.ChecksumErrors,
		ChecksumFixed:  as.ChecksumFixed,
		HedgedReads:    as.HedgedReads,
		HedgeReconWins: as.HedgeReconWins,
	}
	if s.scrubber != nil {
		r.Scrub = s.scrubber.Stats()
		r.ScrubEnabled = true
		r.Robust.ScrubSheds = r.Scrub.PressureSheds
	}
	if s.faults != nil {
		cs := s.faults.Stats()
		r.Fault = FaultStats{
			Injected:              true,
			Failures:              cs.Failures,
			ArrayFailures:         cs.ArrayFailures,
			Rebuilds:              cs.Rebuilds,
			UREs:                  as.UREs + cs.RebuildUREs,
			URERepaired:           as.URERepaired + cs.RebuildUREsRepaired,
			DataLossEvents:        as.DataLossEvents + cs.DataLossUnits + cs.ArrayFailures,
			RebuildUREs:           cs.RebuildUREs,
			WindowOfVulnerability: cs.WindowOfVulnerability,
			RebuildTime:           cs.RebuildTime,
			DegradedLatency:       s.degLat.Summarize(),
		}
	}
	return r
}

// GCDuty returns the mean per-device fraction of the run spent in GC.
func (r *Results) GCDuty(devices int) float64 {
	if r.Duration <= 0 || devices <= 0 {
		return 0
	}
	return float64(r.GCWallTime) / float64(r.Duration) / float64(devices)
}

// String renders a compact single-run report.
func (r *Results) String() string {
	var b strings.Builder
	name := r.Scheme.String()
	if r.Scheme == SchemeSteering {
		name += "/" + r.Staging.String()
	}
	fmt.Fprintf(&b, "%-22s mean=%9.1fµs p99=%9.1fµs gc=%d erases=%d wa=%.2f",
		name, r.Latency.Mean/1e3, float64(r.Latency.P99)/1e3, r.GCEpisodes, r.Erases, r.WriteAmp)
	if r.Scheme == SchemeSteering {
		fmt.Fprintf(&b, " redirect=%.1f%%", 100*r.RedirectRatio)
	}
	if r.RebuildDuration > 0 {
		fmt.Fprintf(&b, " rebuild=%v", r.RebuildDuration)
	}
	if r.Fault.Injected {
		fmt.Fprintf(&b, " wov=%v loss=%d", r.Fault.WindowOfVulnerability, r.Fault.DataLossEvents)
	}
	if r.ScrubEnabled {
		fmt.Fprintf(&b, " scrubbed=%d repaired=%d", r.Scrub.StripesScanned, r.Scrub.UnitsRepaired)
	}
	if r.Integrity.ChecksumErrors > 0 {
		fmt.Fprintf(&b, " cksum=%d/%d", r.Integrity.ChecksumFixed, r.Integrity.ChecksumErrors)
	}
	if r.Integrity.HedgedReads > 0 {
		fmt.Fprintf(&b, " hedged=%d wins=%d", r.Integrity.HedgedReads, r.Integrity.HedgeReconWins)
	}
	if r.Robust.DeadlineExceeded > 0 || r.Robust.Rejected > 0 {
		fmt.Fprintf(&b, " deadline=%d rejected=%d", r.Robust.DeadlineExceeded, r.Robust.Rejected)
	}
	if r.Robust.TransientErrors > 0 {
		fmt.Fprintf(&b, " transient=%d retries=%d exhausted=%d",
			r.Robust.TransientErrors, r.Robust.Retries, r.Robust.RetriesExhausted)
	}
	if r.Robust.Quarantines > 0 {
		fmt.Fprintf(&b, " quarantines=%d reinstated=%d", r.Robust.Quarantines, r.Robust.Reinstatements)
	}
	if r.Crash.Enabled {
		mode := "journal"
		if !r.Crash.Journaled {
			mode = "no-journal"
		}
		fmt.Fprintf(&b, " crash[%s]=%v dirty=%d torn=%d found=%d/%d resync=%v",
			mode, r.Crash.CrashAt, r.Crash.DirtyStripes, r.Crash.TornPages,
			r.Crash.ResyncFound, r.Crash.InconsistentStripes, r.Crash.ResyncDuration)
	}
	return b.String()
}
