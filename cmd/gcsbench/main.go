// Command gcsbench regenerates the tables and figures of the paper's
// evaluation section from the simulator.
//
// Usage:
//
//	gcsbench -experiment fig7a [-requests 20000] [-workers 8] [-seed 1]
//
// Experiments: table1, fig1 (variability timeline), fig2, fig7a, fig7b (an
// alias of fig7a's run that highlights GC counts), fig8, fig9, fig10,
// fig11, raid6 (the future-work extension), endurance, faults (the
// reliability grid under injected failures), scrub (the self-healing grid:
// patrol scrub and GC-hedged reads under seeded latent errors), failslow
// (the fail-slow tolerance grid: health quarantine and hedged reads under
// a sustained member slowdown with transient read errors), cluster (the
// fleet grid: many arrays and tenants behind consistent-hash placement,
// hash-only vs GC/rebuild-aware routing), chaos (the failure-domain grid:
// whole-array crashes under a seeded chaos plan, unreplicated vs
// replicated writes), crashconsist (the crash-consistency grid: power loss
// mid-write with torn pages, intent journal vs full-scrub remount), all.
// Run with -list-experiments to print the registry.
//
// -json <path> additionally writes the machine-readable results of the run
// (every grid's full metric tables) to the given file.
//
// -trace <path> streams the structured simulation event log (JSONL, one
// event per line) of the tracing-aware experiments — currently fig1, whose
// sequential per-scheme runs are separated by "run-start" events. -timeseries
// <path> writes fig1's windowed latency/gauge time series as CSV, one
// labelled block per scheme. Parallel grid experiments ignore both flags.
//
// The benchmark regression gate is a separate mode that runs no
// experiments:
//
//	gcsbench -bench-compare old.json [-bench-tolerance 0.10] new.json
//
// compares two BENCH_*.json documents (see bench_emit_test.go) and exits
// non-zero when events/sec fell or allocs/op rose by more than the
// tolerance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"gcsteering"
	"gcsteering/internal/harness"
)

// experimentOut is one experiment's result in the -json document: grid
// experiments carry their metric tables, text experiments their rendering.
type experimentOut struct {
	Name string        `json:"name"`
	Text string        `json:"text,omitempty"`
	Grid *harness.Grid `json:"grid,omitempty"`
}

// jsonSchemaVersion is bumped whenever the shape of jsonDoc changes, so
// downstream consumers can gate their parsers on it.
const jsonSchemaVersion = 1

// jsonDoc is the top-level -json document.
type jsonDoc struct {
	Schema      int             `json:"schema"`
	Requests    int             `json:"requests"`
	Seed        int64           `json:"seed"`
	Repeats     int             `json:"repeats"`
	Experiments []experimentOut `json:"experiments"`
}

// allExperiments is the -experiment all sequence.
var allExperiments = []string{"table1", "fig1", "fig2", "fig7a", "fig8",
	"fig9", "fig10", "fig11", "raid6", "endurance", "faults", "scrub",
	"failslow", "cluster", "chaos", "crashconsist"}

// experimentBlurbs describes each entry of allExperiments for
// -list-experiments (aliases like fig7b resolve to the same runs and are
// not listed separately).
var experimentBlurbs = map[string]string{
	"table1":       "synthetic workload generator check against the paper's Table I",
	"fig1":         "performance-variability timeline per GC scheme",
	"fig2":         "GC duty cycle and episode statistics",
	"fig7a":        "mean response time per scheme (fig7b/fig7 alias: GC counts)",
	"fig8":         "array-size sweep",
	"fig9":         "stripe-unit sweep",
	"fig10":        "staging configuration comparison (reserved vs dedicated)",
	"fig11":        "response time and rebuild duration during reconstruction",
	"raid6":        "RAID6 extension of the main comparison",
	"endurance":    "per-scheme flash wear (erases, write amplification)",
	"faults":       "reliability grid: failures, rebuilds, window of vulnerability",
	"scrub":        "self-healing grid: patrol scrub and hedged reads vs seeded defects",
	"failslow":     "fail-slow grid: health quarantine, retries, hedged reads vs a slow member",
	"cluster":      "fleet grid: 8 arrays × 16 tenants, hash-only vs GC/rebuild-aware routing",
	"chaos":        "failure-domain grid: whole-array crashes and chaos, unreplicated vs replicated writes",
	"crashconsist": "crash-consistency grid: power loss mid-write, intent journal vs full-scrub remount",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses argv, executes the selected
// experiments writing reports to stdout and diagnostics to stderr, and
// returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		experiment = fs.String("experiment", "all", "which experiment to run: table1|fig1|fig2|fig7a|fig7b|fig8|fig9|fig10|fig11|raid6|endurance|faults|scrub|failslow|cluster|chaos|crashconsist|all")
		listExps   = fs.Bool("list-experiments", false, "print the experiment registry and exit")
		requests   = fs.Int("requests", 8000, "requests per workload (scaled-down replay of the Table I traces)")
		workers    = fs.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		seed       = fs.Int64("seed", 0, "seed offset for replication")
		repeats    = fs.Int("repeats", 1, "average each cell over this many seeds")
		jsonPath   = fs.String("json", "", "also write results as JSON to this file")
		tracePath  = fs.String("trace", "", "write the simulation event log (JSONL) of tracing-aware experiments (fig1) to this file")
		seriesPath = fs.String("timeseries", "", "write the windowed latency time series (CSV) of tracing-aware experiments (fig1) to this file")
		benchOld   = fs.String("bench-compare", "", "baseline BENCH_*.json: compare the BENCH_*.json named by the positional argument against it and exit non-zero on regression")
		benchTol   = fs.Float64("bench-tolerance", 0.10, "allowed fractional regression per gated metric before -bench-compare fails")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "gcsbench: "+format+"\n", args...)
		return 1
	}
	if *benchOld != "" {
		if fs.NArg() != 1 {
			return fail("usage: gcsbench -bench-compare old.json new.json")
		}
		return runBenchCompare(*benchOld, fs.Arg(0), *benchTol, stdout, stderr)
	}
	if *listExps {
		// Sorted, so the listing is stable as the registry grows (the run
		// order of -experiment all stays curated separately).
		sorted := append([]string(nil), allExperiments...)
		sort.Strings(sorted)
		for _, n := range sorted {
			fmt.Fprintf(stdout, "%-10s %s\n", n, experimentBlurbs[n])
		}
		fmt.Fprintf(stdout, "%-10s %s\n", "all", "run every experiment above in sequence")
		return 0
	}

	// Resolve the experiment list before touching any output file, so a
	// typo'd -experiment exits cleanly without side effects.
	names := []string{strings.ToLower(*experiment)}
	if names[0] == "all" {
		names = allExperiments
	}
	for _, n := range names {
		if !knownExperiment(n) {
			return fail("unknown experiment %q (have %s, all; see -list-experiments)",
				n, strings.Join(allExperiments, ", "))
		}
	}

	o := harness.Options{MaxRequests: *requests, Workers: *workers, Seed: *seed, Repeats: *repeats}
	doc := jsonDoc{Schema: jsonSchemaVersion, Requests: *requests, Seed: *seed, Repeats: *repeats}

	var traceFile *os.File
	var tracer *gcsteering.Tracer
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail("create %s: %v", *tracePath, err)
		}
		traceFile = f
		tracer = gcsteering.NewTracer(f)
		o.Trace = tracer
	}
	var seriesFile *os.File
	var seriesBuf *bufio.Writer
	if *seriesPath != "" {
		f, err := os.Create(*seriesPath)
		if err != nil {
			return fail("create %s: %v", *seriesPath, err)
		}
		seriesFile = f
		seriesBuf = bufio.NewWriter(f)
		o.SeriesOut = seriesBuf
	}

	for _, n := range names {
		out, err := runOne(n, o, stdout)
		if err != nil {
			return fail("%v", err)
		}
		doc.Experiments = append(doc.Experiments, out)
	}

	// Flush is nil-safe (the tracer's nil-receiver contract); only the
	// file handle needs a presence check.
	if err := tracer.Flush(); err != nil {
		return fail("write trace %s: %v", *tracePath, err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			return fail("close %s: %v", *tracePath, err)
		}
	}
	if seriesBuf != nil {
		if err := seriesBuf.Flush(); err != nil {
			return fail("write timeseries %s: %v", *seriesPath, err)
		}
		if err := seriesFile.Close(); err != nil {
			return fail("close %s: %v", *seriesPath, err)
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return fail("encode json: %v", err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return fail("write %s: %v", *jsonPath, err)
		}
	}
	return 0
}

// knownExperiment reports whether name is a runnable experiment.
func knownExperiment(name string) bool {
	switch name {
	case "fig1", "endurance", "table1", "fig2", "fig7a", "fig7b", "fig7",
		"fig8", "fig9", "fig10", "fig11", "raid6", "faults", "scrub",
		"failslow", "cluster", "chaos", "crashconsist":
		return true
	}
	return false
}

// runOne executes one experiment, renders its report to stdout, and returns
// its -json entry.
func runOne(name string, o harness.Options, stdout io.Writer) (experimentOut, error) {
	out := experimentOut{Name: name}
	text := func(s string, err error) error {
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, s)
		out.Text = s
		return nil
	}
	grid := func(g *harness.Grid, err error, base string) error {
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, g.Render(base))
		out.Grid = g
		return nil
	}
	var err error
	switch name {
	case "fig1":
		err = text(harness.Fig1(o))
	case "endurance":
		err = text(harness.Endurance(o))
	case "table1":
		err = text(harness.Table1(o))
	case "fig2":
		err = text(harness.Fig2(o))
	case "fig7a", "fig7b", "fig7":
		g, e := harness.Fig7(o)
		err = grid(g, e, "LGC")
	case "fig8":
		g, e := harness.Fig8(o)
		err = grid(g, e, "5 SSDs")
	case "fig9":
		g, e := harness.Fig9(o)
		err = grid(g, e, "64KB")
	case "fig10":
		g, e := harness.Fig10(o)
		err = grid(g, e, "Reserved")
	case "fig11":
		g, e := harness.Fig11(o)
		err = grid(g, e, "")
	case "raid6":
		g, e := harness.RAID6(o)
		err = grid(g, e, "LGC")
	case "faults":
		g, e := harness.Faults(o)
		err = grid(g, e, "")
	case "scrub":
		g, e := harness.Scrub(o)
		err = grid(g, e, "")
	case "failslow":
		g, e := harness.FailSlow(o)
		err = grid(g, e, "none")
	case "cluster":
		g, e := harness.Cluster(o)
		err = grid(g, e, "hash-only")
	case "chaos":
		g, e := harness.Chaos(o)
		err = grid(g, e, "no-repl")
	case "crashconsist":
		g, e := harness.CrashConsist(o)
		err = grid(g, e, "")
	default:
		err = fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return out, err
	}
	fmt.Fprintln(stdout)
	return out, nil
}
