// Command gcsbench regenerates the tables and figures of the paper's
// evaluation section from the simulator.
//
// Usage:
//
//	gcsbench -experiment fig7a [-requests 20000] [-workers 8] [-seed 1]
//
// Experiments: table1, fig1 (variability timeline), fig2, fig7a, fig7b (an
// alias of fig7a's run that highlights GC counts), fig8, fig9, fig10,
// fig11, raid6 (the future-work extension), endurance, faults (the
// reliability grid under injected failures), all.
//
// -json <path> additionally writes the machine-readable results of the run
// (every grid's full metric tables) to the given file.
//
// -trace <path> streams the structured simulation event log (JSONL, one
// event per line) of the tracing-aware experiments — currently fig1, whose
// sequential per-scheme runs are separated by "run-start" events. -timeseries
// <path> writes fig1's windowed latency/gauge time series as CSV, one
// labelled block per scheme. Parallel grid experiments ignore both flags.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"gcsteering"
	"gcsteering/internal/harness"
)

// experimentOut is one experiment's result in the -json document: grid
// experiments carry their metric tables, text experiments their rendering.
type experimentOut struct {
	Name string        `json:"name"`
	Text string        `json:"text,omitempty"`
	Grid *harness.Grid `json:"grid,omitempty"`
}

// jsonDoc is the top-level -json document.
type jsonDoc struct {
	Requests    int             `json:"requests"`
	Seed        int64           `json:"seed"`
	Repeats     int             `json:"repeats"`
	Experiments []experimentOut `json:"experiments"`
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: table1|fig1|fig2|fig7a|fig7b|fig8|fig9|fig10|fig11|raid6|endurance|faults|all")
		requests   = flag.Int("requests", 8000, "requests per workload (scaled-down replay of the Table I traces)")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 0, "seed offset for replication")
		repeats    = flag.Int("repeats", 1, "average each cell over this many seeds")
		jsonPath   = flag.String("json", "", "also write results as JSON to this file")
		tracePath  = flag.String("trace", "", "write the simulation event log (JSONL) of tracing-aware experiments (fig1) to this file")
		seriesPath = flag.String("timeseries", "", "write the windowed latency time series (CSV) of tracing-aware experiments (fig1) to this file")
	)
	flag.Parse()
	o := harness.Options{MaxRequests: *requests, Workers: *workers, Seed: *seed, Repeats: *repeats}
	doc := jsonDoc{Requests: *requests, Seed: *seed, Repeats: *repeats}

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gcsbench: "+format+"\n", args...)
		os.Exit(1)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail("create %s: %v", *tracePath, err)
		}
		tr := gcsteering.NewTracer(f)
		o.Trace = tr
		defer func() {
			if err := tr.Flush(); err != nil {
				fail("write trace %s: %v", *tracePath, err)
			}
			if err := f.Close(); err != nil {
				fail("close %s: %v", *tracePath, err)
			}
		}()
	}
	if *seriesPath != "" {
		f, err := os.Create(*seriesPath)
		if err != nil {
			fail("create %s: %v", *seriesPath, err)
		}
		bw := bufio.NewWriter(f)
		o.SeriesOut = bw
		defer func() {
			if err := bw.Flush(); err != nil {
				fail("write timeseries %s: %v", *seriesPath, err)
			}
			if err := f.Close(); err != nil {
				fail("close %s: %v", *seriesPath, err)
			}
		}()
	}

	// Each experiment renders to stdout and returns its -json entry.
	run := func(name string) (experimentOut, error) {
		out := experimentOut{Name: name}
		text := func(s string, err error) error {
			if err != nil {
				return err
			}
			fmt.Print(s)
			out.Text = s
			return nil
		}
		grid := func(g *harness.Grid, err error, base string) error {
			if err != nil {
				return err
			}
			fmt.Print(g.Render(base))
			out.Grid = g
			return nil
		}
		var err error
		switch name {
		case "fig1":
			err = text(harness.Fig1(o))
		case "endurance":
			err = text(harness.Endurance(o))
		case "table1":
			err = text(harness.Table1(o))
		case "fig2":
			err = text(harness.Fig2(o))
		case "fig7a", "fig7b", "fig7":
			g, e := harness.Fig7(o)
			err = grid(g, e, "LGC")
		case "fig8":
			g, e := harness.Fig8(o)
			err = grid(g, e, "5 SSDs")
		case "fig9":
			g, e := harness.Fig9(o)
			err = grid(g, e, "64KB")
		case "fig10":
			g, e := harness.Fig10(o)
			err = grid(g, e, "Reserved")
		case "fig11":
			g, e := harness.Fig11(o)
			err = grid(g, e, "")
		case "raid6":
			g, e := harness.RAID6(o)
			err = grid(g, e, "LGC")
		case "faults":
			g, e := harness.Faults(o)
			err = grid(g, e, "")
		default:
			err = fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return out, err
		}
		fmt.Println()
		return out, nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table1", "fig1", "fig2", "fig7a", "fig8", "fig9", "fig10", "fig11", "raid6", "endurance", "faults"}
	}
	for _, n := range names {
		out, err := run(strings.ToLower(n))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsbench: %v\n", err)
			os.Exit(1)
		}
		doc.Experiments = append(doc.Experiments, out)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gcsbench: encode json: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "gcsbench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
