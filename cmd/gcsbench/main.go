// Command gcsbench regenerates the tables and figures of the paper's
// evaluation section from the simulator.
//
// Usage:
//
//	gcsbench -experiment fig7a [-requests 20000] [-workers 8] [-seed 1]
//
// Experiments: table1, fig1 (variability timeline), fig2, fig7a, fig7b (an
// alias of fig7a's run that highlights GC counts), fig8, fig9, fig10,
// fig11, raid6 (the future-work extension), endurance, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gcsteering/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run: table1|fig1|fig2|fig7a|fig7b|fig8|fig9|fig10|fig11|raid6|endurance|all")
		requests   = flag.Int("requests", 8000, "requests per workload (scaled-down replay of the Table I traces)")
		workers    = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		seed       = flag.Int64("seed", 0, "seed offset for replication")
		repeats    = flag.Int("repeats", 1, "average each cell over this many seeds")
	)
	flag.Parse()
	o := harness.Options{MaxRequests: *requests, Workers: *workers, Seed: *seed, Repeats: *repeats}

	run := func(name string) error {
		switch name {
		case "fig1":
			s, err := harness.Fig1(o)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case "endurance":
			s, err := harness.Endurance(o)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case "table1":
			s, err := harness.Table1(o)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case "fig2":
			s, err := harness.Fig2(o)
			if err != nil {
				return err
			}
			fmt.Print(s)
		case "fig7a", "fig7b", "fig7":
			g, err := harness.Fig7(o)
			if err != nil {
				return err
			}
			fmt.Print(g.Render("LGC"))
		case "fig8":
			g, err := harness.Fig8(o)
			if err != nil {
				return err
			}
			fmt.Print(g.Render("5 SSDs"))
		case "fig9":
			g, err := harness.Fig9(o)
			if err != nil {
				return err
			}
			fmt.Print(g.Render("64KB"))
		case "fig10":
			g, err := harness.Fig10(o)
			if err != nil {
				return err
			}
			fmt.Print(g.Render("Reserved"))
		case "fig11":
			g, err := harness.Fig11(o)
			if err != nil {
				return err
			}
			fmt.Print(g.Render(""))
		case "raid6":
			g, err := harness.RAID6(o)
			if err != nil {
				return err
			}
			fmt.Print(g.Render("LGC"))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table1", "fig1", "fig2", "fig7a", "fig8", "fig9", "fig10", "fig11", "raid6", "endurance"}
	}
	for _, n := range names {
		if err := run(strings.ToLower(n)); err != nil {
			fmt.Fprintf(os.Stderr, "gcsbench: %v\n", err)
			os.Exit(1)
		}
	}
}
