// Benchmark regression gate: gcsbench -bench-compare old.json new.json
// compares two BENCH_*.json documents (written by TestEmitBenchJSON in the
// repo root) and exits non-zero when a gated metric regressed beyond the
// tolerance. CI runs it against the committed baseline so an event-loop or
// allocation regression fails the build instead of landing silently.
//
// Gated metrics: events_per_sec (higher is better) and allocs_per_op
// (lower is better). The remaining fields are reported for context but
// never fail the gate — wall-clock grid times swing too much across
// runners to gate on.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// benchFile mirrors the benchDoc shape emitted by TestEmitBenchJSON.
type benchFile struct {
	Schema            int     `json:"schema"`
	GoVersion         string  `json:"go_version"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	ReplayRequests    int     `json:"replay_requests"`
	EventsPerSec      float64 `json:"events_per_sec"`
	SimulatedGBPerSec float64 `json:"simulated_gb_per_sec"`
	AllocsPerOp       int64   `json:"allocs_per_op"`
	Fig1GridWallMs    float64 `json:"fig1_grid_wall_ms"`
	ClusterGridWallMs float64 `json:"cluster_grid_wall_ms"`
}

// benchCompareSchema is the document schema this gate understands; it
// tracks benchSchemaVersion in bench_emit_test.go.
const benchCompareSchema = 1

func loadBench(path string) (benchFile, error) {
	var doc benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("parse %s: %w", path, err)
	}
	if doc.Schema != benchCompareSchema {
		return doc, fmt.Errorf("%s: schema %d, want %d", path, doc.Schema, benchCompareSchema)
	}
	return doc, nil
}

// benchMetric is one compared row of the diff report.
type benchMetric struct {
	name         string
	old, new     float64
	higherBetter bool
	gated        bool
}

// regressed reports whether the metric moved in the losing direction by
// more than tol (a fraction of the baseline). A zero baseline cannot be
// compared proportionally and never regresses.
func (m benchMetric) regressed(tol float64) bool {
	if !m.gated || m.old == 0 {
		return false
	}
	if m.higherBetter {
		return m.new < m.old*(1-tol)
	}
	return m.new > m.old*(1+tol)
}

// delta is the fractional change relative to the baseline (NaN when the
// baseline is zero).
func (m benchMetric) delta() float64 {
	if m.old == 0 {
		return math.NaN()
	}
	return (m.new - m.old) / m.old
}

// runBenchCompare loads both documents, prints the diff report to stdout,
// and returns the process exit code: 0 when no gated metric regressed
// beyond tol, 1 otherwise (or on unreadable/incomparable input).
func runBenchCompare(oldPath, newPath string, tol float64, stdout, stderr io.Writer) int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "gcsbench: "+format+"\n", args...)
		return 1
	}
	if tol < 0 {
		return fail("bench-tolerance %v must be non-negative", tol)
	}
	oldDoc, err := loadBench(oldPath)
	if err != nil {
		return fail("%v", err)
	}
	newDoc, err := loadBench(newPath)
	if err != nil {
		return fail("%v", err)
	}
	if oldDoc.ReplayRequests != newDoc.ReplayRequests {
		return fail("documents are not comparable: replay_requests %d vs %d",
			oldDoc.ReplayRequests, newDoc.ReplayRequests)
	}

	metrics := []benchMetric{
		{"events_per_sec", oldDoc.EventsPerSec, newDoc.EventsPerSec, true, true},
		{"allocs_per_op", float64(oldDoc.AllocsPerOp), float64(newDoc.AllocsPerOp), false, true},
		{"simulated_gb_per_sec", oldDoc.SimulatedGBPerSec, newDoc.SimulatedGBPerSec, true, false},
		{"fig1_grid_wall_ms", oldDoc.Fig1GridWallMs, newDoc.Fig1GridWallMs, false, false},
		{"cluster_grid_wall_ms", oldDoc.ClusterGridWallMs, newDoc.ClusterGridWallMs, false, false},
	}

	fmt.Fprintf(stdout, "benchmark comparison: %s -> %s (tolerance %.0f%%)\n",
		oldPath, newPath, tol*100)
	if oldDoc.GoVersion != newDoc.GoVersion {
		fmt.Fprintf(stdout, "note: go versions differ (%s vs %s)\n",
			oldDoc.GoVersion, newDoc.GoVersion)
	}
	regressions := 0
	for _, m := range metrics {
		verdict := "ok"
		switch {
		case m.regressed(tol):
			verdict = "REGRESSION"
			regressions++
		case !m.gated:
			verdict = "info"
		}
		fmt.Fprintf(stdout, "  %-22s %14.2f -> %14.2f  %+7.2f%%  %s\n",
			m.name, m.old, m.new, m.delta()*100, verdict)
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "FAIL: %d gated metric(s) regressed beyond %.0f%%\n",
			regressions, tol*100)
		return 1
	}
	fmt.Fprintf(stdout, "PASS: no gated metric regressed beyond %.0f%%\n", tol*100)
	return 0
}
