package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBench writes a benchFile document to dir and returns its path.
func writeBench(t *testing.T, dir, name string, doc benchFile) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// baselineBench is a plausible committed baseline for the gate tests.
func baselineBench() benchFile {
	return benchFile{
		Schema:            benchCompareSchema,
		GoVersion:         "go1.24.0",
		GOMAXPROCS:        1,
		ReplayRequests:    3000,
		EventsPerSec:      600000,
		SimulatedGBPerSec: 12,
		AllocsPerOp:       500000,
		Fig1GridWallMs:    300,
		ClusterGridWallMs: 600,
	}
}

func TestBenchCompareRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", baselineBench())

	// 20% fewer events/sec: well past the default 10% tolerance.
	slow := baselineBench()
	slow.EventsPerSec *= 0.8
	newPath := writeBench(t, dir, "new.json", slow)

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", oldPath, newPath}, &out, &errb); code == 0 {
		t.Fatalf("20%% events/sec regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "events_per_sec") {
		t.Fatalf("report does not name the regressed metric:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("report lacks a FAIL verdict:\n%s", out.String())
	}
}

func TestBenchCompareAllocRegressionFails(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", baselineBench())

	leaky := baselineBench()
	leaky.AllocsPerOp = leaky.AllocsPerOp * 3 / 2
	newPath := writeBench(t, dir, "new.json", leaky)

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", oldPath, newPath}, &out, &errb); code == 0 {
		t.Fatalf("50%% allocs/op regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs_per_op") {
		t.Fatalf("report does not name allocs_per_op:\n%s", out.String())
	}
}

func TestBenchCompareWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", baselineBench())

	// 5% slower and 5% more allocations: inside the default 10% band.
	wobble := baselineBench()
	wobble.EventsPerSec *= 0.95
	wobble.AllocsPerOp = wobble.AllocsPerOp * 21 / 20
	newPath := writeBench(t, dir, "new.json", wobble)

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("5%% wobble failed the gate (exit %d):\n%s%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("report lacks a PASS verdict:\n%s", out.String())
	}
}

func TestBenchCompareImprovementPasses(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", baselineBench())

	fast := baselineBench()
	fast.EventsPerSec *= 1.6
	fast.AllocsPerOp /= 6
	newPath := writeBench(t, dir, "new.json", fast)

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", oldPath, newPath}, &out, &errb); code != 0 {
		t.Fatalf("improvement failed the gate (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}

func TestBenchCompareToleranceFlagWidensBand(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", baselineBench())

	slow := baselineBench()
	slow.EventsPerSec *= 0.8
	newPath := writeBench(t, dir, "new.json", slow)

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", oldPath, "-bench-tolerance", "0.3", newPath}, &out, &errb); code != 0 {
		t.Fatalf("20%% regression failed a 30%% tolerance gate (exit %d):\n%s%s",
			code, out.String(), errb.String())
	}
}

func TestBenchCompareRejectsIncomparableDocs(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", baselineBench())

	other := baselineBench()
	other.ReplayRequests = 9999
	newPath := writeBench(t, dir, "new.json", other)

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", oldPath, newPath}, &out, &errb); code == 0 {
		t.Fatal("documents with different replay_requests compared cleanly")
	}
	if !strings.Contains(errb.String(), "replay_requests") {
		t.Fatalf("stderr %q does not explain the mismatch", errb.String())
	}

	stale := baselineBench()
	stale.Schema = benchCompareSchema + 1
	stalePath := writeBench(t, dir, "stale.json", stale)
	if code := run([]string{"-bench-compare", oldPath, stalePath}, &out, &errb); code == 0 {
		t.Fatal("schema mismatch compared cleanly")
	}
}

func TestBenchCompareUsageErrors(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeBench(t, dir, "old.json", baselineBench())

	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", oldPath}, &out, &errb); code == 0 {
		t.Fatal("missing new.json argument exited 0")
	}
	if code := run([]string{"-bench-compare", filepath.Join(dir, "absent.json"), oldPath}, &out, &errb); code == 0 {
		t.Fatal("unreadable baseline exited 0")
	}
}

// TestBenchCompareCommittedBaselines gates the repo's own committed
// documents: BENCH_7.json must not regress against BENCH_6.json. This is
// the same comparison CI performs against a freshly emitted document.
func TestBenchCompareCommittedBaselines(t *testing.T) {
	old := filepath.Join("..", "..", "BENCH_6.json")
	new := filepath.Join("..", "..", "BENCH_7.json")
	if _, err := os.Stat(new); err != nil {
		t.Skip("BENCH_7.json not yet emitted")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-bench-compare", old, new}, &out, &errb); code != 0 {
		t.Fatalf("committed BENCH_7.json regresses vs BENCH_6.json (exit %d):\n%s%s",
			code, out.String(), errb.String())
	}
}
