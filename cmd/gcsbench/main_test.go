package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestUnknownExperimentExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "fig99"}, &out, &errb); code == 0 {
		t.Fatal("unknown experiment exited 0")
	}
	if !strings.Contains(errb.String(), `unknown experiment "fig99"`) {
		t.Fatalf("stderr %q lacks a clear unknown-experiment message", errb.String())
	}
	// The error lists what IS runnable, so a typo is a one-step fix.
	for _, name := range allExperiments {
		if !strings.Contains(errb.String(), name) {
			t.Fatalf("stderr %q does not name experiment %q", errb.String(), name)
		}
	}
}

func TestListExperimentsPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-experiments"}, &out, &errb); code != 0 {
		t.Fatalf("-list-experiments exited %d: %s", code, errb.String())
	}
	for _, name := range allExperiments {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("registry %q missing experiment %q", out.String(), name)
		}
		if experimentBlurbs[name] == "" {
			t.Fatalf("experiment %q has no blurb", name)
		}
		if !strings.Contains(out.String(), experimentBlurbs[name]) {
			t.Fatalf("registry %q missing blurb for %q", out.String(), name)
		}
	}
	if !strings.Contains(out.String(), "all") {
		t.Fatalf("registry %q missing the all pseudo-experiment", out.String())
	}
}

func TestListExperimentsSorted(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-experiments"}, &out, &errb); code != 0 {
		t.Fatalf("-list-experiments exited %d: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	// Every line except the trailing "all" summary must be in sorted order.
	var names []string
	for _, l := range lines[:len(lines)-1] {
		names = append(names, strings.Fields(l)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("registry not sorted: %v", names)
	}
	if len(names) != len(allExperiments) {
		t.Fatalf("registry lists %d experiments, have %d", len(names), len(allExperiments))
	}
}

func TestJSONDocCarriesSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "table1", "-requests", "300", "-json", path}, &out, &errb); code != 0 {
		t.Fatalf("exited %d: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema int `json:"schema"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != jsonSchemaVersion {
		t.Fatalf("schema = %d, want %d", doc.Schema, jsonSchemaVersion)
	}
}

func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet grid")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "cluster", "-requests", "800"}, &out, &errb); code != 0 {
		t.Fatalf("cluster exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"Fleet simulation", "hash-only", "gc-aware", "redirects"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("cluster output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownFlagExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code == 0 {
		t.Fatal("unknown flag exited 0")
	}
}

func TestUnwritableOutputPathsExitNonZero(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out")
	for _, flag := range []string{"-trace", "-timeseries"} {
		var out, errb bytes.Buffer
		code := run([]string{"-experiment", "table1", flag, bad}, &out, &errb)
		if code == 0 {
			t.Fatalf("%s %s exited 0", flag, bad)
		}
		if !strings.Contains(errb.String(), "create") {
			t.Fatalf("%s: stderr %q lacks the create error", flag, errb.String())
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "table1", "-requests", "500"}, &out, &errb); code != 0 {
		t.Fatalf("table1 exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("stdout %q lacks the Table I report", out.String())
	}
}
