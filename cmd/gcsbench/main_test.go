package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperimentExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "fig99"}, &out, &errb); code == 0 {
		t.Fatal("unknown experiment exited 0")
	}
	if !strings.Contains(errb.String(), `unknown experiment "fig99"`) {
		t.Fatalf("stderr %q lacks a clear unknown-experiment message", errb.String())
	}
	// The error lists what IS runnable, so a typo is a one-step fix.
	for _, name := range allExperiments {
		if !strings.Contains(errb.String(), name) {
			t.Fatalf("stderr %q does not name experiment %q", errb.String(), name)
		}
	}
}

func TestListExperimentsPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list-experiments"}, &out, &errb); code != 0 {
		t.Fatalf("-list-experiments exited %d: %s", code, errb.String())
	}
	for _, name := range allExperiments {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("registry %q missing experiment %q", out.String(), name)
		}
		if experimentBlurbs[name] == "" {
			t.Fatalf("experiment %q has no blurb", name)
		}
		if !strings.Contains(out.String(), experimentBlurbs[name]) {
			t.Fatalf("registry %q missing blurb for %q", out.String(), name)
		}
	}
	if !strings.Contains(out.String(), "all") {
		t.Fatalf("registry %q missing the all pseudo-experiment", out.String())
	}
}

func TestUnknownFlagExitsNonZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code == 0 {
		t.Fatal("unknown flag exited 0")
	}
}

func TestUnwritableOutputPathsExitNonZero(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "out")
	for _, flag := range []string{"-trace", "-timeseries"} {
		var out, errb bytes.Buffer
		code := run([]string{"-experiment", "table1", flag, bad}, &out, &errb)
		if code == 0 {
			t.Fatalf("%s %s exited 0", flag, bad)
		}
		if !strings.Contains(errb.String(), "create") {
			t.Fatalf("%s: stderr %q lacks the create error", flag, errb.String())
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-experiment", "table1", "-requests", "500"}, &out, &errb); code != 0 {
		t.Fatalf("table1 exited %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("stdout %q lacks the Table I report", out.String())
	}
}
