// Command traceinfo prints the paper's Table I characteristics and the
// Figure 2 RI/WI/MIX page classification for a block trace file (MSR
// Cambridge CSV or SPC-1 format, auto-selected by -format).
//
// Usage:
//
//	traceinfo -format msr fin1.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gcsteering/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses argv, writes the report to
// stdout and diagnostics to stderr, and returns the process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format    = fs.String("format", "msr", "input format: msr | spc")
		pageSize  = fs.Int("page-size", 4096, "page size for the Fig. 2 classification")
		threshold = fs.Float64("threshold", 0.9, "RI/WI classification threshold (paper: 0.9)")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	fail := func(f string, args ...any) int {
		fmt.Fprintf(stderr, "traceinfo: "+f+"\n", args...)
		return 1
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: traceinfo [-format msr|spc] <trace-file>")
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return fail("%v", err)
	}
	defer f.Close()

	var tr trace.Trace
	switch *format {
	case "msr":
		tr, err = trace.ParseMSR(f)
	case "spc":
		tr, err = trace.ParseSPC(f)
	default:
		return fail("unknown format %q (msr|spc)", *format)
	}
	if err != nil {
		return fail("parse: %v", err)
	}

	s := trace.ComputeStats(tr)
	fmt.Fprintf(stdout, "Trace characteristics (Table I columns)\n")
	fmt.Fprintf(stdout, "  requests:      %d\n", s.Requests)
	fmt.Fprintf(stdout, "  read ratio:    %.1f%%\n", 100*s.ReadRatio)
	fmt.Fprintf(stdout, "  avg req size:  %.1f KB\n", s.AvgSizeKB)
	fmt.Fprintf(stdout, "  span:          %v\n", s.Duration)
	fmt.Fprintf(stdout, "  footprint:     %.2f GiB (max offset)\n", float64(s.MaxOffset)/float64(1<<30))

	c := trace.ClassifyPages(tr, *pageSize, *threshold)
	fmt.Fprintf(stdout, "\nPage classification at %d B pages, threshold %.0f%% (Figure 2)\n", *pageSize, 100**threshold)
	fmt.Fprintf(stdout, "  pages:   RI=%d  WI=%d  MIX=%d\n",
		c.Pages[trace.ClassRI], c.Pages[trace.ClassWI], c.Pages[trace.ClassMIX])
	fmt.Fprintf(stdout, "  reads:   RI=%.1f%%  MIX=%.1f%%  WI=%.1f%%\n",
		100*c.ReadShare(trace.ClassRI), 100*c.ReadShare(trace.ClassMIX), 100*c.ReadShare(trace.ClassWI))
	fmt.Fprintf(stdout, "  writes:  WI=%.1f%%  MIX=%.1f%%  RI=%.1f%%\n",
		100*c.WriteShare(trace.ClassWI), 100*c.WriteShare(trace.ClassMIX), 100*c.WriteShare(trace.ClassRI))
	return 0
}
