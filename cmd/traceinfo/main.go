// Command traceinfo prints the paper's Table I characteristics and the
// Figure 2 RI/WI/MIX page classification for a block trace file (MSR
// Cambridge CSV or SPC-1 format, auto-selected by -format).
//
// Usage:
//
//	traceinfo -format msr fin1.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"gcsteering/internal/trace"
)

func main() {
	var (
		format    = flag.String("format", "msr", "input format: msr | spc")
		pageSize  = flag.Int("page-size", 4096, "page size for the Fig. 2 classification")
		threshold = flag.Float64("threshold", 0.9, "RI/WI classification threshold (paper: 0.9)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-format msr|spc] <trace-file>")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()

	var tr trace.Trace
	switch *format {
	case "msr":
		tr, err = trace.ParseMSR(f)
	case "spc":
		tr, err = trace.ParseSPC(f)
	default:
		fatalf("unknown format %q (msr|spc)", *format)
	}
	if err != nil {
		fatalf("parse: %v", err)
	}

	s := trace.ComputeStats(tr)
	fmt.Printf("Trace characteristics (Table I columns)\n")
	fmt.Printf("  requests:      %d\n", s.Requests)
	fmt.Printf("  read ratio:    %.1f%%\n", 100*s.ReadRatio)
	fmt.Printf("  avg req size:  %.1f KB\n", s.AvgSizeKB)
	fmt.Printf("  span:          %v\n", s.Duration)
	fmt.Printf("  footprint:     %.2f GiB (max offset)\n", float64(s.MaxOffset)/float64(1<<30))

	c := trace.ClassifyPages(tr, *pageSize, *threshold)
	fmt.Printf("\nPage classification at %d B pages, threshold %.0f%% (Figure 2)\n", *pageSize, 100**threshold)
	fmt.Printf("  pages:   RI=%d  WI=%d  MIX=%d\n",
		c.Pages[trace.ClassRI], c.Pages[trace.ClassWI], c.Pages[trace.ClassMIX])
	fmt.Printf("  reads:   RI=%.1f%%  MIX=%.1f%%  WI=%.1f%%\n",
		100*c.ReadShare(trace.ClassRI), 100*c.ReadShare(trace.ClassMIX), 100*c.ReadShare(trace.ClassWI))
	fmt.Printf("  writes:  WI=%.1f%%  MIX=%.1f%%  RI=%.1f%%\n",
		100*c.WriteShare(trace.ClassWI), 100*c.WriteShare(trace.ClassMIX), 100*c.WriteShare(trace.ClassRI))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceinfo: "+format+"\n", args...)
	os.Exit(1)
}
