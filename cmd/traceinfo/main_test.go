package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gcsteering/internal/trace"
	"gcsteering/internal/workload"
)

// writeTrace synthesizes a small workload and writes it in the given
// format, returning the file path.
func writeTrace(t *testing.T, format string, reqs int) string {
	t.Helper()
	p, ok := workload.ByName("Fin1")
	if !ok {
		t.Fatal("Fin1 profile missing")
	}
	tr, err := workload.Generate(p, workload.Options{Capacity: 1 << 28, MaxRequests: reqs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace."+format)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	switch format {
	case "msr":
		err = trace.WriteMSR(f, tr)
	case "spc":
		err = trace.WriteSPC(f, tr)
	default:
		t.Fatalf("unknown format %s", format)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportMSR(t *testing.T) {
	path := writeTrace(t, "msr", 300)
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "msr", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	rep := out.String()
	if !strings.Contains(rep, "requests:      300") {
		t.Errorf("report missing request count:\n%s", rep)
	}
	for _, want := range []string{"read ratio:", "avg req size:", "Page classification", "RI="} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestReportSPC(t *testing.T) {
	path := writeTrace(t, "spc", 120)
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "spc", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "requests:      120") {
		t.Errorf("SPC report missing request count:\n%s", out.String())
	}
}

func TestBadInvocations(t *testing.T) {
	path := writeTrace(t, "msr", 10)
	cases := [][]string{
		{},                            // missing file
		{"/does/not/exist.csv"},       // unreadable file
		{"-format", "tsv", path},      // unknown format
		{"-format", "spc", path},      // MSR bytes fed to the SPC parser
		{"-badflag", path},            // flag error
		{"-format", "msr", path, "x"}, // extra positional
	}
	for _, argv := range cases {
		var out, errb bytes.Buffer
		if code := run(argv, &out, &errb); code == 0 {
			t.Errorf("argv %v: want non-zero exit", argv)
		}
	}
}
