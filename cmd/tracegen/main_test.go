package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestListWorkloads(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"Fin1", "hm_0", "HPC_W"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestGenerateMSRToStdout(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "Fin1", "-requests", "200"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 200 {
		t.Fatalf("emitted %d lines, want 200", len(lines))
	}
	// MSR CSV: timestamp,host,disk,type,offset,size,latency — 7 fields.
	if got := len(strings.Split(lines[0], ",")); got != 7 {
		t.Fatalf("MSR line has %d fields, want 7: %q", got, lines[0])
	}
	if !strings.Contains(errb.String(), "Fin1: 200 requests") {
		t.Errorf("summary line missing: %q", errb.String())
	}
}

func TestGenerateSPCToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.spc")
	var out, errb bytes.Buffer
	code := run([]string{"-workload", "hm_0", "-requests", "50", "-format", "spc", "-out", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("-out file run still wrote %d bytes to stdout", out.Len())
	}
	// The file round-trips through traceinfo's parser via the smoke test in
	// cmd/traceinfo; here just check it exists and is non-empty.
	var info bytes.Buffer
	if code := run([]string{"-list"}, &info, &errb); code != 0 {
		t.Fatal("sanity -list failed")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	gen := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"-workload", "prxy_0", "-requests", "100", "-seed", "7"}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		return out.String()
	}
	if gen() != gen() {
		t.Fatal("same seed produced different traces")
	}
}

func TestBadArgs(t *testing.T) {
	cases := [][]string{
		{"-workload", "nope"},
		{"-format", "tsv"},
		{"-badflag"},
	}
	for _, argv := range cases {
		var out, errb bytes.Buffer
		if code := run(argv, &out, &errb); code == 0 {
			t.Errorf("argv %v: want non-zero exit", argv)
		}
		if errb.Len() == 0 {
			t.Errorf("argv %v: no diagnostic on stderr", argv)
		}
	}
}
