// Command tracegen synthesizes the paper's Table I workloads as trace
// files on disk, in MSR Cambridge CSV or SPC-1 format, so they can be
// replayed by gcsbench, inspected with traceinfo, or fed to other tools.
//
// Usage:
//
//	tracegen -workload Fin1 -requests 100000 -capacity-gb 4 -format msr -out fin1.csv
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"gcsteering/internal/trace"
	"gcsteering/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "Fin1", "Table I workload name")
		requests = flag.Int("requests", 100000, "number of requests to emit (0 = the full published count)")
		capGB    = flag.Float64("capacity-gb", 4, "target volume capacity in GiB")
		format   = flag.String("format", "msr", "output format: msr | spc")
		out      = flag.String("out", "-", "output file (- = stdout)")
		seed     = flag.Int64("seed", 1, "generation seed")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workload   read%   requests    avg KB")
		for _, p := range workload.All() {
			fmt.Printf("%-9s %5.1f%%  %10d  %8.1f\n", p.Name, 100*p.ReadRatio, p.Requests, p.AvgReqKB)
		}
		return
	}

	p, ok := workload.ByName(*name)
	if !ok {
		fatalf("unknown workload %q; try -list", *name)
	}
	tr, err := workload.Generate(p, workload.Options{
		Capacity:    int64(*capGB * float64(1<<30)),
		MaxRequests: *requests,
		Seed:        *seed,
	})
	if err != nil {
		fatalf("generate: %v", err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create: %v", err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "msr":
		err = trace.WriteMSR(w, tr)
	case "spc":
		err = trace.WriteSPC(w, tr)
	default:
		fatalf("unknown format %q (msr|spc)", *format)
	}
	if err != nil {
		fatalf("write: %v", err)
	}
	s := trace.ComputeStats(tr)
	fmt.Fprintf(os.Stderr, "tracegen: %s: %d requests, %.1f%% reads, avg %.1f KB, %.1fs span\n",
		p.Name, s.Requests, 100*s.ReadRatio, s.AvgSizeKB, s.Duration.Seconds())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
