// Command tracegen synthesizes the paper's Table I workloads as trace
// files on disk, in MSR Cambridge CSV or SPC-1 format, so they can be
// replayed by gcsbench, inspected with traceinfo, or fed to other tools.
//
// Usage:
//
//	tracegen -workload Fin1 -requests 100000 -capacity-gb 4 -format msr -out fin1.csv
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gcsteering/internal/trace"
	"gcsteering/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses argv, writes the trace to
// -out (stdout by default) and the summary line to stderr, and returns the
// process exit code.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "Fin1", "Table I workload name")
		requests = fs.Int("requests", 100000, "number of requests to emit (0 = the full published count)")
		capGB    = fs.Float64("capacity-gb", 4, "target volume capacity in GiB")
		format   = fs.String("format", "msr", "output format: msr | spc")
		out      = fs.String("out", "-", "output file (- = stdout)")
		seed     = fs.Int64("seed", 1, "generation seed")
		list     = fs.Bool("list", false, "list available workloads and exit")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	fail := func(f string, args ...any) int {
		fmt.Fprintf(stderr, "tracegen: "+f+"\n", args...)
		return 1
	}

	if *list {
		fmt.Fprintln(stdout, "workload   read%   requests    avg KB")
		for _, p := range workload.All() {
			fmt.Fprintf(stdout, "%-9s %5.1f%%  %10d  %8.1f\n", p.Name, 100*p.ReadRatio, p.Requests, p.AvgReqKB)
		}
		return 0
	}

	p, ok := workload.ByName(*name)
	if !ok {
		return fail("unknown workload %q; try -list", *name)
	}
	tr, err := workload.Generate(p, workload.Options{
		Capacity:    int64(*capGB * float64(1<<30)),
		MaxRequests: *requests,
		Seed:        *seed,
	})
	if err != nil {
		return fail("generate: %v", err)
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return fail("create: %v", err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "msr":
		err = trace.WriteMSR(w, tr)
	case "spc":
		err = trace.WriteSPC(w, tr)
	default:
		return fail("unknown format %q (msr|spc)", *format)
	}
	if err != nil {
		return fail("write: %v", err)
	}
	s := trace.ComputeStats(tr)
	fmt.Fprintf(stderr, "tracegen: %s: %d requests, %.1f%% reads, avg %.1f KB, %.1fs span\n",
		p.Name, s.Requests, 100*s.ReadRatio, s.AvgSizeKB, s.Duration.Seconds())
	return 0
}
