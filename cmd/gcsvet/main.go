// Command gcsvet runs the repository's custom static-analysis suite:
// seven analyzers (nodeterm, maporder, nilrecv, units, hotalloc, inert,
// suppaudit) that enforce the simulator's determinism, hot-path
// allocation, and zero-cost-observability invariants. It is built on the
// standard library alone — packages are discovered with `go list -json`,
// parsed with go/parser, and type-checked with go/types against compiler
// export data; the interprocedural analyzers run on a CHA-style call
// graph assembled from the same data.
//
// Usage:
//
//	go run ./cmd/gcsvet [-analyzers name,name] [-list] [-fix] [-diff] [-sarif] [packages]
//
// Packages default to ./... . Findings print as
// `file:line:col: analyzer: message` and any finding makes the exit status
// non-zero. Suppress a sanctioned site with a
// `//lint:allow <analyzer> <reason>` comment on the line or the line above
// (suppaudit flags the directive itself once it stops matching anything).
//
// -fix applies the mechanical rewrites attached to findings (maporder's
// collect-then-sort, hotalloc's preallocation hint) through go/format and
// reports what remains; the exit status is non-zero only if unfixable
// findings remain. With -diff the rewrites are printed as unified diffs
// instead of written, and any finding — fixable or not — fails the run,
// which is the CI check mode.
//
// -sarif emits the findings as a SARIF 2.1.0 document on stdout for
// GitHub code-scanning annotations, with the same exit behaviour as the
// default text mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gcsteering/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is the testable body of main. dir is where go list resolves the
// package patterns (the working directory for the real CLI).
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	fix := fs.Bool("fix", false, "apply the mechanical fixes attached to findings")
	diff := fs.Bool("diff", false, "with -fix, print diffs instead of rewriting files (CI check mode)")
	sarif := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 document on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *diff && !*fix {
		fmt.Fprintln(stderr, "gcsvet: -diff requires -fix")
		return 2
	}
	if *sarif && *fix {
		fmt.Fprintln(stderr, "gcsvet: -sarif and -fix are mutually exclusive")
		return 2
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	cwd, _ := filepath.Abs(dir)
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(r) {
			return r
		}
		return name
	}

	if *sarif {
		if err := lint.WriteSARIF(stdout, analyzers, findings, cwd); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "gcsvet: %d finding(s)\n", len(findings))
			return 1
		}
		return 0
	}

	if *fix {
		return runFix(pkgs, findings, *diff, rel, stdout, stderr)
	}

	for _, f := range findings {
		f.Pos.Filename = rel(f.Pos.Filename)
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "gcsvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// runFix applies (or, under diff, previews) the attached fixes. In write
// mode only unfixable findings fail the run — the fixed ones are resolved
// on disk. In diff mode any finding fails: pending rewrites mean the tree
// is not gcsvet-clean as committed.
func runFix(pkgs []*lint.Package, findings []lint.Finding, diff bool, rel func(string) string, stdout, stderr io.Writer) int {
	if len(pkgs) == 0 {
		return 0
	}
	results, err := lint.ApplyFixes(pkgs[0].Fset, findings)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fixed := 0
	for _, r := range results {
		fixed += r.Edits
		if diff {
			fmt.Fprint(stdout, lint.FixResult{Path: rel(r.Path), Orig: r.Orig, Fixed: r.Fixed}.Diff())
			continue
		}
		if err := os.WriteFile(r.Path, r.Fixed, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "gcsvet: fixed %s (%d rewrite(s))\n", rel(r.Path), r.Edits)
	}
	remaining := 0
	for _, f := range findings {
		if f.Fix != nil {
			continue
		}
		remaining++
		f.Pos.Filename = rel(f.Pos.Filename)
		fmt.Fprintln(stdout, f.String())
	}
	if remaining > 0 {
		fmt.Fprintf(stderr, "gcsvet: %d finding(s) without a mechanical fix\n", remaining)
	}
	if diff && len(findings) > 0 {
		fmt.Fprintf(stderr, "gcsvet: %d finding(s), %d mechanically fixable\n", len(findings), fixed)
		return 1
	}
	if remaining > 0 {
		return 1
	}
	return 0
}
