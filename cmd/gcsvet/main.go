// Command gcsvet runs the repository's custom static-analysis suite: four
// analyzers (nodeterm, maporder, nilrecv, units) that enforce the
// simulator's determinism and zero-cost-observability invariants. It is
// built on the standard library alone — packages are discovered with
// `go list -json`, parsed with go/parser, and type-checked with go/types
// against compiler export data.
//
// Usage:
//
//	go run ./cmd/gcsvet [-analyzers name,name] [-list] [packages]
//
// Packages default to ./... . Findings print as
// `file:line:col: analyzer: message` and any finding makes the exit status
// non-zero. Suppress a sanctioned site with a
// `//lint:allow <analyzer> <reason>` comment on the line or the line above.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gcsteering/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is the testable body of main. dir is where go list resolves the
// package patterns (the working directory for the real CLI).
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gcsvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list the available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*names)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	findings := lint.Run(pkgs, analyzers)
	cwd, _ := filepath.Abs(dir)
	for _, f := range findings {
		if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			f.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "gcsvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
