package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, ".", &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"nodeterm", "maporder", "nilrecv", "units"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers", "nosuch"}, ".", &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-diff"}, ".", &out, &errOut); code != 2 {
		t.Errorf("-diff without -fix exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "-diff requires -fix") {
		t.Errorf("missing -diff diagnostic: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-sarif", "-fix"}, ".", &out, &errOut); code != 2 {
		t.Errorf("-sarif -fix exited %d, want 2", code)
	}
}

// writeFixModule creates a throwaway module containing one mechanical
// maporder violation (key-only map range appending unsorted), returning
// its directory and the violating file path.
func writeFixModule(t *testing.T) (dir, file string) {
	t.Helper()
	dir = t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpfix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	file = filepath.Join(dir, "p.go")
	src := `package p

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, file
}

// TestFixDiffDryRun checks the CI check mode: diffs print, nothing is
// written, and pending rewrites fail the run.
func TestFixDiffDryRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export in a temp module")
	}
	dir, file := writeFixModule(t)
	orig, _ := os.ReadFile(file)
	var out, errOut strings.Builder
	code := run([]string{"-analyzers", "maporder", "-fix", "-diff", "./..."}, dir, &out, &errOut)
	if code != 1 {
		t.Fatalf("-fix -diff with pending rewrites exited %d, want 1\nstderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "sort.Slice(ks") {
		t.Errorf("diff does not preview the rewrite:\n%s", out.String())
	}
	after, _ := os.ReadFile(file)
	if string(after) != string(orig) {
		t.Error("-diff must not write files")
	}
}

// TestFixWritesAndConverges checks write mode: the rewrite lands on disk,
// the exit status is clean (everything was fixable), and a second run
// finds nothing.
func TestFixWritesAndConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export in a temp module")
	}
	dir, file := writeFixModule(t)
	var out, errOut strings.Builder
	code := run([]string{"-analyzers", "maporder", "-fix", "./..."}, dir, &out, &errOut)
	if code != 0 {
		t.Fatalf("-fix exited %d, want 0 (all findings fixable)\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	after, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(after), "sort.Slice(ks") || !strings.Contains(string(after), `"sort"`) {
		t.Fatalf("rewrite (or its import) not written:\n%s", after)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-analyzers", "maporder", "./..."}, dir, &out, &errOut); code != 0 {
		t.Fatalf("re-run after -fix exited %d, want 0; findings:\n%s", code, out.String())
	}
}

// TestSarifFindings checks SARIF mode end to end on a module with one
// finding: a valid document, the right rule ID, and a failing exit.
func TestSarifFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export in a temp module")
	}
	dir, _ := writeFixModule(t)
	var out, errOut strings.Builder
	code := run([]string{"-analyzers", "maporder", "-sarif", "./..."}, dir, &out, &errOut)
	if code != 1 {
		t.Fatalf("-sarif with findings exited %d, want 1", code)
	}
	for _, want := range []string{`"version": "2.1.0"`, `"ruleId": "maporder"`, `"uri": "p.go"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("SARIF output missing %s:\n%s", want, out.String())
		}
	}
}

// TestCleanPackage runs the real pipeline end to end over the sim kernel,
// the determinism root of trust (the full-repo sweep lives in
// internal/lint's TestRepoIsClean).
func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./internal/sim"}, "../..", &out, &errOut); code != 0 {
		t.Fatalf("gcsvet ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}
