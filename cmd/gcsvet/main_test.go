package main

import (
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, ".", &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, name := range []string{"nodeterm", "maporder", "nilrecv", "units"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-analyzers", "nosuch"}, ".", &out, &errOut); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2", code)
	}
}

// TestCleanPackage runs the real pipeline end to end over the sim kernel,
// the determinism root of trust (the full-repo sweep lives in
// internal/lint's TestRepoIsClean).
func TestCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list -export")
	}
	var out, errOut strings.Builder
	if code := run([]string{"./internal/sim"}, "../..", &out, &errOut); code != 0 {
		t.Fatalf("gcsvet ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("expected no findings, got:\n%s", out.String())
	}
}
